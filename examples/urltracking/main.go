// URL tracking: the Google RAPPOR scenario (tutorial §1.2(1)). A
// browser fleet reports home pages through Bloom-filter randomized
// response; the server decodes candidate URLs' popularity without
// being able to attribute any page to any user.
package main

import (
	"fmt"

	"repro/internal/ldprand"
	"repro/internal/rappor"
	"repro/internal/workload"
)

func main() {
	params := rappor.DefaultParams()
	params.BloomBits = 64
	params.Cohorts = 4

	const users = 50000
	urls := workload.URLs(30)
	sim := ldprand.NewSplitMix64(7)
	zipf := workload.NewZipf(sim, 1.4, len(urls))

	server, err := rappor.NewServer(params)
	if err != nil {
		panic(err)
	}
	truth := make(map[string]int)
	for i := 0; i < users; i++ {
		// Each browser install holds a stable secret: permanent
		// randomized responses are memoized against averaging attacks.
		client, err := rappor.NewClient(params, ldprand.NewSecret(), nil)
		if err != nil {
			panic(err)
		}
		page := urls[zipf.Next()]
		truth[page]++
		if err := server.Add(client.Report(page)); err != nil {
			panic(err)
		}
	}

	fmt.Printf("collected %d reports (ε∞ = %.2f for the permanent response)\n\n",
		server.Collected(), params.PermanentEpsilon())
	fmt.Println("decoded top-5 home pages (estimate vs true count):")
	for _, u := range server.TopK(urls, 5) {
		est := server.Decode(urls)[u]
		fmt.Printf("  %-28s est %7.0f   true %6d\n", u, est, truth[u])
	}
}
