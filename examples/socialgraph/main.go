// Social graph: the graph-analytics direction (tutorial §1.3). A
// social network's degree distribution is estimated from noisy
// per-user degrees, and a synthetic shareable graph is generated
// without the collector ever seeing a single real edge.
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ldprand"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const (
		vertices = 1500
		eps      = 2.0
	)
	sim := ldprand.NewSplitMix64(13)
	g := workload.BarabasiAlbert(sim, vertices, 5)
	fmt.Printf("true graph: %d vertices, %d edges, clustering %.4f\n",
		g.N, g.Edges(), g.ClusteringCoefficient())

	// Degree distribution under edge-LDP.
	maxDeg := 0
	for _, d := range g.Degrees() {
		if d > maxDeg {
			maxDeg = d
		}
	}
	noisy := graph.NoisyDegrees(eps, g, nil)
	est := graph.DegreeDistribution(noisy, maxDeg)
	truth := graph.TrueDegreeDistribution(g, maxDeg)
	fmt.Printf("degree distribution KS distance at ε=%.1f: %.4f\n\n",
		eps, stats.KSDistance(est, truth))

	// Synthetic graph generation (LDPGen-style).
	syn, err := graph.Generate(graph.GenParams{Epsilon: eps, Clusters: 6}, g, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("synthetic graph: %d vertices, %d edges, clustering %.4f\n",
		syn.N, syn.Edges(), syn.ClusteringCoefficient())
	fmt.Printf("synthetic degree KS vs true: %.4f\n",
		stats.KSDistance(
			graph.TrueDegreeDistribution(syn, maxDeg),
			graph.TrueDegreeDistribution(g, maxDeg)))
	fmt.Println("\nthe synthetic graph can be shared with analysts: no real edge was ever collected")
}
