// New-words discovery: the Apple scenario (tutorial §1.2(2)). The
// collector wants the trending words typed by users without a
// dictionary: a count-mean sketch estimates frequencies of known
// words, and the sequence fragment puzzle discovers unknown ones.
package main

import (
	"fmt"

	"repro/internal/cms"
	"repro/internal/heavyhitters"
	"repro/internal/ldprand"
	"repro/internal/workload"
)

func main() {
	const users = 60000
	pool := workload.Words(3000)
	trending := []string{pool[42], pool[1111], pool[2718]}

	sim := ldprand.NewSplitMix64(3)
	words := make([]string, users)
	for i := range words {
		r := ldprand.Float64(sim)
		switch {
		case r < 0.3:
			words[i] = trending[0]
		case r < 0.5:
			words[i] = trending[1]
		case r < 0.65:
			words[i] = trending[2]
		default:
			words[i] = pool[ldprand.Intn(sim, len(pool))]
		}
	}

	// Part 1 — frequency of KNOWN words via the count-mean sketch.
	params := cms.Params{Epsilon: 4, Width: 1024, Hashes: 64, Seed: 99}
	client, err := cms.NewClient(params, nil)
	if err != nil {
		panic(err)
	}
	server, err := cms.NewServer(params)
	if err != nil {
		panic(err)
	}
	for _, w := range words {
		if err := server.Add(client.Report([]byte(w))); err != nil {
			panic(err)
		}
	}
	fmt.Println("CMS estimates for the three trending words:")
	for _, w := range trending {
		fmt.Printf("  %s: %8.0f reports (of %d users)\n", w, server.Estimate([]byte(w)), users)
	}

	// Part 2 — discovering them WITHOUT a dictionary via SFP.
	hits, err := heavyhitters.FindSFP(heavyhitters.SFPParams{
		Epsilon: 4, WordLen: 6, HashBits: 6, K: 5, Seed: 1234,
	}, words, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nSFP discovery (no candidate list given):")
	for _, h := range hits {
		marker := ""
		for _, tw := range trending {
			if h.Word == tw {
				marker = "  <- trending"
			}
		}
		fmt.Printf("  %s: %8.0f%s\n", h.Word, h.Count, marker)
	}
}
