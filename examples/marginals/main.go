// Marginals: the multidimensional-analytics direction (tutorial §1.3).
// A survey of 12 sensitive binary attributes is collected once, and
// any 2-way contingency table is reconstructed afterwards from Fourier
// coefficients — without a 4096-cell histogram and without re-asking
// the users.
package main

import (
	"fmt"

	"repro/internal/ldprand"
	"repro/internal/marginal"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const (
		users = 120000
		d     = 12 // attributes; the full table would have 2^12 cells
		eps   = 2.0
	)
	sim := ldprand.NewSplitMix64(9)
	// Correlated attributes make the 2-way tables interesting.
	records := workload.CorrelatedBinaryRecords(sim, d, 0.35, 0.7, users)

	collector, err := marginal.NewFourier(marginal.FourierParams{Epsilon: eps, D: d, K: 2}, nil)
	if err != nil {
		panic(err)
	}
	for _, r := range records {
		collector.Collect(r) // one Fourier coefficient per user
	}
	fmt.Printf("collected %d reports; %d low-order coefficients estimated\n\n",
		collector.Collected(), len(collector.Masks()))

	// Reconstruct a few 2-way tables on demand.
	for _, pair := range [][2]int{{0, 1}, {3, 7}, {5, 11}} {
		mask := 1<<uint(pair[0]) | 1<<uint(pair[1])
		est, err := collector.Marginal(mask)
		if err != nil {
			panic(err)
		}
		truth := marginal.TrueMarginal(mask, d, records)
		fmt.Printf("attributes (%d,%d): TV distance %.4f\n", pair[0], pair[1],
			stats.TotalVariation(est, truth))
		fmt.Printf("  P(00)=%.3f (true %.3f)  P(01)=%.3f (true %.3f)\n",
			est[0], truth[0], est[1], truth[1])
		fmt.Printf("  P(10)=%.3f (true %.3f)  P(11)=%.3f (true %.3f)\n",
			est[2], truth[2], est[3], truth[3])
	}
}
