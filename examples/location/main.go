// Location hotspots: the private spatial collection direction
// (tutorial §1.3). Phones report grid cells through a frequency
// oracle; the city can find congestion hotspots and answer "how many
// users in this district" without a single raw trajectory.
package main

import (
	"fmt"

	"repro/internal/ldprand"
	"repro/internal/spatial"
	"repro/internal/workload"
)

func main() {
	const (
		users   = 80000
		epsilon = 2.0
		g       = 16
	)
	sim := ldprand.NewSplitMix64(11)
	clusters := workload.DefaultCityClusters()
	points := workload.Locations(sim, clusters, users)

	grid, err := spatial.NewGrid(epsilon, g, nil)
	if err != nil {
		panic(err)
	}
	for _, p := range points {
		grid.Collect(p) // only the randomized cell report leaves the phone
	}

	fmt.Printf("collected %d location reports on a %dx%d grid (ε=%.1f)\n\n",
		grid.Collected(), g, g, epsilon)

	fmt.Println("top-3 hotspots (cell center) vs true population centers:")
	for rank, cell := range grid.Hotspots(3) {
		r := grid.CellRect(cell)
		fmt.Printf("  #%d cell around (%.3f, %.3f)\n", rank+1, (r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2)
	}
	for i, c := range clusters {
		fmt.Printf("  true center %d at (%.3f, %.3f), weight %.0f%%\n",
			i+1, c.Center.X, c.Center.Y, 100*c.Weight)
	}

	district := spatial.Rect{MinX: 0.125, MinY: 0.125, MaxX: 0.375, MaxY: 0.375}
	truth := 0
	for _, p := range points {
		if district.Contains(p) {
			truth++
		}
	}
	fmt.Printf("\ndistrict query [%.3f,%.3f]x[%.3f,%.3f]: estimated %.0f users (true %d)\n",
		district.MinX, district.MaxX, district.MinY, district.MaxY,
		grid.RangeCount(district), truth)
}
