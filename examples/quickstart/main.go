// Quickstart: ask a sensitive yes/no question with Warner's randomized
// response (tutorial §1.1). Each user flips a biased coin locally —
// the collector never sees a truthful answer it can attribute — yet
// the population proportion is recovered with a confidence interval.
package main

import (
	"fmt"

	"repro/internal/freq"
	"repro/internal/ldprand"
)

func main() {
	const (
		epsilon = 1.0 // privacy budget per user
		users   = 100000
		trueP   = 0.23 // true fraction answering "yes" (unknown to the server!)
	)

	// Server side: the aggregator for randomized yes/no answers.
	server := freq.NewBinaryRR(epsilon, nil)

	// Client side: each user randomizes locally before sending.
	population := ldprand.NewSplitMix64(1) // simulation only: who truly says yes
	for i := 0; i < users; i++ {
		truthful := 0
		if ldprand.Float64(population) < trueP {
			truthful = 1
		}
		// In a deployment this happens on the user's device with
		// crypto/rand; the server receives only the randomized bit.
		client := freq.NewBinaryRR(epsilon, nil)
		randomized := client.Privatize(truthful)
		server.Aggregate(randomized)
	}

	est, ci := server.EstimateProportion(0.05)
	fmt.Printf("true proportion:      %.4f (never observed by the server)\n", trueP)
	fmt.Printf("estimated proportion: %.4f ± %.4f (95%% CI)\n", est, ci)
	fmt.Printf("users:                %d, epsilon: %.1f\n", users, epsilon)
}
