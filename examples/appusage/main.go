// App usage: set-valued collection (tutorial §1.2, after Qin et al.).
// Each phone holds a *set* of installed apps; padding-and-sampling
// with a two-phase top-k flow finds the most installed apps without
// any phone revealing its app list.
package main

import (
	"fmt"

	"repro/internal/itemset"
	"repro/internal/ldprand"
)

func main() {
	const (
		users   = 80000
		domain  = 500 // app universe
		epsilon = 2.0
	)
	sim := ldprand.NewSplitMix64(21)

	// Popular apps with known install rates.
	popular := map[int]float64{7: 0.7, 42: 0.5, 99: 0.35, 250: 0.2, 481: 0.1}
	truth := make(map[int]int)
	sets := make([][]int, users)
	for i := range sets {
		var s []int
		for app, rate := range popular {
			if ldprand.Bernoulli(sim, rate) {
				s = append(s, app)
				truth[app]++
			}
		}
		// A couple of long-tail apps per user.
		s = append(s, ldprand.Intn(sim, domain), ldprand.Intn(sim, domain))
		sets[i] = s
	}

	hits, err := itemset.FindTopK(itemset.Params{Epsilon: epsilon, Domain: domain, PadLen: 4}, 5, sets, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("two-phase top-5 apps from %d users (ε=%.1f, no app list ever transmitted):\n", users, epsilon)
	for rank, h := range hits {
		fmt.Printf("  #%d app %3d: estimated %7.0f installs (true %d)\n",
			rank+1, h.Item, h.Count, truth[h.Item])
	}
}
