// Telemetry: the Microsoft scenario (tutorial §1.2(3)). Devices report
// daily app-usage hours as a single randomized bit; memoized α-point
// rounding keeps reporting every day without eroding privacy, while
// the population mean tracks the truth across rounds.
package main

import (
	"fmt"

	"repro/internal/ldprand"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	const (
		users  = 40000
		rounds = 7 // a week of daily collection
		maxH   = 24
	)
	params := telemetry.MeanParams{Epsilon: 1, Max: maxH}

	sim := ldprand.NewSplitMix64(5)
	usage := workload.DriftingCounters(sim, maxH, users, rounds, 0.05)

	// Each device derives its fixed randomness from a stable secret.
	clients := make([]*telemetry.Client, users)
	for u := range clients {
		c, err := telemetry.NewClient(params, ldprand.NewSecret(), "daily-usage-hours")
		if err != nil {
			panic(err)
		}
		clients[u] = c
	}

	fmt.Println("day  true_mean  estimated_mean  abs_err")
	for day := 0; day < rounds; day++ {
		col, err := telemetry.NewMeanCollector(params)
		if err != nil {
			panic(err)
		}
		var truth float64
		for u, c := range clients {
			x := usage[day][u]
			truth += x
			if err := col.Add(c.Report(x)); err != nil {
				panic(err)
			}
		}
		truth /= users
		est := col.Estimate()
		fmt.Printf("%3d  %9.3f  %14.3f  %7.3f\n", day+1, truth, est, abs(est-truth))
	}
	fmt.Println("\neach device sent only 1 bit per day, memoized per rounded value:")
	fmt.Println("an observer of all 7 days learns no more than from a single day")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
