// Typing prediction: the language-modeling direction (tutorial §1.3,
// after McMahan et al.). Keyboards contribute one randomized bigram
// each; the aggregator trains a next-character model that predicts
// well on held-out text, while no raw keystroke ever leaves a device.
package main

import (
	"fmt"

	"repro/internal/langmodel"
	"repro/internal/ldprand"
)

func main() {
	const (
		users = 200000
		eps   = 2.0
	)
	vocabulary := []string{
		"the", "then", "they", "there", "these", "think", "thing",
		"queen", "quick", "quiet", "hello", "world", "would", "should",
	}
	sim := ldprand.NewSplitMix64(17)
	corpus := make([]string, users)
	for i := range corpus {
		corpus[i] = vocabulary[ldprand.Intn(sim, len(vocabulary))]
	}

	trainer := langmodel.NewTrainer(eps, nil)
	for _, text := range corpus {
		if err := trainer.Contribute(text); err != nil {
			panic(err)
		}
	}
	private := trainer.Fit(0.5)
	truth := langmodel.FitTrue(corpus, 0.5)

	heldOut := make([]string, 2000)
	for i := range heldOut {
		heldOut[i] = vocabulary[ldprand.Intn(sim, len(vocabulary))]
	}
	fmt.Printf("trained on %d single-bigram reports at ε=%.1f\n\n", trainer.Contributed(), eps)
	fmt.Printf("perplexity on held-out text: private %.2f, non-private %.2f, uniform %d\n\n",
		private.Perplexity(heldOut), truth.Perplexity(heldOut), langmodel.AlphabetSize)

	for _, ctx := range []string{"t", "q", "w", ""} {
		pred := private.Predict(ctx, 3)
		label := ctx
		if label == "" {
			label = "(word start)"
		}
		fmt.Printf("after %-12s predict: %c %c %c\n", label, pred[0], pred[1], pred[2])
	}
}
