// Meansurvey: a numeric survey served end-to-end through the
// task-generic collection stack. The question is the classic telemetry
// one — "how many hours of screen time yesterday?" — which no
// frequency oracle answers well: the domain is continuous and the
// analyst wants a mean, not a histogram. Each simulated device scales
// its answer into [-1, 1], privatizes it with the Duchi mechanism
// (task "mean" on the server), and POSTs the ±C envelope to a
// collection server over real HTTP; the analyst reads the debiased
// mean ± CI back from /estimate. Raw hours never leave the device.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/core"
	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/meantask"
)

const (
	epsilon  = 1.0
	users    = 50000
	maxHours = 16.0 // answers are clamped to [0, maxHours] then scaled
)

func main() {
	// Server side: a collection registry with one "mean" collection,
	// exactly what `ldpd` builds; the example serves it over a loopback
	// HTTP listener to keep the wire format honest.
	reg := core.NewCollectionRegistry()
	svc := core.NewMultiService(reg, nil)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	createBody := `{"name":"screen-time","task":"mean","mechanism":"duchi","epsilon":1}`
	resp, err := http.Post(ts.URL+"/collections", "application/json", strings.NewReader(createBody))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		log.Fatalf("create collection: status %d", resp.StatusCode)
	}

	// Client side: each device privatizes locally and ships only the
	// randomized report. (One shared deterministic source keeps the
	// example reproducible; real devices use crypto/rand via nil.)
	cfg := task.Config{Task: task.TypeMean, Mechanism: meantask.MechanismDuchi, Epsilon: epsilon}
	client, err := meantask.NewClient(cfg, ldprand.NewSplitMix64(7))
	if err != nil {
		log.Fatal(err)
	}
	population := ldprand.NewSplitMix64(2) // simulation only: true usage
	var trueSum float64
	for i := 0; i < users; i++ {
		// A plausible skewed usage distribution in [0, maxHours).
		hours := maxHours * ldprand.Float64(population) * ldprand.Float64(population)
		trueSum += hours
		scaled := 2*hours/maxHours - 1 // [0, maxHours] → [-1, 1]
		env, err := client.Report([]float64{scaled})
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/collections/screen-time/report", "application/json",
			strings.NewReader(string(env)))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			log.Fatalf("report %d: status %d", i, resp.StatusCode)
		}
	}

	// Analyst side: one GET answers the survey.
	resp, err = http.Get(ts.URL + "/collections/screen-time/estimate")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var er core.EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		log.Fatal(err)
	}
	var mr meantask.EstimateResult
	if err := json.Unmarshal(er.Estimate, &mr); err != nil {
		log.Fatal(err)
	}

	// Undo the [-1,1] scaling to report in hours.
	estHours := (mr.Means[0] + 1) / 2 * maxHours
	ciHours := mr.CI95 / 2 * maxHours
	trueMean := trueSum / users
	fmt.Printf("true mean screen time:      %.3f h (never observed by the server)\n", trueMean)
	fmt.Printf("estimated mean screen time: %.3f h ± %.3f (95%% CI)\n", estHours, ciHours)
	fmt.Printf("users: %d, epsilon: %.1f, reports: %d, task: %s/%s\n",
		users, epsilon, er.Reports, er.Task, er.Mechanism)
}
