// Package repro's root benchmark harness: one benchmark per experiment
// in the E1–E13 suite (regenerating the table under the Go benchmark
// driver), plus per-mechanism client/server microbenchmarks that back
// the E13 cost table. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cms"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/freq"
	"repro/internal/heavyhitters"
	"repro/internal/ldprand"
	"repro/internal/rappor"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// benchConfig keeps experiment benchmarks to a few seconds each.
func benchConfig() experiments.Config {
	return experiments.Config{Users: 2000, Trials: 1, Seed: 1}
}

// BenchmarkExperiments regenerates each experiment's table once per
// iteration, giving an end-to-end cost per experiment id.
func BenchmarkExperiments(b *testing.B) {
	for _, e := range experiments.All() {
		e := e
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := experiments.Run(io.Discard, e, benchConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE13Privatize measures the client-side cost of one report
// for every frequency oracle (the E13 ns/report column).
func BenchmarkE13Privatize(b *testing.B) {
	const d = 1024
	for _, m := range freq.Mechanisms() {
		m := m
		b.Run(fmt.Sprintf("%s/d=%d", m.Name, d), func(b *testing.B) {
			o := m.Build(freq.Config{Epsilon: 1, Domain: d, Source: ldprand.NewSplitMix64(1)})
			env, err := core.Privatize(o, 7)
			if err != nil {
				b.Fatal(err)
			}
			_ = env
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Privatize(o, i%d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE13Collect measures the combined client+server cost per
// report (Collect = Privatize + Aggregate), the aggregation-side cost
// axis: LH pays O(d) at the server, UE pays O(d) at the client.
func BenchmarkE13Collect(b *testing.B) {
	const d = 1024
	for _, m := range freq.Mechanisms() {
		m := m
		b.Run(fmt.Sprintf("%s/d=%d", m.Name, d), func(b *testing.B) {
			o := m.Build(freq.Config{Epsilon: 1, Domain: d, Source: ldprand.NewSplitMix64(1)})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Collect(i % d)
			}
		})
	}
}

// BenchmarkE13Estimate measures the analyst-side decode cost.
func BenchmarkE13Estimate(b *testing.B) {
	const d, n = 1024, 2000
	for _, m := range freq.Mechanisms() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			o := m.Build(freq.Config{Epsilon: 1, Domain: d, Source: ldprand.NewSplitMix64(1)})
			for i := 0; i < n; i++ {
				o.Collect(i % d)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = o.EstimateCounts()
			}
		})
	}
}

// BenchmarkRAPPORReport measures one full RAPPOR client report
// (Bloom encode + permanent + instantaneous RR).
func BenchmarkRAPPORReport(b *testing.B) {
	params := rappor.DefaultParams()
	client, err := rappor.NewClient(params, []byte("bench-secret"), ldprand.NewSplitMix64(1))
	if err != nil {
		b.Fatal(err)
	}
	urls := workload.URLs(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = client.Report(urls[i%len(urls)])
	}
}

// BenchmarkRAPPORDecode measures candidate decoding (the ridge solve).
func BenchmarkRAPPORDecode(b *testing.B) {
	params := rappor.DefaultParams()
	params.BloomBits = 64
	params.Cohorts = 4
	server, err := rappor.NewServer(params)
	if err != nil {
		b.Fatal(err)
	}
	src := ldprand.NewSplitMix64(2)
	urls := workload.URLs(50)
	for i := 0; i < 5000; i++ {
		client, err := rappor.NewClient(params, []byte(fmt.Sprintf("u%d", i)), src)
		if err != nil {
			b.Fatal(err)
		}
		if err := server.Add(client.Report(urls[i%len(urls)])); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = server.Decode(urls)
	}
}

// BenchmarkCMSReport measures Apple-style client reports: the m-bit
// CMS report vs the 1-bit HCMS report.
func BenchmarkCMSReport(b *testing.B) {
	params := cms.Params{Epsilon: 2, Width: 1024, Hashes: 64, Seed: 1}
	item := []byte("benchmark-word")
	b.Run("CMS", func(b *testing.B) {
		client, err := cms.NewClient(params, ldprand.NewSplitMix64(1))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			_ = client.Report(item)
		}
	})
	b.Run("HCMS", func(b *testing.B) {
		client, err := cms.NewHadamardClient(params, ldprand.NewSplitMix64(1))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			_ = client.Report(item)
		}
	})
}

// BenchmarkTelemetryOneBit measures the Microsoft 1-bit report path.
func BenchmarkTelemetryOneBit(b *testing.B) {
	p := telemetry.MeanParams{Epsilon: 1, Max: 24}
	src := ldprand.NewSplitMix64(1)
	for i := 0; i < b.N; i++ {
		_ = telemetry.OneBit(p, float64(i%24), src)
	}
}

// BenchmarkPEM measures end-to-end heavy-hitter discovery at a small
// population (dominated by server-side candidate evaluation).
func BenchmarkPEM(b *testing.B) {
	src := ldprand.NewSplitMix64(3)
	values := make([]uint64, 5000)
	for i := range values {
		values[i] = uint64(ldprand.Intn(src, 1<<12))
	}
	params := heavyhitters.PEMParams{Epsilon: 2, Bits: 12, Levels: 3, K: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heavyhitters.FindPEM(params, values, ldprand.NewSplitMix64(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerThroughput compares the serving path's ingestion
// architectures under parallel load: the seed's single-mutex design
// (every report serializes on one lock around one oracle) against the
// sharded aggregator, with and without batching. Envelopes are
// pre-privatized so the benchmark isolates aggregation throughput —
// the server-side bottleneck — from client-side randomization cost.
// Run with -cpu to see the scaling, e.g.:
//
//	go test -bench=ServerThroughput -cpu 1,4,8
//
// Sharded estimates stay bit-identical to sequential aggregation (the
// accumulators are integer-valued; see TestSharded* in internal/core),
// so the speedup is free of any accuracy trade.
func BenchmarkServerThroughput(b *testing.B) {
	const d, pool = 128, 8192
	p := core.PrivacyParams{Epsilon: 1, Domain: d}
	client, err := core.NewClient(core.MechanismGRR, p, ldprand.NewSplitMix64(71))
	if err != nil {
		b.Fatal(err)
	}
	src := ldprand.NewSplitMix64(72)
	values := make([]int, pool)
	for i := range values {
		values[i] = ldprand.Intn(src, d)
	}
	envs, err := client.ReportBatch(values)
	if err != nil {
		b.Fatal(err)
	}
	// Every variant ingests the same raw JSON (the task-generic wire
	// form) and pays the same parse+validate work per report, so the
	// cross-variant ratios compare aggregation architecture only.
	raws := make([]json.RawMessage, len(envs))
	for i := range envs {
		if raws[i], err = json.Marshal(envs[i]); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("single-mutex", func(b *testing.B) {
		// The pre-sharding architecture, reproduced inline: parse and
		// aggregate serialized on one lock around one oracle.
		oracle, err := core.NewOracle(core.MechanismGRR, p, nil)
		if err != nil {
			b.Fatal(err)
		}
		var mu sync.Mutex
		var i atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				var e core.Envelope
				if err := json.Unmarshal(raws[i.Add(1)%pool], &e); err != nil {
					// b.Fatal is not legal off the benchmark goroutine.
					b.Error(err)
					return
				}
				mu.Lock()
				err := core.Aggregate(oracle, e)
				mu.Unlock()
				if err != nil {
					b.Error(err)
					return
				}
			}
		})
	})

	b.Run("sharded", func(b *testing.B) {
		agg, err := core.NewFreqShardedAggregator(core.MechanismGRR, p, 0)
		if err != nil {
			b.Fatal(err)
		}
		var i atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := agg.Add(raws[i.Add(1)%pool]); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})

	b.Run("sharded-batch", func(b *testing.B) {
		const batch = 256
		agg, err := core.NewFreqShardedAggregator(core.MechanismGRR, p, 0)
		if err != nil {
			b.Fatal(err)
		}
		var i atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				off := int(i.Add(1)*batch) % (pool - batch)
				if _, err := agg.AddBatch(raws[off : off+batch]); err != nil {
					b.Error(err)
					return
				}
			}
		})
		// Report per-envelope cost, comparable to the other two runs.
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/report")
	})

	// The binary wire variants ingest the same logical reports through
	// the negotiated binary envelopes (same randomness stream, so the
	// folded values match the JSON runs): the deltas against "sharded"
	// and "sharded-batch" isolate the codec's decode and allocation
	// cost from the aggregation architecture.
	clientBin, err := core.NewClient(core.MechanismGRR, p, ldprand.NewSplitMix64(71))
	if err != nil {
		b.Fatal(err)
	}
	bins := make([][]byte, pool)
	for i := range bins {
		if bins[i], err = clientBin.ReportBinary(values[i]); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("sharded-binary", func(b *testing.B) {
		agg, err := core.NewFreqShardedAggregator(core.MechanismGRR, p, 0)
		if err != nil {
			b.Fatal(err)
		}
		var i atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := agg.AddBinary(bins[i.Add(1)%pool]); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})

	b.Run("sharded-batch-binary", func(b *testing.B) {
		const batch = 256
		agg, err := core.NewFreqShardedAggregator(core.MechanismGRR, p, 0)
		if err != nil {
			b.Fatal(err)
		}
		var i atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				off := int(i.Add(1)*batch) % (pool - batch)
				if _, err := agg.AddBatchBinary(bins[off : off+batch]); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/report")
	})
}

// BenchmarkEnvelopeRoundTrip measures the wire-format overhead of the
// HTTP collection path for a 1-bit OLH report.
func BenchmarkEnvelopeRoundTrip(b *testing.B) {
	o, err := core.NewOracle(core.MechanismOLH, core.PrivacyParams{Epsilon: 1, Domain: 128}, ldprand.NewSplitMix64(1))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := core.NewOracle(core.MechanismOLH, core.PrivacyParams{Epsilon: 1, Domain: 128}, ldprand.NewSplitMix64(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := core.Privatize(o, i%128)
		if err != nil {
			b.Fatal(err)
		}
		if err := core.Aggregate(srv, env); err != nil {
			b.Fatal(err)
		}
	}
}
