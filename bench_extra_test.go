package repro

import (
	"testing"

	"repro/internal/itemset"
	"repro/internal/ldprand"
	"repro/internal/marginal"
	"repro/internal/secagg"
	"repro/internal/spatial"
	"repro/internal/workload"
)

// BenchmarkSecAggMask measures one participant's masking cost as the
// cohort grows (O(n) keyed derivations per client).
func BenchmarkSecAggMask(b *testing.B) {
	session := []byte("bench-session")
	for _, n := range []int{10, 100, 1000} {
		n := n
		b.Run(benchName("n", n), func(b *testing.B) {
			c, err := secagg.NewClient(0, n, session)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = c.Mask(1.5)
			}
		})
	}
}

// BenchmarkItemsetCollect measures a padded-and-sampled set report.
func BenchmarkItemsetCollect(b *testing.B) {
	c, err := itemset.NewCollector(itemset.Params{Epsilon: 2, Domain: 256, PadLen: 4},
		ldprand.NewSplitMix64(1))
	if err != nil {
		b.Fatal(err)
	}
	set := []int{3, 47, 91}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Collect(set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarginalFourier measures one Fourier-coefficient report and
// one marginal reconstruction.
func BenchmarkMarginalFourier(b *testing.B) {
	f, err := marginal.NewFourier(marginal.FourierParams{Epsilon: 1, D: 12, K: 2},
		ldprand.NewSplitMix64(1))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Collect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Collect(i % (1 << 12))
		}
	})
	b.Run("Marginal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.Marginal(0b11); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQuadtreeRangeCount measures a consistent multi-level range
// query (includes the two consistency passes).
func BenchmarkQuadtreeRangeCount(b *testing.B) {
	src := ldprand.NewSplitMix64(2)
	qt, err := spatial.NewQuadtree(2, 5, src)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range workload.Locations(src, workload.DefaultCityClusters(), 5000) {
		qt.Collect(p)
	}
	q := spatial.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qt.RangeCount(q); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
