// Command ldpbench regenerates the experiment suite E1–E13 (see
// DESIGN.md and EXPERIMENTS.md): every table and series the tutorial's
// surveyed systems report.
//
// Usage:
//
//	ldpbench                 # run the full suite
//	ldpbench -run E2,E5      # run selected experiments
//	ldpbench -users 100000 -trials 10 -seed 7
//	ldpbench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		runIDs = flag.String("run", "", "comma-separated experiment ids (default: all)")
		users  = flag.Int("users", experiments.DefaultConfig().Users, "population size per run")
		trials = flag.Int("trials", experiments.DefaultConfig().Trials, "trials averaged per cell")
		seed   = flag.Uint64("seed", experiments.DefaultConfig().Seed, "deterministic seed")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s (reproduces %s)\n", e.ID, e.Title, e.Source)
		}
		return
	}

	cfg := experiments.Config{Users: *users, Trials: *trials, Seed: *seed}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if *runIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		if err := experiments.Run(os.Stdout, e, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
