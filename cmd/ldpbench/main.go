// Command ldpbench regenerates the experiment suite E1–E13 (see
// DESIGN.md and EXPERIMENTS.md): every table and series the tutorial's
// surveyed systems report.
//
// Usage:
//
//	ldpbench                 # run the full suite
//	ldpbench -run E2,E5      # run selected experiments
//	ldpbench -users 100000 -trials 10 -seed 7
//	ldpbench -list           # list experiment ids
//	ldpbench -json BENCH.json  # also write machine-readable results
//	ldpbench -run none -codec -json BENCH.json  # codec cost only
//
// With -codec the run also measures JSON-vs-binary codec cost (wire
// bytes per report across every mechanism, snapshot encode/restore at
// -codec-width × -codec-hashes sketch scale) and embeds the figures
// in the -json summary under "codec".
//
// With -relay the run also measures relay fan-in throughput (the E20
// topology at each -relays count, -relay-batch reports per batch) and
// embeds the figures in the -json summary under "relay".
//
// With -json PATH the run additionally writes a machine-readable
// summary (configuration plus experiment id → wall-clock seconds), the
// format of the repository's BENCH_*.json perf-trajectory files: each
// PR that touches a hot path commits a small-config run so regressions
// show up as a series, not an anecdote.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// benchResult is one experiment's entry in the -json summary.
type benchResult struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
}

// benchSummary is the -json file layout. Codec is present only under
// -codec: the structured JSON-vs-binary measurements at the requested
// sketch scale.
type benchSummary struct {
	Users   int                       `json:"users"`
	Trials  int                       `json:"trials"`
	Seed    uint64                    `json:"seed"`
	Results []benchResult             `json:"results"`
	Codec   *experiments.CodecSummary `json:"codec,omitempty"`
	Relay   *experiments.RelaySummary `json:"relay,omitempty"`
}

func main() {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment ids (default: all)")
		users    = flag.Int("users", experiments.DefaultConfig().Users, "population size per run")
		trials   = flag.Int("trials", experiments.DefaultConfig().Trials, "trials averaged per cell")
		seed     = flag.Uint64("seed", experiments.DefaultConfig().Seed, "deterministic seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonPath = flag.String("json", "", "write machine-readable results (id → seconds) to this path")
		codec    = flag.Bool("codec", false, "measure JSON vs binary codec cost and add it to -json output")
		codecW   = flag.Int("codec-width", 1<<16, "sketch cells per row for the -codec snapshot measurement")
		codecH   = flag.Int("codec-hashes", 1<<10, "sketch rows for the -codec snapshot measurement")
		relay    = flag.Bool("relay", false, "measure relay fan-in throughput vs single node and add it to -json output")
		relays   = flag.String("relays", "2,4", "comma-separated relay counts for the -relay measurement")
		relayB   = flag.Int("relay-batch", 100, "reports per batch for the -relay measurement")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s (reproduces %s)\n", e.ID, e.Title, e.Source)
		}
		return
	}

	cfg := experiments.Config{Users: *users, Trials: *trials, Seed: *seed}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if *runIDs == "none" {
		// -run none: skip the suite, e.g. for a codec-only run.
	} else if *runIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	summary := benchSummary{Users: *users, Trials: *trials, Seed: *seed}
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		if err := experiments.Run(os.Stdout, e, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		summary.Results = append(summary.Results, benchResult{
			ID: e.ID, Title: e.Title, Seconds: time.Since(start).Seconds(),
		})
	}

	if *codec {
		start := time.Now()
		cs, err := experiments.Codec(cfg, *codecW, *codecH)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldpbench: codec:", err)
			os.Exit(1)
		}
		summary.Codec = &cs
		s := cs.Snapshot
		fmt.Printf("codec: CMS %dx%d snapshot %d B json / %d B binary (%.2fx), restore %.3fs json / %.3fs binary (%.2fx), measured in %.1fs\n",
			s.Width, s.Hashes, s.JSONBytes, s.BinBytes, s.SizeRatio,
			s.JSONRestoreSec, s.BinRestoreSec, s.RestoreSpeedup, time.Since(start).Seconds())
	}

	if *relay {
		var counts []int
		for _, s := range strings.Split(*relays, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "ldpbench: bad -relays entry %q\n", s)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		rs, err := experiments.RelayFanIn(cfg, counts, *relayB)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldpbench: relay:", err)
			os.Exit(1)
		}
		summary.Relay = &rs
		for _, top := range rs.Topologies {
			fmt.Printf("relay: %d relays %.0f reports/s vs single %.0f reports/s (%.2fx, exact)\n",
				top.Relays, top.ReportsPerSec, float64(rs.Users)/rs.SingleSeconds, top.Speedup)
		}
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ldpbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ldpbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ldpbench: wrote %s\n", *jsonPath)
	}
}
