package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestRunHHCarriesUsersAcrossStaleRound pins the 409 recovery contract:
// when another driver closes the round mid-upload, the refused batch
// and the unreported tail of the user group are re-privatized against
// the refetched frontier instead of being dropped as failures — every
// user's single report lands in exactly one round.
func TestRunHHCarriesUsersAcrossStaleRound(t *testing.T) {
	reg := core.NewCollectionRegistry()
	inner := core.NewMultiService(reg, nil).Handler()
	var once sync.Once
	outer := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/report/batch") {
			// A racing driver closes round 0 just before our first batch
			// lands: the server must 409 the whole batch.
			once.Do(func() {
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodPost, "/collections/words/advance", nil)
				inner.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("injected advance status %d: %s", rec.Code, rec.Body)
				}
			})
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(outer)
	defer ts.Close()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/collections",
		strings.NewReader(`{"name":"words","task":"hh","epsilon":2,"bits":4,"levels":2,"k":2,"shards":2}`))
	inner.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d: %s", rec.Code, rec.Body)
	}

	// 40 users on "stdin": 20 per round.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = old }()
	go func() {
		defer w.Close()
		for i := 0; i < 40; i++ {
			fmt.Fprintln(w, i%16)
		}
	}()

	if err := runHH(ts.Client(), &targetRing{targets: []string{ts.URL + "/collections/words"}}, 10, 1, true); err != nil {
		t.Fatalf("runHH: %v", err)
	}

	// Round 0 closed with nothing in it; every one of the 40 users must
	// have landed in round 1 (its own 20 plus the 20 carried out of the
	// stale round 0).
	c, ok := reg.Get("words")
	if !ok {
		t.Fatal("collection gone")
	}
	agg := c.Aggregator()
	if !agg.Done() || agg.Collected() != 40 {
		t.Fatalf("done=%v collected=%d, want done with all 40 reports", agg.Done(), agg.Collected())
	}
}
