// Command ldpclient is the user-side half of the collection pipeline:
// it reads raw records (one per line) from stdin, privatizes each one
// locally with crypto/rand randomness, and POSTs the randomized
// envelopes to an ldpd server. Raw values never leave the process.
//
// The -task flag selects the record type and mechanism family:
//
//	-task freq   (default) integer values in [0, domain); mechanisms
//	             GRR, SUE, OUE, SHE, THE, BLH, OLH, HRR, SS
//	-task mean   numeric records in [-1,1]: one float per line, or
//	             -dim comma-separated floats; mechanisms duchi, harmony
//	-task sketch arbitrary string items (words, URLs); mechanisms
//	             CMS, HCMS with -width/-hashes/-sketch-seed matching
//	             the server's collection
//	-task hh     unsigned integer items over a huge bit-string domain;
//	             drives the interactive PEM heavy-hitter protocol (see
//	             below)
//
// The hh task is interactive: the client reads all values up front,
// splits them into one user group per round, and then follows the
// server's protocol — poll GET .../frontier for the current round and
// prefix length, privatize each group member's prefix at that length,
// report with the round tag, and close the round via POST .../advance
// (disable with -hh-advance=false when the server auto-advances on an
// advance_quota). Epsilon, bits and levels all come from the frontier,
// so the only required flags are -server and -collection; when the
// protocol completes, the discovered heavy hitters are printed.
//
// With -batch > 1 the client buffers that many privatized envelopes
// and ships them in one POST /report/batch request, which is how a
// real deployment amortizes per-request overhead; batching changes the
// transport framing only, every value is still randomized
// independently before it is buffered.
//
// With -encoding binary the envelopes travel in the compact binary
// wire format (Content-Type: application/x-ldp-binary) instead of
// JSON — same randomization, same validation, fewer bytes. The server
// advertises which encodings a collection accepts in its /status
// "encodings" field; hh collections are JSON-only, so -task hh
// rejects -encoding binary.
//
// Requests that fail with a transport error or a retriable status
// (5xx, 429) are retried up to -retries times with exponential backoff
// and jitter. Every batch carries a random Idempotency-Key header, and
// the server deduplicates on it — even across a server restart — so a
// retry of a batch whose acknowledgment was lost in transit is
// answered from the record instead of double-counted. With -retries >
// 0 (the default), -batch 1 ships single-envelope batches through the
// same idempotent route; -retries 0 restores the bare POST /report
// path with no retrying.
//
// With -collection NAME the reports target /collections/NAME/report
// on a multi-survey server; without it they go to the flat routes,
// which serve the server's default collection.
//
// Usage:
//
//	seq 0 99 | ldpclient -server http://localhost:8080 -mechanism OLH -epsilon 1 -domain 128 -batch 50
//	seq 0 31 | ldpclient -collection study-a -mechanism GRR -epsilon 1 -domain 32
//	printf '0.23\n-0.7\n' | ldpclient -collection screen-time -task mean -epsilon 1
//	printf 'hello\nworld\n' | ldpclient -collection words -task sketch -epsilon 2 -width 256 -hashes 16
//	seq 1000 4999 | ldpclient -collection new-words -task hh -batch 200
package main

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/binenc"
	"repro/internal/core"
	"repro/internal/task"
	"repro/internal/task/cmstask"
	"repro/internal/task/hhtask"
	"repro/internal/task/meantask"
)

// privatizer turns one stdin line into a privatized wire envelope (a
// JSON object or a binary frame, per the selected -encoding).
type privatizer func(line string) (json.RawMessage, error)

// wireCodec is the transport framing half of -encoding: the request
// media type plus how a slice of envelopes becomes one batch body.
type wireCodec struct {
	contentType string
	binary      bool
}

var (
	jsonCodec   = wireCodec{contentType: "application/json"}
	binaryCodec = wireCodec{contentType: core.ContentTypeBinary, binary: true}
)

// encodeBatch frames the pending envelopes into one /report/batch
// body: a JSON array, or the binary count-plus-length-prefixed form.
func (wc wireCodec) encodeBatch(batch []json.RawMessage) ([]byte, error) {
	if !wc.binary {
		return json.Marshal(batch)
	}
	w := binenc.NewWriter()
	defer w.Release()
	w.Uvarint(uint64(len(batch)))
	for _, env := range batch {
		w.Blob(env)
	}
	return append([]byte(nil), w.Bytes()...), nil
}

func main() {
	var (
		server     = flag.String("server", "http://localhost:8080", "ldpd base URL, or a comma-separated list of relay URLs to round-robin batches across")
		addr       = flag.String("addr", "", "alias for -server (takes precedence when set): comma-separated ldpd/relay base URLs")
		collection = flag.String("collection", "", "target collection (empty = the server's default collection via the flat routes)")
		taskName   = flag.String("task", task.TypeFreq, "task family: freq, mean, sketch")
		mechanism  = flag.String("mechanism", "", "mechanism within the task family (default: OLH / duchi / CMS per task)")
		epsilon    = flag.Float64("epsilon", 1.0, "privacy budget per report")
		domain     = flag.Int("domain", 128, "freq: input domain size")
		dim        = flag.Int("dim", 1, "mean: record dimension (harmony; duchi is scalar)")
		width      = flag.Int("width", 1024, "sketch: counters per hash row (power of two for HCMS)")
		hashes     = flag.Int("hashes", 64, "sketch: number of hash rows")
		sketchSeed = flag.Uint64("sketch-seed", 0, "sketch: shared hash seed (must match the collection)")
		batch      = flag.Int("batch", 1, "envelopes per request (1 = POST /report per value; oversized batches auto-flush early to fit the server's body cap)")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		retries    = flag.Int("retries", 3, "retry attempts per request on transport errors and 5xx/429 responses (idempotent: every batch carries a dedup key; 0 disables retrying and sends -batch 1 via bare POST /report)")
		hhAdvance  = flag.Bool("hh-advance", true, "hh: close each round via POST .../advance after reporting its group (disable when the server auto-advances on advance_quota)")
		encoding   = flag.String("encoding", "json", "report wire encoding: json, or binary for collections that advertise it (freq, mean, sketch)")
	)
	flag.Parse()
	if *batch < 1 {
		fmt.Fprintln(os.Stderr, "ldpclient: -batch must be at least 1")
		os.Exit(2)
	}
	if *retries < 0 {
		fmt.Fprintln(os.Stderr, "ldpclient: -retries must be non-negative")
		os.Exit(2)
	}
	codec := jsonCodec
	switch *encoding {
	case "json":
	case "binary":
		codec = binaryCodec
		if *taskName == task.TypeHH {
			// The hh protocol's phased envelopes ride the JSON wire only.
			fmt.Fprintln(os.Stderr, "ldpclient: -task hh has no binary encoding; use -encoding json")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "ldpclient: unknown -encoding %q (have json, binary)\n", *encoding)
		os.Exit(2)
	}
	list := *server
	if *addr != "" {
		list = *addr
	}
	var targets []string
	for _, t := range strings.Split(list, ",") {
		t = strings.TrimSuffix(strings.TrimSpace(t), "/")
		if t == "" {
			continue
		}
		if *collection != "" {
			t += "/collections/" + url.PathEscape(*collection)
		}
		targets = append(targets, t)
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "ldpclient: -server/-addr names no targets")
		os.Exit(2)
	}
	ring := &targetRing{targets: targets}
	httpClient := &http.Client{Timeout: *timeout}

	if *taskName == task.TypeHH {
		// The hh protocol is round-structured, not line-streamed: it
		// has its own driver.
		if err := runHH(httpClient, ring, *batch, *retries, *hhAdvance); err != nil {
			fmt.Fprintln(os.Stderr, "ldpclient:", err)
			os.Exit(1)
		}
		return
	}

	privatize, err := newPrivatizer(*taskName, *mechanism, *epsilon, *domain, *dim, *width, *hashes, *sketchSeed, codec.binary)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldpclient:", err)
		os.Exit(2)
	}

	// Flush early when the encoded batch would approach the server's
	// 8 MiB body cap — wide envelopes (SHE at large domains, CMS at
	// large widths) hit the byte limit long before a reasonable -batch
	// count does, and a whole oversize batch would be rejected outright.
	const maxBatchBody = 6 << 20

	sent, failed := 0, 0
	pending := make([]json.RawMessage, 0, *batch)
	pendingBytes := 0
	flush := func() {
		if len(pending) == 0 {
			return
		}
		n, err := postBatch(httpClient, ring.pick(), codec, pending, *retries)
		sent += n
		failed += len(pending) - n
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldpclient: %v\n", err)
		}
		pending = pending[:0]
		pendingBytes = 0
	}

	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		env, err := privatize(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldpclient: skipping %q: %v\n", line, err)
			failed++
			continue
		}
		if *batch == 1 {
			if *retries > 0 {
				// A single-envelope batch rides the idempotent route, so
				// a lost acknowledgment can be retried without the risk
				// of double-counting the report.
				n, err := postBatch(httpClient, ring.pick(), codec, []json.RawMessage{env}, *retries)
				sent += n
				failed += 1 - n
				if err != nil {
					fmt.Fprintf(os.Stderr, "ldpclient: %v\n", err)
				}
				continue
			}
			if err := post(httpClient, ring.pick()+"/report", codec.contentType, env); err != nil {
				fmt.Fprintf(os.Stderr, "ldpclient: %v\n", err)
				failed++
				continue
			}
			sent++
			continue
		}
		size := len(env) + 1 // plus the array separator
		if len(pending) > 0 && pendingBytes+size > maxBatchBody {
			flush()
		}
		pending = append(pending, env)
		pendingBytes += size
		if len(pending) == *batch {
			flush()
		}
	}
	flush()
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ldpclient: stdin:", err)
		os.Exit(1)
	}
	fmt.Printf("ldpclient: sent %d reports (%d failed) via %s ε=%g\n", sent, failed, *taskName, *epsilon)
	if failed > 0 {
		os.Exit(1)
	}
}

// targetRing rotates report batches across a fleet of relay (or
// aggregator) base URLs. Control-plane calls — frontier fetches and
// conditional advances — stick to the first target instead: in a relay
// topology every relay mirrors the same upstream frontier, so one
// consistent vantage point avoids chasing propagation skew between
// relays mid-round.
type targetRing struct {
	targets []string
	next    int
}

// pick returns the next target in rotation.
func (t *targetRing) pick() string {
	b := t.targets[t.next%len(t.targets)]
	t.next++
	return b
}

// first returns the stable control-plane target.
func (t *targetRing) first() string { return t.targets[0] }

// newPrivatizer builds the line → envelope function for the selected
// task family, resolving the per-task default mechanism. With binary
// set the envelopes come out in the task's binary wire layout instead
// of JSON (the caller ships them under the matching Content-Type).
func newPrivatizer(taskName, mechanism string, epsilon float64, domain, dim, width, hashes int, sketchSeed uint64, binary bool) (privatizer, error) {
	switch taskName {
	case task.TypeFreq:
		if mechanism == "" {
			mechanism = core.MechanismOLH
		}
		client, err := core.NewClient(mechanism, core.PrivacyParams{Epsilon: epsilon, Domain: domain}, nil)
		if err != nil {
			return nil, err
		}
		return func(line string) (json.RawMessage, error) {
			v, err := strconv.Atoi(line)
			if err != nil {
				return nil, err
			}
			if binary {
				return client.ReportBinary(v)
			}
			env, err := client.Report(v)
			if err != nil {
				return nil, err
			}
			return json.Marshal(env)
		}, nil
	case task.TypeMean:
		if mechanism == "" {
			mechanism = meantask.MechanismDuchi
			if dim > 1 {
				mechanism = meantask.MechanismHarmony
			}
		}
		client, err := meantask.NewClient(task.Config{Task: task.TypeMean, Mechanism: mechanism, Epsilon: epsilon, Dim: dim}, nil)
		if err != nil {
			return nil, err
		}
		return func(line string) (json.RawMessage, error) {
			parts := strings.Split(line, ",")
			if len(parts) != client.Dim() {
				return nil, fmt.Errorf("record has %d values, want %d", len(parts), client.Dim())
			}
			x := make([]float64, len(parts))
			for i, p := range parts {
				v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
				if err != nil {
					return nil, err
				}
				x[i] = v
			}
			if binary {
				return client.ReportBinary(x)
			}
			return client.Report(x)
		}, nil
	case task.TypeSketch:
		if mechanism == "" {
			mechanism = cmstask.MechanismCMS
		}
		client, err := cmstask.NewClient(task.Config{
			Task: task.TypeSketch, Mechanism: mechanism, Epsilon: epsilon,
			Width: width, Hashes: hashes, SketchSeed: sketchSeed,
		}, nil)
		if err != nil {
			return nil, err
		}
		return func(line string) (json.RawMessage, error) {
			if binary {
				return client.ReportBinary([]byte(line))
			}
			return client.Report([]byte(line))
		}, nil
	default:
		return nil, fmt.Errorf("unknown task %q (have freq, mean, sketch, hh)", taskName)
	}
}

// runHH drives the interactive PEM heavy-hitter protocol end to end:
// values (one unsigned integer per line on stdin) are split into one
// user group per round, and each round's group is privatized against
// the frontier the server currently publishes. Because the frontier is
// refetched before every round, the driver picks the protocol up
// wherever the server stands — including a server that restarted from
// a mid-protocol checkpoint.
func runHH(c *http.Client, ring *targetRing, batchSize, retries int, advance bool) error {
	var values []uint64
	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		v, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return fmt.Errorf("hh value %q: %w", line, err)
		}
		values = append(values, v)
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("stdin: %w", err)
	}
	if len(values) == 0 {
		return fmt.Errorf("no values on stdin")
	}

	f, err := fetchFrontier(c, ring.first())
	if err != nil {
		return err
	}
	n, sent, failed := len(values), 0, 0
	// reportRound privatizes users against round and ships them in
	// batches. When a batch bounces with 409 the round moved mid-upload:
	// the refused batch plus the not-yet-reported tail have spent no
	// budget, so they come back as carry for the caller to re-privatize
	// against the refetched frontier (a report re-randomized for the new
	// round is a fresh ε-spend of the same single budget, since the stale
	// one was never aggregated).
	reportRound := func(reporter *hhtask.Client, users []uint64, round int) (carry []uint64) {
		pending := make([]json.RawMessage, 0, min(batchSize, len(users)))
		pendingUsers := make([]uint64, 0, min(batchSize, len(users)))
		flush := func(tail []uint64) []uint64 {
			if len(pending) == 0 {
				return nil
			}
			got, err := postBatch(c, ring.pick(), jsonCodec, pending, retries)
			if errors.Is(err, errStaleRound) {
				left := append(append([]uint64(nil), pendingUsers...), tail...)
				fmt.Fprintf(os.Stderr, "ldpclient: round %d: %v; re-reporting %d users against the new round\n",
					round, err, len(left))
				return left
			}
			sent += got
			failed += len(pending) - got
			if err != nil {
				fmt.Fprintf(os.Stderr, "ldpclient: round %d: %v\n", round, err)
			}
			pending, pendingUsers = pending[:0], pendingUsers[:0]
			return nil
		}
		for i, v := range users {
			env, err := reporter.Report(v, round)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ldpclient: skipping %d: %v\n", v, err)
				failed++
				continue
			}
			pending = append(pending, env)
			pendingUsers = append(pendingUsers, v)
			if len(pending) >= batchSize {
				if left := flush(users[i+1:]); left != nil {
					return left
				}
			}
		}
		return flush(nil)
	}
	var carry []uint64
	for !f.Done {
		reporter, err := hhtask.NewClient(f.Epsilon, f.Bits, f.Levels, nil)
		if err != nil {
			return fmt.Errorf("frontier %+v: %w", f, err)
		}
		// One disjoint user group per round — each user spends its full
		// ε on exactly one report in exactly one round — plus any users
		// carried out of a round that closed under them.
		group := values[f.Round*n/f.Levels : (f.Round+1)*n/f.Levels]
		if len(carry) > 0 {
			group = append(append([]uint64(nil), carry...), group...)
			carry = nil
		}
		prev := f.Round
		if carry = reportRound(reporter, group, prev); carry != nil {
			// The round closed mid-upload; pick up the new round and
			// fold the unspent users into its group.
			if f, err = fetchFrontier(c, ring.first()); err != nil {
				return err
			}
			if !f.Done && f.Round == prev {
				return fmt.Errorf("server refused round-%d reports as stale but still publishes round %d", prev, prev)
			}
			continue
		}
		fmt.Printf("ldpclient: round %d/%d: reported %d users at prefix length %d\n",
			prev+1, f.Levels, len(group), f.PrefixLen)
		if advance {
			// Conditional on the round we reported into: if another
			// driver (or the server's quota) closed it first, the 409
			// is success for our purposes — the frontier refetch below
			// picks up the new round.
			if err := postAdvance(c, ring.first(), prev); err != nil {
				return fmt.Errorf("advance after round %d: %w", prev, err)
			}
		}
		if f, err = fetchFrontier(c, ring.first()); err != nil {
			return err
		}
		if !f.Done && f.Round == prev {
			return fmt.Errorf("round %d did not advance — enable -hh-advance or configure the collection's advance_quota", prev)
		}
	}
	if len(carry) > 0 {
		// The protocol completed before the carried users found a round
		// to report into; their budget is unspent but the survey is over.
		fmt.Fprintf(os.Stderr, "ldpclient: protocol completed before %d carried users could report\n", len(carry))
		failed += len(carry)
	}
	fmt.Printf("ldpclient: protocol done after %d rounds; sent %d reports (%d failed)\n", f.Levels, sent, failed)
	for _, h := range f.Hits {
		fmt.Printf("ldpclient: heavy hitter %d (count ≈ %.0f)\n", h.Value, h.Count)
	}
	if failed > 0 {
		return fmt.Errorf("%d reports failed", failed)
	}
	return nil
}

// fetchFrontier reads the collection's current hh frontier.
func fetchFrontier(c *http.Client, base string) (hhtask.Frontier, error) {
	resp, err := c.Get(base + "/frontier")
	if err != nil {
		return hhtask.Frontier{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return hhtask.Frontier{}, fmt.Errorf("frontier: server returned %s (reading body: %v)", resp.Status, err)
	}
	if resp.StatusCode != http.StatusOK {
		return hhtask.Frontier{}, fmt.Errorf("frontier: server returned %s: %s", resp.Status, bodySnippet(raw))
	}
	var fr core.FrontierResponse
	if err := json.Unmarshal(raw, &fr); err != nil {
		return hhtask.Frontier{}, fmt.Errorf("frontier: server returned %s: %s", resp.Status, bodySnippet(raw))
	}
	var f hhtask.Frontier
	if err := json.Unmarshal(fr.Frontier, &f); err != nil {
		return hhtask.Frontier{}, fmt.Errorf("frontier payload: %w", err)
	}
	return f, nil
}

// postAdvance closes the given round, conditionally: the server
// advances only if the round is still current, so a round another
// driver already closed comes back 409 — which is not a failure here,
// just someone else finishing the job first.
func postAdvance(c *http.Client, base string, round int) error {
	body := fmt.Sprintf(`{"round":%d}`, round)
	resp, err := c.Post(base+"/advance", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server returned %s: %s", resp.Status, bodySnippet(raw))
	}
	return nil
}

func post(c *http.Client, url, contentType string, env json.RawMessage) error {
	resp, err := c.Post(url, contentType, bytes.NewReader(env))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		// The body is the diagnostic ("unknown collection", "mechanism
		// mismatch", ...); the status line alone hides it.
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server returned %s: %s", resp.Status, bodySnippet(raw))
	}
	return nil
}

// postBatch ships one /report/batch request, retrying transport
// errors and retriable statuses (5xx, 429) up to `retries` times with
// exponential backoff, and returns how many envelopes the server
// accepted. Every attempt carries the same random Idempotency-Key, so
// a retry of a batch the server already processed (the acknowledgment
// was lost, not the request) is answered from the server's dedup
// record instead of aggregated twice.
func postBatch(c *http.Client, base string, codec wireCodec, batch []json.RawMessage, retries int) (int, error) {
	body, err := codec.encodeBatch(batch)
	if err != nil {
		return 0, err
	}
	id := newBatchID()
	for attempt := 0; ; attempt++ {
		n, retriable, err := postBatchOnce(c, base, id, codec.contentType, body, len(batch))
		if err == nil || !retriable || attempt >= retries {
			return n, err
		}
		time.Sleep(backoff(attempt))
	}
}

// postBatchOnce is a single /report/batch attempt. retriable marks
// failures where the server's state is unknown or the condition is
// transient — exactly the cases a same-key retry resolves safely.
// When the response body is not the expected BatchResponse JSON (a
// 405, a proxy error page, ...) the error carries the HTTP status and
// a snippet of the body, which is what actually identifies the problem
// — not the decode failure.
func postBatchOnce(c *http.Client, base, id, contentType string, body []byte, batchLen int) (n int, retriable bool, err error) {
	req, err := http.NewRequest(http.MethodPost, base+"/report/batch", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Content-Type", contentType)
	if id != "" {
		req.Header.Set("Idempotency-Key", id)
	}
	resp, err := c.Do(req)
	if err != nil {
		return 0, true, err
	}
	defer resp.Body.Close()
	// The cap only guards against a pathological non-ldpd responder; a
	// real BatchResponse fits even with a long joined rejection error,
	// so the accepted count is never lost to truncation.
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, true, fmt.Errorf("server returned %s (reading body: %v)", resp.Status, err)
	}
	if resp.StatusCode >= http.StatusInternalServerError || resp.StatusCode == http.StatusTooManyRequests {
		return 0, true, fmt.Errorf("server returned %s: %s", resp.Status, bodySnippet(raw))
	}
	var br core.BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		return 0, false, fmt.Errorf("server returned %s: %s", resp.Status, bodySnippet(raw))
	}
	if resp.StatusCode == http.StatusConflict {
		// The server 409s a batch only when it accepted none of it for
		// being round-stale (advances never land mid-batch), so the whole
		// batch is unspent budget the caller may re-privatize.
		return br.Accepted, false, fmt.Errorf("server returned %s: %s: %w", resp.Status, bodySnippet(raw), errStaleRound)
	}
	if resp.StatusCode != http.StatusAccepted {
		return br.Accepted, false, fmt.Errorf("server rejected %d of %d: %s", br.Rejected, batchLen, br.Error)
	}
	return br.Accepted, false, nil
}

// errStaleRound marks a batch the server refused whole with 409: the
// collection's round moved between the frontier fetch and the upload.
// None of the batch's users spent budget, so the hh driver re-privatizes
// them against the refetched frontier instead of counting them failed.
var errStaleRound = errors.New("round advanced mid-upload")

// newBatchID draws a fresh 128-bit Idempotency-Key. An empty string
// (randomness unavailable) sends the batch without deduplication —
// worse retry semantics, never a blocked upload.
func newBatchID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return hex.EncodeToString(b[:])
}

// backoff returns the sleep before retry number attempt+1: 250ms
// doubling per attempt, capped at 8s, with the upper half jittered so
// a fleet of clients retrying one outage does not re-arrive in step.
func backoff(attempt int) time.Duration {
	if attempt > 5 {
		attempt = 5
	}
	d := 250 * time.Millisecond << uint(attempt)
	return d/2 + time.Duration(mrand.Int63n(int64(d/2)+1))
}

// bodySnippet compresses a response body into one loggable line.
func bodySnippet(raw []byte) string {
	s := strings.Join(strings.Fields(string(raw)), " ")
	if s == "" {
		return "(empty body)"
	}
	const max = 200
	if len(s) > max {
		// Truncate, then drop any rune the cut split in half.
		s = strings.ToValidUTF8(s[:max], "") + "..."
	}
	return s
}
