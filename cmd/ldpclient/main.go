// Command ldpclient is the user-side half of the collection pipeline:
// it reads integer values (one per line) from stdin, privatizes each
// one locally with crypto/rand randomness, and POSTs the randomized
// envelopes to an ldpd server. Raw values never leave the process.
//
// Usage:
//
//	seq 0 99 | ldpclient -server http://localhost:8080 -mechanism OLH -epsilon 1 -domain 128
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	var (
		server    = flag.String("server", "http://localhost:8080", "ldpd base URL")
		mechanism = flag.String("mechanism", core.MechanismOLH, "frequency oracle: "+strings.Join(core.Mechanisms(), ", "))
		epsilon   = flag.Float64("epsilon", 1.0, "privacy budget per report")
		domain    = flag.Int("domain", 128, "input domain size")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request timeout")
	)
	flag.Parse()

	client, err := core.NewClient(*mechanism, core.PrivacyParams{Epsilon: *epsilon, Domain: *domain}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	httpClient := &http.Client{Timeout: *timeout}

	sent, failed := 0, 0
	scanner := bufio.NewScanner(os.Stdin)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldpclient: skipping %q: %v\n", line, err)
			failed++
			continue
		}
		env, err := client.Report(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldpclient: %v\n", err)
			failed++
			continue
		}
		if err := post(httpClient, *server+"/report", env); err != nil {
			fmt.Fprintf(os.Stderr, "ldpclient: %v\n", err)
			failed++
			continue
		}
		sent++
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ldpclient: stdin:", err)
		os.Exit(1)
	}
	fmt.Printf("ldpclient: sent %d reports (%d failed) via %s ε=%g\n", sent, failed, *mechanism, *epsilon)
	if failed > 0 {
		os.Exit(1)
	}
}

func post(c *http.Client, url string, env core.Envelope) error {
	body, err := json.Marshal(env)
	if err != nil {
		return err
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}
