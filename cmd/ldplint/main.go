// Command ldplint machine-checks this repository's concurrency,
// determinism, and durability invariants (see internal/analysis).
//
// It speaks the cmd/go vettool protocol, so the canonical invocation
// is the one CI runs:
//
//	go build -o /tmp/ldplint ./cmd/ldplint
//	go vet -vettool=/tmp/ldplint ./...
//
// Under -vettool, cmd/go drives one process per package with a
// vet.cfg describing the type-checked unit (source files, import map,
// export-data locations), caches results by the tool's -V=full build
// ID, and treats exit status 2 as "diagnostics reported". Run
// standalone, ldplint loads packages itself:
//
//	go run ./cmd/ldplint ./...
//
// Findings are suppressed line-by-line with an annotation naming the
// analyzer and the reason:
//
//	_ = f.Close() //ldplint:ok fsiocheck superseded by the rename above
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ldplint: ")

	versionFlag := flag.String("V", "", "print version and exit (cmd/go tool protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON (cmd/go tool protocol)")
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		// No analyzer-specific flags; cmd/go only needs valid JSON.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args))
}

// printVersion implements `ldplint -V=full`. cmd/go derives the vet
// cache key from this line, so it must carry a content hash: stale
// tool builds would otherwise serve stale verdicts from the cache.
func printVersion() {
	name := filepath.Base(os.Args[0])
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	h := sha256.New()
	if f, err := os.Open(self); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, h.Sum(nil))
}

// vetConfig mirrors the vet.cfg JSON cmd/go writes for each package
// unit (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by a vet.cfg.
// Exit codes follow the vettool convention: 0 clean, 1 tool failure,
// 2 diagnostics reported.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("parsing %s: %v", cfgPath, err)
		return 1
	}
	if cfg.VetxOnly {
		// Dependency pass: cmd/go only wants facts, and ldplint's
		// analyzers keep none, so an empty facts file suffices.
		return writeVetx(cfg.VetxOutput)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if resolved, ok := cfg.ImportMap[path]; ok {
			path = resolved
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	fset := token.NewFileSet()
	lp, err := analysis.TypeCheck(fset, cfg.ImportPath, cfg.GoFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput)
		}
		log.Print(err)
		return 1
	}
	diags, err := analysis.Run(analysis.Analyzers(), fset, lp.Files, lp.Pkg, lp.Info)
	if err != nil {
		log.Print(err)
		return 1
	}
	if code := writeVetx(cfg.VetxOutput); code != 0 {
		return code
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		}
		return 2
	}
	return 0
}

func writeVetx(path string) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, nil, 0o666); err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

// standalone loads packages by pattern and analyzes each, printing
// findings to stdout.
func standalone(patterns []string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		log.Print(err)
		return 1
	}
	exit := 0
	for _, lp := range pkgs {
		diags, err := analysis.Run(analysis.Analyzers(), lp.Fset, lp.Files, lp.Pkg, lp.Info)
		if err != nil {
			log.Printf("%s: %v", lp.Path, err)
			return 1
		}
		for _, d := range diags {
			fmt.Printf("%s: %s\n", lp.Fset.Position(d.Pos), d.Message)
			exit = 2
		}
	}
	return exit
}
