// Command ldpd runs an LDP aggregation server: clients POST privatized
// report envelopes to /report (or JSON arrays of envelopes to
// /report/batch), and analysts read debiased estimates from /estimate
// (the raw values never leave the clients). Ingestion is sharded
// across per-core oracles so heavy traffic does not serialize on one
// mutex.
//
// Usage:
//
//	ldpd -addr :8080 -mechanism OLH -epsilon 1.0 -domain 128 -shards 0
//
// Report format (JSON), e.g. for GRR:
//
//	curl -X POST localhost:8080/report -d '{"mechanism":"GRR","value":3}'
//	curl -X POST localhost:8080/report/batch -d '[{"mechanism":"GRR","value":3},{"mechanism":"GRR","value":5}]'
//	curl localhost:8080/estimate
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		mechanism = flag.String("mechanism", core.MechanismOLH, "frequency oracle: "+strings.Join(core.Mechanisms(), ", "))
		epsilon   = flag.Float64("epsilon", 1.0, "privacy budget per report")
		domain    = flag.Int("domain", 128, "input domain size")
		shards    = flag.Int("shards", 0, "aggregation shards (0 = one per core)")
	)
	flag.Parse()

	svc, err := core.NewServiceSharded(*mechanism, core.PrivacyParams{Epsilon: *epsilon, Domain: *domain}, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	log.Printf("ldpd: %s with ε=%g over domain %d (%d shards), listening on %s",
		*mechanism, *epsilon, *domain, svc.Aggregator().Shards(), *addr)
	log.Fatal(http.ListenAndServe(*addr, svc.Handler()))
}
