// Command ldpd runs an LDP aggregation server: clients POST privatized
// report envelopes to /report (or JSON arrays of envelopes to
// /report/batch), and analysts read debiased estimates from /estimate
// (the raw values never leave the clients). Ingestion is sharded
// across per-core oracles so heavy traffic does not serialize on one
// mutex.
//
// One server hosts many concurrent surveys of any registered task
// family: POST /collections creates a named collection with its own
// task type ("freq" frequency oracles, "mean" numeric means, "sketch"
// private count sketches, "hh" interactive heavy-hitter discovery),
// mechanism and privacy parameters, and
// /collections/{name}/report|estimate|status address it. The flat
// routes remain wired to the "default" collection (always a frequency
// survey), configured by the -mechanism/-epsilon/-domain flags.
//
// Phased tasks like "hh" run an interactive multi-round protocol: GET
// /collections/{name}/frontier publishes the current round's state
// (the prefix length to report and the surviving prefixes), clients
// report against it with a round tag, and POST
// /collections/{name}/advance — or an "advance_quota" in the creation
// body, which advances automatically every that-many reports — closes
// the round. Reports tagged with a stale round are answered 409 so the
// client refetches the frontier.
//
// With -state-dir set, every collection is checkpointed to a
// checksummed JSON snapshot in that directory (atomically,
// write-temp-then-rename) every -checkpoint-interval, restored on
// startup, and flushed one final time on SIGINT/SIGTERM before the
// graceful shutdown completes. Between checkpoints, every acknowledged
// report batch is appended to a per-collection write-ahead journal and
// replayed on restart, so a crash at any moment loses nothing the
// server acknowledged; -journal-sync picks whether each append is
// fsync'd ("always", survives power loss) or left to the page cache
// ("none", survives process crashes only, far cheaper). Snapshots that
// fail their checksum at startup are set aside under a .corrupt suffix
// and every other collection is restored. GET /healthz reports
// per-collection checkpoint failures and journal lag, turning 503 once
// -unhealthy-after consecutive checkpoints have failed.
//
// With -mode relay -upstream <url>, the process becomes a relay ingest
// node: it accepts the ordinary report routes, folds into its own
// sharded aggregator, and every -flush-interval cuts the accumulated
// state into a merged delta it ships to the upstream aggregation node
// over POST /collections/{name}/merge — durably (journal flush frames
// + an on-disk outbox) and exactly-once (per-delta idempotency keys).
// Collections are mirrored from the upstream; /estimate and /frontier
// proxy upstream, /status and /healthz additionally report the relay's
// flushing standing. N relays in front of one aggregation node scale
// ingest horizontally without changing any client.
//
// Usage:
//
//	ldpd -addr :8080 -mechanism OLH -epsilon 1.0 -domain 128 -shards 0 \
//	     -state-dir /var/lib/ldpd -checkpoint-interval 30s -journal-sync always
//	ldpd -addr :8081 -mode relay -upstream http://agg:8080 \
//	     -state-dir /var/lib/ldpd-relay -flush-interval 5s
//
// Report format (JSON), e.g. for GRR:
//
//	curl -X POST localhost:8080/report -d '{"mechanism":"GRR","value":3}'
//	curl -X POST localhost:8080/collections -d '{"name":"study-a","mechanism":"GRR","epsilon":1,"domain":32}'
//	curl -X POST localhost:8080/collections -d '{"name":"screen-time","task":"mean","mechanism":"duchi","epsilon":1}'
//	curl -X POST localhost:8080/collections -d '{"name":"words","task":"sketch","mechanism":"CMS","epsilon":2,"width":256,"hashes":16}'
//	curl -X POST localhost:8080/collections -d '{"name":"new-words","task":"hh","epsilon":2,"bits":16,"levels":4,"k":8,"advance_quota":500}'
//	curl -X POST localhost:8080/collections/study-a/report -d '{"mechanism":"GRR","value":3}'
//	curl localhost:8080/collections/study-a/estimate
//	curl 'localhost:8080/collections/words/estimate?item=hello&item=world'
//	curl localhost:8080/collections/new-words/frontier
//	curl -X POST localhost:8080/collections/new-words/advance
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fsio"

	// Task adapters register themselves with the task registry; every
	// family linked here is creatable via POST /collections and
	// restorable from snapshots. (The freq adapter rides in with core.)
	_ "repro/internal/task/cmstask"
	_ "repro/internal/task/hhtask"
	_ "repro/internal/task/meantask"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		mode        = flag.String("mode", "aggregate", "\"aggregate\" (terminal aggregation node) or \"relay\" (fold locally, flush merged deltas to -upstream)")
		upstream    = flag.String("upstream", "", "relay mode: base URL of the upstream aggregation node (e.g. http://agg:8080)")
		flushEvery  = flag.Duration("flush-interval", cluster.DefaultFlushInterval, "relay mode: how often to flush merged deltas upstream")
		mechanism   = flag.String("mechanism", core.MechanismOLH, "default collection's frequency oracle: "+strings.Join(core.Mechanisms(), ", "))
		epsilon     = flag.Float64("epsilon", 1.0, "default collection's privacy budget per report")
		domain      = flag.Int("domain", 128, "default collection's input domain size")
		shards      = flag.Int("shards", 0, "aggregation shards per collection (0 = one per core)")
		stateDir    = flag.String("state-dir", "", "directory for per-collection snapshots (empty = memory only; required in relay mode)")
		checkpoint  = flag.Duration("checkpoint-interval", 30*time.Second, "how often to checkpoint collections to -state-dir")
		journalSync = flag.String("journal-sync", core.JournalSyncEvery, "write-ahead journal fsync policy: \"always\" (acknowledged reports survive power loss) or \"none\" (page-cache durability only)")
		unhealthy   = flag.Int("unhealthy-after", core.DefaultUnhealthyAfter, "consecutive checkpoint failures per collection before GET /healthz answers 503")
	)
	flag.Parse()
	if *journalSync != core.JournalSyncEvery && *journalSync != core.JournalSyncNone {
		fmt.Fprintf(os.Stderr, "ldpd: -journal-sync must be %q or %q, got %q\n", core.JournalSyncEvery, core.JournalSyncNone, *journalSync)
		os.Exit(2)
	}
	switch *mode {
	case "aggregate":
		if *upstream != "" {
			fmt.Fprintln(os.Stderr, "ldpd: -upstream is only meaningful with -mode relay")
			os.Exit(2)
		}
	case "relay":
		if *upstream == "" {
			fmt.Fprintln(os.Stderr, "ldpd: -mode relay requires -upstream")
			os.Exit(2)
		}
		if *stateDir == "" {
			// The relay's exactly-once story is journal + outbox; without
			// a state dir there is nowhere durable for either.
			fmt.Fprintln(os.Stderr, "ldpd: -mode relay requires -state-dir")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "ldpd: -mode must be \"aggregate\" or \"relay\", got %q\n", *mode)
		os.Exit(2)
	}
	if err := run(*addr, *mode, *upstream, *flushEvery, *mechanism, *epsilon, *domain, *shards, *stateDir, *checkpoint, *journalSync, *unhealthy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(addr, mode, upstream string, flushEvery time.Duration, mechanism string, epsilon float64, domain, shards int, stateDir string, checkpointEvery time.Duration, journalSync string, unhealthyAfter int) error {
	relayMode := mode == "relay"
	var outbox *cluster.Outbox
	reg := core.NewCollectionRegistry()
	var store *core.Store
	if stateDir != "" {
		var err error
		store, err = core.NewStoreFS(stateDir, fsio.OS, journalSync)
		if err != nil {
			return err
		}
		if relayMode {
			// The outbox and its flush sink must exist before Load: the
			// journal may hold relay flush frames whose replay re-cuts
			// deltas straight into the outbox.
			outbox, err = cluster.NewOutbox(fsio.OS, filepath.Join(stateDir, "outbox"))
			if err != nil {
				return err
			}
			store.SetFlushSink(cluster.FlushSink(outbox))
		}
		restored, err := store.Load(reg)
		if err != nil {
			return fmt.Errorf("ldpd: restoring %s: %w", stateDir, err)
		}
		if len(restored) > 0 {
			log.Printf("ldpd: restored %d collection(s) from %s: %s",
				len(restored), stateDir, strings.Join(restored, ", "))
		}
	}

	var def *core.Collection
	if !relayMode {
		defaultCfg := core.FreqCollectionConfig(mechanism, core.PrivacyParams{Epsilon: epsilon, Domain: domain}, shards)
		var ok bool
		def, ok = reg.Get(core.DefaultCollection)
		if ok {
			// A restored snapshot wins over the flags: silently rebuilding
			// the default collection with different parameters would orphan
			// its persisted counts.
			if def.Config() != defaultCfg {
				log.Printf("ldpd: default collection restored as %+v; flags %+v ignored", def.Config(), defaultCfg)
			}
		} else {
			var err error
			if def, err = reg.Create(core.DefaultCollection, defaultCfg); err != nil {
				return err
			}
			if store != nil {
				// A fresh default collection gets its journal and an
				// immediate snapshot, so its configuration (and everything
				// acknowledged before the first checkpoint tick) survives a
				// crash from the very first report on.
				if err := store.Attach(def); err != nil {
					return fmt.Errorf("ldpd: journal for default collection: %w", err)
				}
				if err := store.Save(reg, def); err != nil {
					return fmt.Errorf("ldpd: initial checkpoint: %w", err)
				}
			}
		}
	}

	svc := core.NewMultiService(reg, store)
	svc.SetUnhealthyAfter(unhealthyAfter)
	var relay *cluster.Relay
	handler := http.Handler(nil)
	if relayMode {
		// Relay mode: no flag-built default collection — every
		// collection (including "default") is mirrored from the
		// upstream, so its configuration matches the aggregation node
		// parameter for parameter and cut deltas merge exactly.
		relay = cluster.NewRelay(svc, store, cluster.NewUpstream(upstream), outbox)
		handler = relay.Handler()
	} else {
		handler = svc.Handler()
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if store != nil {
		if checkpointEvery > 0 {
			go checkpointLoop(ctx, store, reg, checkpointEvery)
		} else {
			// time.NewTicker panics on non-positive intervals; treat
			// them as "no periodic checkpoints" — creates/deletes are
			// still mirrored immediately and shutdown flushes.
			log.Print("ldpd: periodic checkpointing disabled (-checkpoint-interval <= 0)")
		}
	}

	if relay != nil {
		go relay.Run(ctx, flushEvery)
	}

	// Bind before announcing readiness, so a failed bind never logs a
	// "listening" line that the operator (or a readiness probe) trusts.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	if relayMode {
		log.Printf("ldpd: relay for upstream %s (flush every %s), listening on %s", upstream, flushEvery, ln.Addr())
	} else {
		// Report the effective configuration — the restored snapshot may
		// have overridden the flags, and shards=0 resolves to GOMAXPROCS.
		cfg := def.Config()
		log.Printf("ldpd: default %s with ε=%g over domain %d (%d shards), listening on %s",
			cfg.Mechanism, cfg.Epsilon, cfg.Domain, def.Aggregator().Shards(), ln.Addr())
	}

	// Both exits — a signal and an accept-loop failure — converge on
	// the same drain-then-flush sequence: even with the listener dead,
	// in-flight handlers may still be 202-ing reports, and the final
	// snapshot must hold everything the server acknowledged.
	var serveErr error
	select {
	case serveErr = <-errCh:
		log.Printf("ldpd: serve: %v", serveErr)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	log.Print("ldpd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("ldpd: shutdown: %v", err)
	}
	if relay != nil {
		// With the listener drained, one final flush ships everything
		// acknowledged; whatever cannot reach the upstream stays in the
		// journal-backed outbox for the next start.
		flushCtx, flushCancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := relay.Flush(flushCtx); err != nil {
			log.Printf("ldpd: final relay flush (deltas preserved in the outbox): %v", err)
		}
		flushCancel()
	}
	if store != nil {
		if err := store.SaveAll(reg); err != nil {
			// Joined with the serve error (if any): both failures
			// matter to whoever reads the process exit.
			return errors.Join(serveErr, fmt.Errorf("ldpd: final checkpoint: %w", err))
		}
		log.Printf("ldpd: final checkpoint written to %s", store.Dir())
	}
	return serveErr
}

// checkpointLoop periodically checkpoints every collection until the
// context is cancelled. Unchanged collections are skipped by the store
// (epoch comparison), so an idle server does no disk writes.
func checkpointLoop(ctx context.Context, store *core.Store, reg *core.CollectionRegistry, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if err := store.SaveAll(reg); err != nil {
				log.Printf("ldpd: checkpoint: %v", err)
			}
		}
	}
}
