package main

// Multi-process relay smoke test: one upstream aggregator, two relays,
// and a single-node reference server — four real ldpd processes — with
// freq and hh collections driven through the relays, one relay
// SIGKILLed mid-round and restarted, and the final upstream estimates
// asserted equal to the single node that folded the identical seeded
// envelopes. Gated behind LDP_RELAY_SMOKE=1: it builds the binary and
// boots processes, which belongs in its own CI job, not in every
// `go test ./...`.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/hhtask"
)

const smokeEnv = "LDP_RELAY_SMOKE"

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// smokeProc is one ldpd process under test.
type smokeProc struct {
	t    *testing.T
	bin  string
	args []string
	url  string
	cmd  *exec.Cmd
}

func (p *smokeProc) start() {
	p.t.Helper()
	cmd := exec.Command(p.bin, p.args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		p.t.Fatal(err)
	}
	p.cmd = cmd
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	p.t.Fatalf("process %v never became healthy at %s", p.args, p.url)
}

func (p *smokeProc) kill() {
	p.t.Helper()
	if p.cmd != nil && p.cmd.Process != nil {
		_ = p.cmd.Process.Kill() // SIGKILL: no shutdown flush, no checkpoint
		_, _ = p.cmd.Process.Wait()
		p.cmd = nil
	}
}

func postJSONBody(t *testing.T, url, id string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set("Idempotency-Key", id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getJSONInto(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("GET %s: %s: %s", url, resp.Status, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func TestRelaySmokeMultiProcess(t *testing.T) {
	if os.Getenv(smokeEnv) != "1" {
		t.Skipf("set %s=1 to run the multi-process relay smoke test", smokeEnv)
	}
	bin := filepath.Join(t.TempDir(), "ldpd")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/ldpd").CombinedOutput(); err != nil {
		t.Fatalf("building ldpd: %v\n%s", err, out)
	}

	upPort, refPort := freePort(t), freePort(t)
	r1Port, r2Port := freePort(t), freePort(t)
	upURL := fmt.Sprintf("http://127.0.0.1:%d", upPort)
	refURL := fmt.Sprintf("http://127.0.0.1:%d", refPort)
	r1URL := fmt.Sprintf("http://127.0.0.1:%d", r1Port)
	r2URL := fmt.Sprintf("http://127.0.0.1:%d", r2Port)

	up := &smokeProc{t: t, bin: bin, url: upURL, args: []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", upPort), "-state-dir", t.TempDir()}}
	ref := &smokeProc{t: t, bin: bin, url: refURL, args: []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", refPort), "-state-dir", t.TempDir()}}
	r2dir := t.TempDir()
	r1 := &smokeProc{t: t, bin: bin, url: r1URL, args: []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", r1Port), "-mode", "relay",
		"-upstream", upURL, "-state-dir", t.TempDir(), "-flush-interval", "1h"}}
	r2 := &smokeProc{t: t, bin: bin, url: r2URL, args: []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", r2Port), "-mode", "relay",
		"-upstream", upURL, "-state-dir", r2dir, "-flush-interval", "1h"}}
	up.start()
	ref.start()
	defer up.kill()
	defer ref.kill()

	// Both collections exist on the upstream and the reference node
	// before the relays boot, so their initial sync mirrors them. The
	// long -flush-interval keeps the test in control of every flush.
	freqCfg := core.CollectionConfig{
		Config: task.Config{Task: task.TypeFreq, Mechanism: core.MechanismGRR, Epsilon: 2, Domain: 8},
		Shards: 2,
	}
	hhCfg := core.CollectionConfig{
		Config: task.Config{Task: task.TypeHH, Mechanism: hhtask.MechanismPEM, Epsilon: 2, Bits: 8, Levels: 4, K: 3},
		Shards: 1,
	}
	for _, target := range []string{upURL, refURL} {
		for name, cfg := range map[string]core.CollectionConfig{"words": freqCfg, "top": hhCfg} {
			body, err := json.Marshal(core.CreateCollectionRequest{Name: name, CollectionConfig: cfg})
			if err != nil {
				t.Fatal(err)
			}
			if resp, raw := postJSONBody(t, target+"/collections", "", body); resp.StatusCode != http.StatusCreated {
				t.Fatalf("creating %s on %s: %s: %s", name, target, resp.Status, raw)
			}
		}
	}
	r1.start()
	r2.start()
	defer r1.kill()
	defer r2.kill()

	relayURLs := []string{r1URL, r2URL}
	sendBatch := func(target, col, id string, envs []json.RawMessage) []byte {
		t.Helper()
		body, err := json.Marshal(envs)
		if err != nil {
			t.Fatal(err)
		}
		resp, raw := postJSONBody(t, target+"/collections/"+col+"/report/batch", id, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("batch %s -> %s: %s: %s", id, target, resp.Status, raw)
		}
		return raw
	}
	flushAll := func() {
		t.Helper()
		for _, u := range relayURLs {
			if resp, raw := postJSONBody(t, u+"/flush", "", nil); resp.StatusCode != http.StatusOK {
				t.Fatalf("flush %s: %s: %s", u, resp.Status, raw)
			}
		}
	}

	// ---- freq: round-robin seeded batches across the relays, same
	// envelopes straight into the reference node.
	freqClient, err := core.NewClient(core.MechanismGRR, core.PrivacyParams{Epsilon: 2, Domain: 8}, ldprand.NewSplitMix64(301))
	if err != nil {
		t.Fatal(err)
	}
	freqSrc := ldprand.NewSplitMix64(302)
	freqBatch := func(n int) []json.RawMessage {
		envs := make([]json.RawMessage, n)
		for i := range envs {
			env, err := freqClient.Report(ldprand.Intn(freqSrc, 8))
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			envs[i] = raw
		}
		return envs
	}
	var killedFreqID string
	var killedFreqBatch []json.RawMessage
	for i := 0; i < 6; i++ {
		envs := freqBatch(10)
		id := fmt.Sprintf("freq-%d", i)
		sendBatch(relayURLs[i%2], "words", id, envs)
		sendBatch(refURL, "words", id, envs)
		if i%2 == 1 {
			killedFreqID, killedFreqBatch = id, envs
		}
	}

	// ---- hh round 0: both relays hold reports, nothing flushed yet.
	hhClient := func(seed uint64) *hhtask.Client {
		c, err := hhtask.NewClient(2, 8, 4, ldprand.NewSplitMix64(seed))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	hhSrc := ldprand.NewSplitMix64(304)
	hhBatch := func(c *hhtask.Client, round, n int) []json.RawMessage {
		envs := make([]json.RawMessage, n)
		for i := range envs {
			v := uint64(0xAB)
			if ldprand.Intn(hhSrc, 3) == 0 {
				v = uint64(ldprand.Intn(hhSrc, 256))
			}
			raw, err := c.Report(v, round)
			if err != nil {
				t.Fatal(err)
			}
			envs[i] = raw
		}
		return envs
	}
	c0 := hhClient(400)
	hhA := hhBatch(c0, 0, 30)
	hhB := hhBatch(c0, 0, 30)
	sendBatch(r1URL, "top", "hh-0-a", hhA)
	sendBatch(r2URL, "top", "hh-0-b", hhB)
	sendBatch(refURL, "top", "hh-0-a", hhA)
	sendBatch(refURL, "top", "hh-0-b", hhB)

	// ---- SIGKILL relay 2 mid-round: its acknowledged freq and hh
	// reports live only in its journal. Restart it over the same state
	// dir; boot replays the journal and the initial flush cycle ships
	// the recovered state upstream.
	r2.kill()
	r2restart := &smokeProc{t: t, bin: bin, url: r2URL, args: r2.args}
	r2restart.start()
	defer r2restart.kill()

	// A client that never saw the pre-kill acknowledgment retries the
	// same batch under the same idempotency key: it must deduplicate,
	// not double-count.
	var br core.BatchResponse
	if raw := sendBatch(r2URL, "words", killedFreqID, killedFreqBatch); json.Unmarshal(raw, &br) == nil {
		if !br.Replayed {
			t.Fatalf("retried pre-kill batch %s was re-aggregated: %s", killedFreqID, raw)
		}
	}

	// ---- round coordination: flush every relay, then close the round
	// through relay 1 (which force-flushes itself and forwards the
	// conditional advance). The reference node advances directly.
	advance := func(target string, round int) {
		t.Helper()
		resp, raw := postJSONBody(t, target+"/collections/top/advance", "", []byte(fmt.Sprintf(`{"round":%d}`, round)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("advance round %d on %s: %s: %s", round, target, resp.Status, raw)
		}
	}
	// After a round closes, a client refetches the frontier through
	// whichever relay it reports to; the refetch realigns that relay
	// with the upstream (relay 2 never saw the advance otherwise).
	realign := func(round int) {
		t.Helper()
		for _, u := range relayURLs {
			var fr core.FrontierResponse
			getJSONInto(t, u+"/collections/top/frontier", &fr)
			if fr.Round != round {
				t.Fatalf("relay %s frontier at round %d, want %d", u, fr.Round, round)
			}
		}
	}
	flushAll()
	advance(r1URL, 0)
	advance(refURL, 0)
	realign(1)

	for round := 1; round < 4; round++ {
		c := hhClient(uint64(400 + round))
		a := hhBatch(c, round, 30)
		b := hhBatch(c, round, 30)
		sendBatch(r1URL, "top", fmt.Sprintf("hh-%d-a", round), a)
		sendBatch(r2URL, "top", fmt.Sprintf("hh-%d-b", round), b)
		sendBatch(refURL, "top", fmt.Sprintf("hh-%d-a", round), a)
		sendBatch(refURL, "top", fmt.Sprintf("hh-%d-b", round), b)
		flushAll()
		advance(r1URL, round)
		advance(refURL, round)
		if round < 3 {
			realign(round + 1)
		}
	}
	flushAll()

	// ---- the global view through a relay equals the single node,
	// bit for bit (freq GRR support counts and hh sums are integers).
	var relayed, single core.EstimateResponse
	getJSONInto(t, r1URL+"/collections/words/estimate", &relayed)
	getJSONInto(t, refURL+"/collections/words/estimate", &single)
	if relayed.Reports != single.Reports || relayed.Reports != 60 {
		t.Fatalf("freq reports: relayed %d, single %d, want 60", relayed.Reports, single.Reports)
	}
	var gotEst, wantEst any
	if err := json.Unmarshal(relayed.Estimate, &gotEst); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(single.Estimate, &wantEst); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotEst, wantEst) {
		t.Fatalf("freq estimate through relay:\n%s\nsingle node:\n%s", relayed.Estimate, single.Estimate)
	}

	var relayedFr, singleFr core.FrontierResponse
	getJSONInto(t, r1URL+"/collections/top/frontier", &relayedFr)
	getJSONInto(t, refURL+"/collections/top/frontier", &singleFr)
	if relayedFr.Phase != "done" || singleFr.Phase != "done" {
		t.Fatalf("protocol not done: relayed %q, single %q", relayedFr.Phase, singleFr.Phase)
	}
	var gotF, wantF hhtask.Frontier
	if err := json.Unmarshal(relayedFr.Frontier, &gotF); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(singleFr.Frontier, &wantF); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotF, wantF) {
		t.Fatalf("hh frontier through relay:\n%+v\nsingle node:\n%+v", gotF, wantF)
	}
	if len(gotF.Hits) == 0 || gotF.Hits[0].Value != 0xAB {
		t.Fatalf("expected the planted heavy hitter 0xAB first, got %+v", gotF.Hits)
	}

	// Relay /status still reports its own flushing standing.
	var st core.StatusResponse
	getJSONInto(t, r1URL+"/collections/words/status", &st)
	if st.Relay == nil || !strings.HasPrefix(st.Relay.Upstream, "http://127.0.0.1:") {
		t.Fatalf("relay status block %+v", st.Relay)
	}
}
