// Command ldpgen emits the synthetic workloads that stand in for the
// deployed systems' proprietary data (see the substitution table in
// DESIGN.md), one value per line — ready to pipe into ldpclient.
//
// Usage:
//
//	ldpgen -kind zipf -n 10000 -domain 128 -s 1.1        # categorical values
//	ldpgen -kind counters -n 10000 -max 24               # numeric telemetry
//	ldpgen -kind locations -n 10000 -grid 16             # grid cell ids
//	ldpgen -kind records -n 10000 -attrs 8 -p 0.4        # binary records as ints
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/ldprand"
	"repro/internal/workload"
)

func main() {
	var (
		kind   = flag.String("kind", "zipf", "workload: zipf, counters, locations, records")
		n      = flag.Int("n", 10000, "number of values")
		domain = flag.Int("domain", 128, "zipf: domain size")
		s      = flag.Float64("s", 1.1, "zipf: skew exponent")
		max    = flag.Float64("max", 24, "counters: maximum value")
		grid   = flag.Int("grid", 16, "locations: grid granularity (emits cell ids)")
		attrs  = flag.Int("attrs", 8, "records: number of binary attributes")
		p      = flag.Float64("p", 0.4, "records: per-attribute probability")
		seed   = flag.Uint64("seed", 1, "deterministic seed (0 = crypto)")
	)
	flag.Parse()

	var src ldprand.Source
	if *seed == 0 {
		src = ldprand.NewCrypto()
	} else {
		src = ldprand.NewSplitMix64(*seed)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "zipf":
		z := workload.NewZipf(src, *s, *domain)
		for i := 0; i < *n; i++ {
			fmt.Fprintln(w, z.Next())
		}
	case "counters":
		for _, c := range workload.Counters(src, *max, *n) {
			fmt.Fprintf(w, "%.4f\n", c)
		}
	case "locations":
		pts := workload.Locations(src, workload.DefaultCityClusters(), *n)
		g := *grid
		for _, pt := range pts {
			cx, cy := int(pt.X*float64(g)), int(pt.Y*float64(g))
			if cx >= g {
				cx = g - 1
			}
			if cy >= g {
				cy = g - 1
			}
			fmt.Fprintln(w, cy*g+cx)
		}
	case "records":
		probs := make([]float64, *attrs)
		for i := range probs {
			probs[i] = *p
		}
		for _, r := range workload.BinaryRecords(src, probs, *n) {
			fmt.Fprintln(w, r)
		}
	default:
		fmt.Fprintf(os.Stderr, "ldpgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
