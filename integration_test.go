// Cross-module integration tests: these exercise realistic pipelines
// spanning several packages, the way a deployment would compose them —
// budget accounting around a collection service, post-processing on
// oracle output, and workload generators feeding system packages.
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/accounting"
	"repro/internal/core"
	"repro/internal/freq"
	"repro/internal/ldprand"
	"repro/internal/postprocess"
	"repro/internal/stats"
	"repro/internal/task/freqtask"
	"repro/internal/workload"
)

// TestPipelineWithAccountingAndPostprocessing runs the full loop: a
// budget ledger admits daily collections until users are exhausted,
// reports travel through the HTTP service, and the published histogram
// is consistency-projected.
func TestPipelineWithAccountingAndPostprocessing(t *testing.T) {
	const (
		totalEps = 2.0
		days     = 4
		users    = 3000
		domain   = 16
	)
	perDay := accounting.SplitEvenly(accounting.Budget{Epsilon: totalEps}, days)
	ledger := accounting.NewLedger(accounting.Budget{Epsilon: totalEps})

	params := core.PrivacyParams{Epsilon: perDay.Epsilon, Domain: domain}
	svc, err := core.NewService(core.MechanismOLH, params)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	src := ldprand.NewSplitMix64(1)
	zipf := workload.NewZipf(src, 1.3, domain)
	truthPerDay := make([]float64, domain)
	for day := 0; day < days; day++ {
		for u := 0; u < users; u++ {
			user := fmt.Sprintf("user-%d", u)
			if err := ledger.Charge(user, perDay); err != nil {
				t.Fatalf("day %d user %s: %v", day, user, err)
			}
			client, err := core.NewClient(core.MechanismOLH, params, src)
			if err != nil {
				t.Fatal(err)
			}
			v := zipf.Next()
			truthPerDay[v]++
			env, err := client.Report(v)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := json.Marshal(env)
			resp, err := http.Post(ts.URL+"/report", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("status %d", resp.StatusCode)
			}
		}
	}

	// A fifth collection must be rejected by the ledger: budget spent.
	if err := ledger.Charge("user-0", perDay); err == nil {
		t.Fatal("over-budget collection accepted")
	}

	// Fetch estimates, project to consistency, compare with truth.
	resp, err := http.Get(ts.URL + "/estimate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var est core.EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	n := days * users
	if est.Reports != n {
		t.Fatalf("reports %d want %d", est.Reports, n)
	}
	var fr freqtask.EstimateResult
	if err := json.Unmarshal(est.Estimate, &fr); err != nil {
		t.Fatal(err)
	}
	published := postprocess.NormSub(fr.Counts, float64(n))
	var sum float64
	for _, v := range published {
		if v < 0 {
			t.Fatalf("negative published count %v", v)
		}
		sum += v
	}
	if math.Abs(sum-float64(n)) > 1e-6*float64(n) {
		t.Fatalf("published counts sum %v want %d", sum, n)
	}
	// ε = 0.5 per day over 16 cells with 12k reports gives per-cell
	// σ ≈ 430, i.e. TV around 0.2; fail only well beyond that scale.
	if tv := stats.TotalVariation(published, truthPerDay); tv > 0.35 {
		t.Fatalf("published TV %.4f too large", tv)
	}
}

// TestAdaptiveOracleSelection checks the E3-informed constructor picks
// the variance winner on both sides of the crossover.
func TestAdaptiveOracleSelection(t *testing.T) {
	eps := 1.0
	small := freq.NewAdaptive(eps, 4, ldprand.NewSplitMix64(1))
	if small.Name() != "GRR" {
		t.Errorf("d=4: picked %s want GRR", small.Name())
	}
	large := freq.NewAdaptive(eps, 1024, ldprand.NewSplitMix64(1))
	if large.Name() != "OLH" {
		t.Errorf("d=1024: picked %s want OLH", large.Name())
	}
	// And the pick must actually have the lower analytic variance.
	grr := freq.NewGRR(eps, 1024, nil)
	if large.TheoreticalVariance(1000) >= grr.TheoreticalVariance(1000) {
		t.Error("adaptive pick is not the variance winner at d=1024")
	}
}

// TestWorkloadFeedsAllSystems is a smoke test that every workload
// generator composes with its consuming system package end to end.
func TestWorkloadFeedsAllSystems(t *testing.T) {
	src := ldprand.NewSplitMix64(2)
	// Zipf → adaptive oracle.
	z := workload.NewZipf(src, 1.2, 32)
	o := freq.NewAdaptive(1, 32, src)
	for i := 0; i < 3000; i++ {
		o.Collect(z.Next())
	}
	if o.Collected() != 3000 {
		t.Fatal("oracle lost reports")
	}
	est := o.EstimateCounts()
	probs := z.Probabilities()
	truth := make([]float64, 32)
	for i := range truth {
		truth[i] = probs[i] * 3000
	}
	// Very loose: this is a composition smoke test, not calibration.
	if tv := stats.TotalVariation(est, truth); tv > 0.35 {
		t.Errorf("zipf→oracle TV %.3f", tv)
	}
}
