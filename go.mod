module repro

go 1.24

tool repro/cmd/ldplint
