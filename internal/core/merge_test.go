package core

// Relay delta merging: the binary container round-trips and rejects
// corruption, a fan-in of relay cuts folds to the exact single-node
// state, retried deltas deduplicate, phased deltas from a stale round
// bounce with ErrWrongRound, the /merge route maps each failure to its
// HTTP status, and merge + flush journal frames replay a restart back
// to the identical state.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/hhtask"
)

// cutFrom ingests the given batches into a fresh memory-only relay
// collection and cuts its accumulated state as one delta.
func cutFrom(t *testing.T, cfg CollectionConfig, id string, batches ...[]json.RawMessage) Delta {
	t.Helper()
	reg := NewCollectionRegistry()
	c, err := reg.Create("relay-side", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if _, err := c.IngestBatch(fmt.Sprintf("%s-src-%d", id, i), b); err != nil {
			t.Fatal(err)
		}
	}
	d, err := c.CutDelta(id)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("CutDelta returned nil for a non-empty collection")
	}
	return *d
}

func TestDeltaBinaryRoundTrip(t *testing.T) {
	d := cutFrom(t, testCfg(), "rt-1", crashBatches(t)[0])
	blob, err := EncodeDeltaBinary(d)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBinaryDelta(blob) {
		t.Fatal("encoded delta does not carry the container magic")
	}
	got, err := DecodeDeltaBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	// The decoder stamps Enc itself (the container IS the binary wire);
	// every other field must round-trip exactly.
	if got.Collection != d.Collection || got.ID != d.ID || got.Reports != d.Reports ||
		got.Config != d.Config || !bytes.Equal(got.State, d.State) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d)
	}

	// Every single-bit flip must be caught by the checksum (or the magic
	// check) — the container arrives over HTTP and is hostile input.
	for i := 0; i < len(blob); i += 7 {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if _, err := DecodeDeltaBinary(bad); err == nil && bytes.Equal(bad[:len(deltaMagic)], deltaMagic) {
			t.Fatalf("bit flip at byte %d decoded cleanly", i)
		}
	}

	// Trailing garbage is rejected even when the CRC is recomputed over
	// it (a forged-length container must not smuggle extra bytes).
	if _, err := DecodeDeltaBinary(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated container decoded cleanly")
	}

	// Unknown container versions are refused, never guessed at (the
	// checksum refuses the raw splice; the version gate is what guards a
	// well-formed future container, which TestDeltaJSONVersionGate
	// covers for the header and this splice covers for the byte).
	future := append([]byte(nil), blob...)
	future[len(deltaMagic)+4] = DeltaVersion + 1
	if _, err := DecodeDeltaBinary(future); err == nil {
		t.Fatal("spliced container version decoded cleanly")
	}
}

func TestDeltaJSONVersionGate(t *testing.T) {
	d := cutFrom(t, testCfg(), "vg-1", crashBatches(t)[0])
	d.Version = DeltaVersion + 1
	blob, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDelta(blob, false); err == nil {
		t.Fatal("future JSON delta version decoded cleanly")
	}
}

// TestMergeFanInMatchesSingleNode is the exactness property the relay
// tier rests on: N relays each folding a share of the batches, cut and
// merged upstream, equals one node that ingested everything directly.
// GRR state is integer support counts, so the equality is exact.
func TestMergeFanInMatchesSingleNode(t *testing.T) {
	batches := crashBatches(t)
	want := crashReference(t, batches)

	reg := NewCollectionRegistry()
	up, err := reg.Create("upstream", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Three relays, round-robined batches — the client's dispatch.
	const relays = 3
	for r := 0; r < relays; r++ {
		var share [][]json.RawMessage
		for i := r; i < len(batches); i += relays {
			share = append(share, batches[i])
		}
		d := cutFrom(t, testCfg(), fmt.Sprintf("relay-%d", r), share...)
		res, err := up.IngestMerge(d)
		if err != nil {
			t.Fatalf("merging relay %d: %v", r, err)
		}
		if res.Replayed || res.Accepted == 0 {
			t.Fatalf("merge of relay %d = %+v", r, res)
		}
	}
	if got := counts(t, up); !reflect.DeepEqual(got, want) {
		t.Fatalf("fan-in estimates = %v, want %v", got, want)
	}
}

func TestIngestMergeIdempotent(t *testing.T) {
	batches := crashBatches(t)
	reg := NewCollectionRegistry()
	up, err := reg.Create("upstream", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	d := cutFrom(t, testCfg(), "dup-1", batches[0], batches[1])
	first, err := up.IngestMerge(d)
	if err != nil {
		t.Fatal(err)
	}
	before := counts(t, up)
	second, err := up.IngestMerge(d)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Replayed || second.Accepted != first.Accepted {
		t.Fatalf("retry = %+v, want replayed with %d accepted", second, first.Accepted)
	}
	if after := counts(t, up); !reflect.DeepEqual(after, before) {
		t.Fatalf("retry changed the estimates: %v -> %v", before, after)
	}
}

func TestCheckDeltaConfigMismatch(t *testing.T) {
	d := cutFrom(t, testCfg(), "cfg-1", crashBatches(t)[0])
	reg := NewCollectionRegistry()

	// An empty Task on either side normalizes to freq: semantically
	// equal configs must pass.
	same, err := reg.Create("same", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	blank := d
	blank.Config.Task = ""
	if err := same.CheckDeltaConfig(blank); err != nil {
		t.Fatalf("normalized config rejected: %v", err)
	}

	otherCfg := testCfg()
	otherCfg.Epsilon = 4
	other, err := reg.Create("other", otherCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.CheckDeltaConfig(d); err == nil {
		t.Fatal("epsilon mismatch passed the config check")
	}
	hh, err := reg.Create("hh", hhCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := hh.CheckDeltaConfig(d); err == nil {
		t.Fatal("task-type mismatch passed the config check")
	}
}

// hhDelta cuts a delta out of a relay-side hh collection mirroring the
// given upstream frontier — the position a real relay reaches by
// adopting what the upstream publishes, never by advancing on its own
// (an independent advance would compute different survivors and the
// exact Merge would rightly refuse the diverged frontiers).
func hhDelta(t *testing.T, id string, frontier json.RawMessage, round, users int) Delta {
	t.Helper()
	reg := NewCollectionRegistry()
	c, err := reg.Create("relay-hh", hhCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if round > 0 {
		if err := c.AdoptFrontier(frontier); err != nil {
			t.Fatal(err)
		}
	}
	client, err := hhtask.NewClient(2, 8, 4, ldprand.NewSplitMix64(uint64(41+round)))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(uint64(43 + round))
	envs := make([]json.RawMessage, users)
	for i := range envs {
		if envs[i], err = client.Report(plantedValue(src), round); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.IngestBatch(id+"-src", envs); err != nil {
		t.Fatal(err)
	}
	d, err := c.CutDelta(id)
	if err != nil {
		t.Fatal(err)
	}
	return *d
}

func TestIngestMergeWrongRound(t *testing.T) {
	reg := NewCollectionRegistry()
	up, err := reg.Create("upstream-hh", hhCfg(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	// A delta cut at round 0 merges while the upstream is at round 0...
	d0 := hhDelta(t, "hh-r0", nil, 0, 6)
	if _, err := up.IngestMerge(d0); err != nil {
		t.Fatal(err)
	}
	// ...but not after the upstream closed the round.
	if err := up.AdvanceExpecting(0); err != nil {
		t.Fatal(err)
	}
	stale := hhDelta(t, "hh-stale", nil, 0, 6)
	_, err = up.IngestMerge(stale)
	if !errors.Is(err, task.ErrWrongRound) {
		t.Fatalf("stale-round merge error = %v, want ErrWrongRound", err)
	}
	// The abandoned claim must not wedge the key: a delta re-cut after
	// adopting the upstream's new frontier merges under the same
	// idempotency key.
	fr, err := up.Aggregator().Frontier()
	if err != nil {
		t.Fatal(err)
	}
	fresh := hhDelta(t, "hh-stale", fr, 1, 6)
	if res, err := up.IngestMerge(fresh); err != nil || res.Replayed {
		t.Fatalf("re-merge after 409 = %+v, %v", res, err)
	}
}

// TestMergeHTTPStatuses exercises the /merge route end to end: 200 on
// both wire encodings, replay marked, 400 on config mismatch and
// garbage, 409 on wrong round, oversized idempotency key rejected.
func TestMergeHTTPStatuses(t *testing.T) {
	reg := NewCollectionRegistry()
	if _, err := reg.Create("agg", testCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("hh", hhCfg(1, 0)); err != nil {
		t.Fatal(err)
	}
	svc := NewMultiService(reg, nil)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func(path, contentType, key string, body []byte) (*http.Response, MergeResponse) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", contentType)
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var mr MergeResponse
		_ = json.NewDecoder(resp.Body).Decode(&mr)
		return resp, mr
	}

	batches := crashBatches(t)
	d := cutFrom(t, testCfg(), "http-1", batches[0], batches[1])

	// JSON wire.
	blob, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	resp, mr := post("/collections/agg/merge", "application/json", "", blob)
	if resp.StatusCode != http.StatusOK || mr.Accepted == 0 || mr.Replayed {
		t.Fatalf("JSON merge: %s %+v", resp.Status, mr)
	}

	// Binary wire, new key; then the identical container again — the
	// second answer must come from the dedup record.
	d2 := cutFrom(t, testCfg(), "http-2", batches[2])
	bin, err := EncodeDeltaBinary(d2)
	if err != nil {
		t.Fatal(err)
	}
	resp, mr = post("/merge?collection=ignored", ContentTypeBinary, "", bin)
	if resp.StatusCode != http.StatusNotFound {
		// The flat route targets the default collection, which this
		// registry-only service does not define under "default"; use the
		// named route instead.
		t.Logf("flat route: %s", resp.Status)
	}
	resp, mr = post("/collections/agg/merge", ContentTypeBinary, "", bin)
	if resp.StatusCode != http.StatusOK || mr.Replayed {
		t.Fatalf("binary merge: %s %+v", resp.Status, mr)
	}
	resp, mr = post("/collections/agg/merge", ContentTypeBinary, "", bin)
	if resp.StatusCode != http.StatusOK || !mr.Replayed {
		t.Fatalf("binary merge retry: %s %+v, want replayed", resp.Status, mr)
	}

	// Config mismatch → 400 with a diagnostic naming the collection.
	resp, _ = post("/collections/hh/merge", "application/json", "", blob)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("config mismatch: %s, want 400", resp.Status)
	}

	// Wrong round → 409.
	dh := hhDelta(t, "http-hh", nil, 0, 6)
	if err := mustAdvance(reg, "hh", 0); err != nil {
		t.Fatal(err)
	}
	hblob, err := json.Marshal(dh)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = post("/collections/hh/merge", "application/json", "", hblob)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale merge: %s, want 409", resp.Status)
	}

	// Garbage body → 400; oversized Idempotency-Key → 400.
	resp, _ = post("/collections/agg/merge", "application/json", "", []byte("{"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage merge body: %s, want 400", resp.Status)
	}
	resp, _ = post("/collections/agg/merge", "application/json", strings.Repeat("k", 200), blob)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized key: %s, want 400", resp.Status)
	}
}

func mustAdvance(reg *CollectionRegistry, name string, round int) error {
	c, ok := reg.Get(name)
	if !ok {
		return fmt.Errorf("no collection %q", name)
	}
	return c.AdvanceExpecting(round)
}

// TestMergeJournalReplay kills the upstream right after it acknowledged
// two relay deltas (no checkpoint): the merge frames replay, the
// estimates match, and a resent delta answers from the replayed dedup
// record.
func TestMergeJournalReplay(t *testing.T) {
	batches := crashBatches(t)
	want := crashReference(t, batches)
	dir := t.TempDir()

	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	c, err := reg.Create(crashCollection, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Attach(c); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	var deltas []Delta
	for r := 0; r < 2; r++ {
		var share [][]json.RawMessage
		for i := r; i < len(batches); i += 2 {
			share = append(share, batches[i])
		}
		d := cutFrom(t, testCfg(), fmt.Sprintf("jr-%d", r), share...)
		deltas = append(deltas, d)
		if _, err := c.IngestMerge(d); err != nil {
			t.Fatal(err)
		}
	}
	// Process dies here: no checkpoint after the merges.

	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewCollectionRegistry()
	if _, err := store2.Load(reg2); err != nil {
		t.Fatal(err)
	}
	c2, ok := reg2.Get(crashCollection)
	if !ok {
		t.Fatal("collection lost")
	}
	if got := counts(t, c2); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed estimates = %v, want %v", got, want)
	}
	for _, d := range deltas {
		res, err := c2.IngestMerge(d)
		if err != nil || !res.Replayed {
			t.Fatalf("post-restart delta resend = %+v, %v; want replayed", res, err)
		}
	}
	if got := counts(t, c2); !reflect.DeepEqual(got, want) {
		t.Fatalf("estimates after resends = %v, want %v", got, want)
	}
}
