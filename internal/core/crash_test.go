package core

// Crash-consistency coverage: the property the journal + checkpoint +
// dedup machinery exists for is that an acknowledged report batch
// survives a crash at ANY moment, exactly once, even when the client
// retries batches the server already acknowledged. The sweep tests
// prove it by brute force — a counting dry run enumerates every
// mutating filesystem operation a workload performs, then the workload
// is re-run once per operation with a crash (clean or torn-write)
// injected there, restarted over the surviving directory, and checked
// against a reference aggregate that saw each batch exactly once.
// Alongside the sweeps: snapshot corruption modes (truncate, bit flip,
// future version) quarantining one collection while the rest restore,
// and the HTTP-level idempotency and health surfaces.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fsio"
	"repro/internal/ldprand"
)

const crashCollection = "sweep"

func batchID(i int) string { return fmt.Sprintf("sweep-batch-%02d", i) }

// crashBatches builds the deterministic workload: a fixed sequence of
// report batches, privatized once up front so every run (dry, armed,
// reference) aggregates byte-identical envelopes.
func crashBatches(t testing.TB) [][]json.RawMessage {
	t.Helper()
	cfg := testCfg()
	client, err := NewClient(cfg.Mechanism, cfg.Params(), ldprand.NewSplitMix64(7))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(8)
	batches := make([][]json.RawMessage, 6)
	for i := range batches {
		envs := make([]json.RawMessage, 4)
		for k := range envs {
			env, err := client.Report(ldprand.Intn(src, cfg.Domain))
			if err != nil {
				t.Fatal(err)
			}
			envs[k] = mustRaw(t, env)
		}
		batches[i] = envs
	}
	return batches
}

// crashReference aggregates every batch exactly once, memory-only: the
// counts any crash + restart + retry interleaving must reproduce.
// (GRR state is integer counts, so equality is exact, not approximate.)
func crashReference(t *testing.T, batches [][]json.RawMessage) []float64 {
	t.Helper()
	reg := NewCollectionRegistry()
	c, err := reg.Create(crashCollection, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if _, err := c.IngestBatch(batchID(i), b); err != nil {
			t.Fatal(err)
		}
	}
	return counts(t, c)
}

// ingestWithRetry plays the client's role against the in-process API:
// re-send the same batch under the same idempotency key until it is
// acknowledged, checkpointing between attempts the way the operator's
// checkpoint loop would (a successful checkpoint is what clears a
// broken journal).
func ingestWithRetry(store *Store, reg *CollectionRegistry, c *Collection, id string, b []json.RawMessage) bool {
	for attempt := 0; attempt < 3; attempt++ {
		if _, err := c.IngestBatch(id, b); err == nil {
			return true
		}
		_ = store.Save(reg, c)
	}
	return false
}

// runCrashWorkload drives one fixed scenario over fsys — create a
// persistent collection, checkpoint it, ingest the batches with a
// checkpoint in the middle, checkpoint at the end — and returns which
// batches were acknowledged. Injected failures are expected: a failed
// step simply leaves its batch unacknowledged (or, for a crash, ends
// the useful part of the run with every later operation failing too).
func runCrashWorkload(t testing.TB, fsys fsio.FS, dir string, batches [][]json.RawMessage) map[int]bool {
	t.Helper()
	acked := make(map[int]bool)
	store, err := NewStoreFS(dir, fsys, JournalSyncEvery)
	if err != nil {
		// A transient setup failure is an operator-restart case, not a
		// crash: try once more before giving the scenario up.
		if store, err = NewStoreFS(dir, fsys, JournalSyncEvery); err != nil {
			return acked
		}
	}
	reg := NewCollectionRegistry()
	c, err := reg.Create(crashCollection, testCfg())
	if err != nil {
		t.Fatal(err) // no filesystem involved: never an injected fault
	}
	if err := store.Attach(c); err != nil {
		return acked
	}
	// Nothing is acknowledged before the collection has a durable base
	// snapshot for its journal to replay onto — the same ordering the
	// server's collection-create handler enforces.
	if err := store.Save(reg, c); err != nil {
		if err := store.Save(reg, c); err != nil {
			return acked
		}
	}
	for i, b := range batches {
		if ingestWithRetry(store, reg, c, batchID(i), b) {
			acked[i] = true
		}
		if i == len(batches)/2 {
			_ = store.Save(reg, c)
		}
	}
	_ = store.SaveAll(reg)
	return acked
}

// verifyCrashRecovery restarts over whatever the crash left in dir —
// a fresh store on the real filesystem, Load, journal replay — then
// retries EVERY batch under its original idempotency key, the way a
// client that never saw some acknowledgements would. It asserts the
// two halves of the durability contract: an acknowledged batch is
// already there (the retry answers "replayed", nothing re-aggregated),
// and the final estimates equal the reference that saw each batch
// exactly once.
func verifyCrashRecovery(t *testing.T, dir string, batches [][]json.RawMessage, acked map[int]bool, want []float64) {
	t.Helper()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	if _, err := store.Load(reg); err != nil {
		t.Fatal(err)
	}
	c, ok := reg.Get(crashCollection)
	if !ok {
		if len(acked) > 0 {
			t.Fatalf("collection lost in the crash but %d batches were acknowledged", len(acked))
		}
		return // crashed before the first checkpoint: nothing was promised
	}
	for i, b := range batches {
		res, err := c.IngestBatch(batchID(i), b)
		if err != nil {
			t.Fatalf("retrying batch %d after restart: %v", i, err)
		}
		if res.Accepted != len(b) {
			t.Fatalf("retry of batch %d accepted %d/%d envelopes", i, res.Accepted, len(b))
		}
		if acked[i] && !res.Replayed {
			t.Fatalf("batch %d was acknowledged before the crash, but the retry re-aggregated it", i)
		}
	}
	if got := counts(t, c); !reflect.DeepEqual(got, want) {
		t.Fatalf("estimates after recovery + retries = %v, want %v", got, want)
	}
}

// TestRestartReplaysJournalWithoutCheckpoint is the plain kill -9
// case: batches acknowledged after the last checkpoint live only in
// the journal, and a restart replays them — estimates match a process
// that never died.
func TestRestartReplaysJournalWithoutCheckpoint(t *testing.T) {
	batches := crashBatches(t)
	want := crashReference(t, batches)
	dir := t.TempDir()

	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	c, err := reg.Create(crashCollection, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Attach(c); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if _, err := c.IngestBatch(batchID(i), b); err != nil {
			t.Fatal(err)
		}
	}
	// No final checkpoint: the process just dies here.

	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewCollectionRegistry()
	restored, err := store2.Load(reg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 {
		t.Fatalf("restored %v, want [%s]", restored, crashCollection)
	}
	c2, _ := reg2.Get(crashCollection)
	if got := counts(t, c2); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed estimates = %v, want %v", got, want)
	}
	// A retry of an already-acknowledged batch still deduplicates.
	res, err := c2.IngestBatch(batchID(0), batches[0])
	if err != nil || !res.Replayed {
		t.Fatalf("post-restart retry = %+v, %v; want replayed", res, err)
	}
	// The replayed state must reach the next snapshot: checkpoint,
	// restart again, and the counts still hold with no journal left.
	if err := store2.Save(reg2, c2); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, crashCollection+".journal.*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("journal segments survived the checkpoint: %v", segs)
	}
	reg3 := NewCollectionRegistry()
	if _, err := store2.Load(reg3); err != nil {
		t.Fatal(err)
	}
	c3, _ := reg3.Get(crashCollection)
	if got := counts(t, c3); !reflect.DeepEqual(got, want) {
		t.Fatalf("estimates after checkpointed restart = %v, want %v", got, want)
	}
}

// TestCrashSweepAckedBatchesSurviveExactlyOnce is the tentpole sweep:
// crash at every mutating filesystem operation of the workload — once
// cleanly, once with a torn write — restart, retry, and require the
// exactly-once property to hold at every single crash point.
func TestCrashSweepAckedBatchesSurviveExactlyOnce(t *testing.T) {
	batches := crashBatches(t)
	want := crashReference(t, batches)

	fault := fsio.NewFault(fsio.OS)
	runCrashWorkload(t, fault, t.TempDir(), batches) // disarmed dry run
	n := fault.Ops()
	if n < 15 {
		t.Fatalf("dry run observed only %d mutating operations; the workload no longer exercises the persistence stack", n)
	}
	for _, torn := range []bool{false, true} {
		for k := 0; k < n; k++ {
			if torn {
				fault.CrashTornAt(k)
			} else {
				fault.CrashAt(k)
			}
			dir := t.TempDir()
			acked := runCrashWorkload(t, fault, dir, batches)
			fault.Disarm()
			t.Logf("crash at op %d/%d (torn=%v): %d/%d batches acked", k, n, torn, len(acked), len(batches))
			verifyCrashRecovery(t, dir, batches, acked, want)
		}
	}
}

// TestTransientFaultSweepAllBatchesLand injects a single ENOSPC-style
// failure at every operation instead of a crash: the process survives,
// so with retries every batch must end up acknowledged and the final
// state must still be exact.
func TestTransientFaultSweepAllBatchesLand(t *testing.T) {
	batches := crashBatches(t)
	want := crashReference(t, batches)

	fault := fsio.NewFault(fsio.OS)
	runCrashWorkload(t, fault, t.TempDir(), batches)
	n := fault.Ops()
	for k := 0; k < n; k++ {
		fault.FailAt(k)
		dir := t.TempDir()
		acked := runCrashWorkload(t, fault, dir, batches)
		fault.Disarm()
		if len(acked) != len(batches) {
			t.Fatalf("transient fault at op %d: only %d/%d batches acknowledged despite retries", k, len(acked), len(batches))
		}
		verifyCrashRecovery(t, dir, batches, acked, want)
	}
}

// TestSnapshotCorruptionModes damages one collection's snapshot three
// different ways; each mode must quarantine exactly that collection
// (file set aside under .corrupt, its now-anchorless journal segments
// too) while every other collection restores intact.
func TestSnapshotCorruptionModes(t *testing.T) {
	modes := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit flip", func(t *testing.T, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a bit inside the checksummed payload, whichever
			// framing the file uses: past the CRC word in a binary
			// container, inside the inner snapshot in a JSON wrapper.
			idx := len(blob) - len(blob)/4
			if !bytes.HasPrefix(blob, snapshotMagic) {
				idx = strings.Index(string(blob), `"snapshot"`)
				if idx < 0 || idx+40 >= len(blob) {
					t.Fatal("snapshot file shape changed; update the corruption offset")
				}
				idx += 40
			}
			blob[idx] ^= 0x40
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"future version", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte(`{"version":99,"crc32c":0,"snapshot":{}}`), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			reg := NewCollectionRegistry()
			for i, name := range []string{"keep-a", "victim", "keep-b"} {
				c, err := reg.Create(name, testCfg())
				if err != nil {
					t.Fatal(err)
				}
				fill(t, c, uint64(300+i), 50)
			}
			if err := store.SaveAll(reg); err != nil {
				t.Fatal(err)
			}
			keepA, _ := reg.Get("keep-a")
			wantA := counts(t, keepA)
			// Leave a live journal segment behind the victim, so the
			// sweep's orphan handling is exercised too.
			victim, _ := reg.Get("victim")
			if err := store.Attach(victim); err != nil {
				t.Fatal(err)
			}
			if _, err := victim.IngestBatch("tail", crashBatches(t)[0]); err != nil {
				t.Fatal(err)
			}

			mode.corrupt(t, filepath.Join(dir, "victim.json"))

			store2, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			reg2 := NewCollectionRegistry()
			restored, err := store2.Load(reg2)
			if err != nil {
				t.Fatalf("Load must quarantine, not fail: %v", err)
			}
			if want := []string{"keep-a", "keep-b"}; !reflect.DeepEqual(restored, want) {
				t.Fatalf("restored %v, want %v", restored, want)
			}
			if _, ok := reg2.Get("victim"); ok {
				t.Fatal("corrupt collection was restored anyway")
			}
			if _, err := os.Stat(filepath.Join(dir, "victim.json"+corruptExt)); err != nil {
				t.Fatalf("corrupt snapshot not quarantined: %v", err)
			}
			live, err := filepath.Glob(filepath.Join(dir, "victim.journal.*"))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range live {
				if !strings.HasSuffix(p, corruptExt) {
					t.Fatalf("victim journal segment %s still live; want quarantined", filepath.Base(p))
				}
			}
			a2, _ := reg2.Get("keep-a")
			if got := counts(t, a2); !reflect.DeepEqual(got, wantA) {
				t.Fatalf("keep-a estimates after quarantine = %v, want %v", got, wantA)
			}
		})
	}
}

// postBatch POSTs a report batch with an Idempotency-Key and decodes
// the response.
func postBatch(t *testing.T, url, key string, body []byte) (*http.Response, BatchResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
	}
	return resp, br
}

func estimateReports(t *testing.T, base string) int {
	t.Helper()
	var est EstimateResponse
	if err := json.Unmarshal([]byte(getBody(t, base+"/estimate")), &est); err != nil {
		t.Fatal(err)
	}
	return est.Reports
}

// TestBatchIdempotencyOverHTTP: a duplicate Idempotency-Key answers
// the recorded outcome without re-aggregating — including when the
// duplicate arrives after a restart that only had the journal (no
// final checkpoint) to go on.
func TestBatchIdempotencyOverHTTP(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	ts := httptest.NewServer(NewMultiService(reg, store).Handler())
	defer ts.Close()
	if resp := postJSON(t, ts.URL+"/collections", []byte(`{"name":"idem","mechanism":"GRR","epsilon":2,"domain":8}`)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	batch := crashBatches(t)[0]
	body := mustRaw(t, batch)
	url := ts.URL + "/collections/idem/report/batch"

	resp, br := postBatch(t, url, "key-1", body)
	if resp.StatusCode != http.StatusAccepted || br.Accepted != len(batch) || br.Replayed {
		t.Fatalf("first attempt: %d %+v", resp.StatusCode, br)
	}
	resp, br = postBatch(t, url, "key-1", body)
	if resp.StatusCode != http.StatusAccepted || br.Accepted != len(batch) || !br.Replayed {
		t.Fatalf("duplicate: %d %+v; want replayed with the original count", resp.StatusCode, br)
	}
	if got := estimateReports(t, ts.URL+"/collections/idem"); got != len(batch) {
		t.Fatalf("reports after duplicate = %d, want %d", got, len(batch))
	}
	// An overlong key is rejected before it can occupy dedup memory.
	if resp, _ := postBatch(t, url, strings.Repeat("k", maxBatchIDBytes+1), body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("overlong key: %d, want 400", resp.StatusCode)
	}

	// Kill the process without a final checkpoint: the journal alone
	// carries both the batch and its idempotency mark.
	ts.Close()
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewCollectionRegistry()
	if _, err := store2.Load(reg2); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(NewMultiService(reg2, store2).Handler())
	defer ts2.Close()
	url2 := ts2.URL + "/collections/idem/report/batch"
	resp, br = postBatch(t, url2, "key-1", body)
	if resp.StatusCode != http.StatusAccepted || !br.Replayed {
		t.Fatalf("duplicate after restart: %d %+v; want replayed", resp.StatusCode, br)
	}
	if got := estimateReports(t, ts2.URL+"/collections/idem"); got != len(batch) {
		t.Fatalf("reports after restart + duplicate = %d, want %d", got, len(batch))
	}
}

func checkHealthz(t *testing.T, base string, wantStatus int, wantVerdict string) HealthResponse {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus || hr.Status != wantVerdict {
		t.Fatalf("healthz = %d %q, want %d %q (%+v)", resp.StatusCode, hr.Status, wantStatus, wantVerdict, hr)
	}
	return hr
}

// TestHealthzDegradesAndRecovers drives /healthz through its three
// trigger states: a broken journal degrades immediately, a checkpoint
// failure streak degrades once it passes the threshold, and a
// successful checkpoint clears both.
func TestHealthzDegradesAndRecovers(t *testing.T) {
	fault := fsio.NewFault(fsio.OS)
	dir := t.TempDir()
	store, err := NewStoreFS(dir, fault, JournalSyncEvery)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	c, err := reg.Create("h", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Attach(c); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	svc := NewMultiService(reg, store)
	svc.SetUnhealthyAfter(2)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	batch := crashBatches(t)[0]

	checkHealthz(t, ts.URL, http.StatusOK, "ok")

	// A failed append breaks the journal: degraded at once, however
	// short the checkpoint-failure streak.
	fault.FailAt(0)
	if _, err := c.IngestBatch("hb-0", batch); err == nil {
		t.Fatal("ingest over failed journal append succeeded")
	}
	fault.Disarm()
	hr := checkHealthz(t, ts.URL, http.StatusServiceUnavailable, "degraded")
	if !hr.Collections["h"].JournalBroken {
		t.Fatalf("health = %+v, want JournalBroken", hr.Collections["h"])
	}
	// A successful checkpoint supersedes the broken journal.
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	checkHealthz(t, ts.URL, http.StatusOK, "ok")

	// Two consecutive checkpoint failures cross the threshold.
	for i := 0; i < 2; i++ {
		if _, err := c.IngestBatch(fmt.Sprintf("hb-%d", i+1), batch); err != nil {
			t.Fatal(err)
		}
		fault.FailAt(0) // the checkpoint's temp-file create fails
		if err := store.Save(reg, c); err == nil {
			t.Fatal("checkpoint over injected fault succeeded")
		}
		fault.Disarm()
		if i == 0 {
			hr := checkHealthz(t, ts.URL, http.StatusOK, "ok")
			if h := hr.Collections["h"]; h.SaveFailures != 1 {
				t.Fatalf("after one failure: %+v, want SaveFailures=1", h)
			}
		}
	}
	hr = checkHealthz(t, ts.URL, http.StatusServiceUnavailable, "degraded")
	if h := hr.Collections["h"]; h.SaveFailures != 2 || h.LastSaveError == "" {
		t.Fatalf("after two failures: %+v, want SaveFailures=2 with an error", h)
	}
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	checkHealthz(t, ts.URL, http.StatusOK, "ok")
}
