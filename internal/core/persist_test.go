package core

// Coverage for the checkpoint/restore cycle: the property the whole
// subsystem exists for is that a server restart with a state directory
// resumes with bit-identical estimates, across every mechanism in the
// registry and through the real HTTP surface.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ldprand"
)

// fill drives n random in-domain values through a collection via the
// client half, as reports over the aggregator.
func fill(t *testing.T, c *Collection, seed uint64, n int) {
	t.Helper()
	client, err := NewClient(c.Config().Mechanism, c.Config().Params(), ldprand.NewSplitMix64(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(seed + 1)
	for i := 0; i < n; i++ {
		env, err := client.Report(ldprand.Intn(src, c.Config().Domain))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Aggregator().Add(mustRaw(t, env)); err != nil {
			t.Fatal(err)
		}
	}
}

func counts(t *testing.T, c *Collection) []float64 {
	t.Helper()
	m, err := c.Aggregator().MergedCached()
	if err != nil {
		t.Fatal(err)
	}
	return freqCounts(t, m)
}

// TestCheckpointRestartCycle is the acceptance-criteria test:
// checkpoint → new process (fresh registry from the same dir) →
// estimates bit-identical to pre-restart, for every mechanism.
func TestCheckpointRestartCycle(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	for i, mech := range Mechanisms() {
		cfg := FreqCollectionConfig(mech, PrivacyParams{Epsilon: 1.5, Domain: 12}, 3)
		c, err := reg.Create("survey-"+mech, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fill(t, c, uint64(100+i), 200)
	}
	if err := store.SaveAll(reg); err != nil {
		t.Fatal(err)
	}

	// "Kill" the process: everything in-memory is dropped; a fresh
	// store over the same directory restores into a fresh registry.
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewCollectionRegistry()
	restored, err := store2.Load(reg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(Mechanisms()) {
		t.Fatalf("restored %d collections, want %d", len(restored), len(Mechanisms()))
	}
	for _, mech := range Mechanisms() {
		name := "survey-" + mech
		before, _ := reg.Get(name)
		after, ok := reg2.Get(name)
		if !ok {
			t.Fatalf("collection %s not restored", name)
		}
		if after.Config() != before.Config() {
			t.Fatalf("%s config %+v want %+v", name, after.Config(), before.Config())
		}
		if after.Aggregator().Collected() != before.Aggregator().Collected() {
			t.Fatalf("%s collected %d want %d", name, after.Aggregator().Collected(), before.Aggregator().Collected())
		}
		if !reflect.DeepEqual(counts(t, after), counts(t, before)) {
			t.Fatalf("%s estimates differ after restart", name)
		}
	}

	// The restored collections keep collecting: ingestion after a
	// restart lands on top of the restored tallies.
	c, _ := reg2.Get("survey-" + MechanismGRR)
	was := c.Aggregator().Collected()
	fill(t, c, 999, 50)
	if got := c.Aggregator().Collected(); got != was+50 {
		t.Fatalf("post-restore collected %d want %d", got, was+50)
	}
}

func TestStoreSkipsUnchangedAndLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	c, err := reg.Create("s", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c, 7, 50)
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	info1, err := os.Stat(filepath.Join(dir, "s.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Unchanged epoch → Save must not rewrite the file.
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	info2, err := os.Stat(filepath.Join(dir, "s.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !info2.ModTime().Equal(info1.ModTime()) {
		t.Fatal("unchanged collection was re-checkpointed")
	}
	// New reports advance the epoch → Save rewrites.
	fill(t, c, 8, 10)
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("state dir has %d entries, want 1", len(entries))
	}
}

func TestStoreRemoveAndCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	c, err := reg.Create("gone", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	// Remove refuses to unlink while the collection is registered —
	// the file belongs to the live survey.
	if err := store.Remove(reg, "gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gone.json")); err != nil {
		t.Fatal("Remove unlinked a registered collection's snapshot")
	}
	// The DELETE handler's contract: deregister first, then unlink.
	reg.Delete("gone")
	if err := store.Remove(reg, "gone"); err != nil {
		t.Fatal(err)
	}
	if err := store.Remove(reg, "gone"); err != nil {
		t.Fatal("second Remove should be a no-op, got", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gone.json")); !os.IsNotExist(err) {
		t.Fatal("snapshot file survived Remove")
	}

	// A torn or corrupt snapshot is quarantined under .corrupt instead
	// of aborting the load or restoring garbage counts.
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte(`{"name":"bad","config"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(dir); err != nil {
		t.Fatal(err)
	}
	restored, err := store.Load(NewCollectionRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("restored %v from a corrupt-only state dir", restored)
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.json"+corruptExt)); err != nil {
		t.Fatal("corrupt snapshot was not set aside under .corrupt:", err)
	}
}

// TestSaveCannotResurrectDeletedCollection pins the checkpoint/delete
// race fix: a Save holding a stale *Collection (obtained before a
// concurrent DELETE) must not re-write the snapshot Remove unlinked —
// otherwise the deleted survey would rise again on the next restart.
func TestSaveCannotResurrectDeletedCollection(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	c, err := reg.Create("ghost", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c, 3, 20)
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}

	// The DELETE handler's sequence: deregister, then unlink.
	reg.Delete("ghost")
	if err := store.Remove(reg, "ghost"); err != nil {
		t.Fatal(err)
	}
	// A checkpoint loop still holding the old pointer fires late.
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ghost.json")); !os.IsNotExist(err) {
		t.Fatal("stale Save resurrected the deleted snapshot")
	}

	// Same under re-creation: the stale pointer must not clobber the
	// new same-named collection's snapshot with the old counts.
	c2, err := reg.Create("ghost", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(reg, c2); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(reg, c); err != nil { // stale pointer again
		t.Fatal(err)
	}
	reg3 := NewCollectionRegistry()
	store3, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store3.Load(reg3); err != nil {
		t.Fatal(err)
	}
	got, ok := reg3.Get("ghost")
	if !ok {
		t.Fatal("re-created collection's snapshot missing")
	}
	if got.Aggregator().Collected() != 0 {
		t.Fatalf("stale Save clobbered the new collection: %d reports restored", got.Aggregator().Collected())
	}
}

// TestStoreLockMapReclaimed pins that create/save/delete cycles over
// fresh names do not grow the per-name lock map forever — the entries
// are refcounted and dropped with their last holder.
func TestStoreLockMapReclaimed(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("cycle-%d", i)
		c, err := reg.Create(name, testCfg())
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Save(reg, c); err != nil {
			t.Fatal(err)
		}
		reg.Delete(name)
		if err := store.Remove(reg, name); err != nil {
			t.Fatal(err)
		}
	}
	store.mu.Lock()
	locks, epochs := len(store.names), len(store.saved)
	store.mu.Unlock()
	if locks != 0 || epochs != 0 {
		t.Fatalf("store retains %d lock entries and %d epoch entries after full cycles", locks, epochs)
	}
}

// TestCaseVariantOrphanDoesNotBrickLoad pins the two halves of the
// case-collision defense on a case-sensitive filesystem: Remove
// unlinks an orphaned case-variant snapshot even while the variant
// collection is live, and Load survives a pre-existing collision by
// setting the losing snapshot aside instead of refusing to start.
func TestCaseVariantOrphanDoesNotBrickLoad(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()

	// Orphan "Study.json" (deregistered, unlink never happened), then a
	// live case-variant "study" with its own snapshot.
	c1, err := reg.Create("Study", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(reg, c1); err != nil {
		t.Fatal(err)
	}
	reg.Delete("Study")
	c2, err := reg.Create("study", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c2, 5, 30)
	if err := store.Save(reg, c2); err != nil {
		t.Fatal(err)
	}

	// The retried delete's Remove must clear the orphan despite the
	// live case-variant: on this (case-sensitive) filesystem they are
	// distinct files.
	if err := store.Remove(reg, "Study"); err != nil {
		t.Fatal(err)
	}
	if store.HasSnapshot("Study") {
		t.Fatal("orphaned case-variant snapshot survived Remove")
	}
	if !store.HasSnapshot("study") {
		t.Fatal("live collection's snapshot was unlinked with the orphan")
	}

	// And if the orphan somehow persists to a restart, Load sets it
	// aside instead of failing the whole startup.
	if err := store.Save(reg, c1); err != nil { // not live: no-op
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "Study.json"),
		mustSnapshotBlob(t, "Study"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg2 := NewCollectionRegistry()
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := store2.Load(reg2)
	if err != nil {
		t.Fatalf("collision bricked Load: %v", err)
	}
	if len(restored) != 1 {
		t.Fatalf("restored %v, want exactly one of the case pair", restored)
	}
	asides, _ := filepath.Glob(filepath.Join(dir, "*.conflict"))
	if len(asides) != 1 {
		t.Fatalf("conflict files %v, want exactly 1", asides)
	}
}

// mustSnapshotBlob builds a minimal valid snapshot blob for name.
func mustSnapshotBlob(t *testing.T, name string) []byte {
	t.Helper()
	reg := NewCollectionRegistry()
	c, err := reg.Create(name, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	state, err := c.Aggregator().MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(CollectionSnapshot{Name: name, Config: testCfg(), State: state})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestDeleteSweepGuards pins the 404-path snapshot sweep: a DELETE for
// a name that only case-varies from a live collection (or the default)
// must not unlink that collection's snapshot, while a DELETE for a
// genuinely orphaned snapshot cleans it up.
func TestDeleteSweepGuards(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	if _, err := reg.Create(DefaultCollection, testCfg()); err != nil {
		t.Fatal(err)
	}
	c, err := reg.Create("study-a", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveAll(reg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMultiService(reg, store).Handler())
	defer ts.Close()

	// Case-variant DELETE: 404, and the live collection's snapshot
	// survives (on a case-insensitive filesystem they are one file).
	if resp := doDelete(t, ts.URL+"/collections/STUDY-A"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("case-variant delete status %d want 404", resp.StatusCode)
	}
	if !store.HasSnapshot("study-a") {
		t.Fatal("case-variant DELETE swept a live collection's snapshot")
	}
	if resp := doDelete(t, ts.URL+"/collections/Default"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("Default delete status %d want 404", resp.StatusCode)
	}
	if !store.HasSnapshot(DefaultCollection) {
		t.Fatal("case-variant DELETE swept the default snapshot")
	}

	// An orphaned snapshot (deregistered, unlink failed in a previous
	// life) is swept by a retried DELETE so the state converges.
	reg.Delete("study-a")
	_ = c
	if resp := doDelete(t, ts.URL+"/collections/study-a"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("orphan delete status %d want 404", resp.StatusCode)
	}
	if store.HasSnapshot("study-a") {
		t.Fatal("orphaned snapshot survived the retried DELETE")
	}
}

// TestServerRestartOverHTTP runs the cycle through the real HTTP
// surface: ingest via POST, checkpoint, rebuild the service from disk,
// and compare the /estimate JSON byte-for-byte.
func TestServerRestartOverHTTP(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	if _, err := reg.Create(DefaultCollection, FreqCollectionConfig(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, 2)); err != nil {
		t.Fatal(err)
	}
	svc := NewMultiService(reg, store)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// A second survey created over HTTP, then reports into both.
	resp := postJSON(t, ts.URL+"/collections",
		[]byte(`{"name":"study-b","mechanism":"GRR","epsilon":1,"domain":4,"shards":2}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	client, err := NewClient(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, ldprand.NewSplitMix64(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		env, err := client.Report(i % 8)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(env)
		if resp := postJSON(t, ts.URL+"/report", body); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("report status %d", resp.StatusCode)
		}
	}
	for i := 0; i < 40; i++ {
		body := []byte(`{"mechanism":"GRR","value":` + string(rune('0'+i%4)) + `}`)
		if resp := postJSON(t, ts.URL+"/collections/study-b/report", body); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("study-b report status %d", resp.StatusCode)
		}
	}
	estimateBefore := getBody(t, ts.URL+"/estimate")
	studyBefore := getBody(t, ts.URL+"/collections/study-b/estimate")
	if err := store.SaveAll(reg); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Restart: fresh registry, fresh store, same directory.
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewCollectionRegistry()
	if _, err := store2.Load(reg2); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(NewMultiService(reg2, store2).Handler())
	defer ts2.Close()

	if after := getBody(t, ts2.URL+"/estimate"); after != estimateBefore {
		t.Fatalf("default /estimate changed across restart:\n%s\n%s", estimateBefore, after)
	}
	if after := getBody(t, ts2.URL+"/collections/study-b/estimate"); after != studyBefore {
		t.Fatalf("study-b /estimate changed across restart:\n%s\n%s", studyBefore, after)
	}
}
