package core

// Shared helpers for the core test suite: marshaling typed freq
// envelopes into the raw JSON the task-generic aggregator ingests, and
// reading frequency counts back out of a task aggregator.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/task"
	"repro/internal/task/freqtask"
)

// mustRaw marshals any value (an Envelope, a task envelope struct)
// into the raw JSON report form the aggregation stack ingests.
func mustRaw(t testing.TB, v any) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// rawEnvs marshals a slice of freq envelopes into raw JSON reports.
func rawEnvs(t testing.TB, envs []Envelope) []json.RawMessage {
	t.Helper()
	out := make([]json.RawMessage, len(envs))
	for i := range envs {
		out[i] = mustRaw(t, envs[i])
	}
	return out
}

// freqCounts extracts the debiased count estimates from a frequency
// task aggregator.
func freqCounts(t testing.TB, a task.Aggregator) []float64 {
	t.Helper()
	fa, ok := a.(*freqtask.Aggregator)
	if !ok {
		t.Fatalf("aggregator is %T, want *freqtask.Aggregator", a)
	}
	return fa.Oracle().EstimateCounts()
}

// readSnapshotFile reads and decodes a snapshot file of any supported
// version, failing the test on corruption.
func readSnapshotFile(t testing.TB, path string) CollectionSnapshot {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := decodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// writeSnapshotFile writes a properly framed (checksummed) snapshot
// file in whichever encoding the snapshot carries — the forgery helper
// for tests that corrupt a specific field rather than the framing.
func writeSnapshotFile(t testing.TB, path string, snap CollectionSnapshot) {
	t.Helper()
	blob, err := encodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}
