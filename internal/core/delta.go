// Delta is the unit of state a relay ships upstream: the merged
// aggregator state it accumulated since its last flush, wrapped in
// enough metadata for the receiver to validate it (task config),
// deduplicate it (ID), and — for phased tasks — refuse it when the
// relay's round view is stale (Round/Done).
//
// Two wire encodings share one header:
//
//   - JSON: the Delta struct marshalled directly; State is base64.
//     Always available — it falls back to the task's JSON state codec
//     when the task has no binary one.
//
//   - Binary: a self-checking container for tasks implementing
//     task.BinaryStater, mirroring the LDPSNAP5 checkpoint layout:
//
//     "LDPDELTA1" | crc32c(rest) LE | version byte |
//     blob(header JSON, State omitted) | blob(binary task state)
//
// Both decoders are version-gated: an unknown container or header
// version is an error, never a guess. The binary decoder treats the
// input as hostile (it also arrives over HTTP): the CRC is checked
// before any parsing, lengths are bounds-checked by binenc, and
// trailing garbage is rejected.
package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/binenc"
	"repro/internal/task"
)

// DeltaVersion is the current delta header version. Bump it when the
// header schema or container layout changes; decoders reject anything
// newer than what they understand.
const DeltaVersion = 1

// deltaMagic brands the binary delta container, versioned like the
// checkpoint magic so a future layout can change the trailing digit.
var deltaMagic = []byte("LDPDELTA1")

// Delta is one relay flush. State carries the merged task state in the
// encoding named by Enc ("" = the task's JSON state codec, EncBinary =
// its binary codec).
type Delta struct {
	Version    int    `json:"version"`
	Collection string `json:"collection"`
	// ID is the idempotency key for this flush. The upstream records it
	// in the same dedup index batches use, so a retried delta folds
	// exactly once no matter how many times the relay resends it.
	ID      string      `json:"id,omitempty"`
	Config  task.Config `json:"config"`
	Reports int         `json:"reports"`
	// Round and Done pin the phased-protocol position the state was cut
	// at; the upstream rejects a mismatch with 409 so the relay
	// refetches the frontier instead of polluting a different round.
	Round int    `json:"round,omitempty"`
	Done  bool   `json:"done,omitempty"`
	Enc   string `json:"enc,omitempty"`
	State []byte `json:"state"`
}

// EncodeDeltaBinary packs d into the self-checking binary container.
func EncodeDeltaBinary(d Delta) ([]byte, error) {
	header := d
	header.State = nil
	hdr, err := json.Marshal(header)
	if err != nil {
		return nil, fmt.Errorf("core: encode delta header: %w", err)
	}
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(DeltaVersion)
	w.Blob(hdr)
	w.Blob(d.State)
	body := w.Bytes()

	blob := make([]byte, 0, len(deltaMagic)+4+len(body))
	blob = append(blob, deltaMagic...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(body, crcTable))
	blob = append(blob, crc[:]...)
	return append(blob, body...), nil
}

// IsBinaryDelta reports whether blob starts with the binary delta
// container magic.
func IsBinaryDelta(blob []byte) bool {
	return bytes.HasPrefix(blob, deltaMagic)
}

// DecodeDeltaBinary unpacks a binary delta container. The returned
// Delta owns its State (no aliasing of blob).
func DecodeDeltaBinary(blob []byte) (Delta, error) {
	if !IsBinaryDelta(blob) {
		return Delta{}, fmt.Errorf("core: not a binary delta container")
	}
	body := blob[len(deltaMagic):]
	if len(body) < 4 {
		return Delta{}, fmt.Errorf("core: binary delta truncated before checksum")
	}
	sum := binary.LittleEndian.Uint32(body[:4])
	body = body[4:]
	if got := crc32.Checksum(body, crcTable); got != sum {
		return Delta{}, fmt.Errorf("core: binary delta checksum mismatch: got %08x want %08x", got, sum)
	}
	r := binenc.NewReader(body)
	version := r.Byte()
	if err := r.Err(); err != nil {
		return Delta{}, fmt.Errorf("core: binary delta: %w", err)
	}
	if version != DeltaVersion {
		return Delta{}, fmt.Errorf("core: unsupported binary delta version %d (max %d)", version, DeltaVersion)
	}
	hdr := r.Blob()
	state := r.Blob()
	if err := r.Err(); err != nil {
		return Delta{}, fmt.Errorf("core: binary delta: %w", err)
	}
	if err := r.Done(); err != nil {
		return Delta{}, fmt.Errorf("core: binary delta: %w", err)
	}
	var d Delta
	if err := json.Unmarshal(hdr, &d); err != nil {
		return Delta{}, fmt.Errorf("core: binary delta header: %w", err)
	}
	if d.Version != DeltaVersion {
		return Delta{}, fmt.Errorf("core: unsupported delta header version %d (max %d)", d.Version, DeltaVersion)
	}
	d.Enc = EncBinary
	d.State = append([]byte(nil), state...)
	return d, nil
}

// DecodeDelta decodes either wire form: the binary container when
// binary is set, the JSON header otherwise.
func DecodeDelta(blob []byte, binaryWire bool) (Delta, error) {
	if binaryWire {
		return DecodeDeltaBinary(blob)
	}
	var d Delta
	if err := json.Unmarshal(blob, &d); err != nil {
		return Delta{}, fmt.Errorf("core: decode delta: %w", err)
	}
	if d.Version != DeltaVersion {
		return Delta{}, fmt.Errorf("core: unsupported delta version %d (max %d)", d.Version, DeltaVersion)
	}
	return d, nil
}

// CheckDeltaConfig verifies that a delta targets the collection it is
// being folded into: same task type and identical task configuration.
// A mismatch is a client error (the relay mirrored a different
// collection) and maps to a plain 400, never a fold attempt — Merge
// would reject it too, but with a less direct message and only after
// the state was journaled.
func (c *Collection) CheckDeltaConfig(d Delta) error {
	want := c.cfg.Config
	want.Task = want.Type()
	got := d.Config
	got.Task = got.Type()
	if got.Task != want.Task {
		return fmt.Errorf("core: delta task type %q does not match collection %q task %q",
			got.Task, c.name, want.Task)
	}
	if got != want {
		return fmt.Errorf("core: delta task config %+v does not match collection %q config %+v",
			got, c.name, want)
	}
	return nil
}
