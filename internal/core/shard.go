package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hashutil"
	"repro/internal/task"
)

// ShardedAggregator spreads privatized report envelopes across N
// independent per-shard task aggregators behind striped locks, so
// ingestion scales with cores instead of serializing on one mutex.
// Correctness rests on the mergeability every task.Aggregator
// guarantees: the accumulators are linear (count or sum vectors), so
// any shard can absorb any envelope and a Merge of the shards is
// exactly the state a single aggregator would have reached aggregating
// every report itself.
//
// Envelopes are hash-routed by payload fingerprint, with a rotating
// stripe mixed in so that repeats of one hot payload (common for GRR
// under large ε, where most clients report the true mode) still spread
// across shards instead of serializing on one lock.
type ShardedAggregator struct {
	cfg    task.Config
	shards []*shard
	seq    atomic.Uint64 // rotating stripe for repeated payloads

	// reportBits is the task's per-report payload size, a constant of
	// the configuration captured at construction so ReportBits (which
	// /status and the collection listing read) never touches a shard
	// lock.
	reportBits int

	// prepare is the shard-0 aggregator's task.Preparer half when the
	// task implements it: parsing and payload decoding — the expensive
	// part of ingestion — then run OUTSIDE the shard locks, and only
	// the fold runs under them. Prepare reads nothing but immutable
	// configuration (the task.Preparer contract), so calling it
	// without synchronization is safe, and a prepared value folds into
	// any shard of the same configuration. nil when the task only
	// implements plain Add.
	prepare func(json.RawMessage) (any, error)

	// collected counts accepted reports across all shards, maintained
	// atomically so Collected — which backs every /status hit and the
	// collection listing — never takes the shard locks. It is advanced
	// after the owning shard lock is released, so a reader can trail an
	// in-flight Add by one report, never lead it; once ingestion
	// quiesces it equals the lock-walk sum exactly (collectedWalk pins
	// this in tests).
	collected atomic.Int64

	// epoch counts state mutations (accepted reports, resets,
	// restores). MergedCached compares it against the epoch of the
	// last merge to decide whether the cached merged aggregator is
	// still exact, so an idle collection answers estimates without
	// re-merging every shard.
	epoch      atomic.Uint64
	mergeCount atomic.Uint64 // full merges performed, for tests/observability

	cacheMu     sync.Mutex
	cached      task.Aggregator // merged snapshot, read-only once published
	cachedEpoch uint64
}

// shard pairs one task aggregator with its stripe lock. Padding would
// buy a few percent by avoiding false sharing of the mutexes, but the
// aggregation hot paths dominate, so we keep the struct plain.
type shard struct {
	mu  sync.Mutex
	agg task.Aggregator
}

// NewShardedAggregator builds a sharded aggregator for the task
// configuration (cfg.Type() picks the adapter from the task registry).
// shards <= 0 selects GOMAXPROCS.
func NewShardedAggregator(cfg task.Config, shards int) (*ShardedAggregator, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	a := &ShardedAggregator{
		cfg:    cfg,
		shards: make([]*shard, shards),
	}
	for i := range a.shards {
		agg, err := task.New(cfg)
		if err != nil {
			return nil, err
		}
		a.shards[i] = &shard{agg: agg}
	}
	a.reportBits = a.shards[0].agg.ReportBits()
	if p, ok := a.shards[0].agg.(task.Preparer); ok {
		a.prepare = p.Prepare
	}
	return a, nil
}

// NewFreqShardedAggregator builds a sharded frequency aggregator from
// the legacy (mechanism, params) surface.
func NewFreqShardedAggregator(mechanism string, p PrivacyParams, shards int) (*ShardedAggregator, error) {
	return NewShardedAggregator(FreqTaskConfig(mechanism, p), shards)
}

// TaskType returns the task type name the aggregator serves.
func (a *ShardedAggregator) TaskType() string { return a.cfg.Type() }

// Config returns the task configuration the aggregator was built with.
func (a *ShardedAggregator) Config() task.Config { return a.cfg }

// Mechanism returns the configured mechanism name within the task
// family (an oracle registry name for freq, "duchi"/"harmony" for
// mean, "CMS"/"HCMS" for sketch).
func (a *ShardedAggregator) Mechanism() string { return a.cfg.Mechanism }

// Params returns the frequency-style privacy parameters (epsilon and,
// for tasks that have one, the categorical domain size).
func (a *ShardedAggregator) Params() PrivacyParams {
	return PrivacyParams{Epsilon: a.cfg.Epsilon, Domain: a.cfg.Domain}
}

// Shards returns the number of shards.
func (a *ShardedAggregator) Shards() int { return len(a.shards) }

// route picks the shard index for one envelope: a payload fingerprint
// mixed with a rotating stripe (see the type comment for why both).
func (a *ShardedAggregator) route(raw json.RawMessage) int {
	h := fingerprint(raw) ^ a.seq.Add(1)*0x9e3779b97f4a7c15
	return hashutil.Range(h, len(a.shards))
}

// fingerprintTail bounds how much of the payload the routing
// fingerprint reads. Routing only needs spread, not collision
// resistance — the rotating stripe already guarantees liveness — so
// hashing entire multi-kilobyte payloads (SHE vectors, UE bit rows)
// would cost more than the aggregation it is routing. The tail is
// where payloads differ (values follow the fixed mechanism prefix).
const fingerprintTail = 64

// fingerprint mixes the envelope's trailing bytes and length into one
// word, decorrelating distinct payloads from arrival order.
func fingerprint(raw json.RawMessage) uint64 {
	tail := raw
	if len(tail) > fingerprintTail {
		tail = tail[len(tail)-fingerprintTail:]
	}
	return hashutil.Hash64(0x5ca1ab1e^uint64(len(raw)), tail)
}

// Add validates and folds one envelope into its shard. With a
// task.Preparer the parse/validate/decode half runs before the lock is
// taken; only the accumulate runs under it.
func (a *ShardedAggregator) Add(raw json.RawMessage) error {
	s := a.shards[a.route(raw)]
	var err error
	if a.prepare != nil {
		var prepared any
		if prepared, err = a.prepare(raw); err == nil {
			s.mu.Lock()
			err = s.agg.(task.Preparer).Fold(prepared)
			s.mu.Unlock()
		}
	} else {
		s.mu.Lock()
		err = s.agg.Add(raw)
		s.mu.Unlock()
	}
	if err == nil {
		a.collected.Add(1)
		a.epoch.Add(1)
	}
	return err
}

// batchChunk bounds how long one stripe lock is held: a large batch is
// aggregated in chunks, each routed independently, so a single 8 MiB
// batch of tiny envelopes cannot pin one shard (stalling the single
// reports hash-routed there and the snapshot pass of a concurrent
// estimate) for its entire aggregation.
const batchChunk = 1024

// maxBatchErrors bounds how many per-envelope rejections the joined
// AddBatch error spells out. A batch can hold hundreds of thousands of
// envelopes, and a systematically misconfigured client (wrong domain,
// wrong mechanism) rejects all of them — an unbounded join would build
// a multi-megabyte error string that HTTP handlers then echo into the
// response body. The first few rejections carry all the signal.
const maxBatchErrors = 16

// AddBatch folds a batch of envelopes chunk by chunk: one route and
// one lock acquisition per chunk (the whole point of batching —
// per-report locking overhead amortizes to nearly zero) while the
// rotating stripe spreads chunks and successive batches across shards.
// Any shard can absorb any envelope, so placement never affects the
// merged estimate. With a task.Preparer the whole chunk is parsed and
// decoded before its lock is taken, so concurrent batches contend on
// vector adds, never on JSON decoding. The batch is not atomic:
// invalid envelopes are skipped and reported via the joined error
// (detailed up to maxBatchErrors, then summarized) while the valid
// remainder is still aggregated. It returns the number of envelopes
// accepted.
func (a *ShardedAggregator) AddBatch(batch []json.RawMessage) (int, error) {
	accepted, suppressed := 0, 0
	var errs []error
	reject := func(i int, err error) {
		if len(errs) < maxBatchErrors {
			errs = append(errs, fmt.Errorf("envelope %d: %w", i, err))
		} else {
			suppressed++
		}
	}
	type preparedReport struct {
		idx int // index in batch, for accurate rejection errors
		val any
	}
	var prepared []preparedReport // reused across chunks on the Preparer path
	for off := 0; off < len(batch); off += batchChunk {
		chunk := batch[off:min(off+batchChunk, len(batch))]
		sh := a.shards[a.route(chunk[0])]
		if a.prepare != nil {
			prepared = prepared[:0]
			for i := range chunk {
				v, err := a.prepare(chunk[i])
				if err != nil {
					reject(off+i, err)
					continue
				}
				prepared = append(prepared, preparedReport{idx: off + i, val: v})
			}
			folder := sh.agg.(task.Preparer)
			sh.mu.Lock()
			for _, p := range prepared {
				// Fold after a successful Prepare does not fail (the
				// Preparer contract); a failure here still only drops
				// the one report.
				if err := folder.Fold(p.val); err != nil {
					reject(p.idx, err)
					continue
				}
				accepted++
			}
			sh.mu.Unlock()
			continue
		}
		sh.mu.Lock()
		for i := range chunk {
			if err := sh.agg.Add(chunk[i]); err != nil {
				reject(off+i, err)
				continue
			}
			accepted++
		}
		sh.mu.Unlock()
	}
	if accepted > 0 {
		a.collected.Add(int64(accepted))
		a.epoch.Add(uint64(accepted))
	}
	if suppressed > 0 {
		errs = append(errs, fmt.Errorf("and %d more rejected envelopes", suppressed))
	}
	return accepted, errors.Join(errs...)
}

// ReportBits returns the task's per-report payload size, a constant of
// the configuration captured at construction — no shard lock is taken,
// so /status and the collection listing never contend with ingestion.
func (a *ShardedAggregator) ReportBits() int { return a.reportBits }

// Collected returns the total number of accepted reports, from the
// atomic counter — no shard lock is taken, so status polling never
// contends with ingestion.
func (a *ShardedAggregator) Collected() int {
	return int(a.collected.Load())
}

// collectedWalk sums the per-shard report counts under their locks:
// the ground truth the atomic counter mirrors, kept for tests.
func (a *ShardedAggregator) collectedWalk() int {
	total := 0
	for _, s := range a.shards {
		s.mu.Lock()
		total += s.agg.Collected()
		s.mu.Unlock()
	}
	return total
}

// Merged returns a fresh aggregator holding the combined state of
// every shard. Each shard is snapshotted under its own lock (a cheap
// deep copy) and merged outside it, so ingestion stalls only for the
// copy, not for the merge. The result is an independent
// consistent-enough view: reports racing with the call land in either
// this merge or the next, never half in one shard.
func (a *ShardedAggregator) Merged() (task.Aggregator, error) {
	merged, err := task.New(a.cfg)
	if err != nil {
		return nil, err
	}
	for _, s := range a.shards {
		s.mu.Lock()
		snap := s.agg.Snapshot()
		s.mu.Unlock()
		if err := merged.Merge(snap); err != nil {
			return nil, err
		}
	}
	a.mergeCount.Add(1)
	return merged, nil
}

// MergedCached returns a merged view of the shards, reusing the last
// merge while the ingestion epoch is unchanged. The returned
// aggregator is shared between callers and must be treated as
// read-only (estimate reads allocate their own output, so concurrent
// reads are safe); callers that intend to mutate should use Merged.
//
// The epoch is read before the shards are walked: reports racing with
// the merge may or may not be included in the cached view, but they
// always advance the epoch past the recorded one, so the next call
// re-merges rather than serving them stale forever.
func (a *ShardedAggregator) MergedCached() (task.Aggregator, error) {
	a.cacheMu.Lock()
	defer a.cacheMu.Unlock()
	// Loaded after taking the cache lock (but still before the merge),
	// so a burst of concurrent readers behind one in-flight merge all
	// observe the merger's epoch and reuse its result, instead of each
	// arriving with an older epoch and re-merging in turn.
	epoch := a.epoch.Load()
	if a.cached != nil && a.cachedEpoch == epoch {
		return a.cached, nil
	}
	merged, err := a.Merged()
	if err != nil {
		return nil, err
	}
	a.cached = merged
	a.cachedEpoch = epoch
	return merged, nil
}

// Estimate answers one task-defined analyst query against the cached
// merged view.
func (a *ShardedAggregator) Estimate(query map[string][]string) (json.RawMessage, error) {
	merged, err := a.MergedCached()
	if err != nil {
		return nil, err
	}
	return merged.Estimate(query)
}

// Epoch returns the current ingestion epoch: a counter advanced by
// every accepted report, reset and restore. Equal epochs across two
// observations mean the aggregate state is unchanged between them.
func (a *ShardedAggregator) Epoch() uint64 { return a.epoch.Load() }

// MergeCount returns how many full shard merges have run, exposed so
// tests (and curious operators) can verify the epoch cache is working.
func (a *ShardedAggregator) MergeCount() uint64 { return a.mergeCount.Load() }

// MarshalState serializes the aggregator's combined state as one task
// state blob (see task.Aggregator.MarshalState). Shard layout is
// deliberately not preserved: merging is exact, so the combined state
// is the whole truth and restores cleanly into any shard count.
func (a *ShardedAggregator) MarshalState() ([]byte, error) {
	merged, err := a.MergedCached()
	if err != nil {
		return nil, err
	}
	return merged.MarshalState()
}

// RestoreState loads a state blob produced by MarshalState into the
// aggregator, which must be empty (restore happens at startup, before
// ingestion begins — restoring over live data would double-count).
// The whole restored aggregate lands in shard 0; subsequent ingestion
// spreads over all shards as usual, and merging re-combines both.
func (a *ShardedAggregator) RestoreState(data []byte) error {
	if a.Collected() != 0 || a.collectedWalk() != 0 {
		return errors.New("core: cannot restore state into a non-empty aggregator")
	}
	s := a.shards[0]
	s.mu.Lock()
	err := s.agg.UnmarshalState(data)
	restored := s.agg.Collected()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	a.collected.Store(int64(restored))
	a.epoch.Add(1)
	return nil
}

// Reset discards all aggregated reports in every shard.
func (a *ShardedAggregator) Reset() {
	for _, s := range a.shards {
		s.mu.Lock()
		s.agg.Reset()
		s.mu.Unlock()
	}
	a.collected.Store(0)
	a.epoch.Add(1)
}
