package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/freq"
	"repro/internal/hashutil"
	"repro/internal/ldprand"
)

// ShardedAggregator spreads privatized envelopes across N independent
// per-shard oracles behind striped locks, so ingestion scales with
// cores instead of serializing on one mutex. Correctness rests on the
// mergeability of every frequency oracle in the registry: all the
// accumulators are linear (count or sum vectors), so any shard can
// absorb any envelope and a Merge of the shards is exactly the state
// a single oracle would have reached aggregating every report itself.
//
// Envelopes are hash-routed by payload fingerprint, with a rotating
// stripe mixed in so that repeats of one hot payload (common for GRR
// under large ε, where most clients report the true mode) still spread
// across shards instead of serializing on one lock.
type ShardedAggregator struct {
	mechanism string
	params    PrivacyParams
	shards    []*shard
	seq       atomic.Uint64 // rotating stripe for repeated payloads

	// epoch counts state mutations (accepted reports, resets,
	// restores). MergedCached compares it against the epoch of the
	// last merge to decide whether the cached merged oracle is still
	// exact, so an idle collection answers estimates without
	// re-merging every shard.
	epoch      atomic.Uint64
	mergeCount atomic.Uint64 // full merges performed, for tests/observability

	cacheMu     sync.Mutex
	cached      freq.Oracle // merged snapshot, read-only once published
	cachedEpoch uint64
}

// shard pairs one oracle with its stripe lock. Padding would buy a few
// percent by avoiding false sharing of the mutexes, but the oracle hot
// paths dominate, so we keep the struct plain.
type shard struct {
	mu     sync.Mutex
	oracle freq.Oracle
}

// NewShardedAggregator builds a sharded aggregator for the named
// mechanism. shards <= 0 selects GOMAXPROCS. The optional sources give
// each shard deterministic randomness for tests; production callers
// pass nil and get crypto/rand. (Aggregation itself never draws
// randomness — the sources only matter if a shard oracle is also used
// to privatize.)
func NewShardedAggregator(mechanism string, p PrivacyParams, shards int, srcs []ldprand.Source) (*ShardedAggregator, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	a := &ShardedAggregator{
		mechanism: mechanism,
		params:    p,
		shards:    make([]*shard, shards),
	}
	for i := range a.shards {
		var src ldprand.Source
		if i < len(srcs) {
			src = srcs[i]
		}
		o, err := NewOracle(mechanism, p, src)
		if err != nil {
			return nil, err
		}
		a.shards[i] = &shard{oracle: o}
	}
	return a, nil
}

// Mechanism returns the registry name the aggregator was built with.
func (a *ShardedAggregator) Mechanism() string { return a.mechanism }

// Params returns the privacy parameters in use.
func (a *ShardedAggregator) Params() PrivacyParams { return a.params }

// Shards returns the number of shards.
func (a *ShardedAggregator) Shards() int { return len(a.shards) }

// route picks the shard index for one envelope: a payload fingerprint
// mixed with a rotating stripe (see the type comment for why both).
func (a *ShardedAggregator) route(e *Envelope) int {
	h := fingerprint(e) ^ a.seq.Add(1)*0x9e3779b97f4a7c15
	return hashutil.Range(h, len(a.shards))
}

// fingerprint mixes the envelope's cheap payload fields into one word.
// It does not need collision resistance: routing only needs spread,
// the rotating stripe already guarantees it, and the fingerprint's job
// is just to decorrelate distinct payloads from arrival order. Hashing
// the variable-length payload bodies would cost more than the
// aggregation it is routing.
func fingerprint(e *Envelope) uint64 {
	x := uint64(e.Value)<<32 ^ e.Seed ^ uint64(uint8(e.Sign))<<24 ^
		uint64(len(e.Bits))<<40 ^ uint64(len(e.Reals))<<48 ^ uint64(len(e.Values))<<56
	return hashutil.HashInt64(0x5ca1ab1e, int(x))
}

// Add validates and folds one envelope into its shard.
func (a *ShardedAggregator) Add(e Envelope) error {
	s := a.shards[a.route(&e)]
	s.mu.Lock()
	err := Aggregate(s.oracle, e)
	s.mu.Unlock()
	if err == nil {
		a.epoch.Add(1)
	}
	return err
}

// batchChunk bounds how long one stripe lock is held: a large batch is
// aggregated in chunks, each routed independently, so a single 8 MiB
// batch of tiny envelopes cannot pin one shard (stalling the single
// reports hash-routed there and the snapshot pass of a concurrent
// estimate) for its entire aggregation.
const batchChunk = 1024

// maxBatchErrors bounds how many per-envelope rejections the joined
// AddBatch error spells out. A batch can hold hundreds of thousands of
// envelopes, and a systematically misconfigured client (wrong domain,
// wrong mechanism) rejects all of them — an unbounded join would build
// a multi-megabyte error string that HTTP handlers then echo into the
// response body. The first few rejections carry all the signal.
const maxBatchErrors = 16

// AddBatch folds a batch of envelopes chunk by chunk: one route and
// one lock acquisition per chunk (the whole point of batching —
// per-report locking overhead amortizes to nearly zero) while the
// rotating stripe spreads chunks and successive batches across shards.
// Any shard can absorb any envelope, so placement never affects the
// merged estimate. The batch is not atomic: invalid envelopes are
// skipped and reported via the joined error (detailed up to
// maxBatchErrors, then summarized) while the valid remainder is still
// aggregated. It returns the number of envelopes accepted.
func (a *ShardedAggregator) AddBatch(batch []Envelope) (int, error) {
	accepted, suppressed := 0, 0
	var errs []error
	for off := 0; off < len(batch); off += batchChunk {
		chunk := batch[off:min(off+batchChunk, len(batch))]
		sh := a.shards[a.route(&chunk[0])]
		sh.mu.Lock()
		for i := range chunk {
			if err := Aggregate(sh.oracle, chunk[i]); err != nil {
				if len(errs) < maxBatchErrors {
					errs = append(errs, fmt.Errorf("envelope %d: %w", off+i, err))
				} else {
					suppressed++
				}
				continue
			}
			accepted++
		}
		sh.mu.Unlock()
	}
	if accepted > 0 {
		a.epoch.Add(uint64(accepted))
	}
	if suppressed > 0 {
		errs = append(errs, fmt.Errorf("and %d more rejected envelopes", suppressed))
	}
	return accepted, errors.Join(errs...)
}

// ReportBits returns the mechanism's per-report payload size, a
// constant of the configuration (taken from shard 0 under its lock
// since Oracle implementations make no concurrency promises).
func (a *ShardedAggregator) ReportBits() int {
	s := a.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.oracle.ReportBits()
}

// Collected returns the total number of reports across all shards.
func (a *ShardedAggregator) Collected() int {
	total := 0
	for _, s := range a.shards {
		s.mu.Lock()
		total += s.oracle.Collected()
		s.mu.Unlock()
	}
	return total
}

// Merged returns a fresh oracle holding the combined state of every
// shard. Each shard is snapshotted under its own lock (a cheap deep
// copy) and merged outside it, so ingestion stalls only for the copy,
// not for the merge. The result is an independent consistent-enough
// view: reports racing with the call land in either this merge or the
// next, never half in one shard.
func (a *ShardedAggregator) Merged() (freq.Oracle, error) {
	merged, err := NewOracle(a.mechanism, a.params, nil)
	if err != nil {
		return nil, err
	}
	for _, s := range a.shards {
		s.mu.Lock()
		snap := s.oracle.Snapshot()
		s.mu.Unlock()
		if err := merged.Merge(snap); err != nil {
			return nil, err
		}
	}
	a.mergeCount.Add(1)
	return merged, nil
}

// MergedCached returns a merged view of the shards, reusing the last
// merge while the ingestion epoch is unchanged. The returned oracle is
// shared between callers and must be treated as read-only (estimate
// reads allocate their own output, so concurrent reads are safe);
// callers that intend to mutate should use Merged.
//
// The epoch is read before the shards are walked: reports racing with
// the merge may or may not be included in the cached view, but they
// always advance the epoch past the recorded one, so the next call
// re-merges rather than serving them stale forever.
func (a *ShardedAggregator) MergedCached() (freq.Oracle, error) {
	a.cacheMu.Lock()
	defer a.cacheMu.Unlock()
	// Loaded after taking the cache lock (but still before the merge),
	// so a burst of concurrent readers behind one in-flight merge all
	// observe the merger's epoch and reuse its result, instead of each
	// arriving with an older epoch and re-merging in turn.
	epoch := a.epoch.Load()
	if a.cached != nil && a.cachedEpoch == epoch {
		return a.cached, nil
	}
	merged, err := a.Merged()
	if err != nil {
		return nil, err
	}
	a.cached = merged
	a.cachedEpoch = epoch
	return merged, nil
}

// Epoch returns the current ingestion epoch: a counter advanced by
// every accepted report, reset and restore. Equal epochs across two
// observations mean the aggregate state is unchanged between them.
func (a *ShardedAggregator) Epoch() uint64 { return a.epoch.Load() }

// MergeCount returns how many full shard merges have run, exposed so
// tests (and curious operators) can verify the epoch cache is working.
func (a *ShardedAggregator) MergeCount() uint64 { return a.mergeCount.Load() }

// MarshalState serializes the aggregator's combined state as one
// oracle state blob (see freq.Oracle.MarshalState). Shard layout is
// deliberately not preserved: merging is exact, so the combined state
// is the whole truth and restores cleanly into any shard count.
func (a *ShardedAggregator) MarshalState() ([]byte, error) {
	merged, err := a.MergedCached()
	if err != nil {
		return nil, err
	}
	return merged.MarshalState()
}

// RestoreState loads a state blob produced by MarshalState into the
// aggregator, which must be empty (restore happens at startup, before
// ingestion begins — restoring over live data would double-count).
// The whole restored aggregate lands in shard 0; subsequent ingestion
// spreads over all shards as usual, and merging re-combines both.
func (a *ShardedAggregator) RestoreState(data []byte) error {
	if a.Collected() != 0 {
		return errors.New("core: cannot restore state into a non-empty aggregator")
	}
	s := a.shards[0]
	s.mu.Lock()
	err := s.oracle.UnmarshalState(data)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	a.epoch.Add(1)
	return nil
}

// Reset discards all aggregated reports in every shard.
func (a *ShardedAggregator) Reset() {
	for _, s := range a.shards {
		s.mu.Lock()
		s.oracle.Reset()
		s.mu.Unlock()
	}
	a.epoch.Add(1)
}
