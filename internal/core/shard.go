package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hashutil"
	"repro/internal/task"
)

// ErrNotPhased is returned by the phase surface (Frontier, Advance) of
// a collection whose task is one-shot; HTTP maps it to a client error.
var ErrNotPhased = errors.New("core: collection task is not phased")

// ShardedAggregator spreads privatized report envelopes across N
// independent per-shard task aggregators behind striped locks, so
// ingestion scales with cores instead of serializing on one mutex.
// Correctness rests on the mergeability every task.Aggregator
// guarantees: the accumulators are linear (count or sum vectors), so
// any shard can absorb any envelope and a Merge of the shards is
// exactly the state a single aggregator would have reached aggregating
// every report itself.
//
// Envelopes are hash-routed by payload fingerprint, with a rotating
// stripe mixed in so that repeats of one hot payload (common for GRR
// under large ε, where most clients report the true mode) still spread
// across shards instead of serializing on one lock.
type ShardedAggregator struct {
	cfg    task.Config
	shards []*shard
	seq    atomic.Uint64 // rotating stripe for repeated payloads

	// reportBits is the task's per-report payload size, a constant of
	// the configuration captured at construction so ReportBits (which
	// /status and the collection listing read) never touches a shard
	// lock.
	reportBits int

	// prepare is the shard-0 aggregator's task.Preparer half when the
	// task implements it: parsing and payload decoding — the expensive
	// part of ingestion — then run OUTSIDE the shard locks, and only
	// the fold runs under them. Prepare reads nothing but immutable
	// configuration (the task.Preparer contract), so calling it
	// without synchronization is safe, and a prepared value folds into
	// any shard of the same configuration. nil when the task only
	// implements plain Add.
	prepare func(json.RawMessage) (any, error)

	// prepareBinary is the task.BinaryReporter decode half when the
	// task implements it: binary wire envelopes decode outside the
	// shard locks exactly like JSON ones, and the prepared values fold
	// through the same task.Preparer path. nil when the task speaks
	// only JSON on the wire.
	prepareBinary func([]byte) (any, error)

	// binaryState is set when the task implements task.BinaryStater,
	// so checkpoints (and /status) know the collection can snapshot in
	// the binary layout without asserting per call.
	binaryState bool

	// collected counts accepted reports across all shards, maintained
	// atomically so Collected — which backs every /status hit and the
	// collection listing — never takes the shard locks. It is advanced
	// after the owning shard lock is released, so a reader can trail an
	// in-flight Add by one report, never lead it; once ingestion
	// quiesces it equals the lock-walk sum exactly (collectedWalk pins
	// this in tests).
	collected atomic.Int64

	// epoch counts state mutations (accepted reports, resets,
	// restores). MergedCached compares it against the epoch of the
	// last merge to decide whether the cached merged aggregator is
	// still exact, so an idle collection answers estimates without
	// re-merging every shard.
	epoch      atomic.Uint64
	mergeCount atomic.Uint64 // full merges performed, for tests/observability

	cacheMu     sync.Mutex
	cached      task.Aggregator // merged snapshot, read-only once published
	cachedEpoch uint64

	// estMu guards the per-query estimate-response cache: serialized
	// estimate payloads keyed by canonicalized query string, valid for
	// one ingestion epoch, so analysts polling the same ?top=k or
	// ?item= query against an idle collection re-serialize nothing.
	estMu    sync.Mutex
	estCache map[string]estEntry
	estEpoch uint64
	estHits  atomic.Uint64 // cache hits, for tests/observability

	// phased is set when the task implements task.Phased — the
	// collection runs an interactive multi-round protocol and this
	// layer coordinates its round boundaries across shards.
	phased bool
	// advanceMu serializes round advances (manual and quota-driven),
	// so two requests crossing the quota together advance one round,
	// not two.
	advanceMu sync.Mutex
	// phaseMu excludes shard-walking readers (Merged) from the window
	// in which an advance rewrites every shard: without it a reader
	// could combine one shard from round r with another from r+1 — a
	// torn round that would fail the merge and, worse, fail a
	// checkpoint racing the advance.
	phaseMu sync.RWMutex
	// round/done/roundStart mirror the shards' phase so /status and
	// quota checks never take a shard lock. roundStart is the value of
	// collected when the current round opened; collected-roundStart is
	// the round's report count. (Because collected is advanced after
	// the owning shard lock is released, a report racing the advance
	// can be attributed to the next round's count — a one-report drift
	// in the quota arithmetic, never in the aggregate itself.)
	round      atomic.Int64
	done       atomic.Bool
	roundStart atomic.Int64
}

// estEntry is one cached estimate response plus the report count the
// estimate was computed over (served alongside it by /estimate).
type estEntry struct {
	payload json.RawMessage
	reports int
}

// shard pairs one task aggregator with its stripe lock. Padding would
// buy a few percent by avoiding false sharing of the mutexes, but the
// aggregation hot paths dominate, so we keep the struct plain.
type shard struct {
	mu  sync.Mutex
	agg task.Aggregator
}

// NewShardedAggregator builds a sharded aggregator for the task
// configuration (cfg.Type() picks the adapter from the task registry).
// shards <= 0 selects GOMAXPROCS.
func NewShardedAggregator(cfg task.Config, shards int) (*ShardedAggregator, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	a := &ShardedAggregator{
		cfg:    cfg,
		shards: make([]*shard, shards),
	}
	for i := range a.shards {
		agg, err := task.New(cfg)
		if err != nil {
			return nil, err
		}
		a.shards[i] = &shard{agg: agg}
	}
	a.reportBits = a.shards[0].agg.ReportBits()
	if p, ok := a.shards[0].agg.(task.Preparer); ok {
		a.prepare = p.Prepare
	}
	if b, ok := a.shards[0].agg.(task.BinaryReporter); ok {
		a.prepareBinary = b.PrepareBinary
	}
	_, a.binaryState = a.shards[0].agg.(task.BinaryStater)
	_, a.phased = a.shards[0].agg.(task.Phased)
	return a, nil
}

// BinaryWire reports whether the collection's task accepts binary wire
// report envelopes (implements task.BinaryReporter).
func (a *ShardedAggregator) BinaryWire() bool { return a.prepareBinary != nil }

// BinaryState reports whether the collection's task snapshots in the
// binary state layout (implements task.BinaryStater).
func (a *ShardedAggregator) BinaryState() bool { return a.binaryState }

// NewFreqShardedAggregator builds a sharded frequency aggregator from
// the legacy (mechanism, params) surface.
func NewFreqShardedAggregator(mechanism string, p PrivacyParams, shards int) (*ShardedAggregator, error) {
	return NewShardedAggregator(FreqTaskConfig(mechanism, p), shards)
}

// TaskType returns the task type name the aggregator serves.
func (a *ShardedAggregator) TaskType() string { return a.cfg.Type() }

// Config returns the task configuration the aggregator was built with.
func (a *ShardedAggregator) Config() task.Config { return a.cfg }

// Mechanism returns the configured mechanism name within the task
// family (an oracle registry name for freq, "duchi"/"harmony" for
// mean, "CMS"/"HCMS" for sketch).
func (a *ShardedAggregator) Mechanism() string { return a.cfg.Mechanism }

// Params returns the frequency-style privacy parameters (epsilon and,
// for tasks that have one, the categorical domain size).
func (a *ShardedAggregator) Params() PrivacyParams {
	return PrivacyParams{Epsilon: a.cfg.Epsilon, Domain: a.cfg.Domain}
}

// Shards returns the number of shards.
func (a *ShardedAggregator) Shards() int { return len(a.shards) }

// route picks the shard index for one envelope: a payload fingerprint
// mixed with a rotating stripe (see the type comment for why both).
func (a *ShardedAggregator) route(raw json.RawMessage) int {
	h := fingerprint(raw) ^ a.seq.Add(1)*0x9e3779b97f4a7c15
	return hashutil.Range(h, len(a.shards))
}

// fingerprintTail bounds how much of the payload the routing
// fingerprint reads. Routing only needs spread, not collision
// resistance — the rotating stripe already guarantees liveness — so
// hashing entire multi-kilobyte payloads (SHE vectors, UE bit rows)
// would cost more than the aggregation it is routing. The tail is
// where payloads differ (values follow the fixed mechanism prefix).
const fingerprintTail = 64

// fingerprint mixes the envelope's trailing bytes and length into one
// word, decorrelating distinct payloads from arrival order.
func fingerprint(raw json.RawMessage) uint64 {
	tail := raw
	if len(tail) > fingerprintTail {
		tail = tail[len(tail)-fingerprintTail:]
	}
	return hashutil.Hash64(0x5ca1ab1e^uint64(len(raw)), tail)
}

// Add validates and folds one envelope into its shard. With a
// task.Preparer the parse/validate/decode half runs before the lock is
// taken; only the accumulate runs under it.
func (a *ShardedAggregator) Add(raw json.RawMessage) error {
	s := a.shards[a.route(raw)]
	var err error
	if a.prepare != nil {
		var prepared any
		if prepared, err = a.prepare(raw); err == nil {
			s.mu.Lock()
			err = s.agg.(task.Preparer).Fold(prepared)
			s.mu.Unlock()
		}
	} else {
		s.mu.Lock()
		err = s.agg.Add(raw)
		s.mu.Unlock()
	}
	if err == nil {
		a.collected.Add(1)
		a.epoch.Add(1)
	}
	return err
}

// ErrBinaryWire is returned when a binary wire payload reaches a
// collection whose task has no binary decoder; HTTP maps it to 415.
var ErrBinaryWire = errors.New("core: collection task does not accept binary reports")

// AddBinary validates and folds one binary wire envelope into its
// shard, the binary counterpart of Add: decode outside the lock, fold
// under it.
func (a *ShardedAggregator) AddBinary(payload []byte) error {
	if a.prepareBinary == nil {
		return ErrBinaryWire
	}
	prepared, err := a.prepareBinary(payload)
	if err != nil {
		return err
	}
	s := a.shards[a.route(payload)]
	s.mu.Lock()
	err = s.agg.(task.Preparer).Fold(prepared)
	s.mu.Unlock()
	if err == nil {
		a.collected.Add(1)
		a.epoch.Add(1)
	}
	return err
}

// batchChunk bounds how long one stripe lock is held: a large batch is
// aggregated in chunks, each routed independently, so a single 8 MiB
// batch of tiny envelopes cannot pin one shard (stalling the single
// reports hash-routed there and the snapshot pass of a concurrent
// estimate) for its entire aggregation.
const batchChunk = 1024

// maxBatchErrors bounds how many per-envelope rejections the joined
// AddBatch error spells out. A batch can hold hundreds of thousands of
// envelopes, and a systematically misconfigured client (wrong domain,
// wrong mechanism) rejects all of them — an unbounded join would build
// a multi-megabyte error string that HTTP handlers then echo into the
// response body. The first few rejections carry all the signal.
const maxBatchErrors = 16

// AddBatch folds a batch of envelopes chunk by chunk: one route and
// one lock acquisition per chunk (the whole point of batching —
// per-report locking overhead amortizes to nearly zero) while the
// rotating stripe spreads chunks and successive batches across shards.
// Any shard can absorb any envelope, so placement never affects the
// merged estimate. With a task.Preparer the whole chunk is parsed and
// decoded before its lock is taken, so concurrent batches contend on
// vector adds, never on JSON decoding. The batch is not atomic:
// invalid envelopes are skipped and reported via the joined error
// (detailed up to maxBatchErrors, then summarized) while the valid
// remainder is still aggregated. It returns the number of envelopes
// accepted.
func (a *ShardedAggregator) AddBatch(batch []json.RawMessage) (int, error) {
	if a.prepare != nil {
		return a.addBatchPrepared(len(batch),
			func(i int) []byte { return batch[i] },
			func(payload []byte) (any, error) { return a.prepare(payload) })
	}
	accepted, suppressed := 0, 0
	var errs []error
	reject := func(i int, err error) {
		if len(errs) < maxBatchErrors {
			errs = append(errs, fmt.Errorf("envelope %d: %w", i, err))
		} else {
			suppressed++
		}
	}
	for off := 0; off < len(batch); off += batchChunk {
		chunk := batch[off:min(off+batchChunk, len(batch))]
		sh := a.shards[a.route(chunk[0])]
		sh.mu.Lock()
		for i := range chunk {
			if err := sh.agg.Add(chunk[i]); err != nil {
				reject(off+i, err)
				continue
			}
			accepted++
		}
		sh.mu.Unlock()
	}
	if accepted > 0 {
		a.collected.Add(int64(accepted))
		a.epoch.Add(uint64(accepted))
	}
	if suppressed > 0 {
		errs = append(errs, fmt.Errorf("and %d more rejected envelopes", suppressed))
	}
	return accepted, errors.Join(errs...)
}

// AddBatchBinary folds a batch of binary wire envelopes with the exact
// chunking and lock discipline of AddBatch's Preparer path: the whole
// chunk decodes before its lock is taken, invalid payloads are skipped
// and reported, and the valid remainder is aggregated.
func (a *ShardedAggregator) AddBatchBinary(batch [][]byte) (int, error) {
	if a.prepareBinary == nil {
		return 0, ErrBinaryWire
	}
	return a.addBatchPrepared(len(batch),
		func(i int) []byte { return batch[i] },
		a.prepareBinary)
}

// addBatchPrepared is the shared prepare-outside/fold-inside batch
// loop: payloads (fetched by index, so JSON and binary batches share
// it without copying into a common slice type) decode via prepare
// before each chunk's lock is taken, and only the folds run under it.
// The prepared slice is reused across chunks, so a steady batch load
// allocates no per-chunk bookkeeping.
func (a *ShardedAggregator) addBatchPrepared(n int, payload func(int) []byte, prepare func([]byte) (any, error)) (int, error) {
	accepted, suppressed := 0, 0
	var errs []error
	reject := func(i int, err error) {
		if len(errs) < maxBatchErrors {
			errs = append(errs, fmt.Errorf("envelope %d: %w", i, err))
		} else {
			suppressed++
		}
	}
	type preparedReport struct {
		idx int // index in batch, for accurate rejection errors
		val any
	}
	var prepared []preparedReport // reused across chunks
	for off := 0; off < n; off += batchChunk {
		end := min(off+batchChunk, n)
		sh := a.shards[a.route(payload(off))]
		prepared = prepared[:0]
		for i := off; i < end; i++ {
			v, err := prepare(payload(i))
			if err != nil {
				reject(i, err)
				continue
			}
			prepared = append(prepared, preparedReport{idx: i, val: v})
		}
		folder := sh.agg.(task.Preparer)
		sh.mu.Lock()
		for _, p := range prepared {
			// Fold after a successful Prepare does not fail (the
			// Preparer contract); a failure here still only drops
			// the one report.
			if err := folder.Fold(p.val); err != nil {
				reject(p.idx, err)
				continue
			}
			accepted++
		}
		sh.mu.Unlock()
	}
	if accepted > 0 {
		a.collected.Add(int64(accepted))
		a.epoch.Add(uint64(accepted))
	}
	if suppressed > 0 {
		errs = append(errs, fmt.Errorf("and %d more rejected envelopes", suppressed))
	}
	return accepted, errors.Join(errs...)
}

// ReportBits returns the task's per-report payload size, a constant of
// the configuration captured at construction — no shard lock is taken,
// so /status and the collection listing never contend with ingestion.
func (a *ShardedAggregator) ReportBits() int { return a.reportBits }

// Collected returns the total number of accepted reports, from the
// atomic counter — no shard lock is taken, so status polling never
// contends with ingestion.
func (a *ShardedAggregator) Collected() int {
	return int(a.collected.Load())
}

// collectedWalk sums the per-shard report counts under their locks:
// the ground truth the atomic counter mirrors, kept for tests.
func (a *ShardedAggregator) collectedWalk() int {
	total := 0
	for _, s := range a.shards {
		s.mu.Lock()
		total += s.agg.Collected()
		s.mu.Unlock()
	}
	return total
}

// Merged returns a fresh aggregator holding the combined state of
// every shard. Each shard is snapshotted under its own lock (a cheap
// deep copy) and merged outside it, so ingestion stalls only for the
// copy, not for the merge. The result is an independent
// consistent-enough view: reports racing with the call land in either
// this merge or the next, never half in one shard.
func (a *ShardedAggregator) Merged() (task.Aggregator, error) {
	merged, err := task.New(a.cfg)
	if err != nil {
		return nil, err
	}
	// The phase read-lock keeps the walk on one side of any concurrent
	// round advance: shard locks are taken one at a time here, and for
	// a phased task a walk interleaved with the advance's all-shard
	// rewrite would pair shards from different rounds — an unmergeable
	// (and uncheckpointable) torn view.
	a.phaseMu.RLock()
	defer a.phaseMu.RUnlock()
	for _, s := range a.shards {
		s.mu.Lock()
		snap := s.agg.Snapshot()
		s.mu.Unlock()
		if err := merged.Merge(snap); err != nil {
			return nil, err
		}
	}
	a.mergeCount.Add(1)
	return merged, nil
}

// MergedCached returns a merged view of the shards, reusing the last
// merge while the ingestion epoch is unchanged. The returned
// aggregator is shared between callers and must be treated as
// read-only (estimate reads allocate their own output, so concurrent
// reads are safe); callers that intend to mutate should use Merged.
//
// The epoch is read before the shards are walked: reports racing with
// the merge may or may not be included in the cached view, but they
// always advance the epoch past the recorded one, so the next call
// re-merges rather than serving them stale forever.
func (a *ShardedAggregator) MergedCached() (task.Aggregator, error) {
	a.cacheMu.Lock()
	defer a.cacheMu.Unlock()
	// Loaded after taking the cache lock (but still before the merge),
	// so a burst of concurrent readers behind one in-flight merge all
	// observe the merger's epoch and reuse its result, instead of each
	// arriving with an older epoch and re-merging in turn.
	epoch := a.epoch.Load()
	if a.cached != nil && a.cachedEpoch == epoch {
		return a.cached, nil
	}
	merged, err := a.Merged()
	if err != nil {
		return nil, err
	}
	a.cached = merged
	a.cachedEpoch = epoch
	return merged, nil
}

// maxEstCacheEntries bounds the per-query estimate cache: an analyst
// sweeping a parameter (?item=a, ?item=b, ...) within one epoch would
// otherwise grow the map without limit. Past the cap the whole cache
// resets — by then the hot queries have been re-cached anyway.
const maxEstCacheEntries = 256

// internalError marks a server-side failure crossing the Estimate
// surface — a shard merge gone wrong, not a bad analyst query — so the
// HTTP layer answers 500 instead of blaming the request with 400.
type internalError struct{ err error }

func (e *internalError) Error() string { return e.err.Error() }
func (e *internalError) Unwrap() error { return e.err }

// IsInternal reports whether an error from the estimate surface is a
// server-side failure rather than a query error.
func IsInternal(err error) bool {
	var ie *internalError
	return errors.As(err, &ie)
}

// Estimate answers one task-defined analyst query against the cached
// merged view.
func (a *ShardedAggregator) Estimate(query map[string][]string) (json.RawMessage, error) {
	est, _, err := a.EstimateCached(query)
	return est, err
}

// EstimateCached answers one analyst query, returning the serialized
// task estimate plus the report count it was computed over. Responses
// are cached by (ingestion epoch, canonicalized query string):
// repeated reads of the same query against an unchanged collection —
// the common analyst polling pattern — reuse the serialized payload
// instead of re-ranking and re-encoding it on every hit. Any state
// mutation (a report, a reset, a round advance) moves the epoch and
// invalidates the cache wholesale.
func (a *ShardedAggregator) EstimateCached(query map[string][]string) (json.RawMessage, int, error) {
	// url.Values.Encode sorts by key, so query-string permutations of
	// one logical query share a cache entry.
	key := url.Values(query).Encode()
	epoch := a.epoch.Load()
	a.estMu.Lock()
	if a.estEpoch == epoch {
		if e, ok := a.estCache[key]; ok {
			a.estHits.Add(1)
			a.estMu.Unlock()
			return e.payload, e.reports, nil
		}
	}
	a.estMu.Unlock()

	merged, err := a.MergedCached()
	if err != nil {
		return nil, 0, &internalError{err} // shard state, not the query
	}
	est, err := merged.Estimate(query)
	if err != nil {
		return nil, 0, err // task query error: the analyst can fix it
	}
	reports := merged.Collected()

	a.estMu.Lock()
	// Entries are stored under the epoch read before the merge: the
	// merge may have absorbed newer reports, making the entry fresher
	// than its key claims, never staler. A concurrent query that
	// already advanced the cache past our epoch wins — overwriting a
	// newer cache generation with an older key would only waste it.
	if epoch >= a.estEpoch {
		if a.estEpoch != epoch || a.estCache == nil || len(a.estCache) >= maxEstCacheEntries {
			a.estCache = make(map[string]estEntry)
			a.estEpoch = epoch
		}
		a.estCache[key] = estEntry{payload: est, reports: reports}
	}
	a.estMu.Unlock()
	return est, reports, nil
}

// EstimateCacheHits returns how many estimate reads were served from
// the per-query response cache, exposed so tests (and curious
// operators) can verify it is working.
func (a *ShardedAggregator) EstimateCacheHits() uint64 { return a.estHits.Load() }

// Epoch returns the current ingestion epoch: a counter advanced by
// every accepted report, reset and restore. Equal epochs across two
// observations mean the aggregate state is unchanged between them.
func (a *ShardedAggregator) Epoch() uint64 { return a.epoch.Load() }

// MergeCount returns how many full shard merges have run, exposed so
// tests (and curious operators) can verify the epoch cache is working.
func (a *ShardedAggregator) MergeCount() uint64 { return a.mergeCount.Load() }

// MarshalState serializes the aggregator's combined state as one task
// state blob (see task.Aggregator.MarshalState). Shard layout is
// deliberately not preserved: merging is exact, so the combined state
// is the whole truth and restores cleanly into any shard count.
func (a *ShardedAggregator) MarshalState() ([]byte, error) {
	merged, err := a.MergedCached()
	if err != nil {
		return nil, err
	}
	return merged.MarshalState()
}

// MarshalStateBinary serializes the combined state in the task's
// binary layout (task.ErrBinaryUnsupported when the task has none, the
// signal for the checkpoint store to fall back to JSON).
func (a *ShardedAggregator) MarshalStateBinary() ([]byte, error) {
	merged, err := a.MergedCached()
	if err != nil {
		return nil, err
	}
	bs, ok := merged.(task.BinaryStater)
	if !ok {
		return nil, task.ErrBinaryUnsupported
	}
	return bs.MarshalStateBinary()
}

// RestoreState loads a state blob produced by MarshalState into the
// aggregator, which must be empty (restore happens at startup, before
// ingestion begins — restoring over live data would double-count).
// The whole restored aggregate lands in shard 0; subsequent ingestion
// spreads over all shards as usual, and merging re-combines both. For
// a phased task the other shards additionally adopt shard 0's round
// position, so every shard validates report rounds identically from
// the first post-restore request.
func (a *ShardedAggregator) RestoreState(data []byte) error {
	return a.restoreState(data, false)
}

// RestoreStateBinary loads a state blob produced by MarshalStateBinary,
// under the same empty-aggregator contract as RestoreState.
func (a *ShardedAggregator) RestoreStateBinary(data []byte) error {
	return a.restoreState(data, true)
}

func (a *ShardedAggregator) restoreState(data []byte, binary bool) error {
	if a.Collected() != 0 || a.collectedWalk() != 0 {
		return errors.New("core: cannot restore state into a non-empty aggregator")
	}
	s := a.shards[0]
	s.mu.Lock()
	var err error
	if binary {
		if bs, ok := s.agg.(task.BinaryStater); ok {
			err = bs.UnmarshalStateBinary(data)
		} else {
			err = task.ErrBinaryUnsupported
		}
	} else {
		err = s.agg.UnmarshalState(data)
	}
	restored := s.agg.Collected()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if a.phased {
		p := s.agg.(task.Phased)
		for _, o := range a.shards[1:] {
			o.mu.Lock()
			err := o.agg.(task.Phased).AdoptPhase(s.agg)
			o.mu.Unlock()
			if err != nil {
				return err
			}
		}
		a.round.Store(int64(p.Round()))
		a.done.Store(p.Done())
		// roundStart derives from collected - RoundReports(): reports of
		// the in-flight round are part of the restored total, the rest
		// belong to completed rounds. The task's round counter is the
		// authority here — it stays exact whether the task restored a
		// report list or a counter-based accumulator — so /status
		// round_reports and quota arithmetic survive a restart unchanged.
		a.roundStart.Store(int64(restored - p.RoundReports()))
	}
	a.collected.Store(int64(restored))
	a.epoch.Add(1)
	return nil
}

// Reset discards all aggregated reports in every shard; a phased task
// restarts its protocol from round 0.
func (a *ShardedAggregator) Reset() {
	for _, s := range a.shards {
		s.mu.Lock()
		s.agg.Reset()
		s.mu.Unlock()
	}
	a.collected.Store(0)
	a.round.Store(0)
	a.done.Store(false)
	a.roundStart.Store(0)
	a.epoch.Add(1)
}

// Phased reports whether the collection's task runs an interactive
// multi-round protocol (implements task.Phased).
func (a *ShardedAggregator) Phased() bool { return a.phased }

// Round returns the phased task's current round (0 for one-shot
// tasks), from an atomic mirror — no shard lock is taken, so /status
// never contends with ingestion.
func (a *ShardedAggregator) Round() int { return int(a.round.Load()) }

// Done reports whether a phased task has completed all rounds.
func (a *ShardedAggregator) Done() bool { return a.done.Load() }

// RoundReports returns how many reports the current round has
// accepted, the quantity auto-advance quotas compare against.
func (a *ShardedAggregator) RoundReports() int {
	return int(a.collected.Load() - a.roundStart.Load())
}

// Frontier returns the phased task's published round state (see
// task.Phased). The phase — round position, surviving candidates,
// terminal results — is replicated into every shard at each round
// boundary, so shard 0 alone answers authoritatively under its own
// lock: polling the frontier during heavy ingestion never merges (or
// even reads) the accumulated report history.
func (a *ShardedAggregator) Frontier() (json.RawMessage, error) {
	if !a.phased {
		return nil, ErrNotPhased
	}
	a.phaseMu.RLock()
	defer a.phaseMu.RUnlock()
	s := a.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agg.(task.Phased).Frontier()
}

// Advance closes the phased task's current round across every shard:
// the shards are merged (the same exact-Merge machinery estimates and
// checkpoints use), the round boundary is computed once on the merged
// state, and the shards are re-seeded for the next round. Reports
// racing the call land wholly in the old round or wholly in the new
// one (where the round tag then rejects them), never split.
func (a *ShardedAggregator) Advance() error {
	return a.AdvanceExpecting(-1)
}

// AdvanceExpecting advances like Advance, but only if the current
// round equals expect (pass -1 to advance unconditionally). A
// mismatch returns an error wrapping task.ErrWrongRound without
// touching the round: the caller's view of the protocol is stale —
// typically a second driver already closed the round — and advancing
// again would burn an empty round. The check runs under the advance
// lock, so concurrent drivers expecting the same round advance it
// exactly once.
func (a *ShardedAggregator) AdvanceExpecting(expect int) error {
	if !a.phased {
		return ErrNotPhased
	}
	a.advanceMu.Lock()
	defer a.advanceMu.Unlock()
	if cur := a.Round(); expect >= 0 && cur != expect {
		return fmt.Errorf("core: advance expected round %d but the collection is at round %d: %w",
			expect, cur, task.ErrWrongRound)
	}
	return a.advanceLocked()
}

// MaybeAdvance advances the round iff the current round has accepted
// at least quota reports and the protocol is not done, reporting
// whether it advanced. The re-check runs under the advance lock, so
// concurrent reports crossing the quota together advance one round,
// not one each.
func (a *ShardedAggregator) MaybeAdvance(quota int) (bool, error) {
	if !a.phased || quota <= 0 {
		return false, nil
	}
	// Lock-free pre-check: the serving layer calls this after every
	// accepted report, and funnelling each one through the
	// collection-global advance mutex just to compare two atomics
	// would re-serialize the ingest path the shard striping
	// parallelizes. Reports racing the check land on the next call.
	if a.done.Load() || a.RoundReports() < quota {
		return false, nil
	}
	a.advanceMu.Lock()
	defer a.advanceMu.Unlock()
	if a.done.Load() || a.RoundReports() < quota {
		return false, nil
	}
	if err := a.advanceLocked(); err != nil {
		return false, err
	}
	return true, nil
}

// NewDelta materializes a task state blob — the combined state another
// aggregator marshalled, typically a delta cut by a relay node — as a
// detached aggregator of this collection's configuration, ready for
// FoldDelta. No locks are taken: decoding runs outside every critical
// section, and the state layouts themselves are version-gated by the
// task codecs.
func (a *ShardedAggregator) NewDelta(state []byte, binary bool) (task.Aggregator, error) {
	agg, err := task.New(a.cfg)
	if err != nil {
		return nil, err
	}
	if binary {
		bs, ok := agg.(task.BinaryStater)
		if !ok {
			return nil, fmt.Errorf("core: collection task has no binary state codec: %w", ErrBinaryWire)
		}
		if err := bs.UnmarshalStateBinary(state); err != nil {
			return nil, err
		}
		return agg, nil
	}
	if err := agg.UnmarshalState(state); err != nil {
		return nil, err
	}
	return agg, nil
}

// FoldDelta merges a detached delta aggregator (NewDelta) into one
// shard under its stripe lock — the multi-node ingest path: a relay's
// whole flush folds with a single Merge, exactly as if every report in
// it had been posted here directly, because Merge is exact. For a
// phased task the delta must sit at the collection's current round;
// anything else wraps task.ErrWrongRound (the relay's view of the
// frontier is stale — it refetches and re-cuts). The phase read-lock
// keeps the fold on one side of any concurrent round advance, so the
// round check and the merge see the same round.
//
// It returns the number of reports the delta carried. The delta is
// consumed: the shard's Merge may retain parts of its state.
func (a *ShardedAggregator) FoldDelta(delta task.Aggregator) (int, error) {
	n := delta.Collected()
	if n < 0 {
		return 0, fmt.Errorf("core: delta carries negative report count %d", n)
	}
	a.phaseMu.RLock()
	if a.phased {
		p, ok := delta.(task.Phased)
		if !ok {
			a.phaseMu.RUnlock()
			return 0, fmt.Errorf("core: delta for phased %s collection carries no phase", a.cfg.Type())
		}
		if p.Round() != a.Round() || p.Done() != a.Done() {
			round, done := a.Round(), a.Done()
			a.phaseMu.RUnlock()
			return 0, fmt.Errorf("core: delta at round %d (done=%v) cannot merge into round %d (done=%v): %w",
				p.Round(), p.Done(), round, done, task.ErrWrongRound)
		}
	}
	s := a.shards[hashutil.Range(a.seq.Add(1)*0x9e3779b97f4a7c15, len(a.shards))]
	s.mu.Lock()
	err := s.agg.Merge(delta)
	s.mu.Unlock()
	a.phaseMu.RUnlock()
	if err != nil {
		return 0, err
	}
	if n > 0 {
		a.collected.Add(int64(n))
	}
	a.epoch.Add(1)
	return n, nil
}

// Drain discards every shard's accumulated reports while keeping a
// phased task's protocol position — the relay-side half of a flush:
// the caller captures the merged state (Merged) and ships it upstream;
// Drain then empties the shards so the next flush carries only new
// reports. One-shot tasks reset outright (their Reset is exactly
// "drop tallies"); phased shards re-adopt their own current phase,
// which keeps round, survivors and terminal results but zeroes the
// round accumulator — a Reset would restart the protocol at round 0
// and desynchronize the relay from its upstream.
//
// Callers are responsible for not losing data: anything not captured
// before the call is gone. The collection layer runs capture and
// drain under one exclusive walMu section, so no report can land in
// between.
func (a *ShardedAggregator) Drain() error {
	a.advanceMu.Lock()
	defer a.advanceMu.Unlock()
	a.phaseMu.Lock()
	defer a.phaseMu.Unlock()
	for _, s := range a.shards {
		// Same-rank sweep in canonical index order, as in advanceLocked.
		s.mu.Lock() //ldplint:ok lockorder all-shard sweep in canonical index order
	}
	defer func() {
		for _, s := range a.shards {
			s.mu.Unlock()
		}
	}()
	if a.phased {
		// Snapshot first: adopting from a sibling that was itself just
		// wiped would lose the phase.
		ref := a.shards[0].agg.Snapshot()
		for _, s := range a.shards {
			if err := s.agg.(task.Phased).AdoptPhase(ref); err != nil {
				return err
			}
		}
	} else {
		for _, s := range a.shards {
			s.agg.Reset()
		}
	}
	a.collected.Store(0)
	a.roundStart.Store(0)
	a.epoch.Add(1)
	return nil
}

// AdoptFrontier aligns every shard with a frontier published by
// another process's collection (task.FrontierAdopter) — how a relay
// mirrors its upstream's round. Any tallies still held are discarded
// (the caller flushes first; the collection layer couples the two
// under one exclusive walMu section). The round mirrors follow the
// adopted position, so /status, quota checks and report validation
// agree with the upstream from the first post-adopt request.
func (a *ShardedAggregator) AdoptFrontier(frontier json.RawMessage) error {
	if !a.phased {
		return ErrNotPhased
	}
	if _, ok := a.shards[0].agg.(task.FrontierAdopter); !ok {
		return fmt.Errorf("core: %s task cannot adopt a published frontier", a.cfg.Type())
	}
	a.advanceMu.Lock()
	defer a.advanceMu.Unlock()
	a.phaseMu.Lock()
	defer a.phaseMu.Unlock()
	for _, s := range a.shards {
		s.mu.Lock() //ldplint:ok lockorder all-shard sweep in canonical index order
	}
	defer func() {
		for _, s := range a.shards {
			s.mu.Unlock()
		}
	}()
	// Every shard validates the same frontier against the same
	// parameters, so either all adopt or the first — and therefore
	// every — adoption fails with the shards unchanged.
	for _, s := range a.shards {
		if err := s.agg.(task.FrontierAdopter).AdoptFrontier(frontier); err != nil {
			return err
		}
	}
	p := a.shards[0].agg.(task.Phased)
	total := 0
	for _, s := range a.shards {
		total += s.agg.Collected()
	}
	a.round.Store(int64(p.Round()))
	a.done.Store(p.Done())
	a.collected.Store(int64(total))
	a.roundStart.Store(int64(total))
	a.epoch.Add(1)
	return nil
}

// advanceLocked computes one round boundary; the caller holds
// advanceMu. All shard locks are held together for the rewrite —
// ingestion pauses for the merge+prune, which is the round boundary's
// job description.
func (a *ShardedAggregator) advanceLocked() error {
	a.phaseMu.Lock()
	defer a.phaseMu.Unlock()
	for _, s := range a.shards {
		// Same-rank sweep: every shard lock is taken in slice (index)
		// order, the one canonical order, so two sweeps cannot
		// deadlock — and ingestion only ever holds a single shard
		// lock at a time.
		s.mu.Lock() //ldplint:ok lockorder all-shard sweep in canonical index order
	}
	defer func() {
		for _, s := range a.shards {
			s.mu.Unlock()
		}
	}()
	merged, err := task.New(a.cfg)
	if err != nil {
		return err
	}
	for _, s := range a.shards {
		// Snapshot so the merged aggregator — which becomes shard 0's
		// live state below — cannot retain references into its
		// siblings, whatever the adapter's Merge keeps.
		if err := merged.Merge(s.agg.Snapshot()); err != nil {
			return err
		}
	}
	p := merged.(task.Phased)
	if err := p.Advance(); err != nil {
		return err // "protocol complete" — shards untouched
	}
	// The advanced merged aggregator becomes shard 0 — it carries the
	// full cross-round history — and the other shards adopt its phase
	// with empty tallies, so a walk over the shards still counts every
	// report exactly once. (A prepare hook captured from the replaced
	// aggregator stays valid: Prepare reads only immutable
	// configuration, which the replacement shares.)
	a.shards[0].agg = merged
	for _, s := range a.shards[1:] {
		if err := s.agg.(task.Phased).AdoptPhase(merged); err != nil {
			return err
		}
	}
	a.round.Store(int64(p.Round()))
	a.done.Store(p.Done())
	a.roundStart.Store(a.collected.Load())
	a.epoch.Add(1)
	return nil
}
