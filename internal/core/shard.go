package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/freq"
	"repro/internal/hashutil"
	"repro/internal/ldprand"
)

// ShardedAggregator spreads privatized envelopes across N independent
// per-shard oracles behind striped locks, so ingestion scales with
// cores instead of serializing on one mutex. Correctness rests on the
// mergeability of every frequency oracle in the registry: all the
// accumulators are linear (count or sum vectors), so any shard can
// absorb any envelope and a Merge of the shards is exactly the state
// a single oracle would have reached aggregating every report itself.
//
// Envelopes are hash-routed by payload fingerprint, with a rotating
// stripe mixed in so that repeats of one hot payload (common for GRR
// under large ε, where most clients report the true mode) still spread
// across shards instead of serializing on one lock.
type ShardedAggregator struct {
	mechanism string
	params    PrivacyParams
	shards    []*shard
	seq       atomic.Uint64 // rotating stripe for repeated payloads
}

// shard pairs one oracle with its stripe lock. Padding would buy a few
// percent by avoiding false sharing of the mutexes, but the oracle hot
// paths dominate, so we keep the struct plain.
type shard struct {
	mu     sync.Mutex
	oracle freq.Oracle
}

// NewShardedAggregator builds a sharded aggregator for the named
// mechanism. shards <= 0 selects GOMAXPROCS. The optional sources give
// each shard deterministic randomness for tests; production callers
// pass nil and get crypto/rand. (Aggregation itself never draws
// randomness — the sources only matter if a shard oracle is also used
// to privatize.)
func NewShardedAggregator(mechanism string, p PrivacyParams, shards int, srcs []ldprand.Source) (*ShardedAggregator, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	a := &ShardedAggregator{
		mechanism: mechanism,
		params:    p,
		shards:    make([]*shard, shards),
	}
	for i := range a.shards {
		var src ldprand.Source
		if i < len(srcs) {
			src = srcs[i]
		}
		o, err := NewOracle(mechanism, p, src)
		if err != nil {
			return nil, err
		}
		a.shards[i] = &shard{oracle: o}
	}
	return a, nil
}

// Mechanism returns the registry name the aggregator was built with.
func (a *ShardedAggregator) Mechanism() string { return a.mechanism }

// Params returns the privacy parameters in use.
func (a *ShardedAggregator) Params() PrivacyParams { return a.params }

// Shards returns the number of shards.
func (a *ShardedAggregator) Shards() int { return len(a.shards) }

// route picks the shard index for one envelope: a payload fingerprint
// mixed with a rotating stripe (see the type comment for why both).
func (a *ShardedAggregator) route(e *Envelope) int {
	h := fingerprint(e) ^ a.seq.Add(1)*0x9e3779b97f4a7c15
	return hashutil.Range(h, len(a.shards))
}

// fingerprint mixes the envelope's cheap payload fields into one word.
// It does not need collision resistance: routing only needs spread,
// the rotating stripe already guarantees it, and the fingerprint's job
// is just to decorrelate distinct payloads from arrival order. Hashing
// the variable-length payload bodies would cost more than the
// aggregation it is routing.
func fingerprint(e *Envelope) uint64 {
	x := uint64(e.Value)<<32 ^ e.Seed ^ uint64(uint8(e.Sign))<<24 ^
		uint64(len(e.Bits))<<40 ^ uint64(len(e.Reals))<<48 ^ uint64(len(e.Values))<<56
	return hashutil.HashInt64(0x5ca1ab1e, int(x))
}

// Add validates and folds one envelope into its shard.
func (a *ShardedAggregator) Add(e Envelope) error {
	s := a.shards[a.route(&e)]
	s.mu.Lock()
	err := Aggregate(s.oracle, e)
	s.mu.Unlock()
	return err
}

// batchChunk bounds how long one stripe lock is held: a large batch is
// aggregated in chunks, each routed independently, so a single 8 MiB
// batch of tiny envelopes cannot pin one shard (stalling the single
// reports hash-routed there and the snapshot pass of a concurrent
// estimate) for its entire aggregation.
const batchChunk = 1024

// AddBatch folds a batch of envelopes chunk by chunk: one route and
// one lock acquisition per chunk (the whole point of batching —
// per-report locking overhead amortizes to nearly zero) while the
// rotating stripe spreads chunks and successive batches across shards.
// Any shard can absorb any envelope, so placement never affects the
// merged estimate. The batch is not atomic: invalid envelopes are
// skipped and reported via the joined error while the valid remainder
// is still aggregated. It returns the number of envelopes accepted.
func (a *ShardedAggregator) AddBatch(batch []Envelope) (int, error) {
	accepted := 0
	var errs []error
	for off := 0; off < len(batch); off += batchChunk {
		chunk := batch[off:min(off+batchChunk, len(batch))]
		sh := a.shards[a.route(&chunk[0])]
		sh.mu.Lock()
		for i := range chunk {
			if err := Aggregate(sh.oracle, chunk[i]); err != nil {
				errs = append(errs, fmt.Errorf("envelope %d: %w", off+i, err))
				continue
			}
			accepted++
		}
		sh.mu.Unlock()
	}
	return accepted, errors.Join(errs...)
}

// ReportBits returns the mechanism's per-report payload size, a
// constant of the configuration (taken from shard 0 under its lock
// since Oracle implementations make no concurrency promises).
func (a *ShardedAggregator) ReportBits() int {
	s := a.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.oracle.ReportBits()
}

// Collected returns the total number of reports across all shards.
func (a *ShardedAggregator) Collected() int {
	total := 0
	for _, s := range a.shards {
		s.mu.Lock()
		total += s.oracle.Collected()
		s.mu.Unlock()
	}
	return total
}

// Merged returns a fresh oracle holding the combined state of every
// shard. Each shard is snapshotted under its own lock (a cheap deep
// copy) and merged outside it, so ingestion stalls only for the copy,
// not for the merge. The result is an independent consistent-enough
// view: reports racing with the call land in either this merge or the
// next, never half in one shard.
func (a *ShardedAggregator) Merged() (freq.Oracle, error) {
	merged, err := NewOracle(a.mechanism, a.params, nil)
	if err != nil {
		return nil, err
	}
	for _, s := range a.shards {
		s.mu.Lock()
		snap := s.oracle.Snapshot()
		s.mu.Unlock()
		if err := merged.Merge(snap); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// Reset discards all aggregated reports in every shard.
func (a *ShardedAggregator) Reset() {
	for _, s := range a.shards {
		s.mu.Lock()
		s.oracle.Reset()
		s.mu.Unlock()
	}
}
