package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/task"
)

func testCfg() CollectionConfig {
	return FreqCollectionConfig(MechanismGRR, PrivacyParams{Epsilon: 2, Domain: 8}, 2)
}

func TestRegistryCreateGetDelete(t *testing.T) {
	reg := NewCollectionRegistry()
	c, err := reg.Create("study-a", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "study-a" || c.Config() != testCfg() || c.Aggregator() == nil {
		t.Fatalf("collection %+v", c)
	}
	if got, ok := reg.Get("study-a"); !ok || got != c {
		t.Fatal("Get did not return the created collection")
	}
	if _, err := reg.Create("study-a", testCfg()); !errors.Is(err, ErrCollectionExists) {
		t.Fatalf("duplicate create: %v, want ErrCollectionExists", err)
	}
	// Names unique up to letter case too: snapshots become files, and
	// case-insensitive filesystems would collapse "Study-A"/"study-a"
	// into one clobbered snapshot.
	if _, err := reg.Create("STUDY-A", testCfg()); !errors.Is(err, ErrCollectionExists) {
		t.Fatalf("case-variant create: %v, want ErrCollectionExists", err)
	}
	if _, ok := reg.Get("study-b"); ok {
		t.Fatal("Get invented a collection")
	}
	if !reg.Delete("study-a") {
		t.Fatal("Delete missed an existing collection")
	}
	if reg.Delete("study-a") {
		t.Fatal("Delete of a deleted collection reported true")
	}
	// Delete frees the case-folded slot along with the exact name.
	if _, err := reg.Create("STUDY-A", testCfg()); err != nil {
		t.Fatalf("case-variant create after delete: %v", err)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	reg := NewCollectionRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := reg.Create(n, testCfg()); err != nil {
			t.Fatal(err)
		}
	}
	got := reg.Names()
	want := []string{"alpha", "mid", "zeta"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("names %v want %v", got, want)
	}
}

func TestValidateCollectionName(t *testing.T) {
	for _, ok := range []string{"default", "study-a", "A.b_c-9", strings.Repeat("x", 128)} {
		if err := ValidateCollectionName(ok); err != nil {
			t.Errorf("%q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"", ".", "..", ".hidden", "a/b", "a b", "ü", "a\x00b", strings.Repeat("x", 129)} {
		if err := ValidateCollectionName(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestRegistryCreateRejectsBadConfig(t *testing.T) {
	reg := NewCollectionRegistry()
	bad := []CollectionConfig{
		FreqCollectionConfig("NOPE", PrivacyParams{Epsilon: 1, Domain: 8}, 0),
		FreqCollectionConfig(MechanismGRR, PrivacyParams{Epsilon: 0, Domain: 8}, 0),
		FreqCollectionConfig(MechanismGRR, PrivacyParams{Epsilon: 1, Domain: 1}, 0),
		{Config: task.Config{Task: "nope-task", Mechanism: MechanismGRR, Epsilon: 1, Domain: 8}},
	}
	for _, cfg := range bad {
		if _, err := reg.Create("s", cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if len(reg.Names()) != 0 {
		t.Fatal("failed creates left registry entries behind")
	}
}
