package core

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"repro/internal/ldprand"
)

// shardParams uses a domain large enough that hash routing exercises
// every shard.
func shardParams() PrivacyParams { return PrivacyParams{Epsilon: 2, Domain: 32} }

// genEnvelopes deterministically privatizes n values through one
// seeded client, so tests can replay the identical report stream into
// different aggregation topologies.
func genEnvelopes(t testing.TB, mechanism string, n int, seed uint64) []Envelope {
	t.Helper()
	client, err := NewClient(mechanism, shardParams(), ldprand.NewSplitMix64(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(seed + 1)
	values := make([]int, n)
	for i := range values {
		values[i] = ldprand.Intn(src, shardParams().Domain)
	}
	envs, err := client.ReportBatch(values)
	if err != nil {
		t.Fatal(err)
	}
	return envs
}

// TestShardedMatchesSequentialUnderConcurrency is the core soundness
// claim of the sharded pipeline: N goroutines hammering AddBatch
// concurrently must leave the merged aggregator in exactly the state a
// single oracle reaches aggregating the same envelopes sequentially.
// The mechanisms checked all use integer-valued accumulators, so the
// comparison is exact (bit-identical estimates), not approximate.
// Run under `go test -race` to catch synchronization bugs.
func TestShardedMatchesSequentialUnderConcurrency(t *testing.T) {
	const (
		workers   = 8
		batches   = 10
		batchSize = 50
	)
	for _, name := range []string{MechanismGRR, MechanismOUE, MechanismOLH, MechanismSS, MechanismTHE} {
		name := name
		t.Run(name, func(t *testing.T) {
			envs := genEnvelopes(t, name, workers*batches*batchSize, 41)
			raws := rawEnvs(t, envs)

			// Sequential baseline: one oracle, one order.
			seq, err := NewOracle(name, shardParams(), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range envs {
				if err := Aggregate(seq, e); err != nil {
					t.Fatal(err)
				}
			}

			agg, err := NewFreqShardedAggregator(name, shardParams(), 4)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, workers*batches)
			for w := 0; w < workers; w++ {
				chunk := raws[w*batches*batchSize : (w+1)*batches*batchSize]
				wg.Add(1)
				go func() {
					defer wg.Done()
					for b := 0; b < batches; b++ {
						batch := chunk[b*batchSize : (b+1)*batchSize]
						if _, err := agg.AddBatch(batch); err != nil {
							errs <- err
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			if agg.Collected() != len(envs) {
				t.Fatalf("collected %d want %d", agg.Collected(), len(envs))
			}
			merged, err := agg.Merged()
			if err != nil {
				t.Fatal(err)
			}
			if merged.Collected() != seq.Collected() {
				t.Fatalf("merged collected %d, sequential %d", merged.Collected(), seq.Collected())
			}
			got, want := freqCounts(t, merged), seq.EstimateCounts()
			for v := range want {
				if got[v] != want[v] {
					t.Errorf("value %d: merged estimate %v != sequential %v", v, got[v], want[v])
				}
			}
		})
	}
}

// TestShardedConcurrentSinglesAndReads mixes Add, AddBatch, Merged and
// Collected calls from many goroutines; under -race this pins the
// striped-lock discipline, and the final count pins that no report is
// lost or double-counted.
func TestShardedConcurrentSinglesAndReads(t *testing.T) {
	const workers, per = 6, 200
	raws := rawEnvs(t, genEnvelopes(t, MechanismGRR, workers*per, 43))
	agg, err := NewFreqShardedAggregator(MechanismGRR, shardParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		chunk := raws[w*per : (w+1)*per]
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, e := range chunk {
				if w%2 == 0 {
					if err := agg.Add(e); err != nil {
						t.Error(err)
						return
					}
				} else if i%20 == 0 {
					if _, err := agg.AddBatch(chunk[i : i+20]); err != nil {
						t.Error(err)
						return
					}
				}
				if i%50 == 0 {
					// Concurrent reads must see a consistent merge.
					if _, err := agg.Merged(); err != nil {
						t.Error(err)
						return
					}
					_ = agg.Collected()
				}
			}
		}(w)
	}
	wg.Wait()
	if agg.Collected() != workers*per {
		t.Fatalf("collected %d want %d", agg.Collected(), workers*per)
	}
	// After ingestion quiesces the lock-free counter and the lock-walk
	// sum must agree exactly — the contract behind serving /status from
	// the atomic.
	if agg.Collected() != agg.collectedWalk() {
		t.Fatalf("atomic collected %d != lock-walk %d", agg.Collected(), agg.collectedWalk())
	}
}

// TestCollectedCounterMatchesLockWalk pins the /status fast path
// through every mutation: adds, batches (with rejects), restore and
// reset must keep the atomic counter equal to the per-shard lock-walk.
func TestCollectedCounterMatchesLockWalk(t *testing.T) {
	agg, err := NewFreqShardedAggregator(MechanismGRR, shardParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		if a, w := agg.Collected(), agg.collectedWalk(); a != w {
			t.Fatalf("%s: atomic collected %d != lock-walk %d", stage, a, w)
		}
	}
	check("empty")
	raws := rawEnvs(t, genEnvelopes(t, MechanismGRR, 60, 59))
	for _, r := range raws[:20] {
		if err := agg.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	check("after adds")
	// A batch with rejects: only accepted envelopes may count.
	batch := append([]json.RawMessage{}, raws[20:40]...)
	batch = append(batch, mustRaw(t, Envelope{Mechanism: "GRR", Value: 999}))
	if _, err := agg.AddBatch(batch); err == nil {
		t.Fatal("invalid envelope accepted")
	}
	check("after partial batch")
	if agg.Collected() != 40 {
		t.Fatalf("collected %d want 40", agg.Collected())
	}

	// Restore into a fresh aggregator must seed the counter.
	state, err := agg.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	agg2, err := NewFreqShardedAggregator(MechanismGRR, shardParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg2.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	if a, w := agg2.Collected(), agg2.collectedWalk(); a != 40 || a != w {
		t.Fatalf("restored: atomic %d lock-walk %d want 40", a, w)
	}
	agg2.Reset()
	if a, w := agg2.Collected(), agg2.collectedWalk(); a != 0 || a != w {
		t.Fatalf("reset: atomic %d lock-walk %d want 0", a, w)
	}
}

// TestShardedAggregatorRouting checks that hash routing actually
// spreads load: with many envelopes, every shard should receive a
// non-trivial share.
func TestShardedAggregatorRouting(t *testing.T) {
	const n = 4000
	raws := rawEnvs(t, genEnvelopes(t, MechanismGRR, n, 47))
	agg, err := NewFreqShardedAggregator(MechanismGRR, shardParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range raws {
		if err := agg.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range agg.shards {
		got := s.agg.Collected()
		if got < n/agg.Shards()/2 {
			t.Errorf("shard %d starved: %d of %d reports", i, got, n)
		}
	}
}

// TestShardedAggregatorBatchPartialAccept pins the documented non-
// atomic batch semantics: invalid envelopes are rejected and reported,
// valid ones still land.
func TestShardedAggregatorBatchPartialAccept(t *testing.T) {
	agg, err := NewFreqShardedAggregator(MechanismGRR, shardParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := []json.RawMessage{
		mustRaw(t, Envelope{Mechanism: "GRR", Value: 3}),
		mustRaw(t, Envelope{Mechanism: "GRR", Value: 999}), // out of domain
		mustRaw(t, Envelope{Mechanism: "OLH", Value: 0}),   // wrong mechanism
		mustRaw(t, Envelope{Mechanism: "GRR", Value: 5}),
	}
	accepted, err := agg.AddBatch(batch)
	if err == nil {
		t.Fatal("invalid envelopes accepted silently")
	}
	if accepted != 2 {
		t.Fatalf("accepted %d want 2", accepted)
	}
	if agg.Collected() != 2 {
		t.Fatalf("collected %d want 2", agg.Collected())
	}
	// Empty batch is a no-op.
	if n, err := agg.AddBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty batch: %d, %v", n, err)
	}
}

// TestShardedAggregatorReset checks Reset clears every shard.
func TestShardedAggregatorReset(t *testing.T) {
	agg, err := NewFreqShardedAggregator(MechanismOUE, shardParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rawEnvs(t, genEnvelopes(t, MechanismOUE, 60, 53)) {
		if err := agg.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if agg.Collected() == 0 {
		t.Fatal("nothing collected before reset")
	}
	agg.Reset()
	if agg.Collected() != 0 {
		t.Fatalf("collected %d after reset", agg.Collected())
	}
	merged, err := agg.Merged()
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range freqCounts(t, merged) {
		if math.Abs(c) > 1e-12 {
			t.Fatalf("value %d: nonzero estimate %v after reset", v, c)
		}
	}
}

// TestShardedAggregatorDefaults checks the GOMAXPROCS default and
// accessors.
func TestShardedAggregatorDefaults(t *testing.T) {
	agg, err := NewFreqShardedAggregator(MechanismGRR, shardParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Shards() < 1 {
		t.Fatalf("shards %d", agg.Shards())
	}
	if agg.Mechanism() != MechanismGRR || agg.Params().Domain != 32 || agg.TaskType() != "freq" {
		t.Fatalf("accessors: %s %s %+v", agg.TaskType(), agg.Mechanism(), agg.Params())
	}
	if _, err := NewFreqShardedAggregator("NOPE", shardParams(), 2); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}
