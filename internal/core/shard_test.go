package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/ldprand"
)

// shardParams uses a domain large enough that hash routing exercises
// every shard.
func shardParams() PrivacyParams { return PrivacyParams{Epsilon: 2, Domain: 32} }

// genEnvelopes deterministically privatizes n values through one
// seeded client, so tests can replay the identical report stream into
// different aggregation topologies.
func genEnvelopes(t testing.TB, mechanism string, n int, seed uint64) []Envelope {
	t.Helper()
	client, err := NewClient(mechanism, shardParams(), ldprand.NewSplitMix64(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(seed + 1)
	values := make([]int, n)
	for i := range values {
		values[i] = ldprand.Intn(src, shardParams().Domain)
	}
	envs, err := client.ReportBatch(values)
	if err != nil {
		t.Fatal(err)
	}
	return envs
}

// TestShardedMatchesSequentialUnderConcurrency is the core soundness
// claim of the sharded pipeline: N goroutines hammering AddBatch
// concurrently must leave the merged aggregator in exactly the state a
// single oracle reaches aggregating the same envelopes sequentially.
// The mechanisms checked all use integer-valued accumulators, so the
// comparison is exact (bit-identical estimates), not approximate.
// Run under `go test -race` to catch synchronization bugs.
func TestShardedMatchesSequentialUnderConcurrency(t *testing.T) {
	const (
		workers   = 8
		batches   = 10
		batchSize = 50
	)
	for _, name := range []string{MechanismGRR, MechanismOUE, MechanismOLH, MechanismSS, MechanismTHE} {
		name := name
		t.Run(name, func(t *testing.T) {
			envs := genEnvelopes(t, name, workers*batches*batchSize, 41)

			// Sequential baseline: one oracle, one order.
			seq, err := NewOracle(name, shardParams(), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range envs {
				if err := Aggregate(seq, e); err != nil {
					t.Fatal(err)
				}
			}

			agg, err := NewShardedAggregator(name, shardParams(), 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, workers*batches)
			for w := 0; w < workers; w++ {
				chunk := envs[w*batches*batchSize : (w+1)*batches*batchSize]
				wg.Add(1)
				go func() {
					defer wg.Done()
					for b := 0; b < batches; b++ {
						batch := chunk[b*batchSize : (b+1)*batchSize]
						if _, err := agg.AddBatch(batch); err != nil {
							errs <- err
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			if agg.Collected() != len(envs) {
				t.Fatalf("collected %d want %d", agg.Collected(), len(envs))
			}
			merged, err := agg.Merged()
			if err != nil {
				t.Fatal(err)
			}
			if merged.Collected() != seq.Collected() {
				t.Fatalf("merged collected %d, sequential %d", merged.Collected(), seq.Collected())
			}
			got, want := merged.EstimateCounts(), seq.EstimateCounts()
			for v := range want {
				if got[v] != want[v] {
					t.Errorf("value %d: merged estimate %v != sequential %v", v, got[v], want[v])
				}
			}
		})
	}
}

// TestShardedConcurrentSinglesAndReads mixes Add, AddBatch, Merged and
// Collected calls from many goroutines; under -race this pins the
// striped-lock discipline, and the final count pins that no report is
// lost or double-counted.
func TestShardedConcurrentSinglesAndReads(t *testing.T) {
	const workers, per = 6, 200
	envs := genEnvelopes(t, MechanismGRR, workers*per, 43)
	agg, err := NewShardedAggregator(MechanismGRR, shardParams(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		chunk := envs[w*per : (w+1)*per]
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, e := range chunk {
				if w%2 == 0 {
					if err := agg.Add(e); err != nil {
						t.Error(err)
						return
					}
				} else if i%20 == 0 {
					if _, err := agg.AddBatch(chunk[i : i+20]); err != nil {
						t.Error(err)
						return
					}
				}
				if i%50 == 0 {
					// Concurrent reads must see a consistent merge.
					if _, err := agg.Merged(); err != nil {
						t.Error(err)
						return
					}
					_ = agg.Collected()
				}
			}
		}(w)
	}
	wg.Wait()
	if agg.Collected() != workers*per {
		t.Fatalf("collected %d want %d", agg.Collected(), workers*per)
	}
}

// TestShardedAggregatorRouting checks that hash routing actually
// spreads load: with many envelopes, every shard should receive a
// non-trivial share.
func TestShardedAggregatorRouting(t *testing.T) {
	const n = 4000
	envs := genEnvelopes(t, MechanismGRR, n, 47)
	agg, err := NewShardedAggregator(MechanismGRR, shardParams(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range envs {
		if err := agg.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range agg.shards {
		got := s.oracle.Collected()
		if got < n/agg.Shards()/2 {
			t.Errorf("shard %d starved: %d of %d reports", i, got, n)
		}
	}
}

// TestShardedAggregatorBatchPartialAccept pins the documented non-
// atomic batch semantics: invalid envelopes are rejected and reported,
// valid ones still land.
func TestShardedAggregatorBatchPartialAccept(t *testing.T) {
	agg, err := NewShardedAggregator(MechanismGRR, shardParams(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Envelope{
		{Mechanism: "GRR", Value: 3},
		{Mechanism: "GRR", Value: 999}, // out of domain
		{Mechanism: "OLH", Value: 0},   // wrong mechanism
		{Mechanism: "GRR", Value: 5},
	}
	accepted, err := agg.AddBatch(batch)
	if err == nil {
		t.Fatal("invalid envelopes accepted silently")
	}
	if accepted != 2 {
		t.Fatalf("accepted %d want 2", accepted)
	}
	if agg.Collected() != 2 {
		t.Fatalf("collected %d want 2", agg.Collected())
	}
	// Empty batch is a no-op.
	if n, err := agg.AddBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty batch: %d, %v", n, err)
	}
}

// TestShardedAggregatorReset checks Reset clears every shard.
func TestShardedAggregatorReset(t *testing.T) {
	agg, err := NewShardedAggregator(MechanismOUE, shardParams(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range genEnvelopes(t, MechanismOUE, 60, 53) {
		if err := agg.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if agg.Collected() == 0 {
		t.Fatal("nothing collected before reset")
	}
	agg.Reset()
	if agg.Collected() != 0 {
		t.Fatalf("collected %d after reset", agg.Collected())
	}
	merged, err := agg.Merged()
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range merged.EstimateCounts() {
		if math.Abs(c) > 1e-12 {
			t.Fatalf("value %d: nonzero estimate %v after reset", v, c)
		}
	}
}

// TestShardedAggregatorDefaults checks the GOMAXPROCS default and
// accessors.
func TestShardedAggregatorDefaults(t *testing.T) {
	agg, err := NewShardedAggregator(MechanismGRR, shardParams(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Shards() < 1 {
		t.Fatalf("shards %d", agg.Shards())
	}
	if agg.Mechanism() != MechanismGRR || agg.Params().Domain != 32 {
		t.Fatalf("accessors: %s %+v", agg.Mechanism(), agg.Params())
	}
	if _, err := NewShardedAggregator("NOPE", shardParams(), 2, nil); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}
