package core

// End-to-end httptest coverage for every HTTP handler: the happy paths
// through /report, /report/batch, /estimate and /status, and the
// rejection paths for malformed envelopes. core_test.go covers the
// statistical behavior of the pipeline; this file pins the HTTP
// contract itself.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/task/freqtask"
)

func newTestServer(t *testing.T, mechanism string, shards int) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := NewServiceSharded(mechanism, params(), shards)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func postJSON(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHandleReportHappyPath(t *testing.T) {
	_, ts := newTestServer(t, MechanismGRR, 2)
	body, _ := json.Marshal(Envelope{Mechanism: "GRR", Value: 3})
	resp := postJSON(t, ts.URL+"/report", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}

	status, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer status.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(status.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Reports != 1 || st.Mechanism != "GRR" || st.Shards != 2 {
		t.Fatalf("status %+v", st)
	}
}

func TestHandleReportBatchHappyPath(t *testing.T) {
	_, ts := newTestServer(t, MechanismOUE, 3)
	client, err := NewClient(MechanismOUE, params(), ldprand.NewSplitMix64(61))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int, 120)
	for i := range values {
		values[i] = i % 8
	}
	envs, err := client.ReportBatch(values)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(envs)
	resp := postJSON(t, ts.URL+"/report/batch", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Accepted != len(envs) || br.Rejected != 0 || br.Error != "" {
		t.Fatalf("batch response %+v", br)
	}

	est, err := http.Get(ts.URL + "/estimate")
	if err != nil {
		t.Fatal(err)
	}
	defer est.Body.Close()
	var er EstimateResponse
	if err := json.NewDecoder(est.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	var fr freqtask.EstimateResult
	if err := json.Unmarshal(er.Estimate, &fr); err != nil {
		t.Fatal(err)
	}
	if er.Reports != len(envs) || len(fr.Counts) != 8 || er.Shards != 3 {
		t.Fatalf("estimate response %+v / %+v", er, fr)
	}
}

func TestHandleReportBatchPartialReject(t *testing.T) {
	svc, ts := newTestServer(t, MechanismGRR, 2)
	batch := []Envelope{
		{Mechanism: "GRR", Value: 1},
		{Mechanism: "GRR", Value: 99}, // out of domain
		{Mechanism: "GRR", Value: 2},
	}
	body, _ := json.Marshal(batch)
	resp := postJSON(t, ts.URL+"/report/batch", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Accepted != 2 || br.Rejected != 1 || !strings.Contains(br.Error, "out of domain") {
		t.Fatalf("batch response %+v", br)
	}
	// The valid envelopes still landed.
	if got := svc.Aggregator().Collected(); got != 2 {
		t.Fatalf("collected %d want 2", got)
	}
}

func TestHandleReportRejectsMalformedEnvelopes(t *testing.T) {
	cases := []struct {
		name      string
		mechanism string
		env       Envelope
	}{
		{"wrong mechanism name", MechanismGRR, Envelope{Mechanism: "OLH", Value: 1}},
		{"unknown mechanism name", MechanismGRR, Envelope{Mechanism: "NOPE", Value: 1}},
		{"out-of-range GRR value", MechanismGRR, Envelope{Mechanism: "GRR", Value: 8}},
		{"negative GRR value", MechanismGRR, Envelope{Mechanism: "GRR", Value: -1}},
		{"bad base64 bits", MechanismOUE, Envelope{Mechanism: "OUE", Bits: "***"}},
		{"empty bits", MechanismOUE, Envelope{Mechanism: "OUE", Bits: ""}},
		{"wrong SHE length", MechanismSHE, Envelope{Mechanism: "SHE", Reals: []float64{1}}},
		{"overflow-scale SHE component", MechanismSHE,
			Envelope{Mechanism: "SHE", Reals: []float64{1.7e308, 0, 0, 0, 0, 0, 0, 0}}},
		{"negative overflow SHE component", MechanismSHE,
			Envelope{Mechanism: "SHE", Reals: []float64{0, -1e10, 0, 0, 0, 0, 0, 0}}},
		{"bad HRR sign", MechanismHRR, Envelope{Mechanism: "HRR", Value: 1, Sign: 2}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			svc, ts := newTestServer(t, c.mechanism, 2)
			body, _ := json.Marshal(c.env)
			resp := postJSON(t, ts.URL+"/report", body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d want 400", resp.StatusCode)
			}
			if svc.Aggregator().Collected() != 0 {
				t.Fatal("rejected envelope was counted")
			}
		})
	}
}

func TestHandleReportRejectsOversizeBody(t *testing.T) {
	_, ts := newTestServer(t, MechanismGRR, 2)
	// Syntactically valid but oversize JSON bodies: the decoder must
	// hit the MaxBytesReader limit before accepting them, and the
	// status must be 413 — not 400, which would send the client off
	// debugging its JSON instead of its body size. The batch limit is
	// deliberately higher than the single-report limit, so each
	// endpoint is probed just past its own bound.
	huge := []byte(`{"mechanism":"GRR","bits":"` + strings.Repeat("A", maxReportBytes+1024) + `","value":1}`)
	resp := postJSON(t, ts.URL+"/report", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize /report status %d want 413", resp.StatusCode)
	}

	hugeBatch := []byte(`[{"mechanism":"GRR","bits":"` + strings.Repeat("A", maxBatchBytes+1024) + `","value":1}]`)
	resp = postJSON(t, ts.URL+"/report/batch", hugeBatch)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize /report/batch status %d want 413", resp.StatusCode)
	}

	// Just under the limit is still a 400 (bad JSON), proving the 413
	// path triggers on size, not on content.
	small := []byte(`{"mechanism":"GRR","bits":` + strings.Repeat("A", 512))
	resp = postJSON(t, ts.URL+"/report", small)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed small /report status %d want 400", resp.StatusCode)
	}
}

// TestHandleReportRejectsTrailingGarbage pins the framing fix: a body
// holding a valid JSON value followed by anything else (a concatenated
// second envelope, a stray brace) must be rejected, not silently
// truncated to the first value.
func TestHandleReportRejectsTrailingGarbage(t *testing.T) {
	cases := []struct {
		name, path, body string
	}{
		{"second envelope", "/report", `{"mechanism":"GRR","value":1}{"mechanism":"GRR","value":2}`},
		{"stray brace", "/report", `{"mechanism":"GRR","value":1}}`},
		{"junk text", "/report", `{"mechanism":"GRR","value":1} extra`},
		{"second batch", "/report/batch", `[{"mechanism":"GRR","value":1}][{"mechanism":"GRR","value":2}]`},
		{"batch stray bracket", "/report/batch", `[{"mechanism":"GRR","value":1}]]`},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			svc, ts := newTestServer(t, MechanismGRR, 2)
			resp := postJSON(t, ts.URL+c.path, []byte(c.body))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d want 400", resp.StatusCode)
			}
			if got := svc.Aggregator().Collected(); got != 0 {
				t.Fatalf("garbage-framed request aggregated %d reports", got)
			}
		})
	}
	// Trailing whitespace stays legal: it is part of JSON framing.
	_, ts := newTestServer(t, MechanismGRR, 2)
	resp := postJSON(t, ts.URL+"/report", []byte("{\"mechanism\":\"GRR\",\"value\":1}\n  "))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("trailing whitespace rejected with %d", resp.StatusCode)
	}
}

func TestHandleBatchRejectsGarbage(t *testing.T) {
	_, ts := newTestServer(t, MechanismGRR, 2)
	// Not JSON at all.
	resp := postJSON(t, ts.URL+"/report/batch", []byte("[{"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage batch status %d", resp.StatusCode)
	}
	// A single object where an array is required.
	resp = postJSON(t, ts.URL+"/report/batch", []byte(`{"mechanism":"GRR","value":1}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("object batch status %d", resp.StatusCode)
	}
	// Wrong method.
	getResp, err := http.Get(ts.URL + "/report/batch")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /report/batch status %d", getResp.StatusCode)
	}
}

// TestBatchAndSingleReportsAgree drives the same envelope stream
// through /report and /report/batch servers and checks the two end in
// the identical aggregate state — the wire framing must not affect
// estimates.
func TestBatchAndSingleReportsAgree(t *testing.T) {
	single, tsSingle := newTestServer(t, MechanismGRR, 2)
	batched, tsBatch := newTestServer(t, MechanismGRR, 4)

	client, err := NewClient(MechanismGRR, params(), ldprand.NewSplitMix64(67))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int, 300)
	src := ldprand.NewSplitMix64(68)
	for i := range values {
		values[i] = ldprand.Intn(src, 8)
	}
	envs, err := client.ReportBatch(values)
	if err != nil {
		t.Fatal(err)
	}

	for _, env := range envs {
		body, _ := json.Marshal(env)
		resp := postJSON(t, tsSingle.URL+"/report", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("single status %d", resp.StatusCode)
		}
	}
	for i := 0; i < len(envs); i += 100 {
		body, _ := json.Marshal(envs[i : i+100])
		resp := postJSON(t, tsBatch.URL+"/report/batch", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("batch status %d", resp.StatusCode)
		}
	}

	mSingle, err := single.Aggregator().Merged()
	if err != nil {
		t.Fatal(err)
	}
	mBatch, err := batched.Aggregator().Merged()
	if err != nil {
		t.Fatal(err)
	}
	if mSingle.Collected() != mBatch.Collected() {
		t.Fatalf("collected %d vs %d", mSingle.Collected(), mBatch.Collected())
	}
	a, b := freqCounts(t, mSingle), freqCounts(t, mBatch)
	for v := range a {
		if a[v] != b[v] {
			t.Errorf("value %d: single %v batch %v", v, a[v], b[v])
		}
	}
}
