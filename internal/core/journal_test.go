package core

// Unit coverage for the write-ahead journal's building blocks: frame
// encode/decode (and its rejection of every corruption shape), the
// segment lifecycle (append → rotate → dropBefore), the broken-journal
// latch, and the bounded dedup memory. The crash sweep in
// crash_test.go exercises the same pieces end to end.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fsio"
)

func TestFrameRoundTrip(t *testing.T) {
	rec := journalRecord{Kind: recordBatch, ID: "b-1", Envs: rawEnvs(t, []Envelope{{Mechanism: MechanismGRR, Value: 3}})}
	buf, err := frame(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, n, ok := nextFrame(buf)
	if !ok {
		t.Fatal("nextFrame rejected a sound frame")
	}
	if n != len(buf) {
		t.Fatalf("frame size = %d, want %d", n, len(buf))
	}
	if got.Kind != rec.Kind || got.ID != rec.ID || len(got.Envs) != 1 {
		t.Fatalf("decoded record = %+v, want %+v", got, rec)
	}
}

func TestNextFrameRejectsCorruption(t *testing.T) {
	sound, err := frame(journalRecord{Kind: recordAdvance, Round: 2})
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), sound...)
	flipped[10] ^= 0x40 // a bit of the payload rots

	badLen := append([]byte(nil), sound...)
	binary.LittleEndian.PutUint32(badLen[0:4], uint32(maxFrameBytes+1))

	// Correctly framed and checksummed bytes that are not a JSON
	// record: framing is intact but the content is garbage.
	junk := []byte("not json at all")
	framedJunk := make([]byte, 8+len(junk))
	binary.LittleEndian.PutUint32(framedJunk[0:4], uint32(len(junk)))
	binary.LittleEndian.PutUint32(framedJunk[4:8], crc32.Checksum(junk, crcTable))
	copy(framedJunk[8:], junk)

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"torn header", sound[:5]},
		{"torn payload", sound[:len(sound)-3]},
		{"flipped payload byte", flipped},
		{"insane length", badLen},
		{"checksummed junk", framedJunk},
	}
	for _, tc := range cases {
		if _, _, ok := nextFrame(tc.data); ok {
			t.Errorf("%s: nextFrame accepted corrupt data", tc.name)
		}
	}
}

func TestParseFramesStopsAtFirstBadFrame(t *testing.T) {
	var data []byte
	for round := 0; round < 3; round++ {
		buf, err := frame(journalRecord{Kind: recordAdvance, Round: round})
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, buf...)
	}
	goodEnd := len(data)
	torn, err := frame(journalRecord{Kind: recordBatch, ID: "tail"})
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, torn[:len(torn)/2]...) // crash mid-append

	recs, goodLen := parseFrames(data)
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3", len(recs))
	}
	if goodLen != goodEnd {
		t.Fatalf("goodLen = %d, want %d (offset of the torn frame)", goodLen, goodEnd)
	}
	for i, rec := range recs {
		if rec.Round != i {
			t.Fatalf("record %d replayed round %d", i, rec.Round)
		}
	}
}

// TestJournalSegmentLifecycle walks one collection's journal through
// the cycle a live server drives: appends land in the active segment,
// a rotation moves later appends to the next generation, and
// dropBefore removes exactly the superseded files.
func TestJournalSegmentLifecycle(t *testing.T) {
	dir := t.TempDir()
	j := newJournal(fsio.OS, dir, "col", 1, JournalSyncEvery)
	for i := 0; i < 2; i++ {
		if err := j.append(journalRecord{Kind: recordBatch, ID: fmt.Sprintf("a-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if frames, _ := j.lag(); frames != 2 {
		t.Fatalf("lag after 2 appends = %d frames, want 2", frames)
	}
	if gen := j.rotate(); gen != 2 {
		t.Fatalf("rotate returned generation %d, want 2", gen)
	}
	if err := j.append(journalRecord{Kind: recordBatch, ID: "b-0"}); err != nil {
		t.Fatal(err)
	}

	segs, err := journalSegments(fsio.OS, dir, "col")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].gen != 1 || segs[1].gen != 2 {
		t.Fatalf("segments = %+v, want generations 1 and 2", segs)
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if recs, goodLen := parseFrames(data); len(recs) != 2 || goodLen != len(data) {
		t.Fatalf("segment 1 parsed to %d records (%d/%d bytes)", len(recs), goodLen, len(data))
	}

	if err := j.dropBefore(2); err != nil {
		t.Fatal(err)
	}
	segs, err = journalSegments(fsio.OS, dir, "col")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].gen != 2 {
		t.Fatalf("segments after dropBefore(2) = %+v, want only generation 2", segs)
	}
	if frames, _ := j.lag(); frames != 1 {
		t.Fatalf("lag after drop = %d frames, want 1 (the post-rotation append)", frames)
	}
}

// TestJournalBrokenLatch: one failed append latches the journal
// broken — every later append fails without touching the disk — and a
// checkpoint's dropBefore clears the latch.
func TestJournalBrokenLatch(t *testing.T) {
	dir := t.TempDir()
	fault := fsio.NewFault(fsio.OS)
	j := newJournal(fault, dir, "col", 1, JournalSyncEvery)

	fault.FailAt(0) // the segment-creating open fails
	if err := j.append(journalRecord{Kind: recordBatch, ID: "x"}); !errors.Is(err, ErrJournal) {
		t.Fatalf("append over failed open = %v, want ErrJournal", err)
	}
	if !j.isBroken() {
		t.Fatal("journal not broken after failed append")
	}
	fault.Disarm()
	ops := fault.Ops()
	if err := j.append(journalRecord{Kind: recordBatch, ID: "y"}); !errors.Is(err, ErrJournal) {
		t.Fatalf("append on broken journal = %v, want ErrJournal", err)
	}
	if fault.Ops() != ops {
		t.Fatal("broken journal still issued filesystem operations")
	}

	newGen := j.rotate()
	if err := j.dropBefore(newGen); err != nil {
		t.Fatal(err)
	}
	if j.isBroken() {
		t.Fatal("dropBefore did not clear the broken latch")
	}
	if err := j.append(journalRecord{Kind: recordBatch, ID: "z"}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	seg := journalSegPath(dir, "col", newGen)
	if _, err := os.Stat(seg); err != nil {
		t.Fatalf("recovered append did not reach segment %s: %v", filepath.Base(seg), err)
	}
}

func TestJournalSegmentsIgnoresForeignSuffixes(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"col.journal.000001",
		"col.journal.000003",
		"col.journal.000002.corrupt", // quarantined: not a live segment
		"col.journal.xyz",            // not a generation
	} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := journalSegments(fsio.OS, dir, "col")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].gen != 1 || segs[1].gen != 3 {
		t.Fatalf("segments = %+v, want generations 1 and 3 only", segs)
	}
}

func TestDedupLRU(t *testing.T) {
	d := newDedupLRU()

	if _, state := d.claim("a"); state != dedupNew {
		t.Fatalf("first claim = %v, want dedupNew", state)
	}
	// The placeholder fences a concurrent duplicate.
	if _, state := d.claim("a"); state != dedupInflight {
		t.Fatalf("claim of in-flight ID = %v, want dedupInflight", state)
	}
	d.complete(BatchMark{ID: "a", Accepted: 4, Rejected: 1})
	mark, state := d.claim("a")
	if state != dedupDone || mark.Accepted != 4 || mark.Rejected != 1 {
		t.Fatalf("claim after complete = %v/%+v, want dedupDone with the recorded mark", state, mark)
	}

	// Abandon forgets a failed attempt: the retry is new again.
	if _, state := d.claim("b"); state != dedupNew {
		t.Fatal("claim b")
	}
	d.abandon("b")
	if _, state := d.claim("b"); state != dedupNew {
		t.Fatalf("claim after abandon = %v, want dedupNew", state)
	}
	d.abandon("b")

	// marks reports completed entries only, oldest first, and a seeded
	// copy answers retries identically.
	d.complete(BatchMark{ID: "c", Accepted: 2})
	ms := d.marks()
	if len(ms) != 2 || ms[0].ID != "a" || ms[1].ID != "c" {
		t.Fatalf("marks = %+v, want [a c]", ms)
	}
	d2 := newDedupLRU()
	d2.seed(ms)
	if mark, state := d2.claim("a"); state != dedupDone || mark.Accepted != 4 {
		t.Fatalf("seeded claim = %v/%+v, want the original outcome", state, mark)
	}
}

func TestDedupLRUEvictsOldest(t *testing.T) {
	d := newDedupLRU()
	for i := 0; i < maxDedupEntries+10; i++ {
		d.complete(BatchMark{ID: fmt.Sprintf("id-%05d", i), Accepted: i})
	}
	if n := len(d.m); n != maxDedupEntries {
		t.Fatalf("dedup memory holds %d entries, want cap %d", n, maxDedupEntries)
	}
	if _, state := d.claim("id-00000"); state != dedupNew {
		t.Fatalf("oldest ID = %v, want evicted (dedupNew)", state)
	}
	if _, state := d.claim(fmt.Sprintf("id-%05d", maxDedupEntries+9)); state != dedupDone {
		t.Fatalf("newest ID = %v, want dedupDone", state)
	}
}
