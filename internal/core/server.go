package core

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Request body limits: one envelope never legitimately approaches a
// mebibyte, while a batch of the largest envelopes (SHE at domain
// ~4096) needs real headroom; both are tight enough that a
// misbehaving client cannot balloon the decoder.
const (
	maxReportBytes = 1 << 20
	maxBatchBytes  = 8 << 20
)

// Service is an HTTP aggregation endpoint: clients POST Envelope JSON
// to /report (or a JSON array of envelopes to /report/batch), analysts
// GET /estimate for the debiased counts and /status for collection
// metadata. Ingestion is sharded across per-core oracles (see
// ShardedAggregator), so concurrent reports do not serialize on one
// mutex; /estimate merges the shards on demand, which is exact because
// every oracle accumulator is linear. It is safe for concurrent use.
type Service struct {
	agg    *ShardedAggregator
	params PrivacyParams
}

// NewService returns a collection service for the named mechanism with
// one aggregation shard per core (GOMAXPROCS).
func NewService(mechanism string, p PrivacyParams) (*Service, error) {
	return NewServiceSharded(mechanism, p, 0)
}

// NewServiceSharded returns a collection service with an explicit
// shard count; shards <= 0 selects GOMAXPROCS.
func NewServiceSharded(mechanism string, p PrivacyParams, shards int) (*Service, error) {
	agg, err := NewShardedAggregator(mechanism, p, shards, nil)
	if err != nil {
		return nil, err
	}
	return &Service{agg: agg, params: p}, nil
}

// Aggregator exposes the service's sharded aggregator, for embedding
// the service in a larger process that also ingests reports directly.
func (s *Service) Aggregator() *ShardedAggregator { return s.agg }

// Handler returns the service's HTTP routes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/report/batch", s.handleReportBatch)
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/status", s.handleStatus)
	return mux
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var env Envelope
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReportBytes))
	if err := dec.Decode(&env); err != nil {
		http.Error(w, fmt.Sprintf("bad report: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.agg.Add(env); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// BatchResponse is the JSON body of /report/batch: how many envelopes
// were folded in, and the rejection reasons for the rest. A batch is
// not atomic — valid envelopes are aggregated even when others in the
// same batch are rejected (the response status is 400 in that case so
// simple clients still notice).
type BatchResponse struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	Error    string `json:"error,omitempty"`
}

func (s *Service) handleReportBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var batch []Envelope
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes))
	if err := dec.Decode(&batch); err != nil {
		http.Error(w, fmt.Sprintf("bad batch: %v", err), http.StatusBadRequest)
		return
	}
	accepted, err := s.agg.AddBatch(batch)
	resp := BatchResponse{Accepted: accepted, Rejected: len(batch) - accepted}
	status := http.StatusAccepted
	if err != nil {
		resp.Error = err.Error()
		status = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// EstimateResponse is the JSON body of /estimate.
type EstimateResponse struct {
	Mechanism string    `json:"mechanism"`
	Epsilon   float64   `json:"epsilon"`
	Domain    int       `json:"domain"`
	Shards    int       `json:"shards"`
	Reports   int       `json:"reports"`
	Counts    []float64 `json:"counts"`
}

func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	merged, err := s.agg.Merged()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, EstimateResponse{
		Mechanism: merged.Name(),
		Epsilon:   s.params.Epsilon,
		Domain:    s.params.Domain,
		Shards:    s.agg.Shards(),
		Reports:   merged.Collected(),
		Counts:    merged.EstimateCounts(),
	})
}

// StatusResponse is the JSON body of /status.
type StatusResponse struct {
	Mechanism  string  `json:"mechanism"`
	Epsilon    float64 `json:"epsilon"`
	Domain     int     `json:"domain"`
	Shards     int     `json:"shards"`
	Reports    int     `json:"reports"`
	ReportBits int     `json:"report_bits"`
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	// Metadata only — no need for the full merge /estimate performs.
	writeJSON(w, StatusResponse{
		Mechanism:  s.agg.Mechanism(),
		Epsilon:    s.params.Epsilon,
		Domain:     s.params.Domain,
		Shards:     s.agg.Shards(),
		Reports:    s.agg.Collected(),
		ReportBits: s.agg.ReportBits(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do than drop the
		// connection, which the server does for us.
		return
	}
}
