package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/freq"
)

// Service is an HTTP aggregation endpoint: clients POST Envelope JSON
// to /report, analysts GET /estimate for the debiased counts and
// /status for collection metadata. It is safe for concurrent use.
type Service struct {
	mu     sync.Mutex
	oracle freq.Oracle
	params PrivacyParams
}

// NewService returns a collection service for the named mechanism.
func NewService(mechanism string, p PrivacyParams) (*Service, error) {
	o, err := NewOracle(mechanism, p, nil)
	if err != nil {
		return nil, err
	}
	return &Service{oracle: o, params: p}, nil
}

// Handler returns the service's HTTP routes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/status", s.handleStatus)
	return mux
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var env Envelope
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&env); err != nil {
		http.Error(w, fmt.Sprintf("bad report: %v", err), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	err := Aggregate(s.oracle, env)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// EstimateResponse is the JSON body of /estimate.
type EstimateResponse struct {
	Mechanism string    `json:"mechanism"`
	Epsilon   float64   `json:"epsilon"`
	Domain    int       `json:"domain"`
	Reports   int       `json:"reports"`
	Counts    []float64 `json:"counts"`
}

func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	resp := EstimateResponse{
		Mechanism: s.oracle.Name(),
		Epsilon:   s.params.Epsilon,
		Domain:    s.params.Domain,
		Reports:   s.oracle.Collected(),
		Counts:    s.oracle.EstimateCounts(),
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// StatusResponse is the JSON body of /status.
type StatusResponse struct {
	Mechanism  string  `json:"mechanism"`
	Epsilon    float64 `json:"epsilon"`
	Domain     int     `json:"domain"`
	Reports    int     `json:"reports"`
	ReportBits int     `json:"report_bits"`
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	resp := StatusResponse{
		Mechanism:  s.oracle.Name(),
		Epsilon:    s.params.Epsilon,
		Domain:     s.params.Domain,
		Reports:    s.oracle.Collected(),
		ReportBits: s.oracle.ReportBits(),
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do than drop the
		// connection, which the server does for us.
		return
	}
}
