package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"

	"repro/internal/binenc"
	"repro/internal/task"
)

// Request body limits: one envelope never legitimately approaches a
// mebibyte, while a batch of the largest envelopes (SHE at domain
// ~4096, CMS at width ~4096) needs real headroom; both are tight
// enough that a misbehaving client cannot balloon the decoder.
// Collection-management bodies are a handful of scalar fields.
const (
	maxReportBytes  = 1 << 20
	maxBatchBytes   = 8 << 20
	maxControlBytes = 1 << 16
)

// ContentTypeBinary is the request media type of the binary report
// wire format. A single report body is one task-defined binary
// envelope; a batch body is a uvarint report count followed by that
// many length-prefixed envelopes. Collections advertise whether they
// accept it in the "encodings" field of /status, /collections and
// /frontier; posting it to a collection whose task has no binary
// decoder is a 415.
const ContentTypeBinary = "application/x-ldp-binary"

// isBinaryReport reports whether the request body declares the binary
// report media type (parameters after ";" are ignored).
func isBinaryReport(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.EqualFold(strings.TrimSpace(ct), ContentTypeBinary)
}

// bodyBufPool recycles binary request body buffers, so the binary hot
// path reads each body into warmed memory instead of allocating per
// request. Buffers above maxPooledBody are dropped rather than pooled,
// so one maximal batch does not pin its megabytes forever.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBody = 1 << 20

// readRawBody slurps a binary request body under the size cap into a
// pooled buffer, answering 413 (oversize) or 400 (transport error)
// itself. The caller owns the buffer until it calls releaseBodyBuf —
// after which nothing may alias its bytes.
func readRawBody(w http.ResponseWriter, r *http.Request, limit int64, what string) (*bytes.Buffer, bool) {
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, limit)); err != nil {
		releaseBodyBuf(buf)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("%s exceeds %d bytes", what, tooBig.Limit), http.StatusRequestEntityTooLarge)
			return nil, false
		}
		http.Error(w, fmt.Sprintf("bad %s: %v", what, err), http.StatusBadRequest)
		return nil, false
	}
	return buf, true
}

func releaseBodyBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBody {
		bodyBufPool.Put(buf)
	}
}

// Service is an HTTP aggregation endpoint serving many concurrent
// surveys: a registry of named collections, each an independent
// ShardedAggregator over one task family (frequency oracle, numeric
// mean, private sketch — whatever the task registry knows). Clients
// POST task-defined report envelopes to /collections/{name}/report (or
// a JSON array of them to .../report/batch), analysts GET .../estimate
// for the task-defined estimate (debiased counts, mean ± CI, per-item
// sketch counts) and .../status for collection metadata; POST/GET
// /collections and DELETE /collections/{name} manage the registry. The
// flat pre-collections routes (/report, /report/batch, /estimate,
// /status) stay wired to the "default" collection, so existing clients
// are untouched.
//
// Estimates are served from a per-collection merged snapshot that is
// recomputed only when the ingestion epoch has advanced, so analyst
// polling of an idle collection costs no re-merge. With a Store
// attached, collection creations and deletions are mirrored to disk
// immediately; periodic checkpointing is the caller's loop (see cmd/ldpd).
// It is safe for concurrent use.
type Service struct {
	reg   *CollectionRegistry
	store *Store // nil = memory-only
	// unhealthyAfter is the consecutive-checkpoint-failure count past
	// which GET /healthz answers 503 for the process.
	unhealthyAfter int
	// relayInfo, when set (relay-mode processes), reports a collection's
	// relay standing for /status and /healthz; nil entries mean the
	// collection is not relayed. Set once before serving.
	relayInfo func(collection string) *RelayInfo
}

// DefaultUnhealthyAfter is the /healthz failure-streak threshold when
// the operator sets none: transient single failures (a full disk that
// clears, a slow fsync) stay "ok", a stuck disk does not.
const DefaultUnhealthyAfter = 3

// NewService returns a single-survey frequency collection service for
// the named mechanism with one aggregation shard per core (GOMAXPROCS).
func NewService(mechanism string, p PrivacyParams) (*Service, error) {
	return NewServiceSharded(mechanism, p, 0)
}

// NewServiceSharded returns a single-survey frequency collection
// service with an explicit shard count; shards <= 0 selects GOMAXPROCS.
// The survey becomes the default collection, reachable through both the
// flat and the /collections routes.
func NewServiceSharded(mechanism string, p PrivacyParams, shards int) (*Service, error) {
	reg := NewCollectionRegistry()
	if _, err := reg.Create(DefaultCollection, FreqCollectionConfig(mechanism, p, shards)); err != nil {
		return nil, err
	}
	return NewMultiService(reg, nil), nil
}

// NewMultiService returns a service over an externally built registry,
// for processes that restore collections from a Store before serving.
// A non-nil store makes the collection-management routes persistent:
// creates are checkpointed immediately and deletes remove the snapshot.
func NewMultiService(reg *CollectionRegistry, store *Store) *Service {
	return &Service{reg: reg, store: store, unhealthyAfter: DefaultUnhealthyAfter}
}

// SetUnhealthyAfter overrides the /healthz checkpoint-failure-streak
// threshold (n <= 0 restores the default).
func (s *Service) SetUnhealthyAfter(n int) {
	if n <= 0 {
		n = DefaultUnhealthyAfter
	}
	s.unhealthyAfter = n
}

// Registry exposes the service's collection registry.
func (s *Service) Registry() *CollectionRegistry { return s.reg }

// RelayInfo is a relay-mode collection's flushing standing, reported
// in /status (relay field) and folded into the /healthz verdict: a
// latched-broken upstream makes the process degraded — it is accepting
// reports it cannot currently deliver.
type RelayInfo struct {
	Upstream            string  `json:"upstream"`
	LastFlushUnix       int64   `json:"last_flush_unix,omitempty"`
	LastFlushAgeSeconds float64 `json:"last_flush_age_seconds,omitempty"`
	// PendingReports counts reports folded locally but not yet cut into
	// an outbound delta; PendingDeltas counts cut deltas still waiting
	// in the outbox for an upstream acknowledgment.
	PendingReports int `json:"pending_reports"`
	PendingDeltas  int `json:"pending_deltas"`
	// StrandedDeltas counts deltas set aside after an unresolvable
	// upstream rejection (e.g. a round that closed for good); they are
	// preserved on disk for the operator, never silently dropped.
	StrandedDeltas int  `json:"stranded_deltas,omitempty"`
	FlushFailures  int  `json:"consecutive_flush_failures"`
	UpstreamBroken bool `json:"upstream_broken,omitempty"`
}

// SetRelayInfo installs the relay tier's per-collection status hook.
// Must be called before the handler serves traffic.
func (s *Service) SetRelayInfo(fn func(collection string) *RelayInfo) {
	s.relayInfo = fn
}

// Aggregator exposes the default collection's sharded aggregator, for
// embedding the service in a larger process that also ingests reports
// directly. It is nil when no default collection exists.
func (s *Service) Aggregator() *ShardedAggregator {
	c, ok := s.reg.Get(DefaultCollection)
	if !ok {
		return nil
	}
	return c.agg
}

// Handler returns the service's HTTP routes. Method-qualified patterns
// make the mux answer wrong-method requests with 405 and an Allow
// header.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	// Flat legacy routes over the default collection.
	mux.HandleFunc("POST /report", s.withCollection(s.handleReport))
	mux.HandleFunc("POST /report/batch", s.withCollection(s.handleReportBatch))
	mux.HandleFunc("GET /estimate", s.withCollection(s.handleEstimate))
	mux.HandleFunc("GET /status", s.withCollection(s.handleStatus))
	mux.HandleFunc("GET /frontier", s.withCollection(s.handleFrontier))
	mux.HandleFunc("POST /advance", s.withCollection(s.handleAdvance))
	mux.HandleFunc("POST /merge", s.withCollection(s.handleMerge))
	// Collection management.
	mux.HandleFunc("POST /collections", s.handleCollectionCreate)
	mux.HandleFunc("GET /collections", s.handleCollectionList)
	mux.HandleFunc("DELETE /collections/{name}", s.handleCollectionDelete)
	// Per-collection data plane.
	mux.HandleFunc("POST /collections/{name}/report", s.withCollection(s.handleReport))
	mux.HandleFunc("POST /collections/{name}/report/batch", s.withCollection(s.handleReportBatch))
	mux.HandleFunc("GET /collections/{name}/estimate", s.withCollection(s.handleEstimate))
	mux.HandleFunc("GET /collections/{name}/status", s.withCollection(s.handleStatus))
	// Interactive (phased) protocol plane.
	mux.HandleFunc("GET /collections/{name}/frontier", s.withCollection(s.handleFrontier))
	mux.HandleFunc("POST /collections/{name}/advance", s.withCollection(s.handleAdvance))
	// Cluster plane: relays fold their accumulated state in here.
	mux.HandleFunc("POST /collections/{name}/merge", s.withCollection(s.handleMerge))
	// Operational plane.
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// withCollection resolves the {name} path segment (empty on the flat
// routes, which serve the default collection) before invoking the
// handler. Unknown names are a 404: reports for a survey that was
// never created should bounce loudly, not conjure an aggregator.
func (s *Service) withCollection(h func(http.ResponseWriter, *http.Request, *Collection)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if name == "" {
			name = DefaultCollection
		}
		c, ok := s.reg.Get(name)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown collection %q", name), http.StatusNotFound)
			return
		}
		h(w, r, c)
	}
}

// decodeBody decodes one JSON value from the request body into v under
// a size cap, distinguishing the three failure classes a collector
// sees in practice: an oversize body is 413 (the client should split
// or shrink, not "fix" its JSON), malformed JSON is 400, and trailing
// data after the value is also 400 — a concatenated second envelope
// would otherwise be silently dropped, which masks client framing bugs.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any, what string) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("%s exceeds %d bytes", what, tooBig.Limit), http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, fmt.Sprintf("bad %s: %v", what, err), http.StatusBadRequest)
		return false
	}
	// Token (not More) so that trailing non-value garbage like a stray
	// "}" is caught too; io.EOF is the only clean outcome.
	if _, err := dec.Token(); err != io.EOF {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			// The value fit but the body kept going past the cap
			// (padding, a giant second value): that is the oversize
			// contract, not the framing one.
			http.Error(w, fmt.Sprintf("%s exceeds %d bytes", what, tooBig.Limit), http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, fmt.Sprintf("bad %s: trailing data after JSON body", what), http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request, c *Collection) {
	if isBinaryReport(r) {
		s.handleReportBinary(w, r, c)
		return
	}
	// The report is decoded only to a raw JSON value here — the
	// collection's task owns the envelope schema and validates it.
	var raw json.RawMessage
	if !decodeBody(w, r, maxReportBytes, &raw, "report") {
		return
	}
	if err := c.IngestReport(raw); err != nil {
		http.Error(w, err.Error(), reportErrStatus(err))
		return
	}
	s.maybeAutoAdvance(c)
	w.WriteHeader(http.StatusAccepted)
}

// reportErrStatus maps a single-report ingest failure to its HTTP
// status: a journal failure means "not acknowledged, retry later" (the
// server's problem, not the envelope's), a wrong-round rejection means
// the client's protocol view is stale (409 tells it to refetch the
// frontier and re-report, where a 400 would tell it to "fix" a
// perfectly well-formed envelope), and everything else is a malformed
// envelope.
func reportErrStatus(err error) int {
	switch {
	case errors.Is(err, ErrJournal):
		return http.StatusServiceUnavailable
	case errors.Is(err, task.ErrWrongRound):
		return http.StatusConflict
	case errors.Is(err, ErrBinaryWire):
		return http.StatusUnsupportedMediaType
	}
	return http.StatusBadRequest
}

// handleReportBinary ingests one binary-encoded report. The gate is
// per collection: a task without a binary decoder answers 415, and the
// /status and /frontier bodies advertise which encodings a collection
// accepts so clients need not probe.
func (s *Service) handleReportBinary(w http.ResponseWriter, r *http.Request, c *Collection) {
	if !c.agg.BinaryWire() {
		http.Error(w, ErrBinaryWire.Error(), http.StatusUnsupportedMediaType)
		return
	}
	buf, ok := readRawBody(w, r, maxReportBytes, "report")
	if !ok {
		return
	}
	defer releaseBodyBuf(buf)
	if err := c.IngestReportBinary(buf.Bytes()); err != nil {
		http.Error(w, err.Error(), reportErrStatus(err))
		return
	}
	s.maybeAutoAdvance(c)
	w.WriteHeader(http.StatusAccepted)
}

// BatchResponse is the JSON body of /report/batch: how many envelopes
// were folded in, and the rejection reasons for the rest. A batch is
// not atomic — valid envelopes are aggregated even when others in the
// same batch are rejected (the response status is 400 in that case so
// simple clients still notice). Replayed marks a deduplicated retry:
// the batch's Idempotency-Key was seen before, the recorded outcome is
// returned and nothing was re-aggregated.
type BatchResponse struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	Replayed bool   `json:"replayed,omitempty"`
	Error    string `json:"error,omitempty"`
}

// maxBatchIDBytes caps the Idempotency-Key header: the key is stored
// per entry in the dedup memory and in every snapshot, so a client
// must not be able to inflate either with a kilobyte key.
const maxBatchIDBytes = 128

func (s *Service) handleReportBatch(w http.ResponseWriter, r *http.Request, c *Collection) {
	id := r.Header.Get("Idempotency-Key")
	if len(id) > maxBatchIDBytes {
		http.Error(w, fmt.Sprintf("Idempotency-Key exceeds %d bytes", maxBatchIDBytes), http.StatusBadRequest)
		return
	}
	if isBinaryReport(r) {
		s.handleReportBatchBinary(w, r, c, id)
		return
	}
	var batch []json.RawMessage
	if !decodeBody(w, r, maxBatchBytes, &batch, "batch") {
		return
	}
	res, err := c.IngestBatch(id, batch)
	s.finishBatch(w, c, res, err)
}

// handleReportBatchBinary ingests a binary-encoded batch: a uvarint
// report count followed by that many length-prefixed binary envelopes.
func (s *Service) handleReportBatchBinary(w http.ResponseWriter, r *http.Request, c *Collection, id string) {
	if !c.agg.BinaryWire() {
		http.Error(w, ErrBinaryWire.Error(), http.StatusUnsupportedMediaType)
		return
	}
	buf, ok := readRawBody(w, r, maxBatchBytes, "batch")
	if !ok {
		return
	}
	defer releaseBodyBuf(buf)
	batch, err := splitBinaryBatch(buf.Bytes())
	if err != nil {
		http.Error(w, fmt.Sprintf("bad batch: %v", err), http.StatusBadRequest)
		return
	}
	res, err := c.IngestBatchBinary(id, batch)
	s.finishBatch(w, c, res, err)
}

// splitBinaryBatch parses a binary batch body into per-report payload
// slices aliasing the body buffer (the ingest call copies what it
// keeps, so the aliases die with the request).
func splitBinaryBatch(data []byte) ([][]byte, error) {
	r := binenc.NewReader(data)
	n := r.Length(1)
	batch := make([][]byte, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		batch = append(batch, r.Blob())
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return batch, nil
}

// finishBatch turns an IngestBatch result into the HTTP response, the
// shared tail of the JSON and binary batch routes.
func (s *Service) finishBatch(w http.ResponseWriter, c *Collection, res BatchResult, err error) {
	if err != nil {
		if errors.Is(err, ErrBatchInFlight) {
			// The first attempt with this key is still processing —
			// the retry that raced it should back off and re-send.
			w.Header().Set("Retry-After", "1")
		}
		// Both failure classes (journal down, duplicate in flight) are
		// server-side and transient: 503 tells the client to retry,
		// which the dedup memory makes safe.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if res.Accepted > 0 && !res.Replayed {
		s.maybeAutoAdvance(c)
	}
	resp := BatchResponse{Accepted: res.Accepted, Rejected: res.Rejected, Replayed: res.Replayed}
	status := http.StatusAccepted
	if res.RejectErr != nil {
		resp.Error = res.RejectErr.Error()
		status = http.StatusBadRequest
		if res.Accepted == 0 && errors.Is(res.RejectErr, task.ErrWrongRound) {
			// The whole batch was privatized against a stale round:
			// signal "refetch the frontier", as the single-report
			// route does.
			status = http.StatusConflict
		}
	}
	writeJSON(w, status, resp)
}

// MergeResponse is the JSON body of POST .../merge: how many reports
// the delta carried in, whether it was a deduplicated retry, and the
// collection's report total after the fold.
type MergeResponse struct {
	Accepted int  `json:"accepted"`
	Replayed bool `json:"replayed,omitempty"`
	Reports  int  `json:"reports"`
}

// handleMerge folds a relay's state delta into the collection through
// the exact Merge path. The body is a versioned delta — the binary
// container under the binary media type, the JSON header otherwise —
// and an Idempotency-Key header (which overrides the delta's embedded
// ID) makes retries fold exactly once. Failure mapping follows the
// report routes: config or codec mismatch 400 before anything is
// journaled, stale round 409, binary state for a JSON-only task 415,
// journal down or duplicate in flight 503.
func (s *Service) handleMerge(w http.ResponseWriter, r *http.Request, c *Collection) {
	id := r.Header.Get("Idempotency-Key")
	if len(id) > maxBatchIDBytes {
		http.Error(w, fmt.Sprintf("Idempotency-Key exceeds %d bytes", maxBatchIDBytes), http.StatusBadRequest)
		return
	}
	buf, ok := readRawBody(w, r, maxBatchBytes, "delta")
	if !ok {
		return
	}
	defer releaseBodyBuf(buf)
	d, err := DecodeDelta(buf.Bytes(), isBinaryReport(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if id != "" {
		d.ID = id
	}
	if len(d.ID) > maxBatchIDBytes {
		http.Error(w, fmt.Sprintf("delta id exceeds %d bytes", maxBatchIDBytes), http.StatusBadRequest)
		return
	}
	if err := c.CheckDeltaConfig(d); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := c.IngestMerge(d)
	if err != nil {
		if errors.Is(err, ErrBatchInFlight) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), reportErrStatus(err))
		return
	}
	if res.Accepted > 0 && !res.Replayed {
		s.maybeAutoAdvance(c)
	}
	writeJSON(w, http.StatusOK, MergeResponse{Accepted: res.Accepted, Replayed: res.Replayed, Reports: c.agg.Collected()})
}

// maybeAutoAdvance closes the collection's round when its configured
// per-round report quota has been met. Failures are logged, never
// surfaced to the reporting client — its report was accepted; the
// round boundary is the server's business.
func (s *Service) maybeAutoAdvance(c *Collection) {
	advanced, err := c.MaybeAdvance(c.cfg.AdvanceQuota)
	if err != nil {
		log.Printf("core: auto-advance of collection %q: %v", c.name, err)
		return
	}
	if advanced {
		s.checkpointAfterAdvance(c)
	}
}

// checkpointAfterAdvance persists the new round immediately: round
// boundaries are the durability points of an interactive protocol — a
// crash after an unpersisted advance would resume the old round and
// re-score users into it.
func (s *Service) checkpointAfterAdvance(c *Collection) {
	if s.store == nil {
		return
	}
	if err := s.store.Save(s.reg, c); err != nil {
		log.Printf("core: checkpoint after advance of collection %q: %v", c.name, err)
	}
}

// HealthResponse is the JSON body of GET /healthz: the process-level
// verdict plus each collection's durability standing. Status is
// "degraded" (and the HTTP status 503) when any collection's
// checkpoint-failure streak passes the threshold or its journal is
// refusing appends — the states where the server is up but quietly not
// durable, which a liveness probe alone would never notice.
type HealthResponse struct {
	Status      string                      `json:"status"`
	Collections map[string]CollectionHealth `json:"collections,omitempty"`
	// Relay maps relayed collections to their upstream-flushing
	// standing (relay-mode processes only). A latched-broken upstream
	// degrades the process just like a broken journal: reports are
	// being accepted that cannot currently reach the aggregation tier.
	Relay map[string]*RelayInfo `json:"relay,omitempty"`
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok", Collections: make(map[string]CollectionHealth)}
	status := http.StatusOK
	for _, c := range s.reg.Collections() {
		var h CollectionHealth
		if s.store != nil {
			h = s.store.Health(c)
		} else {
			h.JournalLagFrames, h.JournalLagBytes, h.JournalBroken = c.JournalHealth()
		}
		if h.SaveFailures >= s.unhealthyAfter || h.JournalBroken {
			resp.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
		resp.Collections[c.Name()] = h
		if s.relayInfo != nil {
			if info := s.relayInfo(c.Name()); info != nil {
				if resp.Relay == nil {
					resp.Relay = make(map[string]*RelayInfo)
				}
				resp.Relay[c.Name()] = info
				if info.UpstreamBroken {
					resp.Status = "degraded"
					status = http.StatusServiceUnavailable
				}
			}
		}
	}
	writeJSON(w, status, resp)
}

// EstimateResponse is the JSON body of /estimate: collection metadata
// plus the task-defined estimate payload (frequency counts, mean ± CI,
// per-item sketch counts — see each task package's EstimateResult).
type EstimateResponse struct {
	Collection string          `json:"collection"`
	Task       string          `json:"task"`
	Mechanism  string          `json:"mechanism"`
	Epsilon    float64         `json:"epsilon"`
	Shards     int             `json:"shards"`
	Reports    int             `json:"reports"`
	Estimate   json.RawMessage `json:"estimate"`
}

func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request, c *Collection) {
	// Served through the per-query response cache: repeated reads of
	// one query against an unchanged collection re-serialize nothing.
	est, reports, err := c.agg.EstimateCached(r.URL.Query())
	if err != nil {
		// Task estimate errors are query errors (bad ?top=, ...) the
		// analyst can fix; merge failures are the server's problem.
		status := http.StatusBadRequest
		if IsInternal(err) {
			status = http.StatusInternalServerError
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Collection: c.name,
		Task:       c.agg.TaskType(),
		Mechanism:  c.cfg.Mechanism,
		Epsilon:    c.cfg.Epsilon,
		Shards:     c.agg.Shards(),
		Reports:    reports,
		Estimate:   est,
	})
}

// FrontierResponse is the JSON body of GET /frontier and of a
// successful POST /advance: the collection's protocol position plus
// the task-defined frontier payload clients privatize against.
type FrontierResponse struct {
	Collection   string          `json:"collection"`
	Task         string          `json:"task"`
	Round        int             `json:"round"`
	Phase        string          `json:"phase"`
	Reports      int             `json:"reports"`
	RoundReports int             `json:"round_reports"`
	Encodings    []string        `json:"encodings"`
	Frontier     json.RawMessage `json:"frontier"`
}

// phaseOf names a phased collection's protocol phase for /status and
// /frontier bodies.
func phaseOf(agg *ShardedAggregator) string {
	if agg.Done() {
		return "done"
	}
	return "collecting"
}

func frontierResponseFor(c *Collection) (FrontierResponse, error) {
	frontier, err := c.agg.Frontier()
	if err != nil {
		return FrontierResponse{}, err
	}
	return FrontierResponse{
		Collection:   c.name,
		Task:         c.agg.TaskType(),
		Round:        c.agg.Round(),
		Phase:        phaseOf(c.agg),
		Reports:      c.agg.Collected(),
		RoundReports: c.agg.RoundReports(),
		Encodings:    encodingsFor(c),
		Frontier:     frontier,
	}, nil
}

func (s *Service) handleFrontier(w http.ResponseWriter, r *http.Request, c *Collection) {
	resp, err := frontierResponseFor(c)
	if errors.Is(err, ErrNotPhased) {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// AdvanceRequest is the optional JSON body of POST /advance. Round,
// when set, makes the advance conditional: the round is closed only if
// it is still the current one, so two drivers posting "close round 2"
// together advance the protocol once — the loser gets 409 and
// refetches the frontier — instead of silently burning round 3 empty.
type AdvanceRequest struct {
	Round *int `json:"round"`
}

func (s *Service) handleAdvance(w http.ResponseWriter, r *http.Request, c *Collection) {
	expect := -1
	if r.ContentLength != 0 {
		var req AdvanceRequest
		if !decodeBody(w, r, maxControlBytes, &req, "advance request") {
			return
		}
		if req.Round != nil {
			expect = *req.Round
		}
	}
	if err := c.AdvanceExpecting(expect); err != nil {
		if errors.Is(err, ErrNotPhased) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The other client-visible failures — closing a round that is
		// no longer current, advancing a completed protocol — are a
		// stale view of the collection, same family as a wrong-round
		// report.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.checkpointAfterAdvance(c)
	resp, err := frontierResponseFor(c)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatusResponse is the JSON body of /status and one element of the
// GET /collections listing. The task-specific sizing fields carry
// whichever ones the collection's task defines.
type StatusResponse struct {
	Collection string  `json:"collection"`
	Task       string  `json:"task"`
	Mechanism  string  `json:"mechanism"`
	Epsilon    float64 `json:"epsilon"`
	Domain     int     `json:"domain,omitempty"`
	Dim        int     `json:"dim,omitempty"`
	Width      int     `json:"width,omitempty"`
	Hashes     int     `json:"hashes,omitempty"`
	Shards     int     `json:"shards"`
	Reports    int     `json:"reports"`
	ReportBits int     `json:"report_bits"`
	// Round, RoundReports and Phase are set for phased (multi-round)
	// collections only; the counters are pointers so zero values still
	// serialize. RoundReports comes from the aggregator's round counter
	// — exact across restarts, merges and quota checks even though the
	// task holds no per-report state (see hhtask's accumulator).
	Round        *int   `json:"round,omitempty"`
	RoundReports *int   `json:"round_reports,omitempty"`
	Phase        string `json:"phase,omitempty"`
	// Encodings lists the report wire encodings the collection accepts
	// ("json" always; "binary" when the task has a binary decoder), and
	// the embedded CheckpointInfo carries the size and state encoding of
	// the collection's last durable snapshot when a store tracks one.
	Encodings []string `json:"encodings"`
	// Config is the full round-trippable collection configuration — the
	// flattened fields above cover the common ones, but a relay
	// mirroring an upstream collection needs every parameter verbatim.
	Config CollectionConfig `json:"config"`
	// Relay is set on relay-mode processes: the collection's flushing
	// standing against its upstream.
	Relay *RelayInfo `json:"relay,omitempty"`
	*CheckpointInfo
}

// encodingsFor lists the report wire encodings a collection accepts,
// most compact last (the order clients should prefer is theirs to
// choose; the gate is per collection, not per deployment).
func encodingsFor(c *Collection) []string {
	if c.agg.BinaryWire() {
		return []string{"json", "binary"}
	}
	return []string{"json"}
}

func (s *Service) statusFor(c *Collection) StatusResponse {
	st := StatusResponse{
		Collection: c.name,
		Task:       c.agg.TaskType(),
		Mechanism:  c.cfg.Mechanism,
		Epsilon:    c.cfg.Epsilon,
		Domain:     c.cfg.Domain,
		Dim:        c.cfg.Dim,
		Width:      c.cfg.Width,
		Hashes:     c.cfg.Hashes,
		Shards:     c.agg.Shards(),
		Reports:    c.agg.Collected(),
		ReportBits: c.agg.ReportBits(),
		Encodings:  encodingsFor(c),
		Config:     c.cfg,
	}
	if s.relayInfo != nil {
		st.Relay = s.relayInfo(c.name)
	}
	if c.agg.Phased() {
		round, roundReports := c.agg.Round(), c.agg.RoundReports()
		st.Round = &round
		st.RoundReports = &roundReports
		st.Phase = phaseOf(c.agg)
	}
	if s.store != nil {
		if info, ok := s.store.LastCheckpoint(c.name); ok {
			st.CheckpointInfo = &info
		}
	}
	return st
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request, c *Collection) {
	// Metadata only — no need for the full merge /estimate performs,
	// and Collected reads an atomic counter, so status polling never
	// touches a shard lock.
	writeJSON(w, http.StatusOK, s.statusFor(c))
}

// CreateCollectionRequest is the JSON body of POST /collections. The
// embedded CollectionConfig carries the task tag ("freq" when absent)
// and the task-specific parameters.
type CreateCollectionRequest struct {
	Name string `json:"name"`
	CollectionConfig
}

// Remote-surface caps on collection configuration. ldpd's CLI flags
// are operator-trusted, but POST /collections is not: an unbounded
// domain, width or shard count would let any client allocate
// accumulator memory per shard until the process dies. Caps bound
// three axes — per-parameter sanity, per-collection tally cells
// (accumulator size × shards, ~8 bytes each), and total registry size
// — so even a client looping maximal creates cannot push the server
// past a bounded footprint. The limits sit far above every
// configuration in the tutorial's experiments.
const (
	maxCreateDomain  = 1 << 18
	maxCreateDim     = 1 << 12
	maxCreateWidth   = 1 << 16
	maxCreateHashes  = 1 << 10
	maxCreateK       = 1 << 12
	maxCreateBudget  = 1 << 13
	maxCreateShards  = 64
	maxCreateEpsilon = 32
	maxCreateCells   = 1 << 20
	maxCollections   = 256
)

// validateCreateConfig bounds a network-supplied configuration before
// any aggregator memory is allocated for it. The per-shard cell count
// is the task's accumulator size: the categorical domain for freq, the
// vector dimension for mean, the k×m counter grid for sketch.
func validateCreateConfig(cfg CollectionConfig) error {
	if !task.Registered(cfg.Type()) {
		return fmt.Errorf("core: unknown task type %q (registered: %v)", cfg.Type(), task.Types())
	}
	if cfg.Domain > maxCreateDomain {
		return fmt.Errorf("core: domain %d exceeds the API limit %d", cfg.Domain, maxCreateDomain)
	}
	if cfg.Dim > maxCreateDim {
		return fmt.Errorf("core: dim %d exceeds the API limit %d", cfg.Dim, maxCreateDim)
	}
	if cfg.Width > maxCreateWidth {
		return fmt.Errorf("core: width %d exceeds the API limit %d", cfg.Width, maxCreateWidth)
	}
	if cfg.Hashes > maxCreateHashes {
		return fmt.Errorf("core: hashes %d exceeds the API limit %d", cfg.Hashes, maxCreateHashes)
	}
	if cfg.K > maxCreateK {
		return fmt.Errorf("core: k %d exceeds the API limit %d", cfg.K, maxCreateK)
	}
	if cfg.Budget > maxCreateBudget {
		return fmt.Errorf("core: budget %d exceeds the API limit %d", cfg.Budget, maxCreateBudget)
	}
	if cfg.Shards > maxCreateShards {
		return fmt.Errorf("core: shards %d exceeds the API limit %d", cfg.Shards, maxCreateShards)
	}
	if cfg.Epsilon > maxCreateEpsilon {
		return fmt.Errorf("core: epsilon %g exceeds the API limit %d", cfg.Epsilon, maxCreateEpsilon)
	}
	if cfg.AdvanceQuota < 0 {
		return fmt.Errorf("core: advance_quota must be non-negative, got %d", cfg.AdvanceQuota)
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	perShard := cfg.Domain
	switch cfg.Type() {
	case task.TypeMean:
		perShard = cfg.Dim
	case task.TypeSketch:
		perShard = cfg.Width * cfg.Hashes
	case task.TypeHH:
		// The hh accumulator is its report list (proportional to
		// traffic, like every task's collected total, not to the
		// config); the per-round candidate-set blow-up is bounded by
		// the adapter at construction.
		perShard = 0
	}
	if cells := perShard * shards; cells > maxCreateCells {
		return fmt.Errorf("core: accumulator size × shards = %d tally cells exceeds the API limit %d", cells, maxCreateCells)
	}
	return nil
}

func (s *Service) handleCollectionCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateCollectionRequest
	if !decodeBody(w, r, maxControlBytes, &req, "collection config") {
		return
	}
	if err := validateCreateConfig(req.CollectionConfig); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Checked outside the registry lock: a burst of racing creates can
	// land a few past the cap, which is fine — the cap bounds abuse,
	// not an exact quota.
	if s.reg.Len() >= maxCollections {
		http.Error(w, fmt.Sprintf("core: collection limit %d reached", maxCollections), http.StatusTooManyRequests)
		return
	}
	c, err := s.reg.Create(req.Name, req.CollectionConfig)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrCollectionExists) {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	if s.store != nil {
		// Give the collection its write-ahead journal before anything
		// is ingested. A failed attach leaves it journal-less (reports
		// are still durable at each checkpoint tick, just not between
		// ticks) — worth serving, worth logging.
		if err := s.store.Attach(c); err != nil {
			log.Printf("core: collection %q created without a journal: %v", c.name, err)
		}
		// Persist the (empty) collection now, so its configuration
		// survives a restart that beats the first checkpoint tick.
		if err := s.store.Save(s.reg, c); err != nil {
			// Roll back only while the collection is still empty:
			// reports 202'd into it during this window must not vanish
			// with it. Both sides are cleaned — Save can fail after the
			// snapshot rename landed (e.g. the directory fsync), and a
			// stray file would resurrect the "failed" collection on
			// restart.
			if s.reg.DeleteIfEmpty(c) {
				if rerr := s.store.Remove(s.reg, c.name); rerr != nil {
					err = errors.Join(err, rerr)
				}
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			// Reports already landed: the collection stays live and
			// memory-only for now; the checkpoint loop retries the
			// persistence (the failed save recorded no epoch). The
			// operator must hear about it — with periodic checkpoints
			// disabled nothing else will mention the failure.
			log.Printf("core: initial checkpoint of collection %q failed, kept memory-only until a checkpoint succeeds: %v", c.name, err)
		}
	}
	writeJSON(w, http.StatusCreated, s.statusFor(c))
}

func (s *Service) handleCollectionList(w http.ResponseWriter, r *http.Request) {
	cols := s.reg.Collections()
	out := make([]StatusResponse, 0, len(cols))
	for _, c := range cols {
		out = append(out, s.statusFor(c))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleCollectionDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == DefaultCollection {
		// The default collection backs the flat legacy routes; deleting
		// it would turn them into 404s for every old client.
		http.Error(w, "the default collection cannot be deleted", http.StatusBadRequest)
		return
	}
	c, hadCollection := s.reg.Get(name)
	if !s.reg.Delete(name) {
		// A previous DELETE may have deregistered the collection and
		// then failed the snapshot unlink (answered 500). Retries must
		// converge, so sweep a stray snapshot before the 404, gated on
		// a file actually existing (an arbitrary name must not allocate
		// store lock state); Remove itself refuses to touch a file a
		// live case-variant collection owns. A failing sweep is a 500,
		// not a 404: "not found" would tell the caller the name is
		// fully gone while the snapshot still waits to resurrect it on
		// the next restart.
		if s.store != nil && !strings.EqualFold(name, DefaultCollection) && s.store.HasSnapshot(name) {
			if err := s.store.Remove(s.reg, name); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		http.Error(w, fmt.Sprintf("unknown collection %q", name), http.StatusNotFound)
		return
	}
	if hadCollection {
		// Release the journal's file handle; Store.Remove unlinks the
		// segments along with the snapshot.
		c.CloseJournal()
	}
	if s.store != nil {
		if err := s.store.Remove(s.reg, name); err != nil {
			// The registry entry is already gone; report the disk
			// failure so an operator knows a stale snapshot remains.
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do than drop the
		// connection, which the server does for us.
		return
	}
}
