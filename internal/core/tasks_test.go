package core

// Task-layer integration coverage: one server hosting collections of
// distinct task families, the checkpoint → kill → restart cycle across
// all of them, and backward compatibility with pre-task (untagged)
// snapshots — the acceptance criteria of the task-generic refactor.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/cmstask"
	"repro/internal/task/meantask"
)

func meanCfg() CollectionConfig {
	return CollectionConfig{
		Config: task.Config{Task: task.TypeMean, Mechanism: meantask.MechanismHarmony, Epsilon: 1, Dim: 2},
		Shards: 2,
	}
}

func sketchCfg() CollectionConfig {
	return CollectionConfig{
		Config: task.Config{Task: task.TypeSketch, Mechanism: cmstask.MechanismCMS, Epsilon: 2, Width: 32, Hashes: 4, SketchSeed: 9},
		Shards: 2,
	}
}

// fillMean drives n harmony reports into a collection's aggregator.
func fillMean(t *testing.T, c *Collection, seed uint64, n int) {
	t.Helper()
	client, err := meantask.NewClient(c.Config().Config, ldprand.NewSplitMix64(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(seed + 1)
	for i := 0; i < n; i++ {
		x := make([]float64, client.Dim())
		for j := range x {
			x[j] = 2*ldprand.Float64(src) - 1
		}
		raw, err := client.Report(x)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Aggregator().Add(raw); err != nil {
			t.Fatal(err)
		}
	}
}

// fillSketch drives n CMS reports into a collection's aggregator.
func fillSketch(t *testing.T, c *Collection, seed uint64, n int) {
	t.Helper()
	client, err := cmstask.NewClient(c.Config().Config, ldprand.NewSplitMix64(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(seed + 1)
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		raw, err := client.Report([]byte(words[ldprand.Intn(src, len(words))]))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Aggregator().Add(raw); err != nil {
			t.Fatal(err)
		}
	}
}

// TestThreeTaskServerRestartCycle is the acceptance-criteria test: one
// server serving freq, mean and sketch collections concurrently, whose
// checkpoint → kill → restart cycle restores all three with
// byte-identical /estimate responses.
func TestThreeTaskServerRestartCycle(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	if _, err := reg.Create(DefaultCollection, FreqCollectionConfig(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, 2)); err != nil {
		t.Fatal(err)
	}
	svc := NewMultiService(reg, store)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// The mean and sketch collections are created over the HTTP
	// surface, task tag and all.
	for _, body := range []string{
		`{"name":"screen-time","task":"mean","mechanism":"harmony","epsilon":1,"dim":2,"shards":2}`,
		`{"name":"words","task":"sketch","mechanism":"CMS","epsilon":2,"width":32,"hashes":4,"sketch_seed":9,"shards":2}`,
	} {
		resp := postJSON(t, ts.URL+"/collections", []byte(body))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create status %d for %s", resp.StatusCode, body)
		}
		var st StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.Task != "mean" && st.Task != "sketch" {
			t.Fatalf("created status %+v", st)
		}
	}

	// Ingest into all three through the HTTP data plane.
	fc, _ := NewClient(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, ldprand.NewSplitMix64(21))
	for i := 0; i < 120; i++ {
		env, err := fc.Report(i % 8)
		if err != nil {
			t.Fatal(err)
		}
		if resp := postJSON(t, ts.URL+"/report", mustRaw(t, env)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("freq report status %d", resp.StatusCode)
		}
	}
	mc, err := meantask.NewClient(task.Config{Task: "mean", Mechanism: "harmony", Epsilon: 1, Dim: 2}, ldprand.NewSplitMix64(22))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(23)
	var meanBatch []json.RawMessage
	for i := 0; i < 100; i++ {
		raw, err := mc.Report([]float64{2*ldprand.Float64(src) - 1, 2*ldprand.Float64(src) - 1})
		if err != nil {
			t.Fatal(err)
		}
		meanBatch = append(meanBatch, raw)
	}
	if resp := postJSON(t, ts.URL+"/collections/screen-time/report/batch", mustRaw(t, meanBatch)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("mean batch status %d", resp.StatusCode)
	}
	sc, err := cmstask.NewClient(task.Config{Task: "sketch", Mechanism: "CMS", Epsilon: 2, Width: 32, Hashes: 4, SketchSeed: 9}, ldprand.NewSplitMix64(24))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		raw, err := sc.Report([]byte("hot-item"))
		if err != nil {
			t.Fatal(err)
		}
		if resp := postJSON(t, ts.URL+"/collections/words/report", raw); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("sketch report status %d", resp.StatusCode)
		}
	}

	urls := []string{
		"/estimate?top=3",
		"/collections/screen-time/estimate",
		"/collections/words/estimate?item=hot-item&item=cold-item",
	}
	before := make([]string, len(urls))
	for i, u := range urls {
		before[i] = getBody(t, ts.URL+u)
	}
	// Sanity: the mean estimate parses and carries the harmony shape.
	var er EstimateResponse
	if err := json.Unmarshal([]byte(before[1]), &er); err != nil {
		t.Fatal(err)
	}
	if er.Task != "mean" || er.Reports != 100 {
		t.Fatalf("mean estimate response %+v", er)
	}
	var mr meantask.EstimateResult
	if err := json.Unmarshal(er.Estimate, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Dim != 2 || len(mr.Means) != 2 {
		t.Fatalf("mean payload %+v", mr)
	}

	if err := store.SaveAll(reg); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// "Kill" the process; restore from disk into a fresh stack.
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewCollectionRegistry()
	restored, err := store2.Load(reg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 3 {
		t.Fatalf("restored %v, want 3 collections", restored)
	}
	ts2 := httptest.NewServer(NewMultiService(reg2, store2).Handler())
	defer ts2.Close()
	for i, u := range urls {
		if after := getBody(t, ts2.URL+u); after != before[i] {
			t.Fatalf("%s changed across restart:\n%s\n%s", u, before[i], after)
		}
	}

	// Restored collections keep collecting.
	c, ok := reg2.Get("screen-time")
	if !ok {
		t.Fatal("screen-time not restored")
	}
	fillMean(t, c, 31, 10)
	if got := c.Aggregator().Collected(); got != 110 {
		t.Fatalf("post-restore collected %d want 110", got)
	}
}

// TestPreTaskSnapshotRestoresAsFreq is the backward-compatibility
// satellite: a PR 3-format snapshot — no version field, no task tag,
// state blob written by a bare frequency oracle — restores as a freq
// collection with bit-identical estimates.
func TestPreTaskSnapshotRestoresAsFreq(t *testing.T) {
	dir := t.TempDir()

	// Build the legacy state exactly as the pre-task pipeline did: a
	// bare oracle whose MarshalState is the snapshot's state blob.
	oracle, err := NewOracle(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, ldprand.NewSplitMix64(41))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 250; i++ {
		oracle.Collect(i % 8)
	}
	state, err := oracle.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	// The exact PR 3 on-disk shape: name, untagged config, state.
	legacy := []byte(`{"name":"legacy","config":{"mechanism":"OLH","epsilon":2,"domain":8,"shards":3},"state":` + string(state) + `}`)
	if err := os.WriteFile(filepath.Join(dir, "legacy.json"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	restored, err := store.Load(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || restored[0] != "legacy" {
		t.Fatalf("restored %v", restored)
	}
	c, _ := reg.Get("legacy")
	if c.Aggregator().TaskType() != task.TypeFreq {
		t.Fatalf("legacy snapshot restored as task %q", c.Aggregator().TaskType())
	}
	// The restored config is normalized to an explicit tag, so config
	// comparisons (ldpd's restored-vs-flags check) and re-written
	// snapshots don't carry a phantom untagged variant.
	if c.Config().Task != task.TypeFreq {
		t.Fatalf("restored config task %q, want %q", c.Config().Task, task.TypeFreq)
	}
	if c.Config() != FreqCollectionConfig(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, 3) {
		t.Fatalf("restored config %+v not equal to its tagged equivalent", c.Config())
	}
	if c.Aggregator().Collected() != 250 {
		t.Fatalf("collected %d want 250", c.Aggregator().Collected())
	}
	if !reflect.DeepEqual(counts(t, c), oracle.EstimateCounts()) {
		t.Fatal("legacy snapshot estimates differ from the originating oracle")
	}

	// Re-checkpointing writes the current (tagged, versioned) envelope,
	// which must round-trip to the same estimates.
	fill(t, c, 43, 10) // advance the epoch so Save writes
	want := counts(t, c)
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	snap := readSnapshotFile(t, filepath.Join(dir, "legacy.json"))
	if snap.Version != SnapshotVersion {
		t.Fatalf("re-written snapshot has version %d want %d", snap.Version, SnapshotVersion)
	}
	if snap.Config.Task != task.TypeFreq {
		t.Fatalf("re-written snapshot config task %q, want %q (version-2 configs name their task)", snap.Config.Task, task.TypeFreq)
	}
	reg2 := NewCollectionRegistry()
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store2.Load(reg2); err != nil {
		t.Fatal(err)
	}
	c2, _ := reg2.Get("legacy")
	if !reflect.DeepEqual(counts(t, c2), want) {
		t.Fatal("tagged re-checkpoint drifted from the legacy restore")
	}
}

// TestTaggedSnapshotRoundTripsPerTask pins the checkpoint cycle for
// each new task family at the store level.
func TestTaggedSnapshotRoundTripsPerTask(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	cm, err := reg.Create("means", meanCfg())
	if err != nil {
		t.Fatal(err)
	}
	fillMean(t, cm, 51, 150)
	cs, err := reg.Create("sketches", sketchCfg())
	if err != nil {
		t.Fatal(err)
	}
	fillSketch(t, cs, 52, 150)
	if err := store.SaveAll(reg); err != nil {
		t.Fatal(err)
	}

	reg2 := NewCollectionRegistry()
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store2.Load(reg2); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"means", "sketches"} {
		before, _ := reg.Get(name)
		after, ok := reg2.Get(name)
		if !ok {
			t.Fatalf("%s not restored", name)
		}
		if after.Config() != before.Config() {
			t.Fatalf("%s config %+v want %+v", name, after.Config(), before.Config())
		}
		if after.Aggregator().Collected() != before.Aggregator().Collected() {
			t.Fatalf("%s collected %d want %d", name, after.Aggregator().Collected(), before.Aggregator().Collected())
		}
		query := map[string][]string{"item": {"alpha", "delta"}}
		b, err := before.Aggregator().Estimate(query)
		if err != nil {
			t.Fatal(err)
		}
		a, err := after.Aggregator().Estimate(query)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s estimate changed across restore:\n%s\n%s", name, b, a)
		}
	}
}

// TestFutureSnapshotVersionRefused pins the version guard: a snapshot
// from a newer build is quarantined instead of being misread.
func TestFutureSnapshotVersionRefused(t *testing.T) {
	dir := t.TempDir()
	blob := []byte(`{"version":99,"name":"tomorrow","config":{"mechanism":"GRR","epsilon":1,"domain":4},"state":null}`)
	if err := os.WriteFile(filepath.Join(dir, "tomorrow.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := store.Load(NewCollectionRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("restored %v from a future-version snapshot", restored)
	}
	if _, err := os.Stat(filepath.Join(dir, "tomorrow.json"+corruptExt)); err != nil {
		t.Fatal("future-version snapshot was not quarantined:", err)
	}
}

// plainAgg is a minimal task.Aggregator WITHOUT the optional
// task.Preparer capability, registered under a test-only type name so
// the sharded aggregator's locked-Add fallback path stays covered
// (every built-in adapter implements Preparer, so nothing else
// exercises it).
type plainAgg struct{ sum, n int }

func init() {
	task.Register("plain-test", func(cfg task.Config) (task.Aggregator, error) {
		return &plainAgg{}, nil
	})
}

type plainReport struct {
	V int `json:"v"`
}

func (p *plainAgg) Type() string { return "plain-test" }
func (p *plainAgg) Add(raw json.RawMessage) error {
	var r plainReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return err
	}
	if r.V < 0 {
		return fmt.Errorf("plain-test: negative report")
	}
	p.sum += r.V
	p.n++
	return nil
}
func (p *plainAgg) AddBatch(raws []json.RawMessage) (int, error) { return task.AddAll(p, raws) }
func (p *plainAgg) Collected() int                               { return p.n }
func (p *plainAgg) ReportBits() int                              { return 32 }
func (p *plainAgg) Reset()                                       { p.sum, p.n = 0, 0 }
func (p *plainAgg) Merge(other task.Aggregator) error {
	o, ok := other.(*plainAgg)
	if !ok {
		return task.MergeTypeError(p, other)
	}
	p.sum += o.sum
	p.n += o.n
	return nil
}
func (p *plainAgg) Snapshot() task.Aggregator { cp := *p; return &cp }
func (p *plainAgg) MarshalState() ([]byte, error) {
	return json.Marshal(map[string]int{"sum": p.sum, "n": p.n})
}
func (p *plainAgg) UnmarshalState(data []byte) error {
	var st struct{ Sum, N int }
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	p.sum, p.n = st.Sum, st.N
	return nil
}
func (p *plainAgg) Estimate(q url.Values) (json.RawMessage, error) {
	return json.Marshal(map[string]int{"sum": p.sum})
}

// TestShardedFallbackWithoutPreparer pins the locked-Add path for task
// adapters that implement only the core interface.
func TestShardedFallbackWithoutPreparer(t *testing.T) {
	agg, err := NewShardedAggregator(task.Config{Task: "plain-test"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.prepare != nil {
		t.Fatal("non-Preparer adapter produced a prepare hook")
	}
	if err := agg.Add(json.RawMessage(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}
	batch := []json.RawMessage{
		json.RawMessage(`{"v":1}`),
		json.RawMessage(`{"v":-1}`), // rejected
		json.RawMessage(`{"v":2}`),
	}
	accepted, err := agg.AddBatch(batch)
	if accepted != 2 || err == nil {
		t.Fatalf("accepted %d err %v", accepted, err)
	}
	if agg.Collected() != 3 || agg.collectedWalk() != 3 {
		t.Fatalf("collected %d / walk %d want 3", agg.Collected(), agg.collectedWalk())
	}
	merged, err := agg.Merged()
	if err != nil {
		t.Fatal(err)
	}
	est, err := merged.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(est) != `{"sum":6}` {
		t.Fatalf("estimate %s", est)
	}
	if agg.ReportBits() != 32 {
		t.Fatalf("report bits %d", agg.ReportBits())
	}
}

// TestBuiltinAdaptersArePreparers pins that every built-in task family
// takes the parse-outside-the-lock fast path.
func TestBuiltinAdaptersArePreparers(t *testing.T) {
	for _, cfg := range []task.Config{
		FreqTaskConfig(MechanismGRR, PrivacyParams{Epsilon: 1, Domain: 4}),
		meanCfg().Config,
		sketchCfg().Config,
	} {
		agg, err := NewShardedAggregator(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		if agg.prepare == nil {
			t.Errorf("task %s does not implement task.Preparer", cfg.Type())
		}
	}
}

// TestCreateRejectsTaskResourceBombs extends the remote-surface caps to
// the new task families' sizing axes.
func TestCreateRejectsTaskResourceBombs(t *testing.T) {
	_, ts := newTestServer(t, MechanismGRR, 2)
	bombs := []string{
		`{"name":"m1","task":"mean","mechanism":"harmony","epsilon":1,"dim":100000}`,
		`{"name":"s1","task":"sketch","mechanism":"CMS","epsilon":1,"width":100000,"hashes":4}`,
		`{"name":"s2","task":"sketch","mechanism":"CMS","epsilon":1,"width":1024,"hashes":100000}`,
		// Each axis within its cap, but width × hashes × shards is not.
		`{"name":"s3","task":"sketch","mechanism":"CMS","epsilon":1,"width":65536,"hashes":1024,"shards":16}`,
		`{"name":"u1","task":"nope","mechanism":"GRR","epsilon":1,"domain":8}`,
	}
	for _, body := range bombs {
		resp := postJSON(t, ts.URL+"/collections", []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bomb %s: status %d want 400", body, resp.StatusCode)
		}
	}
	// Realistic task configurations pass.
	ok := []string{
		`{"name":"m-ok","task":"mean","mechanism":"duchi","epsilon":1}`,
		`{"name":"s-ok","task":"sketch","mechanism":"HCMS","epsilon":2,"width":1024,"hashes":16,"shards":8}`,
	}
	for _, body := range ok {
		resp := postJSON(t, ts.URL+"/collections", []byte(body))
		if resp.StatusCode != http.StatusCreated {
			t.Errorf("realistic config %s: status %d want 201", body, resp.StatusCode)
		}
	}
}
