// Checkpoint persistence for collection servers: each collection's
// merged aggregate state is written as one JSON snapshot file under a
// state directory, atomically (write a temp file, fsync, rename), and
// restored on startup so a restarted server resumes with exactly its
// pre-restart counts. Snapshots are small — one serialized oracle per
// collection, independent of how many reports it absorbed — which is
// what makes frequent checkpointing affordable.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/task"
)

// snapshotExt is the suffix of snapshot files in the state directory;
// anything else in the directory is ignored on load.
const snapshotExt = ".json"

// SnapshotVersion is the current checkpoint envelope version. Version
// history:
//
//	0 (absent) — pre-task checkpoints: the config carries no task tag
//	             (all collections were frequency surveys) and the state
//	             blob is a freq oracle state. Still restored: the
//	             missing tag resolves to the freq task, whose adapter
//	             state format is the oracle state byte for byte.
//	2          — task-tagged checkpoints: the config names a task type
//	             and the state blob is that task's adapter state.
//	3          — phase-aware checkpoints: for phased (multi-round)
//	             tasks the envelope additionally records the round
//	             number and published frontier the state was captured
//	             at, cross-checked on restore so a protocol never
//	             silently resumes at the wrong round. One-shot tasks
//	             carry neither field, and version-2 snapshots restore
//	             unchanged (the state formats are identical).
//
// Versions above the current one are refused at load: a newer build's
// snapshot may carry semantics this build would silently misread.
const SnapshotVersion = 3

// CollectionSnapshot is the on-disk format of one collection: its
// configuration (enough to rebuild the aggregator, task tag included)
// and the serialized merged task state (enough to rebuild the counts).
// For phased tasks Round and Frontier record the protocol position the
// state was captured at — Frontier is advisory (operators can read the
// protocol's standing straight off the file), Round is verified
// against the restored state at load.
type CollectionSnapshot struct {
	Version  int              `json:"version,omitempty"`
	Name     string           `json:"name"`
	Config   CollectionConfig `json:"config"`
	State    json.RawMessage  `json:"state"`
	Round    int              `json:"round,omitempty"`
	Frontier json.RawMessage  `json:"frontier,omitempty"`
}

// Store persists collection snapshots in one directory, one file per
// collection. It is safe for concurrent use; per-collection epochs are
// tracked so checkpointing an unchanged collection skips the disk
// write entirely.
type Store struct {
	dir string

	mu    sync.Mutex
	saved map[string]uint64    // collection -> epoch at last successful save
	names map[string]*nameLock // per-collection lock serializing Save vs Remove
}

// nameLock is a reference-counted mutex: the map entry is reclaimed
// when the last holder releases it, so create/delete cycles over fresh
// names do not grow Store.names forever.
type nameLock struct {
	mu   sync.Mutex
	refs int
}

// NewStore opens (creating if needed) a snapshot directory and sweeps
// temp files orphaned by a crash mid-checkpoint — no checkpoint is in
// flight at open time, so every *.tmp present is a stray.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: state dir: %w", err)
	}
	if strays, err := filepath.Glob(filepath.Join(dir, ".checkpoint-*.tmp")); err == nil {
		for _, s := range strays {
			_ = os.Remove(s)
		}
	}
	return &Store{
		dir:   dir,
		saved: make(map[string]uint64),
		names: make(map[string]*nameLock),
	}, nil
}

// lockName acquires the lock serializing disk operations on one
// collection's snapshot, so checkpoints of different collections (and
// deletes of unrelated ones) never queue behind each other's disk I/O.
// Release with unlockName. The reference count is taken before
// blocking on the mutex, so an entry is only reclaimed once every
// holder and waiter is gone.
func (st *Store) lockName(name string) *nameLock {
	st.mu.Lock()
	l, ok := st.names[name]
	if !ok {
		l = new(nameLock)
		st.names[name] = l
	}
	l.refs++
	st.mu.Unlock()
	l.mu.Lock()
	return l
}

// unlockName releases a lock taken with lockName, dropping the map
// entry when no one else holds or awaits it.
func (st *Store) unlockName(name string, l *nameLock) {
	l.mu.Unlock()
	st.mu.Lock()
	l.refs--
	if l.refs == 0 {
		delete(st.names, name)
	}
	st.mu.Unlock()
}

// Dir returns the state directory path.
func (st *Store) Dir() string { return st.dir }

// HasSnapshot reports whether a snapshot file exists for the name. It
// takes no locks and allocates no lock-map entry, so it is safe to
// call with client-supplied names to decide whether Remove is worth
// invoking at all.
func (st *Store) HasSnapshot(name string) bool {
	if ValidateCollectionName(name) != nil {
		return false
	}
	_, err := os.Stat(st.path(name))
	return err == nil
}

func (st *Store) path(name string) string {
	return filepath.Join(st.dir, name+snapshotExt)
}

// Save checkpoints one collection. The write is atomic — a temp file
// in the same directory is renamed over the target — so a crash
// mid-checkpoint leaves the previous snapshot intact, never a torn
// file. Saving a collection whose epoch is unchanged since the last
// successful save is a no-op.
//
// The registry is consulted under the collection's snapshot lock,
// which covers the whole write: a collection that was deleted (or
// deleted and re-created under the same name) between the caller
// obtaining c and this call is skipped rather than written, so a
// checkpoint racing with DELETE can never resurrect a removed snapshot
// — Remove holds the same lock for the unlink.
func (st *Store) Save(reg *CollectionRegistry, c *Collection) error {
	// The epoch is read before the state: mutations racing with the
	// marshal may or may not be captured, but they advance the live
	// epoch past this one, so the next Save re-writes rather than
	// wrongly skipping.
	epoch := c.agg.Epoch()
	l := st.lockName(c.name)
	defer st.unlockName(c.name, l)
	if cur, ok := reg.Get(c.name); !ok || cur != c {
		return nil // deleted or replaced meanwhile; not ours to persist
	}
	st.mu.Lock()
	saved, ok := st.saved[c.name]
	st.mu.Unlock()
	if ok && saved == epoch {
		return nil
	}

	// State, round and frontier all come from ONE merged view: a round
	// advance racing the checkpoint lands entirely in this snapshot or
	// entirely in the next, never as a state from round r+1 under a
	// round-r envelope.
	merged, err := c.agg.MergedCached()
	if err != nil {
		return fmt.Errorf("core: checkpoint %q: %w", c.name, err)
	}
	state, err := merged.MarshalState()
	if err != nil {
		return fmt.Errorf("core: checkpoint %q: %w", c.name, err)
	}
	snap := CollectionSnapshot{Version: SnapshotVersion, Name: c.name, Config: c.cfg, State: state}
	if p, ok := merged.(task.Phased); ok {
		snap.Round = p.Round()
		if snap.Frontier, err = p.Frontier(); err != nil {
			return fmt.Errorf("core: checkpoint %q: %w", c.name, err)
		}
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("core: checkpoint %q: %w", c.name, err)
	}
	if err := st.writeAtomic(st.path(c.name), blob); err != nil {
		return fmt.Errorf("core: checkpoint %q: %w", c.name, err)
	}
	st.mu.Lock()
	st.saved[c.name] = epoch
	st.mu.Unlock()
	return nil
}

// writeAtomic writes data to path via a same-directory temp file and
// rename, syncing the file before the rename and the directory after
// it, so both the snapshot's bytes and its directory entry are durable
// by the time the call returns.
func (st *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(st.dir, ".checkpoint-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return st.syncDir()
}

// syncDir fsyncs the state directory, making the latest rename or
// unlink durable — without it a power loss can roll the directory
// entry back even though the call already reported success.
func (st *Store) syncDir() error {
	d, err := os.Open(st.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SaveAll checkpoints every collection in the registry, continuing
// past individual failures and joining the errors.
func (st *Store) SaveAll(reg *CollectionRegistry) error {
	var errs []error
	for _, c := range reg.Collections() {
		if err := st.Save(reg, c); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Remove deletes the named collection's snapshot file unless the file
// belongs to a live collection. Callers must deregister the collection
// first; the registry re-check under the snapshot lock then covers the
// race where a same-named collection is re-created (and checkpointed)
// between the caller's deregistration and this unlink. A live
// case-variant counts only when its snapshot path resolves to the same
// file (a case-insensitive filesystem): on a case-sensitive one the
// variant's file is distinct and the orphan must still be unlinked, or
// it would collide with the variant's snapshot at the next Load. The
// saved-epoch entry is always cleared, so any later Save for the name
// re-writes rather than skipping on a stale epoch match.
func (st *Store) Remove(reg *CollectionRegistry, name string) error {
	if err := ValidateCollectionName(name); err != nil {
		return err
	}
	l := st.lockName(name)
	defer st.unlockName(name, l)
	st.mu.Lock()
	delete(st.saved, name)
	st.mu.Unlock()
	if live, ok := reg.FoldedName(name); ok {
		if live == name {
			return nil // re-created meanwhile; its snapshot owns the file
		}
		li, lerr := os.Stat(st.path(live))
		ni, nerr := os.Stat(st.path(name))
		if lerr == nil && nerr == nil && os.SameFile(li, ni) {
			return nil // one shared file on a case-insensitive filesystem
		}
	}
	if err := os.Remove(st.path(name)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("core: remove snapshot %q: %w", name, err)
	}
	return st.syncDir()
}

// Load restores every snapshot in the state directory into the
// registry: each file re-creates its collection with the persisted
// configuration and restores the aggregate state exactly. It returns
// the restored collection names. Snapshots whose name collides with an
// already-registered collection are an error (the caller decides which
// side wins by ordering Load against its own Creates).
func (st *Store) Load(reg *CollectionRegistry) ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("core: state dir: %w", err)
	}
	var restored []string
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), snapshotExt)
		if e.IsDir() || !ok || ValidateCollectionName(name) != nil {
			continue // temp files, strays — not ours to interpret
		}
		blob, err := os.ReadFile(filepath.Join(st.dir, e.Name()))
		if err != nil {
			return restored, fmt.Errorf("core: read snapshot %q: %w", name, err)
		}
		var snap CollectionSnapshot
		if err := json.Unmarshal(blob, &snap); err != nil {
			return restored, fmt.Errorf("core: snapshot %q: %w", name, err)
		}
		if snap.Name != name {
			return restored, fmt.Errorf("core: snapshot file %q names collection %q", e.Name(), snap.Name)
		}
		if snap.Version > SnapshotVersion {
			return restored, fmt.Errorf("core: snapshot %q has version %d, newer than this build's %d", name, snap.Version, SnapshotVersion)
		}
		c, err := reg.Create(name, snap.Config)
		if errors.Is(err, ErrCollectionExists) {
			// Two snapshots colliding up to letter case (an orphan a
			// failed delete left beside its re-created variant, or a
			// state dir written by an older build). Failing startup
			// would hold every other collection hostage; instead the
			// loser is set aside under a .conflict suffix — preserved
			// for the operator, ignored by future Loads.
			aside := filepath.Join(st.dir, e.Name()+".conflict")
			if rerr := os.Rename(filepath.Join(st.dir, e.Name()), aside); rerr != nil {
				return restored, fmt.Errorf("core: restore %q: %w (and could not set snapshot aside: %v)", name, err, rerr)
			}
			_ = st.syncDir()
			continue
		}
		if err != nil {
			return restored, fmt.Errorf("core: restore %q: %w", name, err)
		}
		if len(snap.State) > 0 {
			if err := c.agg.RestoreState(snap.State); err != nil {
				reg.Delete(name) // don't leave a half-restored collection serving
				return restored, fmt.Errorf("core: restore %q: %w", name, err)
			}
		}
		// Cross-check the envelope's recorded round against the
		// restored state: a mismatch means the file was assembled from
		// two different protocol positions (hand-edited, or written by
		// a buggy tool) and resuming it would split users across
		// rounds.
		if c.agg.Phased() && snap.Round != c.agg.Round() {
			reg.Delete(name)
			return restored, fmt.Errorf("core: restore %q: snapshot envelope says round %d but the state restores to round %d",
				name, snap.Round, c.agg.Round())
		}
		st.mu.Lock()
		st.saved[name] = c.agg.Epoch()
		st.mu.Unlock()
		restored = append(restored, name)
	}
	return restored, nil
}
