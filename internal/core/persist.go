// Checkpoint persistence for collection servers: each collection's
// merged aggregate state is written as one checksummed JSON snapshot
// file under a state directory, atomically (write a temp file, fsync,
// rename), and restored on startup so a restarted server resumes with
// exactly its pre-restart counts. Snapshots are small — one serialized
// oracle per collection, independent of how many reports it absorbed —
// which is what makes frequent checkpointing affordable.
//
// The store also owns each collection's write-ahead journal (see
// journal.go): Save rotates the journal to a fresh segment before
// capturing state, records the rotation point in the snapshot, and
// drops the superseded segments once the snapshot is durable; Load
// replays the surviving segments on top of the restored snapshot.
// Together they make the acked-report invariant hold across crashes:
// what a restarted server serves is exactly what it acknowledged.
//
// Load never refuses startup over one bad file: a snapshot that fails
// its checksum, does not parse, or cannot be restored is set aside
// under a .corrupt suffix — preserved for the operator, ignored by
// future Loads — and every other collection is restored normally.
package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/fsio"
	"repro/internal/task"
)

// snapshotExt is the suffix of snapshot files in the state directory;
// anything else in the directory is ignored on load.
const snapshotExt = ".json"

// corruptExt marks a file Load quarantined: it failed its checksum,
// did not parse, or could not be restored. Appended to the original
// name (snapshot.json.corrupt, name.journal.000002.corrupt), so the
// operator can see what the file was.
const corruptExt = ".corrupt"

// SnapshotVersion is the current checkpoint envelope version. Version
// history:
//
//	0 (absent) — pre-task checkpoints: the config carries no task tag
//	             (all collections were frequency surveys) and the state
//	             blob is a freq oracle state. Still restored: the
//	             missing tag resolves to the freq task, whose adapter
//	             state format is the oracle state byte for byte.
//	2          — task-tagged checkpoints: the config names a task type
//	             and the state blob is that task's adapter state.
//	3          — phase-aware checkpoints: for phased (multi-round)
//	             tasks the envelope additionally records the round
//	             number and published frontier the state was captured
//	             at, cross-checked on restore so a protocol never
//	             silently resumes at the wrong round. One-shot tasks
//	             carry neither field, and version-2 snapshots restore
//	             unchanged (the state formats are identical).
//	4          — checksummed checkpoints: the file is a wrapper
//	             {version, crc32c, snapshot} whose CRC32C covers the
//	             inner snapshot bytes verbatim, so bit rot is detected
//	             rather than restored. The inner snapshot additionally
//	             records the journal rotation point (journal_gen) and
//	             the acknowledged batch IDs (batches) that make
//	             client retries idempotent across restarts. Versions
//	             0–3 (bare snapshots) still restore unchanged.
//	5          — binary-state checkpoints: when the collection's task
//	             implements task.BinaryStater, the file is a binary
//	             container — the snapshotMagic prefix, a CRC32C, the
//	             JSON envelope header (everything but the state, with
//	             enc recording the state encoding) and the raw binary
//	             state bytes — so a CMS-scale counter matrix is never
//	             printed as JSON numbers. Tasks without a binary codec
//	             keep writing version-4 files byte for byte, and
//	             versions 0–4 still restore bit-identically.
//
// Versions above the current one are quarantined at load: a newer
// build's snapshot may carry semantics this build would silently
// misread.
const SnapshotVersion = 5

// snapshotVersionJSON is the checksummed JSON wrapper version, still
// written for collections whose task has no binary state codec.
const snapshotVersionJSON = 4

// snapshotMagic prefixes version-5 binary checkpoint containers. It is
// not valid JSON, so older builds quarantine (never misparse) the file,
// and the decoder dispatches on it before touching any JSON machinery.
var snapshotMagic = []byte("LDPSNAP5")

// CollectionSnapshot is the on-disk format of one collection: its
// configuration (enough to rebuild the aggregator, task tag included)
// and the serialized merged task state (enough to rebuild the counts).
// For phased tasks Round and Frontier record the protocol position the
// state was captured at — Frontier is advisory (operators can read the
// protocol's standing straight off the file), Round is verified
// against the restored state at load. JournalGen is the first journal
// generation NOT folded into this snapshot: restart replays segments
// at or above it and deletes the rest. Batches carries the dedup
// memory of acknowledged batch IDs.
type CollectionSnapshot struct {
	Version    int              `json:"version,omitempty"`
	Name       string           `json:"name"`
	Config     CollectionConfig `json:"config"`
	State      json.RawMessage  `json:"state,omitempty"`
	Round      int              `json:"round,omitempty"`
	Frontier   json.RawMessage  `json:"frontier,omitempty"`
	JournalGen int              `json:"journal_gen,omitempty"`
	Batches    []BatchMark      `json:"batches,omitempty"`
	// Enc records the State encoding: EncBinary for the task's binary
	// state layout (version-5 containers), absent for JSON. In a
	// version-5 file this struct sans State is the JSON header and
	// State holds the raw bytes that follow it.
	Enc string `json:"enc,omitempty"`
}

// snapshotFile is the version-4 on-disk wrapper: the inner snapshot's
// bytes verbatim plus their CRC32C. Keeping the checksum outside the
// snapshot (rather than as a field inside it) means verification is a
// plain Checksum call over raw bytes, with no re-marshaling step whose
// field ordering would have to be canonical.
type snapshotFile struct {
	Version  int             `json:"version"`
	CRC32C   uint32          `json:"crc32c"`
	Snapshot json.RawMessage `json:"snapshot"`
}

// Store persists collection snapshots in one directory, one file per
// collection, and manages the write-ahead journals beside them. It is
// safe for concurrent use; per-collection epochs are tracked so
// checkpointing an unchanged collection skips the disk write entirely.
type Store struct {
	dir         string
	fs          fsio.FS
	journalSync string

	// flushSink receives the deltas re-cut while replaying relay flush
	// frames (see SetFlushSink). Set once before Load, never mutated
	// after, so replay reads it without locking.
	flushSink FlushSink

	// saveGate, when set, can veto a collection's checkpoint (see
	// SetSaveGate). Set once before serving, never mutated after, so
	// Save reads it without locking.
	saveGate func(collection string) error

	mu     sync.Mutex
	saved  map[string]uint64    // collection -> epoch at last successful save
	names  map[string]*nameLock // per-collection lock serializing Save vs Remove
	health map[string]*saveHealth
	sizes  map[string]CheckpointInfo // last written (or restored) snapshot per collection
}

// CheckpointInfo describes a collection's last durable snapshot — its
// on-disk size and state encoding — served by /status so operators can
// see what the binary codec is buying.
type CheckpointInfo struct {
	Bytes int64  `json:"checkpoint_bytes"`
	Enc   string `json:"checkpoint_enc,omitempty"` // EncBinary or absent (JSON)
}

// saveHealth tracks one collection's checkpoint failures since its
// last success.
type saveHealth struct {
	failures int
	lastErr  string
}

// CollectionHealth is one collection's durability standing, served by
// GET /healthz: how many checkpoints in a row have failed (0 = the
// last one succeeded), what the last failure said, and how much
// journaled-but-not-checkpointed work a crash right now would have to
// replay. JournalBroken means appends are failing — nothing is being
// acknowledged — until a checkpoint resets the journal.
type CollectionHealth struct {
	SaveFailures     int    `json:"save_failures,omitempty"`
	LastSaveError    string `json:"last_save_error,omitempty"`
	JournalLagFrames int    `json:"journal_lag_frames"`
	JournalLagBytes  int64  `json:"journal_lag_bytes"`
	JournalBroken    bool   `json:"journal_broken,omitempty"`
}

// nameLock is a reference-counted mutex: the map entry is reclaimed
// when the last holder releases it, so create/delete cycles over fresh
// names do not grow Store.names forever.
type nameLock struct {
	mu   sync.Mutex
	refs int
}

// NewStore opens (creating if needed) a snapshot directory on the real
// filesystem with the default (sync-every-append) journal policy.
func NewStore(dir string) (*Store, error) {
	return NewStoreFS(dir, fsio.OS, JournalSyncEvery)
}

// NewStoreFS opens a snapshot directory over an explicit filesystem —
// the seam the crash-consistency tests inject faults through — with
// the given journal sync policy, and sweeps temp files orphaned by a
// crash mid-checkpoint (no checkpoint is in flight at open time, so
// every *.tmp present is a stray).
func NewStoreFS(dir string, fsys fsio.FS, journalSync string) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: state dir: %w", err)
	}
	strays, err := fsys.Glob(filepath.Join(dir, ".checkpoint-*.tmp"))
	if err != nil {
		return nil, fmt.Errorf("core: sweeping stray checkpoint temp files: %w", err)
	}
	for _, s := range strays {
		_ = fsys.Remove(s) //ldplint:ok fsiocheck stray temp from an interrupted checkpoint; harmless if it survives
	}
	return &Store{
		dir:         dir,
		fs:          fsys,
		journalSync: journalSync,
		saved:       make(map[string]uint64),
		names:       make(map[string]*nameLock),
		health:      make(map[string]*saveHealth),
		sizes:       make(map[string]CheckpointInfo),
	}, nil
}

// LastCheckpoint returns the size and encoding of the collection's
// last written (or startup-restored) snapshot, if one is known.
func (st *Store) LastCheckpoint(name string) (CheckpointInfo, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	info, ok := st.sizes[name]
	return info, ok
}

// lockName acquires the lock serializing disk operations on one
// collection's snapshot, so checkpoints of different collections (and
// deletes of unrelated ones) never queue behind each other's disk I/O.
// Release with unlockName. The reference count is taken before
// blocking on the mutex, so an entry is only reclaimed once every
// holder and waiter is gone.
func (st *Store) lockName(name string) *nameLock {
	st.mu.Lock()
	l, ok := st.names[name]
	if !ok {
		l = new(nameLock)
		st.names[name] = l
	}
	l.refs++
	st.mu.Unlock()
	l.mu.Lock()
	return l
}

// unlockName releases a lock taken with lockName, dropping the map
// entry when no one else holds or awaits it.
func (st *Store) unlockName(name string, l *nameLock) {
	l.mu.Unlock()
	st.mu.Lock()
	l.refs--
	if l.refs == 0 {
		delete(st.names, name)
	}
	st.mu.Unlock()
}

// Dir returns the state directory path.
func (st *Store) Dir() string { return st.dir }

// FlushSink receives a delta re-cut during journal replay of a relay
// flush frame. The sink must durably persist the delta (the relay tier
// writes it to the outbox under the frame's idempotency key) — after
// the sink returns, replay drains the replayed state exactly as the
// live flush did.
type FlushSink func(collection string, d Delta) error

// SetFlushSink installs the relay tier's flush sink. It must be called
// before Load: a journal holding flush frames (written by a relay)
// cannot be replayed without one — replay treats that as corruption
// and truncates, preserving the bytes under .corrupt for the operator.
func (st *Store) SetFlushSink(sink FlushSink) {
	st.flushSink = sink
}

// SetSaveGate installs a predicate that can postpone a collection's
// checkpoint. A checkpoint truncates the journal, and with it any
// flush frames — for a relay, the only durable record of a cut delta
// whose outbox write failed. The relay tier gates checkpoints on
// "every cut delta is durable in the outbox": until then Save fails
// (and is retried by the checkpoint loop) rather than erasing the one
// copy a crash could still recover. Must be set before serving.
func (st *Store) SetSaveGate(gate func(collection string) error) {
	st.saveGate = gate
}

// HasSnapshot reports whether a snapshot file exists for the name. It
// takes no locks and allocates no lock-map entry, so it is safe to
// call with client-supplied names to decide whether Remove is worth
// invoking at all.
func (st *Store) HasSnapshot(name string) bool {
	if ValidateCollectionName(name) != nil {
		return false
	}
	_, err := st.fs.Stat(st.path(name))
	return err == nil
}

func (st *Store) path(name string) string {
	return filepath.Join(st.dir, name+snapshotExt)
}

// Attach gives a freshly created collection its write-ahead journal.
// Segment files left behind by a deleted predecessor of the same name
// are removed (they belong to dropped state; replaying them into the
// new collection would resurrect it), and the new journal starts past
// the highest generation seen, so even an unremovable stray can never
// be confused with a live segment.
func (st *Store) Attach(c *Collection) error {
	l := st.lockName(c.name)
	defer st.unlockName(c.name, l)
	segs, err := journalSegments(st.fs, st.dir, c.name)
	if err != nil {
		return fmt.Errorf("core: attach journal %q: %w", c.name, err)
	}
	gen := 1
	for _, s := range segs {
		_ = st.fs.Remove(s.path) //ldplint:ok fsiocheck pre-attach segment; replay skips it via the generation floor
		if s.gen >= gen {
			gen = s.gen + 1
		}
	}
	c.walMu.Lock()
	c.journal = newJournal(st.fs, st.dir, c.name, gen, st.journalSync)
	c.walMu.Unlock()
	return nil
}

// journalIdle reports whether the collection's journal (if any) is
// healthy and fully checkpointed — the condition under which an
// unchanged-epoch Save may skip the disk write entirely.
func (c *Collection) journalIdle() bool {
	if c.journal == nil {
		return true
	}
	if c.journal.isBroken() {
		return false
	}
	frames, _ := c.journal.lag()
	return frames == 0
}

// JournalHealth returns the collection's journal lag and broken flag
// (zeros when the collection runs memory-only).
func (c *Collection) JournalHealth() (frames int, bytes int64, broken bool) {
	if c.journal == nil {
		return 0, 0, false
	}
	frames, bytes = c.journal.lag()
	return frames, bytes, c.journal.isBroken()
}

// CloseJournal closes the collection's journal file handle. Called on
// delete and shutdown; a closed journal reopens lazily on the next
// append, so closing is never a correctness event.
func (c *Collection) CloseJournal() {
	c.walMu.Lock()
	defer c.walMu.Unlock()
	if c.journal != nil {
		c.journal.close()
	}
}

// Save checkpoints one collection and updates its health record. The
// write is atomic — a temp file in the same directory is renamed over
// the target — so a crash mid-checkpoint leaves the previous snapshot
// intact, never a torn file. Saving a collection whose epoch is
// unchanged since the last successful save (and whose journal is
// empty and healthy) is a no-op.
//
// The registry is consulted under the collection's snapshot lock,
// which covers the whole write: a collection that was deleted (or
// deleted and re-created under the same name) between the caller
// obtaining c and this call is skipped rather than written, so a
// checkpoint racing with DELETE can never resurrect a removed snapshot
// — Remove holds the same lock for the unlink.
func (st *Store) Save(reg *CollectionRegistry, c *Collection) error {
	err := st.save(reg, c)
	st.recordSave(c.name, err)
	return err
}

func (st *Store) save(reg *CollectionRegistry, c *Collection) error {
	if st.saveGate != nil {
		if err := st.saveGate(c.name); err != nil {
			return fmt.Errorf("core: checkpoint of %q postponed: %w", c.name, err)
		}
	}
	l := st.lockName(c.name)
	defer st.unlockName(c.name, l)
	if cur, ok := reg.Get(c.name); !ok || cur != c {
		return nil // deleted or replaced meanwhile; not ours to persist
	}
	epoch := c.agg.Epoch()
	st.mu.Lock()
	saved, ok := st.saved[c.name]
	st.mu.Unlock()
	if ok && saved == epoch && c.journalIdle() {
		return nil
	}

	// The journal rotation and the state capture happen under the
	// exclusive WAL lock: no ingest is in flight, so the captured
	// state is exactly the folds of the frames in generations below
	// newGen — replay after a crash neither loses nor double-counts.
	// The epoch is re-read under the same lock for the same reason:
	// nothing can advance it until the lock drops, and mutations after
	// the drop advance it past this value, so the next Save re-writes
	// rather than wrongly skipping.
	c.walMu.Lock()
	epoch = c.agg.Epoch()
	newGen := 0
	if c.journal != nil {
		newGen = c.journal.rotate()
	}
	merged, err := c.agg.MergedCached()
	if err != nil {
		c.walMu.Unlock()
		return fmt.Errorf("core: checkpoint %q: %w", c.name, err)
	}
	state, enc, err := marshalTaskState(merged)
	if err != nil {
		c.walMu.Unlock()
		return fmt.Errorf("core: checkpoint %q: %w", c.name, err)
	}
	snap := CollectionSnapshot{
		Version:    snapshotVersionJSON,
		Name:       c.name,
		Config:     c.cfg,
		State:      state,
		JournalGen: newGen,
		Enc:        enc,
	}
	if enc == EncBinary {
		snap.Version = SnapshotVersion
	}
	if p, ok := merged.(task.Phased); ok {
		snap.Round = p.Round()
		if snap.Frontier, err = p.Frontier(); err != nil {
			c.walMu.Unlock()
			return fmt.Errorf("core: checkpoint %q: %w", c.name, err)
		}
	}
	c.dedupMu.Lock()
	snap.Batches = c.dedup.marks()
	c.dedupMu.Unlock()
	c.walMu.Unlock()

	blob, err := encodeSnapshot(snap)
	if err != nil {
		return fmt.Errorf("core: checkpoint %q: %w", c.name, err)
	}
	if err := st.writeAtomic(st.path(c.name), blob); err != nil {
		return fmt.Errorf("core: checkpoint %q: %w", c.name, err)
	}
	st.mu.Lock()
	st.saved[c.name] = epoch
	st.sizes[c.name] = CheckpointInfo{Bytes: int64(len(blob)), Enc: enc}
	st.mu.Unlock()
	// The snapshot is durable: every journal generation below newGen is
	// superseded. Dropping them also clears the journal's broken flag —
	// everything acknowledged is now in the snapshot, so the journal
	// restarts with a clean slate. A drop failure leaves stale segments
	// behind (harmless: restart skips generations below the snapshot's
	// JournalGen) but is surfaced so the health record shows it.
	if c.journal != nil {
		if err := c.journal.dropBefore(newGen); err != nil {
			return fmt.Errorf("core: checkpoint %q: dropping superseded journal segments: %w", c.name, err)
		}
	}
	return nil
}

// recordSave updates the collection's checkpoint health: a success
// clears the record, a failure increments the consecutive-failure
// count and remembers the error.
func (st *Store) recordSave(name string, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err == nil {
		delete(st.health, name)
		return
	}
	h := st.health[name]
	if h == nil {
		h = new(saveHealth)
		st.health[name] = h
	}
	h.failures++
	h.lastErr = err.Error()
}

// Health returns the collection's durability standing: checkpoint
// failure streak plus live journal lag.
func (st *Store) Health(c *Collection) CollectionHealth {
	var out CollectionHealth
	st.mu.Lock()
	if h := st.health[c.name]; h != nil {
		out.SaveFailures = h.failures
		out.LastSaveError = h.lastErr
	}
	st.mu.Unlock()
	out.JournalLagFrames, out.JournalLagBytes, out.JournalBroken = c.JournalHealth()
	return out
}

// writeAtomic writes data to path via a same-directory temp file and
// rename, syncing the file before the rename and the directory after
// it, so both the snapshot's bytes and its directory entry are durable
// by the time the call returns.
func (st *Store) writeAtomic(path string, data []byte) error {
	tmp, err := st.fs.CreateTemp(st.dir, ".checkpoint-*.tmp")
	if err != nil {
		return err
	}
	// The temp file is swept at the next Store open if this crashes;
	// after a successful rename the remove is a no-op.
	defer st.fs.Remove(tmp.Name()) //ldplint:ok fsiocheck best-effort cleanup; strays are swept at open
	if _, err := tmp.Write(data); err != nil {
		return errors.Join(err, tmp.Close())
	}
	if err := tmp.Sync(); err != nil {
		return errors.Join(err, tmp.Close())
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := st.fs.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return st.fs.SyncDir(st.dir)
}

// SaveAll checkpoints every collection in the registry, continuing
// past individual failures and joining the errors.
func (st *Store) SaveAll(reg *CollectionRegistry) error {
	var errs []error
	for _, c := range reg.Collections() {
		if err := st.Save(reg, c); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Remove deletes the named collection's snapshot file and journal
// segments unless the file belongs to a live collection. Callers must
// deregister the collection first; the registry re-check under the
// snapshot lock then covers the race where a same-named collection is
// re-created (and checkpointed) between the caller's deregistration
// and this unlink. A live case-variant counts only when its snapshot
// path resolves to the same file (a case-insensitive filesystem): on a
// case-sensitive one the variant's file is distinct and the orphan
// must still be unlinked, or it would collide with the variant's
// snapshot at the next Load. The saved-epoch and health entries are
// always cleared, so any later Save for the name re-writes rather than
// skipping on a stale epoch match.
func (st *Store) Remove(reg *CollectionRegistry, name string) error {
	if err := ValidateCollectionName(name); err != nil {
		return err
	}
	l := st.lockName(name)
	defer st.unlockName(name, l)
	st.mu.Lock()
	delete(st.saved, name)
	delete(st.health, name)
	delete(st.sizes, name)
	st.mu.Unlock()
	if live, ok := reg.FoldedName(name); ok {
		if live == name {
			return nil // re-created meanwhile; its snapshot owns the file
		}
		li, lerr := st.fs.Stat(st.path(live))
		ni, nerr := st.fs.Stat(st.path(name))
		if lerr == nil && nerr == nil && os.SameFile(li, ni) {
			return nil // one shared file on a case-insensitive filesystem
		}
	}
	if segs, err := journalSegments(st.fs, st.dir, name); err == nil {
		for _, s := range segs {
			_ = st.fs.Remove(s.path) //ldplint:ok fsiocheck best-effort; a surviving segment is re-dropped or quarantined at Load
		}
	}
	if err := st.fs.Remove(st.path(name)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("core: remove snapshot %q: %w", name, err)
	}
	return st.fs.SyncDir(st.dir)
}

// marshalTaskState serializes a merged aggregate in the task's binary
// state layout when it has one, falling back to JSON (enc is EncBinary
// or empty accordingly).
func marshalTaskState(merged task.Aggregator) (state []byte, enc string, err error) {
	if bs, ok := merged.(task.BinaryStater); ok {
		state, err = bs.MarshalStateBinary()
		if err == nil {
			return state, EncBinary, nil
		}
		if !errors.Is(err, task.ErrBinaryUnsupported) {
			return nil, "", err
		}
	}
	state, err = merged.MarshalState()
	return state, "", err
}

// encodeSnapshot serializes one snapshot into its on-disk bytes: the
// version-5 binary container for binary task states, the version-4
// checksummed JSON wrapper otherwise (byte for byte what pre-binary
// builds wrote).
func encodeSnapshot(snap CollectionSnapshot) ([]byte, error) {
	if snap.Enc == EncBinary {
		state := snap.State
		snap.State = nil // the header carries everything but the state
		header, err := json.Marshal(snap)
		if err != nil {
			return nil, err
		}
		blob := make([]byte, 0, len(snapshotMagic)+4+10+len(header)+len(state))
		blob = append(blob, snapshotMagic...)
		blob = append(blob, 0, 0, 0, 0) // CRC32C, patched below
		blob = binary.AppendUvarint(blob, uint64(len(header)))
		blob = append(blob, header...)
		blob = append(blob, state...)
		crcOff := len(snapshotMagic)
		binary.LittleEndian.PutUint32(blob[crcOff:crcOff+4], crc32.Checksum(blob[crcOff+4:], crcTable))
		return blob, nil
	}
	inner, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	return json.Marshal(snapshotFile{
		Version:  snapshotVersionJSON,
		CRC32C:   crc32.Checksum(inner, crcTable),
		Snapshot: inner,
	})
}

// decodeSnapshotBinary parses a version-5 binary container (the caller
// verified the magic prefix).
func decodeSnapshotBinary(blob []byte) (CollectionSnapshot, error) {
	data := blob[len(snapshotMagic):]
	if len(data) < 4 {
		return CollectionSnapshot{}, errors.New("binary container truncated inside the checksum")
	}
	sum := binary.LittleEndian.Uint32(data[:4])
	body := data[4:]
	if got := crc32.Checksum(body, crcTable); got != sum {
		return CollectionSnapshot{}, fmt.Errorf("checksum mismatch: file says %08x, contents hash to %08x", sum, got)
	}
	hlen, n := binary.Uvarint(body)
	if n <= 0 || hlen > uint64(len(body)-n) {
		return CollectionSnapshot{}, errors.New("binary container header length is torn or lying")
	}
	var snap CollectionSnapshot
	if err := json.Unmarshal(body[n:n+int(hlen)], &snap); err != nil {
		return CollectionSnapshot{}, fmt.Errorf("binary container header: %w", err)
	}
	if snap.Version > SnapshotVersion {
		return CollectionSnapshot{}, fmt.Errorf("version %d is newer than this build's %d", snap.Version, SnapshotVersion)
	}
	if snap.Version != SnapshotVersion || snap.Enc != EncBinary {
		return CollectionSnapshot{}, fmt.Errorf("binary container header claims version %d encoding %q", snap.Version, snap.Enc)
	}
	snap.State = json.RawMessage(body[n+int(hlen):])
	return snap, nil
}

// decodeSnapshot parses a snapshot file of any supported version,
// verifying the version-4 wrapper's (or version-5 container's)
// checksum. Every error it returns means the file is corrupt or
// foreign — quarantine material, not an infrastructure failure.
func decodeSnapshot(blob []byte) (CollectionSnapshot, error) {
	if bytes.HasPrefix(blob, snapshotMagic) {
		return decodeSnapshotBinary(blob)
	}
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(blob, &probe); err != nil {
		return CollectionSnapshot{}, fmt.Errorf("not a JSON snapshot: %w", err)
	}
	var snap CollectionSnapshot
	if probe.Version < snapshotVersionJSON {
		// A bare pre-checksum snapshot (versions 0–3).
		if err := json.Unmarshal(blob, &snap); err != nil {
			return CollectionSnapshot{}, err
		}
		return snap, nil
	}
	if probe.Version > SnapshotVersion {
		return CollectionSnapshot{}, fmt.Errorf("version %d is newer than this build's %d", probe.Version, SnapshotVersion)
	}
	var file snapshotFile
	if err := json.Unmarshal(blob, &file); err != nil {
		return CollectionSnapshot{}, err
	}
	if len(file.Snapshot) == 0 {
		return CollectionSnapshot{}, errors.New("checksummed wrapper carries no snapshot")
	}
	if sum := crc32.Checksum(file.Snapshot, crcTable); sum != file.CRC32C {
		return CollectionSnapshot{}, fmt.Errorf("checksum mismatch: file says %08x, contents hash to %08x", file.CRC32C, sum)
	}
	if err := json.Unmarshal(file.Snapshot, &snap); err != nil {
		return CollectionSnapshot{}, err
	}
	if snap.Version > SnapshotVersion {
		return CollectionSnapshot{}, fmt.Errorf("version %d is newer than this build's %d", snap.Version, SnapshotVersion)
	}
	return snap, nil
}

// quarantine sets a corrupt file aside under the .corrupt suffix so
// the operator can inspect it and future Loads skip it. Failure to
// rename is logged, not fatal: the file will fail the same way next
// startup, which is annoying but safe.
func (st *Store) quarantine(path string, reason error) {
	aside := path + corruptExt
	if err := st.fs.Rename(path, aside); err != nil {
		log.Printf("core: quarantining %s: %v (original error: %v)", filepath.Base(path), err, reason)
		return
	}
	_ = st.fs.SyncDir(st.dir) //ldplint:ok fsiocheck best-effort; an undurable quarantine rename re-fails safely next startup
	log.Printf("core: quarantined %s%s: %v", filepath.Base(path), corruptExt, reason)
}

// Load restores every snapshot in the state directory into the
// registry — each file re-creates its collection with the persisted
// configuration, restores the aggregate state exactly, then replays
// the collection's surviving journal segments on top — and returns the
// restored collection names.
//
// Load is deliberately unstoppable: a snapshot that is corrupt,
// unparseable, of a future version, or un-restorable quarantines that
// one collection (the file moves aside under .corrupt) and every other
// collection restores normally. Only infrastructure failures — the
// directory itself unreadable — abort it. Snapshots whose name
// collides with an already-registered collection are set aside under
// .conflict (the caller decides which side wins by ordering Load
// against its own Creates).
func (st *Store) Load(reg *CollectionRegistry) ([]string, error) {
	entries, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("core: state dir: %w", err)
	}
	var restored []string
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), snapshotExt)
		if e.IsDir() || !ok || ValidateCollectionName(name) != nil {
			continue // temp files, strays, quarantined files — not ours to interpret
		}
		path := filepath.Join(st.dir, e.Name())
		blob, err := st.fs.ReadFile(path)
		if err != nil {
			// An unreadable file is an I/O problem, not corruption:
			// renaming it would not help and might lose it. Skip it.
			log.Printf("core: read snapshot %q: %v (skipped)", name, err)
			continue
		}
		snap, err := decodeSnapshot(blob)
		if err != nil {
			st.quarantine(path, fmt.Errorf("snapshot %q: %w", name, err))
			continue
		}
		if snap.Name != name {
			st.quarantine(path, fmt.Errorf("snapshot file %q names collection %q", e.Name(), snap.Name))
			continue
		}
		c, err := reg.Create(name, snap.Config)
		if errors.Is(err, ErrCollectionExists) {
			// Two snapshots colliding up to letter case (an orphan a
			// failed delete left beside its re-created variant, or a
			// state dir written by an older build). Failing startup
			// would hold every other collection hostage; instead the
			// loser is set aside under a .conflict suffix — preserved
			// for the operator, ignored by future Loads.
			aside := path + ".conflict"
			if rerr := st.fs.Rename(path, aside); rerr != nil {
				log.Printf("core: restore %q: %v (and could not set snapshot aside: %v)", name, err, rerr)
				continue
			}
			_ = st.fs.SyncDir(st.dir) //ldplint:ok fsiocheck best-effort; an undurable set-aside re-fails safely next startup
			log.Printf("core: restore %q: %v (snapshot set aside as %s)", name, err, filepath.Base(aside))
			continue
		}
		if err != nil {
			st.quarantine(path, fmt.Errorf("snapshot %q: %w", name, err))
			continue
		}
		if len(snap.State) > 0 {
			restore := c.agg.RestoreState
			if snap.Enc == EncBinary {
				restore = c.agg.RestoreStateBinary
			}
			if err := restore(snap.State); err != nil {
				reg.Delete(name) // don't leave a half-restored collection serving
				st.quarantine(path, fmt.Errorf("snapshot %q: %w", name, err))
				continue
			}
		}
		// Cross-check the envelope's recorded round against the
		// restored state: a mismatch means the file was assembled from
		// two different protocol positions (hand-edited, or written by
		// a buggy tool) and resuming it would split users across
		// rounds.
		if c.agg.Phased() && snap.Round != c.agg.Round() {
			reg.Delete(name)
			st.quarantine(path, fmt.Errorf("snapshot %q: envelope says round %d but the state restores to round %d",
				name, snap.Round, c.agg.Round()))
			continue
		}
		replayed, err := st.replayJournal(c, snap)
		if err != nil {
			// Journal infrastructure failure (segments unlistable):
			// the snapshot state itself is sound, but acknowledged
			// reports may be missing from it. Surface, keep serving.
			log.Printf("core: replay journal %q: %v", name, err)
		}
		if replayed == 0 {
			// Nothing beyond the snapshot: the next checkpoint may
			// skip on an unchanged epoch. With replayed frames the
			// epoch entry is withheld so the next checkpoint persists
			// the replayed state and truncates the journal.
			st.mu.Lock()
			st.saved[name] = c.agg.Epoch()
			st.mu.Unlock()
		}
		st.mu.Lock()
		st.sizes[name] = CheckpointInfo{Bytes: int64(len(blob)), Enc: snap.Enc}
		st.mu.Unlock()
		restored = append(restored, name)
	}
	st.sweepOrphanJournals(reg)
	return restored, nil
}

// replayJournal folds the collection's surviving journal segments —
// acknowledged work that missed the last checkpoint — into the freshly
// restored aggregator, re-seeds the dedup memory, and attaches a live
// journal whose generation is past every segment seen. It returns how
// many frames were replayed.
//
// Replay never refuses startup: the first bad frame (torn tail,
// checksum mismatch, or a record the aggregator rejects) truncates its
// segment at the last sound frame, and any later segments — written
// after a frame that never became durable, so of uncertain lineage —
// are quarantined.
func (st *Store) replayJournal(c *Collection, snap CollectionSnapshot) (int, error) {
	c.dedupMu.Lock()
	c.dedup.seed(snap.Batches)
	c.dedupMu.Unlock()

	segs, err := journalSegments(st.fs, st.dir, c.name)
	if err != nil {
		c.walMu.Lock()
		c.journal = newJournal(st.fs, st.dir, c.name, max(snap.JournalGen, 1), st.journalSync)
		c.walMu.Unlock()
		return 0, err
	}
	gen := max(snap.JournalGen, 1)
	replayed := 0
	stopped := false
	j := newJournal(st.fs, st.dir, c.name, gen, st.journalSync) // gen re-raised below
	for _, s := range segs {
		if s.gen >= gen {
			gen = s.gen + 1
		}
		if s.gen < snap.JournalGen {
			// Folded into the snapshot already; a crash between the
			// snapshot rename and the segment drop leaves these behind.
			_ = st.fs.Remove(s.path) //ldplint:ok fsiocheck superseded by the durable snapshot; re-dropped next startup
			continue
		}
		if stopped {
			st.quarantine(s.path, errors.New("journal segment follows a truncated one"))
			continue
		}
		data, err := st.fs.ReadFile(s.path)
		if err != nil {
			log.Printf("core: read journal segment %s: %v (later segments quarantined)", filepath.Base(s.path), err)
			stopped = true
			continue
		}
		frames, bytes, off := 0, int64(0), 0
		for off < len(data) {
			rec, n, ok := nextFrame(data[off:])
			if !ok {
				break
			}
			if err := c.replayRecord(rec, st.flushSink); err != nil {
				log.Printf("core: replay %s at offset %d: %v (treated as corruption)", filepath.Base(s.path), off, err)
				break
			}
			off += n
			frames++
			bytes += int64(n)
			replayed++
		}
		if off < len(data) {
			// Torn or corrupt tail: everything before off is applied
			// and sound, everything after is untrusted. Cut it away so
			// the segment on disk matches what was replayed.
			if err := st.fs.Truncate(s.path, int64(off)); err != nil {
				log.Printf("core: truncate %s to %d bytes: %v", filepath.Base(s.path), off, err)
			}
			stopped = true
		}
		if frames > 0 {
			j.addExisting(s.gen, frames, bytes)
		}
	}
	j.gen = gen
	c.walMu.Lock()
	c.journal = j
	c.walMu.Unlock()
	return replayed, nil
}

// replayRecord applies one journal record to the restored aggregator,
// mirroring exactly what the live ingest path did when it wrote the
// frame.
func (c *Collection) replayRecord(rec journalRecord, sink FlushSink) error {
	switch rec.Kind {
	case recordBatch:
		var accepted, size int
		var rejectErr error
		if rec.Enc == EncBinary {
			size = len(rec.Bins)
			accepted, rejectErr = c.agg.AddBatchBinary(rec.Bins)
		} else {
			size = len(rec.Envs)
			accepted, rejectErr = c.agg.AddBatch(rec.Envs)
		}
		if rejectErr != nil && IsInternal(rejectErr) {
			return rejectErr
		}
		if rec.ID != "" {
			c.dedupMu.Lock()
			c.dedup.complete(BatchMark{ID: rec.ID, Accepted: accepted, Rejected: size - accepted})
			c.dedupMu.Unlock()
		}
		return nil
	case recordAdvance:
		// The frame records which round was closed; replay refuses to
		// close any other round, so a frame applied out of order (or
		// against the wrong snapshot) surfaces instead of silently
		// splitting users across rounds.
		return c.agg.AdvanceExpecting(rec.Round)
	case recordMerge:
		delta, err := c.agg.NewDelta(rec.State, rec.Enc == EncBinary)
		if err != nil {
			return err
		}
		n, err := c.agg.FoldDelta(delta)
		if err != nil {
			return err
		}
		if rec.ID != "" {
			c.dedupMu.Lock()
			c.dedup.complete(BatchMark{ID: rec.ID, Accepted: n})
			c.dedupMu.Unlock()
		}
		return nil
	case recordFlush:
		// A relay cut its state into an outbound delta here. Re-cut the
		// replayed state under the frame's idempotency key and hand it
		// to the flush sink (which rewrites the outbox file); the
		// upstream's dedup makes the re-emitted delta fold exactly once
		// no matter how far the original got. Replaying onto an empty
		// aggregator (frames before the cut already checkpointed away)
		// leaves nothing to re-emit — the outbox file, if the crash
		// preserved it, is still sent by the boot-time outbox scan.
		if sink == nil {
			return fmt.Errorf("flush frame in the journal of collection %q but no flush sink installed (journal written in relay mode; restart with -mode relay)", c.name)
		}
		d, err := c.cutLocked(rec.ID, false)
		if err != nil {
			return err
		}
		if d == nil {
			return nil
		}
		return sink(c.name, *d)
	case recordAdopt:
		return c.agg.AdoptFrontier(rec.Frontier)
	default:
		return fmt.Errorf("unknown journal record kind %q", rec.Kind)
	}
}

// sweepOrphanJournals quarantines journal segments whose collection
// did not restore: with no snapshot to anchor them (the collection was
// never checkpointed, or its snapshot was itself quarantined) their
// replay base is unknown, and folding them into anything would be a
// guess. The bytes are preserved under .corrupt for the operator.
func (st *Store) sweepOrphanJournals(reg *CollectionRegistry) {
	matches, err := st.fs.Glob(filepath.Join(st.dir, "*.journal.*"))
	if err != nil {
		log.Printf("core: sweeping orphan journals: %v", err)
		return
	}
	for _, m := range matches {
		base := filepath.Base(m)
		idx := strings.LastIndex(base, ".journal.")
		if idx <= 0 {
			continue
		}
		if _, err := parseGen(base[idx+len(".journal."):]); err != nil {
			continue // quarantined or foreign file; not a live segment
		}
		owner := base[:idx]
		if _, ok := reg.Get(owner); ok {
			continue
		}
		st.quarantine(m, fmt.Errorf("journal segment for unrestored collection %q", owner))
	}
}
