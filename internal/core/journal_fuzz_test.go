package core

// Native fuzzing for the journal replay path: parseFrames/nextFrame
// face whatever bytes a crash, bit rot, or a hostile disk leaves in a
// segment file, and replay must never refuse startup — so the parser
// must never panic, must report a sound-prefix length it can stand
// behind, and every record it does accept must survive re-framing.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func FuzzJournalFrames(f *testing.F) {
	mk := func(recs ...journalRecord) []byte {
		var buf []byte
		for _, r := range recs {
			b, err := frame(r)
			if err != nil {
				f.Fatal(err)
			}
			buf = append(buf, b...)
		}
		return buf
	}
	batch := journalRecord{
		Kind: recordBatch,
		ID:   "batch-1",
		Envs: []json.RawMessage{json.RawMessage(`{"task":"hh","payload":"AQID"}`)},
	}
	adv := journalRecord{Kind: recordAdvance, Round: 3}
	whole := mk(batch, adv)
	f.Add([]byte{})
	f.Add(mk(adv))
	f.Add(whole)
	f.Add(whole[:5])            // torn inside a header
	f.Add(whole[:len(whole)-3]) // torn inside the last frame
	corrupt := mk(batch)
	corrupt[10] ^= 0x40 // flip a payload bit: checksum must catch it
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good := parseFrames(data)
		if good < 0 || good > len(data) {
			t.Fatalf("goodLen %d outside [0,%d]", good, len(data))
		}
		// The sound prefix is exactly reparseable: replay truncates to
		// goodLen and must see the same records again.
		again, g2 := parseFrames(data[:good])
		if g2 != good || len(again) != len(recs) {
			t.Fatalf("prefix reparse: (%d recs, goodLen %d), want (%d, %d)",
				len(again), g2, len(recs), good)
		}
		for i, rec := range recs {
			if !reflect.DeepEqual(again[i], rec) {
				t.Fatalf("record %d changed across reparse", i)
			}
			// Every accepted record survives a frame round trip, and
			// the frame encoding is canonical after one hop (the first
			// hop compacts raw-envelope whitespace).
			b, err := frame(rec)
			if err != nil {
				t.Fatalf("record %d: re-frame: %v", i, err)
			}
			rec2, n, ok := nextFrame(b)
			if !ok || n != len(b) {
				t.Fatalf("record %d: re-framed bytes did not parse back", i)
			}
			b2, err := frame(rec2)
			if err != nil || !bytes.Equal(b, b2) {
				t.Fatalf("record %d: frame not canonical after round trip (err=%v)", i, err)
			}
		}
	})
}
