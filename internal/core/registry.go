package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/task"
)

// ErrCollectionExists is wrapped by Create when the name is already
// registered, so callers can distinguish a conflict (HTTP 409) from an
// invalid name or configuration (HTTP 400) with errors.Is.
var ErrCollectionExists = errors.New("already exists")

// DefaultCollection is the collection name behind the flat legacy
// routes (/report, /estimate, ...): a server that predates the
// collections API keeps working unchanged against it.
const DefaultCollection = "default"

// maxCollectionName bounds collection-name length; names become file
// names under the state directory, so they stay well under any
// filesystem limit.
const maxCollectionName = 128

// CollectionConfig is the per-collection survey configuration: which
// task family the collection serves (task.Config, embedded — its Task
// tag is empty for pre-task configs, meaning "freq"), which mechanism
// privatizes reports under what parameters, and how many aggregation
// shards to spread ingestion over. The embedded fields marshal flat,
// so configs written before the task layer existed ({"mechanism":...,
// "epsilon":..., "domain":..., "shards":...}) parse unchanged.
type CollectionConfig struct {
	task.Config
	Shards int `json:"shards,omitempty"` // 0 = one per core
	// AdvanceQuota auto-advances a phased collection's round once it
	// has accepted this many reports (0 = rounds advance only via
	// POST .../advance). One-shot tasks ignore it.
	AdvanceQuota int `json:"advance_quota,omitempty"`
}

// Params returns the frequency-style privacy half of the configuration.
func (c CollectionConfig) Params() PrivacyParams {
	return PrivacyParams{Epsilon: c.Epsilon, Domain: c.Domain}
}

// FreqCollectionConfig builds the configuration of a frequency survey,
// the shape every collection had before the task layer.
func FreqCollectionConfig(mechanism string, p PrivacyParams, shards int) CollectionConfig {
	return CollectionConfig{Config: FreqTaskConfig(mechanism, p), Shards: shards}
}

// Collection is one named survey: an independent sharded aggregator
// plus the configuration it was created with, and the crash-safety
// state the write-ahead ingest path maintains (see journal.go).
type Collection struct {
	name string
	cfg  CollectionConfig
	agg  *ShardedAggregator

	// walMu orders journal appends against checkpoint rotation and
	// round advances: ingests hold it shared around append+fold, so an
	// exclusive holder (checkpoint, advance) knows every journaled
	// frame is folded and no fold straddles the boundary.
	walMu sync.RWMutex
	// journal is the collection's write-ahead log; nil when the server
	// runs memory-only (no Store attached).
	journal *journal
	// dedup remembers recently acknowledged batch IDs so client
	// retries are answered from the record instead of re-aggregated.
	dedupMu sync.Mutex
	dedup   *dedupLRU
}

// Name returns the collection's registry name.
func (c *Collection) Name() string { return c.name }

// Config returns the configuration the collection was created with.
func (c *Collection) Config() CollectionConfig { return c.cfg }

// Aggregator returns the collection's sharded aggregator.
func (c *Collection) Aggregator() *ShardedAggregator { return c.agg }

// ValidateCollectionName checks that a name is usable as both a URL
// path segment and a snapshot file name: 1–128 characters drawn from
// [A-Za-z0-9._-], not starting with a dot (which rules out hidden
// files, "." and ".." in one stroke).
func ValidateCollectionName(name string) error {
	if name == "" {
		return fmt.Errorf("core: collection name must not be empty")
	}
	if len(name) > maxCollectionName {
		return fmt.Errorf("core: collection name longer than %d characters", maxCollectionName)
	}
	if name[0] == '.' {
		return fmt.Errorf("core: collection name must not start with %q", ".")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("core: collection name %q contains %q (allowed: letters, digits, '.', '_', '-')", name, r)
		}
	}
	return nil
}

// CollectionRegistry maps survey names to independent aggregators, the
// way deployed collectors run many concurrent studies in one process.
// It is safe for concurrent use.
type CollectionRegistry struct {
	mu   sync.RWMutex
	cols map[string]*Collection
	// folded maps strings.ToLower(name) -> name. Uniqueness is
	// enforced case-insensitively because snapshot files are named
	// after collections: on a case-insensitive filesystem (macOS,
	// Windows) "Study" and "study" would silently checkpoint into one
	// file, clobbering each other. Enforcing it everywhere keeps
	// behavior identical across platforms.
	folded map[string]string
}

// NewCollectionRegistry returns an empty registry.
func NewCollectionRegistry() *CollectionRegistry {
	return &CollectionRegistry{
		cols:   make(map[string]*Collection),
		folded: make(map[string]string),
	}
}

// Create validates the name and configuration, builds the collection's
// aggregator and registers it. Creating a name that already exists —
// exactly or up to letter case — is an error: two surveys under one
// name would silently pool reports across studies (and collide on one
// snapshot file on case-insensitive filesystems).
func (r *CollectionRegistry) Create(name string, cfg CollectionConfig) (*Collection, error) {
	if err := ValidateCollectionName(name); err != nil {
		return nil, err
	}
	// Normalize the task tag: configs from pre-task snapshots and
	// terse create bodies leave it empty (meaning freq). Storing the
	// resolved name means re-checkpointed snapshots are explicitly
	// tagged and config comparisons (ldpd's restored-vs-flags check)
	// don't see a phantom ""≠"freq" difference.
	cfg.Task = cfg.Type()
	// Fast-path duplicate check before the aggregator is built, so a
	// rejected create never pays the shards×domain allocation; the
	// authoritative re-check below runs under the write lock.
	r.mu.RLock()
	taken, exists := r.folded[strings.ToLower(name)]
	r.mu.RUnlock()
	if exists {
		return nil, duplicateNameError(name, taken)
	}
	agg, err := NewShardedAggregator(cfg.Config, cfg.Shards)
	if err != nil {
		return nil, err
	}
	c := &Collection{name: name, cfg: cfg, agg: agg, dedup: newDedupLRU()}
	r.mu.Lock()
	defer r.mu.Unlock()
	if taken, exists := r.folded[strings.ToLower(name)]; exists {
		return nil, duplicateNameError(name, taken)
	}
	r.cols[name] = c
	r.folded[strings.ToLower(name)] = name
	return c, nil
}

func duplicateNameError(name, taken string) error {
	if taken != name {
		return fmt.Errorf("core: collection %q %w up to letter case (as %q)", name, ErrCollectionExists, taken)
	}
	return fmt.Errorf("core: collection %q %w", name, ErrCollectionExists)
}

// Get returns the named collection, if registered.
func (r *CollectionRegistry) Get(name string) (*Collection, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.cols[name]
	return c, ok
}

// Len returns the number of registered collections.
func (r *CollectionRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.cols)
}

// FoldedName returns the registered collection name matching the
// argument up to letter case, if any. Callers touching snapshot files
// for a name that failed an exact-match lookup consult it first: the
// file may belong to a live case-variant collection (see Store.Remove).
func (r *CollectionRegistry) FoldedName(name string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	live, ok := r.folded[strings.ToLower(name)]
	return live, ok
}

// DeleteIfEmpty removes exactly the given collection — identity, not
// just name — and only if it has aggregated no reports; it reports
// whether it removed it. The identity check keeps a stale rollback
// from destroying a same-named collection re-created in between, and
// the emptiness check (under the registry lock) closes, up to
// in-flight Adds that already resolved the collection, the window
// where a rollback would discard reports the server has acknowledged.
func (r *CollectionRegistry) DeleteIfEmpty(c *Collection) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.cols[c.name]
	if !ok || cur != c || c.agg.Collected() != 0 {
		return false
	}
	delete(r.cols, c.name)
	delete(r.folded, strings.ToLower(c.name))
	return true
}

// Delete removes the named collection and reports whether it existed.
// The collection's aggregate state is dropped with it; persistent
// deployments also remove the snapshot file (see Store.Remove).
func (r *CollectionRegistry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.cols[name]; !ok {
		return false
	}
	delete(r.cols, name)
	delete(r.folded, strings.ToLower(name))
	return true
}

// Collections returns the registered collections sorted by name.
func (r *CollectionRegistry) Collections() []*Collection {
	r.mu.RLock()
	out := make([]*Collection, 0, len(r.cols))
	for _, c := range r.cols {
		out = append(out, c)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Names returns the registered collection names, sorted.
func (r *CollectionRegistry) Names() []string {
	cols := r.Collections()
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.name
	}
	return out
}
