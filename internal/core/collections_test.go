package core

// HTTP contract of the multi-collection surface: registry management
// routes, per-collection data-plane routes, the flat-route aliasing
// onto the default collection, and the epoch cache behind /estimate.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ldprand"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	return string(b)
}

func doDelete(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestCollectionsLifecycle(t *testing.T) {
	_, ts := newTestServer(t, MechanismGRR, 2)

	// Create a second survey with its own mechanism and parameters.
	resp := postJSON(t, ts.URL+"/collections",
		[]byte(`{"name":"study-a","mechanism":"OUE","epsilon":1,"domain":4,"shards":3}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	var created StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if created.Collection != "study-a" || created.Mechanism != "OUE" || created.Shards != 3 {
		t.Fatalf("created %+v", created)
	}

	// Duplicate name → 409; invalid config → 400; bad name → 400.
	if resp := postJSON(t, ts.URL+"/collections", []byte(`{"name":"study-a","mechanism":"OUE","epsilon":1,"domain":4}`)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create status %d want 409", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/collections", []byte(`{"name":"x","mechanism":"NOPE","epsilon":1,"domain":4}`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mechanism status %d want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/collections", []byte(`{"name":"../evil","mechanism":"GRR","epsilon":1,"domain":4}`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad name status %d want 400", resp.StatusCode)
	}

	// Listing shows both surveys, sorted.
	var listing []StatusResponse
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/collections")), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing) != 2 || listing[0].Collection != DefaultCollection || listing[1].Collection != "study-a" {
		t.Fatalf("listing %+v", listing)
	}

	// Reports route to their own collection only.
	client, err := NewClient("OUE", PrivacyParams{Epsilon: 1, Domain: 4}, ldprand.NewSplitMix64(5))
	if err != nil {
		t.Fatal(err)
	}
	env, err := client.Report(2)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(env)
	if resp := postJSON(t, ts.URL+"/collections/study-a/report", body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("study-a report status %d", resp.StatusCode)
	}
	var st StatusResponse
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/collections/study-a/status")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Reports != 1 {
		t.Fatalf("study-a reports %d want 1", st.Reports)
	}
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/status")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Reports != 0 || st.Collection != DefaultCollection {
		t.Fatalf("default status %+v", st)
	}

	// Unknown collections are 404 on every data-plane route.
	if resp := postJSON(t, ts.URL+"/collections/nope/report", body); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown collection report status %d want 404", resp.StatusCode)
	}
	resp404, err := http.Get(ts.URL + "/collections/nope/estimate")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown collection estimate status %d want 404", resp404.StatusCode)
	}

	// Delete removes the survey; the default is protected.
	if resp := doDelete(t, ts.URL+"/collections/study-a"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d want 204", resp.StatusCode)
	}
	if resp := doDelete(t, ts.URL+"/collections/study-a"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status %d want 404", resp.StatusCode)
	}
	if resp := doDelete(t, ts.URL+"/collections/default"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("delete default status %d want 400", resp.StatusCode)
	}
}

// TestCollectionCreateRejectsResourceBombs pins the remote-surface
// caps: POST /collections must bounce configurations whose aggregator
// would allocate unbounded memory, before any allocation happens.
func TestCollectionCreateRejectsResourceBombs(t *testing.T) {
	_, ts := newTestServer(t, MechanismGRR, 2)
	bombs := []string{
		`{"name":"b1","mechanism":"GRR","epsilon":1,"domain":2000000000}`,
		`{"name":"b2","mechanism":"GRR","epsilon":1,"domain":8,"shards":100000}`,
		`{"name":"b3","mechanism":"OLH","epsilon":1000,"domain":8}`,
		// Each axis within its cap, but the product (tally cells) is not.
		`{"name":"b4","mechanism":"OUE","epsilon":1,"domain":262144,"shards":64}`,
	}
	for _, body := range bombs {
		resp := postJSON(t, ts.URL+"/collections", []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bomb %s: status %d want 400", body, resp.StatusCode)
		}
	}
	// The caps leave realistic configurations untouched.
	resp := postJSON(t, ts.URL+"/collections",
		[]byte(`{"name":"ok","mechanism":"OLH","epsilon":4,"domain":65536,"shards":8}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("realistic config status %d want 201", resp.StatusCode)
	}
}

// TestCollectionCountCap pins the registry-size cap: looping creates
// must hit 429 instead of growing server memory without bound.
func TestCollectionCountCap(t *testing.T) {
	_, ts := newTestServer(t, MechanismGRR, 1)
	made := 0
	for i := 0; ; i++ {
		body := []byte(fmt.Sprintf(`{"name":"c%d","mechanism":"GRR","epsilon":1,"domain":2,"shards":1}`, i))
		resp := postJSON(t, ts.URL+"/collections", body)
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, resp.StatusCode)
		}
		if made++; made > maxCollections {
			t.Fatalf("created %d collections without hitting the cap", made)
		}
	}
	if made != maxCollections-1 { // the default collection occupies one slot
		t.Fatalf("cap hit after %d creates, want %d", made, maxCollections-1)
	}
}

// TestAddBatchErrorCap pins the bounded batch error: a systematically
// broken batch reports the first rejections in detail plus a summary
// count, never one error line per envelope.
func TestAddBatchErrorCap(t *testing.T) {
	agg, err := NewFreqShardedAggregator(MechanismGRR, params(), 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]json.RawMessage, 100)
	for i := range batch {
		batch[i] = mustRaw(t, Envelope{Mechanism: "GRR", Value: 999}) // all out of domain
	}
	accepted, err := agg.AddBatch(batch)
	if accepted != 0 || err == nil {
		t.Fatalf("accepted %d, err %v", accepted, err)
	}
	msg := err.Error()
	if !strings.Contains(msg, fmt.Sprintf("and %d more rejected envelopes", 100-maxBatchErrors)) {
		t.Fatalf("missing suppression summary in %q", msg)
	}
	if n := strings.Count(msg, "envelope "); n != maxBatchErrors {
		t.Fatalf("%d detailed errors, want %d", n, maxBatchErrors)
	}
}

// TestFlatRoutesAliasDefaultCollection pins backward compatibility:
// the flat routes and /collections/default are the same aggregator.
func TestFlatRoutesAliasDefaultCollection(t *testing.T) {
	_, ts := newTestServer(t, MechanismGRR, 2)
	body := []byte(`{"mechanism":"GRR","value":3}`)
	if resp := postJSON(t, ts.URL+"/report", body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("flat report status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/collections/default/report", body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("collection report status %d", resp.StatusCode)
	}
	var flat, scoped EstimateResponse
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/estimate")), &flat); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/collections/default/estimate")), &scoped); err != nil {
		t.Fatal(err)
	}
	if flat.Reports != 2 || scoped.Reports != 2 {
		t.Fatalf("reports flat %d scoped %d, want 2 each", flat.Reports, scoped.Reports)
	}
}

// TestEstimateUsesEpochCache is the acceptance-criteria test for the
// epoch cache: repeated /estimate calls on an unchanged collection
// must not re-merge the shards, and any ingestion invalidates exactly
// once.
func TestEstimateUsesEpochCache(t *testing.T) {
	svc, err := NewServiceSharded(MechanismGRR, params(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	agg := svc.Aggregator()

	body := []byte(`{"mechanism":"GRR","value":3}`)
	if resp := postJSON(t, ts.URL+"/report", body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("report status %d", resp.StatusCode)
	}

	first := getBody(t, ts.URL+"/estimate")
	merges := agg.MergeCount()
	if merges == 0 {
		t.Fatal("estimate did not merge")
	}
	for i := 0; i < 5; i++ {
		if got := getBody(t, ts.URL+"/estimate"); got != first {
			t.Fatalf("cached estimate drifted:\n%s\n%s", first, got)
		}
	}
	if got := agg.MergeCount(); got != merges {
		t.Fatalf("idle estimates re-merged: %d merges, want %d", got, merges)
	}

	// New ingestion advances the epoch: exactly one more merge.
	if resp := postJSON(t, ts.URL+"/report", body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("report status %d", resp.StatusCode)
	}
	second := getBody(t, ts.URL+"/estimate")
	if second == first {
		t.Fatal("estimate unchanged after new report")
	}
	getBody(t, ts.URL+"/estimate")
	if got := agg.MergeCount(); got != merges+1 {
		t.Fatalf("merges %d want %d", got, merges+1)
	}
}

// TestMergedCachedSharesSnapshot verifies the cache at the aggregator
// level: same epoch → the very same merged oracle is returned.
func TestMergedCachedSharesSnapshot(t *testing.T) {
	agg, err := NewFreqShardedAggregator(MechanismGRR, params(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(mustRaw(t, Envelope{Mechanism: "GRR", Value: 1})); err != nil {
		t.Fatal(err)
	}
	m1, err := agg.MergedCached()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := agg.MergedCached()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("unchanged epoch returned a new merge")
	}
	if err := agg.Add(mustRaw(t, Envelope{Mechanism: "GRR", Value: 2})); err != nil {
		t.Fatal(err)
	}
	m3, err := agg.MergedCached()
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Fatal("advanced epoch served the stale cache")
	}
	if m3.Collected() != 2 {
		t.Fatalf("collected %d want 2", m3.Collected())
	}
	// Reset invalidates too.
	agg.Reset()
	m4, err := agg.MergedCached()
	if err != nil {
		t.Fatal(err)
	}
	if m4.Collected() != 0 {
		t.Fatalf("post-reset collected %d want 0", m4.Collected())
	}
}
