package core

// Native fuzzing for RestoreStateBinary: version-5 checkpoint
// containers hand the task adapter raw state bytes from disk, where a
// crash, bit rot, or an operator edit can leave anything — truncated
// payloads, flipped bits, length prefixes that lie about how much
// data follows. The contract matches the JSON path's: restore either
// succeeds onto a consistent aggregator or refuses loudly — never
// panics, never over-allocates on a lying length, never half-applies.
// Every config family runs against every input, so cross-family
// confusion (a sketch state fed to a frequency aggregator) is fuzzed
// too.

import (
	"bytes"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/cmstask"
	"repro/internal/task/hhtask"
	"repro/internal/task/meantask"
)

// fuzzStateConfigs spans the four task families and the three
// frequency payload shapes (hash-bucket, real-vector, subset).
func fuzzStateConfigs() []task.Config {
	return []task.Config{
		FreqTaskConfig(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}),
		FreqTaskConfig(MechanismSHE, PrivacyParams{Epsilon: 2, Domain: 8}),
		FreqTaskConfig(MechanismSS, PrivacyParams{Epsilon: 2, Domain: 8}),
		{Task: task.TypeMean, Mechanism: meantask.MechanismHarmony, Epsilon: 1, Dim: 2},
		{Task: task.TypeSketch, Mechanism: cmstask.MechanismCMS, Epsilon: 2, Width: 32, Hashes: 4, SketchSeed: 9},
		{Task: task.TypeHH, Mechanism: hhtask.MechanismPEM, Epsilon: 2, Bits: 8, Levels: 4, K: 3},
	}
}

func FuzzBinaryState(f *testing.F) {
	// Seed with every config's empty state plus one populated
	// frequency state, so mutation starts from each accepted layout.
	for _, cfg := range fuzzStateConfigs() {
		a, err := NewShardedAggregator(cfg, 1)
		if err != nil {
			f.Fatal(err)
		}
		state, err := a.MarshalStateBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(state)
	}
	filled, err := NewShardedAggregator(FreqTaskConfig(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}), 1)
	if err != nil {
		f.Fatal(err)
	}
	client, err := NewClient(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, ldprand.NewSplitMix64(5))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		bin, err := client.ReportBinary(i % 8)
		if err != nil {
			f.Fatal(err)
		}
		if err := filled.AddBinary(bin); err != nil {
			f.Fatal(err)
		}
	}
	state, err := filled.MarshalStateBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(state)
	f.Add(state[:len(state)/2]) // torn mid-payload
	flipped := append([]byte(nil), state...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	// A length prefix claiming far more elements than the blob holds:
	// the decoder's over-allocation guard must refuse, not allocate.
	f.Add([]byte{0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 1, 2, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, cfg := range fuzzStateConfigs() {
			a, err := NewShardedAggregator(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.RestoreStateBinary(data); err != nil {
				continue // refused loudly: the acceptable failure mode
			}
			// Accepted states must leave a fully consistent aggregator:
			// both codecs re-marshal, and the binary bytes restore onto
			// a fresh aggregator reproducing themselves — the checkpoint
			// cycle's fixed point.
			if _, err := a.MarshalState(); err != nil {
				t.Fatalf("%s %s: accepted binary state does not marshal as JSON: %v", cfg.Task, cfg.Mechanism, err)
			}
			out, err := a.MarshalStateBinary()
			if err != nil {
				t.Fatalf("%s %s: accepted binary state does not re-marshal: %v", cfg.Task, cfg.Mechanism, err)
			}
			b, err := NewShardedAggregator(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.RestoreStateBinary(out); err != nil {
				t.Fatalf("%s %s: re-marshaled state of an accepted restore is refused: %v", cfg.Task, cfg.Mechanism, err)
			}
			out2, err := b.MarshalStateBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, out2) {
				t.Fatalf("%s %s: restore not a fixed point", cfg.Task, cfg.Mechanism)
			}
		}
	})
}
