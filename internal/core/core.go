// Package core is the orchestration layer tying the mechanism packages
// into a deployable collection pipeline: a mechanism registry, a JSON
// wire format for privatized reports, client/aggregator halves that
// speak it, and an HTTP collection service in the style of the
// deployed systems (clients POST reports; analysts read estimates).
//
// Only privatized data ever crosses the client boundary — the Client
// type runs the randomization locally and exposes no raw-value
// transport, which is the entire point of the local model.
package core

import (
	"encoding/base64"
	"fmt"
	"math"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/freq"
	"repro/internal/ldprand"
)

// maxSHEReal bounds each component of a network-received SHE report.
// The Laplace(2/ε) noise a real client adds has tails that die off as
// e^(-|x|ε/2), so 1e9 is unreachable by eight hundred standard
// deviations even at tiny ε; the cap exists to keep adversarial
// reports from overflowing the float64 sums.
const maxSHEReal = 1e9

// PrivacyParams is the user-facing privacy configuration.
type PrivacyParams struct {
	Epsilon float64 `json:"epsilon"`
	Domain  int     `json:"domain"`
}

// Mechanism names accepted by the registry.
const (
	MechanismGRR = "GRR"
	MechanismSUE = "SUE"
	MechanismOUE = "OUE"
	MechanismSHE = "SHE"
	MechanismTHE = "THE"
	MechanismBLH = "BLH"
	MechanismOLH = "OLH"
	MechanismHRR = "HRR"
	MechanismSS  = "SS"
)

// Mechanisms lists the registry names in presentation order.
func Mechanisms() []string {
	return []string{
		MechanismGRR, MechanismSUE, MechanismOUE, MechanismSHE,
		MechanismTHE, MechanismBLH, MechanismOLH, MechanismHRR,
		MechanismSS,
	}
}

// NewOracle builds a frequency oracle by registry name. A nil source
// selects crypto/rand.
func NewOracle(name string, p PrivacyParams, src ldprand.Source) (freq.Oracle, error) {
	if p.Epsilon <= 0 {
		return nil, fmt.Errorf("core: epsilon must be positive, got %v", p.Epsilon)
	}
	if p.Domain < 2 {
		return nil, fmt.Errorf("core: domain must be at least 2, got %d", p.Domain)
	}
	switch name {
	case MechanismGRR:
		return freq.NewGRR(p.Epsilon, p.Domain, src), nil
	case MechanismSUE:
		return freq.NewSUE(p.Epsilon, p.Domain, src), nil
	case MechanismOUE:
		return freq.NewOUE(p.Epsilon, p.Domain, src), nil
	case MechanismSHE:
		return freq.NewSHE(p.Epsilon, p.Domain, src), nil
	case MechanismTHE:
		return freq.NewTHE(p.Epsilon, p.Domain, src), nil
	case MechanismBLH:
		return freq.NewBLH(p.Epsilon, p.Domain, src), nil
	case MechanismOLH:
		return freq.NewOLH(p.Epsilon, p.Domain, src), nil
	case MechanismHRR:
		return freq.NewHRR(p.Epsilon, p.Domain, src), nil
	case MechanismSS:
		return freq.NewSS(p.Epsilon, p.Domain, src), nil
	default:
		names := Mechanisms()
		sort.Strings(names)
		return nil, fmt.Errorf("core: unknown mechanism %q (have %v)", name, names)
	}
}

// Envelope is the JSON wire format of one privatized report. Exactly
// the fields relevant to the mechanism are set; everything a server
// receives has already been randomized on the client.
type Envelope struct {
	Mechanism string    `json:"mechanism"`
	Value     int       `json:"value,omitempty"`  // GRR report / LH bucket / HRR index
	Seed      uint64    `json:"seed,omitempty"`   // LH hash seed
	Bits      string    `json:"bits,omitempty"`   // UE/THE bit vector, base64
	Reals     []float64 `json:"reals,omitempty"`  // SHE noisy vector
	Sign      int8      `json:"sign,omitempty"`   // HRR coefficient sign
	Values    []int     `json:"values,omitempty"` // SS subset report
}

// Privatize runs the client half of the oracle on value v and wraps
// the report in an Envelope.
func Privatize(o freq.Oracle, v int) (Envelope, error) {
	switch m := o.(type) {
	case *freq.GRR:
		return Envelope{Mechanism: m.Name(), Value: m.Privatize(v)}, nil
	case freq.BinaryRR:
		return Envelope{Mechanism: m.Name(), Value: m.Privatize(v)}, nil
	case *freq.UE:
		bits, err := m.Privatize(v).MarshalBinary()
		if err != nil {
			return Envelope{}, err
		}
		return Envelope{Mechanism: m.Name(), Bits: base64.StdEncoding.EncodeToString(bits)}, nil
	case *freq.SHE:
		return Envelope{Mechanism: m.Name(), Reals: m.Privatize(v)}, nil
	case *freq.THE:
		bits, err := m.Privatize(v).MarshalBinary()
		if err != nil {
			return Envelope{}, err
		}
		return Envelope{Mechanism: m.Name(), Bits: base64.StdEncoding.EncodeToString(bits)}, nil
	case *freq.LH:
		r := m.Privatize(v)
		return Envelope{Mechanism: m.Name(), Seed: r.Seed, Value: r.Bucket}, nil
	case *freq.HRR:
		r := m.Privatize(v)
		return Envelope{Mechanism: m.Name(), Value: r.Index, Sign: r.Sign}, nil
	case *freq.SS:
		return Envelope{Mechanism: m.Name(), Values: m.Privatize(v)}, nil
	default:
		return Envelope{}, fmt.Errorf("core: unsupported oracle type %T", o)
	}
}

// Aggregate folds an Envelope into the matching oracle. The envelope's
// mechanism name must match the oracle's, and malformed payloads are
// rejected rather than panicking: they arrive from the network.
func Aggregate(o freq.Oracle, e Envelope) error {
	if e.Mechanism != o.Name() {
		return fmt.Errorf("core: envelope mechanism %q does not match oracle %q", e.Mechanism, o.Name())
	}
	switch m := o.(type) {
	case *freq.GRR:
		return aggregateGRR(m, e)
	case freq.BinaryRR:
		return aggregateGRR(m.GRR, e)
	case *freq.UE:
		v, err := decodeBits(e.Bits, m.Domain())
		if err != nil {
			return err
		}
		m.Aggregate(v)
	case *freq.SHE:
		if len(e.Reals) != m.Domain() {
			return fmt.Errorf("core: SHE vector length %d, want %d", len(e.Reals), m.Domain())
		}
		// A legitimate SHE component is one-hot plus Laplace(2/ε) noise
		// — astronomically unlikely to stray past single digits, let
		// alone maxSHEReal. Unbounded components would let a client
		// push the sums to ±Inf (two 1.7e308 reports suffice), which
		// poisons the aggregate and makes its JSON state unmarshalable,
		// wedging every later checkpoint of the collection.
		for _, x := range e.Reals {
			if math.IsNaN(x) || x > maxSHEReal || x < -maxSHEReal {
				return fmt.Errorf("core: SHE component %v outside [-%g, %g]", x, maxSHEReal, maxSHEReal)
			}
		}
		m.Aggregate(e.Reals)
	case *freq.THE:
		v, err := decodeBits(e.Bits, m.Domain())
		if err != nil {
			return err
		}
		m.Aggregate(v)
	case *freq.LH:
		if e.Value < 0 || e.Value >= m.G() {
			return fmt.Errorf("core: LH bucket %d out of range [0,%d)", e.Value, m.G())
		}
		m.Aggregate(freq.LHReport{Seed: e.Seed, Bucket: e.Value})
	case *freq.HRR:
		if e.Value < 0 || e.Value >= m.PaddedDomain() {
			return fmt.Errorf("core: HRR index %d out of range", e.Value)
		}
		if e.Sign != 1 && e.Sign != -1 {
			return fmt.Errorf("core: HRR sign %d must be ±1", e.Sign)
		}
		m.Aggregate(freq.HRRReport{Index: e.Value, Sign: e.Sign})
	case *freq.SS:
		if len(e.Values) != m.K() {
			return fmt.Errorf("core: SS subset size %d, want %d", len(e.Values), m.K())
		}
		seen := make(map[int]bool, len(e.Values))
		for _, u := range e.Values {
			if u < 0 || u >= m.Domain() || seen[u] {
				return fmt.Errorf("core: SS subset value %d invalid or duplicated", u)
			}
			seen[u] = true
		}
		m.Aggregate(e.Values)
	default:
		return fmt.Errorf("core: unsupported oracle type %T", o)
	}
	return nil
}

func aggregateGRR(m *freq.GRR, e Envelope) error {
	if e.Value < 0 || e.Value >= m.Domain() {
		return fmt.Errorf("core: GRR value %d out of domain [0,%d)", e.Value, m.Domain())
	}
	m.Aggregate(e.Value)
	return nil
}

func decodeBits(s string, wantLen int) (*bitvec.Vector, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("core: bad bits encoding: %w", err)
	}
	var v bitvec.Vector
	if err := v.UnmarshalBinary(raw); err != nil {
		return nil, err
	}
	if v.Len() != wantLen {
		return nil, fmt.Errorf("core: bit vector length %d, want %d", v.Len(), wantLen)
	}
	return &v, nil
}

// Client is the user-side handle: it owns a local oracle instance used
// only for its client half.
type Client struct {
	oracle freq.Oracle
	params PrivacyParams
}

// NewClient returns a reporting client for the named mechanism. A nil
// source selects crypto/rand (the production configuration).
func NewClient(mechanism string, p PrivacyParams, src ldprand.Source) (*Client, error) {
	o, err := NewOracle(mechanism, p, src)
	if err != nil {
		return nil, err
	}
	return &Client{oracle: o, params: p}, nil
}

// Report privatizes one value into a wire envelope.
func (c *Client) Report(v int) (Envelope, error) {
	if v < 0 || v >= c.params.Domain {
		return Envelope{}, fmt.Errorf("core: value %d outside domain [0,%d)", v, c.params.Domain)
	}
	return Privatize(c.oracle, v)
}

// ReportBatch privatizes a slice of values into wire envelopes, the
// payload of one POST /report/batch. Each value is randomized
// independently, exactly as per-value Report calls would; batching
// changes only the transport framing, never the privacy guarantee.
func (c *Client) ReportBatch(values []int) ([]Envelope, error) {
	out := make([]Envelope, 0, len(values))
	for i, v := range values {
		env, err := c.Report(v)
		if err != nil {
			return nil, fmt.Errorf("core: batch value %d: %w", i, err)
		}
		out = append(out, env)
	}
	return out, nil
}

// Mechanism returns the client's mechanism name.
func (c *Client) Mechanism() string { return c.oracle.Name() }

// Params returns the client's privacy parameters.
func (c *Client) Params() PrivacyParams { return c.params }
