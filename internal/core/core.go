// Package core is the orchestration layer tying the mechanism packages
// into a deployable collection pipeline: a task-generic sharded
// aggregator, a registry of named collections, checkpoint persistence,
// and an HTTP collection service in the style of the deployed systems
// (clients POST privatized reports; analysts read estimates).
//
// The layer is written against task.Aggregator (internal/task) only:
// which task family a collection serves — frequency oracles, numeric
// means, private sketches — is a configuration tag resolved through
// the task registry, so new mechanism families plug in as adapter
// packages without touching this one. The frequency wire format and
// oracle registry themselves live in internal/task/freqtask; this
// package re-exports those names because the frequency path predates
// the task layer and its callers are everywhere.
//
// Only privatized data ever crosses the client boundary — the Client
// type runs the randomization locally and exposes no raw-value
// transport, which is the entire point of the local model.
package core

import (
	"fmt"

	"repro/internal/freq"
	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/freqtask"
)

// PrivacyParams is the user-facing privacy configuration of a
// frequency survey.
type PrivacyParams struct {
	Epsilon float64 `json:"epsilon"`
	Domain  int     `json:"domain"`
}

// Mechanism names accepted by the frequency oracle registry,
// re-exported from freqtask.
const (
	MechanismGRR = freqtask.MechanismGRR
	MechanismSUE = freqtask.MechanismSUE
	MechanismOUE = freqtask.MechanismOUE
	MechanismSHE = freqtask.MechanismSHE
	MechanismTHE = freqtask.MechanismTHE
	MechanismBLH = freqtask.MechanismBLH
	MechanismOLH = freqtask.MechanismOLH
	MechanismHRR = freqtask.MechanismHRR
	MechanismSS  = freqtask.MechanismSS
)

// Mechanisms lists the frequency registry names in presentation order.
func Mechanisms() []string { return freqtask.Mechanisms() }

// Envelope is the JSON wire format of one privatized frequency report.
type Envelope = freqtask.Envelope

// NewOracle builds a frequency oracle by registry name. A nil source
// selects crypto/rand.
func NewOracle(name string, p PrivacyParams, src ldprand.Source) (freq.Oracle, error) {
	return freqtask.NewOracle(name, p.Epsilon, p.Domain, src)
}

// Privatize runs the client half of the oracle on value v and wraps
// the report in an Envelope.
func Privatize(o freq.Oracle, v int) (Envelope, error) { return freqtask.Privatize(o, v) }

// Aggregate folds an Envelope into the matching oracle, rejecting
// malformed payloads (they arrive from the network).
func Aggregate(o freq.Oracle, e Envelope) error { return freqtask.Aggregate(o, e) }

// FreqTaskConfig is the task configuration of a frequency survey, the
// bridge from the legacy (mechanism, ε, domain) surface to the
// task-generic stack.
func FreqTaskConfig(mechanism string, p PrivacyParams) task.Config {
	return task.Config{Task: task.TypeFreq, Mechanism: mechanism, Epsilon: p.Epsilon, Domain: p.Domain}
}

// Client is the user-side handle of a frequency survey: it owns a
// local oracle instance used only for its client half.
type Client struct {
	oracle freq.Oracle
	params PrivacyParams
}

// NewClient returns a reporting client for the named mechanism. A nil
// source selects crypto/rand (the production configuration).
func NewClient(mechanism string, p PrivacyParams, src ldprand.Source) (*Client, error) {
	o, err := NewOracle(mechanism, p, src)
	if err != nil {
		return nil, err
	}
	return &Client{oracle: o, params: p}, nil
}

// Report privatizes one value into a wire envelope.
func (c *Client) Report(v int) (Envelope, error) {
	if v < 0 || v >= c.params.Domain {
		return Envelope{}, fmt.Errorf("core: value %d outside domain [0,%d)", v, c.params.Domain)
	}
	return Privatize(c.oracle, v)
}

// ReportBinary privatizes one value into a binary wire envelope, the
// counterpart of Report for binary-negotiated collections.
func (c *Client) ReportBinary(v int) ([]byte, error) {
	if v < 0 || v >= c.params.Domain {
		return nil, fmt.Errorf("core: value %d outside domain [0,%d)", v, c.params.Domain)
	}
	return freqtask.PrivatizeBinary(c.oracle, v)
}

// ReportBatch privatizes a slice of values into wire envelopes, the
// payload of one POST /report/batch. Each value is randomized
// independently, exactly as per-value Report calls would; batching
// changes only the transport framing, never the privacy guarantee.
func (c *Client) ReportBatch(values []int) ([]Envelope, error) {
	out := make([]Envelope, 0, len(values))
	for i, v := range values {
		env, err := c.Report(v)
		if err != nil {
			return nil, fmt.Errorf("core: batch value %d: %w", i, err)
		}
		out = append(out, env)
	}
	return out, nil
}

// Mechanism returns the client's mechanism name.
func (c *Client) Mechanism() string { return c.oracle.Name() }

// Params returns the client's privacy parameters.
func (c *Client) Params() PrivacyParams { return c.params }
