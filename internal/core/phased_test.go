package core

// Phase-aware task coverage: the interactive heavy-hitter protocol end
// to end over the HTTP surface (frontier → report → advance, manual
// and quota-driven), round-aware sharding equivalence, the checkpoint
// envelope (round + frontier, forward compat from v2 and untagged
// snapshots, future-version quarantine), mid-round kill → restart →
// finish-protocol, the estimate-response cache, and the
// advance/checkpoint/delete race regression.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/hhtask"
)

func hhCfg(shards, quota int) CollectionConfig {
	return CollectionConfig{
		Config:       task.Config{Task: task.TypeHH, Mechanism: hhtask.MechanismPEM, Epsilon: 2, Bits: 8, Levels: 4, K: 3},
		Shards:       shards,
		AdvanceQuota: quota,
	}
}

// plantedValue draws from the test population: ~40% hold 0xAB, ~20%
// hold 0x17, the rest spread uniformly over the 8-bit domain.
func plantedValue(src ldprand.Source) uint64 {
	switch ldprand.Intn(src, 10) {
	case 0, 1, 2, 3:
		return 0xAB
	case 4, 5:
		return 0x17
	default:
		return uint64(ldprand.Intn(src, 256))
	}
}

// fillHH drives n planted-population reports into the collection at
// its current round.
func fillHH(t *testing.T, c *Collection, seed uint64, n int) {
	t.Helper()
	client, err := hhtask.NewClient(2, 8, 4, ldprand.NewSplitMix64(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(seed + 1)
	round := c.Aggregator().Round()
	for i := 0; i < n; i++ {
		raw, err := client.Report(plantedValue(src), round)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Aggregator().Add(raw); err != nil {
			t.Fatal(err)
		}
	}
}

// decodeFrontier unpacks a FrontierResponse body plus its hh payload.
func decodeFrontier(t *testing.T, body []byte) (FrontierResponse, hhtask.Frontier) {
	t.Helper()
	var fr FrontierResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatalf("frontier response %s: %v", body, err)
	}
	var f hhtask.Frontier
	if err := json.Unmarshal(fr.Frontier, &f); err != nil {
		t.Fatalf("frontier payload %s: %v", fr.Frontier, err)
	}
	return fr, f
}

// TestPhasedProtocolOverHTTP is the tentpole acceptance test at the
// service level: an hh collection is created over POST /collections,
// a client drives all four rounds through frontier/report/advance, the
// planted heavy hitters come back from ?top=k, and the protocol's
// error surface (wrong round → 409, advance past done → 409, frontier
// of a one-shot task → 400) behaves.
func TestPhasedProtocolOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, MechanismGRR, 2)

	resp := postJSON(t, ts.URL+"/collections",
		[]byte(`{"name":"words","task":"hh","epsilon":2,"bits":8,"levels":4,"k":3,"shards":3}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	var created StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if created.Task != "hh" || created.Round == nil || *created.Round != 0 || created.Phase != "collecting" {
		t.Fatalf("created status %+v", created)
	}

	base := ts.URL + "/collections/words"
	client, err := hhtask.NewClient(2, 8, 4, ldprand.NewSplitMix64(61))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(62)
	for round := 0; round < 4; round++ {
		_, f := decodeFrontier(t, []byte(getBody(t, base+"/frontier")))
		if f.Round != round || f.Done {
			t.Fatalf("frontier round %d done %v, want round %d", f.Round, f.Done, round)
		}
		var batch []json.RawMessage
		for i := 0; i < 500; i++ {
			raw, err := client.Report(plantedValue(src), f.Round)
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, raw)
		}
		if resp := postJSON(t, base+"/report/batch", mustRaw(t, batch)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("round %d batch status %d", round, resp.StatusCode)
		}
		resp := postJSON(t, base+"/advance", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("advance status %d", resp.StatusCode)
		}
		fr, _ := decodeFrontier(t, readAll(t, resp))
		if fr.Round != round+1 {
			t.Fatalf("post-advance round %d want %d", fr.Round, round+1)
		}
	}

	// Done: results come back through the ordinary estimate plane.
	var er EstimateResponse
	if err := json.Unmarshal([]byte(getBody(t, base+"/estimate?top=2")), &er); err != nil {
		t.Fatal(err)
	}
	var hr hhtask.EstimateResult
	if err := json.Unmarshal(er.Estimate, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Phase != hhtask.PhaseDone || len(hr.Hits) != 2 {
		t.Fatalf("estimate %+v", hr)
	}
	if hr.Hits[0].Value != 0xAB {
		t.Fatalf("top hit %+v want 0xAB", hr.Hits[0])
	}
	var st StatusResponse
	if err := json.Unmarshal([]byte(getBody(t, base+"/status")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Round == nil || *st.Round != 4 || st.Phase != "done" || st.Reports != 2000 {
		t.Fatalf("status %+v", st)
	}

	// A stale-round report is 409, not 400 — the client must refetch
	// the frontier, not "fix" its envelope.
	stale, err := client.Report(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp := postJSON(t, base+"/report", stale); resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale report status %d want 409", resp.StatusCode)
	}
	// ... and so is a whole batch of them.
	if resp := postJSON(t, base+"/report/batch", mustRaw(t, []json.RawMessage{stale})); resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale batch status %d want 409", resp.StatusCode)
	}
	// Advancing a completed protocol is a conflict too.
	if resp := postJSON(t, base+"/advance", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("advance past done status %d want 409", resp.StatusCode)
	}
	// The phase plane of a one-shot collection is a client error.
	if resp, err := http.Get(ts.URL + "/frontier"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("frontier of freq collection: %v %d", err, resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/advance", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("advance of freq collection status %d want 400", resp.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConditionalAdvance pins the expected-round guard: POST /advance
// with {"round":N} closes round N exactly once — a second driver
// posting the same close gets 409 and the protocol does not burn an
// empty round — while an empty body stays unconditional.
func TestConditionalAdvance(t *testing.T) {
	_, ts := newTestServer(t, MechanismGRR, 2)
	if resp := postJSON(t, ts.URL+"/collections",
		[]byte(`{"name":"cond","task":"hh","epsilon":2,"bits":8,"levels":4,"k":3,"shards":2}`)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	base := ts.URL + "/collections/cond"
	resp := postJSON(t, base+"/advance", []byte(`{"round":0}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("conditional advance status %d", resp.StatusCode)
	}
	fr, _ := decodeFrontier(t, readAll(t, resp))
	if fr.Round != 1 {
		t.Fatalf("round %d after conditional advance, want 1", fr.Round)
	}
	// The racing duplicate: same expected round, now stale.
	if resp := postJSON(t, base+"/advance", []byte(`{"round":0}`)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale conditional advance status %d want 409", resp.StatusCode)
	}
	_, f := decodeFrontier(t, []byte(getBody(t, base+"/frontier")))
	if f.Round != 1 {
		t.Fatalf("stale conditional advance moved the round to %d", f.Round)
	}
	// An empty body advances unconditionally.
	if resp := postJSON(t, base+"/advance", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("unconditional advance status %d", resp.StatusCode)
	}
	_, f = decodeFrontier(t, []byte(getBody(t, base+"/frontier")))
	if f.Round != 2 {
		t.Fatalf("round %d after unconditional advance, want 2", f.Round)
	}
}

// TestAutoAdvanceQuota pins the quota-driven round boundary: with
// advance_quota configured, rounds close themselves as reports arrive
// and the whole protocol completes without one POST /advance.
func TestAutoAdvanceQuota(t *testing.T) {
	_, ts := newTestServer(t, MechanismGRR, 2)
	resp := postJSON(t, ts.URL+"/collections",
		[]byte(`{"name":"auto","task":"hh","epsilon":2,"bits":8,"levels":4,"k":3,"shards":2,"advance_quota":200}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	base := ts.URL + "/collections/auto"
	client, err := hhtask.NewClient(2, 8, 4, ldprand.NewSplitMix64(71))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(72)
	for round := 0; round < 4; round++ {
		_, f := decodeFrontier(t, []byte(getBody(t, base+"/frontier")))
		if f.Round != round {
			t.Fatalf("frontier round %d want %d", f.Round, round)
		}
		var batch []json.RawMessage
		for i := 0; i < 200; i++ {
			raw, err := client.Report(plantedValue(src), round)
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, raw)
		}
		if resp := postJSON(t, base+"/report/batch", mustRaw(t, batch)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("round %d batch status %d", round, resp.StatusCode)
		}
	}
	_, f := decodeFrontier(t, []byte(getBody(t, base+"/frontier")))
	if !f.Done {
		t.Fatalf("protocol not done after quota-driven rounds: %+v", f)
	}
}

// TestShardedAdvanceMatchesSingleAggregator pins the round boundary's
// sharding soundness: the same report stream through a 4-shard
// aggregator and a bare adapter produces bit-identical frontiers after
// every advance.
func TestShardedAdvanceMatchesSingleAggregator(t *testing.T) {
	sharded, err := NewShardedAggregator(hhCfg(4, 0).Config, 4)
	if err != nil {
		t.Fatal(err)
	}
	single, err := task.New(hhCfg(1, 0).Config)
	if err != nil {
		t.Fatal(err)
	}
	client, err := hhtask.NewClient(2, 8, 4, ldprand.NewSplitMix64(81))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(82)
	for round := 0; round < 4; round++ {
		for i := 0; i < 400; i++ {
			raw, err := client.Report(plantedValue(src), round)
			if err != nil {
				t.Fatal(err)
			}
			if err := sharded.Add(raw); err != nil {
				t.Fatal(err)
			}
			if err := single.Add(raw); err != nil {
				t.Fatal(err)
			}
		}
		if sharded.RoundReports() != 400 {
			t.Fatalf("round %d reports %d want 400", round, sharded.RoundReports())
		}
		if err := sharded.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := single.(task.Phased).Advance(); err != nil {
			t.Fatal(err)
		}
		want, err := single.(task.Phased).Frontier()
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Frontier()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d frontier diverged:\nsharded %s\nsingle  %s", round, got, want)
		}
		if sharded.Round() != round+1 || sharded.Collected() != (round+1)*400 {
			t.Fatalf("round %d: mirror round %d collected %d", round, sharded.Round(), sharded.Collected())
		}
	}
	if !sharded.Done() {
		t.Fatal("sharded aggregator not done")
	}
	if sharded.collectedWalk() != sharded.Collected() {
		t.Fatalf("walk %d != collected %d after advances", sharded.collectedWalk(), sharded.Collected())
	}
}

// TestPhasedMidRoundRestartResumesProtocol is the kill → restart →
// finish satellite at the store level: a checkpoint taken mid-round
// restores with a bit-identical frontier and the restored stack
// finishes the protocol and recovers the planted hitters.
func TestPhasedMidRoundRestartResumesProtocol(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	c, err := reg.Create("hh", hhCfg(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	fillHH(t, c, 91, 600)
	if err := c.Aggregator().Advance(); err != nil {
		t.Fatal(err)
	}
	fillHH(t, c, 92, 250) // round 1, mid-flight
	if err := store.SaveAll(reg); err != nil {
		t.Fatal(err)
	}
	wantFrontier, err := c.Aggregator().Frontier()
	if err != nil {
		t.Fatal(err)
	}

	// The envelope carries the round and the frontier it was captured
	// at.
	snap := readSnapshotFile(t, filepath.Join(dir, "hh.json"))
	if snap.Version != SnapshotVersion || snap.Round != 1 {
		t.Fatalf("snapshot version %d round %d", snap.Version, snap.Round)
	}
	if !bytes.Equal(snap.Frontier, wantFrontier) {
		t.Fatalf("snapshot frontier:\n%s\nlive:\n%s", snap.Frontier, wantFrontier)
	}

	// Kill; restore into a fresh stack.
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewCollectionRegistry()
	if _, err := store2.Load(reg2); err != nil {
		t.Fatal(err)
	}
	c2, ok := reg2.Get("hh")
	if !ok {
		t.Fatal("hh not restored")
	}
	agg := c2.Aggregator()
	if agg.Round() != 1 || agg.Done() || agg.RoundReports() != 250 || agg.Collected() != 850 {
		t.Fatalf("restored round %d done %v roundReports %d collected %d",
			agg.Round(), agg.Done(), agg.RoundReports(), agg.Collected())
	}
	gotFrontier, err := agg.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotFrontier, wantFrontier) {
		t.Fatalf("frontier changed across restart:\n%s\n%s", wantFrontier, gotFrontier)
	}

	// Finish the protocol on the restored stack.
	fillHH(t, c2, 93, 350)
	for round := 1; round < 4; round++ {
		if err := agg.Advance(); err != nil {
			t.Fatal(err)
		}
		if round < 3 {
			fillHH(t, c2, 94+uint64(round), 600)
		}
	}
	if !agg.Done() {
		t.Fatal("restored protocol did not finish")
	}
	est, err := agg.Estimate(map[string][]string{"top": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	var res hhtask.EstimateResult
	if err := json.Unmarshal(est, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].Value != 0xAB {
		t.Fatalf("restored protocol hits %+v want 0xAB on top", res.Hits)
	}
}

// TestSnapshotRoundTripPerTask pins the current envelope for every
// task family: each snapshot is written at the current version and
// restores to byte-identical estimates (one-shot tasks carry no
// round/frontier).
func TestSnapshotRoundTripPerTask(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()

	cf, err := reg.Create("freqs", FreqCollectionConfig(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, 2))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, cf, 101, 150)
	cm, err := reg.Create("means", meanCfg())
	if err != nil {
		t.Fatal(err)
	}
	fillMean(t, cm, 102, 150)
	cs, err := reg.Create("sketches", sketchCfg())
	if err != nil {
		t.Fatal(err)
	}
	fillSketch(t, cs, 103, 150)
	ch, err := reg.Create("hitters", hhCfg(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	fillHH(t, ch, 104, 150)
	if err := store.SaveAll(reg); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"freqs", "means", "sketches", "hitters"} {
		snap := readSnapshotFile(t, filepath.Join(dir, name+".json"))
		if snap.Version != SnapshotVersion {
			t.Errorf("%s snapshot version %d want %d", name, snap.Version, SnapshotVersion)
		}
		if phased := name == "hitters"; (len(snap.Frontier) > 0) != phased {
			t.Errorf("%s frontier presence = %v, want %v", name, len(snap.Frontier) > 0, phased)
		}
	}

	reg2 := NewCollectionRegistry()
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store2.Load(reg2); err != nil {
		t.Fatal(err)
	}
	query := map[string][]string{"item": {"alpha"}, "top": {"3"}}
	for _, name := range []string{"freqs", "means", "sketches", "hitters"} {
		before, _ := reg.Get(name)
		after, ok := reg2.Get(name)
		if !ok {
			t.Fatalf("%s not restored", name)
		}
		b, err := before.Aggregator().Estimate(query)
		if err != nil {
			t.Fatal(err)
		}
		a, err := after.Aggregator().Estimate(query)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s estimate changed across restore:\n%s\n%s", name, b, a)
		}
	}
}

// TestSnapshotV2RestoresUnchanged is the forward-compat satellite: a
// version-2 (PR 4-era) snapshot — task-tagged, no round/frontier,
// no checksum wrapper — restores bit-identically and is re-written at
// the current version.
func TestSnapshotV2RestoresUnchanged(t *testing.T) {
	dir := t.TempDir()
	oracle, err := NewOracle(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, ldprand.NewSplitMix64(111))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		oracle.Collect(i % 8)
	}
	state, err := oracle.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	v2 := []byte(`{"version":2,"name":"legacy2","config":{"task":"freq","mechanism":"OLH","epsilon":2,"domain":8,"shards":2},"state":` + string(state) + `}`)
	if err := os.WriteFile(filepath.Join(dir, "legacy2.json"), v2, 0o644); err != nil {
		t.Fatal(err)
	}

	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	restored, err := store.Load(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || restored[0] != "legacy2" {
		t.Fatalf("restored %v", restored)
	}
	c, _ := reg.Get("legacy2")
	if got, want := counts(t, c), oracle.EstimateCounts(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("v2 restore estimates %v want %v", got, want)
	}
	fill(t, c, 112, 5) // move the epoch so Save writes
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	snap := readSnapshotFile(t, filepath.Join(dir, "legacy2.json"))
	if snap.Version != SnapshotVersion {
		t.Fatalf("re-written snapshot version %d want %d", snap.Version, SnapshotVersion)
	}
}

// TestSnapshotVersion6Quarantined pins the version guard at exactly
// one past the current version — the first envelope this build must
// not guess at. The file is set aside, not restored, and startup
// continues.
func TestSnapshotVersion6Quarantined(t *testing.T) {
	dir := t.TempDir()
	blob := []byte(`{"version":6,"name":"next","config":{"mechanism":"GRR","epsilon":1,"domain":4},"state":null}`)
	if err := os.WriteFile(filepath.Join(dir, "next.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := store.Load(NewCollectionRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("restored %v from a future-version snapshot", restored)
	}
	if _, err := os.Stat(filepath.Join(dir, "next.json"+corruptExt)); err != nil {
		t.Fatal("future-version snapshot was not quarantined:", err)
	}
}

// TestTornRoundSnapshotQuarantined pins the round cross-check: a
// phased envelope whose recorded round disagrees with its state blob
// must not restore — it is set aside under .corrupt instead.
func TestTornRoundSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	c, err := reg.Create("torn", hhCfg(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	fillHH(t, c, 121, 50)
	if err := store.SaveAll(reg); err != nil {
		t.Fatal(err)
	}
	snap := readSnapshotFile(t, filepath.Join(dir, "torn.json"))
	snap.Round++ // the envelope now claims a round the state is not at
	// Re-wrap with a valid checksum: the corruption under test is the
	// round field, not the framing.
	writeSnapshotFile(t, filepath.Join(dir, "torn.json"), snap)
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewCollectionRegistry()
	restored, err := store2.Load(reg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 || reg2.Len() != 0 {
		t.Fatalf("restored %v from a torn-round snapshot", restored)
	}
	if _, err := os.Stat(filepath.Join(dir, "torn.json"+corruptExt)); err != nil {
		t.Fatal("torn-round snapshot was not quarantined:", err)
	}
}

// TestEstimateResponseCache pins the per-query cache satellite: a
// repeated query is served from the cache, a different query is not, a
// new report invalidates, and a round advance invalidates.
func TestEstimateResponseCache(t *testing.T) {
	agg, err := NewShardedAggregator(hhCfg(2, 0).Config, 2)
	if err != nil {
		t.Fatal(err)
	}
	client, err := hhtask.NewClient(2, 8, 4, ldprand.NewSplitMix64(131))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(132)
	addOne := func() {
		raw, err := client.Report(plantedValue(src), agg.Round())
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(raw); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		addOne()
	}

	q := map[string][]string{"top": {"3"}}
	first, err := agg.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if agg.EstimateCacheHits() != 0 {
		t.Fatalf("cache hits %d before any repeat", agg.EstimateCacheHits())
	}
	again, err := agg.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if agg.EstimateCacheHits() != 1 {
		t.Fatalf("cache hits %d after repeat, want 1", agg.EstimateCacheHits())
	}
	if !bytes.Equal(first, again) {
		t.Fatalf("cached estimate differs:\n%s\n%s", first, again)
	}
	// A distinct query misses, then hits on its own repeat.
	q2 := map[string][]string{"top": {"1"}}
	if _, err := agg.Estimate(q2); err != nil {
		t.Fatal(err)
	}
	if agg.EstimateCacheHits() != 1 {
		t.Fatalf("cache hits %d after distinct query, want 1", agg.EstimateCacheHits())
	}
	if _, err := agg.Estimate(q2); err != nil {
		t.Fatal(err)
	}
	if agg.EstimateCacheHits() != 2 {
		t.Fatalf("cache hits %d, want 2", agg.EstimateCacheHits())
	}
	// A new report moves the epoch: the next read recomputes.
	addOne()
	refreshed, err := agg.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if agg.EstimateCacheHits() != 2 {
		t.Fatalf("cache hit served a stale epoch (hits %d)", agg.EstimateCacheHits())
	}
	var before, after hhtask.EstimateResult
	if err := json.Unmarshal(first, &before); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(refreshed, &after); err != nil {
		t.Fatal(err)
	}
	if after.RoundReports != before.RoundReports+1 {
		t.Fatalf("refreshed estimate round reports %d want %d", after.RoundReports, before.RoundReports+1)
	}
	// An advance invalidates too: the cached payload names the old
	// round.
	if _, err := agg.Estimate(q); err != nil { // warm the cache
		t.Fatal(err)
	}
	if err := agg.Advance(); err != nil {
		t.Fatal(err)
	}
	advanced, err := agg.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(advanced, &after); err != nil {
		t.Fatal(err)
	}
	if after.Round != 1 {
		t.Fatalf("post-advance estimate served round %d, want 1", after.Round)
	}
}

// TestAdvanceCheckpointDeleteRace is the satellite regression: round
// advances, checkpoint flushes, estimate reads, ingestion and a
// DELETE+recreate of the same name hammer one phased collection
// concurrently; the test passing under -race with no deadlock — and
// the state directory still loading cleanly — is the assertion.
func TestAdvanceCheckpointDeleteRace(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	svc := NewMultiService(reg, store)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/collections",
		[]byte(`{"name":"hammer","task":"hh","epsilon":2,"bits":8,"levels":4,"k":3,"shards":4}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}

	const rounds = 12
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Reporters: current-round envelopes, tolerating wrong-round
	// rejections around every advance.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			client, err := hhtask.NewClient(2, 8, 4, ldprand.NewSplitMix64(seed))
			if err != nil {
				t.Error(err)
				return
			}
			src := ldprand.NewSplitMix64(seed + 1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c, ok := reg.Get("hammer")
				if !ok {
					continue // deleted; the deleter recreates it
				}
				round := c.Aggregator().Round()
				if round >= 4 {
					continue // protocol done; awaiting recreate
				}
				raw, err := client.Report(plantedValue(src), round)
				if err != nil {
					t.Error(err)
					return
				}
				_ = c.Aggregator().Add(raw) // wrong-round rejects are expected
			}
		}(uint64(141 + r))
	}
	// Checkpointer: continuous SaveAll, racing every advance.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := store.SaveAll(reg); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()
	// Estimator: merged reads must never observe a torn round.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c, ok := reg.Get("hammer")
				if !ok {
					continue
				}
				if _, err := c.Aggregator().Estimate(map[string][]string{"top": {"2"}}); err != nil {
					t.Errorf("estimate: %v", err)
					return
				}
			}
		}
	}()
	// Deleter: DELETE + recreate over HTTP, racing checkpoints and
	// advances on the same name.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/collections/hammer", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
				t.Errorf("delete status %d", resp.StatusCode)
				return
			}
			cr := postJSON(t, ts.URL+"/collections",
				[]byte(`{"name":"hammer","task":"hh","epsilon":2,"bits":8,"levels":4,"k":3,"shards":4}`))
			if cr.StatusCode != http.StatusCreated && cr.StatusCode != http.StatusConflict {
				t.Errorf("recreate status %d", cr.StatusCode)
				return
			}
		}
	}()

	// Advancer (foreground): drive many round boundaries through the
	// churn, then stop everyone.
	advanced := 0
	for advanced < rounds {
		c, ok := reg.Get("hammer")
		if !ok {
			continue
		}
		if err := c.Aggregator().Advance(); err == nil {
			advanced++
		} // "protocol complete" after delete/recreate churn resets: fine
	}
	close(stop)
	wg.Wait()

	// Whatever interleaving happened, the directory must hold either
	// no snapshot or a consistent one — never a torn round.
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store2.Load(NewCollectionRegistry()); err != nil {
		t.Fatalf("post-race state dir does not load: %v", err)
	}
}

// TestStatusUnchangedAcrossMidRoundRestart pins the /status plane's
// restart exactness: with a checkpoint mid-protocol and further
// journal-only reports on top, a kill → restart serves a byte-identical
// /status — in particular round_reports, which the restore derives from
// the aggregator's round counter rather than any per-report state.
func TestStatusUnchangedAcrossMidRoundRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	c, err := reg.Create("words", hhCfg(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Attach(c); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(reg, c); err != nil {
		t.Fatal(err)
	}
	client, err := hhtask.NewClient(2, 8, 4, ldprand.NewSplitMix64(151))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(152)
	ingest := func(id string, n int) {
		t.Helper()
		round := c.Aggregator().Round()
		batch := make([]json.RawMessage, n)
		for i := range batch {
			raw, err := client.Report(plantedValue(src), round)
			if err != nil {
				t.Fatal(err)
			}
			batch[i] = raw
		}
		if _, err := c.IngestBatch(id, batch); err != nil {
			t.Fatal(err)
		}
	}
	ingest("r0", 600)
	if err := c.AdvanceExpecting(0); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveAll(reg); err != nil { // checkpoint at round 1, 0 reports
		t.Fatal(err)
	}
	ingest("r1", 250) // journal-only: lives past the last checkpoint

	ts := httptest.NewServer(NewMultiService(reg, store).Handler())
	want := getBody(t, ts.URL+"/collections/words/status")
	ts.Close()
	var st StatusResponse
	if err := json.Unmarshal([]byte(want), &st); err != nil {
		t.Fatal(err)
	}
	if st.Round == nil || *st.Round != 1 || st.RoundReports == nil || *st.RoundReports != 250 || st.Reports != 850 {
		t.Fatalf("pre-kill status %s", want)
	}

	// Kill without a final checkpoint; restore from checkpoint + journal.
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewCollectionRegistry()
	if _, err := store2.Load(reg2); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(NewMultiService(reg2, store2).Handler())
	defer ts2.Close()
	got := getBody(t, ts2.URL+"/collections/words/status")
	if got != want {
		t.Fatalf("/status changed across restart:\nbefore %s\nafter  %s", want, got)
	}
}
