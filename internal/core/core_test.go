package core

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/task/freqtask"
)

func params() PrivacyParams { return PrivacyParams{Epsilon: 2, Domain: 8} }

func TestNewOracleAllMechanisms(t *testing.T) {
	for _, name := range Mechanisms() {
		o, err := NewOracle(name, params(), ldprand.NewSplitMix64(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if o.Name() != name {
			t.Errorf("oracle name %q for registry name %q", o.Name(), name)
		}
	}
}

func TestNewOracleRejectsBad(t *testing.T) {
	if _, err := NewOracle("NOPE", params(), nil); err == nil {
		t.Error("unknown mechanism accepted")
	}
	if _, err := NewOracle(MechanismGRR, PrivacyParams{Epsilon: 0, Domain: 8}, nil); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := NewOracle(MechanismGRR, PrivacyParams{Epsilon: 1, Domain: 1}, nil); err == nil {
		t.Error("domain 1 accepted")
	}
}

func TestEnvelopeRoundTripAllMechanisms(t *testing.T) {
	// Privatize on a "client" oracle, serialize through JSON, aggregate
	// on a fresh "server" oracle — the full wire path for every
	// mechanism, checking estimates converge on a skewed input.
	const n = 20000
	for _, name := range Mechanisms() {
		name := name
		t.Run(name, func(t *testing.T) {
			client, err := NewOracle(name, params(), ldprand.NewSplitMix64(2))
			if err != nil {
				t.Fatal(err)
			}
			server, err := NewOracle(name, params(), ldprand.NewSplitMix64(3))
			if err != nil {
				t.Fatal(err)
			}
			src := ldprand.NewSplitMix64(4)
			truth := make([]float64, 8)
			for i := 0; i < n; i++ {
				v := 0
				if ldprand.Float64(src) > 0.6 {
					v = 1 + ldprand.Intn(src, 7)
				}
				truth[v]++
				env, err := Privatize(client, v)
				if err != nil {
					t.Fatal(err)
				}
				data, err := json.Marshal(env)
				if err != nil {
					t.Fatal(err)
				}
				var back Envelope
				if err := json.Unmarshal(data, &back); err != nil {
					t.Fatal(err)
				}
				if err := Aggregate(server, back); err != nil {
					t.Fatal(err)
				}
			}
			if server.Collected() != n {
				t.Fatalf("collected %d", server.Collected())
			}
			est := server.EstimateCounts()
			tol := 5*math.Sqrt(server.TheoreticalVariance(n)) + 0.02*n
			if math.Abs(est[0]-truth[0]) > tol {
				t.Errorf("estimate %.0f truth %.0f (tol %.0f)", est[0], truth[0], tol)
			}
		})
	}
}

func TestAggregateRejectsMismatchedMechanism(t *testing.T) {
	grr, _ := NewOracle(MechanismGRR, params(), ldprand.NewSplitMix64(5))
	if err := Aggregate(grr, Envelope{Mechanism: "OLH", Value: 1}); err == nil {
		t.Fatal("mechanism mismatch accepted")
	}
}

func TestAggregateRejectsMalformed(t *testing.T) {
	cases := []struct {
		mech string
		env  Envelope
	}{
		{MechanismGRR, Envelope{Mechanism: "GRR", Value: 99}},
		{MechanismGRR, Envelope{Mechanism: "GRR", Value: -1}},
		{MechanismOUE, Envelope{Mechanism: "OUE", Bits: "!!!not-base64!!!"}},
		{MechanismOUE, Envelope{Mechanism: "OUE", Bits: ""}},
		{MechanismSHE, Envelope{Mechanism: "SHE", Reals: []float64{1, 2}}},
		{MechanismOLH, Envelope{Mechanism: "OLH", Value: 10000}},
		{MechanismHRR, Envelope{Mechanism: "HRR", Value: 0, Sign: 0}},
		{MechanismHRR, Envelope{Mechanism: "HRR", Value: -2, Sign: 1}},
	}
	for _, c := range cases {
		o, _ := NewOracle(c.mech, params(), ldprand.NewSplitMix64(6))
		if err := Aggregate(o, c.env); err == nil {
			t.Errorf("%s: malformed envelope accepted: %+v", c.mech, c.env)
		}
		if o.Collected() != 0 {
			t.Errorf("%s: rejected envelope still counted", c.mech)
		}
	}
}

func TestClientReport(t *testing.T) {
	c, err := NewClient(MechanismOLH, params(), ldprand.NewSplitMix64(7))
	if err != nil {
		t.Fatal(err)
	}
	if c.Mechanism() != "OLH" {
		t.Errorf("mechanism %q", c.Mechanism())
	}
	if c.Params().Domain != 8 {
		t.Errorf("params %+v", c.Params())
	}
	env, err := c.Report(3)
	if err != nil {
		t.Fatal(err)
	}
	if env.Mechanism != "OLH" {
		t.Errorf("envelope mechanism %q", env.Mechanism)
	}
	if _, err := c.Report(8); err == nil {
		t.Error("out-of-domain report accepted")
	}
	if _, err := c.Report(-1); err == nil {
		t.Error("negative report accepted")
	}
}

func TestServiceEndToEnd(t *testing.T) {
	svc, err := NewService(MechanismGRR, params())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	client, _ := NewClient(MechanismGRR, params(), ldprand.NewSplitMix64(8))
	const n = 2000
	src := ldprand.NewSplitMix64(9)
	truth := make([]float64, 8)
	for i := 0; i < n; i++ {
		v := ldprand.Intn(src, 3) // only values 0..2 occur
		truth[v]++
		env, err := client.Report(v)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(env)
		resp, err := http.Post(ts.URL+"/report", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("report status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/estimate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var est EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	if est.Reports != n || est.Mechanism != "GRR" || est.Task != "freq" {
		t.Fatalf("estimate response %+v", est)
	}
	var fr freqtask.EstimateResult
	if err := json.Unmarshal(est.Estimate, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Counts) != 8 || fr.Domain != 8 {
		t.Fatalf("estimate payload %+v", fr)
	}
	// Unused values should estimate near zero, used ones near truth.
	for v := 0; v < 8; v++ {
		if math.Abs(fr.Counts[v]-truth[v]) > 0.15*n {
			t.Errorf("value %d: estimate %.0f truth %.0f", v, fr.Counts[v], truth[v])
		}
	}

	status, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer status.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(status.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Reports != n || st.ReportBits < 1 {
		t.Fatalf("status response %+v", st)
	}
}

func TestServiceRejectsBadRequests(t *testing.T) {
	svc, _ := NewService(MechanismGRR, params())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Wrong method on /report.
	resp, _ := http.Get(ts.URL + "/report")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /report status %d", resp.StatusCode)
	}
	// Garbage body.
	resp, _ = http.Post(ts.URL+"/report", "application/json", bytes.NewReader([]byte("{")))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage report status %d", resp.StatusCode)
	}
	// Valid JSON, invalid report.
	body, _ := json.Marshal(Envelope{Mechanism: "GRR", Value: 999})
	resp, _ = http.Post(ts.URL+"/report", "application/json", bytes.NewReader(body))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid report status %d", resp.StatusCode)
	}
	// Wrong method on /estimate.
	resp, _ = http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(nil))
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /estimate status %d", resp.StatusCode)
	}
}

func TestServiceConcurrentReports(t *testing.T) {
	svc, _ := NewService(MechanismOUE, params())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const workers, per = 8, 50
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(seed uint64) {
			client, err := NewClient(MechanismOUE, params(), ldprand.NewSplitMix64(seed))
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < per; i++ {
				env, err := client.Report(i % 8)
				if err != nil {
					errs <- err
					return
				}
				body, _ := json.Marshal(env)
				resp, err := http.Post(ts.URL+"/report", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
			}
			errs <- nil
		}(uint64(w + 100))
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	resp, _ := http.Get(ts.URL + "/status")
	var st StatusResponse
	_ = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Reports != workers*per {
		t.Fatalf("reports %d want %d", st.Reports, workers*per)
	}
}
