// Write-ahead report journal: the durability half the checkpoint store
// alone cannot provide. Snapshots bound restart cost but are periodic,
// so every report accepted since the last checkpoint used to die with
// the process. The journal closes that window: accepted report batches
// (and round advances) are appended as CRC32C-framed records to a
// per-collection segment file BEFORE they are folded into the
// aggregator, and a restart replays the surviving frames on top of the
// restored snapshot. Checkpoints rotate the journal to a fresh segment
// and delete the superseded ones once the snapshot is durable, so the
// journal stays as short as the checkpoint interval.
//
// Frame format (little-endian):
//
//	[4 bytes payload length][4 bytes CRC32C of payload][payload JSON]
//
// A torn final frame — the expected debris of a crash mid-append — fails
// its length or checksum and is truncated away at replay; it was never
// acknowledged, so dropping it is exactly right. Replay never refuses
// startup.
package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fsio"
	"repro/internal/task"
)

// ErrJournal marks a failure to append to the write-ahead journal: the
// report was NOT durably recorded and must not be acknowledged. The
// HTTP layer maps it to 503 so clients retry (safely — retries are
// deduplicated by batch ID).
var ErrJournal = errors.New("core: report journal unavailable")

// ErrBatchInFlight is returned when a batch ID is claimed by a request
// still being processed; the retrying client should back off and try
// again, by which time the first attempt has completed (and the retry
// deduplicates) or failed (and the retry proceeds).
var ErrBatchInFlight = errors.New("core: batch with this idempotency key is still in flight")

// journalSyncEvery / journalSyncNone are the -journal-sync policies:
// fsync after every append (an acknowledged report survives power
// loss) or never (an acknowledged report survives process crashes via
// the page cache, but a power cut can lose the tail).
const (
	JournalSyncEvery = "always"
	JournalSyncNone  = "none"
)

// crcTable is the Castagnoli (CRC32C) polynomial, the standard choice
// for storage framing (iSCSI, ext4, leveldb).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame kinds. Batches carry report envelopes (and the dedup ID that
// acknowledged them); advances record a phased collection's round
// boundary so replay closes rounds at exactly the positions the live
// process did. The relay tier adds three kinds: merges carry a folded
// delta's state (so an acknowledged /merge is recoverable exactly like
// an acknowledged batch), flushes mark the point a relay cut its
// accumulated state into an outbound delta (replay re-cuts and re-emits
// the same delta under the same idempotency key), and adopts record a
// relay re-aligning with an upstream-published frontier.
const (
	recordBatch   = "batch"
	recordAdvance = "advance"
	recordMerge   = "merge"
	recordFlush   = "flush"
	recordAdopt   = "adopt"
)

// EncBinary tags binary-encoded payloads wherever an encoding is
// recorded: journal batch frames, checkpoint state, /status bodies.
// The zero value (absent) means JSON everywhere it appears.
const EncBinary = "bin"

// journalRecord is one frame's JSON payload.
type journalRecord struct {
	Kind     string            `json:"kind"`
	ID       string            `json:"id,omitempty"`       // batch/merge: idempotency key; flush: the cut delta's key
	Envs     []json.RawMessage `json:"envs,omitempty"`     // batch: JSON report envelopes as received
	Enc      string            `json:"enc,omitempty"`      // batch/merge: EncBinary when Bins/State is binary
	Bins     [][]byte          `json:"bins,omitempty"`     // batch: binary report payloads (base64 inside the frame JSON)
	Round    int               `json:"round,omitempty"`    // advance: the round that was closed; flush/adopt: round at the boundary
	State    []byte            `json:"state,omitempty"`    // merge: the delta's task state (base64 inside the frame JSON)
	Reports  int               `json:"reports,omitempty"`  // merge/flush: report count the state carries
	Frontier json.RawMessage   `json:"frontier,omitempty"` // adopt: the upstream frontier that was adopted
}

// maxFrameBytes bounds a replayed frame's claimed payload length: the
// largest legitimate frame is one full /report/batch body plus record
// framing, so anything claiming more is corruption, not data.
const maxFrameBytes = maxBatchBytes + (1 << 20)

// segStats tracks one segment's outstanding (not yet checkpointed)
// frames, the "journal lag" /healthz reports.
type segStats struct {
	frames int
	bytes  int64
}

// journal is one collection's write-ahead log, a sequence of segment
// files <name>.journal.<gen>. Appends go to the active (highest)
// generation; a checkpoint rotates to the next generation and, once
// its snapshot is durable, drops every generation it superseded.
type journal struct {
	fs       fsio.FS
	dir      string
	name     string
	syncEach bool

	// mu serializes appends with each other and with rotation: the
	// collection's walMu orders append+fold pairs against checkpoint
	// boundaries, but concurrent ingests hold walMu shared, so frame
	// writes and the stats map need their own lock.
	mu      sync.Mutex
	f       fsio.File
	gen     int
	broken  error // first append failure; set until a checkpoint clears it
	pending map[int]*segStats
}

func newJournal(fsys fsio.FS, dir, name string, gen int, syncPolicy string) *journal {
	return &journal{
		fs:       fsys,
		dir:      dir,
		name:     name,
		syncEach: syncPolicy != JournalSyncNone,
		gen:      gen,
		pending:  make(map[int]*segStats),
	}
}

func journalSegPath(dir, name string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.journal.%06d", name, gen))
}

// parseGen parses a segment file's generation suffix; an error means
// the file is not a live segment (quarantined, or foreign).
func parseGen(suffix string) (int, error) {
	gen, err := strconv.Atoi(suffix)
	if err != nil {
		return 0, err
	}
	if gen < 0 {
		return 0, fmt.Errorf("negative generation %d", gen)
	}
	return gen, nil
}

// segRef is one on-disk segment.
type segRef struct {
	gen  int
	path string
}

// journalSegments lists the collection's segment files sorted by
// generation. Files matching the glob but without a numeric generation
// suffix are ignored (they are not ours to interpret).
func journalSegments(fsys fsio.FS, dir, name string) ([]segRef, error) {
	matches, err := fsys.Glob(filepath.Join(dir, name+".journal.*"))
	if err != nil {
		return nil, err
	}
	segs := make([]segRef, 0, len(matches))
	for _, m := range matches {
		gen, err := parseGen(strings.TrimPrefix(filepath.Base(m), name+".journal."))
		if err != nil {
			continue
		}
		segs = append(segs, segRef{gen: gen, path: m})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].gen < segs[j].gen })
	return segs, nil
}

// frame encodes one record: length, CRC32C, payload.
func frame(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	return buf, nil
}

// append writes one frame to the active segment, creating it if
// needed, syncing per policy. Any failure marks the journal broken:
// every later append fails too, so nothing further is acknowledged
// until a successful checkpoint supersedes the journal and clears the
// flag — the invariant "ack ⇒ durably journaled or checkpointed" holds
// even across partial writes.
func (j *journal) append(rec journalRecord) error {
	return j.appendWith(rec, false)
}

// appendSync appends one frame and fsyncs it regardless of the sync
// policy. Flush boundaries use it: the frame is the only durable
// record that a delta left the aggregator, so "delta acknowledged to
// the outbox ⇒ flush frame durable" must hold even under -journal-sync
// none.
func (j *journal) appendSync(rec journalRecord) error {
	return j.appendWith(rec, true)
}

func (j *journal) appendWith(rec journalRecord, forceSync bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return fmt.Errorf("%w (since: %v)", ErrJournal, j.broken)
	}
	buf, err := frame(rec)
	if err != nil {
		return fmt.Errorf("%w: encoding frame: %v", ErrJournal, err)
	}
	if j.f == nil {
		f, err := j.fs.OpenFile(journalSegPath(j.dir, j.name, j.gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			j.broken = err
			return fmt.Errorf("%w: %v", ErrJournal, err)
		}
		j.f = f
	}
	// One Write call per frame: a torn write can split a frame (the
	// replay truncates it) but frames never interleave.
	if _, err := j.f.Write(buf); err != nil {
		j.broken = err
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	if j.syncEach || forceSync {
		if err := j.f.Sync(); err != nil {
			j.broken = err
			return fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	st := j.pending[j.gen]
	if st == nil {
		st = &segStats{}
		j.pending[j.gen] = st
	}
	st.frames++
	st.bytes += int64(len(buf))
	return nil
}

// rotate closes the active segment and moves appends to the next
// generation, returning the new generation. Every frame in generations
// below the returned one is folded into the aggregator by the time the
// caller (holding the collection's exclusive WAL lock) snapshots it.
func (j *journal) rotate() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		// Acked frames were already synced per policy; a Close error
		// here cannot lose acknowledged data.
		_ = j.f.Close() //ldplint:ok fsiocheck acked frames already synced; nothing to lose at close
		j.f = nil
	}
	j.gen++
	return j.gen
}

// dropBefore removes every segment file with generation < gen — they
// are superseded by a durable snapshot — and clears the broken flag:
// the journal restarts empty, so earlier append failures no longer
// taint it.
func (j *journal) dropBefore(gen int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	segs, err := journalSegments(j.fs, j.dir, j.name)
	if err != nil {
		return err
	}
	var errs []error
	for _, s := range segs {
		if s.gen >= gen {
			continue
		}
		if err := j.fs.Remove(s.path); err != nil {
			errs = append(errs, err)
			continue
		}
		delete(j.pending, s.gen)
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	j.broken = nil
	return nil
}

// addExisting seeds the lag accounting with a pre-restart segment the
// restart replayed (its frames are outstanding until the next
// checkpoint drops them).
func (j *journal) addExisting(gen, frames int, bytes int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.pending[gen] = &segStats{frames: frames, bytes: bytes}
}

// lag sums the outstanding (un-checkpointed) frames and bytes.
func (j *journal) lag() (frames int, bytes int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, st := range j.pending {
		frames += st.frames
		bytes += st.bytes
	}
	return frames, bytes
}

// isBroken reports whether appends are failing (journal unavailable
// until the next successful checkpoint).
func (j *journal) isBroken() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.broken != nil
}

func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		_ = j.f.Close() //ldplint:ok fsiocheck acked frames already synced; nothing to lose at close
		j.f = nil
	}
}

// nextFrame decodes the frame at the start of data, returning the
// record, the frame's total size, and whether a sound frame was there
// at all. A torn length, an insane length, a checksum mismatch or
// checksummed garbage all report !ok: framing has lost sync and
// everything from here on is untrusted.
func nextFrame(data []byte) (journalRecord, int, bool) {
	if len(data) < 8 {
		return journalRecord{}, 0, false // torn inside the header
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	sum := binary.LittleEndian.Uint32(data[4:8])
	if n > maxFrameBytes || 8+n > len(data) {
		return journalRecord{}, 0, false // torn or insane length
	}
	payload := data[8 : 8+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return journalRecord{}, 0, false // bit rot or torn write inside the frame
	}
	var rec journalRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return journalRecord{}, 0, false // checksummed garbage: still not a record
	}
	return rec, 8 + n, true
}

// parseFrames walks a segment's bytes and returns the decoded records
// plus the offset of the first bad frame (== len(data) when the whole
// segment is sound).
func parseFrames(data []byte) (recs []journalRecord, goodLen int) {
	off := 0
	for {
		rec, n, ok := nextFrame(data[off:])
		if !ok {
			return recs, off
		}
		recs = append(recs, rec)
		off += n
	}
}

// BatchResult is the outcome of one idempotent batch ingest.
type BatchResult struct {
	Accepted int
	Rejected int
	// Replayed marks a deduplicated retry: the batch was already
	// aggregated, the recorded outcome is returned again.
	Replayed bool
	// RejectErr details per-envelope rejections (a client-side error;
	// the batch's accepted remainder was still aggregated).
	RejectErr error
}

// IngestBatch runs the write-ahead ingest path for one report batch:
// claim the idempotency key (dedup retries, fence concurrent
// duplicates), append the batch to the journal, then fold it into the
// aggregator — in that order, so an acknowledged batch is always
// recoverable and an unacknowledged one is never double-counted when
// the client retries it. id may be empty (no deduplication; the batch
// is still journaled).
func (c *Collection) IngestBatch(id string, batch []json.RawMessage) (BatchResult, error) {
	return c.ingestBatch(id, journalRecord{Kind: recordBatch, ID: id, Envs: batch}, len(batch),
		func() (int, error) { return c.agg.AddBatch(batch) })
}

// IngestBatchBinary is the write-ahead ingest path for a batch of
// binary wire payloads: the journal frame carries the raw payload
// bytes (Enc/Bins instead of Envs), and replay folds them through the
// same binary decoder the live path used. The WAL ordering, dedup and
// acknowledgment rules are exactly IngestBatch's.
func (c *Collection) IngestBatchBinary(id string, batch [][]byte) (BatchResult, error) {
	return c.ingestBatch(id, journalRecord{Kind: recordBatch, ID: id, Enc: EncBinary, Bins: batch}, len(batch),
		func() (int, error) { return c.agg.AddBatchBinary(batch) })
}

// ingestBatch runs the claim → journal → fold sequence shared by the
// JSON and binary batch paths.
func (c *Collection) ingestBatch(id string, rec journalRecord, size int, fold func() (int, error)) (BatchResult, error) {
	if id != "" {
		c.dedupMu.Lock()
		mark, state := c.dedup.claim(id)
		c.dedupMu.Unlock()
		switch state {
		case dedupDone:
			return BatchResult{Accepted: mark.Accepted, Rejected: mark.Rejected, Replayed: true}, nil
		case dedupInflight:
			return BatchResult{}, ErrBatchInFlight
		}
	}
	c.walMu.RLock()
	if c.journal != nil {
		if err := c.journal.append(rec); err != nil {
			c.walMu.RUnlock()
			if id != "" {
				c.dedupMu.Lock()
				c.dedup.abandon(id)
				c.dedupMu.Unlock()
			}
			return BatchResult{}, err
		}
	}
	accepted, rejectErr := fold()
	c.walMu.RUnlock()
	res := BatchResult{Accepted: accepted, Rejected: size - accepted, RejectErr: rejectErr}
	if id != "" {
		c.dedupMu.Lock()
		c.dedup.complete(BatchMark{ID: id, Accepted: res.Accepted, Rejected: res.Rejected})
		c.dedupMu.Unlock()
	}
	return res, nil
}

// IngestReport journals and folds one report envelope (the WAL
// ordering of IngestBatch, without deduplication — single reports
// carry no idempotency key).
func (c *Collection) IngestReport(raw json.RawMessage) error {
	c.walMu.RLock()
	defer c.walMu.RUnlock()
	if c.journal != nil {
		if err := c.journal.append(journalRecord{Kind: recordBatch, Envs: []json.RawMessage{raw}}); err != nil {
			return err
		}
	}
	return c.agg.Add(raw)
}

// IngestReportBinary journals and folds one binary wire payload, the
// binary counterpart of IngestReport.
func (c *Collection) IngestReportBinary(payload []byte) error {
	c.walMu.RLock()
	defer c.walMu.RUnlock()
	if c.journal != nil {
		if err := c.journal.append(journalRecord{Kind: recordBatch, Enc: EncBinary, Bins: [][]byte{payload}}); err != nil {
			return err
		}
	}
	return c.agg.AddBinary(payload)
}

// AdvanceExpecting closes the collection's current round (see
// ShardedAggregator.AdvanceExpecting) and journals the boundary, under
// the exclusive WAL lock so no report batch straddles it: every
// journaled frame lies wholly before or wholly after the advance
// frame, exactly matching the order the aggregator saw.
func (c *Collection) AdvanceExpecting(expect int) error {
	c.walMu.Lock()
	defer c.walMu.Unlock()
	round := c.agg.Round()
	if err := c.agg.AdvanceExpecting(expect); err != nil {
		return err
	}
	c.journalAdvanceLocked(round)
	return nil
}

// MaybeAdvance quota-advances the round (see
// ShardedAggregator.MaybeAdvance), journaling the boundary like
// AdvanceExpecting. The lock-free pre-check keeps per-report polling
// off the WAL lock.
func (c *Collection) MaybeAdvance(quota int) (bool, error) {
	if quota <= 0 || !c.agg.Phased() {
		return false, nil
	}
	if c.agg.Done() || c.agg.RoundReports() < quota {
		return false, nil
	}
	c.walMu.Lock()
	defer c.walMu.Unlock()
	round := c.agg.Round()
	advanced, err := c.agg.MaybeAdvance(quota)
	if advanced {
		c.journalAdvanceLocked(round)
	}
	return advanced, err
}

// journalAdvanceLocked appends the advance frame for a round that was
// just closed; the caller holds walMu exclusively. A failed append
// leaves the advance applied in memory but unjournaled — the journal
// is then broken, so no later report is acknowledged until a
// checkpoint (which the serving layer triggers after every advance)
// persists the post-advance state and resets the journal; a crash in
// between only loses unacknowledged work.
func (c *Collection) journalAdvanceLocked(round int) {
	if c.journal == nil {
		return
	}
	if err := c.journal.append(journalRecord{Kind: recordAdvance, Round: round}); err != nil {
		log.Printf("core: journaling advance of collection %q past round %d: %v", c.name, round, err)
	}
}

// MergeResult is the outcome of folding one delta.
type MergeResult struct {
	// Accepted is the number of reports the delta's state carried into
	// the aggregator.
	Accepted int
	// Replayed marks a deduplicated retry: the delta was already
	// folded, the recorded outcome is returned again.
	Replayed bool
}

// IngestMerge folds one relay delta through the write-ahead path:
// claim the idempotency key, decode and validate the delta's state,
// journal it, then fold it with the exact Merge machinery — claim →
// validate → journal → fold, so an acknowledged delta is always
// recoverable, a retried one never double-counts, and a delta that
// cannot fold (wrong round, undecodable state) is rejected BEFORE it
// is journaled — a frame that would fail at replay must never be
// written. d.ID may be empty (no deduplication; still journaled).
//
// Phased collections additionally require the delta's round position
// to match the collection's: the check runs under the shared WAL lock,
// where the round cannot move (advances hold it exclusively), so a
// delta validated here cannot become wrong-round before its fold. A
// mismatch wraps task.ErrWrongRound for the HTTP layer's 409 mapping.
func (c *Collection) IngestMerge(d Delta) (MergeResult, error) {
	id := d.ID
	if id != "" {
		c.dedupMu.Lock()
		mark, state := c.dedup.claim(id)
		c.dedupMu.Unlock()
		switch state {
		case dedupDone:
			return MergeResult{Accepted: mark.Accepted, Replayed: true}, nil
		case dedupInflight:
			return MergeResult{}, ErrBatchInFlight
		}
	}
	abandon := func() {
		if id != "" {
			c.dedupMu.Lock()
			c.dedup.abandon(id)
			c.dedupMu.Unlock()
		}
	}
	c.walMu.RLock()
	delta, err := c.agg.NewDelta(d.State, d.Enc == EncBinary)
	if err != nil {
		c.walMu.RUnlock()
		abandon()
		return MergeResult{}, err
	}
	if c.agg.Phased() {
		p, ok := delta.(task.Phased)
		if !ok {
			c.walMu.RUnlock()
			abandon()
			return MergeResult{}, fmt.Errorf("core: delta for phased collection %q carries no phase", c.name)
		}
		if p.Round() != c.agg.Round() || p.Done() != c.agg.Done() {
			round, done := c.agg.Round(), c.agg.Done()
			c.walMu.RUnlock()
			abandon()
			return MergeResult{}, fmt.Errorf("core: delta at round %d (done=%v) cannot merge into collection %q at round %d (done=%v): %w",
				p.Round(), p.Done(), c.name, round, done, task.ErrWrongRound)
		}
	}
	if c.journal != nil {
		rec := journalRecord{Kind: recordMerge, ID: id, Enc: d.Enc, State: d.State, Reports: delta.Collected()}
		if err := c.journal.append(rec); err != nil {
			c.walMu.RUnlock()
			abandon()
			return MergeResult{}, err
		}
	}
	n, err := c.agg.FoldDelta(delta)
	c.walMu.RUnlock()
	if err != nil {
		// Journaled but not folded: replay will hit the same failure and
		// truncate the frame as corruption. Do not acknowledge.
		abandon()
		return MergeResult{}, err
	}
	if id != "" {
		c.dedupMu.Lock()
		c.dedup.complete(BatchMark{ID: id, Accepted: n})
		c.dedupMu.Unlock()
	}
	return MergeResult{Accepted: n}, nil
}

// CutDelta captures everything the collection has accumulated since
// its last cut as an outbound Delta and drains the shards, journaling
// a flush frame at the boundary. The frame is appended (and always
// fsynced, whatever the sync policy) BEFORE the drain: it is the only
// durable record that the cut state left the aggregator, so a crash
// anywhere after it replays the pre-cut frames, re-cuts the identical
// state under the identical idempotency key, and re-emits it — the
// upstream's dedup index makes the resend fold exactly once.
//
// Returns (nil, nil) when the collection holds no reports — nothing to
// flush, no frame written. id names the cut for upstream deduplication.
func (c *Collection) CutDelta(id string) (*Delta, error) {
	c.walMu.Lock()
	defer c.walMu.Unlock()
	return c.cutLocked(id, true)
}

// CutAndAdopt cuts the collection's accumulated state (when any) and
// then re-aligns it with an upstream-published frontier, as one atomic
// step under the exclusive WAL lock — the force-flush a relay performs
// when its round view went stale: nothing already accepted is lost to
// the adoption, and no report lands between the cut and the adopt.
// The returned Delta (nil when the collection was empty) still carries
// the OLD round; the upstream will 409 it, and the caller strands it
// for the operator rather than dropping acknowledged reports.
func (c *Collection) CutAndAdopt(id string, frontier json.RawMessage) (*Delta, error) {
	c.walMu.Lock()
	defer c.walMu.Unlock()
	d, err := c.cutLocked(id, true)
	if err != nil {
		return nil, err
	}
	if err := c.adoptLocked(frontier); err != nil {
		return d, err
	}
	return d, nil
}

// AdoptFrontier re-aligns a phased collection with an upstream
// frontier without cutting (boot-time mirroring of a virgin relay
// collection). Any accumulated current-round reports are discarded —
// callers flush first (or use CutAndAdopt).
func (c *Collection) AdoptFrontier(frontier json.RawMessage) error {
	c.walMu.Lock()
	defer c.walMu.Unlock()
	return c.adoptLocked(frontier)
}

// cutLocked is CutDelta under an already-held exclusive WAL lock.
// Replay reuses it with journalFrame=false: the flush frame being
// replayed is already durable, and the journal is not yet installed.
func (c *Collection) cutLocked(id string, journalFrame bool) (*Delta, error) {
	if c.agg.Collected() == 0 {
		return nil, nil
	}
	merged, err := c.agg.Merged()
	if err != nil {
		return nil, err
	}
	state, enc, err := marshalTaskState(merged)
	if err != nil {
		return nil, err
	}
	d := &Delta{
		Version:    DeltaVersion,
		Collection: c.name,
		ID:         id,
		Config:     c.cfg.Config,
		Reports:    merged.Collected(),
		Enc:        enc,
		State:      state,
	}
	if p, ok := merged.(task.Phased); ok {
		d.Round, d.Done = p.Round(), p.Done()
	}
	if journalFrame && c.journal != nil {
		if err := c.journal.appendSync(journalRecord{Kind: recordFlush, ID: id, Reports: d.Reports, Round: d.Round}); err != nil {
			return nil, err
		}
	}
	if err := c.agg.Drain(); err != nil {
		return nil, err
	}
	return d, nil
}

// adoptLocked applies an upstream frontier and journals the adopt
// frame; the caller holds walMu exclusively. Like advances, a failed
// append leaves the adoption applied in memory but the journal broken
// (no later report acknowledged until a checkpoint resets it); a relay
// that crashes in between simply re-syncs with the upstream frontier
// at boot.
func (c *Collection) adoptLocked(frontier json.RawMessage) error {
	if err := c.agg.AdoptFrontier(frontier); err != nil {
		return err
	}
	if c.journal != nil {
		if err := c.journal.appendSync(journalRecord{Kind: recordAdopt, Frontier: frontier, Round: c.agg.Round()}); err != nil {
			log.Printf("core: journaling frontier adoption of collection %q at round %d: %v", c.name, c.agg.Round(), err)
		}
	}
	return nil
}
