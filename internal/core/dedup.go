package core

import "container/list"

// maxDedupEntries bounds the per-collection batch-ID memory. Dedup
// exists to absorb client retries, which happen within seconds of the
// original attempt, so the window only needs to cover the most recent
// batches — 4096 IDs outlast any sane retry policy while keeping the
// snapshot overhead (one short string plus two ints per entry) small.
const maxDedupEntries = 4096

// BatchMark is the remembered outcome of one idempotent batch: what
// the server answered when it first accepted the ID. It is persisted
// (in journal frames and snapshot envelopes) so a retry after a
// restart still deduplicates.
type BatchMark struct {
	ID       string `json:"id"`
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
}

// dedupState classifies a claim on a batch ID.
type dedupState int

const (
	dedupNew      dedupState = iota // ID unseen: the caller owns processing it
	dedupInflight                   // another request is processing it right now
	dedupDone                       // processed: the recorded mark answers the retry
)

// dedupLRU is a bounded most-recently-used memory of batch IDs. A
// claim inserts an in-flight placeholder, so two concurrent requests
// with one ID can never both aggregate it: the loser is told to retry
// (by which time the winner has completed or abandoned). Entries are
// evicted oldest-first past the cap. Methods are not safe for
// concurrent use; the owning Collection locks around them.
type dedupLRU struct {
	m map[string]*list.Element
	l *list.List // front = most recent
}

type dedupEntry struct {
	mark BatchMark
	done bool
}

func newDedupLRU() *dedupLRU {
	return &dedupLRU{m: make(map[string]*list.Element), l: list.New()}
}

// claim looks the ID up, inserting an in-flight placeholder when it is
// new. dedupDone comes with the recorded mark.
func (d *dedupLRU) claim(id string) (BatchMark, dedupState) {
	if e, ok := d.m[id]; ok {
		d.l.MoveToFront(e)
		ent := e.Value.(*dedupEntry)
		if !ent.done {
			return BatchMark{}, dedupInflight
		}
		return ent.mark, dedupDone
	}
	d.insert(&dedupEntry{mark: BatchMark{ID: id}})
	return BatchMark{}, dedupNew
}

// complete records the outcome of a claimed ID (or re-records a
// replayed one).
func (d *dedupLRU) complete(m BatchMark) {
	if e, ok := d.m[m.ID]; ok {
		d.l.MoveToFront(e)
		*e.Value.(*dedupEntry) = dedupEntry{mark: m, done: true}
		return
	}
	d.insert(&dedupEntry{mark: m, done: true})
}

// abandon forgets a claimed ID whose processing failed before anything
// was aggregated, so the client's retry is treated as new.
func (d *dedupLRU) abandon(id string) {
	if e, ok := d.m[id]; ok {
		d.l.Remove(e)
		delete(d.m, id)
	}
}

func (d *dedupLRU) insert(ent *dedupEntry) {
	d.m[ent.mark.ID] = d.l.PushFront(ent)
	for d.l.Len() > maxDedupEntries {
		oldest := d.l.Back()
		d.l.Remove(oldest)
		delete(d.m, oldest.Value.(*dedupEntry).mark.ID)
	}
}

// marks returns the completed entries oldest-first, the order seed
// re-inserts them in so recency survives a snapshot round trip.
func (d *dedupLRU) marks() []BatchMark {
	out := make([]BatchMark, 0, d.l.Len())
	for e := d.l.Back(); e != nil; e = e.Prev() {
		if ent := e.Value.(*dedupEntry); ent.done {
			out = append(out, ent.mark)
		}
	}
	return out
}

// seed restores completed entries from a snapshot, oldest-first.
func (d *dedupLRU) seed(ms []BatchMark) {
	for _, m := range ms {
		d.complete(m)
	}
}
