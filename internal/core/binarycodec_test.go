package core

// Cross-codec properties of the binary report/state formats: a state
// written in either codec restores to the same aggregate bit for bit,
// re-encoding is a fixed point, both wire forms fold identically, the
// binary HTTP surface negotiates per collection, and legacy (v2–v4)
// checkpoint files still restore byte-identically.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/cmstask"
	"repro/internal/task/meantask"
)

// codecCases enumerates one collection per task family and mechanism
// shape worth cross-checking, with a filler that drives deterministic
// reports into it.
func codecCases() []struct {
	name string
	cfg  CollectionConfig
	fill func(t *testing.T, c *Collection, seed uint64, n int)
} {
	freq := func(mech string) CollectionConfig {
		return FreqCollectionConfig(mech, PrivacyParams{Epsilon: 1.5, Domain: 16}, 2)
	}
	hcms := CollectionConfig{
		Config: task.Config{Task: task.TypeSketch, Mechanism: cmstask.MechanismHCMS, Epsilon: 2, Width: 32, Hashes: 4, SketchSeed: 9},
		Shards: 2,
	}
	return []struct {
		name string
		cfg  CollectionConfig
		fill func(t *testing.T, c *Collection, seed uint64, n int)
	}{
		{"freq-GRR", freq(MechanismGRR), fill},
		{"freq-OUE", freq(MechanismOUE), fill},
		{"freq-SHE", freq(MechanismSHE), fill},
		{"freq-THE", freq(MechanismTHE), fill},
		{"freq-OLH", freq(MechanismOLH), fill},
		{"freq-HRR", freq(MechanismHRR), fill},
		{"freq-SS", freq(MechanismSS), fill},
		{"mean-harmony", meanCfg(), fillMean},
		{"sketch-CMS", sketchCfg(), fillSketch},
		{"sketch-HCMS", hcms, fillSketch},
		{"hh-PEM", hhCfg(2, 0), fillHH},
	}
}

// TestCrossCodecStateBitIdentical is the cross-codec property: for a
// populated aggregate, state → binary → restore and state → JSON →
// restore land on the same aggregate bit for bit (their re-marshaled
// states are equal in both codecs), and binary re-encode is a fixed
// point.
func TestCrossCodecStateBitIdentical(t *testing.T) {
	for _, tc := range codecCases() {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewCollectionRegistry()
			c, err := reg.Create("x", tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			tc.fill(t, c, 77, 120)
			agg := c.Aggregator()
			if !agg.BinaryState() {
				t.Fatal("task has no binary state codec")
			}
			jsonState, err := agg.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			binState, err := agg.MarshalStateBinary()
			if err != nil {
				t.Fatal(err)
			}
			mk := func() *ShardedAggregator {
				a, err := NewShardedAggregator(tc.cfg.Config, 2)
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
			fromJSON, fromBin := mk(), mk()
			if err := fromJSON.RestoreState(jsonState); err != nil {
				t.Fatal(err)
			}
			if err := fromBin.RestoreStateBinary(binState); err != nil {
				t.Fatal(err)
			}
			j1, err := fromJSON.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			j2, err := fromBin.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1, j2) {
				t.Fatalf("JSON-restored and binary-restored states differ:\n%s\nvs\n%s", j1, j2)
			}
			b1, err := fromJSON.MarshalStateBinary()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := fromBin.MarshalStateBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, binState) || !bytes.Equal(b2, binState) {
				t.Fatal("binary re-encode after restore is not a fixed point")
			}
			t.Logf("%s: state %d bytes JSON, %d bytes binary", tc.name, len(jsonState), len(binState))
		})
	}
}

// TestBinaryWireMatchesJSON pins wire-form equivalence: two clients
// seeded identically produce the same underlying randomized report, so
// folding one through the JSON wire and the other through the binary
// wire must land two aggregators on bit-identical states.
func TestBinaryWireMatchesJSON(t *testing.T) {
	// One shard each: shard routing hashes the payload bytes, so the
	// same report's JSON and binary forms land on different stripes,
	// and float summation across stripes is order-dependent. With a
	// single stripe, the fold order is identical and the comparison
	// can demand bit equality.
	const n = 80
	check := func(t *testing.T, cfg task.Config, report func(i int) (json.RawMessage, []byte)) {
		t.Helper()
		aj, err := NewShardedAggregator(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := NewShardedAggregator(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !ab.BinaryWire() {
			t.Fatal("task does not accept binary reports")
		}
		for i := 0; i < n; i++ {
			raw, bin := report(i)
			if err := aj.Add(raw); err != nil {
				t.Fatalf("json report %d: %v", i, err)
			}
			if err := ab.AddBinary(bin); err != nil {
				t.Fatalf("binary report %d: %v", i, err)
			}
		}
		sj, err := aj.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		sb, err := ab.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, sb) {
			t.Fatalf("wire forms diverge:\n%s\nvs\n%s", sj, sb)
		}
	}
	for _, mech := range []string{MechanismGRR, MechanismSUE, MechanismOUE, MechanismSHE, MechanismTHE, MechanismBLH, MechanismOLH, MechanismHRR, MechanismSS} {
		t.Run("freq-"+mech, func(t *testing.T) {
			p := PrivacyParams{Epsilon: 1.5, Domain: 16}
			cj, err := NewClient(mech, p, ldprand.NewSplitMix64(31))
			if err != nil {
				t.Fatal(err)
			}
			cb, err := NewClient(mech, p, ldprand.NewSplitMix64(31))
			if err != nil {
				t.Fatal(err)
			}
			check(t, FreqTaskConfig(mech, p), func(i int) (json.RawMessage, []byte) {
				env, err := cj.Report(i % p.Domain)
				if err != nil {
					t.Fatal(err)
				}
				bin, err := cb.ReportBinary(i % p.Domain)
				if err != nil {
					t.Fatal(err)
				}
				return mustRaw(t, env), bin
			})
		})
	}
	for _, mech := range []string{meantask.MechanismDuchi, meantask.MechanismHarmony} {
		t.Run("mean-"+mech, func(t *testing.T) {
			dim := 1
			if mech == meantask.MechanismHarmony {
				dim = 3
			}
			cfg := task.Config{Task: task.TypeMean, Mechanism: mech, Epsilon: 1, Dim: dim}
			cj, err := meantask.NewClient(cfg, ldprand.NewSplitMix64(32))
			if err != nil {
				t.Fatal(err)
			}
			cb, err := meantask.NewClient(cfg, ldprand.NewSplitMix64(32))
			if err != nil {
				t.Fatal(err)
			}
			src := ldprand.NewSplitMix64(33)
			check(t, cfg, func(i int) (json.RawMessage, []byte) {
				x := make([]float64, dim)
				for j := range x {
					x[j] = 2*ldprand.Float64(src) - 1
				}
				raw, err := cj.Report(x)
				if err != nil {
					t.Fatal(err)
				}
				bin, err := cb.ReportBinary(x)
				if err != nil {
					t.Fatal(err)
				}
				return raw, bin
			})
		})
	}
	for _, mech := range []string{cmstask.MechanismCMS, cmstask.MechanismHCMS} {
		t.Run("sketch-"+mech, func(t *testing.T) {
			cfg := task.Config{Task: task.TypeSketch, Mechanism: mech, Epsilon: 2, Width: 32, Hashes: 4, SketchSeed: 9}
			cj, err := cmstask.NewClient(cfg, ldprand.NewSplitMix64(34))
			if err != nil {
				t.Fatal(err)
			}
			cb, err := cmstask.NewClient(cfg, ldprand.NewSplitMix64(34))
			if err != nil {
				t.Fatal(err)
			}
			check(t, cfg, func(i int) (json.RawMessage, []byte) {
				item := []byte(fmt.Sprintf("item-%d", i%7))
				raw, err := cj.Report(item)
				if err != nil {
					t.Fatal(err)
				}
				bin, err := cb.ReportBinary(item)
				if err != nil {
					t.Fatal(err)
				}
				return raw, bin
			})
		})
	}
}

// TestBinaryWireHTTP drives the negotiated binary wire through the
// real HTTP surface: /status advertises the encodings, binary single
// and batch reports are accepted and fold, a JSON-only collection
// (none ship today, so the stand-in is a malformed-negotiation check)
// answers 415 for tasks without a binary decoder, and garbage binary
// bodies bounce with 400 without poisoning the collection.
func TestBinaryWireHTTP(t *testing.T) {
	reg := NewCollectionRegistry()
	if _, err := reg.Create(DefaultCollection, FreqCollectionConfig(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("hh", hhCfg(2, 0)); err != nil {
		t.Fatal(err)
	}
	svc := NewMultiService(reg, nil)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// The default freq collection advertises both encodings; the hh
	// collection is JSON-only.
	var st StatusResponse
	getJSON(t, ts.URL+"/status", &st)
	if !reflect.DeepEqual(st.Encodings, []string{"json", "binary"}) {
		t.Fatalf("freq encodings = %v", st.Encodings)
	}
	getJSON(t, ts.URL+"/collections/hh/status", &st)
	if !reflect.DeepEqual(st.Encodings, []string{"json"}) {
		t.Fatalf("hh encodings = %v", st.Encodings)
	}

	client, err := NewClient(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, ldprand.NewSplitMix64(41))
	if err != nil {
		t.Fatal(err)
	}
	// Single binary report.
	bin, err := client.ReportBinary(3)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/report", ContentTypeBinary, bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("binary report: %s", resp.Status)
	}
	// Binary batch: uvarint count + length-prefixed envelopes.
	var batch bytes.Buffer
	var payloads [][]byte
	for i := 0; i < 5; i++ {
		b, err := client.ReportBinary(i % 8)
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, b)
	}
	batch.WriteByte(byte(len(payloads)))
	for _, p := range payloads {
		batch.WriteByte(byte(len(p)))
		batch.Write(p)
	}
	resp, err = http.Post(ts.URL+"/report/batch", ContentTypeBinary, &batch)
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || br.Accepted != 5 {
		t.Fatalf("binary batch: %s, %+v", resp.Status, br)
	}
	getJSON(t, ts.URL+"/status", &st)
	if st.Reports != 6 {
		t.Fatalf("reports after binary ingest = %d, want 6", st.Reports)
	}

	// A binary report for a JSON-only task is refused by media type.
	resp, err = http.Post(ts.URL+"/collections/hh/report", ContentTypeBinary, bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("binary report to hh: %s, want 415", resp.Status)
	}
	// Garbage binary bodies are 400s, and the collection keeps serving.
	for _, garbage := range [][]byte{nil, {0xFF}, {0x00, 0x01, 0x02}, bytes.Repeat([]byte{0x7F}, 64)} {
		resp, err = http.Post(ts.URL+"/report", ContentTypeBinary, bytes.NewReader(garbage))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("garbage binary report: %s, want 400", resp.Status)
		}
	}
	getJSON(t, ts.URL+"/status", &st)
	if st.Reports != 6 {
		t.Fatalf("reports after garbage = %d, want 6", st.Reports)
	}
}

// getJSON fetches and decodes one JSON endpoint.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestStatusReportsCheckpointInfo pins the /status durability fields:
// after a checkpoint, the collection's status carries the snapshot's
// on-disk size and its state encoding.
func TestStatusReportsCheckpointInfo(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	c, err := reg.Create(DefaultCollection, FreqCollectionConfig(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, 2))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c, 51, 30)
	if err := store.SaveAll(reg); err != nil {
		t.Fatal(err)
	}
	svc := NewMultiService(reg, store)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	var st StatusResponse
	getJSON(t, ts.URL+"/status", &st)
	if st.CheckpointInfo == nil {
		t.Fatal("status carries no checkpoint info after a save")
	}
	fi, err := os.Stat(filepath.Join(dir, DefaultCollection+snapshotExt))
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != fi.Size() {
		t.Fatalf("checkpoint_bytes = %d, file is %d", st.Bytes, fi.Size())
	}
	if st.Enc != EncBinary {
		t.Fatalf("checkpoint_enc = %q, want %q", st.Enc, EncBinary)
	}
}

// TestLegacySnapshotVersionsRestore pins backward compatibility across
// every historical checkpoint envelope: the same aggregate state
// framed as a bare v2 snapshot, a bare v3 snapshot and a v4
// checksummed wrapper must all restore to the binary-era aggregate bit
// for bit.
func TestLegacySnapshotVersionsRestore(t *testing.T) {
	cfg := FreqCollectionConfig(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, 2)
	reg := NewCollectionRegistry()
	c, err := reg.Create("legacyfmt", cfg)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c, 61, 50)
	state, err := c.Aggregator().MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	wantBin, err := c.Aggregator().MarshalStateBinary()
	if err != nil {
		t.Fatal(err)
	}

	frame := func(version int) []byte {
		t.Helper()
		snap := CollectionSnapshot{Version: version, Name: "legacyfmt", Config: cfg, State: state}
		inner, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		if version < snapshotVersionJSON {
			return inner // bare pre-checksum framing
		}
		blob, err := json.Marshal(snapshotFile{Version: version, CRC32C: crc32.Checksum(inner, crcTable), Snapshot: inner})
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	for _, version := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("v%d", version), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "legacyfmt"+snapshotExt), frame(version), 0o644); err != nil {
				t.Fatal(err)
			}
			store, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			reg2 := NewCollectionRegistry()
			restored, err := store.Load(reg2)
			if err != nil {
				t.Fatal(err)
			}
			if len(restored) != 1 {
				t.Fatalf("restored %v (corrupt files: %v)", restored, dirListing(t, dir))
			}
			c2, _ := reg2.Get("legacyfmt")
			got, err := c2.Aggregator().MarshalStateBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantBin) {
				t.Fatalf("v%d restore diverges from the live aggregate", version)
			}
		})
	}
}

// dirListing names the state directory's contents for failure messages.
func dirListing(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestBinaryCheckpointKillRestart is the durability acceptance test
// under the binary codec: checkpoint a binary-state collection, start
// a fresh process over the same directory, and require bit-identical
// estimates — with the on-disk file actually in the v5 binary
// container (magic prefix), not JSON.
func TestBinaryCheckpointKillRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewCollectionRegistry()
	c, err := reg.Create(DefaultCollection, FreqCollectionConfig(MechanismOLH, PrivacyParams{Epsilon: 2, Domain: 8}, 2))
	if err != nil {
		t.Fatal(err)
	}
	fill(t, c, 71, 60)
	want := counts(t, c)
	if err := store.SaveAll(reg); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, DefaultCollection+snapshotExt))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(blob, snapshotMagic) {
		t.Fatalf("checkpoint is not a v5 binary container: %s", blob[:min(len(blob), 40)])
	}
	if strings.Contains(string(blob), `"state"`) {
		t.Fatal("binary container still carries a JSON state field")
	}
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewCollectionRegistry()
	if _, err := store2.Load(reg2); err != nil {
		t.Fatal(err)
	}
	c2, ok := reg2.Get(DefaultCollection)
	if !ok {
		t.Fatal("collection did not restore")
	}
	if got := counts(t, c2); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored counts diverge:\n%v\nvs\n%v", got, want)
	}
	if info, ok := store2.LastCheckpoint(DefaultCollection); !ok || info.Enc != EncBinary || info.Bytes != int64(len(blob)) {
		t.Fatalf("restored checkpoint info = %+v, %v", info, ok)
	}
}
