// Package mean implements locally private estimation of numeric means:
// Duchi et al.'s minimax-optimal one-dimensional mechanism (FOCS 2013,
// the work that brought LDP to prominence per §1.1) and the
// Harmony-style multidimensional extension (Nguyên et al. 2016) that
// samples one coordinate per user.
package mean

import (
	"fmt"
	"math"

	"repro/internal/ldprand"
)

// Duchi is the one-dimensional Duchi–Jordan–Wainwright mechanism for
// values in [−1, 1]: report ±C with C = (e^ε+1)/(e^ε−1), biased toward
// the true value. The report is a single bit (the sign).
type Duchi struct {
	epsilon float64
	c       float64
	src     ldprand.Source
	sum     float64
	n       int
}

// NewDuchi returns a Duchi mean estimator. A nil source selects
// crypto/rand.
func NewDuchi(epsilon float64, src ldprand.Source) *Duchi {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		panic("mean: epsilon must be positive and finite")
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	e := math.Exp(epsilon)
	return &Duchi{epsilon: epsilon, c: (e + 1) / (e - 1), src: src}
}

// C returns the output magnitude (e^ε+1)/(e^ε−1).
func (d *Duchi) C() float64 { return d.c }

// Privatize returns the randomized response for x in [−1, 1] (clamped):
// +C with probability 1/2 + x·(e^ε−1)/(2(e^ε+1)), else −C. The output
// is unbiased: E[report] = x.
func (d *Duchi) Privatize(x float64) float64 {
	if x < -1 {
		x = -1
	}
	if x > 1 {
		x = 1
	}
	pPlus := 0.5 + x/(2*d.c)
	if ldprand.Bernoulli(d.src, pPlus) {
		return d.c
	}
	return -d.c
}

// Collect privatizes x and folds it into the running aggregate.
func (d *Duchi) Collect(x float64) { d.Aggregate(d.Privatize(x)) }

// Aggregate folds one report into the aggregate. Reports must be ±C.
func (d *Duchi) Aggregate(report float64) {
	if math.Abs(math.Abs(report)-d.c) > 1e-9 {
		panic(fmt.Sprintf("mean: Duchi report %v is not ±%v", report, d.c))
	}
	d.sum += report
	d.n++
}

// Estimate returns the unbiased mean estimate.
func (d *Duchi) Estimate() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Collected returns the number of reports aggregated.
func (d *Duchi) Collected() int { return d.n }

// Variance returns the estimator variance for n users in the worst
// case (x = 0): C²/n.
func (d *Duchi) Variance(n int) float64 {
	if n == 0 {
		return math.Inf(1)
	}
	return d.c * d.c / float64(n)
}

// Reset clears the aggregate.
func (d *Duchi) Reset() { d.sum, d.n = 0, 0 }

// Harmony estimates the mean of d-dimensional vectors in [−1, 1]^d:
// each user samples one coordinate uniformly, applies the Duchi
// mechanism to it with the full budget, and the server scales by d.
type Harmony struct {
	epsilon float64
	dim     int
	c       float64
	src     ldprand.Source
	sums    []float64
	n       int
}

// HarmonyReport is one report: the sampled coordinate and the ±C·d
// value.
type HarmonyReport struct {
	Coord int
	Value float64
}

// NewHarmony returns a Harmony-style estimator for d-dimensional data.
func NewHarmony(epsilon float64, dim int, src ldprand.Source) *Harmony {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		panic("mean: epsilon must be positive and finite")
	}
	if dim < 1 {
		panic("mean: dimension must be at least 1")
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	e := math.Exp(epsilon)
	return &Harmony{
		epsilon: epsilon,
		dim:     dim,
		c:       (e + 1) / (e - 1),
		src:     src,
		sums:    make([]float64, dim),
	}
}

// Privatize samples a coordinate of x (length dim, entries clamped to
// [−1,1]) and reports ±C·dim on it, unbiased per coordinate after the
// server divides by n.
func (h *Harmony) Privatize(x []float64) HarmonyReport {
	if len(x) != h.dim {
		panic(fmt.Sprintf("mean: vector length %d, want %d", len(x), h.dim))
	}
	j := ldprand.Intn(h.src, h.dim)
	v := x[j]
	if v < -1 {
		v = -1
	}
	if v > 1 {
		v = 1
	}
	pPlus := 0.5 + v/(2*h.c)
	out := h.c * float64(h.dim)
	if !ldprand.Bernoulli(h.src, pPlus) {
		out = -out
	}
	return HarmonyReport{Coord: j, Value: out}
}

// Aggregate folds one report in.
func (h *Harmony) Aggregate(r HarmonyReport) {
	if r.Coord < 0 || r.Coord >= h.dim {
		panic(fmt.Sprintf("mean: coordinate %d out of range [0,%d)", r.Coord, h.dim))
	}
	want := h.c * float64(h.dim)
	if math.Abs(math.Abs(r.Value)-want) > 1e-9 {
		panic(fmt.Sprintf("mean: Harmony report %v is not ±%v", r.Value, want))
	}
	h.sums[r.Coord] += r.Value
	h.n++
}

// Collect privatizes and aggregates in one step.
func (h *Harmony) Collect(x []float64) { h.Aggregate(h.Privatize(x)) }

// Estimate returns the estimated mean vector.
func (h *Harmony) Estimate() []float64 {
	out := make([]float64, h.dim)
	if h.n == 0 {
		return out
	}
	for j, s := range h.sums {
		out[j] = s / float64(h.n)
	}
	return out
}

// Collected returns the number of reports aggregated.
func (h *Harmony) Collected() int { return h.n }

// Variance returns the worst-case per-coordinate estimator variance
// for n users: d·C²/n. Each user reports ±C·d on one uniformly
// sampled coordinate, so a coordinate's per-user contribution has
// second moment (C·d)²/d = C²·d, and the n-user mean has variance at
// most C²·d/n (TestHarmonyVariancePinsEmpirical pins the constant).
func (h *Harmony) Variance(n int) float64 {
	if n == 0 {
		return math.Inf(1)
	}
	dd := float64(h.dim)
	return dd * h.c * h.c / float64(n)
}
