package mean

import (
	"math"
	"testing"

	"repro/internal/ldprand"
)

func TestDuchiOutputsPlusMinusC(t *testing.T) {
	d := NewDuchi(1, ldprand.NewSplitMix64(1))
	for i := 0; i < 1000; i++ {
		r := d.Privatize(0.3)
		if math.Abs(math.Abs(r)-d.C()) > 1e-12 {
			t.Fatalf("report %v not ±C=%v", r, d.C())
		}
	}
}

func TestDuchiUnbiased(t *testing.T) {
	for _, x := range []float64{-0.8, 0, 0.5, 1} {
		d := NewDuchi(1.5, ldprand.NewSplitMix64(uint64(100*(x+2))))
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.Privatize(x)
		}
		got := sum / n
		if math.Abs(got-x) > 0.02 {
			t.Errorf("x=%v: mean report %.4f", x, got)
		}
	}
}

func TestDuchiEstimateMatchesTruth(t *testing.T) {
	d := NewDuchi(1, ldprand.NewSplitMix64(5))
	src := ldprand.NewSplitMix64(6)
	const n = 100000
	var truth float64
	for i := 0; i < n; i++ {
		x := 2*ldprand.Float64(src) - 1
		truth += x
		d.Collect(x)
	}
	truth /= n
	got := d.Estimate()
	tol := 4 * math.Sqrt(d.Variance(n))
	if math.Abs(got-truth) > tol {
		t.Errorf("estimate %.4f truth %.4f (tol %.4f)", got, truth, tol)
	}
	if d.Collected() != n {
		t.Errorf("collected %d", d.Collected())
	}
}

func TestDuchiClamps(t *testing.T) {
	d := NewDuchi(1, ldprand.NewSplitMix64(7))
	// Inputs outside [−1,1] must not break the ±C invariant or bias
	// beyond the boundary value.
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Privatize(5)
	}
	got := sum / n
	if math.Abs(got-1) > 0.03 {
		t.Errorf("clamped mean %.3f want about 1", got)
	}
}

func TestDuchiAggregateRejectsForeign(t *testing.T) {
	d := NewDuchi(1, ldprand.NewSplitMix64(8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-±C report")
		}
	}()
	d.Aggregate(0.5)
}

func TestDuchiReset(t *testing.T) {
	d := NewDuchi(1, ldprand.NewSplitMix64(9))
	d.Collect(0.5)
	d.Reset()
	if d.Collected() != 0 || d.Estimate() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestDuchiVariance(t *testing.T) {
	d := NewDuchi(1, nil)
	if !math.IsInf(d.Variance(0), 1) {
		t.Error("n=0 variance should be infinite")
	}
	if d.Variance(100) <= d.Variance(10000) {
		t.Error("variance should shrink with n")
	}
}

func TestHarmonyUnbiasedPerCoordinate(t *testing.T) {
	const dim = 4
	h := NewHarmony(2, dim, ldprand.NewSplitMix64(10))
	truth := []float64{-0.5, 0, 0.3, 0.9}
	const n = 400000
	for i := 0; i < n; i++ {
		h.Collect(truth)
	}
	est := h.Estimate()
	tol := 4 * math.Sqrt(h.Variance(n))
	for j := range truth {
		if math.Abs(est[j]-truth[j]) > tol {
			t.Errorf("coord %d: estimate %.4f truth %.4f (tol %.4f)", j, est[j], truth[j], tol)
		}
	}
}

func TestHarmonyReportShape(t *testing.T) {
	h := NewHarmony(1, 3, ldprand.NewSplitMix64(11))
	for i := 0; i < 100; i++ {
		r := h.Privatize([]float64{0.1, -0.2, 0.5})
		if r.Coord < 0 || r.Coord >= 3 {
			t.Fatalf("coord %d", r.Coord)
		}
		want := h.c * 3
		if math.Abs(math.Abs(r.Value)-want) > 1e-9 {
			t.Fatalf("value %v not ±%v", r.Value, want)
		}
	}
}

func TestHarmonyValidation(t *testing.T) {
	h := NewHarmony(1, 2, ldprand.NewSplitMix64(12))
	for _, fn := range []func(){
		func() { h.Privatize([]float64{1}) },
		func() { h.Aggregate(HarmonyReport{Coord: 5, Value: h.c * 2}) },
		func() { h.Aggregate(HarmonyReport{Coord: 0, Value: 0.1}) },
		func() { NewHarmony(0, 2, nil) },
		func() { NewHarmony(1, 0, nil) },
		func() { NewDuchi(-1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHarmonyEmptyEstimate(t *testing.T) {
	h := NewHarmony(1, 3, nil)
	est := h.Estimate()
	for _, v := range est {
		if v != 0 {
			t.Fatal("empty estimate should be zeros")
		}
	}
}
