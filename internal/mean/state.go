// Mergeability and state serialization for the mean estimators, the
// properties that let them ride the sharded collection pipeline: both
// accumulators are a sum (or sum vector) and a count, so merging is
// exact and the JSON float64 round trip reproduces estimates bit for
// bit — the same contract freq.Oracle gives the frequency path.
package mean

import (
	"encoding/json"
	"fmt"
	"math"
)

// Epsilon returns the privacy budget the estimator was built with.
func (d *Duchi) Epsilon() float64 { return d.epsilon }

// Merge folds other's aggregate into d. The two estimators must share
// epsilon exactly: their reports are scaled by the ε-dependent constant
// C, so merging across budgets would mix incompatible magnitudes.
func (d *Duchi) Merge(other *Duchi) error {
	if other.epsilon != d.epsilon {
		return fmt.Errorf("mean: Duchi merge epsilon mismatch (%v vs %v)", d.epsilon, other.epsilon)
	}
	d.sum += other.sum
	d.n += other.n
	return nil
}

// Snapshot returns an independent copy of the aggregate state. The
// copy shares the randomness source: snapshots are for reads and
// merging, not concurrent privatization.
func (d *Duchi) Snapshot() *Duchi {
	cp := *d
	return &cp
}

// duchiState is the serialized aggregate of a Duchi estimator.
type duchiState struct {
	V         int     `json:"v,omitempty"` // 0 = current format; others refused
	Mechanism string  `json:"mechanism"`
	Epsilon   float64 `json:"epsilon"`
	Sum       float64 `json:"sum"`
	N         int     `json:"n"`
}

// MarshalState serializes the aggregate state as JSON.
func (d *Duchi) MarshalState() ([]byte, error) {
	return json.Marshal(duchiState{Mechanism: "duchi", Epsilon: d.epsilon, Sum: d.sum, N: d.n})
}

// UnmarshalState replaces the aggregate state with a marshalled one.
// Parameter mismatches (or malformed tallies) are an error and leave
// the receiver unchanged.
func (d *Duchi) UnmarshalState(data []byte) error {
	var st duchiState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("mean: Duchi state: %w", err)
	}
	return d.applyState(st)
}

// applyState validates a decoded state (shared by the JSON and binary
// codecs) and installs it.
func (d *Duchi) applyState(st duchiState) error {
	if st.V != 0 {
		return fmt.Errorf("mean: Duchi state: unsupported state version %d", st.V)
	}
	if st.Mechanism != "duchi" || st.Epsilon != d.epsilon {
		return fmt.Errorf("mean: Duchi state parameter mismatch")
	}
	if st.N < 0 || math.IsNaN(st.Sum) || math.IsInf(st.Sum, 0) {
		return fmt.Errorf("mean: Duchi state has malformed tallies")
	}
	d.sum, d.n = st.Sum, st.N
	return nil
}

// Epsilon returns the privacy budget the estimator was built with.
func (h *Harmony) Epsilon() float64 { return h.epsilon }

// Dim returns the vector dimension.
func (h *Harmony) Dim() int { return h.dim }

// C returns the output magnitude (e^ε+1)/(e^ε−1); reports are ±C·Dim.
func (h *Harmony) C() float64 { return h.c }

// Reset clears the aggregate.
func (h *Harmony) Reset() {
	for i := range h.sums {
		h.sums[i] = 0
	}
	h.n = 0
}

// Merge folds other's aggregate into h; epsilon and dimension must
// match exactly (reports are scaled by both).
func (h *Harmony) Merge(other *Harmony) error {
	if other.epsilon != h.epsilon || other.dim != h.dim {
		return fmt.Errorf("mean: Harmony merge parameter mismatch")
	}
	for i, s := range other.sums {
		h.sums[i] += s
	}
	h.n += other.n
	return nil
}

// Snapshot returns an independent copy of the aggregate state.
func (h *Harmony) Snapshot() *Harmony {
	cp := *h
	cp.sums = make([]float64, len(h.sums))
	copy(cp.sums, h.sums)
	return &cp
}

// harmonyState is the serialized aggregate of a Harmony estimator.
type harmonyState struct {
	V         int       `json:"v,omitempty"` // 0 = current format; others refused
	Mechanism string    `json:"mechanism"`
	Epsilon   float64   `json:"epsilon"`
	Dim       int       `json:"dim"`
	Sums      []float64 `json:"sums"`
	N         int       `json:"n"`
}

// MarshalState serializes the aggregate state as JSON.
func (h *Harmony) MarshalState() ([]byte, error) {
	return json.Marshal(harmonyState{Mechanism: "harmony", Epsilon: h.epsilon, Dim: h.dim, Sums: h.sums, N: h.n})
}

// UnmarshalState replaces the aggregate state with a marshalled one;
// mismatched parameters or malformed tallies leave h unchanged.
func (h *Harmony) UnmarshalState(data []byte) error {
	var st harmonyState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("mean: Harmony state: %w", err)
	}
	return h.applyState(st)
}

// applyState validates a decoded state (shared by the JSON and binary
// codecs) and installs it.
func (h *Harmony) applyState(st harmonyState) error {
	if st.V != 0 {
		return fmt.Errorf("mean: Harmony state: unsupported state version %d", st.V)
	}
	if st.Mechanism != "harmony" || st.Epsilon != h.epsilon || st.Dim != h.dim {
		return fmt.Errorf("mean: Harmony state parameter mismatch")
	}
	if st.N < 0 || len(st.Sums) != h.dim {
		return fmt.Errorf("mean: Harmony state has malformed tallies")
	}
	for _, s := range st.Sums {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("mean: Harmony state has malformed tallies")
		}
	}
	copy(h.sums, st.Sums)
	h.n = st.N
	return nil
}
