// Binary state codecs for the mean estimators, mirroring the freq
// oracle layouts: a leading version byte (checked before anything
// else), the mechanism name and parameters, then the sum vector and
// report count. Both codecs feed the same applyState validation.
package mean

import (
	"fmt"

	"repro/internal/binenc"
)

// binaryStateVersion tags the current binary state layouts; it is the
// first payload byte, mirroring the JSON states' "v" field.
const binaryStateVersion = 0

// readBinaryStateVersion consumes and checks the leading version tag.
func readBinaryStateVersion(name string, r *binenc.Reader) error {
	version := int(r.Byte())
	if err := r.Err(); err != nil {
		return fmt.Errorf("mean: %s state: %w", name, err)
	}
	if version != 0 {
		return fmt.Errorf("mean: %s state: unsupported state version %d", name, version)
	}
	return nil
}

// MarshalStateBinary serializes the aggregate in the binary layout.
func (d *Duchi) MarshalStateBinary() ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryStateVersion)
	w.String("duchi")
	w.Float64(d.epsilon)
	w.Float64(d.sum)
	w.Varint(int64(d.n))
	return append([]byte(nil), w.Bytes()...), nil
}

// UnmarshalStateBinary restores a binary state blob; errors leave the
// receiver unchanged.
func (d *Duchi) UnmarshalStateBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := readBinaryStateVersion("Duchi", r); err != nil {
		return err
	}
	var st duchiState
	st.Mechanism = r.String()
	st.Epsilon = r.Float64()
	st.Sum = r.Float64()
	st.N = int(r.Varint())
	if err := r.Done(); err != nil {
		return fmt.Errorf("mean: Duchi state: %w", err)
	}
	return d.applyState(st)
}

// MarshalStateBinary serializes the aggregate in the binary layout.
func (h *Harmony) MarshalStateBinary() ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryStateVersion)
	w.String("harmony")
	w.Float64(h.epsilon)
	w.Varint(int64(h.dim))
	w.PackedFloat64s(h.sums)
	w.Varint(int64(h.n))
	return append([]byte(nil), w.Bytes()...), nil
}

// UnmarshalStateBinary restores a binary state blob; errors leave the
// receiver unchanged.
func (h *Harmony) UnmarshalStateBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := readBinaryStateVersion("Harmony", r); err != nil {
		return err
	}
	var st harmonyState
	st.Mechanism = r.String()
	st.Epsilon = r.Float64()
	st.Dim = int(r.Varint())
	st.Sums = r.PackedFloat64s()
	st.N = int(r.Varint())
	if err := r.Done(); err != nil {
		return fmt.Errorf("mean: Harmony state: %w", err)
	}
	return h.applyState(st)
}
