package mean

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/ldprand"
)

// TestDuchiMergeMatchesSequential pins exact mergeability: splitting a
// report stream across two estimators and merging equals one estimator
// absorbing everything, up to float summation order (splitting
// reorders the additions, which costs at most an ulp).
func TestDuchiMergeMatchesSequential(t *testing.T) {
	src := ldprand.NewSplitMix64(1)
	whole := NewDuchi(1, src)
	left := NewDuchi(1, nil)
	right := NewDuchi(1, nil)
	for i := 0; i < 1000; i++ {
		r := whole.Privatize(2*ldprand.Float64(src) - 1)
		whole.Aggregate(r)
		if i%2 == 0 {
			left.Aggregate(r)
		} else {
			right.Aggregate(r)
		}
	}
	if err := left.Merge(right.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if left.Collected() != whole.Collected() || math.Abs(left.Estimate()-whole.Estimate()) > 1e-12 {
		t.Fatalf("merged (%d, %v) != sequential (%d, %v)",
			left.Collected(), left.Estimate(), whole.Collected(), whole.Estimate())
	}
	if err := left.Merge(NewDuchi(2, nil)); err == nil {
		t.Fatal("merge across epsilons accepted")
	}
}

// TestHarmonyMergeMatchesSequential does the same for the vector path.
func TestHarmonyMergeMatchesSequential(t *testing.T) {
	const dim = 4
	src := ldprand.NewSplitMix64(2)
	whole := NewHarmony(1, dim, src)
	left := NewHarmony(1, dim, nil)
	right := NewHarmony(1, dim, nil)
	for i := 0; i < 1000; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = 2*ldprand.Float64(src) - 1
		}
		r := whole.Privatize(x)
		whole.Aggregate(r)
		if i%2 == 0 {
			left.Aggregate(r)
		} else {
			right.Aggregate(r)
		}
	}
	if err := left.Merge(right.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lm, wm := left.Estimate(), whole.Estimate()
	for j := range wm {
		if math.Abs(lm[j]-wm[j]) > 1e-12 {
			t.Fatalf("merged %v != sequential %v", lm, wm)
		}
	}
	if err := left.Merge(NewHarmony(1, dim+1, nil)); err == nil {
		t.Fatal("merge across dimensions accepted")
	}
}

// TestHarmonyVariancePinsEmpirical pins the analytic worst-case
// variance d·C²/n against measurement: many independent estimators of
// the all-zero vector give ~480 samples of the per-coordinate
// estimate, whose empirical variance must match the formula within a
// factor the sampling noise allows. This is the test that catches a
// mis-derived constant (the d²·C²/n overstatement served inflated
// confidence intervals before it was pinned).
func TestHarmonyVariancePinsEmpirical(t *testing.T) {
	const dim, n, trials = 8, 400, 60
	src := ldprand.NewSplitMix64(11)
	zero := make([]float64, dim)
	var sumSq float64
	var samples int
	for tr := 0; tr < trials; tr++ {
		h := NewHarmony(1, dim, src)
		for i := 0; i < n; i++ {
			h.Collect(zero)
		}
		for _, v := range h.Estimate() {
			sumSq += v * v
			samples++
		}
	}
	empirical := sumSq / float64(samples)
	analytic := NewHarmony(1, dim, nil).Variance(n)
	if ratio := analytic / empirical; ratio < 0.5 || ratio > 2 {
		t.Fatalf("analytic variance %v vs empirical %v (ratio %.2f)", analytic, empirical, ratio)
	}
}

// TestDuchiStateRoundTrip pins bit-identical checkpoint restore and
// parameter guarding.
func TestDuchiStateRoundTrip(t *testing.T) {
	src := ldprand.NewSplitMix64(3)
	d := NewDuchi(1.5, src)
	for i := 0; i < 500; i++ {
		d.Collect(2*ldprand.Float64(src) - 1)
	}
	blob, err := d.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	back := NewDuchi(1.5, nil)
	if err := back.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if back.Collected() != d.Collected() || back.Estimate() != d.Estimate() {
		t.Fatal("state round trip drifted")
	}
	if err := NewDuchi(2, nil).UnmarshalState(blob); err == nil {
		t.Fatal("state restored onto mismatched epsilon")
	}
	if err := back.UnmarshalState([]byte(`{"mechanism":"duchi","epsilon":1.5,"sum":0,"n":-1}`)); err == nil {
		t.Fatal("negative count accepted")
	}
	if err := back.UnmarshalState([]byte(`garbage`)); err == nil {
		t.Fatal("garbage state accepted")
	}
}

// TestHarmonyStateRoundTrip does the same for the vector path,
// including the snapshot independence of the sums slice.
func TestHarmonyStateRoundTrip(t *testing.T) {
	const dim = 3
	src := ldprand.NewSplitMix64(4)
	h := NewHarmony(1, dim, src)
	for i := 0; i < 500; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = 2*ldprand.Float64(src) - 1
		}
		h.Collect(x)
	}
	snap := h.Snapshot()
	before := h.Estimate()
	blob, err := h.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the original must not touch the snapshot.
	h.Collect([]float64{1, 1, 1})
	if !reflect.DeepEqual(snap.Estimate(), before) {
		t.Fatal("snapshot shares state with the original")
	}

	back := NewHarmony(1, dim, nil)
	if err := back.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Estimate(), before) {
		t.Fatal("state round trip drifted")
	}
	if err := NewHarmony(1, dim+1, nil).UnmarshalState(blob); err == nil {
		t.Fatal("state restored onto mismatched dimension")
	}
	// Reset clears the restored aggregate.
	back.Reset()
	if back.Collected() != 0 {
		t.Fatalf("collected %d after reset", back.Collected())
	}
}

// TestStateRejectsUnknownVersion pins the version gate: untagged and
// explicitly v=0 blobs are the current format, anything else is a
// future revision and must be refused, leaving the estimator
// unchanged.
func TestStateRejectsUnknownVersion(t *testing.T) {
	d := NewDuchi(1, ldprand.NewSplitMix64(3))
	for i := 0; i < 50; i++ {
		d.Aggregate(d.Privatize(0.25))
	}
	h := NewHarmony(1, 3, ldprand.NewSplitMix64(5))
	for i := 0; i < 50; i++ {
		h.Aggregate(h.Privatize([]float64{0.1, -0.2, 0.3}))
	}
	for _, tc := range []struct {
		name      string
		marshal   func() ([]byte, error)
		unmarshal func([]byte) error
	}{
		{"duchi", d.MarshalState, NewDuchi(1, nil).UnmarshalState},
		{"harmony", h.MarshalState, NewHarmony(1, 3, nil).UnmarshalState},
	} {
		t.Run(tc.name, func(t *testing.T) {
			state, err := tc.marshal()
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Contains(state, []byte(`"v":`)) {
				t.Fatalf("current format must omit the version tag: %s", state)
			}
			if err := tc.unmarshal(append([]byte(`{"v":7,`), state[1:]...)); err == nil {
				t.Fatal("restore accepted a version-7 state blob")
			}
			if err := tc.unmarshal(append([]byte(`{"v":0,`), state[1:]...)); err != nil {
				t.Fatalf("restore rejected an explicit v=0 tag: %v", err)
			}
		})
	}
}
