// Package assoc implements locally private association learning
// between two categorical attributes, the second contribution of
// Fanti et al. [14] ("privacy-preserving learning of associations"):
// estimating the joint distribution P(X, Y) — and hence correlations —
// when each user holds a pair (x, y).
//
// Three estimators are provided for the E-style comparisons:
//
//   - Joint: one oracle over the product domain |X|·|Y| — unbiased but
//     high-variance for large products.
//   - Independent: the outer product of two marginal estimates, the
//     baseline that by construction misses all association.
//   - Split: half the users report the product value, half report
//     marginals; the joint estimate is consistency-projected so its
//     marginals match the (more accurate) directly-estimated ones via
//     iterative proportional fitting.
package assoc

import (
	"fmt"
	"math"

	"repro/internal/freq"
	"repro/internal/ldprand"
)

// Params configures association estimation over X in [0, DX) and Y in
// [0, DY).
type Params struct {
	Epsilon float64
	DX, DY  int
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	switch {
	case p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0):
		return fmt.Errorf("assoc: epsilon must be positive and finite")
	case p.DX < 2 || p.DY < 2:
		return fmt.Errorf("assoc: domains must be at least 2, got %d x %d", p.DX, p.DY)
	}
	return nil
}

// Collector aggregates pair reports under one of the three strategies.
type Collector struct {
	params Params
	src    ldprand.Source
	joint  freq.Oracle // product-domain oracle (Joint and Split)
	margX  freq.Oracle // marginal oracles (Independent and Split)
	margY  freq.Oracle
	split  bool
	next   int
}

// Strategy selects how users are routed.
type Strategy int

// The supported strategies.
const (
	Joint       Strategy = iota // every user reports the product value
	Independent                 // every user reports one marginal (alternating)
	Split                       // half product, half marginals
)

// NewCollector returns an association collector. A nil source selects
// crypto/rand.
func NewCollector(params Params, strategy Strategy, src ldprand.Source) (*Collector, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	c := &Collector{params: params, src: src}
	switch strategy {
	case Joint:
		c.joint = freq.NewOLH(params.Epsilon, params.DX*params.DY, src)
	case Independent:
		c.margX = freq.NewAdaptive(params.Epsilon, params.DX, src)
		c.margY = freq.NewAdaptive(params.Epsilon, params.DY, src)
	case Split:
		c.split = true
		c.joint = freq.NewOLH(params.Epsilon, params.DX*params.DY, src)
		c.margX = freq.NewAdaptive(params.Epsilon, params.DX, src)
		c.margY = freq.NewAdaptive(params.Epsilon, params.DY, src)
	default:
		return nil, fmt.Errorf("assoc: unknown strategy %d", strategy)
	}
	return c, nil
}

// Collect routes one user's pair.
func (c *Collector) Collect(x, y int) error {
	if x < 0 || x >= c.params.DX || y < 0 || y >= c.params.DY {
		return fmt.Errorf("assoc: pair (%d,%d) outside %dx%d", x, y, c.params.DX, c.params.DY)
	}
	defer func() { c.next++ }()
	switch {
	case c.split:
		switch c.next % 4 {
		case 0, 1:
			c.joint.Collect(x*c.params.DY + y)
		case 2:
			c.margX.Collect(x)
		default:
			c.margY.Collect(y)
		}
	case c.joint != nil:
		c.joint.Collect(x*c.params.DY + y)
	default:
		if c.next%2 == 0 {
			c.margX.Collect(x)
		} else {
			c.margY.Collect(y)
		}
	}
	return nil
}

// Collected returns the total users routed.
func (c *Collector) Collected() int { return c.next }

// EstimateJoint returns the estimated joint distribution P(X=x, Y=y)
// as a DX×DY table (probabilities, clamped and normalized).
func (c *Collector) EstimateJoint() [][]float64 {
	dx, dy := c.params.DX, c.params.DY
	table := make([][]float64, dx)
	for i := range table {
		table[i] = make([]float64, dy)
	}
	switch {
	case c.split:
		joint := distributionOf(c.joint)
		mx := distributionOf(c.margX)
		my := distributionOf(c.margY)
		fitted := ipf(joint, mx, my, dx, dy, 50)
		for x := 0; x < dx; x++ {
			copy(table[x], fitted[x])
		}
	case c.joint != nil:
		joint := distributionOf(c.joint)
		for x := 0; x < dx; x++ {
			for y := 0; y < dy; y++ {
				table[x][y] = joint[x*dy+y]
			}
		}
	default:
		mx := distributionOf(c.margX)
		my := distributionOf(c.margY)
		for x := 0; x < dx; x++ {
			for y := 0; y < dy; y++ {
				table[x][y] = mx[x] * my[y]
			}
		}
	}
	return table
}

// distributionOf clamps and normalizes an oracle's count estimates.
func distributionOf(o freq.Oracle) []float64 {
	return freq.ClampToSimplex(freq.EstimateFrequencies(o.EstimateCounts(), maxInt(o.Collected(), 1)))
}

// ipf runs iterative proportional fitting: it rescales the joint
// table's rows and columns until its marginals match the given
// targets. The result keeps the joint's association structure while
// inheriting the marginals' accuracy.
func ipf(joint, mx, my []float64, dx, dy, iters int) [][]float64 {
	t := make([][]float64, dx)
	for x := range t {
		t[x] = make([]float64, dy)
		for y := 0; y < dy; y++ {
			v := joint[x*dy+y]
			if v <= 0 {
				v = 1e-9 // keep IPF able to move mass anywhere
			}
			t[x][y] = v
		}
	}
	for it := 0; it < iters; it++ {
		// Row step: match P(X).
		for x := 0; x < dx; x++ {
			var row float64
			for y := 0; y < dy; y++ {
				row += t[x][y]
			}
			if row == 0 {
				continue
			}
			scale := mx[x] / row
			for y := 0; y < dy; y++ {
				t[x][y] *= scale
			}
		}
		// Column step: match P(Y).
		for y := 0; y < dy; y++ {
			var col float64
			for x := 0; x < dx; x++ {
				col += t[x][y]
			}
			if col == 0 {
				continue
			}
			scale := my[y] / col
			for x := 0; x < dx; x++ {
				t[x][y] *= scale
			}
		}
	}
	return t
}

// MutualInformation returns the mutual information (in nats) of a
// joint table — the association strength measure used in experiments.
func MutualInformation(joint [][]float64) float64 {
	dx := len(joint)
	if dx == 0 {
		return 0
	}
	dy := len(joint[0])
	px := make([]float64, dx)
	py := make([]float64, dy)
	for x := 0; x < dx; x++ {
		for y := 0; y < dy; y++ {
			px[x] += joint[x][y]
			py[y] += joint[x][y]
		}
	}
	var mi float64
	for x := 0; x < dx; x++ {
		for y := 0; y < dy; y++ {
			p := joint[x][y]
			if p <= 0 || px[x] <= 0 || py[y] <= 0 {
				continue
			}
			mi += p * math.Log(p/(px[x]*py[y]))
		}
	}
	if mi < 0 {
		mi = 0 // float error on near-independent tables
	}
	return mi
}

// TrueJoint tallies the exact joint distribution of raw pairs.
func TrueJoint(dx, dy int, xs, ys []int) [][]float64 {
	table := make([][]float64, dx)
	for i := range table {
		table[i] = make([]float64, dy)
	}
	n := len(xs)
	if n == 0 || len(ys) != n {
		return table
	}
	for i := range xs {
		table[xs[i]][ys[i]] += 1 / float64(n)
	}
	return table
}

// JointTV returns the total variation distance between two joint
// tables of identical shape.
func JointTV(a, b [][]float64) float64 {
	var sum float64
	for x := range a {
		for y := range a[x] {
			sum += math.Abs(a[x][y] - b[x][y])
		}
	}
	return sum / 2
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
