package assoc

import (
	"math"
	"testing"

	"repro/internal/ldprand"
)

// correlatedPairs draws n pairs over dx×dy where Y copies X (mod dy)
// with probability corr, else is uniform.
func correlatedPairs(src ldprand.Source, dx, dy, n int, corr float64) ([]int, []int) {
	xs := make([]int, n)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		xs[i] = ldprand.Intn(src, dx)
		if ldprand.Bernoulli(src, corr) {
			ys[i] = xs[i] % dy
		} else {
			ys[i] = ldprand.Intn(src, dy)
		}
	}
	return xs, ys
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Epsilon: 1, DX: 4, DY: 4}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Epsilon: 0, DX: 4, DY: 4},
		{Epsilon: 1, DX: 1, DY: 4},
		{Epsilon: 1, DX: 4, DY: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewCollector(Params{Epsilon: 1, DX: 4, DY: 4}, Strategy(99), nil); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestCollectValidatesPairs(t *testing.T) {
	c, _ := NewCollector(Params{Epsilon: 1, DX: 3, DY: 3}, Joint, ldprand.NewSplitMix64(1))
	if err := c.Collect(3, 0); err == nil {
		t.Error("x out of range accepted")
	}
	if err := c.Collect(0, -1); err == nil {
		t.Error("y out of range accepted")
	}
	if err := c.Collect(2, 2); err != nil {
		t.Fatal(err)
	}
	if c.Collected() != 1 {
		t.Fatalf("collected %d", c.Collected())
	}
}

func TestJointTablesAreDistributions(t *testing.T) {
	src := ldprand.NewSplitMix64(2)
	xs, ys := correlatedPairs(src, 4, 4, 30000, 0.8)
	for _, strat := range []Strategy{Joint, Independent, Split} {
		c, err := NewCollector(Params{Epsilon: 2, DX: 4, DY: 4}, strat, src)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if err := c.Collect(xs[i], ys[i]); err != nil {
				t.Fatal(err)
			}
		}
		table := c.EstimateJoint()
		var sum float64
		for x := range table {
			for y := range table[x] {
				if table[x][y] < -1e-9 {
					t.Fatalf("strategy %d: negative prob", strat)
				}
				sum += table[x][y]
			}
		}
		if math.Abs(sum-1) > 0.02 {
			t.Errorf("strategy %d: table sums to %v", strat, sum)
		}
	}
}

func TestJointRecoversAssociation(t *testing.T) {
	src := ldprand.NewSplitMix64(3)
	const dx, dy, n = 4, 4, 80000
	xs, ys := correlatedPairs(src, dx, dy, n, 0.9)
	truth := TrueJoint(dx, dy, xs, ys)
	miTrue := MutualInformation(truth)

	joint, _ := NewCollector(Params{Epsilon: 2, DX: dx, DY: dy}, Joint, src)
	indep, _ := NewCollector(Params{Epsilon: 2, DX: dx, DY: dy}, Independent, src)
	for i := range xs {
		_ = joint.Collect(xs[i], ys[i])
		_ = indep.Collect(xs[i], ys[i])
	}
	miJoint := MutualInformation(joint.EstimateJoint())
	miIndep := MutualInformation(indep.EstimateJoint())

	// The joint estimator must see most of the true association; the
	// independence baseline must see almost none.
	if miJoint < 0.5*miTrue {
		t.Errorf("joint MI %.3f misses truth %.3f", miJoint, miTrue)
	}
	if miIndep > 0.2*miTrue {
		t.Errorf("independent MI %.3f should be near zero (truth %.3f)", miIndep, miTrue)
	}
}

func TestSplitMarginalAccuracy(t *testing.T) {
	// Split dedicates users to dedicated marginal oracles and projects
	// the joint onto them with IPF, so its *marginals* must beat the
	// pure-Joint estimator's marginals; its joint TV pays for giving
	// the product-domain pass only half the users (allow 2.5x).
	src := ldprand.NewSplitMix64(4)
	const dx, dy, n = 8, 8, 60000
	xs, ys := correlatedPairs(src, dx, dy, n, 0.7)
	truth := TrueJoint(dx, dy, xs, ys)

	joint, _ := NewCollector(Params{Epsilon: 1, DX: dx, DY: dy}, Joint, src)
	split, _ := NewCollector(Params{Epsilon: 1, DX: dx, DY: dy}, Split, src)
	for i := range xs {
		_ = joint.Collect(xs[i], ys[i])
		_ = split.Collect(xs[i], ys[i])
	}
	tJoint := joint.EstimateJoint()
	tSplit := split.EstimateJoint()

	marginalErr := func(table [][]float64) float64 {
		var errX float64
		for x := 0; x < dx; x++ {
			var est, tru float64
			for y := 0; y < dy; y++ {
				est += table[x][y]
				tru += truth[x][y]
			}
			errX += math.Abs(est - tru)
		}
		return errX
	}
	if me, mj := marginalErr(tSplit), marginalErr(tJoint); me > mj*1.05 {
		t.Errorf("split marginal error %.4f should beat joint's %.4f", me, mj)
	}
	tvJoint := JointTV(tJoint, truth)
	tvSplit := JointTV(tSplit, truth)
	if tvSplit > 2.5*tvJoint+0.02 {
		t.Errorf("split TV %.4f too far beyond joint %.4f", tvSplit, tvJoint)
	}
}

func TestMutualInformationKnownCases(t *testing.T) {
	// Perfectly dependent 2x2: MI = ln 2.
	dep := [][]float64{{0.5, 0}, {0, 0.5}}
	if got := MutualInformation(dep); math.Abs(got-math.Ln2) > 1e-9 {
		t.Errorf("dependent MI %v want ln2", got)
	}
	// Independent uniform: MI = 0.
	ind := [][]float64{{0.25, 0.25}, {0.25, 0.25}}
	if got := MutualInformation(ind); got != 0 {
		t.Errorf("independent MI %v want 0", got)
	}
	if MutualInformation(nil) != 0 {
		t.Error("empty table MI should be 0")
	}
}

func TestTrueJointAndTV(t *testing.T) {
	xs := []int{0, 0, 1, 1}
	ys := []int{0, 0, 1, 0}
	truth := TrueJoint(2, 2, xs, ys)
	if truth[0][0] != 0.5 || truth[1][0] != 0.25 || truth[1][1] != 0.25 {
		t.Fatalf("TrueJoint=%v", truth)
	}
	if JointTV(truth, truth) != 0 {
		t.Error("self TV should be 0")
	}
	other := TrueJoint(2, 2, []int{0, 0, 0, 0}, []int{0, 0, 0, 0})
	if tv := JointTV(truth, other); math.Abs(tv-0.5) > 1e-9 {
		t.Errorf("TV %v want 0.5", tv)
	}
}

func TestIPFMatchesMarginals(t *testing.T) {
	joint := []float64{0.4, 0.1, 0.1, 0.4} // 2x2
	mx := []float64{0.7, 0.3}
	my := []float64{0.6, 0.4}
	fitted := ipf(joint, mx, my, 2, 2, 100)
	for x := 0; x < 2; x++ {
		row := fitted[x][0] + fitted[x][1]
		if math.Abs(row-mx[x]) > 1e-6 {
			t.Errorf("row %d marginal %v want %v", x, row, mx[x])
		}
	}
	for y := 0; y < 2; y++ {
		col := fitted[0][y] + fitted[1][y]
		if math.Abs(col-my[y]) > 1e-6 {
			t.Errorf("col %d marginal %v want %v", y, col, my[y])
		}
	}
}
