package rappor

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/workload"
)

func testParams() Params {
	p := DefaultParams()
	p.BloomBits = 64
	p.Cohorts = 4
	return p
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{BloomBits: 0, Hashes: 2, Cohorts: 1, P: 0.5, Q: 0.75},
		{BloomBits: 8, Hashes: 0, Cohorts: 1, P: 0.5, Q: 0.75},
		{BloomBits: 8, Hashes: 2, Cohorts: 0, P: 0.5, Q: 0.75},
		{BloomBits: 8, Hashes: 2, Cohorts: 1, F: 1.0, P: 0.5, Q: 0.75},
		{BloomBits: 8, Hashes: 2, Cohorts: 1, P: 0.5, Q: 0.5},
		{BloomBits: 8, Hashes: 2, Cohorts: 1, P: -0.1, Q: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestPermanentEpsilon(t *testing.T) {
	p := DefaultParams() // k=2, f=0.5: ε∞ = 4·ln(3)
	want := 4 * math.Log(3)
	if got := p.PermanentEpsilon(); math.Abs(got-want) > 1e-9 {
		t.Errorf("epsilon %v want %v", got, want)
	}
	p.F = 0
	if !math.IsInf(p.PermanentEpsilon(), 1) {
		t.Error("f=0 should give infinite epsilon")
	}
}

func TestClientMemoizesPermanent(t *testing.T) {
	p := testParams()
	c, err := NewClient(p, []byte("secret"), ldprand.NewSplitMix64(1))
	if err != nil {
		t.Fatal(err)
	}
	a := c.permanentBits("example.com")
	b := c.permanentBits("example.com")
	if !a.Equal(b) {
		t.Fatal("permanent response changed between calls")
	}
}

func TestPermanentStableAcrossRestart(t *testing.T) {
	// A client rebuilt with the same secret must regenerate identical
	// permanent responses — that is the whole point of keying them.
	p := testParams()
	c1, _ := NewClient(p, []byte("stable-secret"), ldprand.NewSplitMix64(1))
	c2, _ := NewClient(p, []byte("stable-secret"), ldprand.NewSplitMix64(1))
	if c1.Cohort() != c2.Cohort() {
		t.Skip("cohorts differ; permanent bits are cohort-specific")
	}
	if !c1.permanentBits("v").Equal(c2.permanentBits("v")) {
		t.Fatal("same secret produced different permanent responses")
	}
}

func TestInstantaneousVaries(t *testing.T) {
	p := testParams()
	c, _ := NewClient(p, []byte("s"), ldprand.NewSplitMix64(2))
	r1 := c.Report("x")
	r2 := c.Report("x")
	if r1.Bits.Equal(r2.Bits) {
		t.Fatal("two instantaneous reports identical — IRR not applied")
	}
}

func TestServerRejectsBadReports(t *testing.T) {
	p := testParams()
	s, err := NewServer(p)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(p, []byte("s"), ldprand.NewSplitMix64(3))
	r := c.Report("x")
	if err := s.Add(r); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := r
	bad.Cohort = p.Cohorts
	if err := s.Add(bad); err == nil {
		t.Error("out-of-range cohort accepted")
	}
	if err := s.Add(Report{Cohort: 0, Bits: nil}); err == nil {
		t.Error("nil bits accepted")
	}
}

func TestEndToEndDecoding(t *testing.T) {
	// The E4 scenario in miniature: skewed URL popularity, decode
	// candidates, check the heavy hitters surface with roughly correct
	// counts.
	p := testParams()
	urls := workload.URLs(20)
	src := ldprand.NewSplitMix64(42)
	zipf := workload.NewZipf(src, 1.5, len(urls))
	truth := make(map[string]int)
	s, _ := NewServer(p)

	const n = 30000
	for i := 0; i < n; i++ {
		c, err := NewClient(p, []byte(fmt.Sprintf("user-%d", i)), src)
		if err != nil {
			t.Fatal(err)
		}
		v := urls[zipf.Next()]
		truth[v]++
		if err := s.Add(c.Report(v)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Collected() != n {
		t.Fatalf("collected %d want %d", s.Collected(), n)
	}
	est := s.Decode(urls)
	// The most popular URL should be estimated within 30% relative
	// error (RAPPOR decoding is noisy at this small scale).
	top := urls[0]
	if math.Abs(est[top]-float64(truth[top])) > 0.3*float64(truth[top]) {
		t.Errorf("top URL estimate %.0f truth %d", est[top], truth[top])
	}
	// The top-3 from decoding should match the true top-3 as a set.
	decoded := s.TopK(urls, 3)
	want := map[string]bool{urls[0]: true, urls[1]: true, urls[2]: true}
	hits := 0
	for _, d := range decoded {
		if want[d] {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("decoded top-3 %v shares only %d with true top-3", decoded, hits)
	}
}

func TestEstimateBitCountsUnbiased(t *testing.T) {
	// All users report the same value; the estimated bit counts at that
	// value's positions should approach the cohort sizes.
	p := testParams()
	s, _ := NewServer(p)
	src := ldprand.NewSplitMix64(7)
	const n = 20000
	perCohort := make([]int, p.Cohorts)
	for i := 0; i < n; i++ {
		c, _ := NewClient(p, []byte(fmt.Sprintf("u%d", i)), src)
		perCohort[c.Cohort()]++
		_ = s.Add(c.Report("onlyvalue"))
	}
	bits := s.EstimateBitCounts()
	for ch := 0; ch < p.Cohorts; ch++ {
		positions := p.filter(ch).Positions([]byte("onlyvalue"))
		for _, pos := range positions {
			got := bits[ch][pos]
			want := float64(perCohort[ch])
			if math.Abs(got-want) > 0.25*want+50 {
				t.Errorf("cohort %d bit %d: estimate %.0f want about %.0f", ch, pos, got, want)
			}
		}
	}
}

func TestDecodeEmptyCandidates(t *testing.T) {
	s, _ := NewServer(testParams())
	if got := s.Decode(nil); len(got) != 0 {
		t.Fatalf("decode nil candidates = %v", got)
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(testParams(), nil, nil); err == nil {
		t.Error("empty secret accepted")
	}
	bad := testParams()
	bad.BloomBits = 0
	if _, err := NewClient(bad, []byte("s"), nil); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := NewServer(bad); err == nil {
		t.Error("invalid server params accepted")
	}
}

func TestRidgeSolveRecoveresExact(t *testing.T) {
	// Overdetermined consistent system: x = [[1,0],[0,1],[1,1]], w = (2,3).
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	y := []float64{2, 3, 5}
	w := ridgeSolve(x, y, 1e-9)
	if math.Abs(w[0]-2) > 1e-4 || math.Abs(w[1]-3) > 1e-4 {
		t.Fatalf("solution %v want [2 3]", w)
	}
}

func TestRidgeSolveEmpty(t *testing.T) {
	if w := ridgeSolve(nil, nil, 1); w != nil {
		t.Fatalf("empty solve = %v", w)
	}
}

func TestGaussSolveSingularDoesNotCrash(t *testing.T) {
	// Singular matrix with zero ridge: must not panic or divide by zero.
	a := [][]float64{{1, 1}, {1, 1}}
	b := []float64{2, 2}
	w := gaussSolve(a, b)
	if len(w) != 2 {
		t.Fatalf("solution length %d", len(w))
	}
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite solution %v", w)
		}
	}
}
