package rappor

// ridgeSolve solves min_w ||X·w − y||² + λ||w||² via the normal
// equations (XᵀX + λI)·w = Xᵀy and Gaussian elimination with partial
// pivoting. Candidate sets are small (tens to a few thousand), so the
// dense O(c³) solve is fine and avoids any external dependency.
func ridgeSolve(x [][]float64, y []float64, lambda float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	cols := len(x[0])
	// a = XᵀX + λI, b = Xᵀy.
	a := make([][]float64, cols)
	for i := range a {
		a[i] = make([]float64, cols)
		a[i][i] = lambda
	}
	b := make([]float64, cols)
	for r, row := range x {
		for i := 0; i < cols; i++ {
			if row[i] == 0 {
				continue
			}
			for j := i; j < cols; j++ {
				a[i][j] += row[i] * row[j]
			}
			b[i] += row[i] * y[r]
		}
	}
	// Mirror the upper triangle.
	for i := 0; i < cols; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	return gaussSolve(a, b)
}

// gaussSolve solves a·w = b in place with partial pivoting. The ridge
// term guarantees a is positive definite, so the pivot never vanishes.
func gaussSolve(a [][]float64, b []float64) []float64 {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot: largest |a[row][col]| among remaining rows.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		p := a[col][col]
		if p == 0 {
			continue // defensive; unreachable with ridge term
		}
		for r := col + 1; r < n; r++ {
			factor := a[r][col] / p
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	w := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * w[j]
		}
		if a[i][i] != 0 {
			w[i] = sum / a[i][i]
		}
	}
	return w
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
