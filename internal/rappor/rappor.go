// Package rappor implements Google's RAPPOR (Randomized Aggregatable
// Privacy-Preserving Ordinal Response, Erlingsson et al., CCS 2014), the
// first large-scale LDP deployment the tutorial covers (§1.2(1)).
//
// A client Bloom-encodes its string value into m bits with k hash
// functions (cohort-specific, so hash collisions differ across cohorts),
// applies a *permanent* randomized response once per value (memoized
// against averaging attacks over repeated reports), and then a fresh
// *instantaneous* randomized response on every report. The server tallies
// reported bits per cohort, debiases them into estimated Bloom-bit
// counts, and decodes candidate-string frequencies by regularized least
// squares against the candidates' known bit patterns.
package rappor

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/bloom"
	"repro/internal/ldprand"
)

// Params configures a RAPPOR deployment. All clients and the server
// must agree on it.
type Params struct {
	BloomBits int     // m: Bloom filter size in bits
	Hashes    int     // k: hash functions per Bloom filter
	Cohorts   int     // number of cohorts (hash groups)
	F         float64 // permanent response noise, in [0, 1)
	P         float64 // Pr[report 1 | permanent bit 0]
	Q         float64 // Pr[report 1 | permanent bit 1]
	Seed      uint64  // base hash seed shared by clients and server
}

// DefaultParams mirrors the Chrome deployment's shape: 128-bit filters,
// 2 hashes, 8 cohorts, f = 1/2, p = 1/2, q = 3/4.
func DefaultParams() Params {
	return Params{BloomBits: 128, Hashes: 2, Cohorts: 8, F: 0.5, P: 0.5, Q: 0.75, Seed: 0x5ad5}
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	switch {
	case p.BloomBits <= 0:
		return fmt.Errorf("rappor: BloomBits must be positive, got %d", p.BloomBits)
	case p.Hashes <= 0:
		return fmt.Errorf("rappor: Hashes must be positive, got %d", p.Hashes)
	case p.Cohorts <= 0:
		return fmt.Errorf("rappor: Cohorts must be positive, got %d", p.Cohorts)
	case p.F < 0 || p.F >= 1:
		return fmt.Errorf("rappor: F must be in [0,1), got %v", p.F)
	case p.P < 0 || p.P > 1 || p.Q < 0 || p.Q > 1:
		return fmt.Errorf("rappor: P and Q must be in [0,1]")
	case p.P == p.Q:
		return fmt.Errorf("rappor: P and Q must differ")
	}
	return nil
}

// PermanentEpsilon returns the ε guarantee of the permanent response
// (the long-term bound): 2k·ln((1−f/2)/(f/2)). F = 0 means no permanent
// noise and an unbounded epsilon.
func (p Params) PermanentEpsilon() float64 {
	if p.F == 0 {
		return math.Inf(1)
	}
	return 2 * float64(p.Hashes) * math.Log((1-p.F/2)/(p.F/2))
}

// cohortSeed derives the Bloom hash seed of a cohort.
func (p Params) cohortSeed(cohort int) uint64 {
	return p.Seed + uint64(cohort)*0x9e3779b97f4a7c15
}

// filter returns the Bloom filter geometry of a cohort.
func (p Params) filter(cohort int) *bloom.Filter {
	return bloom.New(p.BloomBits, p.Hashes, p.cohortSeed(cohort))
}

// Report is one client report: the cohort plus the doubly randomized
// Bloom bits.
type Report struct {
	Cohort int
	Bits   *bitvec.Vector
}

// Client is one RAPPOR reporter. It memoizes permanent responses per
// value, keyed by a per-user secret, exactly as deployed clients must:
// regenerating the permanent noise on every report would let the server
// average it away.
type Client struct {
	params    Params
	cohort    int
	secret    []byte
	src       ldprand.Source
	permanent map[string]*bitvec.Vector
}

// NewClient returns a client assigned to a uniformly random cohort. A
// nil source selects crypto/rand; the secret drives memoized permanent
// responses and must be stable for the client's lifetime.
func NewClient(params Params, secret []byte, src ldprand.Source) (*Client, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(secret) == 0 {
		return nil, fmt.Errorf("rappor: client secret must be non-empty")
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	return &Client{
		params:    params,
		cohort:    ldprand.Intn(src, params.Cohorts),
		secret:    secret,
		src:       src,
		permanent: make(map[string]*bitvec.Vector),
	}, nil
}

// Cohort returns the client's cohort assignment.
func (c *Client) Cohort() int { return c.cohort }

// permanentBits returns the memoized permanent randomized response for
// value, computing it on first use with randomness derived from the
// client secret (so it also survives client restarts).
func (c *Client) permanentBits(value string) *bitvec.Vector {
	if b, ok := c.permanent[value]; ok {
		return b
	}
	encoded := c.params.filter(c.cohort).Encode([]byte(value))
	keyed := ldprand.Keyed(c.secret, "rappor-prr:"+value)
	out := bitvec.New(c.params.BloomBits)
	for i := 0; i < c.params.BloomBits; i++ {
		u := ldprand.Float64(keyed)
		switch {
		case u < c.params.F/2:
			out.Set(i) // forced 1
		case u < c.params.F:
			// forced 0: leave clear
		default:
			out.SetTo(i, encoded.Get(i))
		}
	}
	c.permanent[value] = out
	return out
}

// Report produces one instantaneous report for value.
func (c *Client) Report(value string) Report {
	perm := c.permanentBits(value)
	out := bitvec.New(c.params.BloomBits)
	for i := 0; i < c.params.BloomBits; i++ {
		prob := c.params.P
		if perm.Get(i) {
			prob = c.params.Q
		}
		if ldprand.Bernoulli(c.src, prob) {
			out.Set(i)
		}
	}
	return Report{Cohort: c.cohort, Bits: out}
}

// Server aggregates RAPPOR reports and decodes candidate frequencies.
type Server struct {
	params Params
	ones   [][]int // [cohort][bit] count of reported 1s
	counts []int   // reports per cohort
}

// NewServer returns an aggregator for the given parameters.
func NewServer(params Params) (*Server, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	ones := make([][]int, params.Cohorts)
	for i := range ones {
		ones[i] = make([]int, params.BloomBits)
	}
	return &Server{params: params, ones: ones, counts: make([]int, params.Cohorts)}, nil
}

// Add folds one report into the tallies.
func (s *Server) Add(r Report) error {
	if r.Cohort < 0 || r.Cohort >= s.params.Cohorts {
		return fmt.Errorf("rappor: cohort %d out of range [0,%d)", r.Cohort, s.params.Cohorts)
	}
	if r.Bits == nil || r.Bits.Len() != s.params.BloomBits {
		return fmt.Errorf("rappor: report bits must have length %d", s.params.BloomBits)
	}
	for _, i := range r.Bits.Ones() {
		s.ones[r.Cohort][i]++
	}
	s.counts[r.Cohort]++
	return nil
}

// Collected returns the total number of reports across cohorts.
func (s *Server) Collected() int {
	total := 0
	for _, c := range s.counts {
		total += c
	}
	return total
}

// EstimateBitCounts debiases the per-cohort tallies into estimates of
// how many cohort members had each Bloom bit truly set. With
// pStar = Pr[1 | true bit 1] and qStar = Pr[1 | true bit 0]:
// t̂ = (ones − qStar·n) / (pStar − qStar).
func (s *Server) EstimateBitCounts() [][]float64 {
	f, p, q := s.params.F, s.params.P, s.params.Q
	pStar := (1-f/2)*q + (f/2)*p
	qStar := (f/2)*q + (1-f/2)*p
	out := make([][]float64, s.params.Cohorts)
	for ch := range out {
		row := make([]float64, s.params.BloomBits)
		n := float64(s.counts[ch])
		for bit, y := range s.ones[ch] {
			row[bit] = (float64(y) - qStar*n) / (pStar - qStar)
		}
		out[ch] = row
	}
	return out
}

// Decode estimates how many reporters hold each candidate string, by
// ridge-regularized least squares of the estimated bit counts against
// each candidate's known Bloom pattern, stacked across cohorts.
// Negative solutions are clamped to zero (post-processing).
func (s *Server) Decode(candidates []string) map[string]float64 {
	nc := len(candidates)
	out := make(map[string]float64, nc)
	if nc == 0 {
		return out
	}
	rows := s.params.Cohorts * s.params.BloomBits
	// Design matrix X: rows = (cohort, bit), cols = candidates; X[r][c] =
	// 1 if candidate c sets that bit in that cohort. Cohort sizes scale
	// each candidate's contribution: a candidate held by t users in
	// cohort j contributes t·(share of cohort j). We solve for the
	// per-cohort share jointly by assuming users are spread evenly, the
	// approximation the original paper also makes before cohort
	// reweighting.
	x := make([][]float64, rows)
	y := make([]float64, rows)
	bitCounts := s.EstimateBitCounts()
	total := s.Collected()
	for ch := 0; ch < s.params.Cohorts; ch++ {
		filter := s.params.filter(ch)
		cohortShare := 0.0
		if total > 0 {
			cohortShare = float64(s.counts[ch]) / float64(total)
		}
		patterns := make([]*bitvec.Vector, nc)
		for c, cand := range candidates {
			patterns[c] = filter.Encode([]byte(cand))
		}
		for bit := 0; bit < s.params.BloomBits; bit++ {
			r := ch*s.params.BloomBits + bit
			row := make([]float64, nc)
			for c := range candidates {
				if patterns[c].Get(bit) {
					row[c] = cohortShare
				}
			}
			x[r] = row
			y[r] = bitCounts[ch][bit]
		}
	}
	w := ridgeSolve(x, y, 1e-3)
	for c, cand := range candidates {
		v := w[c]
		if v < 0 {
			v = 0
		}
		out[cand] = v
	}
	return out
}

// TopK decodes the candidates and returns the k highest-estimate
// strings in decreasing order.
func (s *Server) TopK(candidates []string, k int) []string {
	est := s.Decode(candidates)
	type kv struct {
		name  string
		count float64
	}
	list := make([]kv, 0, len(est))
	for name, count := range est {
		list = append(list, kv{name, count})
	}
	// Insertion sort by count descending, name ascending for ties:
	// candidate lists are small, and determinism matters for tests.
	for i := 1; i < len(list); i++ {
		for j := i; j > 0; j-- {
			a, b := list[j-1], list[j]
			if b.count > a.count || (b.count == a.count && b.name < a.name) {
				list[j-1], list[j] = b, a
			} else {
				break
			}
		}
	}
	if k > len(list) {
		k = len(list)
	}
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = list[i].name
	}
	return names
}
