package rappor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ldprand"
)

// TestReportShapeProperty: every report under randomized parameters is
// structurally valid and accepted by a matching server.
func TestReportShapeProperty(t *testing.T) {
	f := func(seed uint64, value string, bitsRaw, cohortsRaw uint8) bool {
		p := DefaultParams()
		p.BloomBits = int(bitsRaw%120) + 8
		p.Cohorts = int(cohortsRaw%8) + 1
		c, err := NewClient(p, []byte{byte(seed), 1}, ldprand.NewSplitMix64(seed))
		if err != nil {
			return false
		}
		s, err := NewServer(p)
		if err != nil {
			return false
		}
		r := c.Report(value)
		if r.Bits.Len() != p.BloomBits || r.Cohort < 0 || r.Cohort >= p.Cohorts {
			return false
		}
		return s.Add(r) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPermanentEpsilonMonotone: more permanent noise (larger f) must
// mean a *smaller* epsilon (stronger guarantee).
func TestPermanentEpsilonMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		p := DefaultParams()
		p.F = f
		eps := p.PermanentEpsilon()
		if eps >= prev {
			t.Fatalf("epsilon not decreasing: f=%v gives %v after %v", f, eps, prev)
		}
		if eps <= 0 {
			t.Fatalf("epsilon %v must be positive at f=%v", eps, f)
		}
		prev = eps
	}
}

// TestPermanentEpsilonScalesWithHashes: doubling the hash count
// doubles the epsilon (each set bit leaks).
func TestPermanentEpsilonScalesWithHashes(t *testing.T) {
	p := DefaultParams()
	p.Hashes = 2
	e2 := p.PermanentEpsilon()
	p.Hashes = 4
	e4 := p.PermanentEpsilon()
	if math.Abs(e4-2*e2) > 1e-9 {
		t.Fatalf("e4=%v want 2*e2=%v", e4, 2*e2)
	}
}

// TestInstantaneousBitRates: with permanent bits known, reported 1s
// follow q on set bits and p on clear bits.
func TestInstantaneousBitRates(t *testing.T) {
	p := testParams()
	c, err := NewClient(p, []byte("rate-secret"), ldprand.NewSplitMix64(9))
	if err != nil {
		t.Fatal(err)
	}
	perm := c.permanentBits("v")
	const n = 20000
	onesOnSet, setBits := 0, 0
	onesOnClear, clearBits := 0, 0
	for i := 0; i < n; i++ {
		r := c.Report("v")
		for b := 0; b < p.BloomBits; b++ {
			if perm.Get(b) {
				setBits++
				if r.Bits.Get(b) {
					onesOnSet++
				}
			} else {
				clearBits++
				if r.Bits.Get(b) {
					onesOnClear++
				}
			}
		}
	}
	if setBits > 0 {
		got := float64(onesOnSet) / float64(setBits)
		if math.Abs(got-p.Q) > 0.01 {
			t.Errorf("set-bit one rate %.4f want %.4f", got, p.Q)
		}
	}
	got := float64(onesOnClear) / float64(clearBits)
	if math.Abs(got-p.P) > 0.01 {
		t.Errorf("clear-bit one rate %.4f want %.4f", got, p.P)
	}
}
