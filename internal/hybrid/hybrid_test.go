package hybrid

import (
	"math"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestParamsValidate(t *testing.T) {
	good := Params{Epsilon: 1, Domain: 4, OptIn: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Epsilon: 0, Domain: 4, OptIn: 0.1},
		{Epsilon: 1, Domain: 1, OptIn: 0.1},
		{Epsilon: 1, Domain: 4, OptIn: -0.1},
		{Epsilon: 1, Domain: 4, OptIn: 1.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCollectRouting(t *testing.T) {
	c, err := NewCollector(Params{Epsilon: 1, Domain: 4, OptIn: 0.25}, ldprand.NewSplitMix64(1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		c.Collect(i % 4)
	}
	opt, loc := c.Collected()
	if opt+loc != n {
		t.Fatalf("split %d+%d != %d", opt, loc, n)
	}
	frac := float64(opt) / n
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("opt-in fraction %.3f want 0.25", frac)
	}
}

func TestBlendedEstimateAccuracy(t *testing.T) {
	src := ldprand.NewSplitMix64(2)
	zipf := workload.NewZipf(src, 1.2, 8)
	c, _ := NewCollector(Params{Epsilon: 1, Domain: 8, OptIn: 0.1}, src)
	const n = 40000
	truth := make([]float64, 8)
	for i := 0; i < n; i++ {
		v := zipf.Next()
		truth[v]++
		c.Collect(v)
	}
	est := c.EstimateCounts()
	if tv := stats.TotalVariation(est, truth); tv > 0.05 {
		t.Errorf("blended TV %.4f too large", tv)
	}
}

func TestHybridBeatsPureLocalWithOptIn(t *testing.T) {
	// The E10 claim: with a meaningful opt-in group, the blend's
	// variance is dominated by the (much more accurate) central group,
	// so the hybrid beats pure LDP. Compare analytic group variances.
	c, _ := NewCollector(Params{Epsilon: 1, Domain: 8, OptIn: 0.1}, ldprand.NewSplitMix64(3))
	const n = 50000
	src := ldprand.NewSplitMix64(4)
	for i := 0; i < n; i++ {
		c.Collect(ldprand.Intn(src, 8))
	}
	vOpt, vLoc := c.GroupVariances()
	if !(vOpt < vLoc) {
		t.Errorf("central group variance %.3g should beat local %.3g at 10%% opt-in", vOpt, vLoc)
	}
}

func TestPureModes(t *testing.T) {
	// OptIn = 0 and OptIn = 1 must both work (degenerate blends).
	for _, optIn := range []float64{0, 1} {
		c, _ := NewCollector(Params{Epsilon: 2, Domain: 4, OptIn: optIn}, ldprand.NewSplitMix64(5))
		const n = 20000
		truth := make([]float64, 4)
		src := ldprand.NewSplitMix64(6)
		for i := 0; i < n; i++ {
			v := ldprand.Intn(src, 4)
			truth[v]++
			c.Collect(v)
		}
		est := c.EstimateCounts()
		if tv := stats.TotalVariation(est, truth); tv > 0.08 {
			t.Errorf("optIn=%v: TV %.4f", optIn, tv)
		}
	}
}

func TestEmptyCollector(t *testing.T) {
	c, _ := NewCollector(Params{Epsilon: 1, Domain: 3, OptIn: 0.5}, ldprand.NewSplitMix64(7))
	est := c.EstimateCounts()
	for _, v := range est {
		if v != 0 {
			t.Fatal("empty collector should estimate zeros")
		}
	}
}

func TestCollectPanicsOutOfDomain(t *testing.T) {
	c, _ := NewCollector(Params{Epsilon: 1, Domain: 3, OptIn: 0.5}, ldprand.NewSplitMix64(8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Collect(3)
}

func TestBlendWeights(t *testing.T) {
	wa, wb := blendWeights(1, 1)
	if wa != 0.5 || wb != 0.5 {
		t.Errorf("equal variances: %v %v", wa, wb)
	}
	wa, wb = blendWeights(1, 3)
	if math.Abs(wa-0.75) > 1e-12 || math.Abs(wb-0.25) > 1e-12 {
		t.Errorf("1:3 variances: %v %v", wa, wb)
	}
	wa, wb = blendWeights(math.Inf(1), 2)
	if wa != 0 || wb != 1 {
		t.Errorf("infinite varA: %v %v", wa, wb)
	}
	wa, wb = blendWeights(math.Inf(1), math.Inf(1))
	if wa != 0 || wb != 0 {
		t.Errorf("both infinite: %v %v", wa, wb)
	}
}
