// Package hybrid implements a BLENDER-style hybrid privacy model
// (§1.4, after Avent et al., USENIX Security 2017): a small opt-in
// group trusts the aggregator and contributes under central DP, the
// rest contribute under LDP, and the server blends the two unbiased
// estimates with inverse-variance weights — strictly better than
// either population alone.
package hybrid

import (
	"fmt"
	"math"

	"repro/internal/central"
	"repro/internal/freq"
	"repro/internal/ldprand"
)

// Params configures a hybrid histogram collection.
type Params struct {
	Epsilon float64 // the same ε applies to both groups
	Domain  int     // histogram domain size
	OptIn   float64 // fraction of users in the trusted group, [0,1]
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	switch {
	case p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0):
		return fmt.Errorf("hybrid: epsilon must be positive and finite")
	case p.Domain < 2:
		return fmt.Errorf("hybrid: domain must be at least 2, got %d", p.Domain)
	case p.OptIn < 0 || p.OptIn > 1:
		return fmt.Errorf("hybrid: OptIn must be in [0,1], got %v", p.OptIn)
	}
	return nil
}

// Collector routes users to the opt-in or local group and produces the
// blended histogram estimate.
type Collector struct {
	params Params
	src    ldprand.Source
	// Opt-in group: raw counts, noised once at estimation time.
	optCounts []int
	optN      int
	// Local group: an OLH oracle.
	local   freq.Oracle
	laplace *central.LaplaceMechanism
}

// NewCollector returns a hybrid collector. A nil source selects
// crypto/rand.
func NewCollector(params Params, src ldprand.Source) (*Collector, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	return &Collector{
		params:    params,
		src:       src,
		optCounts: make([]int, params.Domain),
		local:     freq.NewOLH(params.Epsilon, params.Domain, src),
		laplace:   central.NewLaplace(params.Epsilon, 1, src),
	}, nil
}

// Collect routes one user: with probability OptIn the raw value goes to
// the trusted aggregator, otherwise an LDP report is produced.
func (c *Collector) Collect(v int) {
	if v < 0 || v >= c.params.Domain {
		panic(fmt.Sprintf("hybrid: value %d outside domain [0,%d)", v, c.params.Domain))
	}
	if ldprand.Bernoulli(c.src, c.params.OptIn) {
		c.optCounts[v]++
		c.optN++
	} else {
		c.local.Collect(v)
	}
}

// Collected returns (optIn, local) report counts.
func (c *Collector) Collected() (optIn, local int) {
	return c.optN, c.local.Collected()
}

// EstimateCounts returns the blended estimated counts over the full
// population. Each group's frequency estimate is unbiased; blending
// weights are inverse variances of the *frequency* estimators, which
// is the variance-minimizing combination of independent unbiased
// estimates.
func (c *Collector) EstimateCounts() []float64 {
	nOpt := c.optN
	nLoc := c.local.Collected()
	total := nOpt + nLoc
	out := make([]float64, c.params.Domain)
	if total == 0 {
		return out
	}
	// Frequency-estimator variances (approximate, frequency-independent).
	varOpt := math.Inf(1)
	if nOpt > 0 {
		varOpt = c.laplace.Variance() / (float64(nOpt) * float64(nOpt))
	}
	varLoc := math.Inf(1)
	if nLoc > 0 {
		varLoc = c.local.TheoreticalVariance(nLoc) / (float64(nLoc) * float64(nLoc))
	}
	wOpt, wLoc := blendWeights(varOpt, varLoc)

	var localFreqs []float64
	if nLoc > 0 {
		localFreqs = freq.EstimateFrequencies(c.local.EstimateCounts(), nLoc)
	}
	for v := 0; v < c.params.Domain; v++ {
		var fOpt, fLoc float64
		if nOpt > 0 {
			fOpt = c.laplace.Release(float64(c.optCounts[v])) / float64(nOpt)
		}
		if nLoc > 0 {
			fLoc = localFreqs[v]
		}
		out[v] = (wOpt*fOpt + wLoc*fLoc) * float64(total)
	}
	return out
}

// blendWeights returns normalized inverse-variance weights, handling
// the degenerate one-group cases.
func blendWeights(varA, varB float64) (wA, wB float64) {
	aInf, bInf := math.IsInf(varA, 1), math.IsInf(varB, 1)
	switch {
	case aInf && bInf:
		return 0, 0
	case aInf:
		return 0, 1
	case bInf:
		return 1, 0
	}
	ia, ib := 1/varA, 1/varB
	return ia / (ia + ib), ib / (ia + ib)
}

// GroupVariances exposes the per-group frequency variances the blend
// uses, for the E10 report.
func (c *Collector) GroupVariances() (optIn, local float64) {
	nOpt, nLoc := c.optN, c.local.Collected()
	optIn, local = math.Inf(1), math.Inf(1)
	if nOpt > 0 {
		optIn = c.laplace.Variance() / (float64(nOpt) * float64(nOpt))
	}
	if nLoc > 0 {
		local = c.local.TheoreticalVariance(nLoc) / (float64(nLoc) * float64(nLoc))
	}
	return optIn, local
}
