package transform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWHTKnownValues(t *testing.T) {
	xs := []float64{1, 0, 0, 0}
	WHT(xs)
	for i, v := range xs {
		if v != 1 {
			t.Fatalf("WHT(e0)[%d]=%v want 1", i, v)
		}
	}
	ys := []float64{0, 1, 0, 0}
	WHT(ys)
	want := []float64{1, -1, 1, -1}
	for i := range want {
		if ys[i] != want[i] {
			t.Fatalf("WHT(e1)=%v want %v", ys, want)
		}
	}
}

func TestWHTInvolutionProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		n := NextPow2(len(raw))
		xs := make([]float64, n)
		copy(xs, raw)
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.Abs(xs[i]) > 1e12 {
				return true
			}
		}
		orig := make([]float64, n)
		copy(orig, xs)
		WHT(xs)
		Inverse(xs)
		for i := range xs {
			if math.Abs(xs[i]-orig[i]) > 1e-6*(1+math.Abs(orig[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWHTMatchesEntry(t *testing.T) {
	// Transforming the j-th standard basis vector must yield column j of
	// the Hadamard matrix.
	const n = 16
	for j := 0; j < n; j++ {
		xs := make([]float64, n)
		xs[j] = 1
		WHT(xs)
		for i := 0; i < n; i++ {
			if xs[i] != Entry(i, j) {
				t.Fatalf("WHT(e%d)[%d]=%v, Entry=%v", j, i, xs[i], Entry(i, j))
			}
		}
	}
}

func TestEntrySymmetry(t *testing.T) {
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			if Entry(i, j) != Entry(j, i) {
				t.Fatalf("Entry(%d,%d) not symmetric", i, j)
			}
		}
	}
	if Entry(0, 5) != 1 || Entry(7, 0) != 1 {
		t.Error("first row/col must be all ones")
	}
}

func TestEntryOrthogonality(t *testing.T) {
	// Rows of H_n are orthogonal: dot(r1, r2) = 0 for r1 != r2.
	const n = 16
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			var dot float64
			for j := 0; j < n; j++ {
				dot += Entry(a, j) * Entry(b, j)
			}
			if dot != 0 {
				t.Fatalf("rows %d,%d not orthogonal: %v", a, b, dot)
			}
		}
	}
}

func TestWHTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WHT(make([]float64, 3))
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d)=%d want %d", in, got, want)
		}
	}
}

func TestLog2(t *testing.T) {
	for _, c := range []struct{ in, want int }{{1, 0}, {2, 1}, {1024, 10}} {
		if got := Log2(c.in); got != c.want {
			t.Errorf("Log2(%d)=%d want %d", c.in, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non power of two")
		}
	}()
	Log2(6)
}

func TestMasksOfWeightAtMost(t *testing.T) {
	got := MasksOfWeightAtMost(3, 1)
	want := []int{0, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("masks=%v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("masks=%v want %v", got, want)
		}
	}
	// All 2-way masks over 4 attributes: C(4,0)+C(4,1)+C(4,2) = 11.
	if got := MasksOfWeightAtMost(4, 2); len(got) != 11 {
		t.Fatalf("weight<=2 over 4 attrs: %d masks, want 11", len(got))
	}
}

func TestSubmasksOf(t *testing.T) {
	got := SubmasksOf(0b101)
	want := []int{0, 1, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("submasks=%v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("submasks=%v want %v", got, want)
		}
	}
	if got := SubmasksOf(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("submasks of 0 = %v", got)
	}
}

func TestCoefficientMatchesEntry(t *testing.T) {
	for m := 0; m < 8; m++ {
		for r := 0; r < 8; r++ {
			if Coefficient(m, r) != Entry(m, r) {
				t.Fatalf("Coefficient(%d,%d) != Entry", m, r)
			}
		}
	}
}

func BenchmarkWHT1024(b *testing.B) {
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WHT(xs)
	}
}
