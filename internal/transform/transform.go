// Package transform implements the fast Walsh–Hadamard transform (WHT)
// and Fourier-basis helpers.
//
// Two of the surveyed systems rely on spreading signal energy across a
// Fourier (Hadamard) basis: Apple's HCMS sends a single ±1 Hadamard
// coefficient per user (§1.2(2)), and marginal release reconstructs k-way
// marginals from low-order Fourier coefficients (§1.3). Both need only
// the unnormalized transform H_n with entries ±1 and the identity
// H(H(x)) = n·x.
package transform

import "fmt"

// WHT applies the in-place unnormalized fast Walsh–Hadamard transform to
// xs, whose length must be a power of two. Applying it twice multiplies
// the input by len(xs).
func WHT(xs []float64) {
	n := len(xs)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("transform: length %d is not a power of two", n))
	}
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := xs[j], xs[j+h]
				xs[j], xs[j+h] = x+y, x-y
			}
		}
	}
}

// Inverse applies the inverse transform: WHT followed by division by n.
func Inverse(xs []float64) {
	WHT(xs)
	n := float64(len(xs))
	for i := range xs {
		xs[i] /= n
	}
}

// Entry returns the (row, col) entry of the Hadamard matrix H_n without
// materializing it: (−1)^(popcount(row AND col)).
func Entry(row, col int) float64 {
	if parity(uint(row)&uint(col)) == 1 {
		return -1
	}
	return 1
}

// parity returns popcount(x) mod 2.
func parity(x uint) int {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return int(x & 1)
}

// NextPow2 returns the smallest power of two that is >= n and >= 1.
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Log2 returns the base-2 logarithm of a power of two, panicking on
// other inputs so silent misuse is caught early.
func Log2(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("transform: %d is not a power of two", n))
	}
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// Subset enumerates the Fourier basis of d binary attributes: each basis
// function is indexed by a bitmask over attributes. Coefficient returns
// the Fourier coefficient f̂(mask) of an indicator distribution sample x
// (a d-bit record encoded as an integer): (−1)^(popcount(mask AND x)).
// It coincides with Entry but is named for the marginal-release use case.
func Coefficient(mask, record int) float64 { return Entry(mask, record) }

// MasksOfWeightAtMost returns all attribute masks over d attributes with
// Hamming weight <= k, in increasing numeric order. These are exactly the
// coefficients needed to reconstruct all k-way marginals.
func MasksOfWeightAtMost(d, k int) []int {
	var out []int
	for m := 0; m < 1<<uint(d); m++ {
		if popcount(m) <= k {
			out = append(out, m)
		}
	}
	return out
}

// SubmasksOf returns all submasks of mask, including 0 and mask itself,
// in increasing numeric order.
func SubmasksOf(mask int) []int {
	var out []int
	for sub := mask; ; sub = (sub - 1) & mask {
		out = append(out, sub)
		if sub == 0 {
			break
		}
	}
	// The iteration above descends; reverse for increasing order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
