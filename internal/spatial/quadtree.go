package spatial

import (
	"fmt"
	"math"

	"repro/internal/ldprand"
	"repro/internal/postprocess"
	"repro/internal/workload"
)

// Quadtree is a multi-level spatial decomposition: level l covers the
// unit square with a 2^l × 2^l grid, each level fed by an equal share
// of the population through its own frequency oracle. Range queries
// use the canonical greedy decomposition (take whole cells from the
// coarsest level that fits, recurse into boundary cells), and the
// published estimates are reconciled across levels with
// inverse-variance parent/child consistency, which provably reduces
// variance over any single level.
type Quadtree struct {
	depth  int
	levels []*Grid // levels[i] has granularity 2^(i+1)
	src    ldprand.Source
}

// NewQuadtree returns a quadtree with the given depth (number of
// levels, each doubling granularity: 2×2 up to 2^depth × 2^depth).
func NewQuadtree(epsilon float64, depth int, src ldprand.Source) (*Quadtree, error) {
	if depth < 2 || depth > 8 {
		return nil, fmt.Errorf("spatial: quadtree depth must be in [2,8], got %d", depth)
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	levels := make([]*Grid, depth)
	for i := range levels {
		g, err := NewGrid(epsilon, 1<<uint(i+1), src)
		if err != nil {
			return nil, err
		}
		levels[i] = g
	}
	return &Quadtree{depth: depth, levels: levels, src: src}, nil
}

// Depth returns the number of levels.
func (q *Quadtree) Depth() int { return q.depth }

// Collect routes one user to a uniformly random level (one report per
// user, full budget).
func (q *Quadtree) Collect(p workload.Point) {
	q.levels[ldprand.Intn(q.src, q.depth)].Collect(p)
}

// Collected returns the total reports across levels.
func (q *Quadtree) Collected() int {
	total := 0
	for _, g := range q.levels {
		total += g.Collected()
	}
	return total
}

// EstimateConsistent returns per-level cell estimates scaled to the
// full population and reconciled top-down: each parent and its four
// children are blended by inverse variance, so every level tells the
// same story. levels[i] has (2^(i+1))² entries.
func (q *Quadtree) EstimateConsistent() ([][]float64, error) {
	total := q.Collected()
	est := make([][]float64, q.depth)
	variances := make([]float64, q.depth)
	for i, g := range q.levels {
		sub := g.Collected()
		cells := g.EstimateCells()
		scale := 0.0
		if sub > 0 {
			scale = float64(total) / float64(sub)
		}
		scaled := make([]float64, len(cells))
		for c, v := range cells {
			scaled[c] = v * scale
		}
		est[i] = scaled
		if sub > 0 {
			variances[i] = q.levels[i].oracle.TheoreticalVariance(sub) * scale * scale
		} else {
			variances[i] = math.Inf(1)
		}
	}
	// Hay-et-al.-style two-pass consistency. Children of parent
	// (px, py) at level i are the four cells (2px+dx, 2py+dy) at level
	// i+1.
	childOf := func(level, pc, dx, dy int) int {
		gp := 1 << uint(level+1)
		px, py := pc%gp, pc/gp
		return (2*py+dy)*(2*gp) + (2*px + dx)
	}

	// Pass 1 (bottom-up): blend each parent with its children's sum by
	// inverse variance; the blended level's effective variance tightens
	// accordingly and feeds the next blend up.
	for i := q.depth - 2; i >= 0; i-- {
		if math.IsInf(variances[i], 1) || math.IsInf(variances[i+1], 1) {
			continue
		}
		varChildSum := 4 * variances[i+1]
		for pc := range est[i] {
			var childSum float64
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					childSum += est[i+1][childOf(i, pc, dx, dy)]
				}
			}
			blended, err := postprocess.WeightedAverage(est[i][pc], variances[i], childSum, varChildSum)
			if err != nil {
				return nil, err
			}
			est[i][pc] = blended
		}
		variances[i] = 1 / (1/variances[i] + 1/varChildSum)
	}

	// Pass 2 (top-down): spread each parent/child-sum residual evenly
	// over the children, establishing exact consistency at every level.
	for i := 0; i+1 < q.depth; i++ {
		if math.IsInf(variances[i+1], 1) {
			continue
		}
		for pc := range est[i] {
			var childSum float64
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					childSum += est[i+1][childOf(i, pc, dx, dy)]
				}
			}
			adjust := (est[i][pc] - childSum) / 4
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					est[i+1][childOf(i, pc, dx, dy)] += adjust
				}
			}
		}
	}
	return est, nil
}

// RangeCount answers a rectilinear query by greedy decomposition over
// the consistent estimates: starting from the coarsest level, whole
// cells inside the query are taken as-is, disjoint cells are skipped,
// and boundary cells recurse into their children; at the finest level
// boundary cells contribute fractionally by overlap area.
func (q *Quadtree) RangeCount(query Rect) (float64, error) {
	est, err := q.EstimateConsistent()
	if err != nil {
		return 0, err
	}
	var walk func(level, cell int) float64
	walk = func(level, cell int) float64 {
		g := q.levels[level]
		cr := g.CellRect(cell)
		overlap := Rect{
			MinX: math.Max(query.MinX, cr.MinX), MinY: math.Max(query.MinY, cr.MinY),
			MaxX: math.Min(query.MaxX, cr.MaxX), MaxY: math.Min(query.MaxY, cr.MaxY),
		}
		a := overlap.Area()
		if a <= 0 {
			return 0
		}
		if a >= cr.Area()-1e-12 { // fully contained
			return est[level][cell]
		}
		if level == q.depth-1 { // finest level: fractional
			return est[level][cell] * a / cr.Area()
		}
		// Recurse into the four children.
		gp := 1 << uint(level+1)
		px, py := cell%gp, cell/gp
		var sum float64
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				sum += walk(level+1, (2*py+dy)*(2*gp)+(2*px+dx))
			}
		}
		return sum
	}
	var total float64
	for cell := 0; cell < 4; cell++ {
		total += walk(0, cell)
	}
	return total, nil
}
