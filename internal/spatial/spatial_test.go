package spatial

import (
	"math"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/workload"
)

func TestCellOfCorners(t *testing.T) {
	g, err := NewGrid(1, 4, ldprand.NewSplitMix64(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    workload.Point
		want int
	}{
		{workload.Point{X: 0, Y: 0}, 0},
		{workload.Point{X: 0.99, Y: 0}, 3},
		{workload.Point{X: 0, Y: 0.99}, 12},
		{workload.Point{X: 1, Y: 1}, 15},  // boundary clamps into the last cell
		{workload.Point{X: -1, Y: -1}, 0}, // clamped
		{workload.Point{X: 0.3, Y: 0.6}, 9},
	}
	for _, c := range cases {
		if got := g.CellOf(c.p); got != c.want {
			t.Errorf("CellOf(%+v)=%d want %d", c.p, got, c.want)
		}
	}
}

func TestCellRectRoundTrip(t *testing.T) {
	g, _ := NewGrid(1, 8, ldprand.NewSplitMix64(2))
	for cell := 0; cell < 64; cell++ {
		r := g.CellRect(cell)
		center := workload.Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
		if got := g.CellOf(center); got != cell {
			t.Fatalf("cell %d center maps to %d", cell, got)
		}
	}
}

func TestRectContainsAndArea(t *testing.T) {
	r := Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.4}
	if !r.Contains(workload.Point{X: 0.3, Y: 0.3}) {
		t.Error("interior point not contained")
	}
	if r.Contains(workload.Point{X: 0.7, Y: 0.3}) {
		t.Error("exterior point contained")
	}
	if math.Abs(r.Area()-0.08) > 1e-12 {
		t.Errorf("area %v want 0.08", r.Area())
	}
	if (Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}).Area() != 0 {
		t.Error("inverted rect should have zero area")
	}
}

func TestGridRangeCountAccuracy(t *testing.T) {
	src := ldprand.NewSplitMix64(3)
	points := workload.Locations(src, workload.DefaultCityClusters(), 40000)
	g, err := NewGrid(2, 8, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		g.Collect(p)
	}
	if g.Collected() != len(points) {
		t.Fatalf("collected %d", g.Collected())
	}
	// Query aligned with cell boundaries to avoid discretization error.
	q := Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5}
	truth := 0
	for _, p := range points {
		if q.Contains(p) {
			truth++
		}
	}
	got := g.RangeCount(q)
	if math.Abs(got-float64(truth)) > 0.1*float64(len(points)) {
		t.Errorf("range count %.0f truth %d", got, truth)
	}
}

func TestHotspotsFindClusterCenters(t *testing.T) {
	src := ldprand.NewSplitMix64(4)
	clusters := workload.DefaultCityClusters()
	points := workload.Locations(src, clusters, 50000)
	g, _ := NewGrid(2, 10, src)
	for _, p := range points {
		g.Collect(p)
	}
	hot := g.Hotspots(5)
	if len(hot) != 5 {
		t.Fatalf("hotspots %v", hot)
	}
	// The top hotspot should be near the heaviest cluster center.
	r := g.CellRect(hot[0])
	cx, cy := (r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2
	c := clusters[0].Center
	dist := math.Hypot(cx-c.X, cy-c.Y)
	if dist > 0.25 {
		t.Errorf("top hotspot at (%.2f,%.2f), heaviest cluster at (%.2f,%.2f)", cx, cy, c.X, c.Y)
	}
}

func TestTrueCellsMatchesManualCount(t *testing.T) {
	g, _ := NewGrid(1, 2, ldprand.NewSplitMix64(5))
	pts := []workload.Point{
		{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.1}, {X: 0.9, Y: 0.9}, {X: 0.6, Y: 0.7},
	}
	cells := g.TrueCells(pts)
	want := []float64{1, 1, 0, 2}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("TrueCells=%v want %v", cells, want)
		}
	}
}

func TestGranularityTradeoffShape(t *testing.T) {
	// The E8 ablation in miniature: for a boundary-crossing small query,
	// the error typically behaves differently across granularities; at
	// minimum both grids must produce finite sensible answers and the
	// noise of the very fine grid must exceed the coarse one's on a
	// cell-aligned query.
	src := ldprand.NewSplitMix64(6)
	points := workload.Locations(src, workload.DefaultCityClusters(), 30000)
	q := Rect{MinX: 0, MinY: 0, MaxX: 0.25, MaxY: 0.25}
	truth := 0
	for _, p := range points {
		if q.Contains(p) {
			truth++
		}
	}
	for _, gran := range []int{4, 16} {
		g, _ := NewGrid(1, gran, src)
		for _, p := range points {
			g.Collect(p)
		}
		got := g.RangeCount(q)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("granularity %d produced non-finite estimate", gran)
		}
		if math.Abs(got-float64(truth)) > 0.2*float64(len(points)) {
			t.Errorf("granularity %d: estimate %.0f truth %d", gran, got, truth)
		}
	}
}

func TestHierarchyRouting(t *testing.T) {
	src := ldprand.NewSplitMix64(7)
	h, err := NewHierarchy(2, 4, 16, src)
	if err != nil {
		t.Fatal(err)
	}
	points := workload.Locations(src, workload.DefaultCityClusters(), 20000)
	for _, p := range points {
		h.Collect(p)
	}
	nc, nf := h.coarse.Collected(), h.fine.Collected()
	if nc+nf != len(points) {
		t.Fatalf("split %d+%d != %d", nc, nf, len(points))
	}
	if nc < len(points)/3 || nf < len(points)/3 {
		t.Errorf("unbalanced split %d/%d", nc, nf)
	}
	// Wide query.
	wide := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	if got := h.RangeCount(wide); math.Abs(got-float64(len(points))) > 0.15*float64(len(points)) {
		t.Errorf("full-square count %.0f want about %d", got, len(points))
	}
	// Narrow query should still return something finite and plausible.
	narrow := Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.3, MaxY: 0.3}
	truth := 0
	for _, p := range points {
		if narrow.Contains(p) {
			truth++
		}
	}
	got := h.RangeCount(narrow)
	if math.Abs(got-float64(truth)) > 0.2*float64(len(points)) {
		t.Errorf("narrow count %.0f truth %d", got, truth)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewGrid(1, 0, nil); err == nil {
		t.Error("granularity 0 accepted")
	}
	if _, err := NewGrid(1, 1, nil); err == nil {
		t.Error("1x1 grid accepted (single-cell domain)")
	}
	if _, err := NewHierarchy(1, 8, 8, nil); err == nil {
		t.Error("coarse == fine accepted")
	}
	if _, err := NewHierarchy(1, 16, 8, nil); err == nil {
		t.Error("coarse > fine accepted")
	}
}
