package spatial

import (
	"math"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/workload"
)

func TestNewQuadtreeValidation(t *testing.T) {
	if _, err := NewQuadtree(1, 1, nil); err == nil {
		t.Error("depth 1 accepted")
	}
	if _, err := NewQuadtree(1, 9, nil); err == nil {
		t.Error("depth 9 accepted")
	}
	qt, err := NewQuadtree(1, 3, ldprand.NewSplitMix64(1))
	if err != nil {
		t.Fatal(err)
	}
	if qt.Depth() != 3 {
		t.Fatalf("depth %d", qt.Depth())
	}
}

func TestQuadtreeRoutesAllUsers(t *testing.T) {
	src := ldprand.NewSplitMix64(2)
	qt, _ := NewQuadtree(2, 3, src)
	points := workload.Locations(src, workload.DefaultCityClusters(), 9000)
	for _, p := range points {
		qt.Collect(p)
	}
	if qt.Collected() != len(points) {
		t.Fatalf("collected %d want %d", qt.Collected(), len(points))
	}
	// Levels get roughly equal shares.
	for i, g := range qt.levels {
		if g.Collected() < len(points)/6 {
			t.Errorf("level %d has only %d reports", i, g.Collected())
		}
	}
}

func TestConsistencyMakesLevelsAgree(t *testing.T) {
	src := ldprand.NewSplitMix64(3)
	qt, _ := NewQuadtree(2, 3, src)
	points := workload.Locations(src, workload.DefaultCityClusters(), 30000)
	for _, p := range points {
		qt.Collect(p)
	}
	est, err := qt.EstimateConsistent()
	if err != nil {
		t.Fatal(err)
	}
	// After reconciliation, every parent equals the sum of its children.
	for level := 0; level+1 < qt.Depth(); level++ {
		gp := 1 << uint(level+1)
		for pc := range est[level] {
			px, py := pc%gp, pc/gp
			var childSum float64
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					childSum += est[level+1][(2*py+dy)*(2*gp)+(2*px+dx)]
				}
			}
			if math.Abs(est[level][pc]-childSum) > 1e-6*(1+math.Abs(childSum)) {
				t.Fatalf("level %d cell %d: parent %.2f != child sum %.2f",
					level, pc, est[level][pc], childSum)
			}
		}
	}
}

func TestQuadtreeRangeCountAccuracy(t *testing.T) {
	src := ldprand.NewSplitMix64(4)
	qt, _ := NewQuadtree(2, 4, src)
	points := workload.Locations(src, workload.DefaultCityClusters(), 60000)
	for _, p := range points {
		qt.Collect(p)
	}
	queries := []Rect{
		{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5},
		{MinX: 0.25, MinY: 0.25, MaxX: 0.75, MaxY: 0.75},
		{MinX: 0.1, MinY: 0.6, MaxX: 0.9, MaxY: 0.95},
	}
	for _, query := range queries {
		truth := 0.0
		for _, p := range points {
			if query.Contains(p) {
				truth++
			}
		}
		got, err := qt.RangeCount(query)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-truth) > 0.12*float64(len(points)) {
			t.Errorf("query %+v: estimate %.0f truth %.0f", query, got, truth)
		}
	}
}

func TestQuadtreeFullSquare(t *testing.T) {
	src := ldprand.NewSplitMix64(5)
	qt, _ := NewQuadtree(2, 3, src)
	points := workload.Locations(src, workload.DefaultCityClusters(), 20000)
	for _, p := range points {
		qt.Collect(p)
	}
	got, err := qt.RangeCount(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-float64(len(points))) > 0.1*float64(len(points)) {
		t.Fatalf("full square %.0f want about %d", got, len(points))
	}
}

func TestQuadtreeEmpty(t *testing.T) {
	qt, _ := NewQuadtree(1, 2, ldprand.NewSplitMix64(6))
	got, err := qt.RangeCount(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("empty quadtree count %v", got)
	}
}
