// Package spatial implements private location collection (§1.3): user
// positions in the unit square are discretized onto a uniform grid and
// collected through a frequency oracle, supporting rectilinear range
// queries and hotspot detection. A two-level hierarchy trades off the
// grid-granularity dilemma the E8 ablation measures: finer grids reduce
// discretization error but spread the privacy noise over more cells.
package spatial

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/freq"
	"repro/internal/ldprand"
	"repro/internal/workload"
)

// Rect is an axis-aligned query rectangle within the unit square; Min
// is inclusive, Max exclusive.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether the point lies inside the rectangle.
func (r Rect) Contains(p workload.Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// Area returns the rectangle's area (0 for inverted rectangles).
func (r Rect) Area() float64 {
	w, h := r.MaxX-r.MinX, r.MaxY-r.MinY
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Grid collects points onto a g×g uniform grid with an OLH frequency
// oracle over the g² cells.
type Grid struct {
	g      int
	oracle freq.Oracle
}

// NewGrid returns a grid collector with granularity g and budget
// epsilon. A nil source selects crypto/rand.
func NewGrid(epsilon float64, g int, src ldprand.Source) (*Grid, error) {
	if g < 1 {
		return nil, fmt.Errorf("spatial: granularity must be at least 1, got %d", g)
	}
	if g*g < 2 {
		return nil, fmt.Errorf("spatial: grid must have at least 2 cells")
	}
	return &Grid{g: g, oracle: freq.NewOLH(epsilon, g*g, src)}, nil
}

// Granularity returns g.
func (gr *Grid) Granularity() int { return gr.g }

// CellOf returns the cell index of a point (row-major).
func (gr *Grid) CellOf(p workload.Point) int {
	cx := int(p.X * float64(gr.g))
	cy := int(p.Y * float64(gr.g))
	if cx >= gr.g {
		cx = gr.g - 1
	}
	if cy >= gr.g {
		cy = gr.g - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return cy*gr.g + cx
}

// CellRect returns the rectangle covered by a cell index.
func (gr *Grid) CellRect(cell int) Rect {
	cx, cy := cell%gr.g, cell/gr.g
	s := 1 / float64(gr.g)
	return Rect{
		MinX: float64(cx) * s, MinY: float64(cy) * s,
		MaxX: float64(cx+1) * s, MaxY: float64(cy+1) * s,
	}
}

// Collect privatizes and aggregates one user position.
func (gr *Grid) Collect(p workload.Point) {
	gr.oracle.Collect(gr.CellOf(p))
}

// Collected returns the number of reports.
func (gr *Grid) Collected() int { return gr.oracle.Collected() }

// EstimateCells returns estimated per-cell counts.
func (gr *Grid) EstimateCells() []float64 { return gr.oracle.EstimateCounts() }

// RangeCount answers a rectilinear counting query: estimated number of
// users inside the rectangle. Boundary cells contribute fractionally by
// overlap area, the uniformity assumption standard in this literature.
func (gr *Grid) RangeCount(q Rect) float64 {
	cells := gr.EstimateCells()
	var total float64
	for cell, count := range cells {
		cr := gr.CellRect(cell)
		overlap := Rect{
			MinX: math.Max(q.MinX, cr.MinX), MinY: math.Max(q.MinY, cr.MinY),
			MaxX: math.Min(q.MaxX, cr.MaxX), MaxY: math.Min(q.MaxY, cr.MaxY),
		}
		if a := overlap.Area(); a > 0 {
			total += count * a / cr.Area()
		}
	}
	return total
}

// Hotspots returns the k cells with the largest estimated counts, in
// decreasing order.
func (gr *Grid) Hotspots(k int) []int {
	counts := gr.EstimateCells()
	idx := make([]int, len(counts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return counts[idx[a]] > counts[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// TrueCells computes the exact per-cell histogram of points, the
// ground truth for experiments.
func (gr *Grid) TrueCells(points []workload.Point) []float64 {
	counts := make([]float64, gr.g*gr.g)
	for _, p := range points {
		counts[gr.CellOf(p)]++
	}
	return counts
}

// Hierarchy is a two-level spatial decomposition: a coarse grid and a
// fine grid, each fed by half the population. Range queries are
// answered from whichever level better matches the query extent,
// reducing the worst-case error of a single-granularity grid.
type Hierarchy struct {
	coarse, fine *Grid
	flip         ldprand.Source
}

// NewHierarchy returns a hierarchy with the given granularities
// (coarse < fine required).
func NewHierarchy(epsilon float64, coarseG, fineG int, src ldprand.Source) (*Hierarchy, error) {
	if coarseG >= fineG {
		return nil, fmt.Errorf("spatial: coarse granularity %d must be below fine %d", coarseG, fineG)
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	coarse, err := NewGrid(epsilon, coarseG, src)
	if err != nil {
		return nil, err
	}
	fine, err := NewGrid(epsilon, fineG, src)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{coarse: coarse, fine: fine, flip: src}, nil
}

// Collect routes the user to one of the two levels uniformly at random
// (each user reports once, keeping the full per-user budget).
func (h *Hierarchy) Collect(p workload.Point) {
	if ldprand.Bernoulli(h.flip, 0.5) {
		h.coarse.Collect(p)
	} else {
		h.fine.Collect(p)
	}
}

// RangeCount answers a range query from the better-suited level: wide
// queries (area above the coarse-cell scale) use the coarse grid,
// narrow ones the fine grid. Estimates are scaled from the sampled
// sub-population back to the full population.
func (h *Hierarchy) RangeCount(q Rect) float64 {
	total := h.coarse.Collected() + h.fine.Collected()
	coarseCell := 1 / float64(h.coarse.g*h.coarse.g)
	var est float64
	var sub int
	if q.Area() >= 4*coarseCell {
		est = h.coarse.RangeCount(q)
		sub = h.coarse.Collected()
	} else {
		est = h.fine.RangeCount(q)
		sub = h.fine.Collected()
	}
	if sub == 0 {
		return 0
	}
	return est * float64(total) / float64(sub)
}
