package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/fsio"
)

// Outbox is the relay's durable send queue: every delta cut from a
// collection lands here as one file BEFORE anything is acknowledged to
// the flusher, and leaves only when the upstream has folded it (or the
// operator is handed it as .stranded). Files are named by a monotonic
// sequence number and sent in that order, so a phased collection's
// deltas reach the upstream in the order they were cut; the delta's
// own header (collection, idempotency key, round) travels inside the
// self-checking binary container, keeping filenames trivial.
//
// Writes are crash-atomic (temp file, fsync, rename, directory fsync
// — the checkpoint store's recipe), and a boot-time scan resumes
// whatever a crash left behind: *.delta files re-enter the queue,
// temp strays are deleted, .stranded files are only counted.
type Outbox struct {
	fs  fsio.FS
	dir string

	// outMu guards the queue, counters and sequence. It is a leaf
	// below nothing: Put/Remove run after the collection's WAL lock is
	// released, never inside it.
	outMu    sync.Mutex
	seq      uint64
	queue    []Entry
	pending  map[string]int // collection -> queued delta count
	stranded map[string]int // collection -> stranded delta count
}

// Entry is one queued delta.
type Entry struct {
	Seq        uint64
	Path       string
	Collection string
	ID         string
}

const (
	deltaSuffix    = ".delta"
	strandedSuffix = ".stranded"
)

// NewOutbox opens (creating if needed) the outbox directory and scans
// it: queued deltas are re-read to recover their collection and key,
// corrupt ones are stranded, temp strays from a torn write are
// removed.
func NewOutbox(fsys fsio.FS, dir string) (*Outbox, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: outbox dir: %w", err)
	}
	o := &Outbox{
		fs:       fsys,
		dir:      dir,
		pending:  make(map[string]int),
		stranded: make(map[string]int),
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: outbox scan: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		path := filepath.Join(dir, name)
		switch {
		case strings.HasPrefix(name, ".tmp-"):
			_ = fsys.Remove(path) //ldplint:ok fsiocheck torn temp file; its delta was never acknowledged
		case strings.HasSuffix(name, strandedSuffix):
			o.stranded[strandedOwner(fsys, path)]++
		case strings.HasSuffix(name, deltaSuffix):
			seq, err := strconv.ParseUint(strings.TrimSuffix(name, deltaSuffix), 16, 64)
			if err != nil {
				continue // foreign file; not ours to interpret
			}
			if seq >= o.seq {
				o.seq = seq + 1
			}
			d, err := o.load(path)
			if err != nil {
				// The container failed its checksum: preserve the bytes
				// for the operator; the journal's flush frame replay
				// will have regenerated the delta if it was real.
				_ = fsys.Rename(path, path+strandedSuffix) //ldplint:ok fsiocheck corrupt file is counted either way; next boot retries the rename
				o.stranded[""]++
				continue
			}
			o.queue = append(o.queue, Entry{Seq: seq, Path: path, Collection: d.Collection, ID: d.ID})
			o.pending[d.Collection]++
		}
	}
	sort.Slice(o.queue, func(i, j int) bool { return o.queue[i].Seq < o.queue[j].Seq })
	return o, nil
}

// strandedOwner best-effort recovers which collection a stranded file
// belonged to (for per-collection counters); unreadable files count
// under "".
func strandedOwner(fsys fsio.FS, path string) string {
	blob, err := fsys.ReadFile(path)
	if err != nil {
		return ""
	}
	d, err := core.DecodeDeltaBinary(blob)
	if err != nil {
		return ""
	}
	return d.Collection
}

func (o *Outbox) load(path string) (core.Delta, error) {
	blob, err := o.fs.ReadFile(path)
	if err != nil {
		return core.Delta{}, err
	}
	return core.DecodeDeltaBinary(blob)
}

// Put persists one delta and queues it for sending. The file is
// durable (fsynced, atomically named) before Put returns. Re-putting
// a delta whose idempotency key is already queued for the same
// collection is a no-op — journal replay re-emits cut deltas whose
// outbox file may have survived the crash.
func (o *Outbox) Put(d core.Delta) error {
	blob, err := core.EncodeDeltaBinary(d)
	if err != nil {
		return err
	}
	o.outMu.Lock()
	defer o.outMu.Unlock()
	for _, e := range o.queue {
		if e.Collection == d.Collection && e.ID == d.ID && d.ID != "" {
			return nil
		}
	}
	seq := o.seq
	o.seq++
	path := filepath.Join(o.dir, fmt.Sprintf("%016x%s", seq, deltaSuffix))
	f, err := o.fs.CreateTemp(o.dir, ".tmp-delta-*")
	if err != nil {
		return fmt.Errorf("cluster: outbox write: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(blob); err != nil {
		_ = f.Close()        //ldplint:ok fsiocheck the write error is the one reported; close is cleanup
		_ = o.fs.Remove(tmp) //ldplint:ok fsiocheck failed temp write already reported; removal is cleanup
		return fmt.Errorf("cluster: outbox write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()        //ldplint:ok fsiocheck the sync error is the one reported; close is cleanup
		_ = o.fs.Remove(tmp) //ldplint:ok fsiocheck failed temp sync already reported; removal is cleanup
		return fmt.Errorf("cluster: outbox sync: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = o.fs.Remove(tmp) //ldplint:ok fsiocheck failed temp close already reported; removal is cleanup
		return fmt.Errorf("cluster: outbox close: %w", err)
	}
	if err := o.fs.Rename(tmp, path); err != nil {
		_ = o.fs.Remove(tmp) //ldplint:ok fsiocheck failed rename already reported; removal is cleanup
		return fmt.Errorf("cluster: outbox rename: %w", err)
	}
	if err := o.fs.SyncDir(o.dir); err != nil {
		return fmt.Errorf("cluster: outbox dir sync: %w", err)
	}
	o.queue = append(o.queue, Entry{Seq: seq, Path: path, Collection: d.Collection, ID: d.ID})
	o.pending[d.Collection]++
	return nil
}

// Pending returns the queued entries in send order.
func (o *Outbox) Pending() []Entry {
	o.outMu.Lock()
	defer o.outMu.Unlock()
	out := make([]Entry, len(o.queue))
	copy(out, o.queue)
	return out
}

// Load reads and decodes one queued delta plus its encoded container
// bytes (what the sender posts verbatim).
func (o *Outbox) Load(e Entry) (core.Delta, []byte, error) {
	blob, err := o.fs.ReadFile(e.Path)
	if err != nil {
		return core.Delta{}, nil, err
	}
	d, err := core.DecodeDeltaBinary(blob)
	if err != nil {
		return core.Delta{}, nil, err
	}
	return d, blob, nil
}

// Remove deletes an acknowledged delta from disk and queue.
func (o *Outbox) Remove(e Entry) error {
	o.outMu.Lock()
	defer o.outMu.Unlock()
	if err := o.fs.Remove(e.Path); err != nil && !os.IsNotExist(err) {
		return err
	}
	o.drop(e)
	return nil
}

// Strand sets a permanently rejected delta aside: the file is renamed
// to .stranded (never deleted — it holds acknowledged reports the
// operator may still merge by hand) and counted in /status.
func (o *Outbox) Strand(e Entry) error {
	o.outMu.Lock()
	defer o.outMu.Unlock()
	if err := o.fs.Rename(e.Path, e.Path+strandedSuffix); err != nil && !os.IsNotExist(err) {
		return err
	}
	o.drop(e)
	o.stranded[e.Collection]++
	return nil
}

// drop removes e from the in-memory queue; the caller holds outMu.
func (o *Outbox) drop(e Entry) {
	for i := range o.queue {
		if o.queue[i].Seq == e.Seq {
			o.queue = append(o.queue[:i], o.queue[i+1:]...)
			if o.pending[e.Collection] > 0 {
				o.pending[e.Collection]--
			}
			return
		}
	}
}

// Counts reports the queued and stranded delta counts for one
// collection.
func (o *Outbox) Counts(collection string) (pending, stranded int) {
	o.outMu.Lock()
	defer o.outMu.Unlock()
	return o.pending[collection], o.stranded[collection]
}
