package cluster

// Crash-consistency for the relay flush path, by brute force like the
// core sweep: a counting dry run enumerates every mutating filesystem
// operation the relay workload performs — journal appends, flush
// frames, outbox writes, checkpoints — then the workload re-runs once
// per operation with a crash (clean or torn-write) injected there. The
// relay restarts over the surviving directory, the client retries
// every batch under its original idempotency key, one flush drains
// whatever survived, and the UPSTREAM estimate must be bit-identical
// to a single node that folded each batch exactly once. The upstream
// stays alive across the relay's crash (only the relay dies), so its
// dedup index is what converts resent deltas into exactly-once folds.

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fsio"
)

const relayCol = "words"

func relayBatchID(i int) string { return fmt.Sprintf("relay-batch-%02d", i) }

// relayReference folds every batch exactly once, memory-only: the
// upstream counts any crash + restart + retry interleaving must
// reproduce. GRR state is integer support counts, so the equality is
// exact.
func relayReference(t *testing.T, batches [][]json.RawMessage) []float64 {
	t.Helper()
	reg := core.NewCollectionRegistry()
	c, err := reg.Create(relayCol, freqCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if _, err := c.IngestBatch(relayBatchID(i), b); err != nil {
			t.Fatal(err)
		}
	}
	return freqCounts(t, c)
}

// ingestRelayRetry plays the client's role: re-send the batch under
// the same idempotency key until acknowledged, running a flush cycle
// and a checkpoint between attempts the way the relay's background
// loops would (the flush drains memory-held deltas, the checkpoint
// clears a broken journal).
func ingestRelayRetry(ctx context.Context, r *Relay, store *core.Store, reg *core.CollectionRegistry, c *core.Collection, id string, b []json.RawMessage) bool {
	for attempt := 0; attempt < 3; attempt++ {
		if _, err := c.IngestBatch(id, b); err == nil {
			return true
		}
		_ = r.Flush(ctx)
		_ = store.Save(reg, c)
	}
	return false
}

// runRelayCrashWorkload drives one fixed relay scenario over fsys —
// mirror the upstream collection, ingest the batches with a flush in
// the middle, flush and checkpoint at the end — and returns which
// batches were acknowledged. Injected failures are expected; a failed
// step leaves its batch unacknowledged.
func runRelayCrashWorkload(t testing.TB, fsys fsio.FS, dir, upURL string, batches [][]json.RawMessage) map[int]bool {
	t.Helper()
	ctx := context.Background()
	acked := make(map[int]bool)
	store, err := core.NewStoreFS(dir, fsys, core.JournalSyncEvery)
	if err != nil {
		if store, err = core.NewStoreFS(dir, fsys, core.JournalSyncEvery); err != nil {
			return acked
		}
	}
	out, err := NewOutbox(fsys, filepath.Join(dir, "outbox"))
	if err != nil {
		if out, err = NewOutbox(fsys, filepath.Join(dir, "outbox")); err != nil {
			return acked
		}
	}
	store.SetFlushSink(FlushSink(out))
	reg := core.NewCollectionRegistry()
	if _, err := store.Load(reg); err != nil {
		return acked
	}
	svc := core.NewMultiService(reg, store)
	r := NewRelay(svc, store, NewUpstream(upURL), out)

	// Nothing is acknowledged before the mirrored collection has its
	// journal and base snapshot — SyncCollections rolls back a mirror
	// that could not get them, so retry until one sticks.
	var c *core.Collection
	for attempt := 0; attempt < 3 && c == nil; attempt++ {
		_ = r.SyncCollections(ctx)
		if cc, ok := reg.Get(relayCol); ok {
			c = cc
		}
	}
	if c == nil {
		return acked
	}
	for i, b := range batches {
		if ingestRelayRetry(ctx, r, store, reg, c, relayBatchID(i), b) {
			acked[i] = true
		}
		if i == len(batches)/2 {
			_ = r.Flush(ctx)
		}
	}
	_ = r.Flush(ctx)
	_ = store.SaveAll(reg)
	return acked
}

// verifyRelayCrashRecovery restarts the relay over whatever the crash
// left in dir (real filesystem, sink installed before Load), retries
// EVERY batch under its original key, flushes, and asserts the two
// halves of the contract: an acknowledged batch deduplicates (never
// re-aggregated), and the upstream ends bit-identical to the
// single-node reference.
func verifyRelayCrashRecovery(t *testing.T, dir, upURL string, upC *core.Collection, batches [][]json.RawMessage, acked map[int]bool, want []float64) {
	t.Helper()
	ctx := context.Background()
	store, err := core.NewStoreFS(dir, fsio.OS, core.JournalSyncEvery)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewOutbox(fsio.OS, filepath.Join(dir, "outbox"))
	if err != nil {
		t.Fatal(err)
	}
	store.SetFlushSink(FlushSink(out))
	reg := core.NewCollectionRegistry()
	if _, err := store.Load(reg); err != nil {
		t.Fatal(err)
	}
	svc := core.NewMultiService(reg, store)
	r := NewRelay(svc, store, NewUpstream(upURL), out)
	if err := r.SyncCollections(ctx); err != nil {
		t.Fatal(err)
	}
	c, ok := reg.Get(relayCol)
	if !ok {
		t.Fatal("mirrored collection missing after restart + sync")
	}
	for i, b := range batches {
		res, err := c.IngestBatch(relayBatchID(i), b)
		if err != nil {
			t.Fatalf("retrying batch %d after restart: %v", i, err)
		}
		if res.Accepted != len(b) {
			t.Fatalf("retry of batch %d accepted %d/%d envelopes", i, res.Accepted, len(b))
		}
		if acked[i] && !res.Replayed {
			t.Fatalf("batch %d was acknowledged before the crash, but the retry re-aggregated it", i)
		}
	}
	if err := r.Flush(ctx); err != nil {
		t.Fatalf("recovery flush: %v", err)
	}
	if n := c.Aggregator().Collected(); n != 0 {
		t.Fatalf("relay still holds %d reports after the recovery flush", n)
	}
	if got := freqCounts(t, upC); !reflect.DeepEqual(got, want) {
		t.Fatalf("upstream estimates after recovery = %v, want %v", got, want)
	}
}

// TestRelayCrashSweepUpstreamExact crashes the relay at every mutating
// filesystem operation of its flush path — once cleanly, once with a
// torn write — and requires the upstream to end bit-identical to the
// single-node reference at every single crash point.
func TestRelayCrashSweepUpstreamExact(t *testing.T) {
	batches := freqBatches(t, 5, 4)
	want := relayReference(t, batches)

	fault := fsio.NewFault(fsio.OS)
	{
		_, upTS := newUpstream(t, map[string]core.CollectionConfig{relayCol: freqCfg()})
		runRelayCrashWorkload(t, fault, t.TempDir(), upTS.URL, batches) // disarmed dry run
		upTS.Close()
	}
	n := fault.Ops()
	if n < 20 {
		t.Fatalf("dry run observed only %d mutating operations; the workload no longer exercises the relay persistence stack", n)
	}
	for _, torn := range []bool{false, true} {
		for k := 0; k < n; k++ {
			if torn {
				fault.CrashTornAt(k)
			} else {
				fault.CrashAt(k)
			}
			upReg, upTS := newUpstream(t, map[string]core.CollectionConfig{relayCol: freqCfg()})
			upC, _ := upReg.Get(relayCol)
			dir := t.TempDir()
			acked := runRelayCrashWorkload(t, fault, dir, upTS.URL, batches)
			fault.Disarm()
			t.Logf("crash at op %d/%d (torn=%v): %d/%d batches acked", k, n, torn, len(acked), len(batches))
			verifyRelayCrashRecovery(t, dir, upTS.URL, upC, batches, acked, want)
			upTS.Close()
		}
	}
}

// TestRelayTransientFaultSweep injects a single ENOSPC-style failure
// at every operation instead of a crash: the relay keeps running, so
// with retries every batch must be acknowledged and the upstream must
// still end exact.
func TestRelayTransientFaultSweep(t *testing.T) {
	batches := freqBatches(t, 5, 4)
	want := relayReference(t, batches)

	fault := fsio.NewFault(fsio.OS)
	{
		_, upTS := newUpstream(t, map[string]core.CollectionConfig{relayCol: freqCfg()})
		runRelayCrashWorkload(t, fault, t.TempDir(), upTS.URL, batches)
		upTS.Close()
	}
	n := fault.Ops()
	for k := 0; k < n; k++ {
		fault.FailAt(k)
		upReg, upTS := newUpstream(t, map[string]core.CollectionConfig{relayCol: freqCfg()})
		upC, _ := upReg.Get(relayCol)
		dir := t.TempDir()
		acked := runRelayCrashWorkload(t, fault, dir, upTS.URL, batches)
		fault.Disarm()
		if len(acked) != len(batches) {
			t.Fatalf("transient fault at op %d: only %d/%d batches acknowledged despite retries", k, len(acked), len(batches))
		}
		verifyRelayCrashRecovery(t, dir, upTS.URL, upC, batches, acked, want)
		upTS.Close()
	}
}
