package cluster

// Relay tier end-to-end coverage, over real HTTP (httptest) but in one
// process: a fan-in of relays equals the single node exactly, deltas
// dedup on retry, the relay's /status and /healthz carry its flushing
// standing (including the broken-upstream latch), a stale phased flush
// strands the delta and realigns with the upstream, and the full hh
// protocol driven through a relay produces the single-node hits
// bit-identically.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/freqtask"
	"repro/internal/task/hhtask"
)

func freqCfg() core.CollectionConfig {
	return core.FreqCollectionConfig(core.MechanismGRR, core.PrivacyParams{Epsilon: 2, Domain: 8}, 2)
}

func hhCfg() core.CollectionConfig {
	return core.CollectionConfig{
		Config: task.Config{Task: task.TypeHH, Mechanism: hhtask.MechanismPEM, Epsilon: 2, Bits: 8, Levels: 4, K: 3},
		Shards: 1,
	}
}

// freqBatches privatizes a deterministic workload once, so every path
// (relayed, reference) aggregates byte-identical envelopes.
func freqBatches(t testing.TB, n, size int) [][]json.RawMessage {
	t.Helper()
	cfg := freqCfg()
	client, err := core.NewClient(cfg.Mechanism, cfg.Params(), ldprand.NewSplitMix64(11))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(12)
	batches := make([][]json.RawMessage, n)
	for i := range batches {
		envs := make([]json.RawMessage, size)
		for k := range envs {
			env, err := client.Report(ldprand.Intn(src, cfg.Domain))
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			envs[k] = raw
		}
		batches[i] = envs
	}
	return batches
}

// freqCounts reads the exact debiased estimates out of a collection.
func freqCounts(t testing.TB, c *core.Collection) []float64 {
	t.Helper()
	m, err := c.Aggregator().MergedCached()
	if err != nil {
		t.Fatal(err)
	}
	fa, ok := m.(*freqtask.Aggregator)
	if !ok {
		t.Fatalf("aggregator is %T, want *freqtask.Aggregator", m)
	}
	return fa.Oracle().EstimateCounts()
}

// newUpstream boots a memory-only aggregation node with the given
// collections.
func newUpstream(t testing.TB, cols map[string]core.CollectionConfig) (*core.CollectionRegistry, *httptest.Server) {
	t.Helper()
	reg := core.NewCollectionRegistry()
	for name, cfg := range cols {
		if _, err := reg.Create(name, cfg); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(core.NewMultiService(reg, nil).Handler())
	t.Cleanup(ts.Close)
	return reg, ts
}

// newTestRelay boots a memory-only relay (durable outbox in a temp
// dir) pointed at upstreamURL, mirrored and ready to serve.
func newTestRelay(t testing.TB, upstreamURL string) (*Relay, *core.CollectionRegistry, *httptest.Server) {
	t.Helper()
	reg := core.NewCollectionRegistry()
	svc := core.NewMultiService(reg, nil)
	out, err := NewOutbox(fsio.OS, filepath.Join(t.TempDir(), "outbox"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRelay(svc, nil, NewUpstream(upstreamURL), out)
	if err := r.SyncCollections(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)
	return r, reg, ts
}

// postBatch ships one JSON report batch and returns the HTTP status.
func postBatch(t testing.TB, url, id string, batch []json.RawMessage) int {
	t.Helper()
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set("Idempotency-Key", id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

func TestRelayFanInMatchesSingleNode(t *testing.T) {
	batches := freqBatches(t, 6, 5)

	// Reference: one node folds everything directly.
	refReg := core.NewCollectionRegistry()
	ref, err := refReg.Create("words", freqCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if _, err := ref.IngestBatch(fmt.Sprintf("b-%d", i), b); err != nil {
			t.Fatal(err)
		}
	}
	want := freqCounts(t, ref)

	upReg, upTS := newUpstream(t, map[string]core.CollectionConfig{"words": freqCfg()})

	const relays = 2
	var rs [relays]*Relay
	var regs [relays]*core.CollectionRegistry
	var urls [relays]string
	for i := range rs {
		r, reg, ts := newTestRelay(t, upTS.URL)
		rs[i], regs[i], urls[i] = r, reg, ts.URL
		c, ok := reg.Get("words")
		if !ok {
			t.Fatalf("relay %d did not mirror the upstream collection", i)
		}
		if q := c.Config().AdvanceQuota; q != 0 {
			t.Fatalf("relay %d mirrored AdvanceQuota %d, want 0 (the upstream owns round closure)", i, q)
		}
	}

	// Round-robin the batches across the relays, the client's dispatch.
	for i, b := range batches {
		if code := postBatch(t, urls[i%relays]+"/collections/words/report/batch", fmt.Sprintf("b-%d", i), b); code != http.StatusAccepted {
			t.Fatalf("batch %d -> relay %d: status %d", i, i%relays, code)
		}
	}
	for i, r := range rs {
		if err := r.Flush(context.Background()); err != nil {
			t.Fatalf("relay %d flush: %v", i, err)
		}
	}

	up, _ := upReg.Get("words")
	if got := up.Aggregator().Collected(); got != 6*5 {
		t.Fatalf("upstream collected %d reports, want %d", got, 6*5)
	}
	if got := freqCounts(t, up); !reflect.DeepEqual(got, want) {
		t.Fatalf("fan-in estimates = %v, want %v (single node)", got, want)
	}
	// Relays drained: everything cut and acknowledged.
	for i, r := range rs {
		c, _ := regs[i].Get("words")
		if n := c.Aggregator().Collected(); n != 0 {
			t.Fatalf("relay %d still holds %d reports after flush", i, n)
		}
		pending, stranded := r.out.Counts("words")
		if pending != 0 || stranded != 0 {
			t.Fatalf("relay %d outbox: %d pending, %d stranded after clean flush", i, pending, stranded)
		}
	}

	// A second flush with nothing pending ships nothing new upstream.
	if err := rs[0].Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := up.Aggregator().Collected(); got != 6*5 {
		t.Fatalf("empty flush changed the upstream count to %d", got)
	}
}

func TestRelayStatusAndHealthFields(t *testing.T) {
	batches := freqBatches(t, 2, 4)
	_, upTS := newUpstream(t, map[string]core.CollectionConfig{"words": freqCfg()})
	r, _, ts := newTestRelay(t, upTS.URL)

	getJSON := func(url string, v any) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		return resp.StatusCode
	}

	// Before any flush: pending reports are visible, no flush epoch yet.
	if code := postBatch(t, ts.URL+"/collections/words/report/batch", "s-0", batches[0]); code != http.StatusAccepted {
		t.Fatalf("batch status %d", code)
	}
	var st core.StatusResponse
	if code := getJSON(ts.URL+"/collections/words/status", &st); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if st.Relay == nil {
		t.Fatal("status carries no relay block on a relay-mode process")
	}
	if st.Relay.Upstream != upTS.URL {
		t.Fatalf("relay upstream = %q, want %q", st.Relay.Upstream, upTS.URL)
	}
	if st.Relay.PendingReports != len(batches[0]) || st.Relay.LastFlushUnix != 0 {
		t.Fatalf("pre-flush relay status %+v", st.Relay)
	}

	if err := r.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if getJSON(ts.URL+"/collections/words/status", &st); st.Relay.PendingReports != 0 || st.Relay.LastFlushUnix == 0 {
		t.Fatalf("post-flush relay status %+v", st.Relay)
	}

	var h core.HealthResponse
	if code := getJSON(ts.URL+"/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz %d %+v", code, h)
	}
	if h.Relay["words"] == nil || h.Relay["words"].UpstreamBroken {
		t.Fatalf("healthz relay block %+v", h.Relay)
	}

	// Kill the upstream: flushes fail, and after brokenAfter consecutive
	// failures the latch degrades /healthz — the relay is accepting
	// reports it cannot deliver.
	upTS.Close()
	if code := postBatch(t, ts.URL+"/collections/words/report/batch", "s-1", batches[1]); code != http.StatusAccepted {
		t.Fatalf("batch status %d with upstream down (local fold must still work)", code)
	}
	for i := 0; i < brokenAfter; i++ {
		if err := r.Flush(context.Background()); err == nil {
			t.Fatalf("flush %d succeeded against a dead upstream", i)
		}
	}
	if code := getJSON(ts.URL+"/healthz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz code %d with broken upstream, want 503", code)
	}
	inf := h.Relay["words"]
	if inf == nil || !inf.UpstreamBroken || inf.FlushFailures < brokenAfter || inf.PendingDeltas == 0 {
		t.Fatalf("broken-upstream relay block %+v", inf)
	}
}

// hhEnvelopes privatizes n users for one round, deterministically.
func hhEnvelopes(t testing.TB, seed uint64, round, n int) []json.RawMessage {
	t.Helper()
	client, err := hhtask.NewClient(2, 8, 4, ldprand.NewSplitMix64(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(seed + 1)
	envs := make([]json.RawMessage, n)
	for i := range envs {
		v := uint64(0xAB)
		if ldprand.Intn(src, 3) == 0 {
			v = uint64(ldprand.Intn(src, 256))
		}
		if envs[i], err = client.Report(v, round); err != nil {
			t.Fatal(err)
		}
	}
	return envs
}

// TestRelayStaleFlushStrandsAndRealigns is the wrong-round regression:
// the upstream closes a round while a relay still holds reports cut at
// it. The flush 409s, the delta is stranded (acknowledged reports are
// never dropped), the relay refetches the frontier and realigns, and
// the next round's reports flush cleanly.
func TestRelayStaleFlushStrandsAndRealigns(t *testing.T) {
	upReg, upTS := newUpstream(t, map[string]core.CollectionConfig{"top": hhCfg()})
	r, reg, ts := newTestRelay(t, upTS.URL)

	if code := postBatch(t, ts.URL+"/collections/top/report/batch", "hh-0", hhEnvelopes(t, 21, 0, 8)); code != http.StatusAccepted {
		t.Fatalf("round-0 batch status %d", code)
	}
	// Another relay (simulated: a direct advance) closes round 0 first.
	up, _ := upReg.Get("top")
	if err := up.AdvanceExpecting(0); err != nil {
		t.Fatal(err)
	}

	err := r.Flush(context.Background())
	if err == nil {
		t.Fatal("stale flush reported success")
	}
	pending, stranded := r.out.Counts("top")
	if stranded != 1 || pending != 0 {
		t.Fatalf("after stale flush: %d pending, %d stranded; want 0/1", pending, stranded)
	}
	c, _ := reg.Get("top")
	if got := c.Aggregator().Round(); got != 1 {
		t.Fatalf("relay realigned to round %d, want 1", got)
	}

	// The client refetches the frontier through the relay — already
	// aligned, served from upstream — and re-reports into round 1.
	var fr core.FrontierResponse
	resp, err := http.Get(ts.URL + "/collections/top/frontier")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fr.Round != 1 || fr.Phase != "collecting" {
		t.Fatalf("relayed frontier %+v, want round 1 collecting", fr)
	}
	if code := postBatch(t, ts.URL+"/collections/top/report/batch", "hh-1", hhEnvelopes(t, 23, 1, 8)); code != http.StatusAccepted {
		t.Fatalf("round-1 batch status %d", code)
	}
	if err := r.Flush(context.Background()); err != nil {
		t.Fatalf("re-flush after realign: %v", err)
	}
	if got := up.Aggregator().RoundReports(); got != 8 {
		t.Fatalf("upstream round-1 reports = %d, want 8", got)
	}
	// The stranded delta stays on disk for the operator and in /status.
	var st core.StatusResponse
	resp, err = http.Get(ts.URL + "/collections/top/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Relay == nil || st.Relay.StrandedDeltas != 1 {
		t.Fatalf("status relay block %+v, want 1 stranded delta", st.Relay)
	}
}

// TestRelayPhasedProtocolMatchesSingleNode drives the whole hh protocol
// through a relay — reports, per-round conditional advances, frontier
// refetches — and requires the final heavy hitters to be bit-identical
// to a single node folding the same envelopes (hh state is integer
// sums, so exactness is exact).
func TestRelayPhasedProtocolMatchesSingleNode(t *testing.T) {
	upReg, upTS := newUpstream(t, map[string]core.CollectionConfig{"top": hhCfg()})
	_, _, ts := newTestRelay(t, upTS.URL)

	refReg := core.NewCollectionRegistry()
	ref, err := refReg.Create("top", hhCfg())
	if err != nil {
		t.Fatal(err)
	}

	levels := 4
	for round := 0; round < levels; round++ {
		envs := hhEnvelopes(t, uint64(100+round*2), round, 60)
		if code := postBatch(t, ts.URL+"/collections/top/report/batch", fmt.Sprintf("r-%d", round), envs); code != http.StatusAccepted {
			t.Fatalf("round %d batch status %d", round, code)
		}
		if _, err := ref.IngestBatch(fmt.Sprintf("r-%d", round), envs); err != nil {
			t.Fatal(err)
		}
		// Conditional advance through the relay: force-flush, forward,
		// adopt.
		body := strings.NewReader(fmt.Sprintf(`{"round":%d}`, round))
		resp, err := http.Post(ts.URL+"/collections/top/advance", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d advance status %d", round, resp.StatusCode)
		}
		if err := ref.AdvanceExpecting(round); err != nil {
			t.Fatal(err)
		}
	}

	upFr, err := func() (json.RawMessage, error) {
		up, _ := upReg.Get("top")
		return up.Aggregator().Frontier()
	}()
	if err != nil {
		t.Fatal(err)
	}
	refFr, err := ref.Aggregator().Frontier()
	if err != nil {
		t.Fatal(err)
	}
	var got, want hhtask.Frontier
	if err := json.Unmarshal(upFr, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(refFr, &want); err != nil {
		t.Fatal(err)
	}
	if !got.Done || !want.Done {
		t.Fatalf("protocol not done: relayed %v, reference %v", got.Done, want.Done)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("relayed protocol frontier = %+v\nsingle-node reference = %+v", got, want)
	}
}
