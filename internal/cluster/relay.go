package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
)

// brokenAfter is the consecutive flush-cycle failure streak past which
// the relay latches "upstream broken" into /healthz — one flaky send
// stays quiet, a dead upstream does not.
const brokenAfter = 3

// DefaultFlushInterval is the relay flush cadence when the operator
// sets none.
const DefaultFlushInterval = 5 * time.Second

// Relay fronts a core.Service in relay mode: report traffic folds into
// the local sharded aggregator exactly as on a single node (same WAL,
// same dedup, same checkpoints), and a flusher periodically cuts the
// accumulated state into deltas it ships to the upstream aggregation
// node. Read routes that need the global view (/estimate, /frontier)
// proxy upstream; /status and /healthz stay local and carry the
// relay's flushing standing.
//
// Exactly-once, end to end: a report is acknowledged only after the
// local journal holds it; a cut is journaled (flush frame, fsynced)
// before the state leaves the aggregator; the cut delta is durable in
// the outbox before the cycle continues; and the upstream folds each
// delta's fixed idempotency key once. Every crash window in between
// replays to the same upstream state.
type Relay struct {
	svc   *core.Service
	store *core.Store // nil = memory-only (tests)
	up    *Upstream
	out   *Outbox

	// flushMu serializes flush cycles (the ticker, POST /flush, and
	// the pre-advance force flush); it is taken before any collection
	// WAL lock and held across the cut-and-send sequence so deltas
	// enter the outbox in cut order.
	flushMu sync.Mutex

	// relayMu guards the flush-standing counters below; it is a leaf —
	// nothing is acquired under it.
	relayMu  sync.Mutex
	flushed  map[string]time.Time
	mem      []core.Delta // deltas whose outbox write failed, retried next cycle
	failures int
	broken   bool
}

// NewRelay wires a relay around an existing service. It installs the
// service's relay status hook and, when a store is present, a
// checkpoint gate: a collection with a cut delta that is not yet
// durable in the outbox (its outbox write failed; the delta is held in
// memory and recoverable only from the journal's flush frame) must not
// checkpoint, or the truncation would erase that one recoverable copy.
// The caller separately installs the outbox flush sink on the Store
// BEFORE loading state (see FlushSink).
func NewRelay(svc *core.Service, store *core.Store, up *Upstream, out *Outbox) *Relay {
	r := &Relay{
		svc:     svc,
		store:   store,
		up:      up,
		out:     out,
		flushed: make(map[string]time.Time),
	}
	svc.SetRelayInfo(r.info)
	if store != nil {
		store.SetSaveGate(func(collection string) error {
			if n := r.unflushed(collection); n > 0 {
				return fmt.Errorf("cluster: %d cut delta(s) for %q await outbox persistence", n, collection)
			}
			return nil
		})
	}
	return r
}

// unflushed counts cut deltas for the collection still held only in
// memory (outbox write failed; the journal flush frame is their sole
// durable record).
func (r *Relay) unflushed(collection string) int {
	r.relayMu.Lock()
	defer r.relayMu.Unlock()
	n := 0
	for _, d := range r.mem {
		if d.Collection == collection {
			n++
		}
	}
	return n
}

// FlushSink returns the Store flush sink for an outbox: journal replay
// of a relay flush frame re-cuts the delta and re-persists it here
// under its original idempotency key (Put deduplicates against a file
// that already survived the crash).
func FlushSink(out *Outbox) core.FlushSink {
	return func(collection string, d core.Delta) error {
		return out.Put(d)
	}
}

// newDeltaID mints a fresh delta idempotency key.
func newDeltaID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cluster: reading random delta id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// info is the Service relay-status hook.
func (r *Relay) info(name string) *core.RelayInfo {
	c, ok := r.svc.Registry().Get(name)
	if !ok {
		return nil
	}
	pending, stranded := r.out.Counts(name)
	r.relayMu.Lock()
	last := r.flushed[name]
	failures, broken := r.failures, r.broken
	r.relayMu.Unlock()
	inf := &core.RelayInfo{
		Upstream:       r.up.Base(),
		PendingReports: c.Aggregator().Collected(),
		PendingDeltas:  pending,
		StrandedDeltas: stranded,
		FlushFailures:  failures,
		UpstreamBroken: broken,
	}
	if !last.IsZero() {
		inf.LastFlushUnix = last.Unix()
		inf.LastFlushAgeSeconds = time.Since(last).Seconds()
	}
	return inf
}

func (r *Relay) markFlushed(name string) {
	r.relayMu.Lock()
	r.flushed[name] = time.Now()
	r.failures = 0
	r.broken = false
	r.relayMu.Unlock()
}

func (r *Relay) recordFailure() {
	r.relayMu.Lock()
	r.failures++
	r.broken = r.failures >= brokenAfter
	r.relayMu.Unlock()
}

func (r *Relay) memAdd(d core.Delta) {
	r.relayMu.Lock()
	r.mem = append(r.mem, d)
	r.relayMu.Unlock()
}

func (r *Relay) memTake() []core.Delta {
	r.relayMu.Lock()
	mem := r.mem
	r.mem = nil
	r.relayMu.Unlock()
	return mem
}

// SyncCollections mirrors the upstream's collections locally: missing
// ones are created with the upstream's exact task configuration (so
// cut deltas pass the upstream's config check verbatim) and phased
// ones are aligned with the upstream frontier. AdvanceQuota is zeroed
// on the mirror — the upstream owns round closure; a relay must never
// advance on its own.
func (r *Relay) SyncCollections(ctx context.Context) error {
	cols, err := r.up.Collections(ctx)
	if err != nil {
		return err
	}
	reg := r.svc.Registry()
	var errs []error
	for _, st := range cols {
		cfg := st.Config
		cfg.AdvanceQuota = 0
		c, ok := reg.Get(st.Collection)
		if !ok {
			c, err = reg.Create(st.Collection, cfg)
			if err != nil {
				errs = append(errs, fmt.Errorf("mirror %q: %w", st.Collection, err))
				continue
			}
			if r.store != nil {
				// Journal before the first report, snapshot so the mirror
				// survives a restart — and roll the mirror back when either
				// fails: a relay collection accepting reports it cannot
				// make durable would break the exactly-once story, and the
				// next sync tick simply recreates it.
				if aerr := r.store.Attach(c); aerr != nil {
					reg.DeleteIfEmpty(c)
					errs = append(errs, fmt.Errorf("mirror %q: %w", st.Collection, aerr))
					continue
				}
				if serr := r.store.Save(reg, c); serr != nil {
					c.CloseJournal()
					if reg.DeleteIfEmpty(c) {
						if rerr := r.store.Remove(reg, st.Collection); rerr != nil {
							serr = errors.Join(serr, rerr)
						}
					}
					errs = append(errs, fmt.Errorf("mirror %q: %w", st.Collection, serr))
					continue
				}
			}
		}
		if c.Aggregator().Phased() {
			if perr := r.syncPhase(ctx, c); perr != nil {
				errs = append(errs, fmt.Errorf("align %q: %w", st.Collection, perr))
			}
		}
	}
	return errors.Join(errs...)
}

// syncPhase fetches the upstream frontier for c and realigns.
func (r *Relay) syncPhase(ctx context.Context, c *core.Collection) error {
	fr, err := r.up.Frontier(ctx, c.Name())
	if err != nil {
		return err
	}
	return r.alignPhase(c, fr)
}

// alignPhase brings a phased collection to the upstream's round. Any
// state accumulated at the old round is cut first — atomically with
// the adoption, so nothing accepted is silently dropped — and queued;
// if the upstream has truly moved on it will 409 the old-round delta
// and the sender strands it for the operator.
func (r *Relay) alignPhase(c *core.Collection, fr core.FrontierResponse) error {
	agg := c.Aggregator()
	if agg.Round() == fr.Round && agg.Done() == (fr.Phase == "done") {
		return nil
	}
	d, err := c.CutAndAdopt(newDeltaID(), fr.Frontier)
	if d != nil {
		if perr := r.out.Put(*d); perr != nil {
			r.memAdd(*d)
			log.Printf("cluster: outbox write for %q failed (delta held in memory, recoverable from the journal): %v", c.Name(), perr)
		}
	}
	return err
}

// Flush runs one full flush cycle: re-queue deltas whose outbox write
// failed, cut every collection with pending reports, then send the
// outbox in cut order. A transient upstream failure stops the sending
// (order is part of the contract) and counts toward the broken latch;
// permanent rejections strand the delta and continue. The error
// reports whatever went wrong; acknowledged data is never at risk —
// everything unsent stays in the outbox.
func (r *Relay) Flush(ctx context.Context) error {
	r.flushMu.Lock()
	defer r.flushMu.Unlock()
	var errs []error

	for _, d := range r.memTake() {
		if err := r.out.Put(d); err != nil {
			r.memAdd(d)
			errs = append(errs, err)
		}
	}

	for _, c := range r.svc.Registry().Collections() {
		if c.Aggregator().Collected() == 0 {
			continue
		}
		d, err := c.CutDelta(newDeltaID())
		if err != nil {
			errs = append(errs, fmt.Errorf("cut %q: %w", c.Name(), err))
			continue
		}
		if d == nil {
			continue
		}
		if err := r.out.Put(*d); err != nil {
			r.memAdd(*d)
			errs = append(errs, fmt.Errorf("outbox %q: %w", c.Name(), err))
		}
	}

	for _, e := range r.out.Pending() {
		_, blob, err := r.out.Load(e)
		if err != nil {
			if serr := r.out.Strand(e); serr != nil {
				errs = append(errs, serr)
			}
			errs = append(errs, fmt.Errorf("outbox entry %016x unreadable (stranded): %w", e.Seq, err))
			continue
		}
		_, err = r.up.Merge(ctx, e.Collection, blob, e.ID)
		switch {
		case err == nil:
			if rerr := r.out.Remove(e); rerr != nil {
				errs = append(errs, rerr)
			}
			r.markFlushed(e.Collection)
		case errors.Is(err, ErrUpstreamStale):
			// The upstream closed the delta's round while it waited.
			// Preserve the delta for the operator and realign the
			// collection so new reports land in the current round.
			if serr := r.out.Strand(e); serr != nil {
				errs = append(errs, serr)
			}
			errs = append(errs, fmt.Errorf("delta %s for %q stranded: %w", e.ID, e.Collection, err))
			if c, ok := r.svc.Registry().Get(e.Collection); ok && c.Aggregator().Phased() {
				if perr := r.syncPhase(ctx, c); perr != nil {
					errs = append(errs, perr)
				}
			}
		case errors.Is(err, ErrUpstreamRejected):
			if serr := r.out.Strand(e); serr != nil {
				errs = append(errs, serr)
			}
			errs = append(errs, fmt.Errorf("delta %s for %q stranded: %w", e.ID, e.Collection, err))
		default:
			r.recordFailure()
			errs = append(errs, err)
			return errors.Join(errs...)
		}
	}
	return errors.Join(errs...)
}

// Run is the relay's background loop: mirror the upstream's
// collections, then flush on every tick until ctx is cancelled. The
// shutdown sequence (drain the server, then call Flush once more with
// its own deadline) is the caller's — see cmd/ldpd.
func (r *Relay) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = DefaultFlushInterval
	}
	if err := r.SyncCollections(ctx); err != nil {
		log.Printf("cluster: mirroring upstream collections (will retry): %v", err)
	}
	if err := r.Flush(ctx); err != nil {
		log.Printf("cluster: initial flush: %v", err)
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := r.SyncCollections(ctx); err != nil {
				log.Printf("cluster: syncing upstream collections: %v", err)
			}
			if err := r.Flush(ctx); err != nil {
				log.Printf("cluster: flush: %v", err)
			}
		}
	}
}

// FlushResponse is the JSON body of POST /flush.
type FlushResponse struct {
	// Pending counts the deltas still queued after the flush (0 on a
	// fully drained cycle).
	Pending int `json:"pending"`
	// Stranded counts deltas set aside for the operator so far.
	Stranded int    `json:"stranded"`
	Error    string `json:"error,omitempty"`
}

// Handler wraps the service's routes with the relay overrides:
//
//	POST /flush                          force a flush cycle now
//	GET  .../estimate                    proxied upstream (global view)
//	GET  .../frontier                    proxied upstream + local realign
//	POST .../advance                     flush, forward, adopt
//	POST /collections                    forward upstream, mirror locally
//
// Everything else — /report, /report/batch, /status, /healthz, /merge
// (chained relays) — serves from the local node unchanged.
func (r *Relay) Handler() http.Handler {
	inner := r.svc.Handler()
	mux := http.NewServeMux()
	mux.Handle("/", inner)
	mux.HandleFunc("POST /flush", r.handleFlush)
	mux.HandleFunc("GET /estimate", r.proxyRead)
	mux.HandleFunc("GET /collections/{name}/estimate", r.proxyRead)
	mux.HandleFunc("GET /frontier", r.handleFrontier)
	mux.HandleFunc("GET /collections/{name}/frontier", r.handleFrontier)
	mux.HandleFunc("POST /advance", r.handleAdvance)
	mux.HandleFunc("POST /collections/{name}/advance", r.handleAdvance)
	mux.HandleFunc("POST /collections", r.handleCreate)
	return mux
}

func (r *Relay) collectionName(req *http.Request) string {
	name := req.PathValue("name")
	if name == "" {
		return core.DefaultCollection
	}
	return name
}

func (r *Relay) handleFlush(w http.ResponseWriter, req *http.Request) {
	err := r.Flush(req.Context())
	pending := 0
	stranded := 0
	for _, c := range r.svc.Registry().Collections() {
		p, s := r.out.Counts(c.Name())
		pending += p
		stranded += s
	}
	resp := FlushResponse{Pending: pending, Stranded: stranded}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		// The reports are safe (journal + outbox); the upstream is not
		// reachable or rejected something. 502 tells the driver the
		// flush did not fully land.
		status = http.StatusBadGateway
	}
	writeJSON(w, status, resp)
}

// proxyRead forwards a read-only request upstream verbatim and relays
// the answer: analysts can point at any node and see the global view.
func (r *Relay) proxyRead(w http.ResponseWriter, req *http.Request) {
	path := req.URL.Path
	if req.URL.RawQuery != "" {
		path += "?" + req.URL.RawQuery
	}
	status, body, err := r.up.Proxy(req.Context(), req.Method, path, "", nil)
	if err != nil {
		http.Error(w, fmt.Sprintf("upstream unreachable: %v", err), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// handleFrontier serves the upstream's frontier — the authoritative
// protocol position — and realigns the local mirror with it on the
// way through, so a client that just refetched after a 409 can
// immediately re-report to this relay.
func (r *Relay) handleFrontier(w http.ResponseWriter, req *http.Request) {
	name := r.collectionName(req)
	fr, err := r.up.Frontier(req.Context(), name)
	if err != nil {
		if errors.Is(err, ErrUpstreamRejected) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		http.Error(w, fmt.Sprintf("upstream unreachable: %v", err), http.StatusBadGateway)
		return
	}
	if c, ok := r.svc.Registry().Get(name); ok && c.Aggregator().Phased() {
		if aerr := r.alignPhase(c, fr); aerr != nil {
			log.Printf("cluster: realigning %q with upstream frontier: %v", name, aerr)
		}
	}
	writeJSON(w, http.StatusOK, fr)
}

// handleAdvance closes a round across the tier: force-flush this
// relay (so its reports are merged into the closing round), forward
// the conditional advance upstream, then adopt the new frontier
// locally. A stale round answers 409 exactly like a single node — the
// driver refetches the frontier (which realigns this relay) and
// retries.
func (r *Relay) handleAdvance(w http.ResponseWriter, req *http.Request) {
	name := r.collectionName(req)
	round := -1
	if req.ContentLength != 0 {
		var body struct {
			Round *int `json:"round"`
		}
		data, err := io.ReadAll(io.LimitReader(req.Body, 1<<16))
		if err != nil || json.Unmarshal(data, &body) != nil {
			http.Error(w, "bad advance request", http.StatusBadRequest)
			return
		}
		if body.Round != nil {
			round = *body.Round
		}
	}
	if err := r.Flush(req.Context()); err != nil {
		http.Error(w, fmt.Sprintf("pre-advance flush incomplete: %v", err), http.StatusServiceUnavailable)
		return
	}
	fr, err := r.up.Advance(req.Context(), name, round)
	if err != nil {
		if errors.Is(err, ErrUpstreamStale) {
			// Someone else closed the round first; realign and tell the
			// driver to refetch, like the single-node conditional
			// advance does.
			if c, ok := r.svc.Registry().Get(name); ok && c.Aggregator().Phased() {
				if perr := r.syncPhase(req.Context(), c); perr != nil {
					log.Printf("cluster: realigning %q after lost advance race: %v", name, perr)
				}
			}
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if errors.Is(err, ErrUpstreamRejected) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		http.Error(w, fmt.Sprintf("upstream unreachable: %v", err), http.StatusBadGateway)
		return
	}
	if c, ok := r.svc.Registry().Get(name); ok && c.Aggregator().Phased() {
		if aerr := r.alignPhase(c, fr); aerr != nil {
			log.Printf("cluster: adopting advanced frontier for %q: %v", name, aerr)
		}
	}
	writeJSON(w, http.StatusOK, fr)
}

// handleCreate forwards a collection creation upstream, mirrors it
// locally, and relays the upstream's answer.
func (r *Relay) handleCreate(w http.ResponseWriter, req *http.Request) {
	data, err := io.ReadAll(io.LimitReader(req.Body, 1<<16))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad collection config: %v", err), http.StatusBadRequest)
		return
	}
	status, body, err := r.up.Proxy(req.Context(), http.MethodPost, "/collections", "application/json", data)
	if err != nil {
		http.Error(w, fmt.Sprintf("upstream unreachable: %v", err), http.StatusBadGateway)
		return
	}
	if status == http.StatusCreated || status == http.StatusConflict {
		// Mirror now rather than waiting for the next sync tick, so the
		// creator can post reports to this relay immediately.
		if serr := r.SyncCollections(req.Context()); serr != nil {
			log.Printf("cluster: mirroring after collection create: %v", serr)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}
