// Package cluster is the relay ingest tier: the scale-out layer that
// lets N ldpd processes front one aggregation node. A relay accepts
// ordinary report traffic, folds it into its own sharded aggregator
// (absorbing the per-report cost where the clients are), and
// periodically cuts the accumulated state into a compact delta it
// ships upstream over POST /collections/{name}/merge — the "small
// mergeable summary beats raw reports" economics of the paper's
// deployments, applied between tiers instead of between users and
// server.
//
// Exactness is inherited, not approximated: every task state is an
// exactly-mergeable monoid, so (fold at relay, merge upstream) equals
// (fold upstream) bit for bit on integer-valued tasks, in any
// partitioning and order. Durability is inherited from the write-ahead
// journal: a delta is journaled as a flush frame before it leaves the
// aggregator, persisted in an on-disk outbox until the upstream
// acknowledges it, and retried under a fixed idempotency key so the
// upstream folds it exactly once no matter how many crashes or
// timeouts intervene.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
)

// ErrUpstreamStale marks an upstream 409: the relay's view of a phased
// collection's round is behind the upstream's. The caller refetches
// the frontier and realigns rather than retrying the same payload.
var ErrUpstreamStale = errors.New("cluster: upstream rejected a stale round")

// ErrUpstreamRejected marks a permanent upstream rejection (4xx other
// than 409): retrying the identical payload cannot succeed, so the
// caller strands it for the operator instead of looping.
var ErrUpstreamRejected = errors.New("cluster: upstream rejected the request")

// Upstream is the relay's HTTP client for its aggregation node. All
// methods are safe for concurrent use; retries and backoff are the
// caller's policy (the flusher owns pacing), not the client's.
type Upstream struct {
	base   string
	client *http.Client
}

// NewUpstream returns a client for the aggregation node at base
// (scheme://host:port, no trailing slash required).
func NewUpstream(base string) *Upstream {
	return &Upstream{
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

// Base returns the upstream base URL (for /status reporting).
func (u *Upstream) Base() string { return u.base }

// httpStatusError classifies a non-2xx upstream answer.
func httpStatusError(op string, status int, body []byte) error {
	msg := strings.TrimSpace(string(body))
	switch {
	case status == http.StatusConflict:
		return fmt.Errorf("%w: %s: %s", ErrUpstreamStale, op, msg)
	case status >= 400 && status < 500 && status != http.StatusRequestTimeout && status != http.StatusTooManyRequests:
		return fmt.Errorf("%w: %s: %d %s", ErrUpstreamRejected, op, status, msg)
	}
	// 5xx, 408, 429: transient — the caller retries with backoff.
	return fmt.Errorf("cluster: %s: upstream answered %d: %s", op, status, msg)
}

// do runs one request and decodes a 2xx JSON body into out (skipped
// when out is nil). Non-2xx bodies become classified errors.
func (u *Upstream) do(req *http.Request, out any) error {
	resp, err := u.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("cluster: %s %s: reading response: %w", req.Method, req.URL.Path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return httpStatusError(req.Method+" "+req.URL.Path, resp.StatusCode, body)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("cluster: %s %s: decoding response: %w", req.Method, req.URL.Path, err)
	}
	return nil
}

// Merge posts one encoded delta (the binary container) to the named
// collection under the given idempotency key.
func (u *Upstream) Merge(ctx context.Context, collection string, blob []byte, id string) (core.MergeResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		u.base+"/collections/"+collection+"/merge", bytes.NewReader(blob))
	if err != nil {
		return core.MergeResponse{}, err
	}
	req.Header.Set("Content-Type", core.ContentTypeBinary)
	if id != "" {
		req.Header.Set("Idempotency-Key", id)
	}
	var out core.MergeResponse
	if err := u.do(req, &out); err != nil {
		return core.MergeResponse{}, err
	}
	return out, nil
}

// Frontier fetches the named collection's protocol frontier.
func (u *Upstream) Frontier(ctx context.Context, collection string) (core.FrontierResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		u.base+"/collections/"+collection+"/frontier", nil)
	if err != nil {
		return core.FrontierResponse{}, err
	}
	var out core.FrontierResponse
	if err := u.do(req, &out); err != nil {
		return core.FrontierResponse{}, err
	}
	return out, nil
}

// Advance posts a conditional advance ("close round if it is still
// current") and returns the new frontier. A stale round surfaces as
// ErrUpstreamStale.
func (u *Upstream) Advance(ctx context.Context, collection string, round int) (core.FrontierResponse, error) {
	body, err := json.Marshal(struct {
		Round *int `json:"round"`
	}{Round: &round})
	if err != nil {
		return core.FrontierResponse{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		u.base+"/collections/"+collection+"/advance", bytes.NewReader(body))
	if err != nil {
		return core.FrontierResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var out core.FrontierResponse
	if err := u.do(req, &out); err != nil {
		return core.FrontierResponse{}, err
	}
	return out, nil
}

// Collections lists the upstream's collections (full configs included,
// so a relay can mirror them verbatim).
func (u *Upstream) Collections(ctx context.Context) ([]core.StatusResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.base+"/collections", nil)
	if err != nil {
		return nil, err
	}
	var out []core.StatusResponse
	if err := u.do(req, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// CreateCollection creates a collection upstream (the relay's
// POST /collections forwards here before mirroring locally). An
// already-existing collection is not an error — creation is
// idempotent across the tier.
func (u *Upstream) CreateCollection(ctx context.Context, name string, cfg core.CollectionConfig) error {
	body, err := json.Marshal(struct {
		Name string `json:"name"`
		core.CollectionConfig
	}{Name: name, CollectionConfig: cfg})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.base+"/collections", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	err = u.do(req, nil)
	if errors.Is(err, ErrUpstreamStale) {
		// POST /collections answers 409 for "name already exists" —
		// exactly the idempotent outcome we want.
		return nil
	}
	return err
}

// Proxy forwards one request (method, path+query, body) upstream and
// returns the raw status and body — the passthrough the relay's read
// routes (/estimate, /frontier) use so analysts can query any node.
func (u *Upstream) Proxy(ctx context.Context, method, pathAndQuery string, contentType string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u.base+pathAndQuery, rd)
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := u.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

// IsTransient reports whether an upstream error is worth retrying with
// the same payload: network failures and 5xx-class answers are; stale
// rounds and permanent rejections are not.
func IsTransient(err error) bool {
	return err != nil && !errors.Is(err, ErrUpstreamStale) && !errors.Is(err, ErrUpstreamRejected)
}
