// Package marginal implements locally private release of k-way
// marginals of d-dimensional binary data (§1.3, Cormode–Kulkarni–
// Srivastava): instead of materializing the full 2^d contingency table,
// each user reports one randomly chosen low-order Fourier (Hadamard)
// coefficient of their record's indicator vector; any k-way marginal is
// then reconstructed from the coefficients of its attribute subsets.
//
// Two baselines are included for the E9 comparison: full-domain
// collection (a frequency oracle over all 2^d cells) and direct
// per-marginal collection (the user population split across marginal
// tables).
package marginal

import (
	"fmt"
	"math"

	"repro/internal/freq"
	"repro/internal/ldprand"
	"repro/internal/transform"
)

// FourierParams configures Fourier-basis marginal collection.
type FourierParams struct {
	Epsilon float64
	D       int // number of binary attributes, 1..20
	K       int // maximum marginal order to support, 1..D
}

// Validate checks parameter ranges.
func (p FourierParams) Validate() error {
	switch {
	case p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0):
		return fmt.Errorf("marginal: epsilon must be positive and finite")
	case p.D < 1 || p.D > 20:
		return fmt.Errorf("marginal: D must be in [1,20], got %d", p.D)
	case p.K < 1 || p.K > p.D:
		return fmt.Errorf("marginal: K must be in [1,D], got %d", p.K)
	}
	return nil
}

// Fourier collects records and estimates Fourier coefficients of the
// data distribution for all attribute masks of weight at most K.
type Fourier struct {
	params FourierParams
	masks  []int // the coefficient set, weight <= K
	p      float64
	src    ldprand.Source
	sums   []float64 // per-mask sum of debiased ±1 reports
	picks  []int     // per-mask report counts
	n      int
}

// FourierReport is one client report: the mask index (into the public
// mask list) and the perturbed coefficient sign.
type FourierReport struct {
	MaskIndex int
	Sign      int8
}

// NewFourier returns a Fourier marginal collector.
func NewFourier(params FourierParams, src ldprand.Source) (*Fourier, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	masks := transform.MasksOfWeightAtMost(params.D, params.K)
	return &Fourier{
		params: params,
		masks:  masks,
		p:      math.Exp(params.Epsilon) / (math.Exp(params.Epsilon) + 1),
		src:    src,
		sums:   make([]float64, len(masks)),
		picks:  make([]int, len(masks)),
	}, nil
}

// Masks returns the public coefficient mask list.
func (f *Fourier) Masks() []int { return f.masks }

// Privatize reports one record (a d-bit integer): a random mask is
// chosen and its coefficient sign (−1)^{|mask∩record|} randomized.
func (f *Fourier) Privatize(record int) FourierReport {
	f.checkRecord(record)
	idx := ldprand.Intn(f.src, len(f.masks))
	sign := int8(1)
	if transform.Coefficient(f.masks[idx], record) < 0 {
		sign = -1
	}
	if !ldprand.Bernoulli(f.src, f.p) {
		sign = -sign
	}
	return FourierReport{MaskIndex: idx, Sign: sign}
}

// Aggregate folds one report in.
func (f *Fourier) Aggregate(r FourierReport) {
	if r.MaskIndex < 0 || r.MaskIndex >= len(f.masks) {
		panic(fmt.Sprintf("marginal: mask index %d out of range", r.MaskIndex))
	}
	if r.Sign != 1 && r.Sign != -1 {
		panic("marginal: sign must be ±1")
	}
	f.sums[r.MaskIndex] += float64(r.Sign) / (2*f.p - 1)
	f.picks[r.MaskIndex]++
	f.n++
}

// Collect privatizes and aggregates in one step.
func (f *Fourier) Collect(record int) { f.Aggregate(f.Privatize(record)) }

// Collected returns the number of reports aggregated.
func (f *Fourier) Collected() int { return f.n }

// Coefficients returns the estimated Fourier coefficients
// f̂(mask) = E[(−1)^{|mask∩x|}] for every mask in Masks(), i.e. the
// expectation under the data distribution (so f̂(0) = 1).
func (f *Fourier) Coefficients() map[int]float64 {
	out := make(map[int]float64, len(f.masks))
	for i, mask := range f.masks {
		if f.picks[i] == 0 {
			out[mask] = 0
			continue
		}
		out[mask] = f.sums[i] / float64(f.picks[i])
	}
	if _, ok := out[0]; ok {
		out[0] = 1 // the empty coefficient is exactly 1 by definition
	}
	return out
}

// Marginal reconstructs the marginal table of the attribute set given
// by mask (weight must be <= K): a table of probabilities indexed by
// the 2^|mask| assignments of those attributes, in the order produced
// by enumerating assignment bits along the mask's set bits (lowest
// attribute = bit 0 of the assignment index).
func (f *Fourier) Marginal(mask int) ([]float64, error) {
	if popcount(mask) > f.params.K {
		return nil, fmt.Errorf("marginal: mask weight %d exceeds K=%d", popcount(mask), f.params.K)
	}
	if mask < 0 || mask >= 1<<uint(f.params.D) {
		return nil, fmt.Errorf("marginal: mask %d out of range", mask)
	}
	coefs := f.Coefficients()
	return reconstructMarginal(mask, coefs), nil
}

// reconstructMarginal computes P[assignment t of the attributes in
// mask] = 2^{-|mask|} Σ_{S ⊆ mask} f̂(S)·(−1)^{|S ∩ t|}, where t is
// expanded onto the mask's attribute positions.
func reconstructMarginal(mask int, coefs map[int]float64) []float64 {
	attrs := bitsOf(mask)
	k := len(attrs)
	size := 1 << uint(k)
	table := make([]float64, size)
	subs := transform.SubmasksOf(mask)
	for t := 0; t < size; t++ {
		// Expand assignment t onto the attribute positions.
		full := 0
		for bi, attr := range attrs {
			if t&(1<<uint(bi)) != 0 {
				full |= 1 << uint(attr)
			}
		}
		var sum float64
		for _, s := range subs {
			sum += coefs[s] * transform.Coefficient(s, full)
		}
		table[t] = sum / float64(size)
	}
	return table
}

func (f *Fourier) checkRecord(record int) {
	if record < 0 || record >= 1<<uint(f.params.D) {
		panic(fmt.Sprintf("marginal: record %d outside %d-attribute domain", record, f.params.D))
	}
}

// TrueMarginal computes the exact marginal table of mask over raw
// records, for ground truth in experiments.
func TrueMarginal(mask, d int, records []int) []float64 {
	attrs := bitsOf(mask)
	size := 1 << uint(len(attrs))
	table := make([]float64, size)
	if len(records) == 0 {
		return table
	}
	for _, rec := range records {
		t := 0
		for bi, attr := range attrs {
			if rec&(1<<uint(attr)) != 0 {
				t |= 1 << uint(bi)
			}
		}
		table[t]++
	}
	for i := range table {
		table[i] /= float64(len(records))
	}
	return table
}

// FullMaterialization is the first baseline: collect the whole 2^d
// histogram with a frequency oracle, then project marginals from it.
type FullMaterialization struct {
	d      int
	oracle freq.Oracle
}

// NewFullMaterialization builds the baseline (d <= 16 keeps the 2^d
// domain tractable).
func NewFullMaterialization(epsilon float64, d int, src ldprand.Source) (*FullMaterialization, error) {
	if d < 1 || d > 16 {
		return nil, fmt.Errorf("marginal: full materialization requires D in [1,16], got %d", d)
	}
	return &FullMaterialization{d: d, oracle: freq.NewOLH(epsilon, 1<<uint(d), src)}, nil
}

// Collect reports one record.
func (fm *FullMaterialization) Collect(record int) { fm.oracle.Collect(record) }

// Collected returns the report count.
func (fm *FullMaterialization) Collected() int { return fm.oracle.Collected() }

// Marginal projects the marginal of mask from the estimated full
// histogram.
func (fm *FullMaterialization) Marginal(mask int) []float64 {
	counts := fm.oracle.EstimateCounts()
	attrs := bitsOf(mask)
	size := 1 << uint(len(attrs))
	table := make([]float64, size)
	var total float64
	for rec, c := range counts {
		t := 0
		for bi, attr := range attrs {
			if rec&(1<<uint(attr)) != 0 {
				t |= 1 << uint(bi)
			}
		}
		table[t] += c
		total += c
	}
	if total > 0 {
		for i := range table {
			table[i] /= total
		}
	}
	return table
}

// Direct is the second baseline: the population is split evenly across
// the target marginal tables, each group reporting its projected
// record through GRR over the 2^k assignments.
type Direct struct {
	d       int
	masks   []int
	oracles []freq.Oracle
	src     ldprand.Source
	next    int
}

// NewDirect builds the baseline for an explicit set of marginal masks.
func NewDirect(epsilon float64, d int, masks []int, src ldprand.Source) (*Direct, error) {
	if len(masks) == 0 {
		return nil, fmt.Errorf("marginal: Direct needs at least one mask")
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	oracles := make([]freq.Oracle, len(masks))
	for i, m := range masks {
		k := popcount(m)
		if k < 1 {
			return nil, fmt.Errorf("marginal: Direct mask %d is empty", m)
		}
		oracles[i] = freq.NewGRR(epsilon, 1<<uint(k), src)
	}
	return &Direct{d: d, masks: masks, oracles: oracles, src: src}, nil
}

// Collect assigns the user to the next marginal group round-robin and
// reports the record's projection.
func (dr *Direct) Collect(record int) {
	i := dr.next % len(dr.masks)
	dr.next++
	attrs := bitsOf(dr.masks[i])
	t := 0
	for bi, attr := range attrs {
		if record&(1<<uint(attr)) != 0 {
			t |= 1 << uint(bi)
		}
	}
	dr.oracles[i].Collect(t)
}

// Marginal returns the estimated table of the i-th configured mask,
// normalized to probabilities.
func (dr *Direct) Marginal(i int) []float64 {
	counts := dr.oracles[i].EstimateCounts()
	var total float64
	for _, c := range counts {
		if c > 0 {
			total += c
		}
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for j, c := range counts {
		if c > 0 {
			out[j] = c / total
		}
	}
	return out
}

// Masks returns the configured mask list.
func (dr *Direct) Masks() []int { return dr.masks }

func bitsOf(mask int) []int {
	var out []int
	for b := 0; mask != 0; b++ {
		if mask&1 != 0 {
			out = append(out, b)
		}
		mask >>= 1
	}
	return out
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
