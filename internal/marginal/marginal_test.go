package marginal

import (
	"math"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestFourierParamsValidate(t *testing.T) {
	good := FourierParams{Epsilon: 1, D: 6, K: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []FourierParams{
		{Epsilon: 0, D: 6, K: 2},
		{Epsilon: 1, D: 0, K: 1},
		{Epsilon: 1, D: 21, K: 1},
		{Epsilon: 1, D: 6, K: 0},
		{Epsilon: 1, D: 6, K: 7},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFourierCoefficientsAccurate(t *testing.T) {
	// Independent attributes with known marginals: f̂({j}) = 1 − 2p_j.
	probs := []float64{0.2, 0.5, 0.8, 0.35}
	src := ldprand.NewSplitMix64(1)
	records := workload.BinaryRecords(src, probs, 80000)
	f, err := NewFourier(FourierParams{Epsilon: 2, D: 4, K: 2}, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		f.Collect(r)
	}
	coefs := f.Coefficients()
	if coefs[0] != 1 {
		t.Errorf("empty coefficient %v want exactly 1", coefs[0])
	}
	for j, p := range probs {
		mask := 1 << uint(j)
		want := 1 - 2*p
		if math.Abs(coefs[mask]-want) > 0.05 {
			t.Errorf("coef mask %b: %.3f want %.3f", mask, coefs[mask], want)
		}
	}
}

func TestFourierMarginalReconstruction(t *testing.T) {
	probs := []float64{0.3, 0.7, 0.5, 0.4, 0.6}
	src := ldprand.NewSplitMix64(2)
	records := workload.BinaryRecords(src, probs, 120000)
	f, _ := NewFourier(FourierParams{Epsilon: 3, D: 5, K: 2}, src)
	for _, r := range records {
		f.Collect(r)
	}
	// Check every 2-way marginal against the truth.
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			mask := 1<<uint(a) | 1<<uint(b)
			got, err := f.Marginal(mask)
			if err != nil {
				t.Fatal(err)
			}
			truth := TrueMarginal(mask, 5, records)
			tv := stats.TotalVariation(got, truth)
			if tv > 0.08 {
				t.Errorf("marginal %b: TV %.4f too large (got %v truth %v)", mask, tv, got, truth)
			}
		}
	}
}

func TestMarginalTableIsDistribution(t *testing.T) {
	src := ldprand.NewSplitMix64(3)
	records := workload.CorrelatedBinaryRecords(src, 6, 0.5, 0.8, 50000)
	f, _ := NewFourier(FourierParams{Epsilon: 2, D: 6, K: 3}, src)
	for _, r := range records {
		f.Collect(r)
	}
	table, err := f.Marginal(0b111)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range table {
		sum += v
	}
	// Sums to 1 exactly (the empty coefficient is pinned to 1).
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("marginal sums to %v", sum)
	}
}

func TestMarginalRejectsTooWideMask(t *testing.T) {
	f, _ := NewFourier(FourierParams{Epsilon: 1, D: 5, K: 2}, ldprand.NewSplitMix64(4))
	if _, err := f.Marginal(0b111); err == nil {
		t.Fatal("3-way marginal accepted with K=2")
	}
	if _, err := f.Marginal(1 << 10); err == nil {
		t.Fatal("out-of-domain mask accepted")
	}
}

func TestFourierValidatesReports(t *testing.T) {
	f, _ := NewFourier(FourierParams{Epsilon: 1, D: 3, K: 1}, ldprand.NewSplitMix64(5))
	for _, fn := range []func(){
		func() { f.Aggregate(FourierReport{MaskIndex: 99, Sign: 1}) },
		func() { f.Aggregate(FourierReport{MaskIndex: 0, Sign: 2}) },
		func() { f.Collect(8) },
		func() { f.Collect(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTrueMarginalKnownCase(t *testing.T) {
	// Records over 2 attributes: 00, 01, 01, 11.
	records := []int{0b00, 0b01, 0b01, 0b11}
	table := TrueMarginal(0b11, 2, records)
	want := []float64{0.25, 0.5, 0, 0.25}
	for i := range want {
		if math.Abs(table[i]-want[i]) > 1e-12 {
			t.Fatalf("table %v want %v", table, want)
		}
	}
	// Single-attribute marginal of attribute 1.
	t1 := TrueMarginal(0b10, 2, records)
	if math.Abs(t1[0]-0.75) > 1e-12 || math.Abs(t1[1]-0.25) > 1e-12 {
		t.Fatalf("attr-1 marginal %v", t1)
	}
}

func TestFullMaterializationMarginal(t *testing.T) {
	src := ldprand.NewSplitMix64(6)
	probs := []float64{0.3, 0.6, 0.5}
	records := workload.BinaryRecords(src, probs, 60000)
	fm, err := NewFullMaterialization(2, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		fm.Collect(r)
	}
	got := fm.Marginal(0b011)
	truth := TrueMarginal(0b011, 3, records)
	if tv := stats.TotalVariation(got, truth); tv > 0.1 {
		t.Errorf("full materialization TV %.4f", tv)
	}
	if _, err := NewFullMaterialization(1, 17, nil); err == nil {
		t.Error("d=17 accepted for full materialization")
	}
}

func TestDirectMarginal(t *testing.T) {
	src := ldprand.NewSplitMix64(7)
	probs := []float64{0.3, 0.6, 0.5, 0.2}
	records := workload.BinaryRecords(src, probs, 80000)
	masks := []int{0b0011, 0b1100}
	dr, err := NewDirect(2, 4, masks, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		dr.Collect(r)
	}
	for i, mask := range dr.Masks() {
		got := dr.Marginal(i)
		truth := TrueMarginal(mask, 4, records)
		if tv := stats.TotalVariation(got, truth); tv > 0.1 {
			t.Errorf("direct marginal %b: TV %.4f", mask, tv)
		}
	}
	if _, err := NewDirect(1, 4, nil, nil); err == nil {
		t.Error("empty mask list accepted")
	}
	if _, err := NewDirect(1, 4, []int{0}, nil); err == nil {
		t.Error("empty mask accepted")
	}
}

func TestFourierBeatsFullMaterializationLowOrder(t *testing.T) {
	// The E9 claim: for low-order marginals over many attributes, the
	// Fourier approach needs far fewer effective samples than a 2^d
	// histogram. With d=10 and modest n, Fourier should have lower TV
	// on 2-way marginals.
	const d, n = 10, 40000
	src := ldprand.NewSplitMix64(8)
	probs := make([]float64, d)
	for i := range probs {
		probs[i] = 0.3 + 0.04*float64(i)
	}
	records := workload.BinaryRecords(src, probs, n)

	fourier, _ := NewFourier(FourierParams{Epsilon: 1, D: d, K: 2}, src)
	full, _ := NewFullMaterialization(1, d, src)
	for _, r := range records {
		fourier.Collect(r)
		full.Collect(r)
	}
	mask := 0b11
	truth := TrueMarginal(mask, d, records)
	fTable, _ := fourier.Marginal(mask)
	tvFourier := stats.TotalVariation(fTable, truth)
	tvFull := stats.TotalVariation(full.Marginal(mask), truth)
	if tvFourier > tvFull {
		t.Errorf("Fourier TV %.4f should beat full materialization TV %.4f at d=%d n=%d",
			tvFourier, tvFull, d, n)
	}
}
