// Package bitvec implements packed bit vectors.
//
// Bit vectors are the wire format of the unary-encoding mechanisms
// (SUE/OUE), of Bloom-filter reports in RAPPOR, and of the d-bit histogram
// reports in Microsoft-style telemetry, so the representation is kept
// compact (one bit per position) and the operations allocation-light.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length packed bit vector. The zero value is an empty
// vector of length 0; use New for a sized vector.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of n bits. It panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBools builds a vector whose i-th bit is set iff b[i] is true.
func FromBools(b []bool) *Vector {
	v := New(len(b))
	for i, set := range b {
		if set {
			v.Set(i)
		}
	}
	return v
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.bound(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.bound(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Flip inverts bit i.
func (v *Vector) Flip(i int) {
	v.bound(i)
	v.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// SetTo sets bit i to the given value.
func (v *Vector) SetTo(i int, value bool) {
	if value {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.bound(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	c := &Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(c.words, v.words)
	return c
}

// Or sets v to the bitwise OR of v and other. Lengths must match.
func (v *Vector) Or(other *Vector) {
	v.match(other)
	for i := range v.words {
		v.words[i] |= other.words[i]
	}
}

// And sets v to the bitwise AND of v and other. Lengths must match.
func (v *Vector) And(other *Vector) {
	v.match(other)
	for i := range v.words {
		v.words[i] &= other.words[i]
	}
}

// Xor sets v to the bitwise XOR of v and other. Lengths must match.
func (v *Vector) Xor(other *Vector) {
	v.match(other)
	for i := range v.words {
		v.words[i] ^= other.words[i]
	}
}

// Equal reports whether v and other have the same length and bits.
func (v *Vector) Equal(other *Vector) bool {
	if v.n != other.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Ones returns the indices of all set bits in increasing order.
func (v *Vector) Ones() []int {
	out := make([]int, 0, v.Count())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// String renders the vector as a 0/1 string, bit 0 first.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// MarshalBinary encodes the vector as 4 length bytes followed by packed
// little-endian words, for transport in reports.
func (v *Vector) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4+8*len(v.words))
	out[0] = byte(v.n)
	out[1] = byte(v.n >> 8)
	out[2] = byte(v.n >> 16)
	out[3] = byte(v.n >> 24)
	for i, w := range v.words {
		for b := 0; b < 8; b++ {
			out[4+8*i+b] = byte(w >> (8 * uint(b)))
		}
	}
	return out, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary.
func (v *Vector) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("bitvec: short buffer (%d bytes)", len(data))
	}
	n := int(data[0]) | int(data[1])<<8 | int(data[2])<<16 | int(data[3])<<24
	if n < 0 {
		return fmt.Errorf("bitvec: invalid length %d", n)
	}
	nw := (n + wordBits - 1) / wordBits
	if len(data) != 4+8*nw {
		return fmt.Errorf("bitvec: length %d needs %d bytes, have %d", n, 4+8*nw, len(data))
	}
	words := make([]uint64, nw)
	for i := range words {
		var w uint64
		for b := 0; b < 8; b++ {
			w |= uint64(data[4+8*i+b]) << (8 * uint(b))
		}
		words[i] = w
	}
	// Reject set bits beyond n: they would silently corrupt Count.
	if rem := n % wordBits; rem != 0 && nw > 0 {
		if words[nw-1]>>uint(rem) != 0 {
			return fmt.Errorf("bitvec: set bits beyond length %d", n)
		}
	}
	v.n = n
	v.words = words
	return nil
}

func (v *Vector) bound(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

func (v *Vector) match(other *Vector) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, other.n))
	}
}
