package bitvec

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	v := New(130) // crosses word boundaries
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("fresh vector has bit %d set", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestFlip(t *testing.T) {
	v := New(10)
	v.Flip(3)
	if !v.Get(3) {
		t.Fatal("flip 0->1 failed")
	}
	v.Flip(3)
	if v.Get(3) {
		t.Fatal("flip 1->0 failed")
	}
}

func TestSetTo(t *testing.T) {
	v := New(4)
	v.SetTo(2, true)
	v.SetTo(2, false)
	if v.Get(2) {
		t.Fatal("SetTo(false) left bit set")
	}
	v.SetTo(1, true)
	if !v.Get(1) {
		t.Fatal("SetTo(true) did not set bit")
	}
}

func TestCount(t *testing.T) {
	v := New(200)
	want := 0
	for i := 0; i < 200; i += 3 {
		v.Set(i)
		want++
	}
	if got := v.Count(); got != want {
		t.Fatalf("Count=%d want %d", got, want)
	}
}

func TestOnes(t *testing.T) {
	v := New(140)
	idx := []int{0, 5, 63, 64, 100, 139}
	for _, i := range idx {
		v.Set(i)
	}
	got := v.Ones()
	if len(got) != len(idx) {
		t.Fatalf("Ones=%v want %v", got, idx)
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("Ones=%v want %v", got, idx)
		}
	}
}

func TestFromBools(t *testing.T) {
	v := FromBools([]bool{true, false, true, true})
	if v.Len() != 4 || !v.Get(0) || v.Get(1) || !v.Get(2) || !v.Get(3) {
		t.Fatalf("FromBools wrong: %v", v.String())
	}
}

func TestLogicalOps(t *testing.T) {
	a := FromBools([]bool{true, true, false, false})
	b := FromBools([]bool{true, false, true, false})

	or := a.Clone()
	or.Or(b)
	if or.String() != "1110" {
		t.Errorf("Or=%s want 1110", or.String())
	}
	and := a.Clone()
	and.And(b)
	if and.String() != "1000" {
		t.Errorf("And=%s want 1000", and.String())
	}
	xor := a.Clone()
	xor.Xor(b)
	if xor.String() != "0110" {
		t.Errorf("Xor=%s want 0110", xor.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(8)
	a.Set(1)
	b := a.Clone()
	b.Set(2)
	if a.Get(2) {
		t.Fatal("clone shares storage with original")
	}
	if !b.Get(1) {
		t.Fatal("clone lost original bits")
	}
}

func TestEqual(t *testing.T) {
	a := FromBools([]bool{true, false, true})
	b := FromBools([]bool{true, false, true})
	c := FromBools([]bool{true, true, true})
	d := New(4)
	if !a.Equal(b) {
		t.Error("equal vectors reported unequal")
	}
	if a.Equal(c) {
		t.Error("different bits reported equal")
	}
	if a.Equal(d) {
		t.Error("different lengths reported equal")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		v := New(n)
		for i := 0; i < n; i += 7 {
			v.Set(i)
		}
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal n=%d: %v", n, err)
		}
		var back Vector
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal n=%d: %v", n, err)
		}
		if !v.Equal(&back) {
			t.Fatalf("round trip mismatch at n=%d", n)
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	if err := new(Vector).UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Error("short buffer accepted")
	}
	v := New(10)
	data, _ := v.MarshalBinary()
	data = append(data, 0) // wrong length
	if err := new(Vector).UnmarshalBinary(data); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Set a bit beyond the declared length.
	v2 := New(10)
	good, _ := v2.MarshalBinary()
	good[4+1] = 0x80 // bit 15 > length 10
	if err := new(Vector).UnmarshalBinary(good); err == nil {
		t.Error("out-of-range set bit accepted")
	}
}

func TestMarshalPropertyRoundTrip(t *testing.T) {
	f := func(bools []bool) bool {
		v := FromBools(bools)
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var back Vector
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return v.Equal(&back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorInvolutionProperty(t *testing.T) {
	f := func(a, b []bool) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		va := FromBools(a[:n])
		vb := FromBools(b[:n])
		orig := va.Clone()
		va.Xor(vb)
		va.Xor(vb)
		return va.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountMatchesOnesProperty(t *testing.T) {
	f := func(bools []bool) bool {
		v := FromBools(bools)
		return v.Count() == len(v.Ones())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(4)
	for _, fn := range []func(){
		func() { v.Get(4) },
		func() { v.Set(-1) },
		func() { v.Clear(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	New(3).Or(New(4))
}
