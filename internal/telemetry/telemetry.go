// Package telemetry implements Microsoft's repeated-collection system
// (Ding, Kulkarni, Yekhanin, NeurIPS 2017), the third deployment the
// tutorial covers (§1.2(3)): one-bit mean estimation for numeric
// counters, one-bit histogram collection, and α-point rounding with
// memoized responses so that collecting every day does not erode the
// privacy guarantee — the "fixed random numbers" idea.
package telemetry

import (
	"fmt"
	"math"

	"repro/internal/ldprand"
)

// MeanParams configures one-bit mean collection of values in [0, Max].
type MeanParams struct {
	Epsilon float64
	Max     float64 // values are clamped to [0, Max]
}

// Validate checks parameter ranges.
func (p MeanParams) Validate() error {
	if p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0) {
		return fmt.Errorf("telemetry: epsilon must be positive and finite, got %v", p.Epsilon)
	}
	if p.Max <= 0 {
		return fmt.Errorf("telemetry: Max must be positive, got %v", p.Max)
	}
	return nil
}

// OneBit reports a single bit per user such that the population mean is
// recoverable: the bit is 1 with probability
// 1/(e^ε+1) + (x/Max)·(e^ε−1)/(e^ε+1).
func OneBit(p MeanParams, x float64, src ldprand.Source) int {
	if src == nil {
		src = ldprand.NewCrypto()
	}
	x = clamp(x, 0, p.Max)
	e := math.Exp(p.Epsilon)
	prob := 1/(e+1) + (x/p.Max)*(e-1)/(e+1)
	if ldprand.Bernoulli(src, prob) {
		return 1
	}
	return 0
}

// MeanFromBits inverts the one-bit mechanism: given the sum of reported
// bits over n users, it returns the unbiased mean estimate
// Max·(sum·(e^ε+1) − n)/(n·(e^ε−1)).
func MeanFromBits(p MeanParams, bitSum, n int) float64 {
	if n == 0 {
		return 0
	}
	e := math.Exp(p.Epsilon)
	return p.Max * (float64(bitSum)*(e+1) - float64(n)) / (float64(n) * (e - 1))
}

// MeanVariance returns the variance of the mean estimate for n users in
// the worst case (x = Max/2): Max²·(e^ε+1)²/(4n·(e^ε−1)²) at most.
func MeanVariance(p MeanParams, n int) float64 {
	if n == 0 {
		return math.Inf(1)
	}
	e := math.Exp(p.Epsilon)
	r := (e + 1) / (e - 1)
	return p.Max * p.Max * r * r / (4 * float64(n))
}

// MeanCollector aggregates one-bit mean reports.
type MeanCollector struct {
	params MeanParams
	bitSum int
	n      int
}

// NewMeanCollector returns an aggregator for the given parameters.
func NewMeanCollector(params MeanParams) (*MeanCollector, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &MeanCollector{params: params}, nil
}

// Add folds one reported bit in. Bits outside {0, 1} are rejected.
func (m *MeanCollector) Add(bit int) error {
	if bit != 0 && bit != 1 {
		return fmt.Errorf("telemetry: bit must be 0 or 1, got %d", bit)
	}
	m.bitSum += bit
	m.n++
	return nil
}

// Estimate returns the current mean estimate.
func (m *MeanCollector) Estimate() float64 {
	return MeanFromBits(m.params, m.bitSum, m.n)
}

// Collected returns the number of reports.
func (m *MeanCollector) Collected() int { return m.n }

// Client is a memoizing telemetry reporter implementing α-point
// rounding: the user's secret fixes a rounding threshold α·Max and two
// memoized one-bit responses (one for "rounded to 0", one for "rounded
// to Max"). Every report reuses those fixed bits, so an observer of T
// rounds learns no more than from a single round unless the user's
// value crosses the threshold — the exact behaviour E7 demonstrates.
type Client struct {
	params  MeanParams
	alpha   float64 // rounding threshold in [0,1)
	bitLow  int     // memoized response for rounded value 0
	bitHigh int     // memoized response for rounded value Max
}

// NewClient derives a memoizing client from a per-user secret. The
// metric name domain-separates secrets so one user can report several
// counters independently.
func NewClient(params MeanParams, secret []byte, metric string) (*Client, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(secret) == 0 {
		return nil, fmt.Errorf("telemetry: secret must be non-empty")
	}
	alphaSrc := ldprand.Keyed(secret, "telemetry-alpha:"+metric)
	lowSrc := ldprand.Keyed(secret, "telemetry-low:"+metric)
	highSrc := ldprand.Keyed(secret, "telemetry-high:"+metric)
	return &Client{
		params:  params,
		alpha:   ldprand.Float64(alphaSrc),
		bitLow:  OneBit(params, 0, lowSrc),
		bitHigh: OneBit(params, params.Max, highSrc),
	}, nil
}

// Report returns the memoized one-bit report for the current value x.
// α-point rounding sends the "high" response iff x/Max > α; because α
// is uniform, E[rounded] = x, preserving unbiasedness of the mean.
func (c *Client) Report(x float64) int {
	x = clamp(x, 0, c.params.Max)
	if x/c.params.Max > c.alpha {
		return c.bitHigh
	}
	return c.bitLow
}

// NaiveReport re-randomizes on every call (no memoization) — the
// baseline that leaks under repeated collection, used by the E7
// ablation.
func (c *Client) NaiveReport(x float64, src ldprand.Source) int {
	return OneBit(c.params, x, src)
}

// HistogramParams configures one-bit histogram collection over d
// buckets.
type HistogramParams struct {
	Epsilon float64
	Buckets int
}

// Validate checks parameter ranges.
func (p HistogramParams) Validate() error {
	if p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0) {
		return fmt.Errorf("telemetry: epsilon must be positive and finite, got %v", p.Epsilon)
	}
	if p.Buckets < 2 {
		return fmt.Errorf("telemetry: need at least 2 buckets, got %d", p.Buckets)
	}
	return nil
}

// HistogramReport is one report: the bucket the user was asked about
// and the randomized membership bit.
type HistogramReport struct {
	Bucket int
	Bit    int
}

// HistogramBit runs the client side: the user is assigned a uniformly
// random bucket (in deployments, derived from the user ID so it is
// stable) and answers "is my value in this bucket" through binary
// randomized response with the full budget.
func HistogramBit(p HistogramParams, value int, src ldprand.Source) HistogramReport {
	if src == nil {
		src = ldprand.NewCrypto()
	}
	if value < 0 || value >= p.Buckets {
		panic(fmt.Sprintf("telemetry: value %d outside [0,%d)", value, p.Buckets))
	}
	bucket := ldprand.Intn(src, p.Buckets)
	truth := 0
	if value == bucket {
		truth = 1
	}
	e := math.Exp(p.Epsilon)
	keep := e / (e + 1)
	if !ldprand.Bernoulli(src, keep) {
		truth = 1 - truth
	}
	return HistogramReport{Bucket: bucket, Bit: truth}
}

// HistogramCollector aggregates one-bit histogram reports.
type HistogramCollector struct {
	params HistogramParams
	ones   []int // per-bucket count of 1 bits
	asked  []int // per-bucket count of reports
}

// NewHistogramCollector returns an aggregator.
func NewHistogramCollector(params HistogramParams) (*HistogramCollector, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &HistogramCollector{
		params: params,
		ones:   make([]int, params.Buckets),
		asked:  make([]int, params.Buckets),
	}, nil
}

// Add folds one report in.
func (h *HistogramCollector) Add(r HistogramReport) error {
	if r.Bucket < 0 || r.Bucket >= h.params.Buckets {
		return fmt.Errorf("telemetry: bucket %d out of range", r.Bucket)
	}
	if r.Bit != 0 && r.Bit != 1 {
		return fmt.Errorf("telemetry: bit must be 0 or 1, got %d", r.Bit)
	}
	h.ones[r.Bucket] += r.Bit
	h.asked[r.Bucket]++
	return nil
}

// Collected returns the total reports aggregated.
func (h *HistogramCollector) Collected() int {
	total := 0
	for _, a := range h.asked {
		total += a
	}
	return total
}

// EstimateCounts returns unbiased estimated counts per bucket. With
// keep probability p = e^ε/(e^ε+1), the fraction of 1-answers among
// users asked about bucket j estimates p·f_j + (1−p)(1−f_j), inverted
// per bucket and scaled to the population.
func (h *HistogramCollector) EstimateCounts() []float64 {
	e := math.Exp(h.params.Epsilon)
	p := e / (e + 1)
	total := float64(h.Collected())
	out := make([]float64, h.params.Buckets)
	for j := range out {
		asked := float64(h.asked[j])
		if asked == 0 {
			continue
		}
		obs := float64(h.ones[j]) / asked
		fj := (obs - (1 - p)) / (2*p - 1)
		out[j] = fj * total
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
