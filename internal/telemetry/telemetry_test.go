package telemetry

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/workload"
)

func meanParams() MeanParams { return MeanParams{Epsilon: 1, Max: 100} }

func TestOneBitCalibration(t *testing.T) {
	p := meanParams()
	src := ldprand.NewSplitMix64(1)
	const n = 100000
	for _, x := range []float64{0, 25, 50, 100} {
		ones := 0
		for i := 0; i < n; i++ {
			ones += OneBit(p, x, src)
		}
		got := float64(ones) / n
		e := math.Exp(p.Epsilon)
		want := 1/(e+1) + (x/p.Max)*(e-1)/(e+1)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("x=%v: one rate %.4f want %.4f", x, got, want)
		}
	}
}

func TestMeanRecovery(t *testing.T) {
	p := meanParams()
	src := ldprand.NewSplitMix64(2)
	col, err := NewMeanCollector(p)
	if err != nil {
		t.Fatal(err)
	}
	values := workload.Counters(src, p.Max, 50000)
	var truth float64
	for _, x := range values {
		truth += x
		if err := col.Add(OneBit(p, x, src)); err != nil {
			t.Fatal(err)
		}
	}
	truth /= float64(len(values))
	got := col.Estimate()
	tol := 4 * math.Sqrt(MeanVariance(p, col.Collected()))
	if math.Abs(got-truth) > tol {
		t.Errorf("mean estimate %.2f truth %.2f (tol %.2f)", got, truth, tol)
	}
}

func TestMeanFromBitsEdgeCases(t *testing.T) {
	p := meanParams()
	if MeanFromBits(p, 10, 0) != 0 {
		t.Error("n=0 should give 0")
	}
	// All bits one ⇒ estimate should exceed Max/2; all zero ⇒ below.
	if MeanFromBits(p, 1000, 1000) <= p.Max/2 {
		t.Error("all-ones estimate too low")
	}
	if MeanFromBits(p, 0, 1000) >= p.Max/2 {
		t.Error("all-zeros estimate too high")
	}
}

func TestMeanCollectorRejectsBadBits(t *testing.T) {
	col, _ := NewMeanCollector(meanParams())
	if err := col.Add(2); err == nil {
		t.Error("bit 2 accepted")
	}
	if err := col.Add(-1); err == nil {
		t.Error("bit -1 accepted")
	}
}

func TestClientMemoization(t *testing.T) {
	p := meanParams()
	c, err := NewClient(p, []byte("secret"), "app-usage")
	if err != nil {
		t.Fatal(err)
	}
	// Same value, many reports: always the identical bit.
	first := c.Report(30)
	for i := 0; i < 100; i++ {
		if c.Report(30) != first {
			t.Fatal("memoized report changed")
		}
	}
	// Rebuilt client with the same secret reproduces the same bits.
	c2, _ := NewClient(p, []byte("secret"), "app-usage")
	if c2.Report(30) != first {
		t.Fatal("restart changed memoized report")
	}
	// A different metric may differ (fresh randomness).
	c3, _ := NewClient(p, []byte("secret"), "other-metric")
	_ = c3.Report(30) // just exercising the path; value may coincide
}

func TestAlphaRoundingUnbiasedOverUsers(t *testing.T) {
	// Across many users (each with their own α and memoized bits), the
	// collected mean should still be unbiased.
	p := meanParams()
	col, _ := NewMeanCollector(p)
	src := ldprand.NewSplitMix64(3)
	const n = 60000
	var truth float64
	for i := 0; i < n; i++ {
		x := p.Max * ldprand.Float64(src)
		truth += x
		c, err := NewClient(p, []byte(fmt.Sprintf("user-%d", i)), "m")
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Add(c.Report(x)); err != nil {
			t.Fatal(err)
		}
	}
	truth /= n
	got := col.Estimate()
	// α-rounding adds rounding variance on top of the RR variance.
	tol := 6 * math.Sqrt(MeanVariance(p, n))
	if math.Abs(got-truth) > tol {
		t.Errorf("memoized mean %.2f truth %.2f (tol %.2f)", got, truth, tol)
	}
}

func TestMemoizationDefeatsAveraging(t *testing.T) {
	// The privacy argument of E7: with memoization, observing T rounds
	// of an unchanged value yields a *constant* report, so the
	// adversary's per-user estimate cannot concentrate on the true
	// value. Without memoization the average of T rounds converges to
	// the biased coin's rate, revealing x.
	p := meanParams()
	const rounds = 500
	x := 73.0

	c, _ := NewClient(p, []byte("victim"), "m")
	distinct := make(map[int]bool)
	for r := 0; r < rounds; r++ {
		distinct[c.Report(x)] = true
	}
	if len(distinct) != 1 {
		t.Fatalf("memoized client produced %d distinct reports for a fixed value", len(distinct))
	}

	src := ldprand.NewSplitMix64(4)
	sum := 0
	for r := 0; r < rounds; r++ {
		sum += c.NaiveReport(x, src)
	}
	rate := float64(sum) / rounds
	e := math.Exp(p.Epsilon)
	implied := (rate*(e+1) - 1) / (e - 1) * p.Max
	if math.Abs(implied-x) > 15 {
		t.Errorf("averaging attack should recover x=73 without memoization, got %.1f", implied)
	}
}

func TestHistogramRecovery(t *testing.T) {
	hp := HistogramParams{Epsilon: 2, Buckets: 8}
	col, err := NewHistogramCollector(hp)
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(5)
	zipf := workload.NewZipf(src, 1.2, hp.Buckets)
	const n = 200000
	truth := make([]int, hp.Buckets)
	for i := 0; i < n; i++ {
		v := zipf.Next()
		truth[v]++
		if err := col.Add(HistogramBit(hp, v, src)); err != nil {
			t.Fatal(err)
		}
	}
	est := col.EstimateCounts()
	for j := range truth {
		if math.Abs(est[j]-float64(truth[j])) > 0.05*float64(n) {
			t.Errorf("bucket %d: estimate %.0f truth %d", j, est[j], truth[j])
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogramCollector(HistogramParams{Epsilon: 0, Buckets: 4}); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := NewHistogramCollector(HistogramParams{Epsilon: 1, Buckets: 1}); err == nil {
		t.Error("1 bucket accepted")
	}
	col, _ := NewHistogramCollector(HistogramParams{Epsilon: 1, Buckets: 4})
	if err := col.Add(HistogramReport{Bucket: 9, Bit: 1}); err == nil {
		t.Error("bad bucket accepted")
	}
	if err := col.Add(HistogramReport{Bucket: 0, Bit: 3}); err == nil {
		t.Error("bad bit accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range value should panic")
		}
	}()
	HistogramBit(HistogramParams{Epsilon: 1, Buckets: 4}, 4, ldprand.NewSplitMix64(1))
}

func TestParamsValidation(t *testing.T) {
	if _, err := NewMeanCollector(MeanParams{Epsilon: 0, Max: 1}); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := NewMeanCollector(MeanParams{Epsilon: 1, Max: 0}); err == nil {
		t.Error("max 0 accepted")
	}
	if _, err := NewClient(meanParams(), nil, "m"); err == nil {
		t.Error("empty secret accepted")
	}
}

func TestMeanVarianceShrinks(t *testing.T) {
	p := meanParams()
	if MeanVariance(p, 10000) >= MeanVariance(p, 100) {
		t.Error("variance should shrink with n")
	}
	if !math.IsInf(MeanVariance(p, 0), 1) {
		t.Error("n=0 variance should be infinite")
	}
}
