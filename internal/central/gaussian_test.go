package central

import (
	"math"
	"testing"

	"repro/internal/ldprand"
)

func TestGaussianSigmaCalibration(t *testing.T) {
	m := NewGaussian(0.5, 1e-5, 1, ldprand.NewSplitMix64(1))
	want := math.Sqrt(2*math.Log(1.25/1e-5)) / 0.5
	if math.Abs(m.Sigma()-want) > 1e-9 {
		t.Fatalf("sigma %v want %v", m.Sigma(), want)
	}
}

func TestGaussianUnbiasedAndCalibrated(t *testing.T) {
	m := NewGaussian(0.9, 1e-6, 2, ldprand.NewSplitMix64(2))
	const trials = 200000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		d := m.Release(100) - 100
		sum += d
		sumSq += d * d
	}
	meanNoise := sum / trials
	varNoise := sumSq/trials - meanNoise*meanNoise
	if math.Abs(meanNoise) > 0.1 {
		t.Errorf("noise mean %v want 0", meanNoise)
	}
	if math.Abs(varNoise-m.Variance()) > 0.05*m.Variance() {
		t.Errorf("noise variance %v want %v", varNoise, m.Variance())
	}
}

func TestGaussianBeatsLaplaceForVectors(t *testing.T) {
	// The δ-relaxation story: for a d-dimensional query where each
	// user moves every coordinate by 1/√d (L2 = 1, L1 = √d), Gaussian
	// per-coordinate noise variance is far below Laplace's for large d.
	const d = 1024
	gauss := NewGaussian(0.5, 1e-6, 1, ldprand.NewSplitMix64(3))
	lap := NewLaplace(0.5, math.Sqrt(d), ldprand.NewSplitMix64(4)) // L1 sensitivity = √d
	if gauss.Variance() >= lap.Variance() {
		t.Errorf("Gaussian variance %v should beat Laplace %v at d=%d",
			gauss.Variance(), lap.Variance(), d)
	}
}

func TestGaussianReleaseVector(t *testing.T) {
	m := NewGaussian(0.5, 1e-5, 1, ldprand.NewSplitMix64(5))
	in := []float64{1, 2, 3}
	out := m.ReleaseVector(in)
	if len(out) != 3 {
		t.Fatalf("length %d", len(out))
	}
	for i := range in {
		if math.Abs(out[i]-in[i]) > 12*m.Sigma() {
			t.Errorf("noise at %d beyond 12 sigma", i)
		}
	}
}

func TestGaussianValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGaussian(0, 1e-5, 1, nil) },
		func() { NewGaussian(1.5, 1e-5, 1, nil) }, // classical bound needs eps < 1
		func() { NewGaussian(0.5, 0, 1, nil) },
		func() { NewGaussian(0.5, 1, 1, nil) },
		func() { NewGaussian(0.5, 1e-5, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
