// Package central implements the centralized differential privacy
// substrate that the tutorial contrasts LDP against (§1.5): a trusted
// aggregator sees raw data and adds calibrated noise once, giving
// O(1/ε) error instead of LDP's O(√n/ε). It is used by the hybrid
// model (internal/hybrid) and the central-vs-local gap experiment (E11).
package central

import (
	"math"

	"repro/internal/ldprand"
)

// LaplaceMechanism releases real-valued queries with Laplace noise
// calibrated to their L1 sensitivity.
type LaplaceMechanism struct {
	epsilon     float64
	sensitivity float64
	src         ldprand.Source
}

// NewLaplace returns a Laplace mechanism with the given budget and
// query sensitivity. A nil source selects crypto/rand.
func NewLaplace(epsilon, sensitivity float64, src ldprand.Source) *LaplaceMechanism {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		panic("central: epsilon must be positive and finite")
	}
	if sensitivity <= 0 {
		panic("central: sensitivity must be positive")
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	return &LaplaceMechanism{epsilon: epsilon, sensitivity: sensitivity, src: src}
}

// Scale returns the noise scale b = sensitivity/ε.
func (m *LaplaceMechanism) Scale() float64 { return m.sensitivity / m.epsilon }

// Release returns value + Laplace(sensitivity/ε) noise.
func (m *LaplaceMechanism) Release(value float64) float64 {
	return value + ldprand.Laplace(m.src, m.Scale())
}

// ReleaseVector adds independent noise to each component. The stated
// sensitivity must already account for the whole vector (L1 across
// components), as it does for histograms (sensitivity 1 per user for
// disjoint buckets ⇒ 2 including removals, or 1 under add-one
// semantics).
func (m *LaplaceMechanism) ReleaseVector(values []float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v + ldprand.Laplace(m.src, m.Scale())
	}
	return out
}

// Variance returns the noise variance of one released value: 2b².
func (m *LaplaceMechanism) Variance() float64 {
	b := m.Scale()
	return 2 * b * b
}

// GeometricMechanism releases integer counts with two-sided geometric
// noise, the discrete analogue of Laplace (used when released values
// must stay integral).
type GeometricMechanism struct {
	alpha float64 // e^{-ε/sensitivity}
	src   ldprand.Source
}

// NewGeometric returns a geometric mechanism for integer queries with
// the given budget and sensitivity.
func NewGeometric(epsilon, sensitivity float64, src ldprand.Source) *GeometricMechanism {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		panic("central: epsilon must be positive and finite")
	}
	if sensitivity <= 0 {
		panic("central: sensitivity must be positive")
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	return &GeometricMechanism{alpha: math.Exp(-epsilon / sensitivity), src: src}
}

// Release returns count plus two-sided geometric noise.
func (m *GeometricMechanism) Release(count int64) int64 {
	return count + m.noise()
}

// noise samples the two-sided geometric distribution with parameter
// alpha: P(k) proportional to alpha^{|k|}.
func (m *GeometricMechanism) noise() int64 {
	// Sample magnitude from a geometric tail, then a sign; the atom at
	// zero has the correct mass (1−alpha)/(1+alpha) by construction.
	u := ldprand.Float64(m.src)
	// P(K = 0) = (1-a)/(1+a); P(|K| = k) = 2a^k (1-a)/(1+a) for k >= 1.
	p0 := (1 - m.alpha) / (1 + m.alpha)
	if u < p0 {
		return 0
	}
	// Remaining mass splits evenly between signs.
	u = (u - p0) / (1 - p0) // uniform again
	sign := int64(1)
	if u < 0.5 {
		sign = -1
		u *= 2
	} else {
		u = (u - 0.5) * 2
	}
	// Geometric with success prob (1-alpha), shifted to start at 1.
	k := int64(1)
	for {
		if ldprand.Float64(m.src) < 1-m.alpha {
			return sign * k
		}
		k++
		if k > 1<<40 { // unreachable in practice; avoid spinning forever
			return sign * k
		}
	}
}

// Variance returns the noise variance 2a/(1−a)².
func (m *GeometricMechanism) Variance() float64 {
	return 2 * m.alpha / ((1 - m.alpha) * (1 - m.alpha))
}

// Histogram releases a histogram of counts under ε-DP with the Laplace
// mechanism, sensitivity 1 (each user contributes to exactly one
// bucket; neighboring datasets differ by one user's presence).
func Histogram(epsilon float64, counts []int, src ldprand.Source) []float64 {
	m := NewLaplace(epsilon, 1, src)
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = m.Release(float64(c))
	}
	return out
}

// Mean releases the mean of values known to lie in [lo, hi] under ε-DP,
// by releasing a noisy sum (sensitivity hi−lo after shifting) and
// dividing by the (public) count n.
func Mean(epsilon float64, values []float64, lo, hi float64, src ldprand.Source) float64 {
	if len(values) == 0 {
		return 0
	}
	if hi <= lo {
		panic("central: invalid range")
	}
	var sum float64
	for _, v := range values {
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		sum += v
	}
	m := NewLaplace(epsilon, hi-lo, src)
	return m.Release(sum) / float64(len(values))
}
