package central

import (
	"math"

	"repro/internal/ldprand"
)

// GaussianMechanism releases real-valued queries under (ε, δ)-DP — the
// "additive relaxation" the tutorial's theory section (§1.4) asks
// about: admitting a small failure probability δ lets noise follow a
// light-tailed Gaussian with σ = √(2·ln(1.25/δ))·Δ₂/ε instead of the
// heavier-tailed Laplace, which pays off for vector-valued queries
// whose L2 sensitivity is far below their L1.
type GaussianMechanism struct {
	epsilon, delta float64
	sigma          float64
	src            ldprand.Source
}

// NewGaussian returns a Gaussian mechanism for queries with the given
// L2 sensitivity. Requires ε in (0, 1) and δ in (0, 1) for the
// classical calibration to hold.
func NewGaussian(epsilon, delta, l2Sensitivity float64, src ldprand.Source) *GaussianMechanism {
	if epsilon <= 0 || epsilon >= 1 || math.IsNaN(epsilon) {
		panic("central: Gaussian mechanism requires epsilon in (0,1)")
	}
	if delta <= 0 || delta >= 1 {
		panic("central: delta must be in (0,1)")
	}
	if l2Sensitivity <= 0 {
		panic("central: sensitivity must be positive")
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	return &GaussianMechanism{
		epsilon: epsilon,
		delta:   delta,
		sigma:   math.Sqrt(2*math.Log(1.25/delta)) * l2Sensitivity / epsilon,
		src:     src,
	}
}

// Sigma returns the calibrated noise standard deviation.
func (m *GaussianMechanism) Sigma() float64 { return m.sigma }

// Release returns value + N(0, σ²).
func (m *GaussianMechanism) Release(value float64) float64 {
	return value + m.sigma*ldprand.Normal(m.src)
}

// ReleaseVector adds independent N(0, σ²) noise to every component;
// the stated sensitivity must be the L2 norm of the whole vector's
// per-user change.
func (m *GaussianMechanism) ReleaseVector(values []float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v + m.sigma*ldprand.Normal(m.src)
	}
	return out
}

// Variance returns σ².
func (m *GaussianMechanism) Variance() float64 { return m.sigma * m.sigma }
