package central

import (
	"math"
	"testing"

	"repro/internal/ldprand"
)

func TestLaplaceUnbiased(t *testing.T) {
	m := NewLaplace(1.0, 1.0, ldprand.NewSplitMix64(1))
	const trials = 100000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += m.Release(10)
	}
	got := sum / trials
	if math.Abs(got-10) > 0.05 {
		t.Errorf("mean release %.3f want about 10", got)
	}
}

func TestLaplaceVarianceMatches(t *testing.T) {
	m := NewLaplace(0.5, 2.0, ldprand.NewSplitMix64(2))
	const trials = 200000
	var sumSq float64
	for i := 0; i < trials; i++ {
		d := m.Release(0)
		sumSq += d * d
	}
	got := sumSq / trials
	want := m.Variance() // 2·(4/0.5... b=4, var=32
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("empirical variance %.2f want %.2f", got, want)
	}
	if want != 32 {
		t.Errorf("analytic variance %v want 32", want)
	}
}

func TestLaplaceScale(t *testing.T) {
	if got := NewLaplace(2, 1, nil).Scale(); got != 0.5 {
		t.Errorf("scale %v want 0.5", got)
	}
}

func TestReleaseVector(t *testing.T) {
	m := NewLaplace(10, 1, ldprand.NewSplitMix64(3))
	in := []float64{1, 2, 3}
	out := m.ReleaseVector(in)
	if len(out) != 3 {
		t.Fatalf("length %d", len(out))
	}
	for i := range in {
		if math.Abs(out[i]-in[i]) > 10 {
			t.Errorf("noise at %d implausibly large: %v", i, out[i]-in[i])
		}
	}
}

func TestGeometricIntegerAndUnbiased(t *testing.T) {
	m := NewGeometric(1.0, 1.0, ldprand.NewSplitMix64(4))
	const trials = 100000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(m.Release(5))
	}
	got := sum / trials
	if math.Abs(got-5) > 0.05 {
		t.Errorf("mean release %.3f want about 5", got)
	}
}

func TestGeometricVariance(t *testing.T) {
	m := NewGeometric(1.0, 1.0, ldprand.NewSplitMix64(5))
	const trials = 200000
	var sumSq float64
	for i := 0; i < trials; i++ {
		d := float64(m.Release(0))
		sumSq += d * d
	}
	got := sumSq / trials
	want := m.Variance()
	if math.Abs(got-want) > 0.1*want {
		t.Errorf("empirical variance %.3f want %.3f", got, want)
	}
}

func TestHistogramCloseToTruth(t *testing.T) {
	counts := []int{100, 500, 50}
	out := Histogram(1.0, counts, ldprand.NewSplitMix64(6))
	for i, c := range counts {
		if math.Abs(out[i]-float64(c)) > 20 {
			t.Errorf("bucket %d: %v want about %d", i, out[i], c)
		}
	}
}

func TestMeanClampsAndEstimates(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 0.5
	}
	vals[0] = 100 // clamped to 1
	got := Mean(1.0, vals, 0, 1, ldprand.NewSplitMix64(7))
	if math.Abs(got-0.5005) > 0.05 {
		t.Errorf("mean %.4f want about 0.5", got)
	}
	if Mean(1, nil, 0, 1, nil) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestCentralBeatsLocalScaling(t *testing.T) {
	// The §1.5 story: central error is O(1/ε) independent of n, so the
	// noisy mean error should shrink as 1/n while an LDP mean's error
	// shrinks as 1/√n. Check the central error at two n values.
	errAt := func(n int) float64 {
		src := ldprand.NewSplitMix64(uint64(n))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 0.3
		}
		var total float64
		const reps = 50
		for r := 0; r < reps; r++ {
			total += math.Abs(Mean(1.0, vals, 0, 1, src) - 0.3)
		}
		return total / reps
	}
	e1, e2 := errAt(100), errAt(10000)
	if e2 > e1/10 {
		t.Errorf("central mean error should shrink about 100x from n=100 (%.5f) to n=10000 (%.5f)", e1, e2)
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLaplace(0, 1, nil) },
		func() { NewLaplace(1, 0, nil) },
		func() { NewLaplace(math.NaN(), 1, nil) },
		func() { NewGeometric(-1, 1, nil) },
		func() { NewGeometric(1, -1, nil) },
		func() { Mean(1, []float64{1}, 1, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
