// Package langmodel implements privately trained text prediction
// (§1.3): the motivating application of McMahan et al. [17] — better
// typing prediction from user keystrokes — realized at the n-gram
// level that LDP frequency collection supports. Each user contributes
// one randomized bigram observation; the aggregator assembles a
// Markov next-character model from the debiased bigram histogram and
// never sees a single raw keystroke.
package langmodel

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/freq"
	"repro/internal/ldprand"
)

// AlphabetSize is the model alphabet: 'a'..'z' plus the boundary
// marker used for word starts/ends.
const AlphabetSize = 27

// Boundary is the word-boundary symbol index.
const Boundary = 26

// symbolOf maps a byte to its alphabet index; anything outside a–z is
// treated as a boundary.
func symbolOf(b byte) int {
	if b >= 'a' && b <= 'z' {
		return int(b - 'a')
	}
	return Boundary
}

// charOf inverts symbolOf for display.
func charOf(s int) byte {
	if s >= 0 && s < 26 {
		return byte('a' + s)
	}
	return '_'
}

// bigramID encodes a (prev, next) symbol pair as one domain value.
func bigramID(prev, next int) int { return prev*AlphabetSize + next }

// Trainer collects randomized bigram reports and fits the model.
type Trainer struct {
	epsilon float64
	oracle  freq.Oracle
	src     ldprand.Source
}

// NewTrainer returns a bigram model trainer. A nil source selects
// crypto/rand.
func NewTrainer(epsilon float64, src ldprand.Source) *Trainer {
	if src == nil {
		src = ldprand.NewCrypto()
	}
	return &Trainer{
		epsilon: epsilon,
		oracle:  freq.NewOLH(epsilon, AlphabetSize*AlphabetSize, src),
		src:     src,
	}
}

// Contribute privatizes one bigram sampled uniformly from the user's
// text (with boundary padding) and folds it into the aggregate. Texts
// must be non-empty; they are lowercased and non-letters become
// boundaries.
func (t *Trainer) Contribute(text string) error {
	if text == "" {
		return fmt.Errorf("langmodel: empty text")
	}
	s := strings.ToLower(text)
	// Bigrams including a leading boundary: positions 0..len(s)-1 pair
	// (prev, cur) with prev = boundary at position 0.
	pos := ldprand.Intn(t.src, len(s))
	prev := Boundary
	if pos > 0 {
		prev = symbolOf(s[pos-1])
	}
	t.oracle.Collect(bigramID(prev, symbolOf(s[pos])))
	return nil
}

// Contributed returns the number of reports.
func (t *Trainer) Contributed() int { return t.oracle.Collected() }

// Model is a next-character Markov model: Probs[prev][next].
type Model struct {
	Probs [AlphabetSize][AlphabetSize]float64
}

// Fit builds the model from the debiased bigram histogram, clamping
// negatives and smoothing every row with add-alpha so perplexity is
// finite.
func (t *Trainer) Fit(alpha float64) *Model {
	if alpha <= 0 {
		alpha = 0.5
	}
	counts := t.oracle.EstimateCounts()
	var m Model
	for prev := 0; prev < AlphabetSize; prev++ {
		var row [AlphabetSize]float64
		var total float64
		for next := 0; next < AlphabetSize; next++ {
			c := counts[bigramID(prev, next)]
			if c < 0 {
				c = 0
			}
			row[next] = c + alpha
			total += row[next]
		}
		for next := 0; next < AlphabetSize; next++ {
			m.Probs[prev][next] = row[next] / total
		}
	}
	return &m
}

// FitTrue builds the exact model from raw texts, the non-private
// ground truth the experiments compare against.
func FitTrue(texts []string, alpha float64) *Model {
	if alpha <= 0 {
		alpha = 0.5
	}
	var counts [AlphabetSize][AlphabetSize]float64
	for _, text := range texts {
		s := strings.ToLower(text)
		prev := Boundary
		for i := 0; i < len(s); i++ {
			cur := symbolOf(s[i])
			counts[prev][cur]++
			prev = cur
		}
	}
	var m Model
	for prev := 0; prev < AlphabetSize; prev++ {
		var total float64
		for next := 0; next < AlphabetSize; next++ {
			counts[prev][next] += alpha
			total += counts[prev][next]
		}
		for next := 0; next < AlphabetSize; next++ {
			m.Probs[prev][next] = counts[prev][next] / total
		}
	}
	return &m
}

// Predict returns the k most likely next characters after the given
// context byte (only its last character matters in a bigram model).
func (m *Model) Predict(context string, k int) []byte {
	prev := Boundary
	if context != "" {
		prev = symbolOf(strings.ToLower(context)[len(context)-1])
	}
	idx := make([]int, AlphabetSize)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return m.Probs[prev][idx[a]] > m.Probs[prev][idx[b]]
	})
	if k > AlphabetSize {
		k = AlphabetSize
	}
	out := make([]byte, k)
	for i := 0; i < k; i++ {
		out[i] = charOf(idx[i])
	}
	return out
}

// Perplexity evaluates the model on held-out texts: exp of the average
// negative log-likelihood per character. Lower is better; the uniform
// model scores AlphabetSize.
func (m *Model) Perplexity(texts []string) float64 {
	var logSum float64
	var chars int
	for _, text := range texts {
		s := strings.ToLower(text)
		prev := Boundary
		for i := 0; i < len(s); i++ {
			cur := symbolOf(s[i])
			p := m.Probs[prev][cur]
			if p <= 0 {
				p = 1e-12
			}
			logSum += math.Log(p)
			chars++
			prev = cur
		}
	}
	if chars == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logSum / float64(chars))
}

// KLDivergence returns the average KL divergence between this model's
// rows and another's, weighted uniformly over contexts — a direct
// model-distance measure for experiments.
func (m *Model) KLDivergence(other *Model) float64 {
	var total float64
	for prev := 0; prev < AlphabetSize; prev++ {
		for next := 0; next < AlphabetSize; next++ {
			p := m.Probs[prev][next]
			q := other.Probs[prev][next]
			if p <= 0 {
				continue
			}
			if q <= 0 {
				q = 1e-12
			}
			total += p * math.Log(p/q)
		}
	}
	return total / AlphabetSize
}
