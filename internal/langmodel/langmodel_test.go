package langmodel

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ldprand"
)

// corpus returns a synthetic training corpus with strong bigram
// structure ("qu", "th", "he" heavy).
func corpus(src ldprand.Source, n int) []string {
	words := []string{"the", "then", "they", "queen", "quick", "quiet", "hello", "there"}
	out := make([]string, n)
	for i := range out {
		out[i] = words[ldprand.Intn(src, len(words))]
	}
	return out
}

func TestSymbolMapping(t *testing.T) {
	if symbolOf('a') != 0 || symbolOf('z') != 25 {
		t.Fatal("letter mapping wrong")
	}
	if symbolOf(' ') != Boundary || symbolOf('3') != Boundary {
		t.Fatal("non-letters must map to boundary")
	}
	if charOf(0) != 'a' || charOf(25) != 'z' || charOf(Boundary) != '_' {
		t.Fatal("charOf wrong")
	}
}

func TestContributeRejectsEmpty(t *testing.T) {
	tr := NewTrainer(1, ldprand.NewSplitMix64(1))
	if err := tr.Contribute(""); err == nil {
		t.Fatal("empty text accepted")
	}
	if err := tr.Contribute("hello"); err != nil {
		t.Fatal(err)
	}
	if tr.Contributed() != 1 {
		t.Fatalf("contributed %d", tr.Contributed())
	}
}

func TestModelRowsAreDistributions(t *testing.T) {
	src := ldprand.NewSplitMix64(2)
	tr := NewTrainer(2, src)
	for _, text := range corpus(src, 5000) {
		if err := tr.Contribute(text); err != nil {
			t.Fatal(err)
		}
	}
	m := tr.Fit(0.5)
	for prev := 0; prev < AlphabetSize; prev++ {
		var sum float64
		for next := 0; next < AlphabetSize; next++ {
			p := m.Probs[prev][next]
			if p < 0 || p > 1 {
				t.Fatalf("prob out of range at (%d,%d): %v", prev, next, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", prev, sum)
		}
	}
}

func TestPrivateModelLearnsBigramStructure(t *testing.T) {
	src := ldprand.NewSplitMix64(3)
	texts := corpus(src, 60000)
	tr := NewTrainer(3, src)
	for _, text := range texts {
		if err := tr.Contribute(text); err != nil {
			t.Fatal(err)
		}
	}
	private := tr.Fit(0.5)
	// In this corpus, 'q' is always followed by 'u'.
	q := symbolOf('q')
	u := symbolOf('u')
	if private.Probs[q][u] < 0.5 {
		t.Errorf("P(u|q) = %.3f, corpus has q->u always", private.Probs[q][u])
	}
	// 't' is overwhelmingly followed by 'h'.
	if got := private.Predict("t", 1); got[0] != 'h' {
		t.Errorf("Predict(t) = %c want h", got[0])
	}
}

func TestPrivateBeatsUniformPerplexity(t *testing.T) {
	src := ldprand.NewSplitMix64(4)
	texts := corpus(src, 60000)
	heldOut := corpus(src, 1000)
	tr := NewTrainer(3, src)
	for _, text := range texts {
		_ = tr.Contribute(text)
	}
	private := tr.Fit(0.5)
	truth := FitTrue(texts, 0.5)

	pPriv := private.Perplexity(heldOut)
	pTrue := truth.Perplexity(heldOut)
	if pPriv >= AlphabetSize {
		t.Errorf("private perplexity %.2f no better than uniform %d", pPriv, AlphabetSize)
	}
	// Private model should be within 2x of the non-private model here.
	if pPriv > 2*pTrue {
		t.Errorf("private perplexity %.2f vs true %.2f", pPriv, pTrue)
	}
}

func TestKLDivergenceProperties(t *testing.T) {
	src := ldprand.NewSplitMix64(5)
	texts := corpus(src, 20000)
	truth := FitTrue(texts, 0.5)
	if d := truth.KLDivergence(truth); math.Abs(d) > 1e-9 {
		t.Errorf("self-KL %v want 0", d)
	}
	tr := NewTrainer(2, src)
	for _, text := range texts {
		_ = tr.Contribute(text)
	}
	private := tr.Fit(0.5)
	if d := truth.KLDivergence(private); d < 0 {
		t.Errorf("KL %v negative", d)
	}
}

func TestPerplexityEdgeCases(t *testing.T) {
	m := FitTrue([]string{"abc"}, 1)
	if !math.IsInf(m.Perplexity(nil), 1) {
		t.Error("empty evaluation should be +Inf")
	}
	if p := m.Perplexity([]string{"abc"}); p <= 0 || math.IsInf(p, 0) {
		t.Errorf("perplexity %v", p)
	}
}

func TestPredictBounds(t *testing.T) {
	m := FitTrue([]string{"hello world"}, 1)
	if got := m.Predict("", 3); len(got) != 3 {
		t.Fatalf("predict empty context: %v", got)
	}
	if got := m.Predict("x", 100); len(got) != AlphabetSize {
		t.Fatalf("k clamping failed: %d", len(got))
	}
}

func TestCaseInsensitive(t *testing.T) {
	a := FitTrue([]string{"Hello"}, 1)
	b := FitTrue([]string{"hello"}, 1)
	if a.KLDivergence(b) > 1e-9 {
		t.Error("case should not matter")
	}
	_ = strings.ToLower("X") // documented behaviour; keep import honest
}
