package postprocess

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	xs := []float64{-2, 0, 3, -0.5}
	Clamp(xs)
	want := []float64{0, 0, 3, 0}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("Clamp=%v want %v", xs, want)
		}
	}
}

func TestNormSubKnownCase(t *testing.T) {
	// xs = [5, 3, -2], total 4: δ = 2 gives [3, 1, 0], sum 4.
	got := NormSub([]float64{5, 3, -2}, 4)
	want := []float64{3, 1, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("NormSub=%v want %v", got, want)
		}
	}
}

func TestNormSubAlreadyConsistent(t *testing.T) {
	got := NormSub([]float64{1, 2, 3}, 6)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("NormSub=%v want %v", got, want)
		}
	}
}

func TestNormSubEmpty(t *testing.T) {
	if got := NormSub(nil, 5); len(got) != 0 {
		t.Fatalf("NormSub(nil)=%v", got)
	}
}

func TestNormSubProperty(t *testing.T) {
	f := func(raw []float64, totRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		total := float64(totRaw)
		out := NormSub(raw, total)
		var sum float64
		for _, v := range out {
			if v < -1e-9 {
				return false
			}
			sum += v
		}
		// Sum matches target unless everything was clamped to zero and
		// the target is unreachable... NormSub always reaches the target
		// by lowering δ, so require equality within float error.
		return math.Abs(sum-total) < 1e-6*(1+total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormSubOrderPreserved(t *testing.T) {
	// The projection subtracts a constant, so relative order of
	// surviving entries must be preserved.
	xs := []float64{10, 7, 4, -1}
	out := NormSub(xs, 12)
	for i := 1; i < len(out); i++ {
		if out[i] > out[i-1]+1e-12 {
			t.Fatalf("order violated: %v", out)
		}
	}
}

func TestNormalizeTo(t *testing.T) {
	got := NormalizeTo([]float64{1, 3, -2}, 8)
	if math.Abs(got[0]-2) > 1e-9 || math.Abs(got[1]-6) > 1e-9 || got[2] != 0 {
		t.Fatalf("NormalizeTo=%v", got)
	}
	zero := NormalizeTo([]float64{-1, -2}, 5)
	for _, v := range zero {
		if v != 0 {
			t.Fatal("all-negative input should normalize to zeros")
		}
	}
}

func TestWeightedAverage(t *testing.T) {
	got, err := WeightedAverage(10, 1, 20, 1)
	if err != nil || got != 15 {
		t.Fatalf("equal-variance average %v, %v", got, err)
	}
	// Lower variance dominates.
	got, _ = WeightedAverage(10, 1, 20, 99999)
	if math.Abs(got-10) > 0.1 {
		t.Fatalf("low-variance estimate should dominate: %v", got)
	}
	if _, err := WeightedAverage(1, 0, 2, 1); err == nil {
		t.Fatal("zero variance accepted")
	}
}

func TestHierarchyConsistency(t *testing.T) {
	// One parent (estimate 100) with two children (30 + 50 = 80).
	parents := []float64{100}
	children := []float64{30, 50}
	outP, outC, err := HierarchyConsistency(parents, children, 2, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Blend: parent var 10, child-sum var 20 ⇒ blended = (100/10 + 80/20)/(1/10+1/20) = 93.33.
	want := (100.0/10 + 80.0/20) / (1.0/10 + 1.0/20)
	if math.Abs(outP[0]-want) > 1e-9 {
		t.Fatalf("parent %v want %v", outP[0], want)
	}
	// Children sum must equal the blended parent.
	if math.Abs(outC[0]+outC[1]-outP[0]) > 1e-9 {
		t.Fatalf("children %v do not sum to parent %v", outC, outP[0])
	}
	// Adjustment split evenly.
	if math.Abs((outC[0]-30)-(outC[1]-50)) > 1e-9 {
		t.Fatalf("uneven adjustment: %v", outC)
	}
}

func TestHierarchyConsistencyValidation(t *testing.T) {
	if _, _, err := HierarchyConsistency([]float64{1}, []float64{1}, 2, 1, 1); err == nil {
		t.Error("mismatched shapes accepted")
	}
	if _, _, err := HierarchyConsistency([]float64{1}, []float64{1, 2}, 0, 1, 1); err == nil {
		t.Error("fan 0 accepted")
	}
	if _, _, err := HierarchyConsistency([]float64{1}, []float64{1, 2}, 2, 0, 1); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestHierarchyConsistencyPreservesUnbiasedness(t *testing.T) {
	// If parent and child sums agree, nothing changes.
	outP, outC, err := HierarchyConsistency([]float64{80}, []float64{30, 50}, 2, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(outP[0]-80) > 1e-9 || math.Abs(outC[0]-30) > 1e-9 || math.Abs(outC[1]-50) > 1e-9 {
		t.Fatalf("consistent input modified: %v %v", outP, outC)
	}
}
