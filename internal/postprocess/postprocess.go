// Package postprocess implements consistency post-processing for LDP
// estimates. Post-processing never weakens differential privacy, so
// the aggregator is free to repair the artifacts of unbiased
// estimation — negative counts, totals that do not add up, children
// disagreeing with parents in a hierarchy — before publishing.
//
// The projections implemented here are the standard ones from the
// consistency literature: non-negativity clamping, Norm-Sub
// (projection onto the simplex scaled to a known total, the method
// recommended by follow-up work to Wang et al.), and weighted
// parent/child averaging for two-level hierarchies such as the
// spatial grids in internal/spatial.
package postprocess

import (
	"fmt"
	"math"
	"sort"
)

// Clamp zeroes negative estimates in place and returns the slice. The
// cheapest repair; it biases totals upward.
func Clamp(xs []float64) []float64 {
	for i, x := range xs {
		if x < 0 {
			xs[i] = 0
		}
	}
	return xs
}

// NormSub projects estimates onto {x : x >= 0, Σx = total}: it
// subtracts a uniform δ from every positive entry and clamps negatives
// to zero, choosing δ so the result sums to the target. This is the
// exact Euclidean projection onto that set, computed in O(d log d).
func NormSub(xs []float64, total float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	if total < 0 {
		total = 0
	}
	// Sort a copy to find the threshold δ such that
	// Σ max(x_i − δ, 0) = total.
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	// Walk from the largest down, maintaining the suffix sum.
	var suffix float64
	delta := math.Inf(-1)
	for i := len(sorted) - 1; i >= 0; i-- {
		suffix += sorted[i]
		k := float64(len(sorted) - i)
		d := (suffix - total) / k
		// δ = d is feasible if every entry in the active suffix stays
		// positive after subtraction, i.e. sorted[i] − d >= 0, and the
		// next-smaller entry would be clamped, i.e. it is <= d.
		lowerOK := sorted[i]-d >= -1e-12
		upperOK := i == 0 || sorted[i-1]-d <= 1e-12
		if lowerOK && upperOK {
			delta = d
			break
		}
	}
	if math.IsInf(delta, -1) {
		// All mass clamped (total 0 or extreme negatives): uniform 0s
		// except distribute total over the largest entry.
		delta = sorted[len(sorted)-1] - total
	}
	for i, x := range xs {
		v := x - delta
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// NormalizeTo rescales non-negative estimates to sum to total,
// clamping negatives first. Unlike NormSub it preserves ratios rather
// than differences.
func NormalizeTo(xs []float64, total float64) []float64 {
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		if x > 0 {
			out[i] = x
			sum += x
		}
	}
	if sum == 0 {
		return out
	}
	for i := range out {
		out[i] *= total / sum
	}
	return out
}

// WeightedAverage combines two unbiased estimates of the same quantity
// with inverse-variance weights; varA and varB must be positive.
func WeightedAverage(a, varA, b, varB float64) (float64, error) {
	if varA <= 0 || varB <= 0 {
		return 0, fmt.Errorf("postprocess: variances must be positive, got %v and %v", varA, varB)
	}
	wa, wb := 1/varA, 1/varB
	return (wa*a + wb*b) / (wa + wb), nil
}

// HierarchyConsistency reconciles a two-level estimate: parent[i] and
// the corresponding children (a contiguous block of fan children per
// parent). Each parent value and its child sum are two unbiased
// estimates of the same count; they are blended by inverse variance
// and the adjustment is spread evenly over the children. Returns the
// repaired (parents, children).
func HierarchyConsistency(parents, children []float64, fan int, varParent, varChild float64) ([]float64, []float64, error) {
	if fan < 1 {
		return nil, nil, fmt.Errorf("postprocess: fan must be at least 1, got %d", fan)
	}
	if len(children) != len(parents)*fan {
		return nil, nil, fmt.Errorf("postprocess: %d children with fan %d cannot match %d parents",
			len(children), fan, len(parents))
	}
	if varParent <= 0 || varChild <= 0 {
		return nil, nil, fmt.Errorf("postprocess: variances must be positive")
	}
	outP := make([]float64, len(parents))
	outC := make([]float64, len(children))
	varChildSum := varChild * float64(fan)
	for i, p := range parents {
		var childSum float64
		for j := 0; j < fan; j++ {
			childSum += children[i*fan+j]
		}
		blended, err := WeightedAverage(p, varParent, childSum, varChildSum)
		if err != nil {
			return nil, nil, err
		}
		outP[i] = blended
		adjust := (blended - childSum) / float64(fan)
		for j := 0; j < fan; j++ {
			outC[i*fan+j] = children[i*fan+j] + adjust
		}
	}
	return outP, outC, nil
}
