// Package ldprand supplies the randomness kernel used by every LDP
// mechanism in this repository.
//
// Local differential privacy rests entirely on the quality of each user's
// local coin flips, so the default source is backed by crypto/rand. For
// simulations and deterministic tests the package also provides fast
// seedable generators (SplitMix64, PCG64) and a keyed source derived from
// SHA-256, which is what the Microsoft-style memoization needs: the same
// (secret, value) pair must always yield the same "fresh" randomness.
package ldprand

import (
	"bufio"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"
)

// Source is a stream of uniform random 64-bit words. Implementations need
// not be safe for concurrent use; give each simulated user its own Source.
type Source interface {
	Uint64() uint64
}

// Crypto is a Source backed by crypto/rand with buffering. It is safe for
// concurrent use. Reads that fail panic: an LDP client that cannot obtain
// randomness must not send anything at all, so there is no meaningful way
// to continue.
type Crypto struct {
	mu sync.Mutex
	r  *bufio.Reader
}

// NewCrypto returns a buffered CSPRNG source.
func NewCrypto() *Crypto {
	return &Crypto{r: bufio.NewReaderSize(rand.Reader, 4096)}
}

// Uint64 returns a uniformly random 64-bit word from the system CSPRNG.
func (c *Crypto) Uint64() uint64 {
	var buf [8]byte
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.r.Read(buf[:]); err != nil {
		panic("ldprand: crypto/rand failed: " + err.Error())
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// SplitMix64 is a tiny, fast, seedable generator (Steele et al.). It is
// used to fan out seeds and as the deterministic source in tests. The zero
// value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a deterministic source with the given seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 advances the generator and returns the next word.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PCG64 is a permuted congruential generator (PCG-XSL-RR 128/64,
// O'Neill 2014) offering a longer period than SplitMix64 for large
// simulations while remaining allocation free.
type PCG64 struct {
	hi, lo uint64
}

// NewPCG64 returns a PCG64 seeded from two words. Matching seeds produce
// matching streams.
func NewPCG64(seedHi, seedLo uint64) *PCG64 {
	p := &PCG64{hi: seedHi, lo: seedLo}
	p.Uint64() // decorrelate the first output from the raw seed
	return p
}

// Uint64 advances the 128-bit LCG state and returns a permuted output.
func (p *PCG64) Uint64() uint64 {
	const mulHi, mulLo = 2549297995355413924, 4865540595714422341
	const incHi, incLo = 6364136223846793005, 1442695040888963407

	// 128-bit multiply-add: state = state*mul + inc.
	hi, lo := p.hi, p.lo
	carryHi, carryLo := mul128(lo, mulLo)
	carryHi += hi*mulLo + lo*mulHi
	lo2 := carryLo + incLo
	hi2 := carryHi + incHi
	if lo2 < carryLo {
		hi2++
	}
	p.hi, p.lo = hi2, lo2

	// XSL-RR output permutation.
	xored := hi2 ^ lo2
	rot := uint(hi2 >> 58)
	return xored>>rot | xored<<((64-rot)&63)
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + t>>32
	return hi, lo
}

// Keyed returns a deterministic Source derived from a secret key and a
// context string via SHA-256. It implements the "fixed random numbers"
// that Microsoft's telemetry memoization requires: a user holding key
// secret always produces the same randomness for the same context, which
// prevents averaging attacks over repeated collection rounds.
func Keyed(secret []byte, context string) Source {
	h := sha256.New()
	h.Write(secret)
	h.Write([]byte{0}) // domain-separate key from context
	h.Write([]byte(context))
	sum := h.Sum(nil)
	return NewPCG64(
		binary.LittleEndian.Uint64(sum[0:8]),
		binary.LittleEndian.Uint64(sum[8:16]),
	)
}

// NewSecret returns a fresh 32-byte user secret from the system CSPRNG.
func NewSecret() []byte {
	buf := make([]byte, 32)
	if _, err := rand.Read(buf); err != nil {
		panic("ldprand: crypto/rand failed: " + err.Error())
	}
	return buf
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func Float64(s Source) float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p. Values of p outside [0, 1]
// are clamped.
func Bernoulli(s Source, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return Float64(s) < p
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Modulo bias is removed by rejection sampling.
func Intn(s Source, n int) int {
	if n <= 0 {
		panic("ldprand: Intn with non-positive n")
	}
	un := uint64(n)
	if un&(un-1) == 0 { // power of two: mask is exact
		return int(s.Uint64() & (un - 1))
	}
	// Reject the tail of the 64-bit range that would bias small residues.
	limit := (^uint64(0)) - (^uint64(0))%un
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % un)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func Int63(s Source) int64 {
	return int64(s.Uint64() >> 1)
}

// Shuffle permutes the first n elements using the Fisher–Yates algorithm,
// calling swap(i, j) for each exchange.
func Shuffle(s Source, n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := Intn(s, i+1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func Perm(s Source, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	Shuffle(s, n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Normal returns a standard normal variate via the Box–Muller transform.
func Normal(s Source) float64 {
	// Draw u in (0,1] so the logarithm is finite.
	u := 1.0 - Float64(s)
	v := Float64(s)
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Exponential returns an Exp(1) variate (mean 1).
func Exponential(s Source) float64 {
	u := 1.0 - Float64(s) // in (0, 1]
	return -math.Log(u)
}

// Laplace returns a Laplace(0, b) variate, the noise distribution of the
// central-DP baseline.
func Laplace(s Source, b float64) float64 {
	u := Float64(s) - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}
