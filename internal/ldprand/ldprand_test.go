package ldprand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: %d != %d", i, got, want)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for SplitMix64 with seed 1234567.
	s := NewSplitMix64(1234567)
	first := s.Uint64()
	s2 := NewSplitMix64(1234567)
	if got := s2.Uint64(); got != first {
		t.Fatalf("same seed diverged: %d vs %d", got, first)
	}
	if first == 0 {
		t.Fatal("suspicious zero output for nonzero seed")
	}
}

func TestPCG64Deterministic(t *testing.T) {
	a := NewPCG64(1, 2)
	b := NewPCG64(1, 2)
	c := NewPCG64(1, 3)
	same, diff := true, false
	for i := 0; i < 64; i++ {
		av := a.Uint64()
		if av != b.Uint64() {
			same = false
		}
		if av != c.Uint64() {
			diff = true
		}
	}
	if !same {
		t.Error("equal seeds must produce equal streams")
	}
	if !diff {
		t.Error("different seeds should produce different streams")
	}
}

func TestCryptoProducesVariedOutput(t *testing.T) {
	c := NewCrypto()
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		seen[c.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("CSPRNG produced only %d distinct values in 64 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSplitMix64(7)
	for i := 0; i < 10000; i++ {
		f := Float64(s)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestBernoulliCalibration(t *testing.T) {
	s := NewSplitMix64(99)
	const n = 200000
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if Bernoulli(s, p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency %v, want within 0.01", p, got)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := NewSplitMix64(1)
	for i := 0; i < 100; i++ {
		if Bernoulli(s, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(s, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if Bernoulli(s, -0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !Bernoulli(s, 1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	s := NewSplitMix64(5)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := Intn(s, n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnUniform(t *testing.T) {
	s := NewSplitMix64(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[Intn(s, n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: %d draws, want about %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Intn(NewSplitMix64(0), 0)
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSplitMix64(3)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := Perm(s, n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestKeyedDeterministicPerContext(t *testing.T) {
	secret := []byte("user-secret-0123456789abcdef0123")
	a := Keyed(secret, "counter:day")
	b := Keyed(secret, "counter:day")
	c := Keyed(secret, "counter:night")
	sameCount, diffSeen := 0, false
	for i := 0; i < 32; i++ {
		av := a.Uint64()
		if av == b.Uint64() {
			sameCount++
		}
		if av != c.Uint64() {
			diffSeen = true
		}
	}
	if sameCount != 32 {
		t.Error("same (secret, context) must reproduce the same stream")
	}
	if !diffSeen {
		t.Error("different contexts should give different streams")
	}
}

func TestKeyedDiffersPerSecret(t *testing.T) {
	a := Keyed([]byte("secret-a"), "ctx")
	b := Keyed([]byte("secret-b"), "ctx")
	diff := false
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Error("different secrets should give different streams")
	}
}

func TestNewSecretUnique(t *testing.T) {
	a, b := NewSecret(), NewSecret()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("secret lengths %d, %d; want 32", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two fresh secrets are identical")
	}
}

func TestNormalMoments(t *testing.T) {
	s := NewSplitMix64(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Normal(s)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v, want about 1", variance)
	}
}

func TestLaplaceMoments(t *testing.T) {
	s := NewSplitMix64(321)
	const n = 200000
	const b = 2.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Laplace(s, b)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("laplace mean %v, want about 0", mean)
	}
	if math.Abs(variance-2*b*b) > 0.4 {
		t.Errorf("laplace variance %v, want about %v", variance, 2*b*b)
	}
}

func TestExponentialMean(t *testing.T) {
	s := NewSplitMix64(55)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		x := Exponential(s)
		if x < 0 {
			t.Fatalf("negative exponential draw %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Errorf("exponential mean %v, want about 1", mean)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := NewSplitMix64(8)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	Shuffle(s, len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle changed multiset, sum=%d", sum)
	}
}

func BenchmarkCryptoUint64(b *testing.B) {
	c := NewCrypto()
	for i := 0; i < b.N; i++ {
		c.Uint64()
	}
}

func BenchmarkSplitMix64(b *testing.B) {
	s := NewSplitMix64(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkPCG64(b *testing.B) {
	s := NewPCG64(1, 2)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}
