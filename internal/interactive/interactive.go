// Package interactive implements multi-round LDP protocols, the first
// open direction the tutorial highlights (§1.4): the aggregator poses
// new queries in light of previous answers, splitting each user's
// budget across rounds.
//
// Two protocols are provided:
//
//   - Quantile search: an interactive bisection over a numeric range.
//     Each round asks a fresh user group the threshold question
//     "is your value below t?" through randomized response, and the
//     next threshold depends on the previous answer — something a
//     single non-interactive round cannot do without paying for every
//     possible threshold at once.
//
//   - Two-phase frequency refinement: round one spends half the users
//     on a coarse pass over the full domain to find a small candidate
//     set; round two asks the remaining users a GRR question restricted
//     to those candidates (plus "other"), whose variance depends on the
//     small candidate count rather than the full domain size.
package interactive

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/freq"
	"repro/internal/ldprand"
)

// QuantileParams configures interactive quantile search over values in
// [Lo, Hi].
type QuantileParams struct {
	Epsilon float64 // per-user budget (each user answers one round)
	Lo, Hi  float64 // public value range
	Rounds  int     // bisection depth
	Q       float64 // target quantile in (0,1), e.g. 0.5 for the median
}

// Validate checks parameter ranges.
func (p QuantileParams) Validate() error {
	switch {
	case p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0):
		return fmt.Errorf("interactive: epsilon must be positive and finite")
	case p.Hi <= p.Lo:
		return fmt.Errorf("interactive: need Lo < Hi, got [%v, %v]", p.Lo, p.Hi)
	case p.Rounds < 1 || p.Rounds > 40:
		return fmt.Errorf("interactive: Rounds must be in [1,40], got %d", p.Rounds)
	case p.Q <= 0 || p.Q >= 1:
		return fmt.Errorf("interactive: Q must be in (0,1), got %v", p.Q)
	}
	return nil
}

// Quantile estimates the Q-quantile of the users' values by
// interactive bisection. Users are partitioned across rounds, so each
// individual answers exactly one randomized threshold question with
// the full budget — the total privacy cost per user stays ε.
func Quantile(params QuantileParams, values []float64, src ldprand.Source) (float64, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	if len(values) == 0 {
		return 0, fmt.Errorf("interactive: no values")
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	// Shuffle users into round groups.
	order := ldprand.Perm(src, len(values))
	perRound := len(values) / params.Rounds
	if perRound == 0 {
		return 0, fmt.Errorf("interactive: %d users cannot fill %d rounds", len(values), params.Rounds)
	}

	lo, hi := params.Lo, params.Hi
	for round := 0; round < params.Rounds; round++ {
		t := (lo + hi) / 2
		rr := freq.NewBinaryRR(params.Epsilon, src)
		start := round * perRound
		end := start + perRound
		if round == params.Rounds-1 {
			end = len(values)
		}
		for _, idx := range order[start:end] {
			ans := 0
			if values[idx] < t {
				ans = 1
			}
			rr.Collect(ans)
		}
		below, _ := rr.EstimateProportion(0.05)
		if below < params.Q {
			lo = t
		} else {
			hi = t
		}
	}
	return (lo + hi) / 2, nil
}

// Median estimates the median: Quantile with Q = 1/2.
func Median(epsilon, lo, hi float64, rounds int, values []float64, src ldprand.Source) (float64, error) {
	return Quantile(QuantileParams{Epsilon: epsilon, Lo: lo, Hi: hi, Rounds: rounds, Q: 0.5}, values, src)
}

// RefineParams configures two-phase frequency refinement.
type RefineParams struct {
	Epsilon    float64 // per-user budget (each user answers one phase)
	Domain     int     // full domain size
	Candidates int     // candidate set size kept after phase one
}

// Validate checks parameter ranges.
func (p RefineParams) Validate() error {
	switch {
	case p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0):
		return fmt.Errorf("interactive: epsilon must be positive and finite")
	case p.Domain < 4:
		return fmt.Errorf("interactive: domain must be at least 4, got %d", p.Domain)
	case p.Candidates < 1 || p.Candidates >= p.Domain:
		return fmt.Errorf("interactive: Candidates must be in [1,Domain), got %d", p.Candidates)
	}
	return nil
}

// RefineResult reports the two-phase estimates.
type RefineResult struct {
	Candidates []int     // domain values kept after phase one, sorted
	Counts     []float64 // phase-two estimated counts, scaled to the population
}

// Refine runs the two-phase protocol: phase one (first half of users)
// runs OLH over the full domain and keeps the top candidates; phase
// two (second half) answers GRR over candidates+other with far lower
// variance than a full-domain pass.
func Refine(params RefineParams, values []int, src ldprand.Source) (RefineResult, error) {
	if err := params.Validate(); err != nil {
		return RefineResult{}, err
	}
	for _, v := range values {
		if v < 0 || v >= params.Domain {
			return RefineResult{}, fmt.Errorf("interactive: value %d outside domain [0,%d)", v, params.Domain)
		}
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	n := len(values)
	if n < 4 {
		return RefineResult{}, fmt.Errorf("interactive: need at least 4 users, got %d", n)
	}
	order := ldprand.Perm(src, n)
	half := n / 2

	// Phase one: coarse full-domain pass.
	coarse := freq.NewOLH(params.Epsilon, params.Domain, src)
	for _, idx := range order[:half] {
		coarse.Collect(values[idx])
	}
	counts := coarse.EstimateCounts()
	idxs := make([]int, params.Domain)
	for i := range idxs {
		idxs[i] = i
	}
	sort.SliceStable(idxs, func(a, b int) bool { return counts[idxs[a]] > counts[idxs[b]] })
	cands := append([]int(nil), idxs[:params.Candidates]...)
	sort.Ints(cands)
	candIndex := make(map[int]int, len(cands))
	for i, c := range cands {
		candIndex[c] = i
	}

	// Phase two: GRR over candidates + "other".
	other := len(cands)
	fine := freq.NewGRR(params.Epsilon, len(cands)+1, src)
	for _, idx := range order[half:] {
		slot, ok := candIndex[values[idx]]
		if !ok {
			slot = other
		}
		fine.Collect(slot)
	}
	est := fine.EstimateCounts()
	phase2 := n - half
	scale := float64(n) / float64(phase2)
	out := make([]float64, len(cands))
	for i := range cands {
		out[i] = est[i] * scale
	}
	return RefineResult{Candidates: cands, Counts: out}, nil
}

// RefinementGain returns the analytic variance ratio between a
// single-round full-domain GRR pass with n users and the phase-two
// restricted GRR with n/2 users — the quantity that makes the
// interactive protocol worthwhile for small candidate sets.
func RefinementGain(epsilon float64, domain, candidates, n int) float64 {
	full := freq.NewGRR(epsilon, domain, ldprand.NewSplitMix64(1)).TheoreticalVariance(n)
	restricted := freq.NewGRR(epsilon, candidates+1, ldprand.NewSplitMix64(1)).TheoreticalVariance(n / 2)
	return full / restricted
}
