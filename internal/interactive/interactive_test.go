package interactive

import (
	"math"
	"sort"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/workload"
)

func TestQuantileParamsValidate(t *testing.T) {
	good := QuantileParams{Epsilon: 1, Lo: 0, Hi: 10, Rounds: 5, Q: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []QuantileParams{
		{Epsilon: 0, Lo: 0, Hi: 1, Rounds: 3, Q: 0.5},
		{Epsilon: 1, Lo: 1, Hi: 1, Rounds: 3, Q: 0.5},
		{Epsilon: 1, Lo: 0, Hi: 1, Rounds: 0, Q: 0.5},
		{Epsilon: 1, Lo: 0, Hi: 1, Rounds: 99, Q: 0.5},
		{Epsilon: 1, Lo: 0, Hi: 1, Rounds: 3, Q: 0},
		{Epsilon: 1, Lo: 0, Hi: 1, Rounds: 3, Q: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMedianRecovery(t *testing.T) {
	src := ldprand.NewSplitMix64(1)
	// Values concentrated with a known median.
	const n = 100000
	values := make([]float64, n)
	for i := range values {
		values[i] = 20 + 8*ldprand.Normal(src) // median 20
	}
	got, err := Median(2, -50, 100, 10, values, src)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	trueMedian := sorted[n/2]
	if math.Abs(got-trueMedian) > 2.5 {
		t.Errorf("median %.2f true %.2f", got, trueMedian)
	}
}

func TestQuantile90(t *testing.T) {
	src := ldprand.NewSplitMix64(2)
	const n = 120000
	values := make([]float64, n)
	for i := range values {
		values[i] = 100 * ldprand.Float64(src) // uniform: q90 = 90
	}
	got, err := Quantile(QuantileParams{Epsilon: 2, Lo: 0, Hi: 100, Rounds: 10, Q: 0.9}, values, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-90) > 5 {
		t.Errorf("q90 estimate %.2f want about 90", got)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(QuantileParams{Epsilon: 1, Lo: 0, Hi: 1, Rounds: 3, Q: 0.5}, nil, nil); err == nil {
		t.Error("empty values accepted")
	}
	// More rounds than users.
	if _, err := Quantile(QuantileParams{Epsilon: 1, Lo: 0, Hi: 1, Rounds: 10, Q: 0.5},
		[]float64{1, 2, 3}, ldprand.NewSplitMix64(1)); err == nil {
		t.Error("3 users across 10 rounds accepted")
	}
}

func TestRefineParamsValidate(t *testing.T) {
	good := RefineParams{Epsilon: 1, Domain: 100, Candidates: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RefineParams{
		{Epsilon: 0, Domain: 100, Candidates: 5},
		{Epsilon: 1, Domain: 2, Candidates: 1},
		{Epsilon: 1, Domain: 100, Candidates: 0},
		{Epsilon: 1, Domain: 100, Candidates: 100},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRefineFindsHeavyItems(t *testing.T) {
	src := ldprand.NewSplitMix64(3)
	const d, n = 256, 80000
	zipf := workload.NewZipf(src, 2.0, 6)
	heavy := []int{17, 63, 128, 200, 254, 90}
	values := make([]int, n)
	truth := make(map[int]int)
	for i := range values {
		values[i] = heavy[zipf.Next()]
		truth[values[i]]++
	}
	res, err := Refine(RefineParams{Epsilon: 1.5, Domain: d, Candidates: 6}, values, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 6 || len(res.Counts) != 6 {
		t.Fatalf("result shape %+v", res)
	}
	// The two heaviest items must be among candidates with counts in
	// the right ballpark.
	for _, want := range []int{heavy[0], heavy[1]} {
		found := false
		for i, c := range res.Candidates {
			if c == want {
				found = true
				if math.Abs(res.Counts[i]-float64(truth[want])) > 0.35*float64(truth[want])+2000 {
					t.Errorf("item %d: estimate %.0f truth %d", want, res.Counts[i], truth[want])
				}
			}
		}
		if !found {
			t.Errorf("heavy item %d missing from candidates %v", want, res.Candidates)
		}
	}
}

func TestRefineRejectsBadInput(t *testing.T) {
	p := RefineParams{Epsilon: 1, Domain: 16, Candidates: 4}
	if _, err := Refine(p, []int{1, 2, 99}, ldprand.NewSplitMix64(1)); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if _, err := Refine(p, []int{1, 2}, ldprand.NewSplitMix64(1)); err == nil {
		t.Error("too few users accepted")
	}
}

func TestRefinementGainGrowsWithDomain(t *testing.T) {
	g1 := RefinementGain(1, 64, 8, 10000)
	g2 := RefinementGain(1, 4096, 8, 10000)
	if g2 <= g1 {
		t.Errorf("gain should grow with domain: %v vs %v", g1, g2)
	}
	if g2 < 10 {
		t.Errorf("gain %v suspiciously small for d=4096 vs 9 candidates", g2)
	}
}
