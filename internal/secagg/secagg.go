// Package secagg implements pairwise-masked secure aggregation, the
// "centralized noise via encrypted data collection" alternative the
// tutorial closes with (§1.5): instead of each user randomizing their
// value, users add pairwise cancelling masks so the server learns
// *only the sum* of the raw inputs — to which a single central-DP
// noise term is then added, recovering central accuracy O(1/ε) without
// a trusted aggregator seeing any individual value.
//
// The construction is the mask-based core of Bonawitz et al. (CCS
// 2017), simplified to the honest-but-curious, no-dropout setting: for
// every user pair (i, j), a shared secret seeds a PRG producing a mask
// m_ij; user i adds +m_ij and user j adds −m_ij, so all masks cancel
// in the sum. Arithmetic is over Z_{2^62} with fixed-point encoding.
package secagg

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ldprand"
)

// Modulus is the ring size; sums of masked values wrap modulo this.
const Modulus = uint64(1) << 62

// fixedScale converts between float64 values and ring elements.
const fixedScale = 1 << 16

// encode maps a bounded float to the ring (two's-complement style).
func encode(x float64) uint64 {
	v := int64(math.Round(x * fixedScale))
	return uint64(v) % Modulus
}

// decodeSum maps an aggregated ring element back to a float, assuming
// the true sum's magnitude is far below Modulus/fixedScale.
func decodeSum(v uint64) float64 {
	// Values in the upper half of the ring are negative sums.
	if v >= Modulus/2 {
		return -float64(Modulus-v) / fixedScale
	}
	return float64(v) / fixedScale
}

// pairSecret derives the shared seed of an ordered user pair from the
// session key. In a deployment this comes from a Diffie–Hellman
// exchange; here the key agreement is abstracted to a session secret
// both parties hold, which preserves the aggregation behaviour the
// experiments need.
func pairSecret(session []byte, i, j int) ldprand.Source {
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	var ctx [16]byte
	binary.LittleEndian.PutUint64(ctx[0:8], uint64(lo))
	binary.LittleEndian.PutUint64(ctx[8:16], uint64(hi))
	return ldprand.Keyed(session, "secagg-pair:"+string(ctx[:]))
}

// Client is one secure-aggregation participant.
type Client struct {
	id      int
	n       int
	session []byte
}

// NewClient returns participant id of n, holding the session secret.
func NewClient(id, n int, session []byte) (*Client, error) {
	if n < 2 {
		return nil, fmt.Errorf("secagg: need at least 2 participants, got %d", n)
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("secagg: id %d out of range [0,%d)", id, n)
	}
	if len(session) == 0 {
		return nil, fmt.Errorf("secagg: empty session secret")
	}
	return &Client{id: id, n: n, session: session}, nil
}

// Mask returns the client's masked contribution for value x (which
// must be bounded; the caller enforces its own clipping policy).
// The same (session, id, n) always produces the same masks, so a
// report can be recomputed idempotently.
func (c *Client) Mask(x float64) uint64 {
	v := encode(x)
	for j := 0; j < c.n; j++ {
		if j == c.id {
			continue
		}
		m := pairSecret(c.session, c.id, j).Uint64() % Modulus
		if c.id < j {
			v = (v + m) % Modulus
		} else {
			v = (v + Modulus - m) % Modulus
		}
	}
	return v
}

// Aggregate sums the masked reports of all n participants; the masks
// cancel, leaving the exact sum of the raw values.
func Aggregate(reports []uint64) float64 {
	var sum uint64
	for _, r := range reports {
		sum = (sum + r) % Modulus
	}
	return decodeSum(sum)
}

// PrivateSum runs the full §1.5 pipeline: each user's value is masked,
// the server aggregates, and a single Laplace(Δ/ε) noise term makes
// the released sum ε-DP with central accuracy. values are clipped to
// [−clip, clip], giving sensitivity 2·clip.
func PrivateSum(epsilon, clip float64, values []float64, session []byte, noise ldprand.Source) (float64, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return 0, fmt.Errorf("secagg: epsilon must be positive and finite")
	}
	if clip <= 0 {
		return 0, fmt.Errorf("secagg: clip must be positive")
	}
	n := len(values)
	if n < 2 {
		return 0, fmt.Errorf("secagg: need at least 2 participants")
	}
	if noise == nil {
		noise = ldprand.NewCrypto()
	}
	reports := make([]uint64, n)
	for i, x := range values {
		if x > clip {
			x = clip
		}
		if x < -clip {
			x = -clip
		}
		client, err := NewClient(i, n, session)
		if err != nil {
			return 0, err
		}
		reports[i] = client.Mask(x)
	}
	sum := Aggregate(reports)
	return sum + ldprand.Laplace(noise, 2*clip/epsilon), nil
}
