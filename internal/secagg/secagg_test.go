package secagg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ldprand"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, x := range []float64{0, 1, -1, 3.5, -1234.0625, 1e6} {
		if got := decodeSum(encode(x)); math.Abs(got-x) > 1.0/fixedScale {
			t.Errorf("round trip %v -> %v", x, got)
		}
	}
}

func TestMasksCancelExactly(t *testing.T) {
	session := []byte("session-secret-123")
	const n = 7
	values := []float64{1.5, -2.25, 3, 0, 10.75, -4, 0.125}
	reports := make([]uint64, n)
	var want float64
	for i, x := range values {
		c, err := NewClient(i, n, session)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = c.Mask(x)
		want += x
	}
	got := Aggregate(reports)
	if math.Abs(got-want) > float64(n)/fixedScale {
		t.Fatalf("aggregate %v want %v", got, want)
	}
}

func TestMaskedReportsHideValues(t *testing.T) {
	// A single masked report must look nothing like the raw value: the
	// pairwise masks are full-range ring elements.
	session := []byte("s")
	c0, _ := NewClient(0, 3, session)
	raw := encode(5)
	masked := c0.Mask(5)
	if masked == raw {
		t.Fatal("masked report equals raw encoding")
	}
	// Different values produce different reports under the same masks.
	if c0.Mask(5) != masked {
		t.Fatal("masking not deterministic for fixed session")
	}
	if c0.Mask(6) == masked {
		t.Fatal("different values collide")
	}
}

func TestMaskCancellationProperty(t *testing.T) {
	// For random participant counts and integer-ish values, the sum of
	// masked reports always equals the true sum.
	f := func(seed uint64, nRaw uint8, scale uint16) bool {
		n := int(nRaw%14) + 2
		src := ldprand.NewSplitMix64(seed)
		session := []byte{byte(seed), byte(seed >> 8), 1}
		values := make([]float64, n)
		var want float64
		reports := make([]uint64, n)
		for i := range values {
			values[i] = float64(int(src.Uint64()%uint64(scale+1))) - float64(scale)/2
			want += values[i]
			c, err := NewClient(i, n, session)
			if err != nil {
				return false
			}
			reports[i] = c.Mask(values[i])
		}
		return math.Abs(Aggregate(reports)-want) < float64(n)/fixedScale+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(0, 1, []byte("s")); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewClient(5, 3, []byte("s")); err == nil {
		t.Error("id out of range accepted")
	}
	if _, err := NewClient(0, 3, nil); err == nil {
		t.Error("empty session accepted")
	}
}

func TestPrivateSumCentralAccuracy(t *testing.T) {
	// The whole point of §1.5: the noisy sum error is O(1/ε),
	// independent of n — far below the LDP O(√n/ε). Pairwise masking
	// is O(n²) session-key derivations, so the test population is kept
	// moderate.
	const n = 400
	src := ldprand.NewSplitMix64(1)
	values := make([]float64, n)
	var want float64
	for i := range values {
		values[i] = ldprand.Float64(src) // in [0,1)
		want += values[i]
	}
	got, err := PrivateSum(1.0, 1.0, values, []byte("sess"), src)
	if err != nil {
		t.Fatal(err)
	}
	// Laplace(2/1) noise: |error| beyond 20 is astronomically unlikely.
	if math.Abs(got-want) > 20 {
		t.Fatalf("private sum %v want about %v", got, want)
	}
}

func TestPrivateSumClipping(t *testing.T) {
	values := []float64{100, -100, 0.5}
	got, err := PrivateSum(50, 1, values, []byte("sess"), ldprand.NewSplitMix64(2))
	if err != nil {
		t.Fatal(err)
	}
	// Clipped sum is 1 − 1 + 0.5 = 0.5; ε=50 noise is tiny.
	if math.Abs(got-0.5) > 1 {
		t.Fatalf("clipped sum %v want about 0.5", got)
	}
}

func TestPrivateSumValidation(t *testing.T) {
	if _, err := PrivateSum(0, 1, []float64{1, 2}, []byte("s"), nil); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := PrivateSum(1, 0, []float64{1, 2}, []byte("s"), nil); err == nil {
		t.Error("clip 0 accepted")
	}
	if _, err := PrivateSum(1, 1, []float64{1}, []byte("s"), nil); err == nil {
		t.Error("single participant accepted")
	}
}
