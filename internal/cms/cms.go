// Package cms implements Apple's locally private frequency estimation
// system (§1.2(2)): the Count-Mean-Sketch (CMS) and its Hadamard
// variant (HCMS), as described in the patent application and the
// "Learning with Privacy at Scale" white paper.
//
// CMS clients pick one of k hash functions at random, one-hot encode
// their value's hash into m positions as a ±1 vector, and flip every
// coordinate independently with probability 1/(1+e^(ε/2)). HCMS sends a
// single ±1 Hadamard coefficient of that one-hot row, flipped with
// probability 1/(1+e^ε), cutting the report to one bit at the price of
// a constant-factor variance increase — the exact trade-off E5
// measures.
package cms

import (
	"fmt"
	"math"

	"repro/internal/hashutil"
	"repro/internal/ldprand"
	"repro/internal/transform"
)

// Params configures a CMS/HCMS deployment.
type Params struct {
	Epsilon float64 // privacy budget per report
	Width   int     // m: counters per hash row (power of two for HCMS)
	Hashes  int     // k: number of hash functions
	Seed    uint64  // shared hash seed
}

// Validate checks parameter ranges; forHadamard additionally requires a
// power-of-two width.
func (p Params) Validate(forHadamard bool) error {
	switch {
	case p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0):
		return fmt.Errorf("cms: epsilon must be positive and finite, got %v", p.Epsilon)
	case p.Width < 2:
		return fmt.Errorf("cms: width must be at least 2, got %d", p.Width)
	case p.Hashes < 1:
		return fmt.Errorf("cms: hashes must be at least 1, got %d", p.Hashes)
	}
	if forHadamard && p.Width&(p.Width-1) != 0 {
		return fmt.Errorf("cms: HCMS width must be a power of two, got %d", p.Width)
	}
	return nil
}

// rowSeed derives the seed of hash row j.
func (p Params) rowSeed(j int) uint64 { return p.Seed + uint64(j)*0x9e3779b97f4a7c15 }

// position returns h_j(item) in [0, Width).
func (p Params) position(j int, item []byte) int {
	return hashutil.HashBytesRange(p.rowSeed(j), item, p.Width)
}

// Report is one CMS client report: the chosen hash row and the
// perturbed ±1 vector over the row's m positions, packed as bytes with
// values 0 (for −1) and 1 (for +1).
type Report struct {
	Row  int
	Bits []byte // length Width; 1 encodes +1, 0 encodes −1
}

// Client produces CMS reports.
type Client struct {
	params Params
	flip   float64 // per-coordinate flip probability 1/(1+e^(ε/2))
	src    ldprand.Source
}

// NewClient returns a CMS client. A nil source selects crypto/rand.
func NewClient(params Params, src ldprand.Source) (*Client, error) {
	if err := params.Validate(false); err != nil {
		return nil, err
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	return &Client{
		params: params,
		flip:   1 / (1 + math.Exp(params.Epsilon/2)),
		src:    src,
	}, nil
}

// Report privatizes one item.
func (c *Client) Report(item []byte) Report {
	j := ldprand.Intn(c.src, c.params.Hashes)
	pos := c.params.position(j, item)
	bits := make([]byte, c.params.Width)
	for i := range bits {
		truth := byte(0)
		if i == pos {
			truth = 1
		}
		if ldprand.Bernoulli(c.src, c.flip) {
			truth ^= 1
		}
		bits[i] = truth
	}
	return Report{Row: j, Bits: bits}
}

// Server aggregates CMS reports into a debiased sketch.
type Server struct {
	params Params
	cEps   float64 // debiasing constant (e^(ε/2)+1)/(e^(ε/2)−1)
	rows   [][]float64
	n      int
}

// NewServer returns a CMS aggregator.
func NewServer(params Params) (*Server, error) {
	if err := params.Validate(false); err != nil {
		return nil, err
	}
	e2 := math.Exp(params.Epsilon / 2)
	rows := make([][]float64, params.Hashes)
	for i := range rows {
		rows[i] = make([]float64, params.Width)
	}
	return &Server{params: params, cEps: (e2 + 1) / (e2 - 1), rows: rows, n: 0}, nil
}

// Add folds one report into the sketch, debiasing it so every cell is
// an unbiased estimate of the true count landing there.
func (s *Server) Add(r Report) error {
	if r.Row < 0 || r.Row >= s.params.Hashes {
		return fmt.Errorf("cms: row %d out of range [0,%d)", r.Row, s.params.Hashes)
	}
	if len(r.Bits) != s.params.Width {
		return fmt.Errorf("cms: report width %d, want %d", len(r.Bits), s.params.Width)
	}
	k := float64(s.params.Hashes)
	for i, b := range r.Bits {
		v := -1.0
		if b == 1 {
			v = 1
		} else if b != 0 {
			return fmt.Errorf("cms: report bit %d has value %d, want 0 or 1", i, b)
		}
		// Debias: x̃ = k·(c_ε/2·v + 1/2).
		s.rows[r.Row][i] += k * (s.cEps/2*v + 0.5)
	}
	s.n++
	return nil
}

// Collected returns the number of reports aggregated.
func (s *Server) Collected() int { return s.n }

// Estimate returns the unbiased frequency estimate of item:
// (m/(m−1)) · (mean over rows of the item's cell − n/m).
func (s *Server) Estimate(item []byte) float64 {
	m := float64(s.params.Width)
	var sum float64
	for j := 0; j < s.params.Hashes; j++ {
		sum += s.rows[j][s.params.position(j, item)]
	}
	mean := sum / float64(s.params.Hashes)
	return (m / (m - 1)) * (mean - float64(s.n)/m)
}

// TheoreticalVariance returns the approximate variance of a single
// count estimate after n reports. Each user contributes
// (c_ε/2)·(±1) + 1/2 to the estimator through its chosen row, giving
// per-user variance about (c_ε²−1)/4.
func (s *Server) TheoreticalVariance(n int) float64 {
	return float64(n) * (s.cEps*s.cEps - 1) / 4
}

// ReportBits returns the report size in bits: m coordinates.
func (s *Server) ReportBits() int { return s.params.Width }

// HadamardReport is one HCMS report: hash row, coefficient index, and
// the perturbed ±1 coefficient.
type HadamardReport struct {
	Row   int
	Index int
	Sign  int8 // ±1
}

// HadamardClient produces HCMS (one-bit) reports.
type HadamardClient struct {
	params Params
	flip   float64 // 1/(1+e^ε)
	src    ldprand.Source
}

// NewHadamardClient returns an HCMS client; Width must be a power of
// two.
func NewHadamardClient(params Params, src ldprand.Source) (*HadamardClient, error) {
	if err := params.Validate(true); err != nil {
		return nil, err
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	return &HadamardClient{
		params: params,
		flip:   1 / (1 + math.Exp(params.Epsilon)),
		src:    src,
	}, nil
}

// Report privatizes one item into a single ±1 coefficient.
func (c *HadamardClient) Report(item []byte) HadamardReport {
	j := ldprand.Intn(c.src, c.params.Hashes)
	pos := c.params.position(j, item)
	l := ldprand.Intn(c.src, c.params.Width)
	sign := int8(1)
	if transform.Entry(l, pos) < 0 {
		sign = -1
	}
	if ldprand.Bernoulli(c.src, c.flip) {
		sign = -sign
	}
	return HadamardReport{Row: j, Index: l, Sign: sign}
}

// HadamardServer aggregates HCMS reports.
type HadamardServer struct {
	params Params
	cEps   float64 // (e^ε+1)/(e^ε−1)
	rows   [][]float64
	n      int
}

// NewHadamardServer returns an HCMS aggregator.
func NewHadamardServer(params Params) (*HadamardServer, error) {
	if err := params.Validate(true); err != nil {
		return nil, err
	}
	e := math.Exp(params.Epsilon)
	rows := make([][]float64, params.Hashes)
	for i := range rows {
		rows[i] = make([]float64, params.Width)
	}
	return &HadamardServer{params: params, cEps: (e + 1) / (e - 1), rows: rows}, nil
}

// Add folds one report into the transformed sketch.
func (s *HadamardServer) Add(r HadamardReport) error {
	if r.Row < 0 || r.Row >= s.params.Hashes {
		return fmt.Errorf("cms: row %d out of range [0,%d)", r.Row, s.params.Hashes)
	}
	if r.Index < 0 || r.Index >= s.params.Width {
		return fmt.Errorf("cms: index %d out of range [0,%d)", r.Index, s.params.Width)
	}
	if r.Sign != 1 && r.Sign != -1 {
		return fmt.Errorf("cms: sign must be ±1, got %d", r.Sign)
	}
	// Debias: the report samples one Hadamard coefficient of the row's
	// one-hot vector. Scaling by k·m·c_ε cancels the 1/(k·m) selection
	// probability and the flip bias, so each accumulated cell is an
	// unbiased estimate of the row's full-population spectrum.
	s.rows[r.Row][r.Index] += float64(s.params.Hashes) * float64(s.params.Width) *
		s.cEps * float64(r.Sign)
	s.n++
	return nil
}

// Collected returns the number of reports aggregated.
func (s *HadamardServer) Collected() int { return s.n }

// Estimate inverts each row's Hadamard spectrum and applies the same
// count-mean debiasing as CMS.
func (s *HadamardServer) Estimate(item []byte) float64 {
	m := float64(s.params.Width)
	var sum float64
	for j := 0; j < s.params.Hashes; j++ {
		spectrum := make([]float64, s.params.Width)
		copy(spectrum, s.rows[j])
		transform.Inverse(spectrum)
		sum += spectrum[s.params.position(j, item)]
	}
	mean := sum / float64(s.params.Hashes)
	return (m / (m - 1)) * (mean - float64(s.n)/m)
}

// EstimateAll inverts every row once and returns the estimates of all
// items, far cheaper than calling Estimate per item.
func (s *HadamardServer) EstimateAll(items [][]byte) []float64 {
	m := float64(s.params.Width)
	inverted := make([][]float64, s.params.Hashes)
	for j := range inverted {
		spectrum := make([]float64, s.params.Width)
		copy(spectrum, s.rows[j])
		transform.Inverse(spectrum)
		inverted[j] = spectrum
	}
	out := make([]float64, len(items))
	for idx, item := range items {
		var sum float64
		for j := 0; j < s.params.Hashes; j++ {
			sum += inverted[j][s.params.position(j, item)]
		}
		mean := sum / float64(s.params.Hashes)
		out[idx] = (m / (m - 1)) * (mean - float64(s.n)/m)
	}
	return out
}

// ReportBits returns the payload size: 1 sign bit (row and index are
// derivable from shared randomness in a deployment, so the literature
// counts HCMS as a 1-bit mechanism).
func (s *HadamardServer) ReportBits() int { return 1 }

// TheoreticalVariance returns the approximate variance of one count
// estimate after n reports. Each user contributes ±c_ε to the averaged
// estimator, so the per-user variance is about c_ε² — the constant
// factor HCMS pays for one-bit reports.
func (s *HadamardServer) TheoreticalVariance(n int) float64 {
	return float64(n) * s.cEps * s.cEps
}
