package cms

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ldprand"
)

// TestCMSReportAlwaysValidProperty: any item under any reasonable
// parameters yields a structurally valid report the server accepts.
func TestCMSReportAlwaysValidProperty(t *testing.T) {
	f := func(seed uint64, item []byte, widthRaw, hashesRaw uint8) bool {
		p := Params{
			Epsilon: 2,
			Width:   int(widthRaw%62) + 2,
			Hashes:  int(hashesRaw%16) + 1,
			Seed:    seed,
		}
		client, err := NewClient(p, ldprand.NewSplitMix64(seed))
		if err != nil {
			return false
		}
		server, err := NewServer(p)
		if err != nil {
			return false
		}
		return server.Add(client.Report(item)) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHCMSReportAlwaysValidProperty: same for the Hadamard variant
// with power-of-two widths.
func TestHCMSReportAlwaysValidProperty(t *testing.T) {
	f := func(seed uint64, item []byte, widthExpRaw, hashesRaw uint8) bool {
		p := Params{
			Epsilon: 2,
			Width:   1 << (uint(widthExpRaw%7) + 1), // 2..128
			Hashes:  int(hashesRaw%16) + 1,
			Seed:    seed,
		}
		client, err := NewHadamardClient(p, ldprand.NewSplitMix64(seed))
		if err != nil {
			return false
		}
		server, err := NewHadamardServer(p)
		if err != nil {
			return false
		}
		return server.Add(client.Report(item)) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCMSPrivacyFlipBound: the per-coordinate flip probability must
// correspond to exactly ε/2 per differing coordinate (two coordinates
// differ between any two one-hot rows).
func TestCMSPrivacyFlipBound(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2, 4} {
		c, err := NewClient(Params{Epsilon: eps, Width: 32, Hashes: 4}, ldprand.NewSplitMix64(1))
		if err != nil {
			t.Fatal(err)
		}
		keep := 1 - c.flip
		ratio := keep / c.flip
		if math.Abs(ratio-math.Exp(eps/2)) > 1e-9*math.Exp(eps/2) {
			t.Errorf("eps=%v: per-coordinate ratio %v want e^(eps/2)=%v",
				eps, ratio, math.Exp(eps/2))
		}
	}
}

// TestHCMSPrivacyFlipBound: one coordinate ⇒ the full ε on the single
// transmitted bit.
func TestHCMSPrivacyFlipBound(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 3} {
		c, err := NewHadamardClient(Params{Epsilon: eps, Width: 32, Hashes: 4}, ldprand.NewSplitMix64(1))
		if err != nil {
			t.Fatal(err)
		}
		keep := 1 - c.flip
		ratio := keep / c.flip
		if math.Abs(ratio-math.Exp(eps)) > 1e-9*math.Exp(eps) {
			t.Errorf("eps=%v: bit ratio %v want e^eps=%v", eps, ratio, math.Exp(eps))
		}
	}
}

// TestCMSEstimateAdditiveAcrossServers: two servers' sketches folded
// into a third give the same estimate as one server seeing everything,
// because aggregation is a sum of debiased reports — the sharding
// property deployments rely on.
func TestCMSEstimateAdditiveAcrossServers(t *testing.T) {
	p := Params{Epsilon: 2, Width: 64, Hashes: 8, Seed: 7}
	client, _ := NewClient(p, ldprand.NewSplitMix64(2))
	all, _ := NewServer(p)
	s1, _ := NewServer(p)
	s2, _ := NewServer(p)
	for i := 0; i < 2000; i++ {
		r := client.Report(item(i % 10))
		if err := all.Add(r); err != nil {
			t.Fatal(err)
		}
		target := s1
		if i%2 == 1 {
			target = s2
		}
		if err := target.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	// Shard merge: cell-wise sum plus report-count sum.
	merged, _ := NewServer(p)
	for j := 0; j < p.Hashes; j++ {
		for i := 0; i < p.Width; i++ {
			merged.rows[j][i] = s1.rows[j][i] + s2.rows[j][i]
		}
	}
	merged.n = s1.n + s2.n
	for v := 0; v < 10; v++ {
		a := all.Estimate(item(v))
		b := merged.Estimate(item(v))
		if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
			t.Fatalf("item %d: single %v sharded %v", v, a, b)
		}
	}
}
