package cms

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/workload"
)

func item(i int) []byte { return []byte(fmt.Sprintf("word-%d", i)) }

func cmsParams() Params {
	return Params{Epsilon: 4, Width: 256, Hashes: 16, Seed: 99}
}

func TestParamsValidate(t *testing.T) {
	good := cmsParams()
	if err := good.Validate(false); err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(true); err != nil {
		t.Fatal(err) // 256 is a power of two
	}
	bad := good
	bad.Width = 100
	if err := bad.Validate(true); err == nil {
		t.Error("non-power-of-two width accepted for HCMS")
	}
	if err := bad.Validate(false); err != nil {
		t.Error("width 100 should be fine for plain CMS")
	}
	for _, p := range []Params{
		{Epsilon: 0, Width: 16, Hashes: 2},
		{Epsilon: math.Inf(1), Width: 16, Hashes: 2},
		{Epsilon: 1, Width: 1, Hashes: 2},
		{Epsilon: 1, Width: 16, Hashes: 0},
	} {
		if err := p.Validate(false); err == nil {
			t.Errorf("invalid params accepted: %+v", p)
		}
	}
}

func TestCMSReportShape(t *testing.T) {
	p := cmsParams()
	c, err := NewClient(p, ldprand.NewSplitMix64(1))
	if err != nil {
		t.Fatal(err)
	}
	r := c.Report(item(0))
	if r.Row < 0 || r.Row >= p.Hashes {
		t.Fatalf("row %d out of range", r.Row)
	}
	if len(r.Bits) != p.Width {
		t.Fatalf("width %d want %d", len(r.Bits), p.Width)
	}
	for _, b := range r.Bits {
		if b != 0 && b != 1 {
			t.Fatalf("bit value %d", b)
		}
	}
}

func TestCMSFlipCalibration(t *testing.T) {
	p := Params{Epsilon: 2, Width: 64, Hashes: 4, Seed: 5}
	c, _ := NewClient(p, ldprand.NewSplitMix64(2))
	// Count how often a known non-position coordinate reads 1: should be
	// the flip probability 1/(1+e^(ε/2)).
	const n = 50000
	ones := 0
	for i := 0; i < n; i++ {
		r := c.Report(item(1))
		pos := p.position(r.Row, item(1))
		probe := (pos + 1) % p.Width
		if r.Bits[probe] == 1 {
			ones++
		}
	}
	got := float64(ones) / n
	want := 1 / (1 + math.Exp(p.Epsilon/2))
	if math.Abs(got-want) > 0.01 {
		t.Errorf("off-position one rate %.4f want %.4f", got, want)
	}
}

func TestCMSEndToEndAccuracy(t *testing.T) {
	p := cmsParams()
	client, _ := NewClient(p, ldprand.NewSplitMix64(3))
	server, _ := NewServer(p)
	const n, heavy = 30000, 0.3
	words := workload.Words(50)
	src := ldprand.NewSplitMix64(4)
	truth := make(map[string]int)
	for i := 0; i < n; i++ {
		var w string
		if ldprand.Bernoulli(src, heavy) {
			w = words[0]
		} else {
			w = words[1+ldprand.Intn(src, len(words)-1)]
		}
		truth[w]++
		if err := server.Add(client.Report([]byte(w))); err != nil {
			t.Fatal(err)
		}
	}
	if server.Collected() != n {
		t.Fatalf("collected %d", server.Collected())
	}
	got := server.Estimate([]byte(words[0]))
	want := float64(truth[words[0]])
	tol := 4*math.Sqrt(server.TheoreticalVariance(n)) + 0.02*float64(n)
	if math.Abs(got-want) > tol {
		t.Errorf("heavy word estimate %.0f want %.0f (tol %.0f)", got, want, tol)
	}
	// An absent word should estimate near zero.
	absent := server.Estimate([]byte("zzzzzz"))
	if math.Abs(absent) > tol {
		t.Errorf("absent word estimate %.0f want about 0", absent)
	}
}

func TestCMSServerRejectsBadReports(t *testing.T) {
	p := cmsParams()
	s, _ := NewServer(p)
	if err := s.Add(Report{Row: -1, Bits: make([]byte, p.Width)}); err == nil {
		t.Error("negative row accepted")
	}
	if err := s.Add(Report{Row: 0, Bits: make([]byte, 3)}); err == nil {
		t.Error("short report accepted")
	}
	bad := Report{Row: 0, Bits: make([]byte, p.Width)}
	bad.Bits[0] = 7
	if err := s.Add(bad); err == nil {
		t.Error("non-binary bit accepted")
	}
}

func TestHCMSReportShape(t *testing.T) {
	p := cmsParams()
	c, err := NewHadamardClient(p, ldprand.NewSplitMix64(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r := c.Report(item(i))
		if r.Row < 0 || r.Row >= p.Hashes || r.Index < 0 || r.Index >= p.Width {
			t.Fatalf("report out of range: %+v", r)
		}
		if r.Sign != 1 && r.Sign != -1 {
			t.Fatalf("sign %d", r.Sign)
		}
	}
}

func TestHCMSEndToEndAccuracy(t *testing.T) {
	p := Params{Epsilon: 4, Width: 128, Hashes: 8, Seed: 11}
	client, _ := NewHadamardClient(p, ldprand.NewSplitMix64(6))
	server, _ := NewHadamardServer(p)
	const n = 60000
	words := workload.Words(30)
	src := ldprand.NewSplitMix64(7)
	truth := make(map[string]int)
	for i := 0; i < n; i++ {
		var w string
		if ldprand.Bernoulli(src, 0.4) {
			w = words[0]
		} else {
			w = words[1+ldprand.Intn(src, len(words)-1)]
		}
		truth[w]++
		if err := server.Add(client.Report([]byte(w))); err != nil {
			t.Fatal(err)
		}
	}
	got := server.Estimate([]byte(words[0]))
	want := float64(truth[words[0]])
	tol := 4*math.Sqrt(server.TheoreticalVariance(n)) + 0.02*float64(n)
	if math.Abs(got-want) > tol {
		t.Errorf("estimate %.0f want %.0f (tol %.0f)", got, want, tol)
	}
}

func TestHCMSEstimateAllMatchesEstimate(t *testing.T) {
	p := Params{Epsilon: 2, Width: 64, Hashes: 4, Seed: 13}
	client, _ := NewHadamardClient(p, ldprand.NewSplitMix64(8))
	server, _ := NewHadamardServer(p)
	for i := 0; i < 2000; i++ {
		_ = server.Add(client.Report(item(i % 5)))
	}
	items := [][]byte{item(0), item(1), item(2)}
	all := server.EstimateAll(items)
	for i, it := range items {
		if one := server.Estimate(it); math.Abs(one-all[i]) > 1e-6 {
			t.Errorf("EstimateAll[%d]=%v but Estimate=%v", i, all[i], one)
		}
	}
}

func TestHCMSServerRejectsBadReports(t *testing.T) {
	p := cmsParams()
	s, _ := NewHadamardServer(p)
	for _, r := range []HadamardReport{
		{Row: -1, Index: 0, Sign: 1},
		{Row: 0, Index: p.Width, Sign: 1},
		{Row: 0, Index: 0, Sign: 0},
	} {
		if err := s.Add(r); err == nil {
			t.Errorf("bad report accepted: %+v", r)
		}
	}
}

func TestHCMSOneBit(t *testing.T) {
	s, _ := NewHadamardServer(cmsParams())
	if s.ReportBits() != 1 {
		t.Fatalf("HCMS payload %d bits, want 1", s.ReportBits())
	}
	cs, _ := NewServer(cmsParams())
	if cs.ReportBits() != cmsParams().Width {
		t.Fatalf("CMS payload %d bits, want %d", cs.ReportBits(), cmsParams().Width)
	}
}

func TestConstructorsRejectBadParams(t *testing.T) {
	bad := Params{Epsilon: -1, Width: 16, Hashes: 2}
	if _, err := NewClient(bad, nil); err == nil {
		t.Error("NewClient accepted bad params")
	}
	if _, err := NewServer(bad); err == nil {
		t.Error("NewServer accepted bad params")
	}
	odd := Params{Epsilon: 1, Width: 100, Hashes: 2}
	if _, err := NewHadamardClient(odd, nil); err == nil {
		t.Error("NewHadamardClient accepted non-power-of-two width")
	}
	if _, err := NewHadamardServer(odd); err == nil {
		t.Error("NewHadamardServer accepted non-power-of-two width")
	}
}
