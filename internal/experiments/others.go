package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/freq"
	"repro/internal/graph"
	"repro/internal/heavyhitters"
	"repro/internal/hybrid"
	"repro/internal/ldprand"
	"repro/internal/marginal"
	"repro/internal/spatial"
	"repro/internal/stats"
	"repro/internal/workload"
)

// runE6 reproduces the heavy-hitter comparison: PEM and SFP find the
// frequent items of a huge implicit domain; the full-domain baseline
// is only feasible when the domain is enumerable.
func runE6(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "eps\tn\tmethod\ttop5_recall\ttop5_f1")
	const bits = 16 // 65k item domain for PEM; baseline uses 8 bits
	for _, eps := range []float64{2, 4} {
		for _, n := range []int{cfg.Users, cfg.Users * 2} {
			// PEM over the 16-bit domain.
			recall, f1 := pemQuality(cfg, eps, bits, n)
			fmt.Fprintf(tw, "%.0f\t%d\tPEM(16bit)\t%.2f\t%.2f\n", eps, n, recall, f1)
			// SFP over 6-letter words (26^6 ≈ 3·10^8 domain).
			recall, f1 = sfpQuality(cfg, eps, n)
			fmt.Fprintf(tw, "%.0f\t%d\tSFP(words)\t%.2f\t%.2f\n", eps, n, recall, f1)
			// Full-domain baseline, 8-bit domain only.
			recall, f1 = baselineQuality(cfg, eps, 8, n)
			fmt.Fprintf(tw, "%.0f\t%d\tOLH(8bit,full)\t%.2f\t%.2f\n", eps, n, recall, f1)
		}
	}
	return tw.Flush()
}

func heavyValues(src ldprand.Source, bits, n int) ([]uint64, []uint64) {
	domain := 1 << uint(bits)
	heavy := []uint64{
		uint64(domain * 3 / 7), uint64(domain * 5 / 9), uint64(domain / 13),
		uint64(domain * 7 / 11), uint64(domain * 2 / 5),
	}
	zipf := workload.NewZipf(src, 2.0, len(heavy)+1)
	out := make([]uint64, n)
	for i := range out {
		k := zipf.Next()
		if k < len(heavy) {
			out[i] = heavy[k]
		} else {
			out[i] = uint64(ldprand.Intn(src, domain))
		}
	}
	return out, heavy
}

func hitQuality(found []uint64, truth []uint64) (recall, f1 float64) {
	fi := make([]int, len(found))
	for i, v := range found {
		fi[i] = int(v)
	}
	ti := make([]int, len(truth))
	for i, v := range truth {
		ti[i] = int(v)
	}
	_, recall, f1 = stats.PrecisionRecall(fi, ti)
	return recall, f1
}

func pemQuality(cfg Config, eps float64, bits, n int) (recall, f1 float64) {
	for trial := 0; trial < cfg.Trials; trial++ {
		src := ldprand.NewSplitMix64(cfg.Seed + uint64(trial) + uint64(eps*7) + uint64(n))
		values, heavy := heavyValues(src, bits, n)
		hits, err := heavyhitters.FindPEM(heavyhitters.PEMParams{
			Epsilon: eps, Bits: bits, Levels: 4, K: 5,
		}, values, src)
		if err != nil {
			continue
		}
		found := make([]uint64, len(hits))
		for i, h := range hits {
			found[i] = h.Value
		}
		r, f := hitQuality(found, heavy)
		recall += r
		f1 += f
	}
	k := float64(cfg.Trials)
	return recall / k, f1 / k
}

func sfpQuality(cfg Config, eps float64, n int) (recall, f1 float64) {
	pool := workload.Words(3000)
	heavy := []string{pool[10], pool[700], pool[1500], pool[2200], pool[2900]}
	for trial := 0; trial < cfg.Trials; trial++ {
		src := ldprand.NewSplitMix64(cfg.Seed + uint64(trial)*31 + uint64(eps*13) + uint64(n))
		zipf := workload.NewZipf(src, 2.0, len(heavy)+1)
		words := make([]string, n)
		for i := range words {
			k := zipf.Next()
			if k < len(heavy) {
				words[i] = heavy[k]
			} else {
				words[i] = pool[ldprand.Intn(src, len(pool))]
			}
		}
		hits, err := heavyhitters.FindSFP(heavyhitters.SFPParams{
			Epsilon: eps, WordLen: 6, HashBits: 6, K: 5, Seed: cfg.Seed,
		}, words, src)
		if err != nil {
			continue
		}
		heavySet := make(map[string]bool, len(heavy))
		for _, h := range heavy {
			heavySet[h] = true
		}
		hitCount := 0
		for _, h := range hits {
			if heavySet[h.Word] {
				hitCount++
			}
		}
		r := float64(hitCount) / float64(len(heavy))
		var p float64
		if len(hits) > 0 {
			p = float64(hitCount) / float64(len(hits))
		}
		recall += r
		if p+r > 0 {
			f1 += 2 * p * r / (p + r)
		}
	}
	k := float64(cfg.Trials)
	return recall / k, f1 / k
}

func baselineQuality(cfg Config, eps float64, bits, n int) (recall, f1 float64) {
	for trial := 0; trial < cfg.Trials; trial++ {
		src := ldprand.NewSplitMix64(cfg.Seed + uint64(trial)*77 + uint64(eps*3) + uint64(n))
		values, heavy := heavyValues(src, bits, n)
		hits, err := heavyhitters.BaselineGRR(eps, bits, 5, values, src)
		if err != nil {
			continue
		}
		found := make([]uint64, len(hits))
		for i, h := range hits {
			found[i] = h.Value
		}
		r, f := hitQuality(found, heavy)
		recall += r
		f1 += f
	}
	k := float64(cfg.Trials)
	return recall / k, f1 / k
}

// runE8 reproduces the spatial trade-off: relative range-query error
// across grid granularities (noise grows with g², discretization
// shrinks with 1/g) plus hotspot hit rate, and the hierarchy as a
// middle ground.
func runE8(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "granularity\tavg_rel_err_small_query\tavg_rel_err_large_query\thotspot_hit3")
	n := cfg.Users
	queries := []spatial.Rect{
		{MinX: 0.2, MinY: 0.2, MaxX: 0.35, MaxY: 0.35}, // small, on a hotspot
		{MinX: 0.55, MinY: 0.45, MaxX: 0.7, MaxY: 0.65},
		{MinX: 0.1, MinY: 0.1, MaxX: 0.6, MaxY: 0.6}, // large
		{MinX: 0.3, MinY: 0.5, MaxX: 0.9, MaxY: 0.95},
	}
	clusters := workload.DefaultCityClusters()
	for _, g := range []int{4, 8, 16, 32} {
		var errSmall, errLarge, hotHits float64
		for trial := 0; trial < cfg.Trials; trial++ {
			src := ldprand.NewSplitMix64(cfg.Seed + uint64(g*100+trial))
			points := workload.Locations(src, clusters, n)
			grid, err := spatial.NewGrid(2, g, src)
			if err != nil {
				return err
			}
			for _, p := range points {
				grid.Collect(p)
			}
			for qi, q := range queries {
				truth := 0.0
				for _, p := range points {
					if q.Contains(p) {
						truth++
					}
				}
				got := grid.RangeCount(q)
				rel := math.Abs(got-truth) / math.Max(truth, 1)
				if qi < 2 {
					errSmall += rel / 2
				} else {
					errLarge += rel / 2
				}
			}
			// Hotspot precision: fraction of the top-3 estimated cells
			// lying within 0.15 of a true population center. Noisy
			// fine grids let random empty cells win, dropping this.
			hot := grid.Hotspots(3)
			near := 0
			for _, cell := range hot {
				r := grid.CellRect(cell)
				cx, cy := (r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2
				for _, c := range clusters {
					if math.Hypot(cx-c.Center.X, cy-c.Center.Y) < 0.15 {
						near++
						break
					}
				}
			}
			hotHits += float64(near) / float64(len(hot))
		}
		k := float64(cfg.Trials)
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.2f\n", g, errSmall/k, errLarge/k, hotHits/k)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// The quadtree with cross-level consistency as the middle ground:
	// it should avoid both failure modes of single-granularity grids.
	fmt.Fprintln(w, "  quadtree (depth 5, consistent) on the same queries:")
	tw = table(w)
	fmt.Fprintln(tw, "structure\tavg_rel_err_small_query\tavg_rel_err_large_query")
	{
		var errSmall, errLarge float64
		for trial := 0; trial < cfg.Trials; trial++ {
			src := ldprand.NewSplitMix64(cfg.Seed + uint64(5000+trial))
			points := workload.Locations(src, clusters, n)
			qt, err := spatial.NewQuadtree(2, 5, src)
			if err != nil {
				return err
			}
			for _, p := range points {
				qt.Collect(p)
			}
			for qi, query := range queries {
				truth := 0.0
				for _, p := range points {
					if query.Contains(p) {
						truth++
					}
				}
				got, err := qt.RangeCount(query)
				if err != nil {
					return err
				}
				rel := math.Abs(got-truth) / math.Max(truth, 1)
				if qi < 2 {
					errSmall += rel / 2
				} else {
					errLarge += rel / 2
				}
			}
		}
		k := float64(cfg.Trials)
		fmt.Fprintf(tw, "quadtree\t%.3f\t%.3f\n", errSmall/k, errLarge/k)
	}
	return tw.Flush()
}

// runE9 reproduces the marginal-release comparison: total variation of
// 2-way marginals for the Fourier method vs full materialization vs
// direct collection, across dimensionality d.
func runE9(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "d\tk\tmethod\tavg_tv_2way")
	n := cfg.Users
	const eps = 1.0
	for _, d := range []int{6, 10, 14} {
		probs := make([]float64, d)
		for i := range probs {
			probs[i] = 0.25 + 0.5*float64(i)/float64(d)
		}
		// Evaluate on a few representative 2-way masks.
		masks := []int{0b11, 0b101, (1 << uint(d-1)) | 1}
		for trial := 0; trial < 1; trial++ { // deterministic seeds inside
			src := ldprand.NewSplitMix64(cfg.Seed + uint64(d))
			records := workload.BinaryRecords(src, probs, n)

			fourier, err := marginal.NewFourier(marginal.FourierParams{Epsilon: eps, D: d, K: 2}, src)
			if err != nil {
				return err
			}
			full, err := marginal.NewFullMaterialization(eps, d, src)
			if err != nil {
				return err
			}
			direct, err := marginal.NewDirect(eps, d, masks, src)
			if err != nil {
				return err
			}
			for _, r := range records {
				fourier.Collect(r)
				full.Collect(r)
				direct.Collect(r)
			}
			var tvF, tvFull, tvD float64
			for mi, mask := range masks {
				truth := marginal.TrueMarginal(mask, d, records)
				ft, err := fourier.Marginal(mask)
				if err != nil {
					return err
				}
				tvF += stats.TotalVariation(ft, truth)
				tvFull += stats.TotalVariation(full.Marginal(mask), truth)
				tvD += stats.TotalVariation(direct.Marginal(mi), truth)
			}
			k := float64(len(masks))
			fmt.Fprintf(tw, "%d\t2\tFourier\t%.4f\n", d, tvF/k)
			fmt.Fprintf(tw, "%d\t2\tFullHistogram\t%.4f\n", d, tvFull/k)
			fmt.Fprintf(tw, "%d\t2\tDirect\t%.4f\n", d, tvD/k)
		}
	}
	return tw.Flush()
}

// runE10 reproduces the BLENDER result: blended error vs opt-in
// fraction, against the pure-local and pure-central endpoints.
func runE10(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "opt_in\ttv_blended\tvar_central_group\tvar_local_group")
	const d = 32
	n := cfg.Users
	for _, optIn := range []float64{0, 0.01, 0.05, 0.2, 1} {
		var tv float64
		var vOpt, vLoc float64
		for trial := 0; trial < cfg.Trials; trial++ {
			src := ldprand.NewSplitMix64(cfg.Seed + uint64(trial) + uint64(optIn*1000))
			zipf := workload.NewZipf(src, 1.1, d)
			col, err := hybrid.NewCollector(hybrid.Params{Epsilon: 1, Domain: d, OptIn: optIn}, src)
			if err != nil {
				return err
			}
			truth := make([]float64, d)
			for i := 0; i < n; i++ {
				v := zipf.Next()
				truth[v]++
				col.Collect(v)
			}
			tv += stats.TotalVariation(col.EstimateCounts(), truth)
			vOpt, vLoc = col.GroupVariances()
		}
		fmt.Fprintf(tw, "%.2f\t%.4f\t%.3g\t%.3g\n", optIn, tv/float64(cfg.Trials), vOpt, vLoc)
	}
	return tw.Flush()
}

// runE12 reproduces the LDPGen shape: degree-distribution accuracy vs
// ε and synthetic-graph fidelity (edges, degree KS, clustering).
func runE12(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "eps\tdegree_ks\tsyn_edge_ratio\tsyn_degree_ks\tcc_true\tcc_syn")
	const nVertices = 800
	for _, eps := range []float64{0.5, 1, 2, 4} {
		var degKS, edgeRatio, synKS, ccTrue, ccSyn float64
		trials := cfg.Trials
		for trial := 0; trial < trials; trial++ {
			src := ldprand.NewSplitMix64(cfg.Seed + uint64(trial) + uint64(eps*10))
			g := workload.BarabasiAlbert(src, nVertices, 4)
			maxDeg := 0
			for _, dd := range g.Degrees() {
				if dd > maxDeg {
					maxDeg = dd
				}
			}
			noisy := graph.NoisyDegrees(eps, g, src)
			degKS += stats.KSDistance(
				graph.DegreeDistribution(noisy, maxDeg),
				graph.TrueDegreeDistribution(g, maxDeg))
			syn, err := graph.Generate(graph.GenParams{Epsilon: eps, Clusters: 5}, g, src)
			if err != nil {
				return err
			}
			edgeRatio += float64(syn.Edges()) / float64(g.Edges())
			synKS += stats.KSDistance(
				graph.TrueDegreeDistribution(syn, maxDeg),
				graph.TrueDegreeDistribution(g, maxDeg))
			ccTrue += g.ClusteringCoefficient()
			ccSyn += syn.ClusteringCoefficient()
		}
		k := float64(trials)
		fmt.Fprintf(tw, "%.1f\t%.3f\t%.2f\t%.3f\t%.3f\t%.3f\n",
			eps, degKS/k, edgeRatio/k, synKS/k, ccTrue/k, ccSyn/k)
	}
	return tw.Flush()
}

// freqMechanismRows lists per-mechanism communication characteristics
// for the E13 table.
func freqMechanismRows(d int) []struct {
	name string
	bits int
	note string
} {
	notes := map[string]string{
		"GRR": "one value; client O(1)",
		"SUE": "one bit per domain item (RAPPOR-style)",
		"OUE": "one bit per domain item",
		"SHE": "one float per domain item — heaviest",
		"THE": "one bit per domain item after client-side threshold",
		"BLH": "1 payload bit + hash seed",
		"OLH": "log2(g) payload bits + hash seed",
		"HRR": "1 sign bit + coefficient index — lightest with index from shared randomness",
	}
	var rows []struct {
		name string
		bits int
		note string
	}
	for _, m := range freq.Mechanisms() {
		o := m.Build(freq.Config{Epsilon: 1, Domain: d, Source: ldprand.NewSplitMix64(1)})
		rows = append(rows, struct {
			name string
			bits int
			note string
		}{m.Name, o.ReportBits(), notes[m.Name]})
	}
	return rows
}
