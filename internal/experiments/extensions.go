package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/assoc"
	"repro/internal/interactive"
	"repro/internal/itemset"
	"repro/internal/langmodel"
	"repro/internal/ldprand"
)

// runE14 reproduces the set-valued heavy-hitter result (Qin et al.,
// CCS 2016): padding-and-sampling with a two-phase flow finds the most
// frequent items of user *sets*, and the second phase materially
// improves counts over a single-phase pass.
func runE14(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "eps\tpad_len\tmethod\ttop5_recall\tcount_rel_err")
	const domain = 256
	n := cfg.Users
	heavy := []int{3, 47, 91, 150, 220}
	holderProb := []float64{0.6, 0.45, 0.3, 0.2, 0.12}
	for _, eps := range []float64{1, 2, 4} {
		for _, padLen := range []int{2, 4} {
			var recall1, relErr1, recall2, relErr2 float64
			for trial := 0; trial < cfg.Trials; trial++ {
				src := ldprand.NewSplitMix64(cfg.Seed + uint64(trial) + uint64(eps*31) + uint64(padLen))
				sets := make([][]int, n)
				truth := make(map[int]int)
				for i := range sets {
					var s []int
					for h, item := range heavy {
						if ldprand.Bernoulli(src, holderProb[h]) {
							s = append(s, item)
							truth[item]++
						}
					}
					s = append(s, ldprand.Intn(src, domain))
					sets[i] = s
				}
				params := itemset.Params{Epsilon: eps, Domain: domain, PadLen: padLen}

				// Single-phase: one collector over all users.
				single, err := itemset.NewCollector(params, src)
				if err != nil {
					return err
				}
				for _, s := range sets {
					if err := single.Collect(s); err != nil {
						return err
					}
				}
				counts := single.EstimateCounts()
				idx := make([]int, domain)
				for i := range idx {
					idx[i] = i
				}
				sort.SliceStable(idx, func(a, b int) bool { return counts[idx[a]] > counts[idx[b]] })
				r, e := setQuality(idx[:5], counts, heavy, truth)
				recall1 += r
				relErr1 += e

				// Two-phase.
				hits, err := itemset.FindTopK(params, 5, sets, src)
				if err != nil {
					return err
				}
				found := make([]int, len(hits))
				found2counts := make([]float64, domain)
				for i, h := range hits {
					found[i] = h.Item
					found2counts[h.Item] = h.Count
				}
				r, e = setQuality(found, found2counts, heavy, truth)
				recall2 += r
				relErr2 += e
			}
			k := float64(cfg.Trials)
			fmt.Fprintf(tw, "%.0f\t%d\tsingle-phase\t%.2f\t%.3f\n", eps, padLen, recall1/k, relErr1/k)
			fmt.Fprintf(tw, "%.0f\t%d\ttwo-phase\t%.2f\t%.3f\n", eps, padLen, recall2/k, relErr2/k)
		}
	}
	return tw.Flush()
}

// setQuality returns (top-5 recall, mean relative count error over the
// true heavy items that were found).
func setQuality(found []int, counts []float64, heavy []int, truth map[int]int) (recall, relErr float64) {
	heavySet := make(map[int]bool, len(heavy))
	for _, h := range heavy {
		heavySet[h] = true
	}
	hits := 0
	var errSum float64
	var errN int
	for _, f := range found {
		if heavySet[f] {
			hits++
			want := float64(truth[f])
			if want > 0 {
				errSum += math.Abs(counts[f]-want) / want
				errN++
			}
		}
	}
	recall = float64(hits) / float64(len(heavy))
	if errN > 0 {
		relErr = errSum / float64(errN)
	} else {
		relErr = 1
	}
	return recall, relErr
}

// runE15 reproduces the language-modeling direction (§1.3, after
// McMahan et al. [17]): a next-character model trained from randomized
// bigram reports approaches the non-private model's perplexity as ε
// and population grow.
func runE15(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "eps\tn\tperplexity_private\tperplexity_true\tuniform\tkl_to_true")
	words := []string{
		"the", "then", "they", "there", "these", "queen", "quick",
		"quiet", "hello", "world", "would", "should", "think", "thing",
	}
	makeCorpus := func(src ldprand.Source, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = words[ldprand.Intn(src, len(words))]
		}
		return out
	}
	heldSrc := ldprand.NewSplitMix64(cfg.Seed + 999)
	heldOut := makeCorpus(heldSrc, 2000)
	for _, eps := range []float64{0.5, 1, 2, 4} {
		for _, n := range []int{cfg.Users, cfg.Users * 4} {
			src := ldprand.NewSplitMix64(cfg.Seed + uint64(eps*100) + uint64(n))
			corpus := makeCorpus(src, n)
			tr := langmodel.NewTrainer(eps, src)
			for _, text := range corpus {
				if err := tr.Contribute(text); err != nil {
					return err
				}
			}
			private := tr.Fit(0.5)
			truth := langmodel.FitTrue(corpus, 0.5)
			fmt.Fprintf(tw, "%.1f\t%d\t%.2f\t%.2f\t%d\t%.3f\n",
				eps, n, private.Perplexity(heldOut), truth.Perplexity(heldOut),
				langmodel.AlphabetSize, truth.KLDivergence(private))
		}
	}
	return tw.Flush()
}

// runE16 reproduces the association-learning result (Fanti et al.
// [14]): a product-domain pass recovers most of the true mutual
// information between two attributes, the independence baseline
// recovers none, and the split+IPF strategy keeps the marginals
// accurate.
func runE16(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "corr\tstrategy\tjoint_tv\tmi_est\tmi_true")
	const dx, dy = 4, 4
	n := cfg.Users
	for _, corr := range []float64{0, 0.5, 0.9} {
		for trial := 0; trial < 1; trial++ {
			src := ldprand.NewSplitMix64(cfg.Seed + uint64(corr*100))
			xs := make([]int, n)
			ys := make([]int, n)
			for i := 0; i < n; i++ {
				xs[i] = ldprand.Intn(src, dx)
				if ldprand.Bernoulli(src, corr) {
					ys[i] = xs[i]
				} else {
					ys[i] = ldprand.Intn(src, dy)
				}
			}
			truth := assoc.TrueJoint(dx, dy, xs, ys)
			miTrue := assoc.MutualInformation(truth)
			for _, s := range []struct {
				name string
				kind assoc.Strategy
			}{{"joint", assoc.Joint}, {"independent", assoc.Independent}, {"split+ipf", assoc.Split}} {
				c, err := assoc.NewCollector(assoc.Params{Epsilon: 1, DX: dx, DY: dy}, s.kind, src)
				if err != nil {
					return err
				}
				for i := range xs {
					if err := c.Collect(xs[i], ys[i]); err != nil {
						return err
					}
				}
				est := c.EstimateJoint()
				fmt.Fprintf(tw, "%.1f\t%s\t%.4f\t%.3f\t%.3f\n",
					corr, s.name, assoc.JointTV(est, truth),
					assoc.MutualInformation(est), miTrue)
			}
		}
	}
	return tw.Flush()
}

// runE17 reproduces the multi-round story (§1.4, after Nguyên et al.
// [18]): interactive bisection finds quantiles that a one-round
// protocol of the same budget cannot, and two-phase refinement beats a
// one-shot full-domain pass whenever the candidate set is small.
func runE17(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "rounds\tmedian_abs_err\t(interactive bisection, eps=1, n per run)")
	n := cfg.Users * 2
	for _, rounds := range []int{2, 4, 8, 12} {
		var errSum float64
		for trial := 0; trial < cfg.Trials; trial++ {
			src := ldprand.NewSplitMix64(cfg.Seed + uint64(rounds*100+trial))
			values := make([]float64, n)
			for i := range values {
				values[i] = 40 + 12*ldprand.Normal(src)
			}
			got, err := interactive.Median(1, 0, 100, rounds, values, src)
			if err != nil {
				return err
			}
			sorted := append([]float64(nil), values...)
			sort.Float64s(sorted)
			errSum += math.Abs(got - sorted[n/2])
		}
		fmt.Fprintf(tw, "%d\t%.3f\t\n", rounds, errSum/float64(cfg.Trials))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "  two-phase refinement vs one-shot full-domain (analytic variance ratio):")
	tw = table(w)
	fmt.Fprintln(tw, "domain\tcandidates\tgain")
	for _, d := range []int{64, 1024, 65536} {
		fmt.Fprintf(tw, "%d\t8\t%.1fx\n", d, interactive.RefinementGain(1, d, 8, cfg.Users))
	}
	return tw.Flush()
}
