// Package experiments implements the reproduction suite E1–E13 defined
// in DESIGN.md: each experiment regenerates the canonical result of one
// of the systems the tutorial surveys, printing the same rows/series
// the source paper reports. cmd/ldpbench is the CLI front end; the
// benchmarks in the repository root reuse the same runners.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Experiment is one reproducible result.
type Experiment struct {
	ID     string
	Title  string
	Source string // the surveyed work whose result shape is reproduced
	Run    func(w io.Writer, cfg Config) error
}

// Config scales the whole suite; the default is laptop-sized.
type Config struct {
	Users  int    // base population per run
	Trials int    // repetitions averaged per cell
	Seed   uint64 // deterministic seed for reproducible tables
}

// DefaultConfig returns the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{Users: 50000, Trials: 5, Seed: 20180610}
}

// Validate checks that the configuration is runnable.
func (c Config) Validate() error {
	if c.Users < 100 {
		return fmt.Errorf("experiments: need at least 100 users, got %d", c.Users)
	}
	if c.Trials < 1 {
		return fmt.Errorf("experiments: need at least 1 trial, got %d", c.Trials)
	}
	return nil
}

// All returns every experiment in suite order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Randomized response: unbiasedness and CI coverage vs ε",
			Source: "Warner 1965; tutorial §1.1", Run: runE1},
		{ID: "E2", Title: "Frequency oracles: empirical vs analytic MSE across ε",
			Source: "Wang et al., USENIX Security 2017", Run: runE2},
		{ID: "E3", Title: "Domain-size crossover: GRR vs OUE/OLH",
			Source: "Wang et al., USENIX Security 2017", Run: runE3},
		{ID: "E4", Title: "RAPPOR: top-k URL recall and MAE vs population",
			Source: "Erlingsson et al., CCS 2014", Run: runE4},
		{ID: "E5", Title: "Apple CMS vs HCMS: accuracy vs width and ε; bits/report",
			Source: "Apple DP team white paper 2017", Run: runE5},
		{ID: "E6", Title: "Heavy hitters: PEM vs SFP vs full-domain baseline",
			Source: "Bassily–Smith 2015; Wang et al. 2017", Run: runE6},
		{ID: "E7", Title: "Microsoft 1-bit mean; memoization under repeated collection",
			Source: "Ding et al., NeurIPS 2017", Run: runE7},
		{ID: "E8", Title: "Spatial grids: range-query error vs granularity; hotspots",
			Source: "Chen et al., ICDE 2016", Run: runE8},
		{ID: "E9", Title: "Marginals: Fourier vs full vs direct across k and d",
			Source: "Cormode et al. 2017", Run: runE9},
		{ID: "E10", Title: "Hybrid model: error vs opt-in fraction",
			Source: "Avent et al., USENIX Security 2017", Run: runE10},
		{ID: "E11", Title: "Central vs local gap: error ratio vs n",
			Source: "Duchi et al., FOCS 2013; tutorial §1.5", Run: runE11},
		{ID: "E12", Title: "Graphs: degree-distribution KS and synthetic fidelity",
			Source: "Qin et al., CCS 2017", Run: runE12},
		{ID: "E13", Title: "Communication and client cost per mechanism",
			Source: "tutorial abstract (\"Internet scale\")", Run: runE13},
		{ID: "E14", Title: "Set-valued data: padding-and-sampling, two-phase top-k",
			Source: "Qin et al., CCS 2016", Run: runE14},
		{ID: "E15", Title: "Private language model: perplexity vs ε and n",
			Source: "McMahan et al. 2017 direction, §1.3", Run: runE15},
		{ID: "E16", Title: "Association learning: joint vs independent vs split+IPF",
			Source: "Fanti et al., PETS 2016", Run: runE16},
		{ID: "E17", Title: "Multi-round protocols: quantile bisection, 2-phase refine",
			Source: "Nguyên et al. 2016, tutorial §1.4", Run: runE17},
		{ID: "E18", Title: "Served heavy hitters: interactive PEM over the task stack",
			Source: "Bassily–Smith 2015; tutorial §1.4 (interactivity)", Run: runE18},
		{ID: "E19", Title: "Codec cost: JSON vs binary wire bytes and snapshot encode/restore",
			Source: "Apple white paper 2017 (transport); Price 2016 (sketch size bounds)", Run: runE19},
		{ID: "E20", Title: "Relay fan-in: N-relay ingest tier vs single node, exact merge",
			Source: "tutorial abstract (\"Internet scale\"); RAPPOR shuffler deployments", Run: runE20},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// Run executes one experiment with a header.
func Run(w io.Writer, e Experiment, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "=== %s: %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "    reproduces: %s\n", e.Source)
	return e.Run(w, cfg)
}

// table returns a tabwriter for aligned experiment rows.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}
