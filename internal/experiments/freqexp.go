package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/freq"
	"repro/internal/ldprand"
	"repro/internal/mean"
	"repro/internal/secagg"
	"repro/internal/stats"
	"repro/internal/workload"
)

// runE1 reproduces the §1.1 teaching result: Warner's randomized
// response is unbiased, its error shrinks with ε and n, and normal
// confidence intervals achieve their nominal coverage.
func runE1(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "eps\tn\ttrue_p\tmean_est\tmean_abs_err\tci95_halfwidth\tci95_coverage")
	const trueP = 0.3
	seed := cfg.Seed
	for _, eps := range []float64{0.5, 1, 2, 4} {
		for _, n := range []int{cfg.Users / 10, cfg.Users} {
			var sumEst, sumAbs float64
			covered := 0
			trials := cfg.Trials * 8 // cheap experiment; more trials for coverage
			var ci float64
			for trial := 0; trial < trials; trial++ {
				seed++
				src := ldprand.NewSplitMix64(seed)
				rr := freq.NewBinaryRR(eps, src)
				for i := 0; i < n; i++ {
					v := 0
					if ldprand.Float64(src) < trueP {
						v = 1
					}
					rr.Collect(v)
				}
				est, halfWidth := rr.EstimateProportion(0.05)
				ci = halfWidth
				sumEst += est
				sumAbs += math.Abs(est - trueP)
				if math.Abs(est-trueP) <= halfWidth {
					covered++
				}
			}
			fmt.Fprintf(tw, "%.1f\t%d\t%.2f\t%.4f\t%.4f\t%.4f\t%.2f\n",
				eps, n, trueP, sumEst/float64(trials), sumAbs/float64(trials),
				ci, float64(covered)/float64(trials))
		}
	}
	return tw.Flush()
}

// runE2 reproduces the Wang et al. accuracy comparison: empirical MSE
// of every frequency oracle across ε on Zipf data, against the
// analytic variance. OUE/OLH should track each other and beat
// SUE/BLH/SHE; the analytic column should match the empirical one.
func runE2(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "eps\tmechanism\tempirical_mse\tanalytic_var\tratio\treport_bits")
	const d = 64
	n := cfg.Users
	for _, eps := range []float64{0.5, 1, 2, 4} {
		for _, m := range freq.Mechanisms() {
			var mse float64
			var bits int
			for trial := 0; trial < cfg.Trials; trial++ {
				src := ldprand.NewSplitMix64(cfg.Seed + uint64(trial)*1000 + uint64(eps*10))
				zipf := workload.NewZipf(src, 1.1, d)
				truth := make([]float64, d)
				o := m.Build(freq.Config{Epsilon: eps, Domain: d, Source: src})
				bits = o.ReportBits()
				for i := 0; i < n; i++ {
					v := zipf.Next()
					truth[v]++
					o.Collect(v)
				}
				mse += stats.MSE(o.EstimateCounts(), truth)
			}
			mse /= float64(cfg.Trials)
			analytic := func() float64 {
				o := m.Build(freq.Config{Epsilon: eps, Domain: d, Source: ldprand.NewSplitMix64(1)})
				return o.TheoreticalVariance(n)
			}()
			fmt.Fprintf(tw, "%.1f\t%s\t%.3g\t%.3g\t%.2f\t%d\n",
				eps, m.Name, mse, analytic, mse/analytic, bits)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Ablation 1: the unary-encoding (p, q) trade-off. Sweeping the
	// budget split shows OUE's p = 1/2 choice sitting at the variance
	// minimum, with SUE's symmetric split clearly worse.
	fmt.Fprintln(w, "  ablation: UE probability split at eps=1 (variance per 1000 users)")
	tw = table(w)
	fmt.Fprintln(tw, "p\tq\tvariance\tnote")
	{
		const eps = 1.0
		e := math.Exp(eps)
		for _, p := range []float64{0.3, 0.5, 0.62, 0.73, 0.9} {
			// For fixed p, the tightest ε-LDP q solves
			// p(1−q)/(q(1−p)) = e^ε ⇒ q = p / (p + e^ε(1−p)).
			q := p / (p + e*(1-p))
			u := freq.NewUE(eps, 16, p, q, ldprand.NewSplitMix64(1))
			note := ""
			if math.Abs(p-0.5) < 1e-9 {
				note = "<- OUE's choice"
			}
			e2 := math.Exp(eps / 2)
			if math.Abs(p-e2/(e2+1)) < 0.01 {
				note = "<- SUE's choice"
			}
			fmt.Fprintf(tw, "%.2f\t%.4f\t%.1f\t%s\n", p, q, u.TheoreticalVariance(1000), note)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Ablation 2: the THE threshold. The optimizer's θ should sit at
	// the bottom of the swept variance curve.
	fmt.Fprintln(w, "  ablation: THE threshold at eps=1 (variance per 1000 users)")
	tw = table(w)
	fmt.Fprintln(tw, "theta\tvariance\tnote")
	{
		const eps = 1.0
		auto := freq.NewTHE(eps, 16, ldprand.NewSplitMix64(1))
		for _, theta := range []float64{0.55, 0.65, 0.75, 0.85, 0.95} {
			th := freq.NewTHEWithThreshold(eps, 16, theta, ldprand.NewSplitMix64(1))
			fmt.Fprintf(tw, "%.2f\t%.1f\t\n", theta, th.TheoreticalVariance(1000))
		}
		fmt.Fprintf(tw, "%.3f\t%.1f\t<- ternary-search optimum\n",
			auto.Theta(), auto.TheoreticalVariance(1000))
	}
	return tw.Flush()
}

// runE3 reproduces the domain-size crossover: GRR's variance grows
// linearly in d while OUE/OLH stay flat, crossing at d ≈ 3e^ε + 2.
func runE3(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "eps\td\tvar_GRR\tvar_OUE\tvar_OLH\twinner\tpredicted_crossover_d")
	n := cfg.Users
	for _, eps := range []float64{1.0, 2.0} {
		crossover := 3*math.Exp(eps) + 2
		for _, d := range []int{4, 8, 16, 32, 64, 256, 1024} {
			grr := freq.NewGRR(eps, d, nil).TheoreticalVariance(n)
			oue := freq.NewOUE(eps, d, nil).TheoreticalVariance(n)
			olh := freq.NewOLH(eps, d, nil).TheoreticalVariance(n)
			winner := "GRR"
			if oue < grr || olh < grr {
				winner = "OUE/OLH"
			}
			fmt.Fprintf(tw, "%.1f\t%d\t%.3g\t%.3g\t%.3g\t%s\t%.0f\n",
				eps, d, grr, oue, olh, winner, crossover)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Ablation: the local-hashing range g. BLH's g = 2 wastes budget;
	// OLH's g = ⌈e^ε⌉+1 sits at the variance minimum of the sweep.
	fmt.Fprintln(w, "  ablation: LH hash range g at eps=2, d=1024 (variance per 1000 users)")
	tw = table(w)
	fmt.Fprintln(tw, "g\tvariance\tnote")
	{
		const eps = 2.0
		optimal := int(math.Ceil(math.Exp(eps))) + 1
		for _, g := range []int{2, 4, optimal, 16, 64} {
			lh := freq.NewLH(eps, 1024, g, nil)
			note := ""
			switch g {
			case 2:
				note = "<- BLH"
			case optimal:
				note = "<- OLH's g = ceil(e^eps)+1"
			}
			fmt.Fprintf(tw, "%d\t%.1f\t%s\n", g, lh.TheoreticalVariance(1000), note)
		}
	}
	return tw.Flush()
}

// runE11 reproduces the central-vs-local gap (§1.5): for a frequency
// estimate, central-DP error is O(1/ε) while LDP error is O(√n/ε), so
// the local/central error ratio grows like √n.
func runE11(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "n\tcentral_mae\tlocal_mae\tratio\tsqrt_n")
	const d = 16
	const eps = 1.0
	for _, n := range []int{1000, 10000, 100000} {
		var centralMAE, localMAE float64
		for trial := 0; trial < cfg.Trials; trial++ {
			src := ldprand.NewSplitMix64(cfg.Seed + uint64(n) + uint64(trial))
			zipf := workload.NewZipf(src, 1.0, d)
			truth := make([]float64, d)
			values := make([]int, n)
			for i := range values {
				values[i] = zipf.Next()
				truth[values[i]]++
			}
			// Central: Laplace histogram.
			noisy := centralHistogram(eps, truth, src)
			centralMAE += stats.MAE(noisy, truth)
			// Local: OLH.
			o := freq.NewOLH(eps, d, src)
			for _, v := range values {
				o.Collect(v)
			}
			localMAE += stats.MAE(o.EstimateCounts(), truth)
		}
		centralMAE /= float64(cfg.Trials)
		localMAE /= float64(cfg.Trials)
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.1f\t%.0f\n",
			n, centralMAE, localMAE, localMAE/centralMAE, math.Sqrt(float64(n)))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// §1.5 alternative: secure aggregation reaches central accuracy
	// with no trusted aggregator — the server only ever sees masked
	// reports. (Population kept moderate: pairwise masking is O(n²).)
	fmt.Fprintln(w, "  secure aggregation (sum of n values in [0,1], eps=1):")
	tw = table(w)
	fmt.Fprintln(tw, "n\tabs_err_secagg\tabs_err_ldp_mean_scaled")
	for _, n := range []int{200, 500} {
		var errSec, errLDP float64
		for trial := 0; trial < cfg.Trials; trial++ {
			src := ldprand.NewSplitMix64(cfg.Seed + uint64(n*10+trial))
			values := make([]float64, n)
			var truth float64
			for i := range values {
				values[i] = ldprand.Float64(src)
				truth += values[i]
			}
			got, err := secagg.PrivateSum(1.0, 1.0, values, []byte("exp-session"), src)
			if err != nil {
				return err
			}
			errSec += math.Abs(got - truth)
			// LDP comparison: Duchi mean of the same values scaled back
			// to a sum.
			d := mean.NewDuchi(1.0, src)
			for _, x := range values {
				d.Collect(2*x - 1) // [0,1] → [−1,1]
			}
			ldpSum := (d.Estimate() + 1) / 2 * float64(n)
			errLDP += math.Abs(ldpSum - truth)
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\n", n, errSec/float64(cfg.Trials), errLDP/float64(cfg.Trials))
	}
	return tw.Flush()
}

func centralHistogram(eps float64, counts []float64, src ldprand.Source) []float64 {
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = c + ldprand.Laplace(src, 1/eps)
	}
	return out
}
