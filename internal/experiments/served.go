package experiments

// E18: the served interactive heavy-hitter protocol, end to end over
// the production aggregation stack (sharded hh task, round advances,
// estimate reads) rather than the batch FindPEM runner — the wall
// clock of this experiment is the perf-trajectory point for the phased
// task plumbing.

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/hhtask"
)

// runE18 drives the full multi-round PEM protocol through
// core.ShardedAggregator exactly the way ldpd serves it: per-round
// client privatization against the published frontier, batched
// ingestion, an Advance per round, and a final ?top=k estimate read —
// reporting recall of the planted heavy hitters.
func runE18(w io.Writer, cfg Config) error {
	const (
		epsilon = 2.0
		bits    = 16
		levels  = 4
		k       = 3
		shards  = 4
	)
	// Planted population shares (percent); the remainder is uniform
	// background over the 2^bits domain.
	shares := []int{30, 20, 12}
	tw := table(w)
	fmt.Fprintln(tw, "users\trounds\trecall@3\t(served PEM, eps=2, bits=16, sharded task stack)")
	for _, scale := range []int{1, 2} {
		n := cfg.Users * scale / 2
		if n < levels {
			n = levels
		}
		var recallSum float64
		for trial := 0; trial < cfg.Trials; trial++ {
			src := ldprand.NewSplitMix64(cfg.Seed + uint64(1000*scale+trial))
			// Plant k heavies with the configured shares; the planted
			// set is the ground truth.
			planted := make([]uint64, k)
			for i := range planted {
				planted[i] = uint64(ldprand.Intn(src, 1<<bits))
			}
			values := make([]uint64, n)
			for i := range values {
				values[i] = uint64(ldprand.Intn(src, 1<<bits))
				r, acc := ldprand.Intn(src, 100), 0
				for j, share := range shares {
					if acc += share; r < acc {
						values[i] = planted[j]
						break
					}
				}
			}

			agg, err := core.NewShardedAggregator(task.Config{
				Task: task.TypeHH, Mechanism: hhtask.MechanismPEM,
				Epsilon: epsilon, Bits: bits, Levels: levels, K: k,
			}, shards)
			if err != nil {
				return err
			}
			client, err := hhtask.NewClient(epsilon, bits, levels, src)
			if err != nil {
				return err
			}
			for round := 0; round < levels; round++ {
				batch := make([]json.RawMessage, 0, n/levels+1)
				for _, v := range values[round*n/levels : (round+1)*n/levels] {
					raw, err := client.Report(v, round)
					if err != nil {
						return err
					}
					batch = append(batch, raw)
				}
				if _, err := agg.AddBatch(batch); err != nil {
					return err
				}
				if err := agg.Advance(); err != nil {
					return err
				}
			}
			est, err := agg.Estimate(map[string][]string{"top": {fmt.Sprint(k)}})
			if err != nil {
				return err
			}
			var res hhtask.EstimateResult
			if err := json.Unmarshal(est, &res); err != nil {
				return err
			}
			found := make(map[uint64]bool, len(res.Hits))
			for _, h := range res.Hits {
				found[h.Value] = true
			}
			hit := 0
			for _, p := range planted {
				if found[p] {
					hit++
				}
			}
			recallSum += float64(hit) / float64(k)
		}
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t\n", n, levels, recallSum/float64(cfg.Trials))
	}
	return tw.Flush()
}
