package experiments

// E20: relay fan-in throughput. N relay-mode nodes each ingest a share
// of the report stream over real HTTP, then flush exact merged deltas
// into one upstream aggregator; the single node ingests the identical
// stream directly. Because the bench host has only a core or two,
// wall-clock parallelism is meaningless here — instead each node's
// busy time is measured serially and the relay topology is charged its
// critical path: the slowest relay's ingest share plus the full
// (serialized) upstream merge cost. The estimates must come out
// bit-identical either way; the speedup is the point of the tier.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/ldprand"
	"repro/internal/task/freqtask"
)

// RelayTopology is one fan-in measurement: R relays feeding one
// aggregator, charged max(per-relay ingest) + upstream merge.
type RelayTopology struct {
	Relays        int     `json:"relays"`
	IngestSeconds float64 `json:"ingest_seconds"` // slowest relay's share
	FlushSeconds  float64 `json:"flush_seconds"`  // cut + ship + upstream merge
	Seconds       float64 `json:"seconds"`        // critical path: ingest + flush
	ReportsPerSec float64 `json:"reports_per_sec"`
	Speedup       float64 `json:"speedup"` // vs the single node
	Exact         bool    `json:"exact"`   // upstream estimates bit-identical
}

// RelaySummary is the structured E20 result embedded in -json output.
type RelaySummary struct {
	Users         int             `json:"users"`
	Batch         int             `json:"batch"`
	SingleSeconds float64         `json:"single_seconds"`
	Topologies    []RelayTopology `json:"topologies"`
}

// relayExpCfg is the measured collection: GRR keeps per-report fold
// cost realistic and the state integer-exact, so the fan-in equality
// check is bitwise.
func relayExpCfg() core.CollectionConfig {
	return core.FreqCollectionConfig(core.MechanismGRR, core.PrivacyParams{Epsilon: 2, Domain: 64}, 2)
}

// relayExpBodies privatizes the whole population once and pre-marshals
// the batch bodies, so the timed loops measure serving, not workload
// generation.
func relayExpBodies(seed uint64, users, batch int) ([][]byte, error) {
	col := relayExpCfg()
	client, err := core.NewClient(col.Mechanism, col.Params(), ldprand.NewSplitMix64(seed+20))
	if err != nil {
		return nil, err
	}
	src := ldprand.NewSplitMix64(seed + 21)
	var bodies [][]byte
	for done := 0; done < users; done += batch {
		size := batch
		if users-done < size {
			size = users - done
		}
		envs := make([]json.RawMessage, size)
		for i := range envs {
			env, err := client.Report(ldprand.Intn(src, col.Domain))
			if err != nil {
				return nil, err
			}
			if envs[i], err = json.Marshal(env); err != nil {
				return nil, err
			}
		}
		body, err := json.Marshal(envs)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	return bodies, nil
}

// relayExpPost ships one pre-marshalled batch and checks the ack.
func relayExpPost(cl *http.Client, url, id string, body []byte) error {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", id)
	resp, err := cl.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("experiments: batch %s: status %d", id, resp.StatusCode)
	}
	return nil
}

// relayExpCounts reads the exact debiased estimates out of a
// collection's merged aggregator.
func relayExpCounts(c *core.Collection) ([]float64, error) {
	m, err := c.Aggregator().MergedCached()
	if err != nil {
		return nil, err
	}
	fa, ok := m.(*freqtask.Aggregator)
	if !ok {
		return nil, fmt.Errorf("experiments: aggregator is %T, want *freqtask.Aggregator", m)
	}
	return fa.Oracle().EstimateCounts(), nil
}

// relayExpUpstream boots a memory-only aggregation node serving the
// measured collection over HTTP.
func relayExpUpstream() (*core.Collection, *httptest.Server, error) {
	reg := core.NewCollectionRegistry()
	c, err := reg.Create("words", relayExpCfg())
	if err != nil {
		return nil, nil, err
	}
	return c, httptest.NewServer(core.NewMultiService(reg, nil).Handler()), nil
}

// RelayFanIn measures single-node vs relay fan-in report/batch
// throughput for each requested relay count. Exactness is asserted,
// not sampled: a topology whose upstream estimates diverge from the
// single node is an error, not a slow row.
func RelayFanIn(cfg Config, relayCounts []int, batch int) (RelaySummary, error) {
	if err := cfg.Validate(); err != nil {
		return RelaySummary{}, err
	}
	if batch < 1 {
		return RelaySummary{}, fmt.Errorf("experiments: relay batch size %d", batch)
	}
	// The upstream merge cost per flush is near-constant, so a short
	// stream measures overhead, not throughput: floor the population at
	// 50k reports regardless of the suite's -users scale.
	users := cfg.Users
	if users < 50000 {
		users = 50000
	}
	bodies, err := relayExpBodies(cfg.Seed, users, batch)
	if err != nil {
		return RelaySummary{}, err
	}
	cl := &http.Client{}

	// Single node: every batch folds at the one aggregator.
	singleC, singleTS, err := relayExpUpstream()
	if err != nil {
		return RelaySummary{}, err
	}
	defer singleTS.Close()
	start := time.Now()
	for i, body := range bodies {
		if err := relayExpPost(cl, singleTS.URL+"/collections/words/report/batch", fmt.Sprintf("e20-%d", i), body); err != nil {
			return RelaySummary{}, err
		}
	}
	singleSec := time.Since(start).Seconds()
	want, err := relayExpCounts(singleC)
	if err != nil {
		return RelaySummary{}, err
	}

	sum := RelaySummary{Users: users, Batch: batch, SingleSeconds: singleSec}
	for _, relays := range relayCounts {
		if relays < 1 || relays > len(bodies) {
			return RelaySummary{}, fmt.Errorf("experiments: %d relays for %d batches", relays, len(bodies))
		}
		top, err := relayFanInOne(users, cl, bodies, relays, want, singleSec)
		if err != nil {
			return RelaySummary{}, err
		}
		sum.Topologies = append(sum.Topologies, top)
	}
	return sum, nil
}

// relayFanInOne runs one R-relay topology: each relay serially ingests
// its strided share (its busy time), then every relay flushes into the
// upstream (the merge tier's serialized busy time).
func relayFanInOne(users int, cl *http.Client, bodies [][]byte, relays int, want []float64, singleSec float64) (RelayTopology, error) {
	upC, upTS, err := relayExpUpstream()
	if err != nil {
		return RelayTopology{}, err
	}
	defer upTS.Close()
	tmp, err := os.MkdirTemp("", "ldp-relayexp-")
	if err != nil {
		return RelayTopology{}, err
	}
	defer os.RemoveAll(tmp)

	ctx := context.Background()
	rs := make([]*cluster.Relay, relays)
	servers := make([]*httptest.Server, relays)
	for i := range rs {
		out, err := cluster.NewOutbox(fsio.OS, filepath.Join(tmp, fmt.Sprintf("outbox-%d", i)))
		if err != nil {
			return RelayTopology{}, err
		}
		r := cluster.NewRelay(core.NewMultiService(core.NewCollectionRegistry(), nil), nil, cluster.NewUpstream(upTS.URL), out)
		if err := r.SyncCollections(ctx); err != nil {
			return RelayTopology{}, err
		}
		rs[i] = r
		servers[i] = httptest.NewServer(r.Handler())
		defer servers[i].Close()
	}

	// Ingest tier: relay i serially works its strided share; the
	// topology is charged the slowest share, the parallel critical path.
	var maxIngest float64
	for i := range rs {
		start := time.Now()
		for j := i; j < len(bodies); j += relays {
			if err := relayExpPost(cl, servers[i].URL+"/collections/words/report/batch", fmt.Sprintf("e20-%d", j), bodies[j]); err != nil {
				return RelayTopology{}, err
			}
		}
		if sec := time.Since(start).Seconds(); sec > maxIngest {
			maxIngest = sec
		}
	}

	// Merge tier: flushes contend on the one upstream, so their cost is
	// summed, not maxed.
	start := time.Now()
	for i, r := range rs {
		if err := r.Flush(ctx); err != nil {
			return RelayTopology{}, fmt.Errorf("experiments: relay %d flush: %w", i, err)
		}
	}
	flushSec := time.Since(start).Seconds()

	got, err := relayExpCounts(upC)
	if err != nil {
		return RelayTopology{}, err
	}
	if !reflect.DeepEqual(got, want) {
		return RelayTopology{}, fmt.Errorf("experiments: %d-relay fan-in estimates diverged from the single node", relays)
	}
	sec := maxIngest + flushSec
	return RelayTopology{
		Relays:        relays,
		IngestSeconds: maxIngest,
		FlushSeconds:  flushSec,
		Seconds:       sec,
		ReportsPerSec: float64(users) / sec,
		Speedup:       singleSec / sec,
		Exact:         true,
	}, nil
}

// runE20 prints the fan-in table: single-node baseline plus each relay
// topology's critical-path throughput and speedup.
func runE20(w io.Writer, cfg Config) error {
	const batch = 100
	sum, err := RelayFanIn(cfg, []int{2, 4}, batch)
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "topology\tingest s\tmerge s\ttotal s\treports/s\tspeedup\texact")
	fmt.Fprintf(tw, "single\t%.3f\t-\t%.3f\t%.0f\t1.00\tyes\n",
		sum.SingleSeconds, sum.SingleSeconds, float64(sum.Users)/sum.SingleSeconds)
	for _, top := range sum.Topologies {
		fmt.Fprintf(tw, "%d relays\t%.3f\t%.3f\t%.3f\t%.0f\t%.2f\tyes\n",
			top.Relays, top.IngestSeconds, top.FlushSeconds, top.Seconds, top.ReportsPerSec, top.Speedup)
	}
	return tw.Flush()
}
