package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cms"
	"repro/internal/ldprand"
	"repro/internal/rappor"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// runE4 reproduces the RAPPOR simulation shape: top-k recall and
// frequency MAE improve with population size, on Zipf URL popularity.
func runE4(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "n\tcandidates\ttop10_recall\ttop10_ncr\tmae_top10/n")
	params := rappor.DefaultParams()
	params.BloomBits = 64
	params.Cohorts = 4
	const numURLs = 50
	urls := workload.URLs(numURLs)
	for _, n := range []int{cfg.Users / 5, cfg.Users, cfg.Users * 2} {
		var recall, ncr, mae float64
		for trial := 0; trial < cfg.Trials; trial++ {
			src := ldprand.NewSplitMix64(cfg.Seed + uint64(n+trial))
			zipf := workload.NewZipf(src, 1.3, numURLs)
			truth := make([]float64, numURLs)
			server, err := rappor.NewServer(params)
			if err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				client, err := rappor.NewClient(params, userSecret(src), src)
				if err != nil {
					return err
				}
				v := zipf.Next()
				truth[v]++
				if err := server.Add(client.Report(urls[v])); err != nil {
					return err
				}
			}
			est := server.Decode(urls)
			estVec := make([]float64, numURLs)
			for i, u := range urls {
				estVec[i] = est[u]
			}
			trueTop := stats.TopK(truth, 10)
			gotTop := stats.TopK(estVec, 10)
			_, r, _ := stats.PrecisionRecall(gotTop, trueTop)
			recall += r
			ncr += stats.NCR(gotTop, trueTop)
			// MAE over the true top 10 items, normalized by n.
			var m float64
			for _, v := range trueTop {
				m += math.Abs(estVec[v] - truth[v])
			}
			mae += m / 10 / float64(n)
		}
		k := float64(cfg.Trials)
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2f\t%.4f\n", n, numURLs, recall/k, ncr/k, mae/k)
	}
	return tw.Flush()
}

func userSecret(src ldprand.Source) []byte {
	buf := make([]byte, 16)
	for i := 0; i < 16; i += 8 {
		v := src.Uint64()
		for b := 0; b < 8; b++ {
			buf[i+b] = byte(v >> (8 * uint(b)))
		}
	}
	return buf
}

// runE5 reproduces the Apple white-paper trade-off: CMS accuracy vs
// sketch width and ε, and HCMS achieving comparable error with 1-bit
// reports (vs m-bit CMS reports).
func runE5(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "eps\twidth\tsystem\tmae_top20/n\tbits_per_report")
	const numWords = 200
	words := workload.Words(numWords)
	items := make([][]byte, numWords)
	for i, s := range words {
		items[i] = []byte(s)
	}
	n := cfg.Users
	for _, eps := range []float64{2.0, 4.0} {
		for _, width := range []int{128, 1024} {
			params := cms.Params{Epsilon: eps, Width: width, Hashes: 64, Seed: cfg.Seed}
			for _, system := range []string{"CMS", "HCMS"} {
				var mae float64
				var bits int
				for trial := 0; trial < cfg.Trials; trial++ {
					src := ldprand.NewSplitMix64(cfg.Seed + uint64(trial) + uint64(width) + uint64(eps*100))
					zipf := workload.NewZipf(src, 1.2, numWords)
					truth := make([]float64, numWords)
					var estimate func([]byte) float64
					switch system {
					case "CMS":
						client, err := cms.NewClient(params, src)
						if err != nil {
							return err
						}
						server, err := cms.NewServer(params)
						if err != nil {
							return err
						}
						for i := 0; i < n; i++ {
							v := zipf.Next()
							truth[v]++
							if err := server.Add(client.Report(items[v])); err != nil {
								return err
							}
						}
						estimate = server.Estimate
						bits = server.ReportBits()
					case "HCMS":
						client, err := cms.NewHadamardClient(params, src)
						if err != nil {
							return err
						}
						server, err := cms.NewHadamardServer(params)
						if err != nil {
							return err
						}
						for i := 0; i < n; i++ {
							v := zipf.Next()
							truth[v]++
							if err := server.Add(client.Report(items[v])); err != nil {
								return err
							}
						}
						estimate = server.Estimate
						bits = server.ReportBits()
					}
					top := stats.TopK(truth, 20)
					var m float64
					for _, v := range top {
						m += math.Abs(estimate(items[v]) - truth[v])
					}
					mae += m / 20 / float64(n)
				}
				fmt.Fprintf(tw, "%.1f\t%d\t%s\t%.4f\t%d\n",
					eps, width, system, mae/float64(cfg.Trials), bits)
			}
		}
	}
	return tw.Flush()
}

// runE7 reproduces Ding et al.: 1-bit mean error vs ε and n, and the
// memoization ablation — without memoization an observer averages T
// rounds to recover a user's value; with it the per-user view is
// constant while the population mean stays accurate.
func runE7(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "eps\tn\tmean_abs_err\ttheory_sigma")
	const max = 24.0
	for _, eps := range []float64{0.5, 1, 2} {
		for _, n := range []int{cfg.Users / 10, cfg.Users} {
			p := telemetry.MeanParams{Epsilon: eps, Max: max}
			var sumErr float64
			for trial := 0; trial < cfg.Trials; trial++ {
				src := ldprand.NewSplitMix64(cfg.Seed + uint64(n+trial) + uint64(eps*100))
				col, err := telemetry.NewMeanCollector(p)
				if err != nil {
					return err
				}
				values := workload.Counters(src, max, n)
				var truth float64
				for _, x := range values {
					truth += x
					if err := col.Add(telemetry.OneBit(p, x, src)); err != nil {
						return err
					}
				}
				truth /= float64(n)
				sumErr += math.Abs(col.Estimate() - truth)
			}
			fmt.Fprintf(tw, "%.1f\t%d\t%.3f\t%.3f\n",
				eps, n, sumErr/float64(cfg.Trials), math.Sqrt(telemetry.MeanVariance(p, n)))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Memoization ablation over T rounds for one fixed user value.
	fmt.Fprintln(w, "  repeated collection of one user (x=18, Max=24, eps=1):")
	tw = table(w)
	fmt.Fprintln(tw, "rounds\tdistinct_reports_memoized\tattack_estimate_naive\tattack_estimate_memoized")
	p := telemetry.MeanParams{Epsilon: 1, Max: 24}
	const x = 18.0
	src := ldprand.NewSplitMix64(cfg.Seed)
	client, err := telemetry.NewClient(p, userSecret(src), "app-usage")
	if err != nil {
		return err
	}
	for _, rounds := range []int{10, 100, 1000} {
		naiveSum, memoSum := 0, 0
		distinct := make(map[int]bool)
		for r := 0; r < rounds; r++ {
			naiveSum += client.NaiveReport(x, src)
			b := client.Report(x)
			memoSum += b
			distinct[b] = true
		}
		e := math.Exp(p.Epsilon)
		invert := func(sum int) float64 {
			rate := float64(sum) / float64(rounds)
			return (rate*(e+1) - 1) / (e - 1) * p.Max
		}
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.1f\n",
			rounds, len(distinct), invert(naiveSum), invert(memoSum))
	}
	fmt.Fprintln(tw, "(naive attack converges to the true 18.0; memoized stays at a single point)")
	return tw.Flush()
}

// runE13 reports the communication cost per mechanism (the E13 time
// numbers come from `go test -bench`, which shares these mechanisms).
func runE13(w io.Writer, cfg Config) error {
	tw := table(w)
	fmt.Fprintln(tw, "mechanism\tdomain\tbits_per_report\tnotes")
	const d = 1024
	for _, m := range freqMechanismRows(d) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", m.name, d, m.bits, m.note)
	}
	fmt.Fprintln(tw, "(ns/report per mechanism: go test -bench=BenchmarkE13 -benchmem)")
	return tw.Flush()
}
