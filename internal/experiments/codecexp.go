package experiments

// E19: the wire/snapshot codec comparison backing the binary hot
// path. Every other experiment reproduces an accuracy result; this
// one reproduces the systems claim — per-report wire bytes and
// checkpoint encode/restore cost, JSON vs the versioned binary
// codecs, at a configurable sketch scale. cmd/ldpbench re-exports the
// structured summary into its -json output so the BENCH_PR*.json
// trajectory records the measured ratios, not just wall clocks.

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/cmstask"
	"repro/internal/task/freqtask"
	"repro/internal/task/meantask"
)

// CodecReportCost is one mechanism's average wire cost per report in
// both encodings, over a fixed sample of privatized reports.
type CodecReportCost struct {
	Task      string  `json:"task"`
	Mechanism string  `json:"mechanism"`
	JSONBytes float64 `json:"json_bytes"`
	BinBytes  float64 `json:"binary_bytes"`
	Ratio     float64 `json:"json_over_binary"`
}

// CodecSnapshotCost is the checkpoint-state cost of one populated
// CMS-style sketch collection in both encodings: state size, encode
// and restore wall time, and the derived throughput figures.
type CodecSnapshotCost struct {
	Width          int     `json:"width"`
	Hashes         int     `json:"hashes"`
	Reports        int     `json:"reports"`
	JSONBytes      int     `json:"json_state_bytes"`
	BinBytes       int     `json:"binary_state_bytes"`
	SizeRatio      float64 `json:"json_over_binary_size"`
	JSONEncodeSec  float64 `json:"json_encode_seconds"`
	BinEncodeSec   float64 `json:"binary_encode_seconds"`
	JSONEncodeMBps float64 `json:"json_encode_mb_per_s"`
	BinEncodeMBps  float64 `json:"binary_encode_mb_per_s"`
	JSONRestoreSec float64 `json:"json_restore_seconds"`
	BinRestoreSec  float64 `json:"binary_restore_seconds"`
	JSONDecodeMBps float64 `json:"json_restore_mb_per_s"`
	BinDecodeMBps  float64 `json:"binary_restore_mb_per_s"`
	RestoreSpeedup float64 `json:"restore_speedup"`
}

// CodecSummary is the machine-readable result of the codec
// comparison, the `codec` section of ldpbench's -json output.
type CodecSummary struct {
	Epsilon  float64           `json:"epsilon"`
	Domain   int               `json:"freq_domain"`
	Sample   int               `json:"reports_sampled"`
	Reports  []CodecReportCost `json:"bytes_per_report"`
	Snapshot CodecSnapshotCost `json:"snapshot"`
}

// codecSample is how many privatized reports each mechanism's wire
// cost is averaged over.
const codecSample = 100

// Codec measures both codecs across the task families: average wire
// bytes per report for every frequency mechanism plus the mean and
// sketch clients, then the snapshot cost of a CMS collection with the
// given sketch geometry (width cells per row, hashes rows). The
// sketch is populated with enough privatized reports to touch nearly
// every row, so the JSON state carries realistic long-decimal floats
// rather than compressible zeros.
func Codec(cfg Config, width, hashes int) (CodecSummary, error) {
	const (
		eps    = 2.0
		domain = 1024
	)
	sum := CodecSummary{Epsilon: eps, Domain: domain, Sample: codecSample}
	src := ldprand.NewSplitMix64(cfg.Seed)

	for _, mech := range freqtask.Mechanisms() {
		o, err := freqtask.NewOracle(mech, eps, domain, src)
		if err != nil {
			return sum, err
		}
		var jb, bb int
		for i := 0; i < codecSample; i++ {
			v := ldprand.Intn(src, domain)
			env, err := freqtask.Privatize(o, v)
			if err != nil {
				return sum, err
			}
			raw, err := json.Marshal(env)
			if err != nil {
				return sum, err
			}
			bin, err := freqtask.PrivatizeBinary(o, v)
			if err != nil {
				return sum, err
			}
			jb += len(raw)
			bb += len(bin)
		}
		sum.Reports = append(sum.Reports, reportCost("freq", mech, jb, bb))
	}

	for _, mech := range []string{meantask.MechanismDuchi, meantask.MechanismHarmony} {
		dim := 1
		if mech == meantask.MechanismHarmony {
			dim = 8
		}
		mcfg := task.Config{Task: task.TypeMean, Mechanism: mech, Epsilon: eps, Dim: dim}
		client, err := meantask.NewClient(mcfg, src)
		if err != nil {
			return sum, err
		}
		var jb, bb int
		for i := 0; i < codecSample; i++ {
			x := make([]float64, dim)
			for j := range x {
				x[j] = 2*ldprand.Float64(src) - 1
			}
			raw, err := client.Report(x)
			if err != nil {
				return sum, err
			}
			bin, err := client.ReportBinary(x)
			if err != nil {
				return sum, err
			}
			jb += len(raw)
			bb += len(bin)
		}
		sum.Reports = append(sum.Reports, reportCost("mean", mech, jb, bb))
	}

	for _, mech := range cmstask.Mechanisms() {
		scfg := task.Config{Task: task.TypeSketch, Mechanism: mech, Epsilon: eps, Width: 1024, Hashes: 16, SketchSeed: cfg.Seed}
		client, err := cmstask.NewClient(scfg, src)
		if err != nil {
			return sum, err
		}
		var jb, bb int
		for i := 0; i < codecSample; i++ {
			item := []byte(fmt.Sprintf("item-%d", ldprand.Intn(src, 64)))
			raw, err := client.Report(item)
			if err != nil {
				return sum, err
			}
			bin, err := client.ReportBinary(item)
			if err != nil {
				return sum, err
			}
			jb += len(raw)
			bb += len(bin)
		}
		sum.Reports = append(sum.Reports, reportCost("sketch", mech, jb, bb))
	}

	snap, err := codecSnapshot(cfg, width, hashes, src)
	if err != nil {
		return sum, err
	}
	sum.Snapshot = snap
	return sum, nil
}

// reportCost folds one mechanism's byte totals into averages.
func reportCost(taskName, mech string, jsonTotal, binTotal int) CodecReportCost {
	jb := float64(jsonTotal) / codecSample
	bb := float64(binTotal) / codecSample
	return CodecReportCost{Task: taskName, Mechanism: mech, JSONBytes: jb, BinBytes: bb, Ratio: jb / bb}
}

// codecSnapshot populates one CMS sketch and measures its state in
// both codecs. Each CMS report folds into a single sampled row, so
// 4×hashes reports leave ~98% of the rows carrying privatized floats
// — the realistic occupancy a deployed collection checkpoints.
func codecSnapshot(cfg Config, width, hashes int, src ldprand.Source) (CodecSnapshotCost, error) {
	scfg := task.Config{Task: task.TypeSketch, Mechanism: cmstask.MechanismCMS, Epsilon: 2, Width: width, Hashes: hashes, SketchSeed: cfg.Seed}
	agg, err := task.New(scfg)
	if err != nil {
		return CodecSnapshotCost{}, err
	}
	client, err := cmstask.NewClient(scfg, src)
	if err != nil {
		return CodecSnapshotCost{}, err
	}
	reports := 4 * hashes
	prep := agg.(task.BinaryReporter)
	for i := 0; i < reports; i++ {
		bin, err := client.ReportBinary([]byte(fmt.Sprintf("item-%d", ldprand.Intn(src, 4096))))
		if err != nil {
			return CodecSnapshotCost{}, err
		}
		prepared, err := prep.PrepareBinary(bin)
		if err != nil {
			return CodecSnapshotCost{}, err
		}
		if err := prep.Fold(prepared); err != nil {
			return CodecSnapshotCost{}, err
		}
	}

	out := CodecSnapshotCost{Width: width, Hashes: hashes, Reports: reports}
	start := time.Now()
	jsonState, err := agg.MarshalState()
	if err != nil {
		return out, err
	}
	out.JSONEncodeSec = time.Since(start).Seconds()
	bs := agg.(task.BinaryStater)
	start = time.Now()
	binState, err := bs.MarshalStateBinary()
	if err != nil {
		return out, err
	}
	out.BinEncodeSec = time.Since(start).Seconds()
	out.JSONBytes, out.BinBytes = len(jsonState), len(binState)

	fresh, err := task.New(scfg)
	if err != nil {
		return out, err
	}
	start = time.Now()
	if err := fresh.UnmarshalState(jsonState); err != nil {
		return out, err
	}
	out.JSONRestoreSec = time.Since(start).Seconds()
	fresh, err = task.New(scfg)
	if err != nil {
		return out, err
	}
	start = time.Now()
	if err := fresh.(task.BinaryStater).UnmarshalStateBinary(binState); err != nil {
		return out, err
	}
	out.BinRestoreSec = time.Since(start).Seconds()

	mbps := func(bytes int, sec float64) float64 {
		if sec <= 0 {
			return 0
		}
		return float64(bytes) / (1 << 20) / sec
	}
	out.SizeRatio = float64(out.JSONBytes) / float64(out.BinBytes)
	out.JSONEncodeMBps = mbps(out.JSONBytes, out.JSONEncodeSec)
	out.BinEncodeMBps = mbps(out.BinBytes, out.BinEncodeSec)
	out.JSONDecodeMBps = mbps(out.JSONBytes, out.JSONRestoreSec)
	out.BinDecodeMBps = mbps(out.BinBytes, out.BinRestoreSec)
	if out.BinRestoreSec > 0 {
		out.RestoreSpeedup = out.JSONRestoreSec / out.BinRestoreSec
	}
	return out, nil
}

// runE19 prints the codec comparison at a suite-sized sketch scale;
// ldpbench -codec re-runs Codec at deployment scale (2^16 cells ×
// 2^10 rows by default) for the recorded BENCH numbers.
func runE19(w io.Writer, cfg Config) error {
	sum, err := Codec(cfg, 4096, 64)
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "task\tmechanism\tjson B/report\tbinary B/report\tratio")
	for _, r := range sum.Reports {
		fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%.2fx\n", r.Task, r.Mechanism, r.JSONBytes, r.BinBytes, r.Ratio)
	}
	s := sum.Snapshot
	fmt.Fprintf(tw, "snapshot\tCMS %dx%d\t%d B\t%d B\t%.2fx\n", s.Width, s.Hashes, s.JSONBytes, s.BinBytes, s.SizeRatio)
	fmt.Fprintf(tw, "restore\tCMS %dx%d\t%.4fs\t%.4fs\t%.2fx\n", s.Width, s.Hashes, s.JSONRestoreSec, s.BinRestoreSec, s.RestoreSpeedup)
	return tw.Flush()
}
