package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smallConfig keeps the full-suite smoke test fast.
func smallConfig() Config {
	return Config{Users: 2000, Trials: 1, Seed: 42}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(&buf, e, smallConfig()); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("output missing header: %q", out[:min(80, len(out))])
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Errorf("%s produced suspiciously short output:\n%s", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E2")
	if err != nil || e.ID != "E2" {
		t.Fatalf("ByID(E2) = %+v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Users: 10, Trials: 1}).Validate(); err == nil {
		t.Error("tiny population accepted")
	}
	if err := (Config{Users: 1000, Trials: 0}).Validate(); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	e, _ := ByID("E1")
	if err := Run(&buf, e, Config{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Source == "" || e.Run == nil {
			t.Errorf("%s incomplete", e.ID)
		}
	}
	if len(seen) != 20 {
		t.Fatalf("have %d experiments, want 20", len(seen))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
