package graph

import (
	"math"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestNoisyDegreesUnbiased(t *testing.T) {
	src := ldprand.NewSplitMix64(1)
	g := workload.ErdosRenyi(src, 400, 0.05)
	noisy := NoisyDegrees(1.0, g, src)
	if len(noisy) != g.N {
		t.Fatalf("length %d", len(noisy))
	}
	var trueSum, noisySum float64
	for v := 0; v < g.N; v++ {
		trueSum += float64(g.Degree(v))
		noisySum += noisy[v]
	}
	// Noise is zero-mean; sums should agree within a few noise sigmas.
	sigma := math.Sqrt(float64(g.N) * 2) // var 2b² = 2 per vertex at ε=1
	if math.Abs(trueSum-noisySum) > 6*sigma {
		t.Errorf("degree sums differ: true %.0f noisy %.0f", trueSum, noisySum)
	}
}

func TestNoisyDegreesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NoisyDegrees(0, workload.NewGraph(1), nil)
}

func TestDegreeDistributionCloseToTruth(t *testing.T) {
	src := ldprand.NewSplitMix64(2)
	g := workload.BarabasiAlbert(src, 2000, 3)
	maxDeg := 0
	for _, d := range g.Degrees() {
		if d > maxDeg {
			maxDeg = d
		}
	}
	noisy := NoisyDegrees(2.0, g, src)
	est := DegreeDistribution(noisy, maxDeg)
	truth := TrueDegreeDistribution(g, maxDeg)
	if ks := stats.KSDistance(est, truth); ks > 0.1 {
		t.Errorf("degree distribution KS %.4f too large", ks)
	}
}

func TestDegreeDistributionEmpty(t *testing.T) {
	hist := DegreeDistribution(nil, 5)
	for _, v := range hist {
		if v != 0 {
			t.Fatal("empty input should give zero histogram")
		}
	}
}

func TestDegreeDistributionClamps(t *testing.T) {
	hist := DegreeDistribution([]float64{-3, 100}, 5)
	if hist[0] != 0.5 || hist[5] != 0.5 {
		t.Fatalf("clamping wrong: %v", hist)
	}
}

func TestGenParamsValidate(t *testing.T) {
	if err := (GenParams{Epsilon: 1, Clusters: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (GenParams{Epsilon: 0, Clusters: 2}).Validate(); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if err := (GenParams{Epsilon: 1, Clusters: 0}).Validate(); err == nil {
		t.Error("0 clusters accepted")
	}
}

func TestGeneratePreservesDegreeShape(t *testing.T) {
	src := ldprand.NewSplitMix64(3)
	g := workload.BarabasiAlbert(src, 600, 4)
	syn, err := Generate(GenParams{Epsilon: 4, Clusters: 4}, g, src)
	if err != nil {
		t.Fatal(err)
	}
	if syn.N != g.N {
		t.Fatalf("synthetic n=%d want %d", syn.N, g.N)
	}
	// Edge count within a factor of 2.
	ratio := float64(syn.Edges()) / float64(g.Edges())
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("edge ratio %.2f (syn %d, true %d)", ratio, syn.Edges(), g.Edges())
	}
	// Degree distributions not wildly different.
	maxDeg := 0
	for _, d := range append(g.Degrees(), syn.Degrees()...) {
		if d > maxDeg {
			maxDeg = d
		}
	}
	ks := stats.KSDistance(
		TrueDegreeDistribution(syn, maxDeg),
		TrueDegreeDistribution(g, maxDeg))
	if ks > 0.35 {
		t.Errorf("synthetic degree KS %.3f too large", ks)
	}
}

func TestGenerateEmptyGraph(t *testing.T) {
	syn, err := Generate(GenParams{Epsilon: 1, Clusters: 2}, workload.NewGraph(0), ldprand.NewSplitMix64(4))
	if err != nil {
		t.Fatal(err)
	}
	if syn.N != 0 {
		t.Fatalf("n=%d", syn.N)
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	if _, err := Generate(GenParams{Epsilon: 0, Clusters: 1}, workload.NewGraph(2), nil); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestGenerateMoreClustersThanVertices(t *testing.T) {
	src := ldprand.NewSplitMix64(5)
	g := workload.ErdosRenyi(src, 5, 0.5)
	syn, err := Generate(GenParams{Epsilon: 2, Clusters: 50}, g, src)
	if err != nil {
		t.Fatal(err)
	}
	if syn.N != 5 {
		t.Fatalf("n=%d", syn.N)
	}
}
