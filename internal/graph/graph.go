// Package graph implements LDP graph analytics (§1.3, after Qin et
// al., CCS 2017): degree estimation under edge-LDP via per-user noisy
// degrees, degree-distribution reconstruction, and LDPGen-style
// synthetic graph generation — users are clustered by noisy degree
// vectors toward cluster anchors, and a Chung–Lu graph is sampled from
// the estimated block structure.
package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ldprand"
	"repro/internal/workload"
)

// NoisyDegrees returns each vertex's degree plus Laplace(1/ε) noise —
// edge-LDP with sensitivity 1 (one edge changes a degree by one).
func NoisyDegrees(epsilon float64, g *workload.Graph, src ldprand.Source) []float64 {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		panic("graph: epsilon must be positive and finite")
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	out := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		out[v] = float64(g.Degree(v)) + ldprand.Laplace(src, 1/epsilon)
	}
	return out
}

// DegreeDistribution turns noisy degrees into an estimated degree
// histogram over [0, maxDegree]: noisy values are rounded and clamped,
// a simple consistent post-processing step.
func DegreeDistribution(noisy []float64, maxDegree int) []float64 {
	hist := make([]float64, maxDegree+1)
	if len(noisy) == 0 {
		return hist
	}
	for _, d := range noisy {
		k := int(math.Round(d))
		if k < 0 {
			k = 0
		}
		if k > maxDegree {
			k = maxDegree
		}
		hist[k]++
	}
	for i := range hist {
		hist[i] /= float64(len(noisy))
	}
	return hist
}

// TrueDegreeDistribution computes the exact degree histogram.
func TrueDegreeDistribution(g *workload.Graph, maxDegree int) []float64 {
	hist := make([]float64, maxDegree+1)
	if g.N == 0 {
		return hist
	}
	for v := 0; v < g.N; v++ {
		k := g.Degree(v)
		if k > maxDegree {
			k = maxDegree
		}
		hist[k]++
	}
	for i := range hist {
		hist[i] /= float64(g.N)
	}
	return hist
}

// GenParams configures LDPGen-style synthetic graph generation.
type GenParams struct {
	Epsilon  float64 // total per-user budget, split across two phases
	Clusters int     // number of degree-based clusters
}

// Validate checks parameter ranges.
func (p GenParams) Validate() error {
	if p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0) {
		return fmt.Errorf("graph: epsilon must be positive and finite")
	}
	if p.Clusters < 1 {
		return fmt.Errorf("graph: need at least 1 cluster, got %d", p.Clusters)
	}
	return nil
}

// Generate builds a synthetic graph resembling g without the collector
// ever seeing raw adjacency: phase 1 collects noisy total degrees
// (ε/2) and partitions users into degree quantile clusters; phase 2
// collects each user's noisy edge count toward every cluster (ε/2,
// sensitivity 1 per edge move split across the vector by Laplace with
// scale 2·Clusters/ε); the synthetic graph is sampled from the
// estimated block model with per-vertex expected degrees (Chung–Lu
// within blocks).
func Generate(params GenParams, g *workload.Graph, src ldprand.Source) (*workload.Graph, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	n := g.N
	if n == 0 {
		return workload.NewGraph(0), nil
	}
	k := params.Clusters
	if k > n {
		k = n
	}
	epsPhase := params.Epsilon / 2

	// Phase 1: noisy degrees, quantile clustering.
	noisy := NoisyDegrees(epsPhase, g, src)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return noisy[order[a]] < noisy[order[b]] })
	clusterOf := make([]int, n)
	for rank, v := range order {
		clusterOf[v] = rank * k / n
	}

	// Phase 2: noisy per-cluster edge counts. Moving one edge changes
	// two entries of the vector by 1 each (L1 sensitivity 2), so each
	// entry gets Laplace(2/ε_phase).
	blockDegree := make([][]float64, n)
	for v := 0; v < n; v++ {
		vec := make([]float64, k)
		for u := range g.Adj[v] {
			vec[clusterOf[u]]++
		}
		for c := range vec {
			vec[c] += ldprand.Laplace(src, 2/epsPhase)
			if vec[c] < 0 {
				vec[c] = 0
			}
		}
		blockDegree[v] = vec
	}

	// Expected edges between clusters and per-vertex weights.
	clusterMembers := make([][]int, k)
	for v, c := range clusterOf {
		clusterMembers[c] = append(clusterMembers[c], v)
	}
	// wSum[a][b] = estimated total edge endpoints from cluster a into b.
	wSum := make([][]float64, k)
	for a := range wSum {
		wSum[a] = make([]float64, k)
	}
	for v := 0; v < n; v++ {
		a := clusterOf[v]
		for b := 0; b < k; b++ {
			wSum[a][b] += blockDegree[v][b]
		}
	}

	// Chung–Lu sampling within each cluster pair: edge (u,v) for u in a,
	// v in b appears with probability w_u(b)·w_v(a)/wSum, capped at 1.
	syn := workload.NewGraph(n)
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			// Symmetrize the two directional estimates.
			total := (wSum[a][b] + wSum[b][a]) / 2
			if total <= 0 {
				continue
			}
			for _, u := range clusterMembers[a] {
				for _, v := range clusterMembers[b] {
					// Within a cluster every unordered pair shows up
					// twice, so keep only u < v; across clusters the
					// member sets are disjoint and each pair appears
					// exactly once.
					if a == b && u >= v {
						continue
					}
					p := blockDegree[u][b] * blockDegree[v][a] / total
					if p > 1 {
						p = 1
					}
					if ldprand.Bernoulli(src, p) {
						syn.AddEdge(u, v)
					}
				}
			}
		}
	}
	return syn, nil
}
