package heavyhitters

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hashutil"
	"repro/internal/ldprand"
)

// SFPParams configures the sequence fragment puzzle for discovering
// frequent words over a lowercase alphabet without a candidate
// dictionary.
type SFPParams struct {
	Epsilon   float64 // per-user budget
	WordLen   int     // fixed word length L
	HashBits  int     // tag bits grouping fragments of the same word
	K         int     // heavy hitters to return
	Threshold float64 // minimum estimated fragment frequency (fraction); 0 means 1%
	Seed      uint64  // shared tag-hash seed
}

// Validate checks parameter ranges.
func (p SFPParams) Validate() error {
	switch {
	case p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0):
		return fmt.Errorf("heavyhitters: epsilon must be positive and finite")
	case p.WordLen < 1 || p.WordLen > 16:
		return fmt.Errorf("heavyhitters: WordLen must be in [1,16], got %d", p.WordLen)
	case p.HashBits < 1 || p.HashBits > 12:
		return fmt.Errorf("heavyhitters: HashBits must be in [1,12], got %d", p.HashBits)
	case p.K < 1:
		return fmt.Errorf("heavyhitters: K must be positive")
	case p.Threshold < 0 || p.Threshold >= 1:
		return fmt.Errorf("heavyhitters: Threshold must be in [0,1)")
	}
	return nil
}

func (p SFPParams) threshold() float64 {
	if p.Threshold == 0 {
		return 0.01
	}
	return p.Threshold
}

// tag returns the HashBits-bit tag of a word.
func (p SFPParams) tag(word string) uint64 {
	return hashutil.Hash64(p.Seed, []byte(word)) & ((1 << uint(p.HashBits)) - 1)
}

// fragmentValue encodes (tag, character) as one value of the fragment
// oracle's domain: tag·26 + letterIndex.
func (p SFPParams) fragmentValue(word string, pos int) (uint64, error) {
	ch := word[pos]
	if ch < 'a' || ch > 'z' {
		return 0, fmt.Errorf("heavyhitters: word %q has non a-z character", word)
	}
	return p.tag(word)*26 + uint64(ch-'a'), nil
}

// FindSFP discovers frequent words among the users' values. Users are
// split: half report one random fragment (position chosen uniformly,
// value = tag ⊕ character via OLH), half verify assembled candidates
// with a second OLH round. Returns up to K hits sorted by estimated
// count, values encoded as words via Hit-compatible structure below.
func FindSFP(params SFPParams, words []string, src ldprand.Source) ([]WordHit, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	for _, w := range words {
		if len(w) != params.WordLen {
			return nil, fmt.Errorf("heavyhitters: word %q is not length %d", w, params.WordLen)
		}
		for i := 0; i < len(w); i++ {
			if w[i] < 'a' || w[i] > 'z' {
				return nil, fmt.Errorf("heavyhitters: word %q has non a-z character", w)
			}
		}
	}
	n := len(words)
	if n == 0 {
		return nil, nil
	}
	mech := NewLHMech(params.Epsilon)

	// Split users: fragment reporters per position, then verifiers.
	// Fragment group = first half, divided evenly among positions.
	half := n / 2
	fragReports := make([][]LHReport, params.WordLen)
	order := ldprand.Perm(src, n)
	var verifierIdx []int
	for u, w := range words {
		slot := order[u]
		if slot < half {
			pos := slot * params.WordLen / maxInt(half, 1)
			fv, err := params.fragmentValue(w, pos)
			if err != nil {
				return nil, err
			}
			fragReports[pos] = append(fragReports[pos], mech.Privatize(fv, src))
		} else {
			verifierIdx = append(verifierIdx, u)
		}
	}

	// Per position, estimate all (tag, char) fragment counts and keep
	// characters above threshold for each tag.
	numTags := 1 << uint(params.HashBits)
	candidates := make([]uint64, numTags*26)
	for i := range candidates {
		candidates[i] = uint64(i)
	}
	// heavyChars[tag][pos] = characters surviving the threshold.
	heavyChars := make([][][]byte, numTags)
	for t := range heavyChars {
		heavyChars[t] = make([][]byte, params.WordLen)
	}
	for pos := 0; pos < params.WordLen; pos++ {
		reports := fragReports[pos]
		if len(reports) == 0 {
			continue
		}
		counts := mech.EstimateCounts(reports, candidates)
		minCount := params.threshold() * float64(len(reports))
		for i, c := range counts {
			if c >= minCount {
				tag := i / 26
				ch := byte('a' + i%26)
				heavyChars[tag][pos] = append(heavyChars[tag][pos], ch)
			}
		}
	}

	// Assemble candidate words per tag (cross product, capped), keeping
	// only words whose tag actually matches.
	const maxPerTag = 256
	var assembled []string
	for t := 0; t < numTags; t++ {
		partial := []string{""}
		complete := true
		for pos := 0; pos < params.WordLen; pos++ {
			chars := heavyChars[t][pos]
			if len(chars) == 0 {
				complete = false
				break
			}
			next := make([]string, 0, len(partial)*len(chars))
			for _, w := range partial {
				for _, ch := range chars {
					next = append(next, w+string(ch))
					if len(next) > maxPerTag {
						break
					}
				}
				if len(next) > maxPerTag {
					break
				}
			}
			partial = next
		}
		if !complete {
			continue
		}
		for _, w := range partial {
			if params.tag(w) == uint64(t) {
				assembled = append(assembled, w)
			}
		}
	}
	if len(assembled) == 0 {
		return nil, nil
	}
	sort.Strings(assembled)

	// Verification round: the second half of users reports its word
	// (hashed onto the assembled candidate list) via OLH; estimate
	// counts of each candidate and return the top K.
	wordIndex := make(map[string]uint64, len(assembled))
	for i, w := range assembled {
		wordIndex[w] = uint64(i)
	}
	verifyReports := make([]LHReport, 0, len(verifierIdx))
	// Words outside the candidate list map to a sentinel beyond the
	// candidate range, so they only contribute background noise.
	sentinel := uint64(len(assembled))
	for _, u := range verifierIdx {
		v, ok := wordIndex[words[u]]
		if !ok {
			v = sentinel
		}
		verifyReports = append(verifyReports, mech.Privatize(v, src))
	}
	candVals := make([]uint64, len(assembled))
	for i := range candVals {
		candVals[i] = uint64(i)
	}
	counts := mech.EstimateCounts(verifyReports, candVals)
	scale := float64(n) / float64(maxInt(len(verifyReports), 1))
	hits := make([]WordHit, 0, len(assembled))
	for i, w := range assembled {
		if counts[i] <= 0 {
			continue
		}
		hits = append(hits, WordHit{Word: w, Count: counts[i] * scale})
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Count > hits[b].Count })
	if len(hits) > params.K {
		hits = hits[:params.K]
	}
	return hits, nil
}

// WordHit is one discovered word with its estimated count.
type WordHit struct {
	Word  string
	Count float64
}
