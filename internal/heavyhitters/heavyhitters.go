// Package heavyhitters identifies frequent items from domains far too
// large to enumerate — the problem behind RAPPOR's unknown-dictionary
// work and Apple's new-words discovery, and a research thread the
// tutorial follows through Bassily–Smith, Qin et al. and Wang et al.
// (§1.2).
//
// Two protocols are implemented:
//
//   - PEM, the prefix extending method: items are B-bit strings; user
//     groups reveal progressively longer prefixes through a local-hashing
//     oracle, and only children of surviving prefixes are considered at
//     the next level, keeping every level's candidate set small.
//
//   - SFP, a sequence fragment puzzle in the style of Apple's discovery
//     pipeline: users report one random fragment of their word tagged
//     with a short hash of the whole word; fragments sharing a tag are
//     assembled into candidate words and verified with a second oracle.
package heavyhitters

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hashutil"
	"repro/internal/ldprand"
)

// Hit is one discovered heavy hitter with its estimated count.
type Hit struct {
	Value uint64  // the item (bit-string domain)
	Count float64 // estimated number of holders
}

// LHReport is one local-hashing report over an implicit uint64 domain:
// the client's hash seed plus its (randomized) bucket. Given the seed,
// the server can test support of any candidate value, which is what
// lets the protocols query candidate sets chosen after collection.
type LHReport struct {
	Seed   uint64 `json:"seed"`
	Bucket int    `json:"bucket"`
}

// LHMech privatizes uint64 values with OLH and estimates counts over
// explicit candidate sets — the building block the batch protocols and
// the served multi-round hh task share.
type LHMech struct {
	epsilon float64
	g       int
	p       float64
}

// NewLHMech derives the optimal-local-hashing parameters (bucket count
// g, truth probability p) from the privacy budget.
func NewLHMech(epsilon float64) LHMech {
	g := int(math.Ceil(math.Exp(epsilon))) + 1
	if g < 2 {
		g = 2
	}
	expE := math.Exp(epsilon)
	return LHMech{epsilon: epsilon, g: g, p: expE / (expE + float64(g) - 1)}
}

// G returns the hash bucket count; a report's Bucket is in [0, G).
func (m LHMech) G() int { return m.g }

// Privatize produces the local-hashing report for value v.
func (m LHMech) Privatize(v uint64, src ldprand.Source) LHReport {
	seed := src.Uint64()
	bucket := hashutil.Range(hashutil.HashInt64(seed, int(v)), m.g)
	if !ldprand.Bernoulli(src, m.p) {
		other := ldprand.Intn(src, m.g-1)
		if other >= bucket {
			other++
		}
		bucket = other
	}
	return LHReport{Seed: seed, Bucket: bucket}
}

// EstimateCounts returns the debiased estimated count of each candidate
// among the reports.
//
// It is the list-based reference implementation: FoldSupport +
// EstimateFromSupport compute the same estimates incrementally from a
// fixed-size accumulator, and because per-report support is a 0/1
// indicator summed exactly (float64 increments from zero are exact
// below 2^53, as is the int64 conversion), the two paths are
// bit-identical for any report multiset in any order.
func (m LHMech) EstimateCounts(reports []LHReport, candidates []uint64) []float64 {
	support := make([]float64, len(candidates))
	for _, r := range reports {
		for i, c := range candidates {
			if m.Supports(r, c) {
				support[i]++
			}
		}
	}
	q := 1 / float64(m.g)
	den := m.p - q
	n := float64(len(reports))
	out := make([]float64, len(candidates))
	for i, s := range support {
		out[i] = (s - n*q) / den
	}
	return out
}

// Supports reports whether report r supports candidate c: whether c
// hashes (under r's seed) into the bucket r announced. This is the 0/1
// frequency indicator both estimate paths sum per candidate.
func (m LHMech) Supports(r LHReport, c uint64) bool {
	return hashutil.Range(hashutil.HashInt64(r.Seed, int(c)), m.g) == r.Bucket
}

// FoldSupport adds one report's support indicators into the
// per-candidate sums, which must have len(candidates) entries. Folding
// every report of a multiset (in any order — integer addition commutes)
// leaves sums holding exactly the support tallies EstimateCounts
// computes internally, at O(len(candidates)) memory instead of
// O(reports): this is the building block for serving protocols that
// must hold a round's state in constant space however much traffic the
// round absorbs.
func (m LHMech) FoldSupport(r LHReport, candidates []uint64, sums []int64) {
	for i, c := range candidates {
		if m.Supports(r, c) {
			sums[i]++
		}
	}
}

// EstimateFromSupport debiases support sums accumulated by FoldSupport
// over n reports. For sums folded from any n-report multiset the result
// is bit-identical to EstimateCounts over that multiset (see its
// comment for why).
func (m LHMech) EstimateFromSupport(sums []int64, n int) []float64 {
	q := 1 / float64(m.g)
	den := m.p - q
	nf := float64(n)
	out := make([]float64, len(sums))
	for i, s := range sums {
		out[i] = (float64(s) - nf*q) / den
	}
	return out
}

// PEMParams configures the prefix extending method.
type PEMParams struct {
	Epsilon float64 // per-user budget (each user reports once)
	Bits    int     // item length in bits, 1..63
	Levels  int     // number of user groups / prefix stages
	K       int     // heavy hitters to return
	// CandidateBudget caps the surviving prefixes per level. Zero means
	// 2·K, the customary setting.
	CandidateBudget int
}

// Validate checks parameter ranges.
func (p PEMParams) Validate() error {
	switch {
	case p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0):
		return fmt.Errorf("heavyhitters: epsilon must be positive and finite")
	case p.Bits < 1 || p.Bits > 63:
		return fmt.Errorf("heavyhitters: Bits must be in [1,63], got %d", p.Bits)
	case p.Levels < 1 || p.Levels > p.Bits:
		return fmt.Errorf("heavyhitters: Levels must be in [1,Bits], got %d", p.Levels)
	case p.K < 1:
		return fmt.Errorf("heavyhitters: K must be positive, got %d", p.K)
	case p.CandidateBudget < 0:
		return fmt.Errorf("heavyhitters: CandidateBudget must be non-negative")
	}
	return nil
}

// Budget returns the effective surviving-candidate cap per level:
// CandidateBudget, or the customary 2·K when unset.
func (p PEMParams) Budget() int {
	if p.CandidateBudget == 0 {
		return 2 * p.K
	}
	return p.CandidateBudget
}

// PrefixLen returns the prefix length examined at level i (0-based),
// spreading Bits evenly across Levels and always ending at Bits.
func (p PEMParams) PrefixLen(i int) int {
	return p.Bits * (i + 1) / p.Levels
}

// FindPEM runs the prefix extending method over the users' values.
// Each user participates in exactly one level (single report, full ε).
// It returns up to K heavy hitters sorted by decreasing estimated
// count, with counts scaled back to the full population.
func FindPEM(params PEMParams, values []uint64, src ldprand.Source) ([]Hit, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	for _, v := range values {
		if params.Bits < 64 && v >= 1<<uint(params.Bits) {
			return nil, fmt.Errorf("heavyhitters: value %d exceeds %d bits", v, params.Bits)
		}
	}
	mech := NewLHMech(params.Epsilon)
	n := len(values)
	if n == 0 {
		return nil, nil
	}

	// Shuffle users into level groups so skewed input order cannot bias
	// a level.
	order := ldprand.Perm(src, n)
	groupOf := func(u int) int { return order[u] * params.Levels / n }

	// Privatize: each user reports its prefix at its level.
	reportsAt := make([][]LHReport, params.Levels)
	for u, v := range values {
		lvl := groupOf(u)
		shift := uint(params.Bits - params.PrefixLen(lvl))
		reportsAt[lvl] = append(reportsAt[lvl], mech.Privatize(v>>shift, src))
	}

	// Extend prefixes level by level.
	candidates := []uint64{0} // the empty prefix
	prevLen := 0
	var lastCounts []float64
	for lvl := 0; lvl < params.Levels; lvl++ {
		plen := params.PrefixLen(lvl)
		grow := plen - prevLen
		next := make([]uint64, 0, len(candidates)<<uint(grow))
		for _, c := range candidates {
			base := c << uint(grow)
			for ext := uint64(0); ext < 1<<uint(grow); ext++ {
				next = append(next, base|ext)
			}
		}
		counts := mech.EstimateCounts(reportsAt[lvl], next)
		// Keep the top candidates for the next level.
		idx := make([]int, len(next))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return counts[idx[a]] > counts[idx[b]] })
		keep := params.Budget()
		if lvl == params.Levels-1 {
			keep = params.K
		}
		if keep > len(idx) {
			keep = len(idx)
		}
		kept := make([]uint64, keep)
		keptCounts := make([]float64, keep)
		for i := 0; i < keep; i++ {
			kept[i] = next[idx[i]]
			keptCounts[i] = counts[idx[i]]
		}
		candidates, lastCounts = kept, keptCounts
		prevLen = plen
	}

	// Scale the last level's counts (estimated within its group) to the
	// full population.
	scale := float64(n) / float64(maxInt(len(reportsAt[params.Levels-1]), 1))
	hits := make([]Hit, 0, len(candidates))
	for i, c := range candidates {
		if lastCounts[i] <= 0 {
			continue
		}
		hits = append(hits, Hit{Value: c, Count: lastCounts[i] * scale})
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Count > hits[b].Count })
	return hits, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BaselineGRR finds heavy hitters by running plain OLH over the whole
// 2^Bits domain — feasible only for small Bits, and the baseline E6
// compares PEM against.
func BaselineGRR(epsilon float64, bits, k int, values []uint64, src ldprand.Source) ([]Hit, error) {
	if bits < 1 || bits > 20 {
		return nil, fmt.Errorf("heavyhitters: baseline requires Bits in [1,20], got %d", bits)
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	mech := NewLHMech(epsilon)
	reports := make([]LHReport, len(values))
	for i, v := range values {
		reports[i] = mech.Privatize(v, src)
	}
	d := 1 << uint(bits)
	candidates := make([]uint64, d)
	for i := range candidates {
		candidates[i] = uint64(i)
	}
	counts := mech.EstimateCounts(reports, candidates)
	hits := make([]Hit, 0, k)
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return counts[idx[a]] > counts[idx[b]] })
	for i := 0; i < k && i < d; i++ {
		if counts[idx[i]] <= 0 {
			break
		}
		hits = append(hits, Hit{Value: uint64(idx[i]), Count: counts[idx[i]]})
	}
	return hits, nil
}
