package heavyhitters

import (
	"math"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/workload"
)

// zipfValues draws n values over a 2^bits domain where the first few
// items carry most of the mass.
func zipfValues(seed uint64, bits, n int) []uint64 {
	src := ldprand.NewSplitMix64(seed)
	// Heavy items are spread across the prefix space (not clustered at
	// 0) to make prefix discovery non-trivial.
	domain := 1 << uint(bits)
	heavy := []uint64{
		uint64(domain * 3 / 7), uint64(domain * 5 / 9), uint64(domain / 13),
		uint64(domain * 7 / 11), uint64(domain * 2 / 5),
	}
	zipf := workload.NewZipf(src, 1.7, len(heavy)+1)
	out := make([]uint64, n)
	for i := range out {
		k := zipf.Next()
		if k < len(heavy) {
			out[i] = heavy[k]
		} else {
			out[i] = uint64(ldprand.Intn(src, domain))
		}
	}
	return out
}

func TestPEMFindsTopHitters(t *testing.T) {
	const bits, n = 12, 60000
	values := zipfValues(1, bits, n)
	truth := make(map[uint64]int)
	for _, v := range values {
		truth[v]++
	}
	params := PEMParams{Epsilon: 3, Bits: bits, Levels: 3, K: 5}
	hits, err := FindPEM(params, values, ldprand.NewSplitMix64(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no heavy hitters found")
	}
	// The most frequent item must be discovered.
	var best uint64
	bestCount := 0
	for v, c := range truth {
		if c > bestCount {
			best, bestCount = v, c
		}
	}
	found := false
	for _, h := range hits {
		if h.Value == best {
			found = true
			// Count should be in the right ballpark.
			if math.Abs(h.Count-float64(bestCount)) > 0.5*float64(bestCount) {
				t.Errorf("top item count %.0f truth %d", h.Count, bestCount)
			}
		}
	}
	if !found {
		t.Errorf("top item %d (count %d) not among hits %v", best, bestCount, hits)
	}
}

func TestPEMSortedDescending(t *testing.T) {
	values := zipfValues(3, 10, 20000)
	hits, err := FindPEM(PEMParams{Epsilon: 3, Bits: 10, Levels: 2, K: 8}, values, ldprand.NewSplitMix64(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Count > hits[i-1].Count {
			t.Fatalf("hits not sorted: %v", hits)
		}
	}
}

func TestPEMEmptyInput(t *testing.T) {
	hits, err := FindPEM(PEMParams{Epsilon: 1, Bits: 8, Levels: 2, K: 3}, nil, ldprand.NewSplitMix64(1))
	if err != nil {
		t.Fatal(err)
	}
	if hits != nil {
		t.Fatalf("expected nil hits, got %v", hits)
	}
}

func TestPEMRejectsOverflowValues(t *testing.T) {
	_, err := FindPEM(PEMParams{Epsilon: 1, Bits: 4, Levels: 2, K: 3},
		[]uint64{1 << 4}, ldprand.NewSplitMix64(1))
	if err == nil {
		t.Fatal("value beyond Bits accepted")
	}
}

func TestPEMParamsValidate(t *testing.T) {
	bad := []PEMParams{
		{Epsilon: 0, Bits: 8, Levels: 2, K: 1},
		{Epsilon: 1, Bits: 0, Levels: 1, K: 1},
		{Epsilon: 1, Bits: 64, Levels: 2, K: 1},
		{Epsilon: 1, Bits: 8, Levels: 9, K: 1},
		{Epsilon: 1, Bits: 8, Levels: 0, K: 1},
		{Epsilon: 1, Bits: 8, Levels: 2, K: 0},
		{Epsilon: 1, Bits: 8, Levels: 2, K: 1, CandidateBudget: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	good := PEMParams{Epsilon: 1, Bits: 8, Levels: 2, K: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
}

func TestPrefixLenMonotone(t *testing.T) {
	p := PEMParams{Epsilon: 1, Bits: 13, Levels: 4, K: 1}
	prev := 0
	for i := 0; i < p.Levels; i++ {
		l := p.PrefixLen(i)
		if l <= prev && !(i == 0 && l > 0) {
			t.Fatalf("prefix lengths not increasing: level %d len %d after %d", i, l, prev)
		}
		prev = l
	}
	if prev != p.Bits {
		t.Fatalf("final prefix length %d want %d", prev, p.Bits)
	}
}

func TestBaselineMatchesPEMOnSmallDomain(t *testing.T) {
	// On a small domain both methods should find the same top item.
	const bits, n = 8, 40000
	values := zipfValues(7, bits, n)
	base, err := BaselineGRR(3, bits, 3, values, ldprand.NewSplitMix64(8))
	if err != nil {
		t.Fatal(err)
	}
	pem, err := FindPEM(PEMParams{Epsilon: 3, Bits: bits, Levels: 2, K: 3}, values, ldprand.NewSplitMix64(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 || len(pem) == 0 {
		t.Fatal("empty results")
	}
	if base[0].Value != pem[0].Value {
		t.Errorf("baseline top %d != PEM top %d", base[0].Value, pem[0].Value)
	}
}

func TestBaselineRejectsHugeDomain(t *testing.T) {
	if _, err := BaselineGRR(1, 24, 3, nil, nil); err == nil {
		t.Fatal("24-bit baseline accepted")
	}
}

func TestLHMechanismCalibration(t *testing.T) {
	m := NewLHMech(2)
	src := ldprand.NewSplitMix64(10)
	const n = 30000
	reports := make([]LHReport, n)
	for i := range reports {
		reports[i] = m.Privatize(42, src)
	}
	counts := m.EstimateCounts(reports, []uint64{42, 43})
	if math.Abs(counts[0]-n) > 0.1*n {
		t.Errorf("true item estimate %.0f want about %d", counts[0], n)
	}
	if math.Abs(counts[1]) > 0.1*n {
		t.Errorf("absent item estimate %.0f want about 0", counts[1])
	}
}

// TestSupportFoldMatchesEstimateCounts pins the accumulator primitives
// against the list-based reference: folding each report's support
// indicators into integer sums and debiasing once must reproduce
// EstimateCounts bit for bit, in any fold order and across any split
// of the reports (vector-added partial sums).
func TestSupportFoldMatchesEstimateCounts(t *testing.T) {
	for _, epsilon := range []float64{0.5, 2, 5} {
		mech := NewLHMech(epsilon)
		src := ldprand.NewSplitMix64(uint64(math.Float64bits(epsilon)))
		candidates := make([]uint64, 48)
		for i := range candidates {
			candidates[i] = uint64(ldprand.Intn(src, 1<<12))
		}
		reports := make([]LHReport, 700)
		for i := range reports {
			reports[i] = mech.Privatize(candidates[ldprand.Intn(src, len(candidates))], src)
		}
		want := mech.EstimateCounts(reports, candidates)

		sums := make([]int64, len(candidates))
		for _, i := range ldprand.Perm(src, len(reports)) { // arbitrary fold order
			mech.FoldSupport(reports[i], candidates, sums)
		}
		// Split-and-add: partial sums over any partition add to the same
		// vector (this is what shard merges rely on).
		split := ldprand.Intn(src, len(reports)-1) + 1
		partial := make([]int64, len(candidates))
		for _, half := range [][]LHReport{reports[:split], reports[split:]} {
			part := make([]int64, len(candidates))
			for _, r := range half {
				mech.FoldSupport(r, candidates, part)
			}
			for i := range partial {
				partial[i] += part[i]
			}
		}
		for i := range sums {
			if sums[i] != partial[i] {
				t.Fatalf("eps=%v: split fold sum[%d]=%d, whole fold %d", epsilon, i, partial[i], sums[i])
			}
		}
		got := mech.EstimateFromSupport(sums, len(reports))
		for i := range want {
			if got[i] != want[i] { // exact: same float ops on the same integers
				t.Fatalf("eps=%v candidate %d: accumulator %v, EstimateCounts %v", epsilon, i, got[i], want[i])
			}
		}
	}
}
