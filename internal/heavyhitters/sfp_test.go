package heavyhitters

import (
	"testing"

	"repro/internal/ldprand"
	"repro/internal/workload"
)

func sfpParams() SFPParams {
	return SFPParams{Epsilon: 4, WordLen: 6, HashBits: 6, K: 3, Seed: 77}
}

func TestSFPParamsValidate(t *testing.T) {
	if err := sfpParams().Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	bad := []SFPParams{
		{Epsilon: 0, WordLen: 6, HashBits: 4, K: 1},
		{Epsilon: 1, WordLen: 0, HashBits: 4, K: 1},
		{Epsilon: 1, WordLen: 20, HashBits: 4, K: 1},
		{Epsilon: 1, WordLen: 6, HashBits: 0, K: 1},
		{Epsilon: 1, WordLen: 6, HashBits: 16, K: 1},
		{Epsilon: 1, WordLen: 6, HashBits: 4, K: 0},
		{Epsilon: 1, WordLen: 6, HashBits: 4, K: 1, Threshold: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSFPDiscoversFrequentWords(t *testing.T) {
	// Three words dominate; SFP must surface the most frequent without
	// a candidate dictionary.
	params := sfpParams()
	pool := workload.Words(2000)
	src := ldprand.NewSplitMix64(11)
	const n = 60000
	words := make([]string, n)
	for i := range words {
		r := ldprand.Float64(src)
		switch {
		case r < 0.35:
			words[i] = pool[100]
		case r < 0.6:
			words[i] = pool[500]
		case r < 0.8:
			words[i] = pool[900]
		default:
			words[i] = pool[ldprand.Intn(src, len(pool))]
		}
	}
	hits, err := FindSFP(params, words, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no words discovered")
	}
	found := false
	for _, h := range hits {
		if h.Word == pool[100] {
			found = true
		}
	}
	if !found {
		t.Errorf("most frequent word %q not discovered; hits=%v", pool[100], hits)
	}
}

func TestSFPRejectsWrongLength(t *testing.T) {
	if _, err := FindSFP(sfpParams(), []string{"short"}, ldprand.NewSplitMix64(1)); err == nil {
		t.Fatal("wrong-length word accepted")
	}
}

func TestSFPRejectsNonAlpha(t *testing.T) {
	if _, err := FindSFP(sfpParams(), []string{"abc12f"}, ldprand.NewSplitMix64(1)); err == nil {
		t.Fatal("non-alpha word accepted")
	}
}

func TestSFPEmptyInput(t *testing.T) {
	hits, err := FindSFP(sfpParams(), nil, ldprand.NewSplitMix64(1))
	if err != nil || hits != nil {
		t.Fatalf("empty input: hits=%v err=%v", hits, err)
	}
}

func TestSFPTagStable(t *testing.T) {
	p := sfpParams()
	if p.tag("abcdef") != p.tag("abcdef") {
		t.Fatal("tag not deterministic")
	}
	if p.tag("abcdef") >= 1<<uint(p.HashBits) {
		t.Fatal("tag out of range")
	}
}

func TestSFPHitsSorted(t *testing.T) {
	pool := workload.Words(100)
	src := ldprand.NewSplitMix64(13)
	words := make([]string, 20000)
	for i := range words {
		words[i] = pool[ldprand.Intn(src, 5)] // five frequent words
	}
	hits, err := FindSFP(sfpParams(), words, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Count > hits[i-1].Count {
			t.Fatalf("hits not sorted: %v", hits)
		}
	}
	if len(hits) > sfpParams().K {
		t.Fatalf("returned %d hits, K=%d", len(hits), sfpParams().K)
	}
}
