package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(256, 4, 1)
	items := make([][]byte, 50)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("url-%d.example.com", i))
		f.Add(items[i])
	}
	for _, it := range items {
		if !f.Test(it) {
			t.Fatalf("false negative for %s", it)
		}
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	const m, n = 1024, 80
	f := New(m, OptimalK(m, n), 7)
	for i := 0; i < n; i++ {
		f.Add([]byte(fmt.Sprintf("member-%d", i)))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.Test([]byte(fmt.Sprintf("nonmember-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	predicted := f.FalsePositiveRate(n)
	if rate > predicted*3+0.01 {
		t.Errorf("observed FP rate %v far above predicted %v", rate, predicted)
	}
}

func TestEncodeMatchesPositions(t *testing.T) {
	f := New(128, 3, 42)
	item := []byte("hello")
	v := f.Encode(item)
	for _, p := range f.Positions(item) {
		if !v.Get(p) {
			t.Fatalf("encoded vector missing position %d", p)
		}
	}
	if v.Count() > 3 {
		t.Fatalf("encoded vector has %d bits set, k=3", v.Count())
	}
	// Encode must not mutate the filter.
	if f.Bits().Count() != 0 {
		t.Fatal("Encode mutated the filter")
	}
}

func TestPositionsDeterministicProperty(t *testing.T) {
	f := New(512, 4, 99)
	fn := func(item []byte) bool {
		a := f.Positions(item)
		b := f.Positions(item)
		for i := range a {
			if a[i] != b[i] || a[i] < 0 || a[i] >= 512 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestSameSeedSameEncoding(t *testing.T) {
	// RAPPOR requires the server to reproduce client encodings exactly.
	client := New(64, 2, 1234)
	server := New(64, 2, 1234)
	other := New(64, 2, 9999)
	item := []byte("www.news.example")
	cv := client.Encode(item)
	sv := server.Encode(item)
	ov := other.Encode(item)
	if !cv.Equal(sv) {
		t.Error("same seed must produce identical encodings")
	}
	if cv.Equal(ov) {
		t.Error("different seeds should produce different encodings (overwhelmingly)")
	}
}

func TestOptimalK(t *testing.T) {
	if k := OptimalK(1024, 100); k < 5 || k > 9 {
		t.Errorf("OptimalK(1024,100)=%d want about 7", k)
	}
	if k := OptimalK(8, 1000); k != 1 {
		t.Errorf("OptimalK small m = %d want 1", k)
	}
	if k := OptimalK(100, 0); k != 1 {
		t.Errorf("OptimalK n=0 = %d want 1", k)
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 1, 0) },
		func() { New(10, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAccessors(t *testing.T) {
	f := New(100, 3, 77)
	if f.M() != 100 || f.K() != 3 || f.Seed() != 77 {
		t.Fatalf("accessors wrong: m=%d k=%d seed=%d", f.M(), f.K(), f.Seed())
	}
}
