// Package bloom implements the Bloom filter substrate of Google's RAPPOR
// (§1.2(1)): each client hashes its string value into a short bit array
// with k seeded hash functions before randomizing the bits.
package bloom

import (
	"math"

	"repro/internal/bitvec"
	"repro/internal/hashutil"
)

// Filter is a Bloom filter over byte-string items with k seeded hash
// functions into m bits. Filters built with the same parameters and seed
// hash identically, which is what RAPPOR decoding requires: the server
// recomputes candidate bit patterns with the clients' public parameters.
type Filter struct {
	m    int
	k    int
	seed uint64
	bits *bitvec.Vector
}

// New returns an empty filter with m bits and k hash functions derived
// from seed. It panics if m or k is not positive.
func New(m, k int, seed uint64) *Filter {
	if m <= 0 || k <= 0 {
		panic("bloom: m and k must be positive")
	}
	return &Filter{m: m, k: k, seed: seed, bits: bitvec.New(m)}
}

// OptimalK returns the false-positive-minimizing hash count for a filter
// of m bits expecting n insertions: round(m/n · ln 2), at least 1.
func OptimalK(m, n int) int {
	if n <= 0 {
		return 1
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return k
}

// M returns the filter size in bits.
func (f *Filter) M() int { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Seed returns the seed the hash functions derive from.
func (f *Filter) Seed() uint64 { return f.seed }

// Positions returns the k bit positions item hashes to, in hash order
// (duplicates possible, as in a standard Bloom filter).
func (f *Filter) Positions(item []byte) []int {
	pos := make([]int, f.k)
	for i := range pos {
		pos[i] = hashutil.HashBytesRange(f.seed+uint64(i)*0x9e3779b97f4a7c15, item, f.m)
	}
	return pos
}

// Add inserts item into the filter.
func (f *Filter) Add(item []byte) {
	for _, p := range f.Positions(item) {
		f.bits.Set(p)
	}
}

// Test reports whether item may be in the filter (no false negatives).
func (f *Filter) Test(item []byte) bool {
	for _, p := range f.Positions(item) {
		if !f.bits.Get(p) {
			return false
		}
	}
	return true
}

// Bits returns the underlying bit vector (not a copy); RAPPOR perturbs
// it in place.
func (f *Filter) Bits() *bitvec.Vector { return f.bits }

// Encode returns the bit vector for a single item without mutating the
// filter, which is the client-side RAPPOR encoding step.
func (f *Filter) Encode(item []byte) *bitvec.Vector {
	v := bitvec.New(f.m)
	for _, p := range f.Positions(item) {
		v.Set(p)
	}
	return v
}

// FalsePositiveRate estimates the false-positive probability after n
// insertions: (1 − e^{−kn/m})^k.
func (f *Filter) FalsePositiveRate(n int) float64 {
	exp := -float64(f.k) * float64(n) / float64(f.m)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}
