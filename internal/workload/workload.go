// Package workload generates the synthetic datasets that stand in for
// the proprietary data of the deployed systems (see the substitution
// table in DESIGN.md): Zipf-distributed categorical values for URL and
// word frequencies, bounded numeric values for telemetry counters,
// planar Gaussian mixtures for locations, multidimensional binary
// records for marginals, and random graphs for the graph experiments.
package workload

import (
	"fmt"
	"math"

	"repro/internal/ldprand"
)

// Zipf samples integers in [0, n) with P(k) proportional to
// 1/(k+1)^s, the standard model for URL/word popularity. It uses
// Chakraborty-style inverse-CDF sampling over a precomputed table,
// which is exact and fast for the domain sizes used here.
type Zipf struct {
	cdf []float64
	src ldprand.Source
}

// NewZipf returns a Zipf(s) sampler over [0, n). It panics if n < 1 or
// s < 0.
func NewZipf(src ldprand.Source, s float64, n int) *Zipf {
	if n < 1 {
		panic("workload: Zipf needs n >= 1")
	}
	if s < 0 || math.IsNaN(s) {
		panic("workload: Zipf needs s >= 0")
	}
	cdf := make([]float64, n)
	var total float64
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	return &Zipf{cdf: cdf, src: src}
}

// Next draws one sample.
func (z *Zipf) Next() int {
	u := ldprand.Float64(z.src)
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Probabilities returns the exact sampling distribution, for computing
// ground truth without sampling error.
func (z *Zipf) Probabilities() []float64 {
	out := make([]float64, len(z.cdf))
	prev := 0.0
	for i, c := range z.cdf {
		out[i] = c - prev
		prev = c
	}
	return out
}

// Draw returns n samples from the sampler.
func (z *Zipf) Draw(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = z.Next()
	}
	return out
}

// Categorical draws values from an explicit distribution.
type Categorical struct {
	cdf []float64
	src ldprand.Source
}

// NewCategorical returns a sampler over the given (unnormalized,
// non-negative) weights. It panics if all weights are zero or any is
// negative.
func NewCategorical(src ldprand.Source, weights []float64) *Categorical {
	if len(weights) == 0 {
		panic("workload: empty weights")
	}
	cdf := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("workload: negative weight %v at %d", w, i))
		}
		total += w
		cdf[i] = total
	}
	if total == 0 {
		panic("workload: all weights zero")
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Categorical{cdf: cdf, src: src}
}

// Next draws one sample.
func (c *Categorical) Next() int {
	u := ldprand.Float64(c.src)
	lo, hi := 0, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// URLs returns a deterministic pool of n URL-like strings standing in
// for the browsing destinations RAPPOR collects.
func URLs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("www.site-%04d.example.com", i)
	}
	return out
}

// Words returns a deterministic pool of n word-like strings standing in
// for Apple's new-words discovery dictionary.
func Words(n int) []string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	out := make([]string, n)
	for i := range out {
		// Base-26 expansion, fixed width 6 so prefixes are informative.
		buf := make([]byte, 6)
		x := i
		for j := 5; j >= 0; j-- {
			buf[j] = letters[x%26]
			x /= 26
		}
		out[i] = string(buf)
	}
	return out
}

// Point is a location in the unit square.
type Point struct{ X, Y float64 }

// GaussianCluster describes one population center for location data.
type GaussianCluster struct {
	Center Point
	Sigma  float64
	Weight float64
}

// Locations samples n points from a mixture of Gaussian clusters,
// clamped to the unit square — the stand-in for user location traces.
func Locations(src ldprand.Source, clusters []GaussianCluster, n int) []Point {
	if len(clusters) == 0 {
		panic("workload: no clusters")
	}
	weights := make([]float64, len(clusters))
	for i, c := range clusters {
		weights[i] = c.Weight
	}
	pick := NewCategorical(src, weights)
	out := make([]Point, n)
	for i := range out {
		c := clusters[pick.Next()]
		x := c.Center.X + c.Sigma*ldprand.Normal(src)
		y := c.Center.Y + c.Sigma*ldprand.Normal(src)
		out[i] = Point{X: clamp01(x), Y: clamp01(y)}
	}
	return out
}

// DefaultCityClusters returns a plausible three-hotspot city layout
// used by E8 and the location example.
func DefaultCityClusters() []GaussianCluster {
	return []GaussianCluster{
		{Center: Point{0.25, 0.25}, Sigma: 0.05, Weight: 0.5},
		{Center: Point{0.7, 0.6}, Sigma: 0.08, Weight: 0.3},
		{Center: Point{0.5, 0.85}, Sigma: 0.04, Weight: 0.2},
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// BinaryRecords samples n records of d binary attributes where each
// attribute j is 1 with probability probs[j], independently — the
// ground-truth model for the marginal-release experiment. Each record
// is encoded as a d-bit integer (attribute j is bit j).
func BinaryRecords(src ldprand.Source, probs []float64, n int) []int {
	out := make([]int, n)
	for i := range out {
		rec := 0
		for j, p := range probs {
			if ldprand.Bernoulli(src, p) {
				rec |= 1 << uint(j)
			}
		}
		out[i] = rec
	}
	return out
}

// CorrelatedBinaryRecords samples records where attribute j+1 copies
// attribute j with probability corr, making low-order marginals
// informative (the regime where Fourier reconstruction shines).
func CorrelatedBinaryRecords(src ldprand.Source, d int, base, corr float64, n int) []int {
	out := make([]int, n)
	for i := range out {
		rec := 0
		prev := ldprand.Bernoulli(src, base)
		if prev {
			rec |= 1
		}
		for j := 1; j < d; j++ {
			var bit bool
			if ldprand.Bernoulli(src, corr) {
				bit = prev
			} else {
				bit = ldprand.Bernoulli(src, base)
			}
			if bit {
				rec |= 1 << uint(j)
			}
			prev = bit
		}
		out[i] = rec
	}
	return out
}

// Counters samples n per-user numeric values in [0, max], beta-shaped
// toward low usage — the stand-in for Microsoft's app-usage counters.
func Counters(src ldprand.Source, max float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		// Square a uniform to skew mass toward zero.
		u := ldprand.Float64(src)
		out[i] = u * u * max
	}
	return out
}

// DriftingCounters returns a matrix [round][user] of counters where
// each user's value drifts slightly between rounds, exercising the
// repeated-collection experiment (E7).
func DriftingCounters(src ldprand.Source, max float64, users, rounds int, drift float64) [][]float64 {
	cur := Counters(src, max, users)
	out := make([][]float64, rounds)
	for r := 0; r < rounds; r++ {
		snap := make([]float64, users)
		copy(snap, cur)
		out[r] = snap
		for u := range cur {
			cur[u] += drift * max * (ldprand.Float64(src) - 0.5)
			if cur[u] < 0 {
				cur[u] = 0
			}
			if cur[u] > max {
				cur[u] = max
			}
		}
	}
	return out
}

// Graph is an undirected simple graph on vertices 0..N-1 stored as
// adjacency sets.
type Graph struct {
	N   int
	Adj []map[int]bool
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	return &Graph{N: n, Adj: adj}
}

// AddEdge inserts the undirected edge (u, v); self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.Adj[u][v] = true
	g.Adj[v][u] = true
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// Degrees returns the degree sequence.
func (g *Graph) Degrees() []int {
	out := make([]int, g.N)
	for i := range out {
		out[i] = g.Degree(i)
	}
	return out
}

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	total := 0
	for i := range g.Adj {
		total += len(g.Adj[i])
	}
	return total / 2
}

// ClusteringCoefficient returns the global clustering coefficient
// (3×triangles / open wedges), 0 for degenerate graphs.
func (g *Graph) ClusteringCoefficient() float64 {
	var triangles, wedges float64
	for v := 0; v < g.N; v++ {
		neigh := make([]int, 0, len(g.Adj[v]))
		for u := range g.Adj[v] {
			neigh = append(neigh, u)
		}
		dv := len(neigh)
		wedges += float64(dv*(dv-1)) / 2
		for i := 0; i < dv; i++ {
			for j := i + 1; j < dv; j++ {
				if g.Adj[neigh[i]][neigh[j]] {
					triangles++
				}
			}
		}
	}
	if wedges == 0 {
		return 0
	}
	// Each triangle is counted once per corner (3 times).
	return triangles / wedges
}

// ErdosRenyi samples G(n, p).
func ErdosRenyi(src ldprand.Source, n int, p float64) *Graph {
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if ldprand.Bernoulli(src, p) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// BarabasiAlbert grows a preferential-attachment graph where each new
// vertex attaches to m existing vertices, producing the heavy-tailed
// degree sequences typical of social graphs.
func BarabasiAlbert(src ldprand.Source, n, m int) *Graph {
	if m < 1 || n <= m {
		panic("workload: BA needs n > m >= 1")
	}
	g := NewGraph(n)
	// Repeated-endpoint list drives preferential attachment.
	endpoints := make([]int, 0, 2*n*m)
	for v := 0; v < m; v++ {
		g.AddEdge(v, (v+1)%m)
		endpoints = append(endpoints, v, (v+1)%m)
	}
	if m == 1 {
		endpoints = append(endpoints, 0)
	}
	for v := m; v < n; v++ {
		chosen := make(map[int]bool)
		for len(chosen) < m {
			t := endpoints[ldprand.Intn(src, len(endpoints))]
			if t != v {
				chosen[t] = true
			}
		}
		for t := range chosen {
			g.AddEdge(v, t)
			endpoints = append(endpoints, v, t)
		}
	}
	return g
}
