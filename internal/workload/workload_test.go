package workload

import (
	"math"
	"testing"

	"repro/internal/ldprand"
)

func src(seed uint64) ldprand.Source { return ldprand.NewSplitMix64(seed) }

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	z := NewZipf(src(1), 1.1, 100)
	probs := z.Probabilities()
	var sum float64
	for _, p := range probs {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z := NewZipf(src(1), 1.5, 50)
	probs := z.Probabilities()
	for i := 1; i < len(probs); i++ {
		if probs[i] > probs[i-1]+1e-12 {
			t.Fatalf("probabilities not decreasing at %d: %v > %v", i, probs[i], probs[i-1])
		}
	}
}

func TestZipfEmpiricalMatchesExact(t *testing.T) {
	z := NewZipf(src(42), 1.0, 20)
	probs := z.Probabilities()
	const n = 200000
	counts := make([]int, 20)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for k, p := range probs {
		got := float64(counts[k]) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("value %d: frequency %.4f want %.4f", k, got, p)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(src(1), 0, 10)
	for _, p := range z.Probabilities() {
		if math.Abs(p-0.1) > 1e-9 {
			t.Fatalf("s=0 should be uniform, got %v", p)
		}
	}
}

func TestZipfDraw(t *testing.T) {
	z := NewZipf(src(3), 1, 8)
	xs := z.Draw(1000)
	if len(xs) != 1000 {
		t.Fatalf("Draw length %d", len(xs))
	}
	for _, x := range xs {
		if x < 0 || x >= 8 {
			t.Fatalf("sample %d out of range", x)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(src(1), 1, 0) },
		func() { NewZipf(src(1), -1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCategoricalCalibration(t *testing.T) {
	c := NewCategorical(src(9), []float64{1, 3, 0, 6})
	const n = 100000
	counts := make([]int, 4)
	for i := 0; i < n; i++ {
		counts[c.Next()]++
	}
	want := []float64{0.1, 0.3, 0, 0.6}
	for i := range want {
		got := float64(counts[i]) / n
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("bucket %d: %.3f want %.3f", i, got, want[i])
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCategorical(src(1), nil) },
		func() { NewCategorical(src(1), []float64{0, 0}) },
		func() { NewCategorical(src(1), []float64{1, -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestURLsAndWordsDeterministic(t *testing.T) {
	a, b := URLs(10), URLs(10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("URLs not deterministic")
		}
	}
	w := Words(30)
	seen := make(map[string]bool)
	for _, s := range w {
		if len(s) != 6 {
			t.Fatalf("word %q not 6 letters", s)
		}
		if seen[s] {
			t.Fatalf("duplicate word %q", s)
		}
		seen[s] = true
	}
}

func TestLocationsInUnitSquare(t *testing.T) {
	pts := Locations(src(5), DefaultCityClusters(), 5000)
	if len(pts) != 5000 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("point %+v outside unit square", p)
		}
	}
}

func TestLocationsClusterMass(t *testing.T) {
	clusters := DefaultCityClusters()
	pts := Locations(src(7), clusters, 20000)
	// Count points within 3 sigma of the heaviest cluster center.
	c := clusters[0]
	near := 0
	for _, p := range pts {
		dx, dy := p.X-c.Center.X, p.Y-c.Center.Y
		if math.Sqrt(dx*dx+dy*dy) < 3*c.Sigma {
			near++
		}
	}
	frac := float64(near) / 20000
	if frac < c.Weight*0.8 {
		t.Errorf("only %.2f of mass near heaviest cluster, want at least %.2f", frac, c.Weight*0.8)
	}
}

func TestBinaryRecordsMarginals(t *testing.T) {
	probs := []float64{0.2, 0.5, 0.8}
	recs := BinaryRecords(src(11), probs, 100000)
	for j, p := range probs {
		ones := 0
		for _, r := range recs {
			if r&(1<<uint(j)) != 0 {
				ones++
			}
		}
		got := float64(ones) / float64(len(recs))
		if math.Abs(got-p) > 0.01 {
			t.Errorf("attribute %d: frequency %.3f want %.3f", j, got, p)
		}
	}
}

func TestCorrelatedBinaryRecordsCorrelate(t *testing.T) {
	recs := CorrelatedBinaryRecords(src(13), 4, 0.5, 0.9, 50000)
	// Adjacent attributes should agree much more often than 50%.
	agree := 0
	for _, r := range recs {
		b0 := r & 1
		b1 := (r >> 1) & 1
		if b0 == b1 {
			agree++
		}
	}
	frac := float64(agree) / float64(len(recs))
	if frac < 0.85 {
		t.Errorf("adjacent agreement %.3f, want > 0.85 with corr=0.9", frac)
	}
}

func TestCountersInRange(t *testing.T) {
	cs := Counters(src(17), 24, 10000)
	var sum float64
	for _, c := range cs {
		if c < 0 || c > 24 {
			t.Fatalf("counter %v out of range", c)
		}
		sum += c
	}
	mean := sum / float64(len(cs))
	// E[u²]·24 = 8 for uniform u.
	if math.Abs(mean-8) > 0.5 {
		t.Errorf("counter mean %.2f want about 8", mean)
	}
}

func TestDriftingCountersShape(t *testing.T) {
	mat := DriftingCounters(src(19), 10, 100, 5, 0.1)
	if len(mat) != 5 || len(mat[0]) != 100 {
		t.Fatalf("shape %dx%d want 5x100", len(mat), len(mat[0]))
	}
	// Rounds must be snapshots, not aliases.
	mat[0][0] = 999
	if mat[1][0] == 999 {
		t.Fatal("rounds alias the same slice")
	}
	for r := range mat {
		for _, v := range mat[r] {
			if v < 0 || v > 10 {
				if v != 999 {
					t.Fatalf("value %v out of range", v)
				}
			}
		}
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	g := ErdosRenyi(src(23), 100, 0.1)
	want := 0.1 * 100 * 99 / 2
	got := float64(g.Edges())
	if math.Abs(got-want) > 0.3*want {
		t.Errorf("edges %v want about %v", got, want)
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 3) // self-loop ignored
	if g.Edges() != 3 {
		t.Fatalf("edges=%d want 3", g.Edges())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %v", g.Degrees())
	}
	// Triangle 0-1-2: clustering coefficient 1.
	if cc := g.ClusteringCoefficient(); cc != 1 {
		t.Fatalf("clustering %v want 1", cc)
	}
}

func TestBarabasiAlbertDegrees(t *testing.T) {
	g := BarabasiAlbert(src(29), 500, 3)
	if g.N != 500 {
		t.Fatalf("n=%d", g.N)
	}
	degs := g.Degrees()
	minDeg, maxDeg := degs[0], degs[0]
	for _, d := range degs {
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	if minDeg < 1 {
		t.Error("BA graph has isolated vertex")
	}
	// Preferential attachment should produce hubs much larger than m.
	if maxDeg < 10 {
		t.Errorf("max degree %d suspiciously small for BA", maxDeg)
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BarabasiAlbert(src(1), 3, 3)
}
