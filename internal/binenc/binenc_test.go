package binenc

import (
	"math"
	"testing"
)

// TestRoundTrip drives every primitive through a Writer and back
// through a Reader.
func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	defer w.Release()
	w.Byte(7)
	w.Uvarint(0)
	w.Uvarint(1<<63 + 5)
	w.Varint(-12345)
	w.Uint64(math.MaxUint64)
	w.Float64(math.Copysign(0, -1))
	w.Float64(math.NaN())
	w.String("OLH")
	w.Blob([]byte{1, 2, 3})
	w.Ints([]int{0, -1, 1 << 40})
	w.Int64s([]int64{math.MinInt64, math.MaxInt64})
	w.Float64s([]float64{1.5, -2.25, math.Inf(1)})

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 7 {
		t.Errorf("Byte = %d", got)
	}
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<63+5 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -12345 {
		t.Errorf("Varint = %d", got)
	}
	if got := r.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := r.Float64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("Float64 = %v (bits %x)", got, math.Float64bits(got))
	}
	if got := r.Float64(); !math.IsNaN(got) {
		t.Errorf("Float64 = %v, want NaN", got)
	}
	if got := r.String(); got != "OLH" {
		t.Errorf("String = %q", got)
	}
	if got := r.Blob(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Blob = %v", got)
	}
	ints := r.Ints()
	if len(ints) != 3 || ints[0] != 0 || ints[1] != -1 || ints[2] != 1<<40 {
		t.Errorf("Ints = %v", ints)
	}
	i64s := r.Int64s()
	if len(i64s) != 2 || i64s[0] != math.MinInt64 || i64s[1] != math.MaxInt64 {
		t.Errorf("Int64s = %v", i64s)
	}
	f64s := r.Float64s()
	if len(f64s) != 3 || f64s[0] != 1.5 || f64s[1] != -2.25 || !math.IsInf(f64s[2], 1) {
		t.Errorf("Float64s = %v", f64s)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

// TestTruncation checks that every primitive refuses a payload cut
// short, latching an error instead of panicking or reading past the
// end.
func TestTruncation(t *testing.T) {
	w := NewWriter()
	defer w.Release()
	w.Uint64(42)
	w.Float64s([]float64{1, 2, 3, 4})
	full := append([]byte(nil), w.Bytes()...)

	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Uint64()
		r.Float64s()
		if err := r.Done(); err == nil {
			t.Errorf("truncation at %d/%d not detected", cut, len(full))
		}
	}
}

// TestLengthLie checks the over-allocation guard: a length prefix
// claiming more elements than the remaining bytes could hold is
// refused before any allocation.
func TestLengthLie(t *testing.T) {
	w := NewWriter()
	defer w.Release()
	w.Uvarint(1 << 40) // claims 2^40 elements, delivers none
	r := NewReader(w.Bytes())
	if got := r.Float64s(); got != nil {
		t.Errorf("Float64s = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Fatal("length-lying prefix not refused")
	}

	w2 := NewWriter()
	defer w2.Release()
	w2.Uvarint(math.MaxUint64) // would overflow a naive int conversion
	r2 := NewReader(w2.Bytes())
	if r2.Ints() != nil || r2.Err() == nil {
		t.Fatal("overflowing length prefix not refused")
	}
}

// TestTrailingBytes checks Done rejects unconsumed input.
func TestTrailingBytes(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.Byte()
	if err := r.Done(); err == nil {
		t.Fatal("trailing byte not detected")
	}
}

// TestStickyError checks reads after an error return zero values.
func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	r.Byte() // latches truncation
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint after error = %d", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String after error = %q", got)
	}
	if r.Err() == nil {
		t.Fatal("error not latched")
	}
}
