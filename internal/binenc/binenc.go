// Package binenc provides the primitives shared by every binary codec
// in the repository: length-prefixed fixed layouts assembled by an
// append-only Writer and consumed by a bounds-checked Reader.
//
// The encoding vocabulary is deliberately small — bytes, varints
// (unsigned, and zig-zag for signed), IEEE-754 float64s in fixed
// little-endian, and length-prefixed blobs — because every state and
// envelope format in this repo is a handful of parameters plus one
// large numeric vector. Integer vectors are varint-packed (support
// sums are small in practice), float vectors are raw 8-byte words
// (they are noise-bearing and incompressible), and bit vectors travel
// as their packed words instead of base64 text.
//
// Readers are hostile-input safe: every length prefix is validated
// against the bytes actually remaining before any allocation, so a
// frame that lies about its length is refused with an error instead
// of provoking a huge make(). Errors are sticky — after the first
// malformed field every subsequent read returns zero values — so
// decoders can parse a whole struct and check Err once, mirroring how
// encoding/json surfaces the first syntax error.
package binenc

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sync"
)

// Writer assembles a binary payload by appending primitive fields.
// The zero value is ready to use; NewWriter draws one from a pool
// (return it with Release) so hot paths reuse encode buffers instead
// of churning the GC.
type Writer struct {
	buf []byte
}

// writerPool recycles encode buffers through the batch-ingest and
// checkpoint hot paths. Oversized buffers (a checkpoint of a huge
// sketch) are dropped at Release rather than pinned forever.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// maxPooledBuf bounds the capacity a released Writer may keep: big
// enough that report envelopes and mid-size states always reuse, small
// enough that one giant checkpoint buffer does not stay resident.
const maxPooledBuf = 1 << 20

// NewWriter returns an empty pooled Writer.
func NewWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.buf = w.buf[:0]
	return w
}

// Release returns the Writer to the pool. The caller must not touch
// the Writer, or any []byte obtained from Bytes, afterwards.
func (w *Writer) Release() {
	if cap(w.buf) > maxPooledBuf {
		w.buf = nil
	}
	writerPool.Put(w)
}

// Reset discards the accumulated payload, keeping the buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the accumulated payload. The slice aliases the
// Writer's buffer: copy it (or finish with it) before Release.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes accumulated so far.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(u uint64) { w.buf = binary.AppendUvarint(w.buf, u) }

// Varint appends a zig-zag signed varint.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Uint64 appends a fixed 8-byte little-endian word — for values like
// hash seeds that use all 64 bits, where a varint would be longer.
func (w *Writer) Uint64(u uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, u) }

// Float64 appends the IEEE-754 bits of f as a fixed little-endian
// word, so every float — including negative zero and NaN payloads —
// round-trips bit for bit.
func (w *Writer) Float64(f float64) { w.Uint64(math.Float64bits(f)) }

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Ints appends a length-prefixed vector of zig-zag varints. Count and
// support vectors are small non-negative numbers in practice, so the
// packed form is a fraction of the 8 bytes per element a fixed layout
// would spend.
func (w *Writer) Ints(s []int) {
	w.Uvarint(uint64(len(s)))
	for _, v := range s {
		w.Varint(int64(v))
	}
}

// Int64s appends a length-prefixed vector of zig-zag varints.
func (w *Writer) Int64s(s []int64) {
	w.Uvarint(uint64(len(s)))
	for _, v := range s {
		w.Varint(v)
	}
}

// Float64s appends a length-prefixed vector of fixed 8-byte floats.
func (w *Writer) Float64s(s []float64) {
	w.Uvarint(uint64(len(s)))
	w.RawFloat64s(s)
}

// RawFloat64s appends fixed 8-byte floats with no length prefix, for
// callers assembling one logical vector from chunks (a sketch's rows)
// under a single prefix they wrote themselves.
func (w *Writer) RawFloat64s(s []float64) {
	w.buf = growBy(w.buf, 8*len(s))
	for _, f := range s {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
	}
}

// Packed-float modes: count-like float vectors (local-hashing support
// tallies, sketch totals) hold whole numbers almost always, where a
// varint is a fraction of the fixed 8 bytes; noise-bearing vectors
// fall back to raw words. The mode byte keeps both bit-exact.
const (
	packedFloatsRaw   = 0 // uvarint len + raw 8-byte words
	packedFloatsWhole = 1 // uvarint len + zig-zag varints
	maxWholeFloat     = 1 << 53
)

// PackedFloat64s appends a float vector in the smaller of two exact
// encodings: zig-zag varints when every element is a whole number
// small enough that the integer round-trips through float64 bit for
// bit (|v| ≤ 2⁵³, including negative zero — which is whole but not
// identical to +0, so it forces raw mode), raw 8-byte words otherwise.
func (w *Writer) PackedFloat64s(s []float64) {
	whole := true
	for _, f := range s {
		if f != math.Trunc(f) || math.Abs(f) > maxWholeFloat || math.Float64bits(f) == math.Float64bits(math.Copysign(0, -1)) {
			whole = false
			break
		}
	}
	if !whole {
		w.Byte(packedFloatsRaw)
		w.Float64s(s)
		return
	}
	w.Byte(packedFloatsWhole)
	w.Uvarint(uint64(len(s)))
	for _, f := range s {
		w.Varint(int64(f))
	}
}

// PackedFloat64s reads a vector written by Writer.PackedFloat64s.
func (r *Reader) PackedFloat64s() []float64 {
	switch mode := r.Byte(); mode {
	case packedFloatsRaw:
		return r.Float64s()
	case packedFloatsWhole:
		n := r.length(1)
		if r.err != nil || n == 0 {
			return nil
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(r.Varint())
		}
		if r.err != nil {
			return nil
		}
		return out
	default:
		if r.err == nil {
			r.fail("unknown packed-float mode %d", mode)
		}
		return nil
	}
}

// growBy ensures buf has room to append n more bytes without further
// reallocation, growing geometrically so a sequence of growBy calls —
// a sketch streaming a thousand half-megabyte rows — costs amortized
// O(total), not a full copy per call.
func growBy(buf []byte, n int) []byte {
	return slices.Grow(buf, n)
}

// Reader consumes a binary payload produced by Writer. All reads are
// bounds-checked against the remaining input; the first malformed
// field latches an error and every later read returns zero values.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader aliases b; the caller
// must not mutate it while decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns the latched decode error, or an error if unconsumed
// bytes remain — a payload with trailing garbage is as malformed as a
// truncated one.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if n := r.Remaining(); n > 0 {
		return fmt.Errorf("binenc: %d trailing bytes after payload", n)
	}
	return nil
}

// fail latches the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("binenc: "+format, args...)
	}
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 1 {
		r.fail("truncated byte")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return u
}

// Varint reads a zig-zag signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Uint64 reads a fixed 8-byte little-endian word.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail("truncated uint64")
		return 0
	}
	u := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return u
}

// Float64 reads a fixed 8-byte IEEE-754 float.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// length validates a length prefix against the bytes remaining, given
// the minimum encoded size of one element. This is the over-allocation
// guard: a prefix claiming more elements than the remaining bytes
// could possibly hold is refused before any make().
func (r *Reader) length(minElem int) int {
	u := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if u > uint64(r.Remaining()/minElem) {
		r.fail("length %d exceeds %d remaining bytes", u, r.Remaining())
		return 0
	}
	return int(u)
}

// Length reads a length prefix and validates it against the bytes
// remaining, given the minimum encoded size of one element — the same
// over-allocation guard the built-in vector reads use, exported so
// composite decoders can guard their own repeated structures before
// allocating.
func (r *Reader) Length(minElem int) int { return r.length(minElem) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Blob reads a length-prefixed byte slice. The result aliases the
// Reader's input; callers that retain it past the input's lifetime
// must copy.
func (r *Reader) Blob() []byte {
	n := r.length(1)
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

// Ints reads a length-prefixed vector of zig-zag varints.
func (r *Reader) Ints() []int {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.Varint())
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Int64s reads a length-prefixed vector of zig-zag varints.
func (r *Reader) Int64s() []int64 {
	n := r.length(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Varint()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Float64s reads a length-prefixed vector of fixed 8-byte floats.
func (r *Reader) Float64s() []float64 {
	n := r.length(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
		r.off += 8
	}
	return out
}
