// Package stats implements the statistical machinery the tutorial builds
// on (§1.1): moments, confidence tail bounds, and the error metrics used
// throughout the experiment suite (MSE, total variation, KS distance,
// precision/recall for heavy hitters).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n), or 0
// for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (dividing by n−1).
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return Variance(xs) * float64(len(xs)) / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MSE returns the mean squared error between estimates and truth. The
// slices must have equal length.
func MSE(est, truth []float64) float64 {
	mustMatch(len(est), len(truth))
	if len(est) == 0 {
		return 0
	}
	var ss float64
	for i := range est {
		d := est[i] - truth[i]
		ss += d * d
	}
	return ss / float64(len(est))
}

// MAE returns the mean absolute error between estimates and truth.
func MAE(est, truth []float64) float64 {
	mustMatch(len(est), len(truth))
	if len(est) == 0 {
		return 0
	}
	var sum float64
	for i := range est {
		sum += math.Abs(est[i] - truth[i])
	}
	return sum / float64(len(est))
}

// MaxAbsError returns the largest absolute error (L∞ distance).
func MaxAbsError(est, truth []float64) float64 {
	mustMatch(len(est), len(truth))
	var worst float64
	for i := range est {
		if d := math.Abs(est[i] - truth[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TotalVariation returns the total variation distance between two
// distributions: half the L1 distance. Inputs are normalized first, so
// raw counts are accepted; all-zero inputs are treated as uniform.
func TotalVariation(p, q []float64) float64 {
	mustMatch(len(p), len(q))
	pn, qn := normalize(p), normalize(q)
	var sum float64
	for i := range pn {
		sum += math.Abs(pn[i] - qn[i])
	}
	return sum / 2
}

// KSDistance returns the Kolmogorov–Smirnov distance between the
// empirical CDFs of two distributions over the same ordered support.
func KSDistance(p, q []float64) float64 {
	mustMatch(len(p), len(q))
	pn, qn := normalize(p), normalize(q)
	var cp, cq, worst float64
	for i := range pn {
		cp += pn[i]
		cq += qn[i]
		if d := math.Abs(cp - cq); d > worst {
			worst = d
		}
	}
	return worst
}

func normalize(p []float64) []float64 {
	var sum float64
	for _, v := range p {
		if v > 0 {
			sum += v
		}
	}
	out := make([]float64, len(p))
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i, v := range p {
		if v > 0 {
			out[i] = v / sum
		}
	}
	return out
}

// HoeffdingBound returns the two-sided deviation t such that the mean of
// n independent samples bounded in [lo, hi] stays within ±t of its
// expectation with probability at least 1−delta.
func HoeffdingBound(n int, lo, hi, delta float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	width := hi - lo
	return width * math.Sqrt(math.Log(2/delta)/(2*float64(n)))
}

// ChernoffCountBound returns the deviation t such that a sum of n
// independent indicator-like variables with per-sample variance v stays
// within ±t of its mean with probability at least 1−delta, using the
// Bernstein form that the LDP literature quotes for count estimators.
func ChernoffCountBound(n int, v, delta float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	logTerm := math.Log(2 / delta)
	return math.Sqrt(2*float64(n)*v*logTerm) + 2*logTerm/3
}

// NormalCI returns the half-width of a two-sided normal confidence
// interval with the given variance of the estimator and coverage
// 1−delta, i.e. z_{1−delta/2}·sqrt(variance).
func NormalCI(variance, delta float64) float64 {
	return zQuantile(1-delta/2) * math.Sqrt(variance)
}

// zQuantile approximates the standard normal quantile function using the
// Beasley–Springer–Moro rational approximation.
func zQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0.5 {
			return 0
		}
		return math.Inf(int(math.Copysign(1, p-0.5)))
	}
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		num := y * (((a[3]*r+a[2])*r+a[1])*r + a[0])
		den := (((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1
		return num / den
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0]
	pow := 1.0
	for i := 1; i < 9; i++ {
		pow *= r
		x += c[i] * pow
	}
	if y < 0 {
		return -x
	}
	return x
}

// TopK returns the indices of the k largest values, ties broken by lower
// index, in decreasing value order. k is clamped to len(xs).
func TopK(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx[:k]
}

// PrecisionRecall compares a predicted set against a truth set and
// returns (precision, recall, F1). Empty sets yield zeros.
func PrecisionRecall(predicted, truth []int) (precision, recall, f1 float64) {
	if len(predicted) == 0 || len(truth) == 0 {
		return 0, 0, 0
	}
	truthSet := make(map[int]bool, len(truth))
	for _, t := range truth {
		truthSet[t] = true
	}
	hits := 0
	for _, p := range predicted {
		if truthSet[p] {
			hits++
		}
	}
	precision = float64(hits) / float64(len(predicted))
	recall = float64(hits) / float64(len(truth))
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// NCR returns the normalized cumulative rank of a predicted top-k list
// against the true top-k: each true item at rank r (from 1) has weight
// k−r+1 and the score is the recovered weight fraction. It is the top-k
// quality measure used by Wang et al. [21].
func NCR(predicted, truth []int) float64 {
	k := len(truth)
	if k == 0 {
		return 0
	}
	weight := make(map[int]int, k)
	total := 0
	for r, item := range truth {
		w := k - r
		weight[item] = w
		total += w
	}
	got := 0
	for _, p := range predicted {
		got += weight[p]
	}
	return float64(got) / float64(total)
}

// Counts converts integer counts to float64 for use with the metric
// helpers.
func Counts(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Histogram tallies values in [0, d) into counts; out-of-range values
// panic, since they indicate an encoding bug upstream.
func Histogram(values []int, d int) []int {
	counts := make([]int, d)
	for _, v := range values {
		counts[v]++
	}
	return counts
}

func mustMatch(a, b int) {
	if a != b {
		panic("stats: slice length mismatch")
	}
}
