package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean=%v want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance=%v want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev=%v want 2", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty slice should give zeros")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("singleton variance should be 0")
	}
	if MSE(nil, nil) != 0 || MAE(nil, nil) != 0 {
		t.Error("empty error metrics should be 0")
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// Population variance 1.25, sample variance 5/3.
	if got := SampleVariance(xs); math.Abs(got-5.0/3.0) > 1e-12 {
		t.Errorf("SampleVariance=%v want %v", got, 5.0/3.0)
	}
}

func TestMSEAndMAE(t *testing.T) {
	est := []float64{1, 2, 3}
	truth := []float64{2, 2, 5}
	if got := MSE(est, truth); math.Abs(got-5.0/3.0) > 1e-12 {
		t.Errorf("MSE=%v want %v", got, 5.0/3.0)
	}
	if got := MAE(est, truth); math.Abs(got-1) > 1e-12 {
		t.Errorf("MAE=%v want 1", got)
	}
	if got := MaxAbsError(est, truth); got != 2 {
		t.Errorf("MaxAbsError=%v want 2", got)
	}
}

func TestTotalVariation(t *testing.T) {
	p := []float64{1, 0, 0, 0}
	q := []float64{0, 1, 0, 0}
	if got := TotalVariation(p, q); math.Abs(got-1) > 1e-12 {
		t.Errorf("disjoint TV=%v want 1", got)
	}
	if got := TotalVariation(p, p); got != 0 {
		t.Errorf("identical TV=%v want 0", got)
	}
	// Raw counts are normalized.
	if got := TotalVariation([]float64{2, 2}, []float64{500, 500}); got != 0 {
		t.Errorf("scaled TV=%v want 0", got)
	}
}

func TestTotalVariationNegativeClamped(t *testing.T) {
	// Estimated counts can be negative; they are clamped before
	// normalization rather than producing distances above 1.
	got := TotalVariation([]float64{-5, 10}, []float64{1, 1})
	if got < 0 || got > 1 {
		t.Errorf("TV out of [0,1]: %v", got)
	}
}

func TestKSDistance(t *testing.T) {
	p := []float64{1, 0, 0}
	q := []float64{0, 0, 1}
	if got := KSDistance(p, q); math.Abs(got-1) > 1e-12 {
		t.Errorf("KS=%v want 1", got)
	}
	if got := KSDistance(p, p); got != 0 {
		t.Errorf("KS identical=%v want 0", got)
	}
}

func TestTVSymmetricProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		x, y := a[:n], b[:n]
		for i := range x { // keep values finite
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
				return true
			}
		}
		d1 := TotalVariation(x, y)
		d2 := TotalVariation(y, x)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0 && d1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHoeffdingBoundShrinks(t *testing.T) {
	b1 := HoeffdingBound(100, 0, 1, 0.05)
	b2 := HoeffdingBound(10000, 0, 1, 0.05)
	if b2 >= b1 {
		t.Errorf("bound should shrink with n: %v vs %v", b1, b2)
	}
	// Known value: sqrt(ln(40)/200) for n=100, delta=0.05.
	want := math.Sqrt(math.Log(40) / 200)
	if math.Abs(b1-want) > 1e-12 {
		t.Errorf("Hoeffding=%v want %v", b1, want)
	}
	if !math.IsInf(HoeffdingBound(0, 0, 1, 0.05), 1) {
		t.Error("n=0 should give +Inf")
	}
}

func TestChernoffCountBound(t *testing.T) {
	b1 := ChernoffCountBound(1000, 1.0, 0.05)
	b2 := ChernoffCountBound(1000, 4.0, 0.05)
	if b2 <= b1 {
		t.Error("bound should grow with variance")
	}
	if !math.IsInf(ChernoffCountBound(0, 1, 0.05), 1) {
		t.Error("n=0 should give +Inf")
	}
}

func TestZQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.025, -1.959964},
		{0.995, 2.575829},
	}
	for _, c := range cases {
		if got := zQuantile(c.p); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("zQuantile(%v)=%v want %v", c.p, got, c.want)
		}
	}
}

func TestNormalCI(t *testing.T) {
	// 95% CI half-width for unit variance is about 1.96.
	if got := NormalCI(1, 0.05); math.Abs(got-1.96) > 0.01 {
		t.Errorf("NormalCI=%v want about 1.96", got)
	}
	// Scales with sqrt of variance.
	if got := NormalCI(4, 0.05); math.Abs(got-3.92) > 0.02 {
		t.Errorf("NormalCI(var=4)=%v want about 3.92", got)
	}
}

func TestTopK(t *testing.T) {
	xs := []float64{1, 9, 3, 7, 7}
	got := TopK(xs, 3)
	want := []int{1, 3, 4} // 9, then the two 7s in index order
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK=%v want %v", got, want)
		}
	}
	if len(TopK(xs, 100)) != len(xs) {
		t.Error("k beyond length should clamp")
	}
}

func TestPrecisionRecall(t *testing.T) {
	p, r, f1 := PrecisionRecall([]int{1, 2, 3, 4}, []int{1, 2, 5, 6})
	if p != 0.5 || r != 0.5 || math.Abs(f1-0.5) > 1e-12 {
		t.Errorf("got p=%v r=%v f1=%v want 0.5 each", p, r, f1)
	}
	p, r, f1 = PrecisionRecall(nil, []int{1})
	if p != 0 || r != 0 || f1 != 0 {
		t.Error("empty prediction should give zeros")
	}
}

func TestNCR(t *testing.T) {
	truth := []int{10, 20, 30} // weights 3, 2, 1; total 6
	if got := NCR([]int{10, 20, 30}, truth); got != 1 {
		t.Errorf("perfect NCR=%v want 1", got)
	}
	if got := NCR([]int{10}, truth); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("NCR=%v want 0.5", got)
	}
	if got := NCR([]int{99}, truth); got != 0 {
		t.Errorf("NCR=%v want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{0, 1, 1, 3}, 4)
	want := []int{1, 2, 0, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("Histogram=%v want %v", h, want)
		}
	}
}

func TestCounts(t *testing.T) {
	c := Counts([]int{1, 2, 3})
	if c[0] != 1 || c[1] != 2 || c[2] != 3 {
		t.Fatalf("Counts=%v", c)
	}
}

func TestMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	MSE([]float64{1}, []float64{1, 2})
}
