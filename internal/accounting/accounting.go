// Package accounting tracks privacy budgets across repeated
// collections. The tutorial's open-problems section (§1.4) highlights
// that deployed LDP systems must reason about composition: sequential
// queries on the same user add up, disjoint sub-populations compose in
// parallel, and the (ε, δ) relaxation trades a small failure
// probability for budget.
package accounting

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Budget is an (ε, δ) privacy budget. δ = 0 is pure DP.
type Budget struct {
	Epsilon float64
	Delta   float64
}

// Add returns the sequential composition of two budgets: epsilons and
// deltas add (basic composition).
func (b Budget) Add(other Budget) Budget {
	return Budget{Epsilon: b.Epsilon + other.Epsilon, Delta: b.Delta + other.Delta}
}

// Max returns the parallel composition of two budgets applied to
// disjoint data: the worse of the two in each coordinate.
func (b Budget) Max(other Budget) Budget {
	return Budget{
		Epsilon: math.Max(b.Epsilon, other.Epsilon),
		Delta:   math.Max(b.Delta, other.Delta),
	}
}

// Exceeds reports whether b exceeds the limit in either coordinate.
func (b Budget) Exceeds(limit Budget) bool {
	const slack = 1e-12 // absorb float accumulation error
	return b.Epsilon > limit.Epsilon+slack || b.Delta > limit.Delta+slack
}

// String formats the budget for logs.
func (b Budget) String() string {
	if b.Delta == 0 {
		return fmt.Sprintf("ε=%.4g", b.Epsilon)
	}
	return fmt.Sprintf("(ε=%.4g, δ=%.3g)", b.Epsilon, b.Delta)
}

// SequentialComposition sums the budgets of k identical queries.
func SequentialComposition(per Budget, k int) Budget {
	return Budget{Epsilon: per.Epsilon * float64(k), Delta: per.Delta * float64(k)}
}

// AdvancedComposition returns the (ε', kδ+δ') budget of k adaptive
// ε-DP queries under the advanced composition theorem (Dwork–Rothblum–
// Vadhan): ε' = ε·sqrt(2k·ln(1/δ')) + k·ε·(e^ε − 1).
func AdvancedComposition(epsilon float64, k int, deltaPrime float64) Budget {
	if deltaPrime <= 0 || deltaPrime >= 1 {
		panic("accounting: delta' must be in (0,1)")
	}
	kf := float64(k)
	eps := epsilon*math.Sqrt(2*kf*math.Log(1/deltaPrime)) + kf*epsilon*(math.Exp(epsilon)-1)
	return Budget{Epsilon: eps, Delta: deltaPrime}
}

// Ledger enforces a per-user budget limit across collection events. It
// is safe for concurrent use — aggregation servers charge it from
// request handlers.
type Ledger struct {
	mu    sync.Mutex
	limit Budget
	spent map[string]Budget
}

// NewLedger returns a ledger enforcing the given per-user limit.
func NewLedger(limit Budget) *Ledger {
	if limit.Epsilon <= 0 {
		panic("accounting: ledger limit epsilon must be positive")
	}
	return &Ledger{limit: limit, spent: make(map[string]Budget)}
}

// Charge records a spend for user and returns an error if it would
// exceed the limit; rejected charges are not recorded.
func (l *Ledger) Charge(user string, cost Budget) error {
	if cost.Epsilon < 0 || cost.Delta < 0 {
		return fmt.Errorf("accounting: negative cost %v", cost)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	next := l.spent[user].Add(cost)
	if next.Exceeds(l.limit) {
		return fmt.Errorf("accounting: user %q would spend %v, limit %v", user, next, l.limit)
	}
	l.spent[user] = next
	return nil
}

// Spent returns the budget user has consumed so far.
func (l *Ledger) Spent(user string) Budget {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spent[user]
}

// Remaining returns the budget user still has available.
func (l *Ledger) Remaining(user string) Budget {
	s := l.Spent(user)
	rem := Budget{Epsilon: l.limit.Epsilon - s.Epsilon, Delta: l.limit.Delta - s.Delta}
	if rem.Epsilon < 0 {
		rem.Epsilon = 0
	}
	if rem.Delta < 0 {
		rem.Delta = 0
	}
	return rem
}

// Users returns the charged user IDs in sorted order (for reports).
func (l *Ledger) Users() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.spent))
	for u := range l.spent {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// SplitEvenly divides a total budget across k collections.
func SplitEvenly(total Budget, k int) Budget {
	if k <= 0 {
		panic("accounting: k must be positive")
	}
	return Budget{Epsilon: total.Epsilon / float64(k), Delta: total.Delta / float64(k)}
}
