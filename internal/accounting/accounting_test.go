package accounting

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestBudgetAdd(t *testing.T) {
	a := Budget{Epsilon: 1, Delta: 1e-6}
	b := Budget{Epsilon: 0.5, Delta: 1e-6}
	sum := a.Add(b)
	if sum.Epsilon != 1.5 || sum.Delta != 2e-6 {
		t.Fatalf("Add=%v", sum)
	}
}

func TestBudgetMax(t *testing.T) {
	a := Budget{Epsilon: 1, Delta: 2e-6}
	b := Budget{Epsilon: 2, Delta: 1e-6}
	m := a.Max(b)
	if m.Epsilon != 2 || m.Delta != 2e-6 {
		t.Fatalf("Max=%v", m)
	}
}

func TestExceeds(t *testing.T) {
	limit := Budget{Epsilon: 1}
	if (Budget{Epsilon: 1}).Exceeds(limit) {
		t.Error("equal budget should not exceed")
	}
	if !(Budget{Epsilon: 1.001}).Exceeds(limit) {
		t.Error("larger epsilon should exceed")
	}
	if !(Budget{Epsilon: 0.5, Delta: 1e-9}).Exceeds(limit) {
		t.Error("nonzero delta should exceed pure-DP limit")
	}
}

func TestSequentialComposition(t *testing.T) {
	got := SequentialComposition(Budget{Epsilon: 0.1, Delta: 1e-8}, 10)
	if math.Abs(got.Epsilon-1) > 1e-12 || math.Abs(got.Delta-1e-7) > 1e-20 {
		t.Fatalf("sequential=%v", got)
	}
}

func TestAdvancedCompositionBeatsBasicForManyQueries(t *testing.T) {
	// For k large and ε small, advanced composition's ε' ~ ε√(2k ln(1/δ))
	// is far below basic composition's kε.
	eps, k := 0.01, 10000
	adv := AdvancedComposition(eps, k, 1e-6)
	basic := SequentialComposition(Budget{Epsilon: eps}, k)
	if adv.Epsilon >= basic.Epsilon {
		t.Errorf("advanced %.3f should beat basic %.3f", adv.Epsilon, basic.Epsilon)
	}
	if adv.Delta != 1e-6 {
		t.Errorf("advanced delta %v", adv.Delta)
	}
}

func TestAdvancedCompositionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AdvancedComposition(0.1, 10, 0)
}

func TestLedgerEnforcesLimit(t *testing.T) {
	l := NewLedger(Budget{Epsilon: 1})
	for i := 0; i < 4; i++ {
		if err := l.Charge("alice", Budget{Epsilon: 0.25}); err != nil {
			t.Fatalf("charge %d rejected: %v", i, err)
		}
	}
	if err := l.Charge("alice", Budget{Epsilon: 0.25}); err == nil {
		t.Fatal("over-limit charge accepted")
	}
	// Rejected charges must not be recorded.
	if got := l.Spent("alice").Epsilon; math.Abs(got-1) > 1e-9 {
		t.Fatalf("spent %v want 1", got)
	}
	// Other users unaffected.
	if err := l.Charge("bob", Budget{Epsilon: 0.5}); err != nil {
		t.Fatalf("bob rejected: %v", err)
	}
}

func TestLedgerRemaining(t *testing.T) {
	l := NewLedger(Budget{Epsilon: 2, Delta: 1e-6})
	_ = l.Charge("u", Budget{Epsilon: 0.5, Delta: 1e-7})
	rem := l.Remaining("u")
	if math.Abs(rem.Epsilon-1.5) > 1e-9 || math.Abs(rem.Delta-9e-7) > 1e-15 {
		t.Fatalf("remaining=%v", rem)
	}
	if rem := l.Remaining("unknown"); rem.Epsilon != 2 {
		t.Fatalf("unknown user remaining=%v", rem)
	}
}

func TestLedgerNegativeCost(t *testing.T) {
	l := NewLedger(Budget{Epsilon: 1})
	if err := l.Charge("u", Budget{Epsilon: -0.1}); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestLedgerConcurrentCharges(t *testing.T) {
	l := NewLedger(Budget{Epsilon: 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = l.Charge("shared", Budget{Epsilon: 0.1})
			}
		}()
	}
	wg.Wait()
	// 800 × 0.1 = 80 <= 100, so every charge must have landed.
	if got := l.Spent("shared").Epsilon; math.Abs(got-80) > 1e-6 {
		t.Fatalf("spent %v want 80", got)
	}
}

func TestLedgerUsersSorted(t *testing.T) {
	l := NewLedger(Budget{Epsilon: 1})
	for _, u := range []string{"zoe", "amy", "bob"} {
		_ = l.Charge(u, Budget{Epsilon: 0.1})
	}
	users := l.Users()
	if len(users) != 3 || users[0] != "amy" || users[1] != "bob" || users[2] != "zoe" {
		t.Fatalf("users=%v", users)
	}
}

func TestSplitEvenly(t *testing.T) {
	per := SplitEvenly(Budget{Epsilon: 1, Delta: 4e-6}, 4)
	if per.Epsilon != 0.25 || per.Delta != 1e-6 {
		t.Fatalf("split=%v", per)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	SplitEvenly(Budget{Epsilon: 1}, 0)
}

func TestCompositionRoundTripProperty(t *testing.T) {
	// Splitting then sequentially composing k ways returns the original
	// budget (up to float error).
	f := func(eRaw, dRaw uint16, kRaw uint8) bool {
		eps := float64(eRaw%1000)/100 + 0.01
		delta := float64(dRaw) * 1e-9
		k := int(kRaw%20) + 1
		total := Budget{Epsilon: eps, Delta: delta}
		back := SequentialComposition(SplitEvenly(total, k), k)
		return math.Abs(back.Epsilon-total.Epsilon) < 1e-9 &&
			math.Abs(back.Delta-total.Delta) < 1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBudgetString(t *testing.T) {
	if s := (Budget{Epsilon: 1}).String(); s != "ε=1" {
		t.Errorf("String=%q", s)
	}
	if s := (Budget{Epsilon: 0.5, Delta: 1e-6}).String(); s == "" {
		t.Error("empty string for (ε,δ) budget")
	}
}

func TestNewLedgerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLedger(Budget{})
}
