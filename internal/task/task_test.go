package task_test

import (
	"encoding/json"
	"net/url"
	"strings"
	"testing"

	"repro/internal/task"

	// The adapters under test register themselves on import.
	_ "repro/internal/task/cmstask"
	_ "repro/internal/task/freqtask"
	_ "repro/internal/task/meantask"
)

// configs returns one valid configuration per registered task family.
func configs() []task.Config {
	return []task.Config{
		{Task: task.TypeFreq, Mechanism: "GRR", Epsilon: 1, Domain: 8},
		{Task: task.TypeMean, Mechanism: "duchi", Epsilon: 1},
		{Task: task.TypeMean, Mechanism: "harmony", Epsilon: 1, Dim: 3},
		{Task: task.TypeSketch, Mechanism: "CMS", Epsilon: 2, Width: 16, Hashes: 4, SketchSeed: 1},
		{Task: task.TypeSketch, Mechanism: "HCMS", Epsilon: 2, Width: 16, Hashes: 4, SketchSeed: 1},
	}
}

func TestRegistryDispatch(t *testing.T) {
	for _, name := range []string{task.TypeFreq, task.TypeMean, task.TypeSketch} {
		if !task.Registered(name) {
			t.Errorf("task type %q not registered", name)
		}
	}
	for _, cfg := range configs() {
		a, err := task.New(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if a.Type() != cfg.Type() {
			t.Errorf("config %+v built aggregator of type %q", cfg, a.Type())
		}
		if a.Collected() != 0 {
			t.Errorf("%s: fresh aggregator has %d reports", cfg.Task, a.Collected())
		}
		if a.ReportBits() < 1 {
			t.Errorf("%s/%s: report bits %d", cfg.Task, cfg.Mechanism, a.ReportBits())
		}
	}
}

func TestUntaggedConfigIsFreq(t *testing.T) {
	// Configs written before the task layer carry no tag; they must
	// resolve to the frequency task.
	cfg := task.Config{Mechanism: "OLH", Epsilon: 1, Domain: 16}
	if cfg.Type() != task.TypeFreq {
		t.Fatalf("untagged config resolves to %q", cfg.Type())
	}
	a, err := task.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Type() != task.TypeFreq {
		t.Fatalf("untagged config built %q aggregator", a.Type())
	}
}

func TestUnknownTaskAndBadConfigs(t *testing.T) {
	if _, err := task.New(task.Config{Task: "nope", Mechanism: "GRR", Epsilon: 1, Domain: 4}); err == nil {
		t.Error("unknown task type accepted")
	}
	bad := []task.Config{
		{Task: task.TypeFreq, Mechanism: "NOPE", Epsilon: 1, Domain: 4},
		{Task: task.TypeFreq, Mechanism: "GRR", Epsilon: 0, Domain: 4},
		{Task: task.TypeMean, Mechanism: "duchi", Epsilon: -1},
		{Task: task.TypeMean, Mechanism: "duchi", Epsilon: 1, Dim: -7},
		{Task: task.TypeMean, Mechanism: "harmony", Epsilon: 1, Dim: 0},
		{Task: task.TypeMean, Mechanism: "NOPE", Epsilon: 1},
		{Task: task.TypeSketch, Mechanism: "CMS", Epsilon: 1, Width: 1, Hashes: 4},
		{Task: task.TypeSketch, Mechanism: "HCMS", Epsilon: 1, Width: 24, Hashes: 4}, // not a power of two
		{Task: task.TypeSketch, Mechanism: "NOPE", Epsilon: 1, Width: 16, Hashes: 4},
	}
	for _, cfg := range bad {
		if _, err := task.New(cfg); err == nil {
			t.Errorf("bad config accepted: %+v", cfg)
		}
	}
}

// TestCrossTaskMergeRejected pins that no adapter silently merges a
// different family's aggregator.
func TestCrossTaskMergeRejected(t *testing.T) {
	cfgs := configs()
	for i, a := range cfgs {
		for j, b := range cfgs {
			if i == j {
				continue
			}
			dst, err := task.New(a)
			if err != nil {
				t.Fatal(err)
			}
			src, err := task.New(b)
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.Merge(src); err == nil {
				t.Errorf("merged %s/%s into %s/%s without error", b.Task, b.Mechanism, a.Task, a.Mechanism)
			}
		}
	}
}

// TestCrossTaskStateRejected pins that no adapter restores another
// family's (or mechanism's) state blob.
func TestCrossTaskStateRejected(t *testing.T) {
	cfgs := configs()
	for i, a := range cfgs {
		for j, b := range cfgs {
			if i == j {
				continue
			}
			dst, err := task.New(a)
			if err != nil {
				t.Fatal(err)
			}
			src, err := task.New(b)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := src.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.UnmarshalState(blob); err == nil {
				t.Errorf("%s/%s restored state of %s/%s", a.Task, a.Mechanism, b.Task, b.Mechanism)
			}
		}
	}
}

// TestEstimateEmptyAggregators checks every adapter answers an
// estimate query before any report arrives (fresh collections are
// polled immediately in practice) with valid JSON.
func TestEstimateEmptyAggregators(t *testing.T) {
	for _, cfg := range configs() {
		a, err := task.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := a.Estimate(url.Values{"item": []string{"x"}})
		if err != nil {
			t.Fatalf("%s/%s: %v", cfg.Task, cfg.Mechanism, err)
		}
		if !json.Valid(raw) {
			t.Fatalf("%s/%s: estimate is not valid JSON: %s", cfg.Task, cfg.Mechanism, raw)
		}
	}
}

// TestAddAllBoundsJoinedError pins the bounded reject reporting shared
// by the adapters' AddBatch implementations.
func TestAddAllBoundsJoinedError(t *testing.T) {
	a, err := task.New(task.Config{Task: task.TypeFreq, Mechanism: "GRR", Epsilon: 1, Domain: 4})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]json.RawMessage, 100)
	for i := range batch {
		batch[i] = json.RawMessage(`{"mechanism":"GRR","value":99}`)
	}
	accepted, err := a.AddBatch(batch)
	if accepted != 0 || err == nil {
		t.Fatalf("accepted %d, err %v", accepted, err)
	}
	msg := err.Error()
	if n := strings.Count(msg, "envelope "); n != 16 {
		t.Fatalf("%d detailed errors, want 16", n)
	}
	if !strings.Contains(msg, "and 84 more rejected envelopes") {
		t.Fatalf("missing suppression summary in %q", msg)
	}
}
