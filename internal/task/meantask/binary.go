// Binary wire and state codecs for the mean task. A mean report is
// tiny — a mechanism tag, a coordinate, and one float64 — so the
// binary envelope is a fixed handful of bytes: a leading
// format-version byte, the mechanism name, the varint coordinate, and
// the raw 8-byte value. Decoding feeds the same prepareEnvelope
// validation as the JSON path; the state codec delegates to the
// estimator's binary layout in internal/mean.
package meantask

import (
	"fmt"

	"repro/internal/binenc"
)

// binaryEnvelopeVersion tags the binary report envelope layout. It is
// the first payload byte and is checked before anything else is read.
const binaryEnvelopeVersion = 0

// MarshalStateBinary implements task.BinaryStater by delegating to the
// estimator's binary codec.
func (a *Aggregator) MarshalStateBinary() ([]byte, error) {
	if a.duchi != nil {
		return a.duchi.MarshalStateBinary()
	}
	return a.harmony.MarshalStateBinary()
}

// UnmarshalStateBinary implements task.BinaryStater.
func (a *Aggregator) UnmarshalStateBinary(data []byte) error {
	if a.duchi != nil {
		return a.duchi.UnmarshalStateBinary(data)
	}
	return a.harmony.UnmarshalStateBinary(data)
}

// PrepareBinary implements task.BinaryReporter: it decodes one binary
// report envelope and applies exactly the validation the JSON Prepare
// applies, reading only the immutable configuration.
func (a *Aggregator) PrepareBinary(payload []byte) (any, error) {
	r := binenc.NewReader(payload)
	version := int(r.Byte())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("meantask: bad binary envelope: %w", err)
	}
	if version != binaryEnvelopeVersion {
		return nil, fmt.Errorf("meantask: binary envelope version %d not supported", version)
	}
	var e Envelope
	e.Mechanism = r.String()
	e.Coord = int(r.Varint())
	e.Value = r.Float64()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("meantask: bad binary envelope: %w", err)
	}
	return a.prepareEnvelope(e)
}

// ReportBinary privatizes one record into a binary wire envelope,
// the counterpart of Report for binary-negotiated collections.
func (c *Client) ReportBinary(x []float64) ([]byte, error) {
	e, err := c.envelope(x)
	if err != nil {
		return nil, err
	}
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryEnvelopeVersion)
	w.String(e.Mechanism)
	w.Varint(int64(e.Coord))
	w.Float64(e.Value)
	return append([]byte(nil), w.Bytes()...), nil
}
