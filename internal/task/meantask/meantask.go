// Package meantask adapts the numeric-mean estimators (internal/mean:
// Duchi's minimax one-dimensional mechanism and the Harmony-style
// multidimensional extension) to the task-generic aggregation
// interface, so a collection server can run numeric surveys — "how
// many minutes of screen time today?" — next to frequency surveys.
//
// The wire envelope carries exactly what the client-side mechanism
// emits: a ±C value for Duchi, a sampled coordinate plus a ±C·d value
// for Harmony. The server verifies the report is one of the two legal
// magnitudes (anything else is a malformed or malicious report, and
// the mean packages panic on such input by design — they treat it as
// a caller bug, while here it arrives from the network).
package meantask

import (
	"encoding/json"
	"fmt"
	"math"
	"net/url"

	"repro/internal/ldprand"
	"repro/internal/mean"
	"repro/internal/task"
)

func init() {
	task.Register(task.TypeMean, New)
}

// Mechanism names of the mean task family.
const (
	MechanismDuchi   = "duchi"
	MechanismHarmony = "harmony"
)

// Mechanisms lists the mean mechanisms in presentation order.
func Mechanisms() []string { return []string{MechanismDuchi, MechanismHarmony} }

// reportTol is the magnitude tolerance when validating that a report
// equals ±C: the constant is computed from ε in one way on both sides,
// so the tolerance only absorbs decimal serialization of the value.
const reportTol = 1e-9

// Envelope is the JSON wire format of one privatized mean report.
type Envelope struct {
	Mechanism string  `json:"mechanism"`
	Coord     int     `json:"coord,omitempty"` // Harmony: sampled coordinate
	Value     float64 `json:"value"`           // ±C (Duchi) or ±C·dim (Harmony)
}

// Aggregator adapts one mean estimator to task.Aggregator. Exactly one
// of duchi/harmony is set, per the configured mechanism.
type Aggregator struct {
	mechanism string
	epsilon   float64
	duchi     *mean.Duchi
	harmony   *mean.Harmony
}

// validateConfig checks the parameters both the aggregator and the
// client constructors share (the mean packages panic on bad
// parameters by design; configs arrive from operators and the network
// and must error instead).
func validateConfig(cfg task.Config) error {
	if cfg.Epsilon <= 0 || math.IsNaN(cfg.Epsilon) || math.IsInf(cfg.Epsilon, 0) {
		return fmt.Errorf("meantask: epsilon must be positive and finite, got %v", cfg.Epsilon)
	}
	switch cfg.Mechanism {
	case MechanismDuchi:
		if cfg.Dim != 0 && cfg.Dim != 1 {
			return fmt.Errorf("meantask: duchi is one-dimensional, got dim %d (use harmony for vectors)", cfg.Dim)
		}
	case MechanismHarmony:
		if cfg.Dim < 1 {
			return fmt.Errorf("meantask: harmony needs dim >= 1, got %d", cfg.Dim)
		}
	default:
		return fmt.Errorf("meantask: unknown mechanism %q (have %v)", cfg.Mechanism, Mechanisms())
	}
	return nil
}

// New builds a mean task aggregator: Mechanism selects "duchi"
// (scalar) or "harmony" (Dim-dimensional vectors), under Epsilon.
func New(cfg task.Config) (task.Aggregator, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	if cfg.Mechanism == MechanismDuchi {
		return &Aggregator{mechanism: MechanismDuchi, epsilon: cfg.Epsilon,
			duchi: mean.NewDuchi(cfg.Epsilon, nil)}, nil
	}
	return &Aggregator{mechanism: MechanismHarmony, epsilon: cfg.Epsilon,
		harmony: mean.NewHarmony(cfg.Epsilon, cfg.Dim, nil)}, nil
}

// Type returns "mean".
func (a *Aggregator) Type() string { return task.TypeMean }

// Add validates and folds one mean envelope. The value must be exactly
// one of the two magnitudes the mechanism emits; the coordinate (for
// Harmony) must be in range.
func (a *Aggregator) Add(report json.RawMessage) error {
	prepared, err := a.Prepare(report)
	if err != nil {
		return err
	}
	return a.Fold(prepared)
}

// Prepare parses and validates one raw envelope (task.Preparer),
// reading only the aggregator's immutable configuration (C, dim).
func (a *Aggregator) Prepare(report json.RawMessage) (any, error) {
	var e Envelope
	if err := json.Unmarshal(report, &e); err != nil {
		return nil, fmt.Errorf("meantask: bad envelope: %w", err)
	}
	return a.prepareEnvelope(e)
}

// prepareEnvelope validates a decoded envelope against the mechanism's
// immutable configuration; the JSON and binary wire decoders both feed
// it, so the two wire forms accept identical report populations.
func (a *Aggregator) prepareEnvelope(e Envelope) (any, error) {
	if e.Mechanism != a.mechanism {
		return nil, fmt.Errorf("meantask: envelope mechanism %q does not match aggregator %q", e.Mechanism, a.mechanism)
	}
	if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
		return nil, fmt.Errorf("meantask: report value %v is not finite", e.Value)
	}
	switch a.mechanism {
	case MechanismDuchi:
		if math.Abs(math.Abs(e.Value)-a.duchi.C()) > reportTol {
			return nil, fmt.Errorf("meantask: duchi report %v is not ±%v", e.Value, a.duchi.C())
		}
	default: // harmony
		if e.Coord < 0 || e.Coord >= a.harmony.Dim() {
			return nil, fmt.Errorf("meantask: coordinate %d out of range [0,%d)", e.Coord, a.harmony.Dim())
		}
		want := a.harmony.C() * float64(a.harmony.Dim())
		if math.Abs(math.Abs(e.Value)-want) > reportTol {
			return nil, fmt.Errorf("meantask: harmony report %v is not ±%v", e.Value, want)
		}
	}
	return e, nil
}

// Fold accumulates a Prepared envelope (task.Preparer).
func (a *Aggregator) Fold(prepared any) error {
	e, ok := prepared.(Envelope)
	if !ok {
		return fmt.Errorf("meantask: prepared value %T is not a mean envelope", prepared)
	}
	if a.duchi != nil {
		a.duchi.Aggregate(e.Value)
		return nil
	}
	a.harmony.Aggregate(mean.HarmonyReport{Coord: e.Coord, Value: e.Value})
	return nil
}

// AddBatch folds a batch of envelopes, skipping invalid ones.
func (a *Aggregator) AddBatch(reports []json.RawMessage) (int, error) {
	return task.AddAll(a, reports)
}

// Collected returns the number of reports aggregated.
func (a *Aggregator) Collected() int {
	if a.duchi != nil {
		return a.duchi.Collected()
	}
	return a.harmony.Collected()
}

// ReportBits returns the report size: Duchi is one sign bit; Harmony
// adds the sampled coordinate index.
func (a *Aggregator) ReportBits() int {
	if a.duchi != nil {
		return 1
	}
	return 1 + bitsFor(a.harmony.Dim())
}

// bitsFor returns ceil(log2(n)) for n >= 1.
func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Reset discards all aggregated reports.
func (a *Aggregator) Reset() {
	if a.duchi != nil {
		a.duchi.Reset()
		return
	}
	a.harmony.Reset()
}

// Merge folds another mean aggregator's state into the receiver.
func (a *Aggregator) Merge(other task.Aggregator) error {
	o, ok := other.(*Aggregator)
	if !ok {
		return task.MergeTypeError(a, other)
	}
	if o.mechanism != a.mechanism {
		return fmt.Errorf("meantask: cannot merge %s into %s", o.mechanism, a.mechanism)
	}
	if a.duchi != nil {
		return a.duchi.Merge(o.duchi)
	}
	return a.harmony.Merge(o.harmony)
}

// Snapshot returns an independent deep copy of the aggregate state.
func (a *Aggregator) Snapshot() task.Aggregator {
	cp := &Aggregator{mechanism: a.mechanism, epsilon: a.epsilon}
	if a.duchi != nil {
		cp.duchi = a.duchi.Snapshot()
	} else {
		cp.harmony = a.harmony.Snapshot()
	}
	return cp
}

// MarshalState serializes the estimator state (the blob carries the
// mechanism tag, so a restore onto the wrong mechanism is rejected).
func (a *Aggregator) MarshalState() ([]byte, error) {
	if a.duchi != nil {
		return a.duchi.MarshalState()
	}
	return a.harmony.MarshalState()
}

// UnmarshalState restores a state blob produced by MarshalState.
func (a *Aggregator) UnmarshalState(data []byte) error {
	if a.duchi != nil {
		return a.duchi.UnmarshalState(data)
	}
	return a.harmony.UnmarshalState(data)
}

// EstimateResult is the mean task's estimate payload: the unbiased
// mean estimate(s) with a worst-case 95% confidence half-width
// (1.96·sqrt(Var), Var the mechanism's analytic estimator variance at
// the collected population). Means is singleton for Duchi.
type EstimateResult struct {
	Mechanism string    `json:"mechanism"`
	Dim       int       `json:"dim"`
	Means     []float64 `json:"means"`
	CI95      float64   `json:"ci95"` // ± half-width per coordinate; 0 until reports arrive
}

// Estimate returns the mean estimate with its confidence half-width.
func (a *Aggregator) Estimate(query url.Values) (json.RawMessage, error) {
	res := EstimateResult{Mechanism: a.mechanism}
	n := a.Collected()
	if a.duchi != nil {
		res.Dim = 1
		res.Means = []float64{a.duchi.Estimate()}
		if n > 0 {
			res.CI95 = 1.96 * math.Sqrt(a.duchi.Variance(n))
		}
	} else {
		res.Dim = a.harmony.Dim()
		res.Means = a.harmony.Estimate()
		if n > 0 {
			res.CI95 = 1.96 * math.Sqrt(a.harmony.Variance(n))
		}
	}
	return json.Marshal(res)
}

// Client is the user-side half of the mean task: it privatizes one
// numeric record (a scalar for Duchi, a Dim-vector for Harmony, each
// entry clamped to [−1,1]) into a wire envelope. A nil source selects
// crypto/rand, the production configuration.
type Client struct {
	mechanism string
	dim       int
	duchi     *mean.Duchi
	harmony   *mean.Harmony
}

// NewClient returns a reporting client for the configured mechanism.
func NewClient(cfg task.Config, src ldprand.Source) (*Client, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	if cfg.Mechanism == MechanismDuchi {
		return &Client{mechanism: MechanismDuchi, dim: 1, duchi: mean.NewDuchi(cfg.Epsilon, src)}, nil
	}
	return &Client{mechanism: MechanismHarmony, dim: cfg.Dim, harmony: mean.NewHarmony(cfg.Epsilon, cfg.Dim, src)}, nil
}

// Dim returns the record dimension the client privatizes (1 for Duchi).
func (c *Client) Dim() int { return c.dim }

// Report privatizes one record into a wire envelope.
func (c *Client) Report(x []float64) (json.RawMessage, error) {
	e, err := c.envelope(x)
	if err != nil {
		return nil, err
	}
	return json.Marshal(e)
}

// envelope privatizes one record into the envelope both wire codecs
// serialize.
func (c *Client) envelope(x []float64) (Envelope, error) {
	if len(x) != c.dim {
		return Envelope{}, fmt.Errorf("meantask: record has %d values, want %d", len(x), c.dim)
	}
	for _, v := range x {
		if math.IsNaN(v) {
			return Envelope{}, fmt.Errorf("meantask: record value is NaN")
		}
	}
	if c.duchi != nil {
		return Envelope{Mechanism: MechanismDuchi, Value: c.duchi.Privatize(x[0])}, nil
	}
	r := c.harmony.Privatize(x)
	return Envelope{Mechanism: MechanismHarmony, Coord: r.Coord, Value: r.Value}, nil
}
