package meantask_test

import (
	"encoding/json"
	"math"
	"net/url"
	"reflect"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/meantask"
)

func duchiCfg() task.Config {
	return task.Config{Task: task.TypeMean, Mechanism: "duchi", Epsilon: 1}
}

func harmonyCfg(dim int) task.Config {
	return task.Config{Task: task.TypeMean, Mechanism: "harmony", Epsilon: 1, Dim: dim}
}

func estimate(t *testing.T, a task.Aggregator) meantask.EstimateResult {
	t.Helper()
	raw, err := a.Estimate(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	var res meantask.EstimateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDuchiEndToEnd runs the full client → envelope → aggregator loop
// and checks the estimate converges on the true mean within the
// mechanism's own confidence interval (generously scaled).
func TestDuchiEndToEnd(t *testing.T) {
	const n, trueMean = 20000, 0.3
	a, err := meantask.New(duchiCfg())
	if err != nil {
		t.Fatal(err)
	}
	client, err := meantask.NewClient(duchiCfg(), ldprand.NewSplitMix64(1))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(2)
	for i := 0; i < n; i++ {
		x := trueMean + 0.4*(2*ldprand.Float64(src)-1) // in [-0.1, 0.7]
		raw, err := client.Report([]float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Add(raw); err != nil {
			t.Fatal(err)
		}
	}
	if a.Collected() != n {
		t.Fatalf("collected %d want %d", a.Collected(), n)
	}
	res := estimate(t, a)
	if res.Mechanism != "duchi" || res.Dim != 1 || len(res.Means) != 1 {
		t.Fatalf("estimate %+v", res)
	}
	if res.CI95 <= 0 {
		t.Fatalf("ci95 %v", res.CI95)
	}
	if math.Abs(res.Means[0]-trueMean) > 2*res.CI95 {
		t.Fatalf("estimate %.4f too far from true mean %.4f (ci95 %.4f)", res.Means[0], trueMean, res.CI95)
	}
}

// TestHarmonyEndToEnd does the same for the multidimensional path.
func TestHarmonyEndToEnd(t *testing.T) {
	const n, dim = 30000, 3
	truth := []float64{-0.4, 0.1, 0.5}
	a, err := meantask.New(harmonyCfg(dim))
	if err != nil {
		t.Fatal(err)
	}
	client, err := meantask.NewClient(harmonyCfg(dim), ldprand.NewSplitMix64(3))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(4)
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = truth[j] + 0.3*(2*ldprand.Float64(src)-1)
		}
		raw, err := client.Report(x)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Add(raw); err != nil {
			t.Fatal(err)
		}
	}
	res := estimate(t, a)
	if res.Dim != dim || len(res.Means) != dim {
		t.Fatalf("estimate %+v", res)
	}
	for j := range truth {
		if math.Abs(res.Means[j]-truth[j]) > 2*res.CI95 {
			t.Fatalf("coord %d: estimate %.4f truth %.4f (ci95 %.4f)", j, res.Means[j], truth[j], res.CI95)
		}
	}
}

// TestMergeMatchesSequential pins exact mergeability: splitting a
// report stream across aggregators and merging equals one aggregator
// absorbing everything, bit for bit.
func TestMergeMatchesSequential(t *testing.T) {
	for _, cfg := range []task.Config{duchiCfg(), harmonyCfg(2)} {
		client, err := meantask.NewClient(cfg, ldprand.NewSplitMix64(7))
		if err != nil {
			t.Fatal(err)
		}
		whole, _ := meantask.New(cfg)
		left, _ := meantask.New(cfg)
		right, _ := meantask.New(cfg)
		src := ldprand.NewSplitMix64(8)
		for i := 0; i < 500; i++ {
			x := make([]float64, client.Dim())
			for j := range x {
				x[j] = 2*ldprand.Float64(src) - 1
			}
			raw, err := client.Report(x)
			if err != nil {
				t.Fatal(err)
			}
			if err := whole.Add(raw); err != nil {
				t.Fatal(err)
			}
			half := left
			if i%2 == 1 {
				half = right
			}
			if err := half.Add(raw); err != nil {
				t.Fatal(err)
			}
		}
		if err := left.Merge(right.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if left.Collected() != whole.Collected() {
			t.Fatalf("%s: merged collected %d want %d", cfg.Mechanism, left.Collected(), whole.Collected())
		}
		// Splitting the stream reorders the float additions, so the
		// comparison is up to rounding, not bit-exact (the sums differ
		// by at most an ulp per merge).
		got, want := estimate(t, left), estimate(t, whole)
		for j := range want.Means {
			if math.Abs(got.Means[j]-want.Means[j]) > 1e-12 {
				t.Fatalf("%s: merged mean %v, sequential %v", cfg.Mechanism, got.Means, want.Means)
			}
		}
	}
}

// TestStateRoundTrip pins the checkpoint contract: marshal → fresh
// aggregator → unmarshal reproduces the estimate bit for bit, and
// mismatched parameters are refused.
func TestStateRoundTrip(t *testing.T) {
	for _, cfg := range []task.Config{duchiCfg(), harmonyCfg(2)} {
		client, err := meantask.NewClient(cfg, ldprand.NewSplitMix64(9))
		if err != nil {
			t.Fatal(err)
		}
		a, _ := meantask.New(cfg)
		src := ldprand.NewSplitMix64(10)
		for i := 0; i < 200; i++ {
			x := make([]float64, client.Dim())
			for j := range x {
				x[j] = 2*ldprand.Float64(src) - 1
			}
			raw, err := client.Report(x)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Add(raw); err != nil {
				t.Fatal(err)
			}
		}
		blob, err := a.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		b, _ := meantask.New(cfg)
		if err := b.UnmarshalState(blob); err != nil {
			t.Fatal(err)
		}
		if b.Collected() != a.Collected() || !reflect.DeepEqual(estimate(t, b), estimate(t, a)) {
			t.Fatalf("%s: state round trip drifted", cfg.Mechanism)
		}

		// Wrong epsilon must be refused.
		otherCfg := cfg
		otherCfg.Epsilon = 2
		c, _ := meantask.New(otherCfg)
		if err := c.UnmarshalState(blob); err == nil {
			t.Fatalf("%s: state restored onto mismatched epsilon", cfg.Mechanism)
		}
	}
}

// TestAddRejectsMalformed pins the network-input validation: values
// that are not exactly ±C (or ±C·d), bad coordinates and non-JSON all
// error instead of panicking or poisoning the sums.
func TestAddRejectsMalformed(t *testing.T) {
	a, err := meantask.New(duchiCfg())
	if err != nil {
		t.Fatal(err)
	}
	// C = (e+1)/(e-1) at ε=1 ≈ 2.1639...
	for _, raw := range []string{
		`not json`,
		`{"mechanism":"harmony","coord":0,"value":2.163953413738653}`,
		`{"mechanism":"duchi","value":1.0}`,
		`{"mechanism":"duchi","value":0}`,
		`{"mechanism":"duchi","value":1e308}`,
	} {
		if err := a.Add(json.RawMessage(raw)); err == nil {
			t.Errorf("malformed duchi report accepted: %s", raw)
		}
	}
	h, err := meantask.New(harmonyCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	client, err := meantask.NewClient(harmonyCfg(2), ldprand.NewSplitMix64(12))
	if err != nil {
		t.Fatal(err)
	}
	good, err := client.Report([]float64{0.5, -0.5})
	if err != nil {
		t.Fatal(err)
	}
	var env meantask.Envelope
	if err := json.Unmarshal(good, &env); err != nil {
		t.Fatal(err)
	}
	env.Coord = 7 // out of range
	if err := h.Add(mustMarshal(t, env)); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
	env.Coord = 0
	env.Value *= 2 // wrong magnitude
	if err := h.Add(mustMarshal(t, env)); err == nil {
		t.Error("wrong-magnitude harmony value accepted")
	}
	if a.Collected() != 0 || h.Collected() != 0 {
		t.Fatal("rejected reports were counted")
	}
}

func mustMarshal(t *testing.T, v any) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
