package hhtask

// Tests for the fixed-size candidate accumulator that replaced the
// per-round report list: exact (bit-for-bit) equivalence against the
// list-based EstimateCounts reference, legacy report-list snapshot
// restoration, state-version guards, and the bounded-round-memory
// regression the load-harness roadmap depends on.

import (
	"bytes"
	"encoding/json"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"repro/internal/heavyhitters"
	"repro/internal/ldprand"
	"repro/internal/task"
)

// fixtureValue reproduces the value distribution the committed legacy
// fixture was generated from (see testdata/state_legacy_reports.json):
// planted hitters 0xAB and 0x17 over a uniform background.
func fixtureValue(src ldprand.Source) uint64 {
	v := uint64(ldprand.Intn(src, 256))
	switch ldprand.Intn(src, 10) {
	case 0, 1, 2, 3:
		v = 0xAB
	case 4, 5:
		v = 0x17
	}
	return v
}

// TestLegacySnapshotRestoresBitIdentically pins the PR5/PR6 snapshot
// compatibility contract: a committed report-list state restores by
// folding the listed reports into the accumulator at load, and the
// result is bit-identical — same marshaled state, same frontier, same
// post-advance survivors — to an aggregator that absorbed the same
// envelope stream live.
func TestLegacySnapshotRestoresBitIdentically(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("testdata", "state_legacy_reports.json"))
	if err != nil {
		t.Fatal(err)
	}
	restored, _ := task.New(cfg())
	if err := restored.UnmarshalState(blob); err != nil {
		t.Fatalf("legacy snapshot refused: %v", err)
	}
	if restored.Collected() != 420 || restored.(task.Phased).RoundReports() != 120 {
		t.Fatalf("restored counters: collected %d round %d, want 420/120",
			restored.Collected(), restored.(task.Phased).RoundReports())
	}

	// Rebuild the same protocol state live from the deterministic
	// envelope stream the fixture was generated from (client seed 1017,
	// value seed 1018, 300 round-0 reports then 120 round-1 reports).
	live, _ := task.New(cfg())
	client, err := NewClient(2, 8, 4, ldprand.NewSplitMix64(1017))
	if err != nil {
		t.Fatal(err)
	}
	vals := ldprand.NewSplitMix64(1018)
	feed := func(round, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			raw, err := client.Report(fixtureValue(vals), round)
			if err != nil {
				t.Fatal(err)
			}
			if err := live.Add(raw); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(0, 300)
	if err := live.(task.Phased).Advance(); err != nil {
		t.Fatal(err)
	}
	feed(1, 120)

	wantState, err := live.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	gotState, err := restored.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotState, wantState) {
		t.Fatalf("legacy restore diverged from live aggregation:\nrestored %s\nlive     %s", gotState, wantState)
	}
	wantF, _ := live.(task.Phased).Frontier()
	gotF, _ := restored.(task.Phased).Frontier()
	if !bytes.Equal(gotF, wantF) {
		t.Fatalf("frontier diverged:\nrestored %s\nlive     %s", gotF, wantF)
	}

	// The restored protocol continues exactly like the live one.
	for !restored.(task.Phased).Done() {
		if err := restored.(task.Phased).Advance(); err != nil {
			t.Fatal(err)
		}
		if err := live.(task.Phased).Advance(); err != nil {
			t.Fatal(err)
		}
	}
	wantE, _ := live.Estimate(url.Values{"top": {"3"}})
	gotE, _ := restored.Estimate(url.Values{"top": {"3"}})
	if !bytes.Equal(gotE, wantE) {
		t.Fatalf("post-advance estimate diverged:\nrestored %s\nlive     %s", gotE, wantE)
	}
}

// referenceSurvivors recomputes one round boundary the pre-accumulator
// way: EstimateCounts over the full report list, then the same stable
// top-keep selection Advance applies. This is the oracle the
// accumulator path must match bit for bit.
func referenceSurvivors(p heavyhitters.PEMParams, mech heavyhitters.LHMech, round int, survivors []Prefix, reports []heavyhitters.LHReport) []Prefix {
	cands := candidatesFor(p, round, survivors)
	counts := mech.EstimateCounts(reports, cands)
	keep := p.Budget()
	if round == p.Levels-1 {
		keep = p.K
	}
	if keep > len(cands) {
		keep = len(cands)
	}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return counts[idx[x]] > counts[idx[y]] })
	kept := make([]Prefix, keep)
	for i := 0; i < keep; i++ {
		kept[i] = Prefix{Value: cands[idx[i]], Count: counts[idx[i]]}
	}
	return kept
}

// TestAccumulatorMatchesListReference is the exact-equivalence property
// test: across random report multisets, random shard assignments and
// orders, and mid-round merges, the accumulator path produces support
// sums and survivor counts bit-identical to the list-based
// EstimateCounts reference.
func TestAccumulatorMatchesListReference(t *testing.T) {
	configs := []task.Config{
		{Task: task.TypeHH, Epsilon: 2, Bits: 8, Levels: 4, K: 3},
		{Task: task.TypeHH, Epsilon: 0.5, Bits: 10, Levels: 2, K: 2, Budget: 8},
		{Task: task.TypeHH, Epsilon: 5, Bits: 6, Levels: 3, K: 4},
	}
	for trial, tc := range configs {
		p, err := params(tc)
		if err != nil {
			t.Fatal(err)
		}
		mech := heavyhitters.NewLHMech(p.Epsilon)
		client, err := NewClient(p.Epsilon, p.Bits, p.Levels, ldprand.NewSplitMix64(uint64(3000+trial)))
		if err != nil {
			t.Fatal(err)
		}
		rng := ldprand.NewSplitMix64(uint64(4000 + trial))

		const nShards = 3
		shards := make([]task.Aggregator, nShards)
		for i := range shards {
			shards[i], _ = task.New(tc)
		}
		var refSurvivors []Prefix
		for round := 0; round < p.Levels; round++ {
			nr := ldprand.Intn(rng, 300) + 50
			var list []heavyhitters.LHReport
			var halfList []heavyhitters.LHReport
			half := nr / 2
			for i := 0; i < nr; i++ {
				var v uint64
				if p.Bits < 64 {
					v = uint64(ldprand.Intn(rng, 1<<uint(p.Bits)))
				}
				raw, err := client.Report(v, round)
				if err != nil {
					t.Fatal(err)
				}
				var e Envelope
				if err := json.Unmarshal(raw, &e); err != nil {
					t.Fatal(err)
				}
				list = append(list, heavyhitters.LHReport{Seed: e.Seed, Bucket: e.Bucket})
				if i < half {
					halfList = append(halfList, heavyhitters.LHReport{Seed: e.Seed, Bucket: e.Bucket})
				}
				// Random shard assignment — arrival order and placement
				// must not matter.
				if err := shards[ldprand.Intn(rng, nShards)].Add(raw); err != nil {
					t.Fatal(err)
				}
				if i == half-1 {
					// Mid-round merge: a random-order merge of the shards
					// (the checkpoint/estimate path) must hold exactly the
					// sums a fold of the list so far produces.
					mid, _ := task.New(tc)
					for _, j := range ldprand.Perm(rng, nShards) {
						if err := mid.Merge(shards[j].Snapshot()); err != nil {
							t.Fatal(err)
						}
					}
					midAgg := mid.(*Aggregator)
					wantSums := make([]int64, len(midAgg.cands))
					for _, r := range halfList {
						mech.FoldSupport(r, midAgg.cands, wantSums)
					}
					for k := range wantSums {
						if midAgg.sums[k] != wantSums[k] {
							t.Fatalf("trial %d round %d: mid-round merged sum[%d] = %d, reference fold %d",
								trial, round, k, midAgg.sums[k], wantSums[k])
						}
					}
					if midAgg.roundReports != half {
						t.Fatalf("trial %d round %d: mid-round reports %d want %d", trial, round, midAgg.roundReports, half)
					}
				}
			}
			// Close the round through a random-order merge of the shards
			// — exactly what the sharded Advance does.
			merged, _ := task.New(tc)
			for _, j := range ldprand.Perm(rng, nShards) {
				if err := merged.Merge(shards[j].Snapshot()); err != nil {
					t.Fatal(err)
				}
			}
			if err := merged.(task.Phased).Advance(); err != nil {
				t.Fatal(err)
			}
			refSurvivors = referenceSurvivors(p, mech, round, refSurvivors, list)
			got := merged.(*Aggregator).survivors
			if len(got) != len(refSurvivors) {
				t.Fatalf("trial %d round %d: %d survivors, reference %d", trial, round, len(got), len(refSurvivors))
			}
			for i := range got {
				// Exact float equality is the point: integer support sums
				// debias to the same float64s whatever the arrival, shard
				// or merge order.
				if got[i] != refSurvivors[i] {
					t.Fatalf("trial %d round %d survivor %d: accumulator %+v, list reference %+v",
						trial, round, i, got[i], refSurvivors[i])
				}
			}
			for i := range shards {
				if err := shards[i].(task.Phased).AdoptPhase(merged); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestStateVersionGuards pins the new state envelope's refusals: future
// versions, mixed layouts and impossible support sums are all corrupt.
func TestStateVersionGuards(t *testing.T) {
	a, _ := task.New(cfg())
	client, _ := NewClient(2, 8, 4, ldprand.NewSplitMix64(55))
	driveRound(t, a, client, []uint64{0xAB, 3}, 40)
	blob, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(map[string]any){
		"future version":          func(m map[string]any) { m["v"] = 3.0 },
		"v2 with report list":     func(m map[string]any) { m["reports"] = []map[string]any{{"seed": 1.0, "bucket": 0.0}} },
		"sums width mismatch":     func(m map[string]any) { m["sums"] = []any{1.0, 2.0} },
		"sum above round_reports": func(m map[string]any) { m["sums"] = []any{999.0, 0.0, 0.0, 0.0} },
		"negative sum":            func(m map[string]any) { m["sums"] = []any{-1.0, 0.0, 0.0, 0.0} },
		"negative round_reports":  func(m map[string]any) { m["round_reports"] = -4.0 },
		"legacy with sums": func(m map[string]any) {
			delete(m, "v")
			delete(m, "round_reports")
		},
	}
	for name, corrupt := range cases {
		m := map[string]any{}
		for k, v := range st {
			m[k] = v
		}
		corrupt(m)
		forged, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		fresh, _ := task.New(cfg())
		if err := fresh.UnmarshalState(forged); err == nil {
			t.Errorf("%s: corrupt state restored without error", name)
		}
		// A refused restore leaves the receiver untouched and usable.
		if fresh.Collected() != 0 || fresh.(task.Phased).Round() != 0 {
			t.Errorf("%s: refused restore mutated the receiver", name)
		}
	}
}

// TestRoundMemoryBounded is the bounded-round-memory regression: a
// million reports streamed into one round must leave the aggregator's
// heap footprint at the candidate-proportional constant the accumulator
// guarantees, nowhere near the ~16 MiB a per-report list would hold.
// (The pre-accumulator adapter fails this by an order of magnitude.)
func TestRoundMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("streams 1e6 reports; skipped in -short")
	}
	a, _ := task.New(cfg())
	client, err := NewClient(2, 8, 4, ldprand.NewSplitMix64(97))
	if err != nil {
		t.Fatal(err)
	}
	// Pre-generate one batch of envelopes and cycle it: the synthetic
	// stream's allocations must not be attributed to the aggregator.
	batch := make([]json.RawMessage, 1024)
	for i := range batch {
		if batch[i], err = client.Report(uint64(i%256), 0); err != nil {
			t.Fatal(err)
		}
	}

	const target = 1_000_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	total := 0
	for total < target {
		n, err := a.AddBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	grown := int64(after.HeapAlloc) - int64(before.HeapAlloc)

	// The accumulator holds O(candidates) integers — a few hundred
	// bytes here. The ceiling leaves generous slack for runtime noise
	// while sitting far below the ≥ 16 MiB (1e6 × 16-byte LHReport)
	// the report list this replaced would retain.
	const ceiling = 4 << 20
	if grown > ceiling {
		t.Fatalf("hh aggregator grew the heap by %d bytes over a %d-report round (ceiling %d)", grown, total, ceiling)
	}
	if a.Collected() != total || a.(task.Phased).RoundReports() != total {
		t.Fatalf("counters after stream: collected %d round %d want %d", a.Collected(), a.(task.Phased).RoundReports(), total)
	}
	if err := a.(task.Phased).Advance(); err != nil {
		t.Fatal(err)
	}
	if got := a.(*Aggregator).survivors; len(got) == 0 {
		t.Fatal("no survivors after the streamed round")
	}
}
